// Codec tests: LZSS, Huffman, combined round-trips, and the
// compressibility ordering that Table 2 relies on.
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "util/rng.hpp"

namespace wss::compress {
namespace {

std::string roundtrip_lzss(std::string_view s) {
  return lzss_decompress(lzss_compress(s));
}

TEST(Lzss, RoundTripBasics) {
  EXPECT_EQ(roundtrip_lzss(""), "");
  EXPECT_EQ(roundtrip_lzss("a"), "a");
  EXPECT_EQ(roundtrip_lzss("abcabcabcabcabc"), "abcabcabcabcabc");
  EXPECT_EQ(roundtrip_lzss(std::string(10000, 'x')), std::string(10000, 'x'));
}

TEST(Lzss, CompressesRepetition) {
  std::string log;
  for (int i = 0; i < 500; ++i) {
    log += "kernel: cciss: cmd 42 has CHECK CONDITION, sense key = 0x3\n";
  }
  const std::string packed = lzss_compress(log);
  EXPECT_LT(packed.size(), log.size() / 5);
  EXPECT_EQ(lzss_decompress(packed), log);
}

TEST(Lzss, OverlappingMatches) {
  // "aaaa..." forces overlapping copies (dist 1, long len).
  const std::string s(1000, 'a');
  EXPECT_EQ(roundtrip_lzss(s), s);
  // Period-3 overlap.
  std::string p;
  for (int i = 0; i < 999; ++i) p.push_back("xyz"[i % 3]);
  EXPECT_EQ(roundtrip_lzss(p), p);
}

TEST(Lzss, MalformedStreamThrows) {
  // A match token pointing before the start of output.
  std::string bad;
  bad.push_back('\x01');  // flags: first item is a match
  bad.push_back('\x10');  // dist lo
  bad.push_back('\x00');  // dist hi
  bad.push_back('\x00');  // len
  EXPECT_THROW(lzss_decompress(bad), std::runtime_error);
  // Truncated match token.
  std::string trunc;
  trunc.push_back('\x01');
  trunc.push_back('\x01');
  EXPECT_THROW(lzss_decompress(trunc), std::runtime_error);
}

TEST(Lzss, MatchAtExactWindowDistanceRegression) {
  // A match candidate at distance exactly 65536 must be rejected: the
  // token encodes distances in 16 bits, so 65536 would wrap to 0.
  util::Rng rng(77);
  const std::string block = "UNIQUE-MARKER-BLOCK-0123456789";
  std::string s = block;
  while (s.size() < kWindowSize) {
    s.push_back(static_cast<char>('a' + rng.uniform_u64(26)));
  }
  s.resize(kWindowSize);
  s += block;  // second copy at distance exactly kWindowSize
  EXPECT_EQ(roundtrip_lzss(s), s);
}

TEST(Lzss, MultiWindowCorpusRoundTrip) {
  // > 3 windows of semi-repetitive log-like text exercises hash-chain
  // aliasing across window wraps.
  util::Rng rng(78);
  std::string s;
  while (s.size() < 3 * kWindowSize + 12345) {
    s += "Feb 28 01:02:03 sn";
    s += std::to_string(rng.uniform_u64(520));
    s += " kernel: cciss: cmd ";
    s += std::to_string(rng());
    s += " has CHECK CONDITION, sense key = 0x3\n";
  }
  EXPECT_EQ(roundtrip_lzss(s), s);
}

TEST(Huffman, RoundTripBasics) {
  const std::string cases[] = {
      "", "a", "aaaaaaaa", "abracadabra",
      std::string("\x00\x01\x02\xff\xfe", 5),
  };
  for (const auto& s : cases) {
    EXPECT_EQ(huffman_decode(huffman_encode(s)), s) << s.size();
  }
}

TEST(Huffman, SkewedDistributionCompresses) {
  util::Rng rng(1);
  std::string s;
  for (int i = 0; i < 20000; ++i) {
    s.push_back(rng.bernoulli(0.95) ? 'e' : static_cast<char>(
                                                'a' + rng.uniform_u64(26)));
  }
  const std::string enc = huffman_encode(s);
  EXPECT_LT(enc.size(), s.size() / 2);
  EXPECT_EQ(huffman_decode(enc), s);
}

TEST(Huffman, IncompressibleFallsBackToRaw) {
  util::Rng rng(2);
  std::string s;
  for (int i = 0; i < 1000; ++i) s.push_back(static_cast<char>(rng()));
  const std::string enc = huffman_encode(s);
  EXPECT_LE(enc.size(), s.size() + 1);  // raw marker only
  EXPECT_EQ(huffman_decode(enc), s);
}

TEST(Huffman, MalformedThrows) {
  EXPECT_THROW(huffman_decode(""), std::runtime_error);
  EXPECT_THROW(huffman_decode("\x07junk"), std::runtime_error);
  std::string short_header;
  short_header.push_back('\x01');
  short_header.append(100, '\x00');
  EXPECT_THROW(huffman_decode(short_header), std::runtime_error);
}

TEST(Codec, RoundTripRandomCorpora) {
  util::Rng rng(3);
  for (int iter = 0; iter < 30; ++iter) {
    std::string s;
    const auto n = rng.uniform_u64(5000);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Mixture of random and repeated content.
      if (rng.bernoulli(0.3)) {
        s.append("repeated phrase ");
      } else {
        s.push_back(static_cast<char>('a' + rng.uniform_u64(26)));
      }
    }
    EXPECT_EQ(decompress(compress(s)), s);
  }
}

TEST(Codec, MalformedContainerThrows) {
  EXPECT_THROW(decompress("nope"), std::runtime_error);
  EXPECT_THROW(decompress("WSC1\x05\x00\x00\x00\x00\x00\x00\x00"),
               std::runtime_error);
}

TEST(Codec, StormLogsCompressBetterThanDiverseLogs) {
  // The Table 2 phenomenon: Spirit/Liberty (storm-repetitive) compress
  // far better than Thunderbird (diverse).
  util::Rng rng(4);
  std::string storm;
  for (int i = 0; i < 2000; ++i) {
    storm += "Feb 28 01:02:03 sn373 kernel: cciss: cmd 77 has CHECK "
             "CONDITION, sense key = 0x3\n";
  }
  std::string diverse;
  for (int i = 0; i < 2000; ++i) {
    diverse += "Nov 10 0";
    for (int k = 0; k < 60; ++k) {
      diverse.push_back(static_cast<char>('!' + rng.uniform_u64(90)));
    }
    diverse.push_back('\n');
  }
  EXPECT_LT(compression_fraction(storm), compression_fraction(diverse) / 4);
}

TEST(Codec, EmptyInput) {
  EXPECT_EQ(decompress(compress("")), "");
  EXPECT_DOUBLE_EQ(compression_fraction(""), 1.0);
}

}  // namespace
}  // namespace wss::compress
