// Guards on the generation-plan derivation: the paper's special cases
// must be wired to the right categories with the right parameters.
#include "sim/catalog.hpp"

#include <gtest/gtest.h>

#include "tag/rulesets.hpp"

namespace wss::sim {
namespace {

using parse::SystemId;

std::vector<CategoryGenPlan> plans_for(SystemId id,
                                       std::uint64_t cap = 100000) {
  SimOptions opts;
  opts.category_cap = cap;
  const SourceNamer namer(id, system_spec(id).n_sources);
  return build_plans(id, opts, namer);
}

const CategoryGenPlan* find_plan(const std::vector<CategoryGenPlan>& plans,
                                 std::string_view name) {
  for (const auto& p : plans) {
    if (p.info != nullptr && p.info->name == name) return &p;
  }
  return nullptr;
}

TEST(Catalog, PlansAlignWithCategories) {
  for (const auto id : parse::kAllSystems) {
    const auto plans = plans_for(id);
    const auto cats = tag::categories_of(id);
    ASSERT_EQ(plans.size(), cats.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(plans[i].category_id, i);
      EXPECT_EQ(plans[i].info, cats[i]);
      EXPECT_GE(plans[i].incidents, 1u);
      EXPECT_GE(plans[i].gen_events, 1u);
    }
  }
}

TEST(Catalog, WeightsReconstructRawCounts) {
  for (const auto id : parse::kAllSystems) {
    for (const auto& p : plans_for(id, 50000)) {
      EXPECT_LE(p.gen_events, 50000u);
      EXPECT_NEAR(p.weight * static_cast<double>(p.gen_events),
                  static_cast<double>(p.info->raw_count),
                  1e-6 * static_cast<double>(p.info->raw_count) + 0.5)
          << p.info->name;
    }
  }
}

TEST(Catalog, ThunderbirdSpecialCases) {
  const auto plans = plans_for(SystemId::kThunderbird);
  const auto* vapi = find_plan(plans, "VAPI");
  ASSERT_NE(vapi, nullptr);
  EXPECT_TRUE(vapi->has_storm);
  EXPECT_EQ(vapi->storm_node, SourceNamer::kThunderbirdVapiNode);
  // "A single node was responsible for 643,925 of them" -> ~20%.
  EXPECT_NEAR(vapi->storm_event_frac, 643925.0 / 3229194.0, 1e-9);
  EXPECT_NEAR(vapi->storm_incident_frac, 246.0 / 276.0, 1e-9);

  const auto* ecc = find_plan(plans, "ECC");
  ASSERT_NE(ecc, nullptr);
  EXPECT_EQ(ecc->mode, SourceMode::kPoisson);
  EXPECT_EQ(ecc->engineered_pairs, 3u);  // 146 raw -> 143 filtered

  const auto* cpu = find_plan(plans, "CPU");
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->mode, SourceMode::kJobBursts);  // the SMP clock bug
}

TEST(Catalog, SpiritStormAndShadow) {
  const auto plans = plans_for(SystemId::kSpirit);
  const auto* cciss = find_plan(plans, "EXT_CCISS");
  ASSERT_NE(cciss, nullptr);
  EXPECT_TRUE(cciss->has_storm);
  EXPECT_EQ(cciss->storm_node, SourceNamer::kSpiritStormNode);
  EXPECT_TRUE(cciss->shadowed_incident);
  EXPECT_EQ(cciss->shadow_node, SourceNamer::kSpiritShadowedNode);
  // "node sn373 logged 89,632,571 such messages".
  EXPECT_NEAR(cciss->storm_event_frac, 89632571.0 / 103818910.0, 1e-9);

  const auto* bfd = find_plan(plans, "PBS_BFD");
  ASSERT_NE(bfd, nullptr);
  ASSERT_GE(bfd->cascade_from, 0);
  EXPECT_EQ(plans[static_cast<std::size_t>(bfd->cascade_from)].info->name,
            "PBS_CHK");
}

TEST(Catalog, LibertyPbsBugAndGmCascade) {
  const auto plans = plans_for(SystemId::kLiberty);
  const auto* chk = find_plan(plans, "PBS_CHK");
  ASSERT_NE(chk, nullptr);
  EXPECT_EQ(chk->mode, SourceMode::kMultiNodeBursts);
  EXPECT_GT(chk->concentrate_frac, 0.5);  // the Figure 4 clusters
  EXPECT_GT(chk->concentrate_begin_frac, 0.5);

  const auto* lanai = find_plan(plans, "GM_LANAI");
  ASSERT_NE(lanai, nullptr);
  ASSERT_GE(lanai->cascade_from, 0);
  EXPECT_EQ(plans[static_cast<std::size_t>(lanai->cascade_from)].info->name,
            "GM_PAR");
  EXPECT_GT(lanai->cascade_frac, 0.0);
  EXPECT_LT(lanai->cascade_frac, 1.0);  // "do not always follow"
}

TEST(Catalog, RedStormDdnCategoriesUseDdnHosts) {
  const auto& spec = system_spec(SystemId::kRedStorm);
  const SourceNamer namer(SystemId::kRedStorm, spec.n_sources);
  const auto plans = plans_for(SystemId::kRedStorm);
  for (const auto& p : plans) {
    if (p.info->path == tag::LogPath::kRsDdn) {
      ASSERT_FALSE(p.source_pool.empty()) << p.info->name;
      for (const auto src : p.source_pool) {
        EXPECT_TRUE(namer.is_admin(src));
        EXPECT_EQ(namer.name(src).rfind("ddn", 0), 0u) << namer.name(src);
      }
    } else {
      EXPECT_TRUE(p.source_pool.empty()) << p.info->name;
    }
  }
}

TEST(Catalog, PoissonRuleAppliesToNearUnfilteredCategories) {
  // Categories whose filtered count is >= 80% of raw are generated as
  // independent events (DSK_FAIL 54/54, PBS_BFD 28/28, ...).
  for (const auto id : parse::kAllSystems) {
    for (const auto& p : plans_for(id)) {
      const auto& c = *p.info;
      const bool near_unfiltered = c.filtered_count * 5 >= c.raw_count * 4;
      if (near_unfiltered && p.mode != SourceMode::kPoisson) {
        // Only the explicitly overridden special cases may differ
        // (job-driven CPU, the VAPI storm, and the PBS cascade pair).
        EXPECT_TRUE(c.name == "CPU" || c.name == "VAPI" ||
                    c.name == "PBS_BFD")
            << c.name;
      }
    }
  }
}

TEST(Catalog, BglLeakyCategoriesConfigured) {
  // The Figure 6(a) bimodality comes from leaky chains on BG/L.
  const auto plans = plans_for(SystemId::kBlueGeneL);
  double total_leak = 0.0;
  for (const auto& p : plans) total_leak += p.leak_frac;
  EXPECT_GT(total_leak, 0.5);
  // ...and from nowhere else.
  for (const auto id : {SystemId::kSpirit, SystemId::kLiberty}) {
    for (const auto& p : plans_for(id)) {
      EXPECT_EQ(p.leak_frac, 0.0) << p.info->name;
    }
  }
}

TEST(Catalog, SeverityAttributionReconstructsTable6) {
  // DESIGN.md's Red Storm severity reconstruction: the sums of alert
  // raw counts per attributed severity must reproduce the Table 6
  // alert column (exactly for ERR and WARNING).
  std::map<parse::Severity, std::uint64_t> by_sev;
  for (const auto* c : tag::categories_of(SystemId::kRedStorm)) {
    by_sev[c->severity] += c->raw_count;
  }
  EXPECT_EQ(by_sev[parse::Severity::kCrit], 1550217u);   // Table 6: CRIT
  EXPECT_EQ(by_sev[parse::Severity::kError], 11784u);    // Table 6: ERR
  EXPECT_EQ(by_sev[parse::Severity::kWarning], 270u);    // Table 6: WARNING
  // The ec_* event-router categories carry no severity.
  EXPECT_EQ(by_sev[parse::Severity::kNone], 94784u + 186u);
}

TEST(Catalog, BglAlertSeveritiesMatchTable5) {
  // All BG/L alerts are FATAL except APPSEV's 62 FAILURE minority.
  std::uint64_t fatal = 0;
  std::uint64_t alt_failure = 0;
  for (const auto* c : tag::categories_of(SystemId::kBlueGeneL)) {
    EXPECT_EQ(c->severity, parse::Severity::kFatal) << c->name;
    if (c->alt_count > 0) {
      EXPECT_EQ(c->alt_severity, parse::Severity::kFailure);
      alt_failure += c->alt_count;
    }
    fatal += c->raw_count;
  }
  EXPECT_EQ(alt_failure, 62u);
  EXPECT_EQ(fatal - alt_failure, 348398u);  // Table 5 FATAL alerts
}

}  // namespace
}  // namespace wss::sim
