// Determinism contract of the event-counting metrics: the whitelisted
// wss_pipeline_*, wss_filter_*, and deterministic wss_tag_* counters
// are bit-identical across 1/2/4/8 worker threads AND between the
// batch pipeline and the streaming engine, on all five systems.
//
// Counters count events, not time, and every per-event increment
// happens in core::detail::process_line / the shared filter decision
// sequence -- so thread count and batch-vs-stream may only change
// *when* deltas get published, never the totals. Deliberately outside
// the whitelist: wss_stream_* (stream-only machinery), the lazy-DFA
// cache counters (wss_tag_dfa_* / wss_tag_pike_* depend on per-thread
// cache state), gauges (last-writer-wins), histograms, and spans
// (wall-clock).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "core/pipeline.hpp"
#include "filter/simultaneous.hpp"
#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "stream/pipeline.hpp"

namespace wss {
namespace {

constexpr std::size_t kChunkEvents = 512;  // small: many chunk merges
constexpr util::TimeUs kThresholdUs = 5 * util::kUsPerSec;

sim::SimOptions small_sim() {
  sim::SimOptions opts;
  opts.category_cap = 400;
  opts.chatter_events = 2500;
  return opts;
}

using CounterTable = std::vector<std::pair<std::string, std::uint64_t>>;

/// The deterministic subset of the registry's counters.
CounterTable whitelisted_counters() {
  CounterTable out;
  for (auto& [name, value] : obs::registry().counter_values()) {
    const bool deterministic =
        name.starts_with("wss_pipeline_") || name.starts_with("wss_filter_") ||
        name == "wss_tag_lines_total" || name == "wss_tag_hits_total" ||
        name == "wss_tag_prefilter_rejects_total";
    if (deterministic) out.emplace_back(name, value);
  }
  return out;
}

/// One batch run (pipeline + simultaneous filter) at `threads` workers;
/// returns the whitelisted counter table it produced.
CounterTable batch_run(parse::SystemId id, int threads) {
  obs::registry().reset();
  const sim::Simulator simulator(id, small_sim());
  core::PipelineOptions popts;
  popts.num_threads = threads;
  popts.chunk_events = kChunkEvents;
  if (threads == 1) {
    core::run_pipeline(simulator, popts);  // serial reference path
  } else {
    core::ParallelPipeline(popts).run(simulator);
  }
  const auto truth = simulator.ground_truth_alerts();
  filter::apply_simultaneous_parallel(truth, kThresholdUs, threads);
  return whitelisted_counters();
}

/// One streaming run over the same rendered events.
CounterTable stream_run(parse::SystemId id) {
  obs::registry().reset();
  const sim::Simulator simulator(id, small_sim());
  stream::StreamPipelineOptions popts;
  popts.study.chunk_events = kChunkEvents;
  popts.study.threshold_us = kThresholdUs;
  stream::StreamPipeline pipeline(id, popts);
  const auto& events = simulator.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    pipeline.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  pipeline.finish();
  return whitelisted_counters();
}

void expect_tables_equal(const CounterTable& a, const CounterTable& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << what << " entry " << i;
    EXPECT_EQ(a[i].second, b[i].second) << what << ": " << a[i].first;
  }
}

std::uint64_t value_of(const CounterTable& t, std::string_view name) {
  for (const auto& [n, v] : t) {
    if (n == name) return v;
  }
  return 0;
}

class ObsDeterminismTest : public ::testing::TestWithParam<parse::SystemId> {};

TEST_P(ObsDeterminismTest, CountersInvariantAcrossThreadCounts) {
#ifdef WSS_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (WSS_OBS_OFF)";
#endif
  const parse::SystemId id = GetParam();
  const CounterTable serial = batch_run(id, 1);

  // Non-trivial by construction: the run really was counted.
  const sim::Simulator simulator(id, small_sim());
  EXPECT_EQ(value_of(serial, "wss_pipeline_events_total"),
            simulator.events().size());
  EXPECT_GT(value_of(serial, "wss_filter_offered_total"), 0u);
  EXPECT_GT(value_of(serial, "wss_pipeline_chunks_total"), 0u);

  for (const int threads : {2, 4, 8}) {
    const CounterTable threaded = batch_run(id, threads);
    expect_tables_equal(serial, threaded,
                        ("threads=" + std::to_string(threads)).c_str());
  }
}

TEST_P(ObsDeterminismTest, CountersInvariantBatchVersusStream) {
#ifdef WSS_OBS_OFF
  GTEST_SKIP() << "instrumentation compiled out (WSS_OBS_OFF)";
#endif
  const parse::SystemId id = GetParam();
  const CounterTable batch = batch_run(id, 4);
  const CounterTable stream = stream_run(id);
  expect_tables_equal(batch, stream, "batch vs stream");
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ObsDeterminismTest,
                         ::testing::ValuesIn(parse::kAllSystems),
                         [](const auto& info) {
                           return std::string(
                               parse::system_short_name(info.param));
                         });

}  // namespace
}  // namespace wss
