#include "filter/tuple.hpp"

#include <gtest/gtest.h>

namespace wss::filter {
namespace {

using util::kUsPerSec;
constexpr util::TimeUs G = 5 * kUsPerSec;

Alert ev(double sec, std::uint32_t src, std::uint16_t cat,
         std::uint64_t failure = 0) {
  Alert a;
  a.time = static_cast<util::TimeUs>(sec * 1e6);
  a.source = src;
  a.category = cat;
  a.failure_id = failure;
  return a;
}

TEST(Tuple, GroupsByGap) {
  const auto tuples = build_tuples(
      {ev(0, 1, 0), ev(2, 2, 1), ev(4, 1, 0), ev(100, 3, 2)}, G);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].alert_count, 3u);
  EXPECT_EQ(tuples[0].categories.size(), 2u);
  EXPECT_EQ(tuples[0].sources.size(), 2u);
  EXPECT_EQ(tuples[1].alert_count, 1u);
  EXPECT_EQ(tuples[0].duration(), static_cast<util::TimeUs>(4e6));
}

TEST(Tuple, GapBoundaryIsExclusive) {
  // Exactly G apart starts a new tuple (consistent with the filter's
  // "< T" redundancy test).
  const auto tuples = build_tuples({ev(0, 1, 0), ev(5.0, 1, 0)}, G);
  EXPECT_EQ(tuples.size(), 2u);
  const auto chained = build_tuples({ev(0, 1, 0), ev(4.999, 1, 0)}, G);
  EXPECT_EQ(chained.size(), 1u);
}

TEST(Tuple, ChainSemantics) {
  // Like the sliding-window filter, a long chain of sub-gap steps is
  // one tuple even when it spans far more than the gap overall.
  std::vector<Alert> chain;
  for (int i = 0; i < 100; ++i) chain.push_back(ev(i * 3.0, 1, 0));
  EXPECT_EQ(build_tuples(chain, G).size(), 1u);
}

TEST(Tuple, EmptyAndErrors) {
  EXPECT_TRUE(build_tuples({}, G).empty());
  EXPECT_THROW(build_tuples({}, 0), std::invalid_argument);
  EXPECT_THROW(build_tuples({ev(5, 1, 0), ev(0, 1, 0)}, G),
               std::invalid_argument);
}

TEST(Tuple, ScoreDetectsCollisionsAndSplits) {
  // Failure 1 in two tuples (split); tuple 0 holds failures 1 and 2
  // (collision).
  const auto tuples = build_tuples(
      {ev(0, 1, 0, 1), ev(2, 2, 1, 2), ev(100, 1, 0, 1)}, G);
  ASSERT_EQ(tuples.size(), 2u);
  const auto s = score_tuples(tuples);
  EXPECT_EQ(s.tuples, 2u);
  EXPECT_EQ(s.failures_total, 2u);
  EXPECT_EQ(s.collided_tuples, 1u);
  EXPECT_EQ(s.split_failures, 1u);
}

TEST(Tuple, PerfectTupling) {
  const auto tuples = build_tuples(
      {ev(0, 1, 0, 1), ev(1, 1, 0, 1), ev(50, 2, 1, 2)}, G);
  const auto s = score_tuples(tuples);
  EXPECT_EQ(s.tuples, 2u);
  EXPECT_EQ(s.collided_tuples, 0u);
  EXPECT_EQ(s.split_failures, 0u);
}

TEST(Tuple, MergesUnrelatedConcurrentFailures) {
  // The tupling weakness the paper's per-category filter avoids:
  // two different-category failures coinciding in time fuse into one
  // tuple.
  const auto tuples =
      build_tuples({ev(0, 1, 0, 1), ev(2, 5, 3, 2)}, G);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(score_tuples(tuples).collided_tuples, 1u);
}

}  // namespace
}  // namespace wss::filter
