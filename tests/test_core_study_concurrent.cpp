// Thread-safety stress for Study's lazy caches: many threads hammer
// simulator() / pipeline_result() / parallel_pipeline_result() for
// every system at once. The per-system std::once_flag guards must
// yield exactly one simulator and one result object per system, with
// no data race (this test is a primary target of the TSan preset:
// cmake --preset tsan).
#include "core/study.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace wss::core {
namespace {

StudyOptions tiny() {
  StudyOptions o;
  o.sim.category_cap = 400;
  o.sim.chatter_events = 3000;
  o.pipeline.num_threads = 2;  // parallel path exercises nested threading
  return o;
}

TEST(StudyConcurrent, PipelineResultCacheIsRaceFree) {
  Study study(tiny());
  constexpr int kThreads = 16;

  // Every thread records the address it saw for each system; the lazy
  // cache is correct iff all threads saw the same object.
  std::vector<std::vector<const PipelineResult*>> seen(
      kThreads, std::vector<const PipelineResult*>(parse::kNumSystems));
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t s = 0; s < parse::kNumSystems; ++s) {
          // Interleave systems differently per thread so first-call
          // races actually happen on every slot.
          const auto id = static_cast<parse::SystemId>(
              (s + static_cast<std::size_t>(t)) % parse::kNumSystems);
          const PipelineResult& r = (t % 2 == 0)
                                        ? study.pipeline_result(id)
                                        : study.parallel_pipeline_result(id);
          seen[t][static_cast<std::size_t>(id)] = &r;
        }
      });
    }
  }

  for (std::size_t s = 0; s < parse::kNumSystems; ++s) {
    std::set<const PipelineResult*> unique;
    for (int t = 0; t < kThreads; ++t) unique.insert(seen[t][s]);
    EXPECT_EQ(unique.size(), 1u) << "system " << s
                                 << " produced multiple cached results";
    EXPECT_GT((*unique.begin())->physical_messages, 0u);
  }
}

TEST(StudyConcurrent, SimulatorCacheIsRaceFree) {
  Study study(tiny());
  constexpr int kThreads = 12;
  std::vector<const sim::Simulator*> seen(kThreads);
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        seen[t] = &study.simulator(parse::SystemId::kThunderbird);
      });
    }
  }
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

TEST(StudyConcurrent, SerialAndParallelEntryPointsShareTheCache) {
  Study study(tiny());
  const auto id = parse::SystemId::kSpirit;
  const PipelineResult& a = study.parallel_pipeline_result(id);
  const PipelineResult& b = study.pipeline_result(id);
  EXPECT_EQ(&a, &b);  // bit-identical results, one cache slot
}

}  // namespace
}  // namespace wss::core
