// Long-stream stress for the bounded episode miner: a million alerts
// across 200 categories against a 512-entry candidate table. The
// memory bound must hold at every step, and the exactness invariant
// (emitted rules bit-identical to the unbounded reference) must
// survive sustained eviction pressure -- not just the short streams
// the unit suite throws at it.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mine/episodes.hpp"
#include "util/rng.hpp"

namespace wss::mine {
namespace {

struct RefCandidate {
  std::uint64_t support = 0;
  util::TimeUs last_credited_start = 0;
  double delay_mean_us = 0.0;
  util::TimeUs delay_min_us = 0;
  util::TimeUs delay_max_us = 0;
};

/// Unbounded reference (support/confidence/mean/extrema only -- the
/// stddev path is pinned by the unit-sized differential test).
class ReferenceMiner {
 public:
  explicit ReferenceMiner(EpisodeOptions opts) : opts_(opts) {}

  void observe(const filter::Alert& a) {
    const std::size_t b = a.category;
    if (b >= last_alert_.size()) {
      last_alert_.resize(b + 1, 0);
      alert_seen_.resize(b + 1, 0);
      start_seen_.resize(b + 1, 0);
      last_start_.resize(b + 1, 0);
      incident_count_.resize(b + 1, 0);
    }
    const bool fresh =
        !alert_seen_[b] || a.time - last_alert_[b] >= opts_.incident_gap_us;
    alert_seen_[b] = 1;
    last_alert_[b] = a.time;
    if (!fresh) return;
    ++incident_count_[b];
    for (std::size_t cat = 0; cat < last_start_.size(); ++cat) {
      if (cat == b || !start_seen_[cat]) continue;
      const util::TimeUs delay = a.time - last_start_[cat];
      if (delay <= 0 || delay > opts_.window_us) continue;
      const auto key = static_cast<std::uint32_t>(
          cat * kMaxEpisodeCategories + b);
      auto [it, inserted] = cands_.emplace(key, RefCandidate{});
      RefCandidate& c = it->second;
      if (inserted) {
        c.delay_min_us = delay;
        c.delay_max_us = delay;
      }
      if (!(c.support > 0 && c.last_credited_start == last_start_[cat])) {
        c.last_credited_start = last_start_[cat];
        ++c.support;
        const double x = static_cast<double>(delay);
        c.delay_mean_us +=
            (x - c.delay_mean_us) / static_cast<double>(c.support);
        if (delay < c.delay_min_us) c.delay_min_us = delay;
        if (delay > c.delay_max_us) c.delay_max_us = delay;
      }
    }
    start_seen_[b] = 1;
    last_start_[b] = a.time;
  }

  const RefCandidate* find(std::uint16_t pred, std::uint16_t succ) const {
    const auto it = cands_.find(
        static_cast<std::uint32_t>(pred) * kMaxEpisodeCategories + succ);
    return it == cands_.end() ? nullptr : &it->second;
  }

  std::uint64_t incidents_of(std::uint16_t cat) const {
    return cat < incident_count_.size() ? incident_count_[cat] : 0;
  }

 private:
  EpisodeOptions opts_;
  std::vector<std::uint8_t> alert_seen_;
  std::vector<util::TimeUs> last_alert_;
  std::vector<std::uint8_t> start_seen_;
  std::vector<util::TimeUs> last_start_;
  std::vector<std::uint64_t> incident_count_;
  std::map<std::uint32_t, RefCandidate> cands_;
};

TEST(EpisodeMinerStress, MillionAlertStreamStaysBoundedAndExact) {
  EpisodeOptions opts;
  opts.max_candidates = 512;
  opts.min_support = 1;
  opts.min_confidence = 0.0;
  EpisodeMiner bounded(opts);
  ReferenceMiner reference(opts);

  util::Rng rng(20250807);
  util::TimeUs t = util::kUsPerSec;
  filter::Alert a;
  a.weight = 1.0;
  constexpr std::size_t kAlerts = 1000000;
  for (std::size_t i = 0; i < kAlerts; ++i) {
    t += static_cast<util::TimeUs>(rng.uniform_u64(75 * util::kUsPerSec));
    a.time = t;
    a.category = static_cast<std::uint16_t>(rng.uniform_u64(200));
    a.source = static_cast<std::uint32_t>(rng.uniform_u64(64));
    bounded.observe(a);
    reference.observe(a);
    // The memory bound is unconditional -- checked every observe, a
    // million times, not just at the end.
    ASSERT_LE(bounded.candidate_count(), opts.max_candidates);
  }

  // 200 categories => up to 39800 pairs fought for 512 slots.
  EXPECT_GT(bounded.bans(), 0u);

  const auto rules = bounded.rules();
  ASSERT_FALSE(rules.empty());
  for (const auto& r : rules) {
    const RefCandidate* ref = reference.find(r.predecessor, r.successor);
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(r.support, ref->support);
    EXPECT_EQ(r.incidents, reference.incidents_of(r.predecessor));
    EXPECT_EQ(r.delay_mean_s, ref->delay_mean_us / 1e6);
    EXPECT_EQ(r.delay_min_s, static_cast<double>(ref->delay_min_us) / 1e6);
    EXPECT_EQ(r.delay_max_s, static_cast<double>(ref->delay_max_us) / 1e6);
  }
}

}  // namespace
}  // namespace wss::mine
