// Steady-state allocation contract of the observability layer: after
// warm-up (metric registration, span-node creation, stripe
// assignment), the hot instrumentation operations allocate NOTHING --
// counter incs, gauge sets, histogram observes, span enter/leave, and
// tag-tally flushes. The pipeline leans on this: obs calls sit on
// per-event and per-chunk paths that are themselves allocation-free.
//
// Same operator-new counting scheme as tests/test_tag_alloc.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "match/scratch.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "tag/metrics.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace wss::obs {
namespace {

TEST(ObsAlloc, SteadyStateInstrumentationAllocatesNothing) {
  // Warm-up: registration takes the registry mutex and allocates; the
  // first visit of each span (parent, name) pair appends a node; the
  // first counter touch on this thread assigns its stripe.
  Counter& c = registry().counter("wss_alloc_c_total");
  Gauge& g = registry().gauge("wss_alloc_g");
  Histogram& h = registry().histogram("wss_alloc_h", latency_bounds_seconds());
  match::MatchScratch scratch;
  tag::TagMetricsFlusher flusher;
  c.inc();
  g.set(1);
  h.observe(1e-6);
  {
    Span outer("alloc_outer");
    { Span inner("alloc_inner"); }
  }
  flusher.flush(scratch);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c.inc();
    c.inc(3);
    g.set(i);
    g.add(1);
    h.observe(static_cast<double>(i) * 1e-7);
    {
      Span outer("alloc_outer");
      { Span inner("alloc_inner"); }
    }
    flusher.flush(scratch);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across the steady-state loop";

  // Sanity: the loop really did write through (unless compiled out).
#ifndef WSS_OBS_OFF
  EXPECT_GE(c.value(), 40001u);
  EXPECT_EQ(h.count(), 10001u);
#endif
}

}  // namespace
}  // namespace wss::obs
