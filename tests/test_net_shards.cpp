// Shard-count equivalence for the sharded event loop (--loop-shards):
// the same client traffic must produce byte-identical final tables and
// identical delivery accounting whether the server runs one epoll loop
// or many SO_REUSEPORT shards, per-shard /status counters must sum to
// the totals the clients actually delivered, and a ~1k-connection
// churn soak must survive with every connection and line accounted.
//
// One connection (or one UDP socket) per tenant keeps each tenant's
// line order shard-invariant: the kernel pins a 4-tuple to one shard,
// so per-sender order is preserved no matter how many shards exist.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "sim/generator.hpp"

namespace wss::net {
namespace {

using namespace std::chrono_literals;

TenantConfig tenant(const std::string& name, parse::SystemId system,
                    std::size_t queue = 8192) {
  TenantConfig cfg;
  cfg.name = name;
  cfg.system = system;
  cfg.queue_capacity = queue;
  return cfg;
}

const ServeTenantReport* find_tenant(const ServeReport& report,
                                     const std::string& name) {
  for (const auto& t : report.tenants) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

/// Renders a simulator's full event stream as log lines.
std::vector<std::string> render_all(const sim::Simulator& s) {
  std::vector<std::string> lines;
  const auto& events = s.events();
  lines.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    lines.push_back(s.renderer().render(events[i], i));
  }
  return lines;
}

/// First integer after `key`, itself after `anchor`, in a JSON blob.
/// Status documents are flat enough that positional scanning is exact.
std::uint64_t num_after(const std::string& json, const std::string& anchor,
                        const std::string& key) {
  std::size_t pos = json.find(anchor);
  EXPECT_NE(pos, std::string::npos) << anchor << " missing in: " << json;
  if (pos == std::string::npos) return 0;
  pos = json.find(key, pos);
  EXPECT_NE(pos, std::string::npos) << key << " missing after " << anchor;
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
}

class NetShardsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (runner_.joinable()) stop();
  }

  void start(ServeOptions opts) {
    server_ = std::make_unique<Server>(std::move(opts));
    server_->bind();
    runner_ = std::thread([this] {
      try {
        report_ = server_->run();
      } catch (const std::exception& e) {
        run_error_ = e.what();
      }
    });
  }

  ServeReport stop() {
    server_->request_stop();
    runner_.join();
    EXPECT_EQ(run_error_, "");
    return report_;
  }

  void wait_status_contains(const std::string& needle) {
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (server_->status_json().find(needle) != std::string::npos) return;
      std::this_thread::sleep_for(2ms);
    }
    FAIL() << "status never showed: " << needle << "\nlast: "
           << server_->status_json();
  }

  std::unique_ptr<Server> server_;
  std::thread runner_;
  ServeReport report_;
  std::string run_error_;
};

struct RunResult {
  ServeReport report;
  std::string status;  ///< snapshot taken after all deliveries landed
};

TEST_F(NetShardsTest, TablesAndCountersIdenticalAcrossShardCounts) {
  // Three TCP tenants over one handshake-routed listener plus one UDP
  // tenant: the full routing surface, one sender each.
  sim::SimOptions gen;
  gen.category_cap = 100;
  gen.chatter_events = 400;
  const std::vector<std::string> lib_lines =
      render_all(sim::Simulator(parse::SystemId::kLiberty, gen));
  const std::vector<std::string> spi_lines =
      render_all(sim::Simulator(parse::SystemId::kSpirit, gen));
  const std::vector<std::string> thu_lines =
      render_all(sim::Simulator(parse::SystemId::kThunderbird, gen));

  auto run_at = [&](int shards) {
    ServeOptions opts;
    opts.loop_shards = shards;
    opts.tcp.push_back({0, ""});
    opts.udp.push_back({0, "shard-u"});
    opts.tenants.push_back(tenant("shard-a", parse::SystemId::kLiberty));
    opts.tenants.push_back(tenant("shard-b", parse::SystemId::kSpirit));
    opts.tenants.push_back(tenant("shard-c", parse::SystemId::kThunderbird));
    opts.tenants.push_back(tenant("shard-u", parse::SystemId::kLiberty));
    start(std::move(opts));
    const std::uint16_t port = server_->tcp_port(0);

    auto feed = [port](const std::string& name, const char* system,
                       const std::vector<std::string>& lines) {
      SinkOptions sopts;
      sopts.endpoint = {Transport::kTcp, "127.0.0.1", port};
      sopts.tenant = name;
      sopts.system_short = system;
      SinkClient client(sopts);
      for (const auto& line : lines) client.send(0, line);
      client.close();
    };
    std::thread ta(feed, "shard-a", "liberty", std::cref(lib_lines));
    std::thread tb(feed, "shard-b", "spirit", std::cref(spi_lines));
    std::thread tc(feed, "shard-c", "tbird", std::cref(thu_lines));
    std::thread tu([this] {
      Fd tx = udp_socket();
      const Ipv4 to = resolve_ipv4("127.0.0.1", server_->udp_port(0));
      for (int i = 0; i < 100; ++i) {
        const std::string gram = "udp line " + std::to_string(i) + "\n";
        ASSERT_TRUE(send_dgram(tx.get(), to, gram.data(), gram.size()));
      }
    });
    ta.join();
    tb.join();
    tc.join();
    tu.join();
    wait_status_contains("\"name\":\"shard-a\",\"system\":\"liberty\","
                         "\"delivered\":" +
                         std::to_string(lib_lines.size()));
    wait_status_contains("\"name\":\"shard-b\",\"system\":\"spirit\","
                         "\"delivered\":" +
                         std::to_string(spi_lines.size()));
    wait_status_contains("\"name\":\"shard-c\",\"system\":\"tbird\","
                         "\"delivered\":" +
                         std::to_string(thu_lines.size()));
    wait_status_contains("\"name\":\"shard-u\",\"system\":\"liberty\","
                         "\"delivered\":100");
    RunResult r;
    r.status = server_->status_json();
    r.report = stop();
    return r;
  };

  const RunResult at1 = run_at(1);
  const RunResult at2 = run_at(2);
  const RunResult at4 = run_at(4);

  const std::uint64_t expected_delivered =
      lib_lines.size() + spi_lines.size() + thu_lines.size() + 100;
  for (const RunResult* r : {&at1, &at2, &at4}) {
    ASSERT_EQ(r->report.tenants.size(), 4u);
    std::uint64_t tenant_sum = 0;
    for (const auto& t : r->report.tenants) {
      EXPECT_EQ(t.dropped, 0u) << t.name;
      EXPECT_EQ(t.ingested, t.delivered) << t.name;
      tenant_sum += t.delivered;
    }
    EXPECT_EQ(tenant_sum, expected_delivered);
    EXPECT_EQ(r->report.connections, 3u);
    EXPECT_EQ(r->report.protocol_errors, 0u);
  }

  // The equivalence core: every per-tenant table and counter is
  // independent of the shard count.
  for (const char* name : {"shard-a", "shard-b", "shard-c", "shard-u"}) {
    const ServeTenantReport* t1 = find_tenant(at1.report, name);
    const ServeTenantReport* t2 = find_tenant(at2.report, name);
    const ServeTenantReport* t4 = find_tenant(at4.report, name);
    ASSERT_NE(t1, nullptr);
    ASSERT_NE(t2, nullptr);
    ASSERT_NE(t4, nullptr);
    EXPECT_EQ(t1->delivered, t2->delivered) << name;
    EXPECT_EQ(t1->delivered, t4->delivered) << name;
    EXPECT_EQ(t1->ingested, t4->ingested) << name;
    EXPECT_EQ(t1->admitted, t2->admitted) << name;
    EXPECT_EQ(t1->admitted, t4->admitted) << name;
    EXPECT_EQ(t1->table, t2->table) << name << ": tables diverge at 2 shards";
    EXPECT_EQ(t1->table, t4->table) << name << ": tables diverge at 4 shards";
  }

  // Per-shard /status counters must sum to what the clients delivered.
  for (const RunResult* r : {&at1, &at2, &at4}) {
    const std::uint64_t shards =
        num_after(r->status, "\"loop_shards\":", "\"loop_shards\":");
    std::uint64_t shard_delivered = 0;
    std::uint64_t shard_conns = 0;
    for (std::uint64_t k = 0; k < shards; ++k) {
      const std::string anchor = "{\"shard\":" + std::to_string(k) + ",";
      shard_conns += num_after(r->status, anchor, "\"connections\":");
      shard_delivered += num_after(r->status, anchor, "\"delivered\":");
    }
    EXPECT_EQ(shard_delivered, expected_delivered);
    EXPECT_EQ(shard_conns, 3u);
  }
  EXPECT_EQ(num_after(at4.status, "\"loop_shards\":", "\"loop_shards\":"), 4u);
}

TEST_F(NetShardsTest, ChurnSoakThousandConnectionsAllAccounted) {
  // ~1k short-lived connections against 4 shards, bounded concurrency
  // (16 writer threads x 64 sequential connections each): every
  // connection and every line must land in the accounting -- no lost
  // wakeups, no stuck accepts, no miscounted shard hand-offs.
  constexpr int kThreads = 16;
  constexpr int kConnsPerThread = 64;
  constexpr int kLinesPerConn = 5;
  constexpr std::uint64_t kConns =
      std::uint64_t{kThreads} * kConnsPerThread;
  constexpr std::uint64_t kLines = kConns * kLinesPerConn;

  ServeOptions opts;
  opts.loop_shards = 4;
  opts.tcp.push_back({0, "churn"});  // port-keyed: data from byte one
  opts.tenants.push_back(tenant("churn", parse::SystemId::kLiberty,
                                /*queue=*/1 << 15));
  start(std::move(opts));
  const std::uint16_t port = server_->tcp_port(0);

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([port, w] {
      for (int c = 0; c < kConnsPerThread; ++c) {
        Fd fd = connect_tcp(resolve_ipv4("127.0.0.1", port));
        std::string payload;
        for (int l = 0; l < kLinesPerConn; ++l) {
          payload += "churn w" + std::to_string(w) + " c" +
                     std::to_string(c) + " l" + std::to_string(l) + "\n";
        }
        write_all(fd.get(), payload.data(), payload.size());
        // Orderly FIN; the server flushes any buffered tail at EOF.
      }
    });
  }
  for (auto& t : writers) t.join();

  wait_status_contains("\"connections_total\":" + std::to_string(kConns));
  wait_status_contains("\"delivered\":" + std::to_string(kLines));
  const std::string status = server_->status_json();

  const ServeReport report = stop();
  EXPECT_EQ(report.connections, kConns);
  EXPECT_EQ(report.protocol_errors, 0u);
  const ServeTenantReport* t = find_tenant(report, "churn");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, kLines);
  EXPECT_EQ(t->dropped, 0u) << "TCP must pause, never evict, even churning";
  EXPECT_EQ(t->ingested, kLines);

  // All four shards' counters sum to the totals; with 1k 4-tuples the
  // kernel hash spreads them, so no shard should have sat idle.
  std::uint64_t shard_conns = 0;
  std::uint64_t shard_delivered = 0;
  int active_shards = 0;
  for (int k = 0; k < 4; ++k) {
    const std::string anchor = "{\"shard\":" + std::to_string(k) + ",";
    const std::uint64_t conns = num_after(status, anchor, "\"connections\":");
    shard_conns += conns;
    shard_delivered += num_after(status, anchor, "\"delivered\":");
    if (conns > 0) ++active_shards;
  }
  EXPECT_EQ(shard_conns, kConns);
  EXPECT_EQ(shard_delivered, kLines);
  EXPECT_GE(active_shards, 2) << "reuseport never spread the load";
}

TEST_F(NetShardsTest, AutoShardCountBindsAndServes) {
  ServeOptions opts;
  opts.loop_shards = 0;  // auto: hardware concurrency, capped at 8
  opts.tcp.push_back({0, "auto"});
  opts.tenants.push_back(tenant("auto", parse::SystemId::kLiberty));
  start(std::move(opts));

  SinkOptions sopts;
  sopts.endpoint = {Transport::kTcp, "127.0.0.1", server_->tcp_port(0)};
  SinkClient client(sopts);
  client.send(0, "one line through auto shards");
  client.close();
  wait_status_contains("\"name\":\"auto\",\"system\":\"liberty\","
                       "\"delivered\":1");

  const std::string status = server_->status_json();
  const std::uint64_t shards =
      num_after(status, "\"loop_shards\":", "\"loop_shards\":");
  EXPECT_GE(shards, 1u);
  EXPECT_LE(shards, 8u);

  const ServeTenantReport* t = find_tenant(stop(), "auto");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, 1u);
}

}  // namespace
}  // namespace wss::net
