#include "sim/chatter.hpp"

#include <gtest/gtest.h>

#include <map>

namespace wss::sim {
namespace {

using parse::Severity;
using parse::SystemId;

TEST(Chatter, ClassTotalsAreCalibrated) {
  // Non-alert totals = Table 2 messages - Table 4 alert sums.
  EXPECT_EQ(chatter_total(SystemId::kBlueGeneL), 4747963u - 348460u);
  EXPECT_EQ(chatter_total(SystemId::kThunderbird), 211212192u - 3248239u);
  EXPECT_EQ(chatter_total(SystemId::kLiberty), 265569231u - 2452u);
  EXPECT_EQ(chatter_total(SystemId::kSpirit), 272298969u - 172816563u);
  EXPECT_EQ(chatter_total(SystemId::kRedStorm), 219096168u - 1665744u);
}

TEST(Chatter, BglStrataMatchTable5Residuals) {
  std::map<Severity, std::uint64_t> by_sev;
  for (const auto& c : chatter_classes(SystemId::kBlueGeneL)) {
    by_sev[c.severity] += c.paper_count;
  }
  // Table 5 messages minus alert severities.
  EXPECT_EQ(by_sev[Severity::kFatal], 855501u - 348398u);
  EXPECT_EQ(by_sev[Severity::kFailure], 1714u - 62u);
  EXPECT_EQ(by_sev[Severity::kInfo], 3735823u);
  EXPECT_EQ(by_sev[Severity::kSevere], 19213u);
}

TEST(Chatter, RedStormSyslogStrataMatchTable6Residuals) {
  std::map<Severity, std::uint64_t> by_sev;
  for (const auto& c : chatter_classes(SystemId::kRedStorm)) {
    if (c.path == tag::LogPath::kRsSyslog) by_sev[c.severity] += c.paper_count;
  }
  EXPECT_EQ(by_sev[Severity::kCrit], 1552910u - 1550217u);
  EXPECT_EQ(by_sev[Severity::kError], 2027598u - 11784u);
  EXPECT_EQ(by_sev[Severity::kWarning], 2154944u - 270u);
  EXPECT_EQ(by_sev[Severity::kEmerg], 3u);
}

TEST(Chatter, GenerationRespectsVolumeAndWindow) {
  const auto& spec = system_spec(SystemId::kLiberty);
  SimOptions opts;
  opts.chatter_events = 5000;
  const SourceNamer namer(spec.id, spec.n_sources);
  util::Rng rng(1);
  const auto events = generate_chatter(spec, opts, namer, rng);
  EXPECT_EQ(events.size(), 5000u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  for (const auto& e : events) {
    EXPECT_GE(e.time, spec.start_time());
    EXPECT_LT(e.time, spec.end_time());
    EXPECT_EQ(e.category, -1);
    EXPECT_LT(e.chatter_kind, chatter_templates(spec.id).size());
  }
}

TEST(Chatter, WeightedTotalReproducesPaperCount) {
  const auto& spec = system_spec(SystemId::kThunderbird);
  SimOptions opts;
  opts.chatter_events = 20000;
  const SourceNamer namer(spec.id, spec.n_sources);
  util::Rng rng(2);
  const auto events = generate_chatter(spec, opts, namer, rng);
  double weighted = 0.0;
  for (const auto& e : events) weighted += e.weight;
  EXPECT_NEAR(weighted / static_cast<double>(chatter_total(spec.id)), 1.0,
              1e-6);
}

TEST(Chatter, BglSeverityMarginalsExactByWeight) {
  const auto& spec = system_spec(SystemId::kBlueGeneL);
  SimOptions opts;
  opts.chatter_events = 30000;
  const SourceNamer namer(spec.id, spec.n_sources);
  util::Rng rng(3);
  const auto events = generate_chatter(spec, opts, namer, rng);
  std::map<Severity, double> weighted;
  for (const auto& e : events) weighted[e.severity] += e.weight;
  // Deterministic apportionment: weighted counts land within one
  // weight quantum of the calibrated stratum totals.
  for (const auto& cls : chatter_classes(spec.id)) {
    EXPECT_NEAR(weighted[cls.severity] /
                    static_cast<double>(cls.paper_count),
                1.0, 0.01)
        << static_cast<int>(cls.severity);
  }
}

TEST(Chatter, AdminNodesAreChattiest) {
  const auto& spec = system_spec(SystemId::kLiberty);
  SimOptions opts;
  opts.chatter_events = 30000;
  const SourceNamer namer(spec.id, spec.n_sources);
  util::Rng rng(4);
  const auto events = generate_chatter(spec, opts, namer, rng);
  std::map<std::uint32_t, std::size_t> by_source;
  for (const auto& e : events) ++by_source[e.source];
  // The single chattiest source is an admin node.
  std::uint32_t top = 0;
  std::size_t top_count = 0;
  for (const auto& [src, count] : by_source) {
    if (count > top_count) {
      top = src;
      top_count = count;
    }
  }
  EXPECT_TRUE(namer.is_admin(top));
}

TEST(Chatter, LibertyRateProfileShifts) {
  // The OS-upgrade segment boundary at 35% of the window must show a
  // clear rate increase (Figure 2(a)).
  const auto& spec = system_spec(SystemId::kLiberty);
  SimOptions opts;
  opts.chatter_events = 60000;
  const SourceNamer namer(spec.id, spec.n_sources);
  util::Rng rng(5);
  const auto events = generate_chatter(spec, opts, namer, rng);
  const auto window = spec.end_time() - spec.start_time();
  std::size_t before = 0;
  std::size_t after = 0;
  for (const auto& e : events) {
    const double f = static_cast<double>(e.time - spec.start_time()) /
                     static_cast<double>(window);
    if (f < 0.35) ++before;
    if (f >= 0.35 && f < 0.65) ++after;
  }
  const double rate_before = static_cast<double>(before) / 0.35;
  const double rate_after = static_cast<double>(after) / 0.30;
  EXPECT_GT(rate_after, rate_before * 1.4);
}

TEST(Chatter, RateProfilesWellFormed) {
  for (const auto id : parse::kAllSystems) {
    const auto& profile = rate_profile(id);
    ASSERT_FALSE(profile.empty());
    EXPECT_DOUBLE_EQ(profile.front().first, 0.0);
    for (std::size_t i = 1; i < profile.size(); ++i) {
      EXPECT_GT(profile[i].first, profile[i - 1].first);
      EXPECT_LT(profile[i].first, 1.0);
    }
    for (const auto& [start, mult] : profile) EXPECT_GT(mult, 0.0);
  }
}

}  // namespace
}  // namespace wss::sim
