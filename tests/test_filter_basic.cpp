// Temporal and spatial filter semantics (Section 3.3.2 definitions).
#include <gtest/gtest.h>

#include "filter/spatial.hpp"
#include "filter/temporal.hpp"

namespace wss::filter {
namespace {

using util::kUsPerSec;
constexpr util::TimeUs T = 5 * kUsPerSec;

Alert at(double sec, std::uint32_t source, std::uint16_t cat = 0) {
  Alert a;
  a.time = static_cast<util::TimeUs>(sec * 1e6);
  a.source = source;
  a.category = cat;
  return a;
}

TEST(Temporal, KeepsFirstOfChain) {
  // "if a node reports a particular alert every T seconds for a week,
  // the temporal filter keeps only the first."
  TemporalFilter f(T);
  std::vector<Alert> in;
  for (int i = 0; i < 100; ++i) in.push_back(at(i * 4.9, 1));
  const auto out = apply_filter(f, in);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, in[0].time);
}

TEST(Temporal, SlidingWindowNotFixed) {
  // Gaps of 4s each: total span 12s > T, still one survivor (sliding).
  TemporalFilter f(T);
  const auto out =
      apply_filter(f, {at(0, 1), at(4, 1), at(8, 1), at(12, 1)});
  EXPECT_EQ(out.size(), 1u);
}

TEST(Temporal, SeparateSourcesIndependent) {
  TemporalFilter f(T);
  const auto out = apply_filter(f, {at(0, 1), at(1, 2), at(2, 3)});
  EXPECT_EQ(out.size(), 3u);
}

TEST(Temporal, SeparateCategoriesIndependent) {
  TemporalFilter f(T);
  const auto out = apply_filter(f, {at(0, 1, 0), at(1, 1, 1), at(2, 1, 2)});
  EXPECT_EQ(out.size(), 3u);
}

TEST(Temporal, GapAboveThresholdKept) {
  TemporalFilter f(T);
  const auto out = apply_filter(f, {at(0, 1), at(5.1, 1)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Temporal, ExactThresholdBoundary) {
  // Redundant iff strictly within T ("< T" in Algorithm 3.1).
  TemporalFilter f(T);
  const auto out = apply_filter(f, {at(0, 1), at(5.0, 1)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Temporal, RejectsUnsortedInput) {
  TemporalFilter f(T);
  EXPECT_THROW(apply_filter(f, {at(5, 1), at(0, 1)}), std::invalid_argument);
  EXPECT_THROW(TemporalFilter(0), std::invalid_argument);
}

TEST(Temporal, ResetClearsState) {
  TemporalFilter f(T);
  EXPECT_TRUE(f.admit(at(0, 1)));
  EXPECT_FALSE(f.admit(at(1, 1)));
  f.reset();
  EXPECT_TRUE(f.admit(at(2, 1)));
}

TEST(Spatial, RoundRobinCollapses) {
  // "if k nodes report the same alert in a round-robin fashion, each
  // message within T seconds of the last, then only the first is
  // kept."
  SpatialFilter f(T);
  std::vector<Alert> in;
  for (int i = 0; i < 30; ++i) in.push_back(at(i * 3.0, 1 + i % 3));
  const auto out = apply_filter(f, in);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Spatial, SameSourceRepeatsSurvive) {
  // Spatial alone only removes *cross-source* duplicates.
  SpatialFilter f(T);
  const auto out = apply_filter(f, {at(0, 1), at(1, 1), at(2, 1)});
  EXPECT_EQ(out.size(), 3u);
}

TEST(Spatial, OtherSourceWithinTFiltered) {
  SpatialFilter f(T);
  const auto out = apply_filter(f, {at(0, 1), at(3, 2)});
  EXPECT_EQ(out.size(), 1u);
}

TEST(Spatial, TwoSlotHistoryCatchesOlderOtherSource) {
  // B@0, A@3, A@4: A@4 must still be removed because of B@0 even
  // though the most recent report is A's own.
  SpatialFilter f(T);
  std::vector<Alert> in = {at(0, 2), at(3, 1), at(4, 1)};
  f.reset();
  EXPECT_TRUE(f.admit(in[0]));
  EXPECT_FALSE(f.admit(in[1]));  // other source B within T
  EXPECT_FALSE(f.admit(in[2]));  // B@0 still within T
}

TEST(Spatial, CategoriesIndependent) {
  SpatialFilter f(T);
  const auto out = apply_filter(f, {at(0, 1, 0), at(1, 2, 1)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Spatial, RejectsBadThreshold) {
  EXPECT_THROW(SpatialFilter(-1), std::invalid_argument);
}

TEST(AlertHelpers, TypeNames) {
  EXPECT_EQ(alert_type_name(AlertType::kHardware), "Hardware");
  EXPECT_EQ(alert_type_letter(AlertType::kSoftware), 'S');
  EXPECT_EQ(alert_type_letter(AlertType::kIndeterminate), 'I');
}

TEST(AlertHelpers, SortAlerts) {
  std::vector<Alert> v = {at(5, 1), at(0, 2), at(0, 1)};
  sort_alerts(v);
  EXPECT_EQ(v[0].source, 1u);
  EXPECT_EQ(v[1].source, 2u);
  EXPECT_EQ(v[2].time, static_cast<util::TimeUs>(5e6));
}

}  // namespace
}  // namespace wss::filter
