// Checkpoint v2 metrics round-trip: a stream that checkpoints
// mid-run, restores in a "fresh process" (registry reset), and
// finishes must report exactly the counters and gauges of an
// uninterrupted run. Histograms and spans measure wall time of a
// particular process and are deliberately outside the contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "stream/pipeline.hpp"

namespace wss {
namespace {

using CounterTable = std::vector<std::pair<std::string, std::uint64_t>>;
using GaugeTable = std::vector<std::pair<std::string, std::int64_t>>;

/// The lazy-DFA cache counters measure engine-lifetime cache behavior;
/// a restored engine starts with a cold cache, so they are outside the
/// checkpoint-equality contract (everything else is inside it).
bool cache_state_dependent(const std::string& name) {
  return name == "wss_tag_dfa_scans_total" ||
         name == "wss_tag_pike_fallbacks_total" ||
         name == "wss_tag_dfa_flushes_total";
}

CounterTable comparable_counters() {
  CounterTable out;
  for (auto& kv : obs::registry().counter_values()) {
    if (!cache_state_dependent(kv.first)) out.push_back(std::move(kv));
  }
  return out;
}

sim::SimOptions small_sim() {
  sim::SimOptions opts;
  opts.category_cap = 500;
  opts.chatter_events = 3000;
  return opts;
}

stream::StreamPipelineOptions stream_opts() {
  stream::StreamPipelineOptions popts;
  popts.study.chunk_events = 512;
  return popts;
}

TEST(ObsCheckpoint, RestoreAndFinishReportsIdenticalMetrics) {
  const sim::Simulator simulator(parse::SystemId::kLiberty, small_sim());
  const auto& events = simulator.events();
  ASSERT_GT(events.size(), 1000u);
  // Mid-chunk cut: pending (unpublished) tag and filter deltas must
  // ride the checkpoint via the publish-before-save contract.
  const std::size_t cut = events.size() / 2 + 137;

  // Uninterrupted reference run.
  obs::registry().reset();
  stream::StreamPipeline uninterrupted(parse::SystemId::kLiberty,
                                       stream_opts());
  for (std::size_t i = 0; i < events.size(); ++i) {
    uninterrupted.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  uninterrupted.finish();
  const CounterTable full_counters = comparable_counters();
  const GaugeTable full_gauges = obs::registry().gauge_values();

#ifndef WSS_OBS_OFF
  // Sanity: the reference run actually counted.
  const auto events_total = [&] {
    for (const auto& [n, v] : full_counters) {
      if (n == "wss_stream_events_total") return v;
    }
    return std::uint64_t{0};
  }();
  EXPECT_EQ(events_total, events.size());
#endif

  // Interrupted run: ingest to the cut, save, then simulate a process
  // restart by zeroing the registry before restore.
  obs::registry().reset();
  stream::StreamPipeline first(parse::SystemId::kLiberty, stream_opts());
  for (std::size_t i = 0; i < cut; ++i) {
    first.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  std::stringstream checkpoint;
  first.save(checkpoint);

  obs::registry().reset();
  stream::StreamPipeline resumed(parse::SystemId::kLiberty, stream_opts());
  resumed.restore(checkpoint);
  for (std::size_t i = cut; i < events.size(); ++i) {
    resumed.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  resumed.finish();
  const CounterTable resumed_counters = comparable_counters();
  const GaugeTable resumed_gauges = obs::registry().gauge_values();

  ASSERT_EQ(resumed_counters.size(), full_counters.size());
  for (std::size_t i = 0; i < full_counters.size(); ++i) {
    EXPECT_EQ(resumed_counters[i].first, full_counters[i].first);
    EXPECT_EQ(resumed_counters[i].second, full_counters[i].second)
        << full_counters[i].first;
  }
  ASSERT_EQ(resumed_gauges.size(), full_gauges.size());
  for (std::size_t i = 0; i < full_gauges.size(); ++i) {
    EXPECT_EQ(resumed_gauges[i].first, full_gauges[i].first);
    EXPECT_EQ(resumed_gauges[i].second, full_gauges[i].second)
        << full_gauges[i].first;
  }
}

TEST(ObsCheckpoint, SaveIsIdempotentOnMetrics) {
  // Saving twice (double publish) must not double-count anything: the
  // flushers publish deltas, and a delta published once is gone.
  const sim::Simulator simulator(parse::SystemId::kSpirit, small_sim());
  const auto& events = simulator.events();
  obs::registry().reset();
  stream::StreamPipeline p(parse::SystemId::kSpirit, stream_opts());
  for (std::size_t i = 0; i < events.size() / 2; ++i) {
    p.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  std::stringstream snap1;
  p.save(snap1);
  const CounterTable after_first = obs::registry().counter_values();
  std::stringstream snap2;
  p.save(snap2);
  const CounterTable after_second = obs::registry().counter_values();
  ASSERT_EQ(after_first.size(), after_second.size());
  for (std::size_t i = 0; i < after_first.size(); ++i) {
    EXPECT_EQ(after_first[i].second, after_second[i].second)
        << after_first[i].first;
  }
  // And both serialized registries are byte-identical.
  EXPECT_EQ(snap1.str(), snap2.str());
}

}  // namespace
}  // namespace wss
