// `--metrics FILE` end-to-end: every command can snapshot the
// observability registry on exit, as JSON (schema wss.obs.v1) or
// Prometheus text (.prom), and the snapshot carries the pipeline /
// stream / filter / tag counters the run actually produced.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/commands.hpp"
#include "obs/metrics.hpp"

namespace wss::cli {
namespace {

namespace fs = std::filesystem;

Args make_args(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"wss"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

class ObsCliMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_obs_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_tokens(std::vector<std::string> tokens) {
    out_.str("");
    err_.str("");
    return run(make_args(std::move(tokens)), out_, err_);
  }

  static std::string slurp(const fs::path& p) {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }

  /// First "name value" sample for `name` in Prometheus text; -1 when
  /// the metric is absent.
  static long long prom_value(const std::string& text,
                              const std::string& name) {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (line.rfind(name + " ", 0) == 0) {
        return std::stoll(line.substr(name.size() + 1));
      }
    }
    return -1;
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(ObsCliMetricsTest, StudyWritesJsonSnapshot) {
  const auto path = (dir_ / "study.json").string();
  ASSERT_EQ(run_tokens({"study", "--system", "liberty", "--threads", "2",
                        "--cap", "300", "--chatter", "2000", "--metrics",
                        path}),
            0);
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"schema\": \"wss.obs.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wss_pipeline_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"wss_filter_offered_total\""), std::string::npos);
  EXPECT_NE(json.find("\"wss_tag_lines_total\""), std::string::npos);
#ifndef WSS_OBS_OFF
  // The cmd_study span closed before the snapshot, so it appears with
  // a real count (an open span would read 0).
  EXPECT_NE(json.find("\"path\": \"cmd_study\", \"count\": 1"),
            std::string::npos);
#endif
}

TEST_F(ObsCliMetricsTest, StreamWritesPrometheusSnapshot) {
  obs::registry().reset();  // isolate from earlier in-process commands
  const auto path = (dir_ / "stream.prom").string();
  ASSERT_EQ(run_tokens({"stream", "--system", "liberty", "--cap", "300",
                        "--chatter", "2000", "--metrics", path}),
            0);
  const std::string prom = slurp(path);
  EXPECT_NE(prom.find("# TYPE wss_stream_events_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE wss_stream_ingest_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("wss_stream_ingest_latency_seconds_bucket"),
            std::string::npos);
#ifndef WSS_OBS_OFF
  // One event stream, counted once by each layer: the stream engine
  // and the shared pipeline reducer must agree exactly.
  const long long stream_events = prom_value(prom, "wss_stream_events_total");
  const long long pipeline_events =
      prom_value(prom, "wss_pipeline_events_total");
  EXPECT_GT(stream_events, 0);
  EXPECT_EQ(stream_events, pipeline_events);
  EXPECT_EQ(prom_value(prom, "wss_filter_offered_total"),
            prom_value(prom, "wss_filter_admitted_total") +
                prom_value(prom, "wss_filter_suppressed_total"));
#endif
}

TEST_F(ObsCliMetricsTest, AnalyzeWritesMetricsAfterFileRun) {
  const auto log = (dir_ / "log.txt").string();
  const auto path = (dir_ / "analyze.json").string();
  ASSERT_EQ(run_tokens({"generate", "--system", "liberty", "--out", log,
                        "--cap", "300", "--chatter", "2000"}),
            0);
  obs::registry().reset();
  ASSERT_EQ(run_tokens({"analyze", "--system", "liberty", "--in", log,
                        "--metrics", path}),
            0);
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"wss_tag_lines_total\""), std::string::npos);
  EXPECT_NE(json.find("\"wss_filter_offered_total\""), std::string::npos);
#ifndef WSS_OBS_OFF
  EXPECT_NE(json.find("\"path\": \"analyze_pass\", \"count\": 1"),
            std::string::npos);
#endif
}

TEST_F(ObsCliMetricsTest, TablesWritesMetrics) {
  const auto path = (dir_ / "tables.prom").string();
  ASSERT_EQ(run_tokens({"tables", "--which", "1", "--metrics", path}), 0);
  EXPECT_TRUE(fs::exists(path));
#ifndef WSS_OBS_OFF
  EXPECT_NE(slurp(path).find("wss_span_hits_total{path=\"cmd_tables\"}"),
            std::string::npos);
#endif
}

}  // namespace
}  // namespace wss::cli
