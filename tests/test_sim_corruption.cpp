#include "sim/corruption.hpp"

#include <gtest/gtest.h>

#include "parse/dispatch.hpp"

namespace wss::sim {
namespace {

const std::string kSyslogLine =
    "Jun  3 15:42:50 sn373 kernel: cciss: cmd 42 has CHECK CONDITION";

TEST(Corruption, NoneConfigIsIdentity) {
  const CorruptionInjector inj(CorruptionConfig::none(), 1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(inj.apply(kSyslogLine, i, tag::LogPath::kSyslog, false),
              kSyslogLine);
  }
}

TEST(Corruption, Deterministic) {
  CorruptionConfig cfg;
  cfg.p_truncate = 0.5;
  const CorruptionInjector a(cfg, 7);
  const CorruptionInjector b(cfg, 7);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.apply(kSyslogLine, i, tag::LogPath::kSyslog, false),
              b.apply(kSyslogLine, i, tag::LogPath::kSyslog, false));
  }
}

TEST(Corruption, AlertsExemptByDefault) {
  CorruptionConfig cfg;
  cfg.p_truncate = 1.0;
  cfg.p_bad_source = 1.0;
  const CorruptionInjector inj(cfg, 3);
  EXPECT_EQ(inj.apply(kSyslogLine, 0, tag::LogPath::kSyslog, true),
            kSyslogLine);
  EXPECT_NE(inj.apply(kSyslogLine, 0, tag::LogPath::kSyslog, false),
            kSyslogLine);
}

TEST(Corruption, TruncationShortensButKeepsHead) {
  CorruptionConfig cfg = CorruptionConfig::none();
  cfg.p_truncate = 1.0;
  cfg.alerts_exempt = false;
  const CorruptionInjector inj(cfg, 5);
  const auto out = inj.apply(kSyslogLine, 0, tag::LogPath::kSyslog, true);
  EXPECT_LT(out.size(), kSyslogLine.size());
  EXPECT_EQ(kSyslogLine.rfind(out, 0), 0u);  // a strict prefix
}

TEST(Corruption, BadSourceDefeatsAttribution) {
  CorruptionConfig cfg = CorruptionConfig::none();
  cfg.p_bad_source = 1.0;
  const CorruptionInjector inj(cfg, 9);
  const auto out = inj.apply(kSyslogLine, 0, tag::LogPath::kSyslog, false);
  const auto rec = parse::parse_line(parse::SystemId::kSpirit, out, 2005);
  EXPECT_TRUE(rec.source_corrupted);
  EXPECT_TRUE(rec.timestamp_valid);  // only the host field is garbled
}

TEST(Corruption, BadTimestampDefeatsParsing) {
  CorruptionConfig cfg = CorruptionConfig::none();
  cfg.p_bad_timestamp = 1.0;
  const CorruptionInjector inj(cfg, 11);
  const auto out = inj.apply(kSyslogLine, 0, tag::LogPath::kSyslog, false);
  const auto rec = parse::parse_line(parse::SystemId::kSpirit, out, 2005);
  EXPECT_FALSE(rec.timestamp_valid);
}

TEST(Corruption, OverwriteAppendsForeignTail) {
  CorruptionConfig cfg = CorruptionConfig::none();
  cfg.p_overwrite = 1.0;
  const CorruptionInjector inj(cfg, 13);
  const auto out = inj.apply(kSyslogLine, 0, tag::LogPath::kSyslog, false);
  EXPECT_NE(out, kSyslogLine);
  // Still parseable without crashing.
  EXPECT_NO_THROW({
    (void)parse::parse_line(parse::SystemId::kSpirit, out, 2005);
  });
}

TEST(Corruption, EventRouterSourceSpan) {
  CorruptionConfig cfg = CorruptionConfig::none();
  cfg.p_bad_source = 1.0;
  const CorruptionInjector inj(cfg, 17);
  const std::string line =
      "2006-03-19 10:00:00 ec_heartbeat_stop src:::c1-0c0s3n0 "
      "svc:::c1-0c0s3n0 warn node heartbeat_fault 1";
  const auto out = inj.apply(line, 0, tag::LogPath::kRsEventRouter, false);
  const auto rec =
      parse::parse_line(parse::SystemId::kRedStorm, out, 2006);
  EXPECT_TRUE(rec.source_corrupted);
}

TEST(Corruption, EmptyLineSafe) {
  CorruptionConfig cfg;
  cfg.p_truncate = 1.0;
  cfg.alerts_exempt = false;
  const CorruptionInjector inj(cfg, 19);
  EXPECT_EQ(inj.apply("", 0, tag::LogPath::kSyslog, false), "");
}

}  // namespace
}  // namespace wss::sim
