// Differential fuzzing of the SIMD byte kernels: every vector level a
// machine supports must agree with the scalar twin BYTE FOR BYTE, on
// corpora built to break vector code specifically -- embedded NULs,
// CR/LF mixes, >1MiB lines, all 256 byte values, every alignment
// offset 0..63, and lines straddling chunk boundaries at every small
// chunk size. This suite is the correctness backstop for the goldens
// staying bit-identical under WSS_SIMD (DESIGN.md section 5h): if a
// kernel ever undermatches or misreports a position, it fails here
// before any golden can notice.
//
// Levels are forced with simd::set_level; each test restores the
// detected level on exit so ordering cannot leak between tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "match/literal_scanner.hpp"
#include "simd/dispatch.hpp"
#include "simd/scan.hpp"
#include "simd/split.hpp"
#include "util/strings.hpp"

namespace wss::simd {
namespace {

class LevelGuard {
 public:
  ~LevelGuard() { set_level(detected_level()); }
};

/// Adversarial corpora. Each string is used both as a haystack and,
/// sliced at alignment offsets, as unaligned sub-haystacks.
std::vector<std::string> corpora() {
  std::vector<std::string> out;

  out.push_back("");
  out.push_back("\n");
  out.push_back("no newline at all");
  out.push_back("trailing\n");
  out.push_back("\n\n\n\n");
  out.push_back("a\r\nb\rc\nd\n\r\n");
  out.push_back(std::string("embedded\0nul\nand\0more\n", 22));

  // All 256 byte values, forwards and repeated past one vector block.
  std::string all256;
  for (int i = 0; i < 256; ++i) all256.push_back(static_cast<char>(i));
  out.push_back(all256);
  out.push_back(all256 + all256 + all256);

  // A >1MiB single line, newline only at the very end.
  std::string huge(1 << 21, 'x');
  huge[huge.size() / 2] = ' ';  // one field boundary deep inside
  huge.push_back('\n');
  out.push_back(huge);

  // Dense newlines around block boundaries: '\n' at every position
  // mod 15, 16, 17, 31, 32, 33 to straddle 16B and 32B lanes.
  for (const int stride : {15, 16, 17, 31, 32, 33}) {
    std::string s(4096, 'q');
    for (std::size_t i = static_cast<std::size_t>(stride); i < s.size();
         i += static_cast<std::size_t>(stride)) {
      s[i] = '\n';
    }
    out.push_back(s);
  }

  // Deterministic random soup: printable + whitespace + NUL + high
  // bytes, the mix log corruption actually produces.
  std::mt19937 rng(0x5EED);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz 0123456789\t\r\n\f\v:._-[]";
  std::string soup;
  for (int i = 0; i < 100000; ++i) {
    const auto roll = rng();
    if (roll % 97 == 0) {
      soup.push_back(static_cast<char>(roll >> 8));  // any byte value
    } else {
      soup.push_back(alphabet[roll % alphabet.size()]);
    }
  }
  out.push_back(soup);
  return out;
}

std::vector<Level> vector_levels() {
  std::vector<Level> out;
  for (const Level l : supported_levels()) {
    if (l != Level::kScalar) out.push_back(l);
  }
  return out;
}

TEST(SimdDispatch, DetectionAndForcing) {
  const LevelGuard guard;
  EXPECT_TRUE(level_supported(Level::kScalar));
  EXPECT_TRUE(level_supported(detected_level()));
  for (const Level l : supported_levels()) {
    EXPECT_TRUE(set_level(l));
    EXPECT_EQ(active_level(), l);
  }
  EXPECT_EQ(parse_level("AVX2"), Level::kAvx2);
  EXPECT_EQ(parse_level("scalar"), Level::kScalar);
  EXPECT_FALSE(parse_level("avx512").has_value());
}

// find_byte: every level, every corpus, every alignment offset 0..63,
// every occurrence (not just the first -- walk the haystack).
TEST(SimdDifferential, FindByteAllLevelsAllAlignments) {
  const LevelGuard guard;
  const auto levels = vector_levels();
  for (const std::string& corpus : corpora()) {
    // Large corpora test long-scan correctness; the full 0..63
    // alignment sweep rides the small ones.
    const std::size_t max_off = corpus.size() > 65536 ? 4 : 64;
    for (std::size_t off = 0; off < max_off && off <= corpus.size(); ++off) {
      const char* begin = corpus.data() + off;
      const char* const end = corpus.data() + corpus.size();
      for (const unsigned char needle :
           {static_cast<unsigned char>('\n'), static_cast<unsigned char>('\0'),
            static_cast<unsigned char>(' '),
            static_cast<unsigned char>(0xff)}) {
        const char* ps = begin;
        // Walk occurrences with the scalar twin as the reference
        // (capped: dense corpora would otherwise make this quadratic).
        for (int walked = 0; walked < 256; ++walked) {
          const char* ref = find_byte(Level::kScalar, ps, end, needle);
          for (const Level l : levels) {
            ASSERT_EQ(find_byte(l, ps, end, needle), ref)
                << level_name(l) << " off=" << off << " needle="
                << static_cast<int>(needle);
          }
          if (ref == end) break;
          ps = ref + 1;
        }
      }
    }
  }
}

// find_in_set / find_not_in_set against sets chosen to stress the
// nibble approximation: the whitespace set, a set with nibble
// collisions (members sharing lo/hi nibbles with non-members), a
// full set, a singleton.
TEST(SimdDifferential, ByteSetScansMatchScalar) {
  const LevelGuard guard;
  const auto levels = vector_levels();
  std::vector<NibbleSet> sets;
  sets.push_back(make_nibble_set(" \t\n\r\f\v"));
  // 'a'(0x61) in the set forces the approximation to also flag
  // 'q'(0x71)/'1'(0x31) via hi-nibble groups -- classic collision.
  sets.push_back(make_nibble_set("a"));
  sets.push_back(make_nibble_set("az09\x00\xff\x10\x01"));
  std::string everything;
  for (int i = 0; i < 256; ++i) everything.push_back(static_cast<char>(i));
  sets.push_back(make_nibble_set(everything));
  sets.push_back(NibbleSet{});  // empty set

  for (const std::string& corpus : corpora()) {
    const std::size_t max_off = corpus.size() > 65536 ? 4 : 64;
    for (std::size_t off = 0; off < max_off && off <= corpus.size(); ++off) {
      const char* begin = corpus.data() + off;
      const char* const end = corpus.data() + corpus.size();
      for (const NibbleSet& s : sets) {
        const char* ps = begin;
        for (int walked = 0; walked < 256; ++walked) {
          const char* ref = find_in_set(Level::kScalar, ps, end, s);
          for (const Level l : levels) {
            ASSERT_EQ(find_in_set(l, ps, end, s), ref) << level_name(l);
          }
          if (ref == end) break;
          ps = ref + 1;
        }
        ps = begin;
        for (int walked = 0; walked < 256; ++walked) {
          const char* ref = find_not_in_set(Level::kScalar, ps, end, s);
          for (const Level l : levels) {
            ASSERT_EQ(find_not_in_set(l, ps, end, s), ref) << level_name(l);
          }
          if (ref == end) break;
          ps = ref + 1;
        }
      }
    }
  }
}

// The nibble membership tables themselves: a byte in the set must
// always be flagged by the approximation (overmatch allowed, under-
// match never). Checked over all 256 byte values.
TEST(SimdDifferential, NibbleApproximationNeverUndermatches) {
  NibbleSet s = make_nibble_set("az09 \t\xff\x80\x7f");
  for (int b = 0; b < 256; ++b) {
    const auto ub = static_cast<unsigned char>(b);
    const bool approx = (s.lo[ub & 0xf] & s.hi[ub >> 4]) != 0;
    if (s.contains(ub)) {
      EXPECT_TRUE(approx) << "byte " << b << " undermatched";
    }
  }
}

// pair_find: the vectorized Aho-Corasick root skip must stop at
// exactly the position the scalar twin stops at -- the bucketed
// nibble approximation may overmatch internally, but the exact-bitmap
// re-check makes the returned position identical. Walked across all
// hits at every level, every corpus, several alignments.
TEST(SimdDifferential, PairFindMatchesScalarAtEveryLevel) {
  const LevelGuard guard;
  PairTables t;
  pair_tables_add_pair(t, 'e', 'c');
  pair_tables_add_pair(t, 'f', 'a');
  pair_tables_add_single(t, '!');
  // The exact bitmap, built the way LiteralScanner builds it: pair
  // prefixes get one bit, one-byte literals a full 256-wide row.
  std::vector<std::uint64_t> bitmap(1024, 0);
  const auto add_pair = [&](unsigned char a, unsigned char b) {
    const std::uint32_t idx = (static_cast<std::uint32_t>(a) << 8) | b;
    bitmap[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  };
  add_pair('e', 'c');
  add_pair('f', 'a');
  for (std::uint32_t b1 = 0; b1 < 256; ++b1) {
    add_pair('!', static_cast<unsigned char>(b1));
  }

  for (const std::string& corpus : corpora()) {
    const std::size_t max_off = corpus.size() > 65536 ? 4 : 64;
    for (std::size_t off = 0; off < max_off && off <= corpus.size(); ++off) {
      const char* ps = corpus.data() + off;
      const char* const end = corpus.data() + corpus.size();
      for (int walked = 0; walked < 256; ++walked) {
        const char* ref =
            pair_find(Level::kScalar, ps, end, t, bitmap.data());
        for (const Level l : vector_levels()) {
          ASSERT_EQ(pair_find(l, ps, end, t, bitmap.data()), ref)
              << level_name(l);
        }
        if (ref == end || ref + 1 == end) break;
        ps = ref + 1;
      }
    }
  }
}

// The 16-31 byte band (and 17-32 for pair_find, whose kernels need one
// byte of lookahead) is where the avx2 dispatcher hands off to the
// sse2 twin instead of letting the avx2 kernel fail its own 32-byte
// guard and hop. Token lengths in real log fields live exactly here,
// so this band gets its own exhaustive sweep: every length across the
// handoff boundaries, every alignment offset 0..15, needle at every
// position plus absent, at every supported level.
TEST(SimdDifferential, ShortRangeBandMatchesScalarAtEveryLevel) {
  const LevelGuard guard;
  const auto levels = vector_levels();
  const NibbleSet ws = make_nibble_set(" \t\n\r\f\v");
  PairTables t;
  pair_tables_add_pair(t, 'K', 'E');
  std::vector<std::uint64_t> bitmap(1024, 0);
  const std::uint32_t idx = (std::uint32_t{'K'} << 8) | 'E';
  bitmap[idx >> 6] |= std::uint64_t{1} << (idx & 63);

  // Backing buffer padded so every (offset, len) slice is in bounds
  // and the bytes after `end` are non-matching (kernels must not read
  // conclusions from them even if they over-read within the page).
  std::mt19937 rng(0xBAD5EED);
  for (std::size_t len = 14; len <= 36; ++len) {
    for (std::size_t off = 0; off < 16; ++off) {
      std::string buf(off + len + 64, 'q');
      for (char& ch : buf) {
        ch = static_cast<char>('a' + rng() % 26);
      }
      char* const begin = buf.data() + off;
      char* const end = begin + len;
      // `pos == len` leaves the needle absent entirely.
      for (std::size_t pos = 0; pos <= len; ++pos) {
        const std::string saved(begin, len);
        if (pos < len) begin[pos] = '\n';
        if (pos + 1 < len) begin[pos + 1] = ' ';
        const char* ref = find_byte(Level::kScalar, begin, end, '\n');
        const char* ref_set = find_in_set(Level::kScalar, begin, end, ws);
        const char* ref_not = find_not_in_set(Level::kScalar, begin, end, ws);
        for (const Level l : levels) {
          ASSERT_EQ(find_byte(l, begin, end, '\n'), ref)
              << level_name(l) << " len=" << len << " off=" << off
              << " pos=" << pos;
          ASSERT_EQ(find_in_set(l, begin, end, ws), ref_set)
              << level_name(l) << " len=" << len << " off=" << off;
          ASSERT_EQ(find_not_in_set(l, begin, end, ws), ref_not)
              << level_name(l) << " len=" << len << " off=" << off;
        }
        // pair_find with the 'KE' prefix planted at `pos` (needs two
        // bytes, so cap at len-1); also covers the absent case.
        if (pos + 1 < len) {
          begin[pos] = 'K';
          begin[pos + 1] = 'E';
        }
        const char* ref_pair =
            pair_find(Level::kScalar, begin, end, t, bitmap.data());
        for (const Level l : levels) {
          ASSERT_EQ(pair_find(l, begin, end, t, bitmap.data()), ref_pair)
              << level_name(l) << " len=" << len << " off=" << off
              << " pos=" << pos;
        }
        std::copy(saved.begin(), saved.end(), begin);
      }
    }
  }
}

// split_fields must agree with a plain scalar reference at every
// level (it is the parse layer's field scan).
TEST(SimdDifferential, SplitFieldsMatchesScalarReference) {
  const LevelGuard guard;
  const auto reference = [](std::string_view s) {
    const auto is_space = [](char c) {
      return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
             c == '\v';
    };
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && is_space(s[i])) ++i;
      const std::size_t start = i;
      while (i < s.size() && !is_space(s[i])) ++i;
      if (i > start) out.push_back(s.substr(start, i - start));
    }
    return out;
  };
  for (const std::string& corpus : corpora()) {
    const auto ref = reference(corpus);
    for (const Level l : supported_levels()) {
      ASSERT_TRUE(set_level(l));
      std::vector<std::string_view> got;
      util::split_fields(corpus, got);
      ASSERT_EQ(got, ref) << level_name(l);
    }
  }
}

/// getline reference for the splitter comparisons.
std::vector<std::string> getline_reference(std::string_view text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      out.emplace_back(text.substr(pos));
      break;
    }
    out.emplace_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return out;
}

TEST(SimdDifferential, ForEachLineMatchesGetlineAtEveryLevel) {
  const LevelGuard guard;
  for (const std::string& corpus : corpora()) {
    const auto ref = getline_reference(corpus);
    for (const Level l : supported_levels()) {
      ASSERT_TRUE(set_level(l));
      std::vector<std::string> got;
      for_each_line(corpus,
                    [&](std::string_view line) { got.emplace_back(line); });
      ASSERT_EQ(got, ref) << level_name(l);
    }
  }
}

// ChunkSplitter: identical output whatever the chunking -- 1-byte
// feeds, prime-sized feeds, feeds splitting exactly at '\n', at
// vector-width boundaries, and whole-corpus feeds.
TEST(SimdDifferential, ChunkSplitterInvariantUnderChunking) {
  const LevelGuard guard;
  for (const std::string& corpus : corpora()) {
    const auto ref = getline_reference(corpus);
    for (const Level l : supported_levels()) {
      ASSERT_TRUE(set_level(l));
      for (const std::size_t chunk :
           {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{16},
            std::size_t{17}, std::size_t{32}, std::size_t{33},
            std::size_t{4096}, corpus.size() + 1}) {
        ChunkSplitter splitter;
        std::vector<std::string> got;
        const auto emit = [&](std::string_view line) {
          got.emplace_back(line);
        };
        for (std::size_t pos = 0; pos < corpus.size(); pos += chunk) {
          splitter.feed(
              std::string_view(corpus).substr(pos, chunk), emit);
        }
        splitter.finish(emit);
        ASSERT_EQ(got, ref)
            << level_name(l) << " chunk=" << chunk;
      }
    }
  }
}

// ChunkSplitter steady-state: arenas stop growing once they have seen
// the longest line (the zero-allocation contract's storage half).
TEST(SimdDifferential, ChunkSplitterArenaReachesSteadyState) {
  ChunkSplitter splitter;
  const std::string line(100000, 'y');
  const auto drop = [](std::string_view) {};
  for (int round = 0; round < 3; ++round) {
    // Feed the long line in 1KiB chunks (worst case: repeated carry
    // growth), then a newline.
    for (std::size_t p = 0; p < line.size(); p += 1024) {
      splitter.feed(std::string_view(line).substr(p, 1024), drop);
    }
    splitter.feed("\n", drop);
  }
  const std::size_t blocks = splitter.arena_blocks();
  for (int round = 0; round < 5; ++round) {
    for (std::size_t p = 0; p < line.size(); p += 1024) {
      splitter.feed(std::string_view(line).substr(p, 1024), drop);
    }
    splitter.feed("\n", drop);
  }
  EXPECT_EQ(splitter.arena_blocks(), blocks);
}

// The LiteralScanner's vectorized root skip must report the same
// literal bitset at every level, including literals placed to straddle
// block boundaries.
TEST(SimdDifferential, LiteralScannerBitsetsIdenticalAcrossLevels) {
  const LevelGuard guard;
  const std::vector<std::string> literals = {
      "ecc",      "error",   "panic", "EDRAM",  "machine check",
      "!",        "\xff\xfe", "end",  "failure"};
  const match::LiteralScanner scanner{std::vector<std::string>(literals)};
  const std::size_t words = scanner.bitset_words();

  std::vector<std::string> texts = corpora();
  // Plant literals at positions around vector-width boundaries.
  for (const std::size_t at : {0u, 13u, 15u, 16u, 17u, 30u, 31u, 32u, 63u}) {
    std::string s(96, '.');
    s.replace(at, 3, "ecc");
    texts.push_back(s);
    std::string m(96, '.');
    const std::string mc = "machine check";
    m.replace(std::min(at, m.size() - mc.size()), mc.size(), mc);
    texts.push_back(m);
  }

  for (const std::string& text : texts) {
    std::vector<std::uint64_t> ref(words, 0);
    ASSERT_TRUE(set_level(Level::kScalar));
    scanner.scan(text, ref.data());
    for (const Level l : vector_levels()) {
      ASSERT_TRUE(set_level(l));
      std::vector<std::uint64_t> got(words, 0);
      scanner.scan(text, got.data());
      ASSERT_EQ(got, ref) << level_name(l);
    }
  }
}

}  // namespace
}  // namespace wss::simd
