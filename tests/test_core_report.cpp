// Rendered-report content checks: the tables must carry the paper's
// numbers verbatim where calibrated.
#include "core/report.hpp"

#include <gtest/gtest.h>

namespace wss::core {
namespace {

StudyOptions small() { return StudyOptions::small(); }

TEST(ReportTable1, CarriesPaperValues) {
  const std::string t = render_table1();
  EXPECT_NE(t.find("Blue Gene/L"), std::string::npos);
  EXPECT_NE(t.find("131,072"), std::string::npos);  // BG/L procs
  EXPECT_NE(t.find("Infiniband"), std::string::npos);
  EXPECT_NE(t.find("445"), std::string::npos);      // Liberty rank
  EXPECT_NE(t.find("GigEthernet"), std::string::npos);
}

TEST(ReportTable2, CarriesCalibratedCounts) {
  Study study(small());
  const std::string t = render_table2(study);
  EXPECT_NE(t.find("4,747,963"), std::string::npos);    // BG/L messages
  EXPECT_NE(t.find("265,569,231"), std::string::npos);  // Liberty messages
  EXPECT_NE(t.find("348,460"), std::string::npos);      // BG/L alerts
}

TEST(ReportTable3, CarriesTypeRows) {
  Study study(small());
  const std::string t = render_table3(study);
  EXPECT_NE(t.find("Hardware"), std::string::npos);
  EXPECT_NE(t.find("Software"), std::string::npos);
  EXPECT_NE(t.find("Indeterminate"), std::string::npos);
  EXPECT_NE(t.find("98.04"), std::string::npos);
  EXPECT_NE(t.find("174,586,516"), std::string::npos);  // paper H raw
}

TEST(ReportTable4, CarriesCategoryRows) {
  Study study(small());
  const std::string bgl =
      render_table4(study, parse::SystemId::kBlueGeneL);
  EXPECT_NE(bgl.find("H / KERNDTLB"), std::string::npos);
  EXPECT_NE(bgl.find("152,734"), std::string::npos);
  const std::string spirit = render_table4(study, parse::SystemId::kSpirit);
  EXPECT_NE(spirit.find("103,818,910"), std::string::npos);
  EXPECT_NE(spirit.find("4,119"), std::string::npos);  // PBS_CHK filtered
}

TEST(ReportTable5, CarriesSeverityRowsAndHeadline) {
  Study study(small());
  const std::string t = render_table5(study);
  EXPECT_NE(t.find("FATAL"), std::string::npos);
  EXPECT_NE(t.find("18.02"), std::string::npos);   // FATAL msg %
  EXPECT_NE(t.find("78.68"), std::string::npos);   // INFO msg %
  EXPECT_NE(t.find("99.98"), std::string::npos);   // FATAL alert %
  EXPECT_NE(t.find("59.34"), std::string::npos);   // paper FP reference
}

TEST(ReportTable6, UsesSyslogSpellings) {
  Study study(small());
  const std::string t = render_table6(study);
  EXPECT_NE(t.find("EMERG"), std::string::npos);
  EXPECT_NE(t.find("ERR"), std::string::npos);
  EXPECT_NE(t.find("DEBUG"), std::string::npos);
  // BG/L-only levels must not appear.
  EXPECT_EQ(t.find("FATAL"), std::string::npos);
  EXPECT_EQ(t.find("SEVERE"), std::string::npos);
  EXPECT_NE(t.find("98.69"), std::string::npos);  // CRIT alert share
}

}  // namespace
}  // namespace wss::core
