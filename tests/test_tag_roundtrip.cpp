// Rule <-> renderer consistency: every category's rendered alert line
// is tagged back to exactly that category, and no chatter template
// matches any rule. This is the invariant that makes the simulator's
// ground truth and the tag engine's output agree.
#include <gtest/gtest.h>

#include "sim/chatter.hpp"
#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/rulesets.hpp"

namespace wss {
namespace {

using parse::SystemId;

sim::SimOptions tiny_options() {
  sim::SimOptions o;
  o.category_cap = 300;
  o.chatter_events = 2000;
  o.inject_corruption = false;
  return o;
}

class TagRoundTrip : public ::testing::TestWithParam<SystemId> {};

TEST_P(TagRoundTrip, EveryAlertLineTagsToItsCategory) {
  const SystemId id = GetParam();
  const sim::Simulator simulator(id, tiny_options());
  const tag::RuleSet rules = tag::build_ruleset(id);
  const tag::TagEngine engine(rules);

  std::vector<bool> category_seen(rules.size(), false);
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    const sim::SimEvent& e = simulator.events()[i];
    if (!e.is_alert()) continue;
    const std::string line = simulator.renderer().render_clean(e, i);
    const auto tagged = engine.tag_line(line);
    ASSERT_TRUE(tagged.has_value()) << line;
    EXPECT_EQ(tagged->category, static_cast<std::uint16_t>(e.category))
        << line;
    category_seen[static_cast<std::size_t>(e.category)] = true;
  }
  // Every category was exercised (tiny caps still generate >= 1 event
  // per category).
  for (std::size_t c = 0; c < category_seen.size(); ++c) {
    EXPECT_TRUE(category_seen[c]) << rules.category_name(
        static_cast<std::uint16_t>(c));
  }
}

TEST_P(TagRoundTrip, NoChatterLineMatchesAnyRule) {
  const SystemId id = GetParam();
  const sim::Simulator simulator(id, tiny_options());
  const tag::TagEngine engine(tag::build_ruleset(id));

  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    const sim::SimEvent& e = simulator.events()[i];
    if (e.is_alert()) continue;
    const std::string line = simulator.renderer().render_clean(e, i);
    EXPECT_FALSE(engine.tag_line(line).has_value()) << line;
  }
}

TEST_P(TagRoundTrip, ChatterTemplatesCoverEveryStratum) {
  const SystemId id = GetParam();
  for (const auto& cls : sim::chatter_classes(id)) {
    bool found = false;
    for (const auto& t : sim::chatter_templates(id)) {
      if (t.path == cls.path && t.severity == cls.severity) found = true;
    }
    EXPECT_TRUE(found) << static_cast<int>(cls.severity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, TagRoundTrip, ::testing::ValuesIn(parse::kAllSystems),
    [](const ::testing::TestParamInfo<SystemId>& info) {
      return std::string(parse::system_short_name(info.param));
    });

}  // namespace
}  // namespace wss
