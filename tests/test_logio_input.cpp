// InputBuffer fallback-path contract: whatever route the bytes take
// -- mmap'd pages, read() into an owned buffer, a pipe, a .wsc
// decompression -- the view is byte-identical and everything built on
// it (read_log) behaves identically. The mmap path snapshots the size
// at open; the read() path is the one a concurrent truncation can
// race, so that case is tested deterministically there.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "compress/codec.hpp"
#include "logio/input.hpp"
#include "logio/reader.hpp"

namespace wss::logio {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("wss_input_test_" + std::to_string(::getpid()));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  fs::path file(const std::string& name) const { return path_ / name; }

 private:
  fs::path path_;
};

void write_file(const fs::path& p, std::string_view content) {
  std::ofstream os(p, std::ios::binary);
  os.write(content.data(), static_cast<std::streamsize>(content.size()));
}

class MmapGuard {
 public:
  ~MmapGuard() { ::unsetenv("WSS_MMAP"); }
  void disable() { ::setenv("WSS_MMAP", "0", 1); }
};

std::string sample_log() {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "Jun  3 15:42:" + std::string(i % 60 < 10 ? "0" : "") +
            std::to_string(i % 60) + " sn" + std::to_string(i) +
            " kernel: event " + std::to_string(i) + "\n";
  }
  return text;
}

/// Digest of a full read_log pass: every record field folded in, so
/// two passes are equal iff the record streams are byte-identical.
std::string read_digest(const fs::path& p, ReadStats* stats_out = nullptr) {
  std::string digest;
  const ReadStats stats =
      read_log(p, parse::SystemId::kThunderbird, 2005,
               [&](const parse::LogRecord& rec) {
                 digest += rec.source;
                 digest += '|';
                 digest += rec.program;
                 digest += '|';
                 digest += rec.body;
                 digest += '|';
                 digest += std::to_string(rec.time);
                 digest += '\n';
               });
  if (stats_out != nullptr) *stats_out = stats;
  return digest;
}

TEST(LogioInput, MmapAndReadPathsAreByteIdentical) {
  const TempDir dir;
  MmapGuard guard;
  const std::string text = sample_log();
  write_file(dir.file("log.txt"), text);

  const InputBuffer mapped = InputBuffer::open(dir.file("log.txt"));
  EXPECT_EQ(mapped.source(), InputBuffer::Source::kMmap);
  EXPECT_EQ(mapped.view(), text);

  guard.disable();
  const InputBuffer readback = InputBuffer::open(dir.file("log.txt"));
  EXPECT_EQ(readback.source(), InputBuffer::Source::kRead);
  EXPECT_EQ(readback.view(), text);
}

TEST(LogioInput, ReadLogIdenticalUnderBothPaths) {
  const TempDir dir;
  MmapGuard guard;
  write_file(dir.file("log.txt"), sample_log());

  ReadStats mmap_stats;
  const std::string mmap_digest = read_digest(dir.file("log.txt"), &mmap_stats);
  guard.disable();
  ReadStats read_stats;
  const std::string read_digest_s =
      read_digest(dir.file("log.txt"), &read_stats);

  EXPECT_EQ(mmap_digest, read_digest_s);
  EXPECT_EQ(mmap_stats.lines, read_stats.lines);
  EXPECT_EQ(mmap_stats.lines, 500u);
}

TEST(LogioInput, EmptyFileTakesReadPathAndYieldsNothing) {
  const TempDir dir;
  write_file(dir.file("empty.log"), "");
  const InputBuffer b = InputBuffer::open(dir.file("empty.log"));
  // mmap(len=0) is invalid; the empty file must take the read() path.
  EXPECT_EQ(b.source(), InputBuffer::Source::kRead);
  EXPECT_TRUE(b.view().empty());

  const ReadStats stats = read_log(dir.file("empty.log"),
                                   parse::SystemId::kSpirit, 2005,
                                   [](const parse::LogRecord&) { FAIL(); });
  EXPECT_EQ(stats.lines, 0u);
}

TEST(LogioInput, MissingTrailingNewlineDeliversTail) {
  const TempDir dir;
  write_file(dir.file("tail.log"), "Jun  3 15:42:50 sn1 kernel: a\nrest");
  std::size_t lines = 0;
  std::string last;
  read_log(dir.file("tail.log"), parse::SystemId::kSpirit, 2005,
           [&](const parse::LogRecord& rec) {
             ++lines;
             last = rec.raw;
           });
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(last, "rest");
}

TEST(LogioInput, PipeTakesReadPath) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = sample_log();
  std::thread writer([&] {
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(fds[1], payload.data() + off, payload.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(fds[1]);
  });
  const InputBuffer b = InputBuffer::from_fd(fds[0]);
  writer.join();
  ::close(fds[0]);
  EXPECT_EQ(b.source(), InputBuffer::Source::kRead);
  EXPECT_EQ(b.view(), payload);
}

// A concurrent writer truncating the file mid-read: the read() path
// simply sees EOF early and yields the bytes that remain -- no error,
// no stale size. (The mmap path snapshots the size at open and never
// re-reads, so only the read() path can observe the race; this pins
// the deterministic equivalent: shrink between open and drain.)
TEST(LogioInput, TruncatedWhileReadingYieldsRemainingBytes) {
  const TempDir dir;
  const std::string text(1 << 20, 'z');
  write_file(dir.file("big.log"), text);

  const int fd = ::open(dir.file("big.log").c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  // "Concurrent writer" truncates after the reader opened the file.
  fs::resize_file(dir.file("big.log"), 1000);
  const InputBuffer b = InputBuffer::from_fd(fd);
  ::close(fd);
  EXPECT_EQ(b.view().size(), 1000u);
  EXPECT_EQ(b.view(), std::string_view(text).substr(0, 1000));
}

TEST(LogioInput, WscFilesDecompressToIdenticalBytes) {
  const TempDir dir;
  const std::string text = sample_log();
  write_file(dir.file("log.wsc"), compress::compress(text));
  const InputBuffer b = InputBuffer::open(dir.file("log.wsc"));
  EXPECT_EQ(b.source(), InputBuffer::Source::kDecompressed);
  EXPECT_EQ(b.view(), text);

  // And read_log over the .wsc matches read_log over the plain file.
  write_file(dir.file("log.txt"), text);
  EXPECT_EQ(read_digest(dir.file("log.wsc")), read_digest(dir.file("log.txt")));
}

TEST(LogioInput, MissingFileThrows) {
  EXPECT_THROW(InputBuffer::open("/nonexistent/definitely/missing.log"),
               std::runtime_error);
}

TEST(LogioInput, MoveTransfersOwnership) {
  const TempDir dir;
  const std::string text = sample_log();
  write_file(dir.file("log.txt"), text);
  InputBuffer a = InputBuffer::open(dir.file("log.txt"));
  const InputBuffer b = std::move(a);
  EXPECT_EQ(b.view(), text);
  EXPECT_TRUE(a.view().empty());  // NOLINT(bugprone-use-after-move)

  InputBuffer c = InputBuffer::from_string(text);
  const InputBuffer d = std::move(c);
  EXPECT_EQ(d.view(), text);
}

}  // namespace
}  // namespace wss::logio
