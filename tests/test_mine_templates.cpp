#include "mine/templates.hpp"

#include <gtest/gtest.h>

#include "sim/generator.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace wss::mine {
namespace {

MinerOptions tiny_opts() {
  MinerOptions o;
  o.min_support = 5;
  o.min_template_count = 5;
  return o;
}

std::vector<std::string> synthetic_corpus() {
  util::Rng rng(1);
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back(util::format(
        "kernel: GM: LANai is not running. port=%d",
        static_cast<int>(rng.uniform_i64(0, 9999))));
  }
  for (int i = 0; i < 100; ++i) {
    lines.push_back(util::format(
        "pbs_mom: task_check, cannot tm_reply to %d task 1",
        static_cast<int>(rng.uniform_i64(1, 99999))));
  }
  return lines;
}

TEST(Miner, RecoversConstantsAndWildcards) {
  const auto templates = TemplateMiner::mine(synthetic_corpus(), tiny_opts());
  ASSERT_EQ(templates.size(), 2u);
  EXPECT_EQ(templates[0].count, 200u);
  EXPECT_NE(templates[0].pattern.find("LANai is not running."),
            std::string::npos);
  // The variable port token became a wildcard.
  EXPECT_NE(templates[0].pattern.find('*'), std::string::npos);
  EXPECT_EQ(templates[0].n_wildcards, 1u);
  EXPECT_EQ(templates[1].count, 100u);
  EXPECT_NE(templates[1].pattern.find("task_check,"), std::string::npos);
}

TEST(Miner, SpecificityMetric) {
  LogTemplate t;
  t.n_tokens = 10;
  t.n_wildcards = 3;
  EXPECT_DOUBLE_EQ(t.specificity(), 0.7);
  LogTemplate empty;
  EXPECT_DOUBLE_EQ(empty.specificity(), 0.0);
}

TEST(Miner, MinSupportControlsVocabulary) {
  // Each line unique: with min_support > 1 everything is wildcards.
  std::vector<std::string> lines;
  for (int i = 0; i < 50; ++i) {
    lines.push_back(util::format("token%d only%d once%d", i, i, i));
  }
  MinerOptions opts = tiny_opts();
  const auto templates = TemplateMiner::mine(lines, opts);
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0].pattern, "* * *");
  EXPECT_EQ(templates[0].count, 50u);
}

TEST(Miner, TwoPassApiEnforced) {
  TemplateMiner m(tiny_opts());
  m.learn("a b c");
  EXPECT_THROW(m.digest("a b c"), std::logic_error);
  m.freeze();
  EXPECT_THROW(m.learn("a b c"), std::logic_error);
  EXPECT_NO_THROW(m.digest("a b c"));
}

TEST(Miner, TemplateOfIsStable) {
  TemplateMiner m(tiny_opts());
  for (int i = 0; i < 10; ++i) m.learn("alpha beta gamma");
  m.freeze();
  EXPECT_EQ(m.template_of("alpha beta gamma"), "alpha beta gamma");
  EXPECT_EQ(m.template_of("alpha beta delta"), "alpha beta *");
  EXPECT_EQ(m.template_of(""), "");
}

TEST(Miner, MaxTokensTruncates) {
  MinerOptions opts = tiny_opts();
  opts.max_tokens = 2;
  TemplateMiner m(opts);
  for (int i = 0; i < 10; ++i) m.learn("a b c d e");
  m.freeze();
  EXPECT_EQ(m.template_of("a b c d e"), "a b");
}

TEST(Miner, ApproximatesTheMessageCatalogOnSimulatedLogs) {
  // Mining a simulated Liberty log should recover roughly the known
  // message shapes (6 alert categories + 13 chatter templates), not
  // orders of magnitude more or fewer.
  sim::SimOptions sopts;
  sopts.category_cap = 1500;
  sopts.chatter_events = 8000;
  sopts.inject_corruption = false;
  const sim::Simulator simulator(parse::SystemId::kLiberty, sopts);
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    lines.push_back(simulator.line(i));
  }
  MinerOptions opts;
  opts.min_support = 40;
  opts.min_template_count = 40;
  opts.skip_positions = 4;  // "Mon dd HH:MM:SS host" header
  const auto templates = TemplateMiner::mine(lines, opts);
  EXPECT_GE(templates.size(), 10u);
  EXPECT_LE(templates.size(), 60u);
  // Coverage: the mined templates account for nearly all lines.
  std::size_t covered = 0;
  for (const auto& t : templates) covered += t.count;
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(lines.size()),
            0.9);
}

}  // namespace
}  // namespace wss::mine
