// Experiment drivers: each table/figure function must reproduce the
// paper's numbers (exactly where calibrated, in shape elsewhere).
#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"

namespace wss::core {
namespace {

using parse::SystemId;

StudyOptions small() { return StudyOptions::small(); }

TEST(Table2, CalibratedColumnsMatch) {
  Study study(small());
  for (const auto id : parse::kAllSystems) {
    const auto row = table2_row(study, id);
    const auto& spec = sim::system_spec(id);
    EXPECT_EQ(row.days, spec.days);
    EXPECT_NEAR(row.messages / static_cast<double>(spec.messages), 1.0, 1e-6)
        << parse::system_name(id);
    EXPECT_NEAR(row.alerts / static_cast<double>(spec.alerts), 1.0, 0.01)
        << parse::system_name(id);
    EXPECT_EQ(row.categories, spec.categories);
    // Compression: logs compress by at least 2x, as all of Table 2's
    // systems do.
    EXPECT_LT(row.compressed_fraction, 0.5);
    EXPECT_GT(row.compressed_fraction, 0.0);
    // Rate consistent with size and window.
    EXPECT_NEAR(row.rate_bytes_per_sec,
                row.measured_gb * 1e9 / (spec.days * 86400.0),
                row.rate_bytes_per_sec * 1e-6);
  }
}

TEST(Table3, TypeDistributionShape) {
  Study study(small());
  const auto d = table3(study);
  const double raw_total = d.raw[0] + d.raw[1] + d.raw[2];
  // Hardware dominates raw (98.04% in the paper).
  EXPECT_NEAR(d.raw[0] / raw_total, 0.9804, 0.005);
  // Software dominates filtered (64.01% in the paper).
  const double filt_total = static_cast<double>(d.filtered[0] + d.filtered[1] +
                                                d.filtered[2]);
  EXPECT_NEAR(static_cast<double>(d.filtered[1]) / filt_total, 0.6401, 0.03);
}

TEST(Table4, RawExactFilteredClose) {
  Study study(small());
  for (const auto id : parse::kAllSystems) {
    for (const auto& row : table4_rows(study, id)) {
      // 1e-6 admits Spirit's 12 unit-weight shadowed-incident events.
      EXPECT_NEAR(row.raw_weighted / static_cast<double>(row.paper_raw), 1.0,
                  1e-6)
          << row.category;
      // Filtered counts: within 5% or +/-2 of the paper's value.
      const double tolerance =
          std::max(2.0, 0.05 * static_cast<double>(row.paper_filtered));
      EXPECT_NEAR(static_cast<double>(row.filtered_measured),
                  static_cast<double>(row.paper_filtered), tolerance)
          << parse::system_name(id) << "/" << row.category;
    }
  }
}

TEST(Table5, SeverityDistributionAndTaggerRates) {
  Study study(small());
  const auto rows = severity_distribution(study, SystemId::kBlueGeneL);
  double msg_total = 0;
  double fatal_msgs = 0;
  double info_msgs = 0;
  double fatal_alerts = 0;
  for (const auto& r : rows) {
    msg_total += r.messages;
    if (r.severity == parse::Severity::kFatal) {
      fatal_msgs = r.messages;
      fatal_alerts = r.alerts;
    }
    if (r.severity == parse::Severity::kInfo) info_msgs = r.messages;
  }
  EXPECT_NEAR(fatal_msgs / msg_total, 0.1802, 0.002);   // Table 5: 18.02%
  EXPECT_NEAR(info_msgs / msg_total, 0.7868, 0.002);    // Table 5: 78.68%
  EXPECT_NEAR(fatal_alerts, 348398.0, 350.0);
  const auto rates = bgl_severity_tagging(study);
  EXPECT_NEAR(rates.false_positive_rate, 0.5934, 0.004);  // the 59.34%
  EXPECT_NEAR(rates.false_negative_rate, 0.0, 1e-9);
}

TEST(Table6, RedStormSeverity) {
  Study study(small());
  const auto rows = severity_distribution(study, SystemId::kRedStorm);
  double msg_total = 0;
  double crit_msgs = 0;
  double crit_alerts = 0;
  double info_msgs = 0;
  for (const auto& r : rows) {
    msg_total += r.messages;
    if (r.severity == parse::Severity::kCrit) {
      crit_msgs = r.messages;
      crit_alerts = r.alerts;
    }
    if (r.severity == parse::Severity::kInfo) info_msgs = r.messages;
  }
  // Table 6: CRIT is 6.09% of messages but 98.69% of alerts.
  EXPECT_NEAR(crit_msgs / msg_total, 0.0609, 0.002);
  EXPECT_NEAR(info_msgs / msg_total, 0.6163, 0.005);
  EXPECT_NEAR(crit_alerts, 1550217.0, 1600.0);
}

TEST(Fig2a, RegimeShiftsDetected) {
  Study study(small());
  const auto d = fig2a(study);
  EXPECT_GT(d.series.total(), 0.0);
  ASSERT_GE(d.changepoints.size(), 2u);
  // The OS-upgrade shift lands near 35% of the window.
  const double frac = static_cast<double>(d.changepoints.front()) /
                      static_cast<double>(d.series.buckets().size());
  EXPECT_NEAR(frac, 0.35, 0.06);
}

TEST(Fig2b, HeavyTailAndCorruptedCluster) {
  Study study(small());
  const auto d = fig2b(study);
  ASSERT_GT(d.sources.size(), 50u);
  // Sorted descending; the top source is far above the median.
  EXPECT_GE(d.sources.front().second,
            d.sources[d.sources.size() / 2].second * 10);
  for (std::size_t i = 1; i < d.sources.size(); ++i) {
    EXPECT_GE(d.sources[i - 1].second, d.sources[i].second);
  }
  EXPECT_GT(d.corrupted_weight, 0.0);
  // The corrupted cluster sits at the bottom of the distribution.
  EXPECT_LT(d.corrupted_weight, d.sources.front().second);
}

TEST(Fig3, GmCorrelationClearButImperfect) {
  Study study(small());
  const auto d = fig3(study);
  EXPECT_EQ(d.gm_par.size(), 44u);
  EXPECT_EQ(d.gm_lanai.size(), 13u);
  // "the correlation is clear" -- most LANAI events sit near a PAR
  // event...
  EXPECT_GT(d.cooccur_lanai_to_par, 0.5);
  // ...but "GM_LANAI messages do not always follow GM_PAR messages,
  // nor vice versa".
  EXPECT_LT(d.cooccur_par_to_lanai, 0.95);
}

TEST(Fig4, FilteredLibertyTimelineHasLatePbsClusters) {
  Study study(small());
  const auto points = fig4(study);
  EXPECT_NEAR(static_cast<double>(points.size()), 1050.0, 40.0);
  // PBS_CHK (category 0) concentrates late in the window (the bug).
  const auto& spec = sim::system_spec(SystemId::kLiberty);
  const auto window = spec.end_time() - spec.start_time();
  std::size_t late = 0;
  std::size_t total = 0;
  for (const auto& p : points) {
    if (p.category != 0) continue;
    ++total;
    const double f = static_cast<double>(p.time - spec.start_time()) /
                     static_cast<double>(window);
    if (f > 0.7) ++late;
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(late) / static_cast<double>(total), 0.6);
}

TEST(Fig5, EccLooksExponentialAndRoughlyLognormal) {
  Study study(small());
  const auto d = fig5(study);
  ASSERT_GE(d.gaps_seconds.size(), 100u);  // 143 filtered - 1
  // Exponential is a decent fit for these "basically independent"
  // low-level failures.
  EXPECT_GT(d.ks_exponential.p_value, 0.01);
  // Lognormal sigma is O(1) ("roughly log normal with a heavy left
  // tail").
  EXPECT_GT(d.lognormal.sigma, 0.5);
  EXPECT_LT(d.lognormal.sigma, 3.0);
}

TEST(Fig6, BimodalBglUnimodalSpirit) {
  Study study(small());
  const auto bgl = fig6(study, SystemId::kBlueGeneL);
  const auto spirit = fig6(study, SystemId::kSpirit);
  EXPECT_EQ(bgl.modes.size(), 2u);
  EXPECT_EQ(spirit.modes.size(), 1u);
  EXPECT_GT(bgl.hist.total(), 0.0);
  EXPECT_GT(spirit.hist.total(), 0.0);
}

TEST(Reports, RenderWithoutThrowing) {
  Study study(small());
  EXPECT_FALSE(render_table1().empty());
  EXPECT_FALSE(render_table2(study).empty());
  EXPECT_FALSE(render_table3(study).empty());
  for (const auto id : parse::kAllSystems) {
    EXPECT_FALSE(render_table4(study, id).empty());
  }
  const std::string t5 = render_table5(study);
  EXPECT_NE(t5.find("59.34"), std::string::npos);  // paper reference shown
  EXPECT_FALSE(render_table6(study).empty());
}

}  // namespace
}  // namespace wss::core
