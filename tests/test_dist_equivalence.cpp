// Distributed split -> workers -> merge must be byte-identical to a
// single-process study.
//
// Every round plans an all-five-system study at the golden
// configuration (cap 2500 / chatter 15000 / seed 42), runs every
// assignment through the in-process CLI, merges, and byte-compares
// each rendered artifact against the checked-in goldens in
// WSS_GOLDEN_DIR -- the same files test_golden_tables.cpp holds the
// single-process pipeline to. The matrix covers each --split-by axis
// at N in {1, 2, 5}: N=1 is the degenerate one-worker study, N=2
// splits mid-stream, and N=5 exercises one-system-per-assignment
// (system axis) and maximally interleaved chunk routing (category
// axis). Thread counts are varied per round to re-assert that worker
// threading never leaks into the bytes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "core/golden.hpp"

namespace wss {
namespace {

namespace fs = std::filesystem;

cli::Args make_args(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"wss"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return cli::Args::parse(static_cast<int>(argv.size()), argv.data());
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

/// First differing offset, for a readable failure message.
std::string first_diff(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return "first difference at byte " + std::to_string(i);
    }
  }
  return "sizes differ: " + std::to_string(a.size()) + " vs " +
         std::to_string(b.size());
}

class DistEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_dist_eq_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_tokens(std::vector<std::string> tokens) {
    out_.str("");
    err_.str("");
    return cli::run(make_args(std::move(tokens)), out_, err_);
  }

  /// One full round: plan, run all N workers, merge, compare every
  /// artifact byte-for-byte against the checked-in goldens.
  void run_round(const std::string& axis, int num_splits) {
    SCOPED_TRACE("axis=" + axis + " N=" + std::to_string(num_splits));
    const fs::path mdir = dir_ / (axis + "_" + std::to_string(num_splits));
    ASSERT_EQ(run_tokens({"study", "--split-by", axis, "--num-splits",
                          std::to_string(num_splits), "--manifest-dir",
                          mdir.string(), "--cap", "2500", "--chatter",
                          "15000"}),
              0)
        << err_.str();
    for (int id = 0; id < num_splits; ++id) {
      // Alternate worker thread counts: the published partials (and so
      // the merged bytes) must not depend on them.
      const std::string threads = (id % 2 == 0) ? "1" : "2";
      ASSERT_EQ(run_tokens({"worker", std::to_string(id), "--manifest-dir",
                            mdir.string(), "--threads", threads}),
                0)
          << err_.str();
    }
    ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 0)
        << err_.str();

    const fs::path merged = mdir / "merged";
    std::size_t compared = 0;
    for (const auto& artifact : core::golden_artifacts()) {
      const fs::path got_path = merged / artifact.file;
      ASSERT_TRUE(fs::exists(got_path))
          << artifact.file << " missing from merge output";
      const std::string got = read_file(got_path);
      const std::string want =
          read_file(fs::path(WSS_GOLDEN_DIR) / artifact.file);
      ASSERT_FALSE(want.empty()) << artifact.file;
      EXPECT_EQ(got, want) << artifact.what << ": merged bytes diverge from "
                           << "the single-process goldens ("
                           << first_diff(got, want) << ")";
      ++compared;
    }
    // A full five-system study renders the complete artifact set.
    EXPECT_EQ(compared, core::golden_artifacts().size());
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(DistEquivalenceTest, SystemAxisMatchesGoldens) {
  for (const int n : {1, 2, 5}) run_round("system", n);
}

TEST_F(DistEquivalenceTest, TimeAxisMatchesGoldens) {
  for (const int n : {1, 2, 5}) run_round("time", n);
}

TEST_F(DistEquivalenceTest, CategoryAxisMatchesGoldens) {
  for (const int n : {1, 2, 5}) run_round("category", n);
}

TEST_F(DistEquivalenceTest, SingleSystemStudyRendersOnlyCoverableArtifacts) {
  // A BGL-only plan must render exactly the artifacts whose `needs`
  // are covered -- never silently recompute the other four systems.
  const fs::path mdir = dir_ / "bgl_only";
  ASSERT_EQ(run_tokens({"study", "--split-by", "time", "--num-splits", "2",
                        "--manifest-dir", mdir.string(), "--system", "bgl",
                        "--cap", "2500", "--chatter", "15000"}),
            0)
      << err_.str();
  for (int id = 0; id < 2; ++id) {
    ASSERT_EQ(run_tokens({"worker", std::to_string(id), "--manifest-dir",
                          mdir.string()}),
              0)
        << err_.str();
  }
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 0)
      << err_.str();
  const fs::path merged = mdir / "merged";
  const std::vector<std::string> expected = {"table1.txt", "table4_bgl.csv",
                                             "table5.csv", "fig6_bgl.csv"};
  for (const auto& file : expected) {
    ASSERT_TRUE(fs::exists(merged / file)) << file;
    EXPECT_EQ(read_file(merged / file),
              read_file(fs::path(WSS_GOLDEN_DIR) / file))
        << file;
  }
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(merged)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, expected.size())
      << "merge rendered artifacts needing uncovered systems";
}

}  // namespace
}  // namespace wss
