// CLI surface of the streaming engine: `wss stream` and the replay
// mode of `wss generate`.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "cli/commands.hpp"
#include "core/experiments.hpp"
#include "core/study.hpp"

namespace wss::cli {
namespace {

namespace fs = std::filesystem;

Args make_args(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"wss"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

class StreamCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_stream_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_tokens(std::vector<std::string> tokens) {
    out_.str("");
    err_.str("");
    return run(make_args(std::move(tokens)), out_, err_);
  }

  static std::vector<std::string> file_lines(const fs::path& p) {
    std::ifstream is(p);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(StreamCliTest, RequiresSystemAndValidatesFlags) {
  EXPECT_EQ(run_tokens({"stream"}), 2);
  EXPECT_NE(err_.str().find("--system"), std::string::npos);
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--policy",
                        "drop-newest"}),
            2);
  EXPECT_NE(err_.str().find("block or drop-oldest"), std::string::npos);
  EXPECT_EQ(
      run_tokens({"stream", "--system", "liberty", "--threshold", "0"}), 2);
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--sed", "7"}), 2);
  EXPECT_NE(err_.str().find("unknown flag --sed"), std::string::npos);
}

TEST_F(StreamCliTest, SimulatedStreamReportIsDeterministic) {
  const std::vector<std::string> tokens = {
      "stream", "--system", "liberty", "--cap", "500", "--chatter", "3000"};
  ASSERT_EQ(run_tokens(tokens), 0);
  const std::string first = out_.str();
  EXPECT_NE(first.find("Liberty"), std::string::npos);
  EXPECT_NE(first.find("final"), std::string::npos);
  ASSERT_EQ(run_tokens(tokens), 0);
  EXPECT_EQ(out_.str(), first);
}

TEST_F(StreamCliTest, CheckpointResumeReportEqualsUninterrupted) {
  const std::vector<std::string> base = {
      "stream", "--system", "spirit", "--cap", "400", "--chatter", "2000"};
  ASSERT_EQ(run_tokens(base), 0);
  const std::string uninterrupted = out_.str();

  const auto ck = (dir_ / "ck.wssc").string();
  auto first_half = base;
  first_half.insert(first_half.end(),
                    {"--max-events", "1000", "--checkpoint", ck});
  ASSERT_EQ(run_tokens(first_half), 0);
  EXPECT_NE(out_.str().find("paused after"), std::string::npos);
  EXPECT_NE(out_.str().find("resume with --restore"), std::string::npos);
  ASSERT_TRUE(fs::exists(ck));

  auto resumed = base;
  resumed.insert(resumed.end(), {"--restore", ck});
  ASSERT_EQ(run_tokens(resumed), 0);
  EXPECT_EQ(out_.str(), uninterrupted);
}

TEST_F(StreamCliTest, EmitMatchesBatchFilteredAlerts) {
  const auto emit = (dir_ / "alerts.txt").string();
  ASSERT_EQ(run_tokens({"stream", "--system", "liberty", "--cap", "400",
                        "--chatter", "2000", "--emit", emit}),
            0);
  const auto lines = file_lines(emit);

  core::StudyOptions sopts;
  sopts.sim.category_cap = 400;
  sopts.sim.chatter_events = 2000;
  core::Study study(sopts);
  const auto batch =
      core::filtered_alerts(study, parse::SystemId::kLiberty);
  ASSERT_EQ(lines.size(), batch.size());
  // Spot-check line shape: "<iso time> <category> <H|S|I> <source>".
  ASSERT_FALSE(lines.empty());
  std::istringstream first(lines.front());
  std::string date, clock, cat, type, source;
  first >> date >> clock >> cat >> type >> source;
  EXPECT_EQ(date.size(), 10u);
  EXPECT_TRUE(type == "H" || type == "S" || type == "I");
  EXPECT_FALSE(source.empty());
}

TEST_F(StreamCliTest, FileModeStreamsGeneratedLog) {
  const auto log = (dir_ / "log.txt").string();
  ASSERT_EQ(run_tokens({"generate", "--system", "liberty", "--out", log,
                        "--cap", "400", "--chatter", "2000"}),
            0);
  const std::vector<std::string> tokens = {"stream",  "--system", "liberty",
                                           "--in",    log,        "--queue",
                                           "256"};
  ASSERT_EQ(run_tokens(tokens), 0);
  const std::string first = out_.str();
  EXPECT_NE(first.find("Liberty"), std::string::npos);
  EXPECT_NE(first.find("events"), std::string::npos);
  // Deterministic in file mode too.
  ASSERT_EQ(run_tokens(tokens), 0);
  EXPECT_EQ(out_.str(), first);
}

TEST_F(StreamCliTest, GenerateReplayUnpacedMatchesBulkWrite) {
  const auto bulk = (dir_ / "bulk.txt").string();
  const auto replayed = (dir_ / "replay.txt").string();
  ASSERT_EQ(run_tokens({"generate", "--system", "spirit", "--out", bulk,
                        "--cap", "300", "--chatter", "1500"}),
            0);
  ASSERT_EQ(run_tokens({"generate", "--system", "spirit", "--out", replayed,
                        "--cap", "300", "--chatter", "1500", "--speed",
                        "0"}),
            0);
  EXPECT_NE(out_.str().find("replayed"), std::string::npos);
  EXPECT_EQ(file_lines(replayed), file_lines(bulk));
}

TEST_F(StreamCliTest, GenerateReplayToStdout) {
  ASSERT_EQ(run_tokens({"generate", "--system", "liberty", "--out", "-",
                        "--cap", "200", "--chatter", "500", "--speed",
                        "0"}),
            0);
  const auto lines_begin = out_.str().find('\n');
  ASSERT_NE(lines_begin, std::string::npos);
  EXPECT_GT(out_.str().size(), 1000u);  // actual log lines, not a summary
  EXPECT_EQ(out_.str().find("replayed"), std::string::npos);
}

TEST_F(StreamCliTest, GenerateRejectsNegativeSpeed) {
  EXPECT_EQ(run_tokens({"generate", "--system", "liberty", "--out", "-",
                        "--speed", "-1"}),
            2);
  EXPECT_NE(err_.str().find("--speed"), std::string::npos);
}

}  // namespace
}  // namespace wss::cli
