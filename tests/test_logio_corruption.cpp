// Corruption accounting against hand-computed ground truth: a log
// containing truncated lines, NUL-embedded bytes, and a >1 MiB line is
// read by logio::read_log and streamed through the online engine, and
// both must report EXACTLY the corrupted-source and invalid-timestamp
// counts a human gets from reading the file (Section 3.2.1's
// corruption modes, pinned line by line instead of statistically).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "logio/reader.hpp"
#include "obs/metrics.hpp"
#include "stream/pipeline.hpp"

namespace wss {
namespace {

namespace fs = std::filesystem;

/// The hand-built corpus. Per line (Liberty syslog grammar):
///   0  clean
///   1  NUL byte inside the host token  -> source corrupted
///   2  truncated mid-timestamp         -> invalid stamp + no source
///   3  empty line                      -> invalid stamp + no source
///   4  valid header, 1 MiB body        -> clean (size is not corruption)
///   5  truncated mid-tag               -> clean (header fully parsed)
std::vector<std::string> corpus() {
  std::vector<std::string> lines;
  lines.push_back("Jun 12 08:00:00 lhost1 kernel: link up");
  lines.push_back(std::string("Jun 12 08:00:01 lh\0st1 kernel: nul host", 39));
  lines.push_back("Jun 12 08");
  lines.push_back("");
  lines.push_back("Jun 12 08:00:02 lhost2 kernel: " +
                  std::string((1u << 20) + 1, 'a'));
  lines.push_back("Jun 12 08:00:03 lhost3 ker");
  return lines;
}

constexpr std::size_t kCorrupted = 3;  // lines 1, 2, 3
constexpr std::size_t kInvalidStamps = 2;  // lines 2, 3

class LogioCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_corrupt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = dir_ / "messages";
    std::ofstream os(path_, std::ios::binary);
    for (const auto& line : corpus()) os << line << '\n';
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  fs::path path_;
};

TEST_F(LogioCorruptionTest, ReaderCountsMatchHandComputation) {
  std::vector<parse::LogRecord> recs;
  const auto stats =
      logio::read_log(path_, parse::SystemId::kLiberty, 2004,
                      [&](const parse::LogRecord& rec) { recs.push_back(rec); });

  EXPECT_EQ(stats.lines, corpus().size());
  EXPECT_EQ(stats.corrupted_sources, kCorrupted);
  EXPECT_EQ(stats.invalid_timestamps, kInvalidStamps);
  EXPECT_EQ(stats.year_rollovers, 0);

  ASSERT_EQ(recs.size(), corpus().size());
  // Line 0: fully clean.
  EXPECT_TRUE(recs[0].timestamp_valid);
  EXPECT_FALSE(recs[0].source_corrupted);
  EXPECT_EQ(recs[0].source, "lhost1");
  // Line 1: the NUL poisons only the source; the stamp still parses.
  EXPECT_TRUE(recs[1].timestamp_valid);
  EXPECT_TRUE(recs[1].source_corrupted);
  // Lines 2 and 3: nothing usable.
  for (const std::size_t i : {std::size_t{2}, std::size_t{3}}) {
    EXPECT_FALSE(recs[i].timestamp_valid) << "line " << i;
    EXPECT_TRUE(recs[i].source_corrupted) << "line " << i;
  }
  // Line 4: a giant body is NOT corruption; it survives intact.
  EXPECT_TRUE(recs[4].timestamp_valid);
  EXPECT_FALSE(recs[4].source_corrupted);
  EXPECT_EQ(recs[4].source, "lhost2");
  EXPECT_EQ(recs[4].body.size(), (1u << 20) + 1);
  EXPECT_GT(recs[4].raw.size(), 1u << 20);
  // Line 5: truncated after the host -- still attributable.
  EXPECT_TRUE(recs[5].timestamp_valid);
  EXPECT_FALSE(recs[5].source_corrupted);
  EXPECT_EQ(recs[5].source, "lhost3");
}

TEST_F(LogioCorruptionTest, StreamPipelineAccountsIdentically) {
  obs::registry().reset();
  stream::StreamPipelineOptions popts;
  popts.strict_order = false;  // parsed-log mode
  popts.start_year = 2004;
  popts.study.collect_source_tallies = true;
  stream::StreamPipeline pipeline(parse::SystemId::kLiberty, popts);

  std::size_t expected_bytes = 0;
  for (const auto& line : corpus()) {
    pipeline.ingest_line(line);
    expected_bytes += line.size() + 1;  // '\n' included, as on disk
  }
  pipeline.finish();

  const auto snap = pipeline.snapshot();
  EXPECT_EQ(snap.physical_messages, corpus().size());
  EXPECT_EQ(snap.corrupted_source_lines, kCorrupted);
  EXPECT_EQ(snap.invalid_timestamp_lines, kInvalidStamps);
  EXPECT_EQ(snap.physical_bytes, expected_bytes);

#ifndef WSS_OBS_OFF
  // The obs counters must agree with the hand count, not merely with
  // each other.
  const auto counters = obs::registry().snapshot();
  EXPECT_EQ(counters.counter_or_zero("wss_pipeline_events_total"),
            corpus().size());
  EXPECT_EQ(
      counters.counter_or_zero("wss_pipeline_corrupted_source_lines_total"),
      kCorrupted);
  EXPECT_EQ(
      counters.counter_or_zero("wss_pipeline_invalid_timestamp_lines_total"),
      kInvalidStamps);
  EXPECT_EQ(counters.counter_or_zero("wss_pipeline_bytes_total"),
            expected_bytes);
#endif
}

}  // namespace
}  // namespace wss
