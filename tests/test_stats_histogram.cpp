#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wss::stats {
namespace {

TEST(LinearHistogram, BinsAndOverflow) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(9.999);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.bins()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.bins()[2], 1.0);
  EXPECT_DOUBLE_EQ(h.bins()[4], 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(LinearHistogram, Weights) {
  LinearHistogram h(0.0, 1.0, 1);
  h.add(0.5, 2.5);
  EXPECT_DOUBLE_EQ(h.bins()[0], 2.5);
}

TEST(LinearHistogram, RejectsBadArgs) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, DecadePlacement) {
  LogHistogram h(0.0, 4.0, 1);  // bins: [1,10), [10,100), [100,1e3), [1e3,1e4)
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  h.add(5000.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(h.bins()[static_cast<std::size_t>(i)], 1.0) << i;
  }
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  h.add(1e5);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  h.add(0.0);
  h.add(-3.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 3.0);
}

TEST(LogHistogram, BinGeometry) {
  LogHistogram h(0.0, 2.0, 2);
  EXPECT_NEAR(h.bin_lo(0), 1.0, 1e-12);
  EXPECT_NEAR(h.bin_lo(2), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_center(0), std::pow(10.0, 0.25), 1e-9);
  EXPECT_FALSE(h.bin_label(0).empty());
}

TEST(LogHistogram, UnimodalDetection) {
  LogHistogram h(0.0, 6.0, 4);
  // One hump around 10^3.
  for (int i = 0; i < 100; ++i) h.add(1000.0);
  for (int i = 0; i < 60; ++i) h.add(600.0);
  for (int i = 0; i < 60; ++i) h.add(1800.0);
  EXPECT_EQ(h.modes().size(), 1u);
}

TEST(LogHistogram, BimodalDetection) {
  LogHistogram h(0.0, 6.0, 4);
  // Humps at ~10 s and ~10^4 s: the Figure 6(a) shape.
  for (int i = 0; i < 80; ++i) h.add(10.0);
  for (int i = 0; i < 40; ++i) h.add(18.0);
  for (int i = 0; i < 100; ++i) h.add(1e4);
  for (int i = 0; i < 50; ++i) h.add(2.2e4);
  EXPECT_EQ(h.modes().size(), 2u);
}

TEST(LogHistogram, ModesIgnoreShortPeaks) {
  LogHistogram h(0.0, 6.0, 4);
  for (int i = 0; i < 100; ++i) h.add(1e4);
  h.add(10.0);  // a single stray event is not a mode
  EXPECT_EQ(h.modes().size(), 1u);
}

TEST(LogHistogram, RejectsBadArgs) {
  EXPECT_THROW(LogHistogram(2.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(0.0, 2.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wss::stats
