// awk-style field predicate tests (the BG/L kernel-panic rule shape).
#include "match/field.hpp"

#include <gtest/gtest.h>

namespace wss::match {
namespace {

TEST(LinePredicate, EmptyMatchesNothing) {
  LinePredicate p;
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.matches("anything"));
}

TEST(LinePredicate, WholeLineTerm) {
  LinePredicate p;
  p.add_term(0, "kernel panic");
  EXPECT_TRUE(p.matches("RAS KERNEL FATAL kernel panic"));
  EXPECT_FALSE(p.matches("RAS KERNEL FATAL all fine"));
}

TEST(LinePredicate, FieldTerm) {
  // The paper's rule: ($5 ~ /KERNEL/ && /kernel panic/).
  LinePredicate p;
  p.add_term(5, "KERNEL");
  p.add_term(0, "kernel panic");
  EXPECT_TRUE(p.matches("a b c d KERNEL x kernel panic"));
  EXPECT_FALSE(p.matches("a b c d APP x kernel panic"));
  EXPECT_FALSE(p.matches("a b c d KERNEL x all quiet"));
}

TEST(LinePredicate, FieldBeyondNfIsEmpty) {
  LinePredicate p;
  p.add_term(9, "^$");  // awk: $9 of a short line is the empty string
  EXPECT_TRUE(p.matches("one two"));
}

TEST(LinePredicate, NegatedTerm) {
  LinePredicate p;
  p.add_term(0, "error");
  p.add_term(0, "harmless", /*negated=*/true);
  EXPECT_TRUE(p.matches("an error occurred"));
  EXPECT_FALSE(p.matches("a harmless error"));
}

TEST(LinePredicate, FieldsSplitLikeAwk) {
  LinePredicate p;
  p.add_term(2, "^two$");
  EXPECT_TRUE(p.matches("  one   two  three"));
  EXPECT_FALSE(p.matches("one twox three"));
}

TEST(LinePredicate, RejectsNegativeField) {
  LinePredicate p;
  EXPECT_THROW(p.add_term(-1, "x"), PatternError);
}

TEST(LinePredicate, ConjunctionShortCircuits) {
  LinePredicate p;
  p.add_term(0, "alpha");
  p.add_term(0, "beta");
  EXPECT_TRUE(p.matches("alpha beta"));
  EXPECT_FALSE(p.matches("alpha only"));
  EXPECT_FALSE(p.matches("beta only"));
}

}  // namespace
}  // namespace wss::match
