// Online statistics primitives: Welford moments, reservoir quantiles,
// sliding-window counters -- correctness and bit-exact checkpointing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "stream/window.hpp"
#include "util/rng.hpp"

namespace wss::stream {
namespace {

TEST(StreamingMoments, MatchesNaiveComputation) {
  util::Rng rng(99);
  std::vector<double> xs;
  StreamingMoments m;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    xs.push_back(x);
    m.add(x);
  }
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);

  EXPECT_EQ(m.count(), xs.size());
  EXPECT_NEAR(m.mean(), mean, 1e-9);
  EXPECT_NEAR(m.variance(), var, 1e-6);
  EXPECT_EQ(m.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(m.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(StreamingMoments, CheckpointRoundTripIsBitExact) {
  util::Rng rng(7);
  StreamingMoments uninterrupted;
  StreamingMoments half;
  std::vector<double> tail;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    uninterrupted.add(x);
    half.add(x);
  }
  for (int i = 0; i < 1000; ++i) tail.push_back(rng.uniform());

  std::stringstream buf;
  {
    CheckpointWriter w(buf);
    half.save(w);
  }
  StreamingMoments restored;
  {
    CheckpointReader r(buf);
    restored.load(r);
  }
  for (const double x : tail) {
    uninterrupted.add(x);
    restored.add(x);
  }
  // Bit-exact: the same additions from the same state.
  EXPECT_EQ(restored.count(), uninterrupted.count());
  EXPECT_EQ(restored.mean(), uninterrupted.mean());
  EXPECT_EQ(restored.variance(), uninterrupted.variance());
  EXPECT_EQ(restored.min(), uninterrupted.min());
  EXPECT_EQ(restored.max(), uninterrupted.max());
}

TEST(ReservoirSample, ExactQuantilesUnderCapacity) {
  ReservoirSample r(128, 1);
  for (int i = 100; i >= 1; --i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.seen(), 100u);
  EXPECT_DOUBLE_EQ(r.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.quantile(1.0), 100.0);
  EXPECT_NEAR(r.quantile(0.5), 50.5, 1e-12);
}

TEST(ReservoirSample, DeterministicForSeedAndCheckpointable) {
  ReservoirSample a(64, 1234);
  ReservoirSample b(64, 1234);
  util::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.exponential(1.0));

  const std::size_t cut = xs.size() / 3;
  for (std::size_t i = 0; i < cut; ++i) {
    a.add(xs[i]);
    b.add(xs[i]);
  }
  std::stringstream buf;
  {
    CheckpointWriter w(buf);
    b.save(w);
  }
  ReservoirSample restored(1, 0);  // shape overwritten by load
  {
    CheckpointReader r(buf);
    restored.load(r);
  }
  for (std::size_t i = cut; i < xs.size(); ++i) {
    a.add(xs[i]);
    restored.add(xs[i]);
  }
  // Same seed, same stream, same interruption-free behavior: the
  // reservoir contents (and hence quantiles) are bit-identical.
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), restored.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.seen(), restored.seen());
}

TEST(SlidingWindowCounter, TracksTrailingWindowOnly) {
  // 60 s window, 6 buckets of 10 s. The total counts whole buckets
  // only: the boundary bucket containing watermark - window is
  // excluded (window.cpp), so at watermark 59 s the 0-10 s bucket is
  // already outside.
  SlidingWindowCounter w(60 * util::kUsPerSec, 6);
  w.add(5 * util::kUsPerSec, 1.0);
  w.add(15 * util::kUsPerSec, 2.0);
  w.add(59 * util::kUsPerSec, 4.0);
  EXPECT_DOUBLE_EQ(w.total(59 * util::kUsPerSec), 6.0);
  // Advance the stream: the 10-20 s bucket becomes the boundary
  // bucket and leaves too.
  w.add(70 * util::kUsPerSec, 8.0);
  EXPECT_DOUBLE_EQ(w.total(70 * util::kUsPerSec), 12.0);
  // Far future: everything expired but the newest.
  w.add(1000 * util::kUsPerSec, 16.0);
  EXPECT_DOUBLE_EQ(w.total(1000 * util::kUsPerSec), 16.0);
}

TEST(SlidingWindowCounter, BucketReuseZeroesStaleSlots) {
  // 2 buckets of 5 s: slot ids wrap every 10 s.
  SlidingWindowCounter w(10 * util::kUsPerSec, 2);
  w.add(1 * util::kUsPerSec, 1.0);
  w.add(12 * util::kUsPerSec, 2.0);  // reuses slot 0 under a new id
  EXPECT_DOUBLE_EQ(w.total(12 * util::kUsPerSec), 2.0);
}

TEST(SlidingWindowCounter, CheckpointRoundTrip) {
  SlidingWindowCounter w(3600 * util::kUsPerSec, 16);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    w.add(static_cast<util::TimeUs>(i) * 11 * util::kUsPerSec,
          rng.uniform());
  }
  std::stringstream buf;
  {
    CheckpointWriter cw(buf);
    w.save(cw);
  }
  SlidingWindowCounter restored(util::kUsPerSec, 1);
  {
    CheckpointReader cr(buf);
    restored.load(cr);
  }
  const util::TimeUs wm = 499 * 11 * util::kUsPerSec;
  EXPECT_EQ(restored.total(wm), w.total(wm));
  EXPECT_EQ(restored.window(), w.window());
}

TEST(CheckpointPrimitives, RoundTripAndValidation) {
  std::stringstream buf;
  {
    CheckpointWriter w(buf);
    w.header();
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f64(-0.0);
    w.f64(1.0 / 3.0);
    w.boolean(true);
    w.str("hello\0world");
    ASSERT_TRUE(w.ok());
  }
  {
    CheckpointReader r(buf);
    r.header();
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    // Bit-exact doubles: -0.0 keeps its sign bit.
    EXPECT_TRUE(std::signbit(r.f64()));
    EXPECT_EQ(r.f64(), 1.0 / 3.0);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    // Truncation throws instead of returning garbage.
    EXPECT_THROW(r.u64(), std::runtime_error);
  }
  std::stringstream bad("not a checkpoint at all");
  CheckpointReader r(bad);
  EXPECT_THROW(r.header(), std::runtime_error);
}

}  // namespace
}  // namespace wss::stream
