// MultiRegex unit tests: the combined lazy-DFA set matcher must agree
// bit-for-bit with per-pattern Regex::search on every input, including
// anchors and word boundaries (the assertions a byte-at-a-time DFA
// gets wrong first), and must degrade to the Pike VM -- not to wrong
// answers -- when the state cache is starved.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "match/multiregex.hpp"
#include "match/nfa.hpp"

namespace wss::match {
namespace {

class Patterns {
 public:
  explicit Patterns(std::vector<std::string> sources) {
    for (const auto& s : sources) {
      owned_.push_back(std::make_unique<Regex>(s));
      raw_.push_back(owned_.back().get());
    }
  }
  const std::vector<const Regex*>& raw() const { return raw_; }
  const Regex& at(std::size_t i) const { return *owned_[i]; }

 private:
  std::vector<std::unique_ptr<Regex>> owned_;
  std::vector<const Regex*> raw_;
};

void expect_agrees(const MultiRegex& multi, const Patterns& pats,
                   MatchScratch& scratch, std::string_view text) {
  multi.match_all(text, scratch);
  for (std::size_t i = 0; i < multi.size(); ++i) {
    EXPECT_EQ(bitset_test(scratch.matched.data(), i), pats.at(i).search(text))
        << "pattern=" << pats.at(i).pattern() << " text=" << text;
  }
}

TEST(MultiRegex, EmptyPatternSetMatchesNothing) {
  const MultiRegex multi{std::vector<const Regex*>{}};
  MatchScratch scratch;
  multi.match_all("anything", scratch);
  EXPECT_EQ(multi.size(), 0u);
  EXPECT_EQ(multi.bitset_words(), 0u);
}

TEST(MultiRegex, BasicSetMatching) {
  Patterns pats({"error", "warn(ing)?", "fail[0-9]+", "^root"});
  const MultiRegex multi(pats.raw());
  MatchScratch scratch;
  expect_agrees(multi, pats, scratch, "an error and a warning");
  expect_agrees(multi, pats, scratch, "fail123 with error");
  expect_agrees(multi, pats, scratch, "root error");
  expect_agrees(multi, pats, scratch, "no hits here");
  expect_agrees(multi, pats, scratch, "");
}

TEST(MultiRegex, AnchorsResolveAtTheRightPositions) {
  Patterns pats({"^start", "end$", "^whole$", "mid"});
  const MultiRegex multi(pats.raw());
  MatchScratch scratch;
  for (const char* text :
       {"start of line", "at the end", "whole", "start end", "a mid b",
        "not start", "end not last", ""}) {
    expect_agrees(multi, pats, scratch, text);
  }
}

TEST(MultiRegex, WordBoundaries) {
  Patterns pats({"\\berr\\b", "\\Berr\\B", "\\bword"});
  const MultiRegex multi(pats.raw());
  MatchScratch scratch;
  for (const char* text :
       {"err", "an err here", "terror", "errs", " err.", "wordy",
        "keyword", "a word", "err"}) {
    expect_agrees(multi, pats, scratch, text);
  }
}

TEST(MultiRegex, DuplicateAndOverlappingPatterns) {
  Patterns pats({"abc", "abc", "ab", "bc", "abcd"});
  const MultiRegex multi(pats.raw());
  MatchScratch scratch;
  for (const char* text : {"abc", "abcd", "ab", "xbcx", "zzabcz"}) {
    expect_agrees(multi, pats, scratch, text);
  }
}

TEST(MultiRegex, EmptyMatchingPatternMatchesEverywhere) {
  Patterns pats({"a*", "x?", "real"});
  const MultiRegex multi(pats.raw());
  MatchScratch scratch;
  for (const char* text : {"", "b", "real deal"}) {
    expect_agrees(multi, pats, scratch, text);
  }
}

TEST(MultiRegex, PikeAndDfaAgreeDirectly) {
  Patterns pats({"RAS [A-Z]+ (FATAL|ERROR)", "ddr errors? detected",
                 "^ciod:", "\\b[0-9]{1,3}\\b"});
  const MultiRegex multi(pats.raw());
  MatchScratch dfa_scratch;
  MatchScratch pike_scratch;
  for (const char* text :
       {"RAS KERNEL FATAL data TLB error interrupt",
        "RAS LINKCARD ERROR", "17 ddr errors detected",
        "ciod: Error reading message prefix", "no alerts 4096 here", ""}) {
    ASSERT_TRUE(multi.match_all_dfa(text, dfa_scratch));
    multi.match_all_pike(text, pike_scratch);
    for (std::size_t i = 0; i < multi.size(); ++i) {
      EXPECT_EQ(bitset_test(dfa_scratch.matched.data(), i),
                bitset_test(pike_scratch.matched.data(), i))
          << "pattern=" << pats.at(i).pattern() << " text=" << text;
    }
  }
}

TEST(MultiRegex, InterestingBitsAreExactOthersSetOnly) {
  Patterns pats({"alpha", "beta", "gamma"});
  const MultiRegex multi(pats.raw());
  MatchScratch scratch;
  // Only pattern 1 is interesting; the scan may stop as soon as it is
  // decided, so bit 1 must be exact while bits 0/2 are set-only-valid.
  std::vector<std::uint64_t> interesting(multi.bitset_words(), 0);
  bitset_set(interesting.data(), 1);
  multi.match_all("beta then alpha then gamma", scratch, interesting.data());
  EXPECT_TRUE(bitset_test(scratch.matched.data(), 1));
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    if (bitset_test(scratch.matched.data(), i)) {
      EXPECT_TRUE(pats.at(i).search("beta then alpha then gamma"));
    }
  }
  // An interesting pattern that does NOT match must come back clear
  // even though others match early.
  multi.match_all("alpha gamma only", scratch, interesting.data());
  EXPECT_FALSE(bitset_test(scratch.matched.data(), 1));
}

TEST(MultiRegex, TinyCacheFallsBackToPikeAndStaysCorrect) {
  Patterns pats({"a[0-9]+b", "(x|y)+z", "needle"});
  MultiRegex::Options opts;
  opts.dfa_cache_bytes = 1;  // nothing fits: every scan falls back
  opts.max_cache_flushes = 2;
  const MultiRegex multi(pats.raw(), opts);
  MatchScratch scratch;
  for (const char* text :
       {"a123b", "xyxyz", "hay needle stack", "none of them"}) {
    multi.match_all(text, scratch);
    for (std::size_t i = 0; i < multi.size(); ++i) {
      EXPECT_EQ(bitset_test(scratch.matched.data(), i), pats.at(i).search(text))
          << "pattern=" << pats.at(i).pattern() << " text=" << text;
    }
  }
  EXPECT_GT(scratch.pike_fallback_scans, 0u);
  EXPECT_EQ(scratch.dfa_scans, 0u);
}

TEST(MultiRegex, CacheDisablesAfterRepeatedBlowups) {
  Patterns pats({"a+b+c+", "d"});
  MultiRegex::Options opts;
  opts.dfa_cache_bytes = 1;
  opts.max_cache_flushes = 3;
  const MultiRegex multi(pats.raw(), opts);
  MatchScratch scratch;
  for (int i = 0; i < 20; ++i) {
    multi.match_all("aabbccd", scratch);
    EXPECT_TRUE(bitset_test(scratch.matched.data(), 0));
    EXPECT_TRUE(bitset_test(scratch.matched.data(), 1));
  }
  // Flush count saturates at the disable threshold instead of growing
  // once per line (no rebuild thrash).
  EXPECT_LE(scratch.dfa_flushes, 4u);
  EXPECT_EQ(scratch.dfa_scans, 0u);
  EXPECT_EQ(scratch.pike_fallback_scans, 20u);
}

TEST(MultiRegex, ScratchSharedAcrossDifferentMatchers) {
  // A scratch moving between MultiRegexes must rebuild its cache, not
  // reuse stale states from the previous owner.
  Patterns a({"alpha", "beta"});
  Patterns b({"gamma$", "^delta", "alpha"});
  const MultiRegex ma(a.raw());
  const MultiRegex mb(b.raw());
  MatchScratch scratch;
  for (int round = 0; round < 3; ++round) {
    expect_agrees(ma, a, scratch, "alpha beta gamma");
    expect_agrees(mb, b, scratch, "delta then gamma");
    expect_agrees(mb, b, scratch, "alpha");
    expect_agrees(ma, a, scratch, "nothing");
  }
}

TEST(MultiRegex, ManyPatternsSpanBitsetWords) {
  std::vector<std::string> sources;
  for (int i = 0; i < 130; ++i) {
    sources.push_back("tok" + std::to_string(i) + "\\b");
  }
  Patterns pats(sources);
  const MultiRegex multi(pats.raw());
  ASSERT_EQ(multi.bitset_words(), 3u);
  MatchScratch scratch;
  expect_agrees(multi, pats, scratch, "tok0 tok63 tok64 tok127 tok129");
  expect_agrees(multi, pats, scratch, "tok1280 is none of them (no break)");
}

TEST(MultiRegex, ScanCountersAdvanceOnTheDfaPath) {
  Patterns pats({"hit"});
  const MultiRegex multi(pats.raw());
  MatchScratch scratch;
  multi.match_all("a hit", scratch);
  multi.match_all("a miss", scratch);
  EXPECT_EQ(scratch.dfa_scans, 2u);
  EXPECT_EQ(scratch.pike_fallback_scans, 0u);
  EXPECT_EQ(scratch.dfa_flushes, 0u);
}

}  // namespace
}  // namespace wss::match
