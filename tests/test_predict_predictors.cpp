// Unit tests for the single-feature predictors.
#include <gtest/gtest.h>

#include "predict/periodic.hpp"
#include "predict/precursor.hpp"
#include "predict/rate_burst.hpp"
#include "util/rng.hpp"

namespace wss::predict {
namespace {

using util::kUsPerMin;
using util::kUsPerSec;

filter::Alert ev(double sec, std::uint16_t cat, std::uint64_t failure = 0) {
  filter::Alert a;
  a.time = static_cast<util::TimeUs>(sec * 1e6);
  a.category = cat;
  a.failure_id = failure;
  return a;
}

TEST(RateBurst, FiresOnBurstNotOnTrickle) {
  RateBurstOptions opts;
  RateBurstPredictor p(opts);
  // Trickle: one alert every 10 minutes.
  for (int i = 0; i < 30; ++i) p.observe(ev(i * 600.0, 1));
  EXPECT_TRUE(p.drain().empty());
  // Burst: 30 alerts two seconds apart.
  for (int i = 0; i < 30; ++i) p.observe(ev(20000.0 + i * 2.0, 1));
  const auto preds = p.drain();
  ASSERT_FALSE(preds.empty());
  EXPECT_EQ(preds[0].category, 1);
  EXPECT_GT(preds[0].window_end, preds[0].window_begin);
}

TEST(RateBurst, RefractoryLimitsSpam) {
  RateBurstOptions opts;
  opts.refractory_us = 60 * kUsPerMin;
  RateBurstPredictor p(opts);
  for (int i = 0; i < 500; ++i) p.observe(ev(i * 1.0, 2));
  // 500 seconds of continuous burst, one-hour refractory: one warning.
  EXPECT_EQ(p.drain().size(), 1u);
}

TEST(RateBurst, CategoriesIndependent) {
  RateBurstPredictor p;
  for (int i = 0; i < 30; ++i) p.observe(ev(i * 2.0, 3));
  for (const auto& pred : p.drain()) EXPECT_EQ(pred.category, 3);
}

TEST(RateBurst, ResetClearsStreamingState) {
  RateBurstPredictor p;
  for (int i = 0; i < 30; ++i) p.observe(ev(i * 2.0, 1));
  p.reset();
  EXPECT_TRUE(p.drain().empty());
  p.observe(ev(100000.0, 1));
  EXPECT_TRUE(p.drain().empty());  // single alert is not a burst
}

std::vector<filter::Alert> cascade_stream(int n, double follow_prob,
                                          std::uint64_t seed) {
  // Category 0 incidents every ~2000 s; category 1 follows 30 s later
  // with probability follow_prob; category 2 is independent noise.
  util::Rng rng(seed);
  std::vector<filter::Alert> out;
  double t = 1000.0;
  std::uint64_t failure = 1;
  for (int i = 0; i < n; ++i) {
    out.push_back(ev(t, 0, failure++));
    if (rng.bernoulli(follow_prob)) {
      out.push_back(ev(t + 30.0, 1, failure++));
    }
    out.push_back(ev(t + 700.0 + rng.uniform(0, 500.0), 2, failure++));
    t += 2000.0 + rng.uniform(0, 300.0);
  }
  return out;
}

TEST(Precursor, LearnsTruePairOnly) {
  const auto train = cascade_stream(60, 0.8, 1);
  PrecursorPredictor p;
  const std::size_t n_pairs = p.fit(train);
  ASSERT_GE(n_pairs, 1u);
  bool has_0_to_1 = false;
  for (const auto& [a, b] : p.pairs()) {
    if (a == 0 && b == 1) has_0_to_1 = true;
    EXPECT_NE(b, 2) << "independent category must not be predicted";
  }
  EXPECT_TRUE(has_0_to_1);
}

TEST(Precursor, PredictsFollowerInWindow) {
  const auto train = cascade_stream(60, 0.9, 2);
  const auto test = cascade_stream(30, 0.9, 3);
  PrecursorPredictor p;
  p.fit(train);
  for (const auto& a : test) p.observe(a);
  const auto preds = p.drain();
  ASSERT_FALSE(preds.empty());
  for (const auto& pred : preds) {
    EXPECT_EQ(pred.category, 1);
    EXPECT_GE(pred.window_end - pred.window_begin, 0);
  }
}

TEST(Precursor, NoPairsWithoutSupport) {
  // Too few incidents to meet min_support.
  PrecursorPredictor p;
  EXPECT_EQ(p.fit({ev(0, 0, 1), ev(30, 1, 2)}), 0u);
}

TEST(Periodic, DetectsPeriodicCategory) {
  std::vector<filter::Alert> train;
  std::uint64_t failure = 1;
  for (int i = 0; i < 20; ++i) {
    train.push_back(ev(i * 3600.0, 5, failure++));  // hourly heartbeat loss
  }
  PeriodicPredictor p;
  EXPECT_EQ(p.fit(train), 1u);
  EXPECT_NEAR(static_cast<double>(p.period_of(5)), 3600e6, 1e3);
  EXPECT_EQ(p.period_of(6), 0);
}

TEST(Periodic, AbstainsOnIrregularCategory) {
  util::Rng rng(4);
  std::vector<filter::Alert> train;
  double t = 0;
  std::uint64_t failure = 1;
  for (int i = 0; i < 40; ++i) {
    t += rng.exponential(1.0 / 2000.0);
    train.push_back(ev(t, 7, failure++));
  }
  PeriodicPredictor p;
  EXPECT_EQ(p.fit(train), 0u);
  p.observe(ev(t + 100.0, 7));
  EXPECT_TRUE(p.drain().empty());
}

TEST(Periodic, PredictsNextOccurrence) {
  std::vector<filter::Alert> train;
  std::uint64_t failure = 1;
  for (int i = 0; i < 12; ++i) train.push_back(ev(i * 100.0, 3, failure++));
  PeriodicPredictor p;
  ASSERT_EQ(p.fit(train), 1u);
  p.observe(ev(5000.0, 3));
  const auto preds = p.drain();
  ASSERT_EQ(preds.size(), 1u);
  // Window centered near t + 100 s.
  EXPECT_LE(preds[0].window_begin, static_cast<util::TimeUs>(5100e6));
  EXPECT_GE(preds[0].window_end, static_cast<util::TimeUs>(5100e6));
}

}  // namespace
}  // namespace wss::predict
