// Batch-vs-stream prediction equivalence: the online PredictStage
// (`wss stream --predict`), fed one event at a time, must issue
// exactly the Prediction set that the batch predictors API produces
// from the same alert stream with the same train/test split -- on all
// five systems, and regardless of the batch study's thread count.
//
// The stream side offers ground-truth alerts to the stage (the
// event-ingest path constructs them exactly as
// Simulator::ground_truth_alerts() does), so the batch reference is
// the same four-member ensemble (rate burst, precursor, periodic,
// episode rule) fitted on the first train_alerts alerts and run over
// the remainder. Sets are compared canonically sorted -- the ensemble
// drain order is not part of the contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "core/study.hpp"
#include "mine/episodes.hpp"
#include "predict/ensemble.hpp"
#include "predict/episode_rule.hpp"
#include "predict/periodic.hpp"
#include "predict/precursor.hpp"
#include "predict/rate_burst.hpp"
#include "stream/pipeline.hpp"

namespace wss {
namespace {

sim::SimOptions small_sim(std::uint64_t seed) {
  sim::SimOptions opts;
  opts.seed = seed;
  opts.category_cap = 1500;
  opts.chatter_events = 10000;
  return opts;
}

using PredictionKey =
    std::tuple<util::TimeUs, std::uint16_t, util::TimeUs, util::TimeUs>;

std::vector<PredictionKey> canonical(
    const std::vector<predict::Prediction>& ps) {
  std::vector<PredictionKey> keys;
  keys.reserve(ps.size());
  for (const auto& p : ps) {
    keys.emplace_back(p.issued_at, p.category, p.window_begin, p.window_end);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// The batch reference: mirrors PredictStage's construction and fit
/// order exactly (predict_stage.cpp is the normative copy).
std::vector<predict::Prediction> batch_predictions(
    const std::vector<filter::Alert>& alerts,
    const stream::PredictOptions& opts) {
  auto rate = std::make_unique<predict::RateBurstPredictor>();
  predict::PrecursorOptions popts;
  popts.window_us = opts.horizon_us;
  auto prec = std::make_unique<predict::PrecursorPredictor>(popts);
  auto peri = std::make_unique<predict::PeriodicPredictor>();
  mine::EpisodeOptions eopts;
  eopts.window_us = opts.horizon_us;
  eopts.max_candidates = opts.max_candidates;
  auto epi = std::make_unique<predict::EpisodeRulePredictor>(eopts);
  auto* prec_raw = prec.get();
  auto* peri_raw = peri.get();
  std::vector<std::unique_ptr<predict::Predictor>> members;
  members.push_back(std::move(rate));
  members.push_back(std::move(prec));
  members.push_back(std::move(peri));
  members.push_back(std::move(epi));
  predict::EnsemblePredictor ensemble(std::move(members));

  const std::size_t cut = std::min(opts.train_alerts, alerts.size());
  const std::vector<filter::Alert> train(alerts.begin(),
                                         alerts.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
  prec_raw->fit(train);
  peri_raw->fit(train);
  ensemble.fit_routing(train, opts.min_f1);

  const std::vector<filter::Alert> test(
      alerts.begin() + static_cast<std::ptrdiff_t>(cut), alerts.end());
  return predict::run_predictor(ensemble, test);
}

struct StreamRun {
  std::vector<predict::Prediction> predictions;
  stream::StreamSnapshot snapshot;
};

StreamRun stream_predictions(const sim::Simulator& simulator,
                             const stream::PredictOptions& predict) {
  stream::StreamPipelineOptions popts;
  popts.predict = predict;
  stream::StreamPipeline pipeline(simulator.spec().id, popts);
  StreamRun run;
  pipeline.set_prediction_sink(
      [&run](const predict::Prediction& p) { run.predictions.push_back(p); });
  const auto& events = simulator.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    pipeline.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  pipeline.finish();
  run.snapshot = pipeline.snapshot();
  return run;
}

TEST(PredictStream, StreamEqualsBatchAllSystemsBothThreadCounts) {
  for (const auto id : parse::kAllSystems) {
    SCOPED_TRACE(parse::system_short_name(id));

    // Two batch studies, serial and 4-way threaded: prediction inputs
    // and outputs must not depend on the study's thread count.
    std::vector<PredictionKey> batch_by_threads[2];
    stream::PredictOptions predict;
    predict.enabled = true;
    int slot = 0;
    for (const int threads : {1, 4}) {
      core::StudyOptions sopts;
      sopts.sim = small_sim(42);
      sopts.pipeline.num_threads = threads;
      core::Study study(sopts);
      // Engage the threaded pipeline path for real, then predict from
      // the study's alert stream.
      (void)study.parallel_pipeline_result(id);
      const auto alerts = study.simulator(id).ground_truth_alerts();
      if (alerts.size() < 10) GTEST_SKIP() << "stream too small";
      predict.train_alerts = alerts.size() * 6 / 10;
      batch_by_threads[slot++] = canonical(batch_predictions(alerts, predict));
    }
    EXPECT_EQ(batch_by_threads[0], batch_by_threads[1])
        << "batch predictions depend on the study thread count";

    const sim::Simulator simulator(id, small_sim(42));
    const StreamRun run = stream_predictions(simulator, predict);
    EXPECT_TRUE(run.snapshot.predict_fitted);
    EXPECT_EQ(canonical(run.predictions), batch_by_threads[0])
        << "streamed predictions diverge from the batch reference";

    // The snapshot's issued count is the sink stream, nothing more.
    EXPECT_EQ(run.snapshot.predict_issued, run.predictions.size());
    // Lead-time accounting identity: every incident is decided exactly
    // once -- hit or miss.
    EXPECT_EQ(run.snapshot.predict_hits + run.snapshot.predict_misses,
              run.snapshot.predict_incidents);
  }
}

TEST(PredictStream, SecondSeedStillAgrees) {
  // One more seed end to end, single-threaded batch only: guards
  // against the first seed having accidentally quiet training splits.
  for (const auto id :
       {parse::SystemId::kLiberty, parse::SystemId::kBlueGeneL}) {
    SCOPED_TRACE(parse::system_short_name(id));
    const sim::Simulator simulator(id, small_sim(7));
    const auto alerts = simulator.ground_truth_alerts();
    if (alerts.size() < 10) GTEST_SKIP() << "stream too small";
    stream::PredictOptions predict;
    predict.enabled = true;
    predict.train_alerts = alerts.size() * 6 / 10;
    const StreamRun run = stream_predictions(simulator, predict);
    EXPECT_EQ(canonical(run.predictions),
              canonical(batch_predictions(alerts, predict)));
  }
}

TEST(PredictStream, TrainingOnlyStreamIssuesNothing) {
  // train_alerts beyond the stream: the stage must stay in training,
  // issue nothing, and still account every incident as a miss.
  const sim::Simulator simulator(parse::SystemId::kLiberty, small_sim(42));
  stream::PredictOptions predict;
  predict.enabled = true;
  predict.train_alerts = simulator.ground_truth_alerts().size() + 1000;
  const StreamRun run = stream_predictions(simulator, predict);
  EXPECT_FALSE(run.snapshot.predict_fitted);
  EXPECT_TRUE(run.predictions.empty());
  EXPECT_EQ(run.snapshot.predict_issued, 0u);
  EXPECT_EQ(run.snapshot.predict_hits, 0u);
  EXPECT_EQ(run.snapshot.predict_misses, run.snapshot.predict_incidents);
}

}  // namespace
}  // namespace wss
