#include "tag/engine.hpp"

#include <gtest/gtest.h>

#include "tag/evaluate.hpp"
#include "tag/rulesets.hpp"
#include "tag/severity_tagger.hpp"

namespace wss::tag {
namespace {

using parse::SystemId;

TEST(TagEngine, FirstMatchWins) {
  // Build a tiny rule set with overlapping patterns.
  std::vector<Rule> rules(2);
  rules[0].category = "SPECIFIC";
  rules[0].predicate.add_term(0, "disk error on sda");
  rules[1].category = "GENERIC";
  rules[1].predicate.add_term(0, "disk error");
  const RuleSet rs(SystemId::kLiberty, std::move(rules));
  const TagEngine engine(rs);
  const auto hit = engine.tag_line("kernel: disk error on sda5");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->category, 0);
  const auto generic = engine.tag_line("kernel: disk error on hdb");
  ASSERT_TRUE(generic);
  EXPECT_EQ(generic->category, 1);
}

TEST(TagEngine, NoMatchReturnsNullopt) {
  const TagEngine engine(build_ruleset(SystemId::kLiberty));
  EXPECT_FALSE(engine.tag_line("Jun  3 10:00:00 ln1 sshd[1]: session opened"));
  EXPECT_FALSE(engine.tag_line(""));
}

TEST(TagEngine, TagsParsedRecordViaRaw) {
  const TagEngine engine(build_ruleset(SystemId::kLiberty));
  parse::LogRecord rec;
  rec.raw = "Jun  3 10:00:00 ln1 pbs_mom[9]: task_check, cannot tm_reply to "
            "1.ladmin1 task 1";
  const auto hit = engine.tag(rec);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->type, filter::AlertType::kSoftware);
}

TEST(TagEngine, CorruptedTailStillTagsWhenPatternIntact) {
  // Truncation after the matched substring (the common real case).
  const TagEngine engine(build_ruleset(SystemId::kThunderbird));
  EXPECT_TRUE(engine.tag_line(
      "kernel: [KERNEL_IB][ib_sm_sweep.c:1455]Fatal error (Local "
      "Catastrophic Error"));
  // Truncation inside the pattern loses the alert -- a documented
  // failure mode of automated tagging (Section 3.2.1).
  EXPECT_FALSE(engine.tag_line("kernel: [KERNEL_IB][ib_sm_sweep.c:1455]Fat"));
}

TEST(SeverityTagger, BglBaseline) {
  const auto tagger = SeverityTagger::bgl_fatal_failure();
  parse::LogRecord rec;
  rec.severity = parse::Severity::kFatal;
  EXPECT_TRUE(tagger.is_alert(rec));
  rec.severity = parse::Severity::kFailure;
  EXPECT_TRUE(tagger.is_alert(rec));
  rec.severity = parse::Severity::kInfo;
  EXPECT_FALSE(tagger.is_alert(rec));
  rec.severity = parse::Severity::kSevere;
  EXPECT_FALSE(tagger.is_alert(rec));
}

TEST(TaggerEvaluation, RatesFromPaperNumbers) {
  // Table 5's arithmetic: tagging FATAL/FAILURE as alerts yields
  // TP = 348,460, FP = 855,501 + 1,714 - 348,460 = 508,755.
  TaggerEvaluation e;
  e.add(true, true, 348460);
  e.add(true, false, 508755);
  e.add(false, false, 3890748);
  EXPECT_NEAR(e.false_positive_rate(), 0.5934, 0.0005);
  EXPECT_DOUBLE_EQ(e.false_negative_rate(), 0.0);
  EXPECT_NEAR(e.precision(), 1.0 - 0.5934, 0.0005);
  EXPECT_DOUBLE_EQ(e.recall(), 1.0);
}

TEST(TaggerEvaluation, EmptyIsZero) {
  TaggerEvaluation e;
  EXPECT_EQ(e.false_positive_rate(), 0.0);
  EXPECT_EQ(e.false_negative_rate(), 0.0);
}

TEST(TaggerEvaluation, DescribeIncludesRates) {
  TaggerEvaluation e;
  e.add(true, true);
  e.add(true, false);
  const std::string d = e.describe();
  EXPECT_NE(d.find("FP rate 50.00%"), std::string::npos);
}

}  // namespace
}  // namespace wss::tag
