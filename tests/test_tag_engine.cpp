#include "tag/engine.hpp"

#include <gtest/gtest.h>

#include "sim/generator.hpp"
#include "tag/evaluate.hpp"
#include "tag/rulesets.hpp"
#include "tag/severity_tagger.hpp"

namespace wss::tag {
namespace {

using parse::SystemId;

TEST(TagEngine, FirstMatchWins) {
  // Build a tiny rule set with overlapping patterns.
  std::vector<Rule> rules(2);
  rules[0].category = "SPECIFIC";
  rules[0].predicate.add_term(0, "disk error on sda");
  rules[1].category = "GENERIC";
  rules[1].predicate.add_term(0, "disk error");
  const RuleSet rs(SystemId::kLiberty, std::move(rules));
  const TagEngine engine(rs);
  const auto hit = engine.tag_line("kernel: disk error on sda5");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->category, 0);
  const auto generic = engine.tag_line("kernel: disk error on hdb");
  ASSERT_TRUE(generic);
  EXPECT_EQ(generic->category, 1);
}

TEST(TagEngine, NoMatchReturnsNullopt) {
  const TagEngine engine(build_ruleset(SystemId::kLiberty));
  EXPECT_FALSE(engine.tag_line("Jun  3 10:00:00 ln1 sshd[1]: session opened"));
  EXPECT_FALSE(engine.tag_line(""));
}

TEST(TagEngine, TagsParsedRecordViaRaw) {
  const TagEngine engine(build_ruleset(SystemId::kLiberty));
  parse::LogRecord rec;
  rec.raw = "Jun  3 10:00:00 ln1 pbs_mom[9]: task_check, cannot tm_reply to "
            "1.ladmin1 task 1";
  const auto hit = engine.tag(rec);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->type, filter::AlertType::kSoftware);
}

TEST(TagEngine, CorruptedTailStillTagsWhenPatternIntact) {
  // Truncation after the matched substring (the common real case).
  const TagEngine engine(build_ruleset(SystemId::kThunderbird));
  EXPECT_TRUE(engine.tag_line(
      "kernel: [KERNEL_IB][ib_sm_sweep.c:1455]Fatal error (Local "
      "Catastrophic Error"));
  // Truncation inside the pattern loses the alert -- a documented
  // failure mode of automated tagging (Section 3.2.1).
  EXPECT_FALSE(engine.tag_line("kernel: [KERNEL_IB][ib_sm_sweep.c:1455]Fat"));
}

TEST(TagEngine, ModeFromEnvDefaultsToMulti) {
  EXPECT_EQ(TagEngine::mode_from_env(), TagEngineMode::kMulti);
  const TagEngine engine(build_ruleset(SystemId::kLiberty));
  EXPECT_EQ(engine.mode(), TagEngineMode::kMulti);
}

TEST(TagEngine, NegatedTermsDoNotGateCandidacy) {
  // A negated term is SATISFIED when its pattern is absent -- so its
  // required literal must not be demanded by the prefilter. Rule:
  // /disk error/ && !/recovered/.
  std::vector<Rule> rules(1);
  rules[0].category = "DISK";
  rules[0].predicate.add_term(0, "disk error");
  rules[0].predicate.add_term(0, "recovered", /*negated=*/true);
  const RuleSet rs(SystemId::kLiberty, std::move(rules));
  for (const auto mode : {TagEngineMode::kNaive, TagEngineMode::kPrefilter,
                          TagEngineMode::kMulti}) {
    const TagEngine engine(RuleSet(rs), mode);
    // "recovered" absent: the negated conjunct holds, the rule fires.
    EXPECT_TRUE(engine.tag_line("kernel: disk error on sda"))
        << static_cast<int>(mode);
    // "recovered" present: the negated conjunct fails.
    EXPECT_FALSE(engine.tag_line("kernel: disk error on sda recovered"))
        << static_cast<int>(mode);
    EXPECT_FALSE(engine.tag_line("kernel: all quiet"))
        << static_cast<int>(mode);
  }
}

TEST(TagEngine, NegatedFieldTerms) {
  // Field terms ride the direct evaluation path in every mode.
  std::vector<Rule> rules(1);
  rules[0].category = "FIELDNEG";
  rules[0].predicate.add_term(0, "panic");
  rules[0].predicate.add_term(2, "APP", /*negated=*/true);
  const RuleSet rs(SystemId::kLiberty, std::move(rules));
  for (const auto mode : {TagEngineMode::kNaive, TagEngineMode::kPrefilter,
                          TagEngineMode::kMulti}) {
    const TagEngine engine(RuleSet(rs), mode);
    EXPECT_TRUE(engine.tag_line("x KERNEL panic now")) << static_cast<int>(mode);
    EXPECT_FALSE(engine.tag_line("x APP panic now")) << static_cast<int>(mode);
  }
}

TEST(TagEngine, ModesAreBitIdenticalOnAllSystems) {
  // The load-bearing equivalence: naive / prefilter / multi must agree
  // on every rendered line of every system -- category AND type, not
  // just hit/miss (first-match-wins ordering is part of the contract).
  sim::SimOptions opts;
  opts.category_cap = 300;
  opts.chatter_events = 2000;
  for (const auto id : parse::kAllSystems) {
    const sim::Simulator simulator(id, opts);
    const TagEngine naive(build_ruleset(id), TagEngineMode::kNaive);
    const TagEngine prefilter(build_ruleset(id), TagEngineMode::kPrefilter);
    const TagEngine multi(build_ruleset(id), TagEngineMode::kMulti);
    match::MatchScratch s_naive, s_prefilter, s_multi;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < simulator.events().size(); ++i) {
      const std::string line = simulator.line(i);
      const auto a = naive.tag_line(line, s_naive);
      const auto b = prefilter.tag_line(line, s_prefilter);
      const auto c = multi.tag_line(line, s_multi);
      ASSERT_EQ(a.has_value(), b.has_value()) << line;
      ASSERT_EQ(a.has_value(), c.has_value()) << line;
      if (a) {
        ++hits;
        ASSERT_EQ(a->category, b->category) << line;
        ASSERT_EQ(a->category, c->category) << line;
        ASSERT_EQ(a->type, c->type) << line;
      }
    }
    EXPECT_GT(hits, 0u) << parse::system_name(id);
  }
}

TEST(TagEngine, CorruptedLinesAgreeAcrossModes) {
  // Corruption injection mangles sources, timestamps, and bodies --
  // exactly the text shapes where a prefilter could diverge.
  sim::SimOptions opts;
  opts.category_cap = 300;
  opts.chatter_events = 2000;
  opts.inject_corruption = true;
  const sim::Simulator simulator(SystemId::kSpirit, opts);
  const TagEngine naive(build_ruleset(SystemId::kSpirit),
                        TagEngineMode::kNaive);
  const TagEngine multi(build_ruleset(SystemId::kSpirit),
                        TagEngineMode::kMulti);
  match::MatchScratch s_naive, s_multi;
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    const std::string line = simulator.line(i);
    const auto a = naive.tag_line(line, s_naive);
    const auto c = multi.tag_line(line, s_multi);
    ASSERT_EQ(a.has_value(), c.has_value()) << line;
    if (a) {
      ASSERT_EQ(a->category, c->category) << line;
    }
  }
}

TEST(SeverityTagger, BglBaseline) {
  const auto tagger = SeverityTagger::bgl_fatal_failure();
  parse::LogRecord rec;
  rec.severity = parse::Severity::kFatal;
  EXPECT_TRUE(tagger.is_alert(rec));
  rec.severity = parse::Severity::kFailure;
  EXPECT_TRUE(tagger.is_alert(rec));
  rec.severity = parse::Severity::kInfo;
  EXPECT_FALSE(tagger.is_alert(rec));
  rec.severity = parse::Severity::kSevere;
  EXPECT_FALSE(tagger.is_alert(rec));
}

TEST(TaggerEvaluation, RatesFromPaperNumbers) {
  // Table 5's arithmetic: tagging FATAL/FAILURE as alerts yields
  // TP = 348,460, FP = 855,501 + 1,714 - 348,460 = 508,755.
  TaggerEvaluation e;
  e.add(true, true, 348460);
  e.add(true, false, 508755);
  e.add(false, false, 3890748);
  EXPECT_NEAR(e.false_positive_rate(), 0.5934, 0.0005);
  EXPECT_DOUBLE_EQ(e.false_negative_rate(), 0.0);
  EXPECT_NEAR(e.precision(), 1.0 - 0.5934, 0.0005);
  EXPECT_DOUBLE_EQ(e.recall(), 1.0);
}

TEST(TaggerEvaluation, EmptyIsZero) {
  TaggerEvaluation e;
  EXPECT_EQ(e.false_positive_rate(), 0.0);
  EXPECT_EQ(e.false_negative_rate(), 0.0);
}

TEST(TaggerEvaluation, DescribeIncludesRates) {
  TaggerEvaluation e;
  e.add(true, true);
  e.add(true, false);
  const std::string d = e.describe();
  EXPECT_NE(d.find("FP rate 50.00%"), std::string::npos);
}

}  // namespace
}  // namespace wss::tag
