// Required-literal extraction (the per-rule prefilter contract) and
// the Aho-Corasick LiteralScanner that batches those literals into one
// pass. Both sit under the tag engine's candidate gating, so a wrong
// answer here silently drops alerts -- the scanner is checked against
// brute-force substring search.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "match/literal_scanner.hpp"
#include "match/nfa.hpp"
#include "match/pattern.hpp"
#include "util/rng.hpp"

namespace wss::match {
namespace {

// ---- required_literal() edge cases --------------------------------

TEST(RequiredLiteral, PlainLiteralIsItself) {
  EXPECT_EQ(required_literal("data TLB error interrupt"),
            "data TLB error interrupt");
}

TEST(RequiredLiteral, AlternationWithoutCommonLiteralYieldsNothing) {
  // Either branch can satisfy the match, so no literal is required.
  EXPECT_EQ(required_literal("error|fail"), "");
  EXPECT_EQ(required_literal("(panic|oops)"), "");
}

TEST(RequiredLiteral, AlternationDoesNotPoisonSurroundingRuns) {
  // The literal before/after the alternation is still mandatory; the
  // scan keeps the longest such run.
  const std::string lit = required_literal("kernel: (read|write) fault");
  EXPECT_EQ(lit, "kernel: ");
  const Regex re("kernel: (read|write) fault");
  EXPECT_EQ(re.prefilter_literal(), lit);
}

TEST(RequiredLiteral, AnchorsAreZeroWidth) {
  // ^/$/\b do not break a literal run -- every match still contains it.
  EXPECT_EQ(required_literal("^MACHINE CHECK$"), "MACHINE CHECK");
  EXPECT_EQ(required_literal("\\berror\\b"), "error");
}

TEST(RequiredLiteral, CaseInsensitiveYieldsNothing) {
  ParseOptions opts;
  opts.case_insensitive = true;
  // Each letter matches two bytes, so no byte string is required.
  EXPECT_EQ(required_literal("FAILURE", opts), "");
}

TEST(RequiredLiteral, NonSingletonClassBreaksTheRun) {
  EXPECT_EQ(required_literal("[0-9]+ microseconds"), " microseconds");
  EXPECT_EQ(required_literal("rts: [kp]anic"), "rts: ");
}

TEST(RequiredLiteral, SingletonClassExtendsTheRun) {
  EXPECT_EQ(required_literal("[e]rror [c]ode"), "error code");
  EXPECT_EQ(required_literal("\\.\\*literal"), ".*literal");
}

TEST(RequiredLiteral, BoundedRepeats) {
  // {0,n} makes the atom optional: nothing inside is required.
  EXPECT_EQ(required_literal("ab{0,3}"), "a");
  // min >= 1 guarantees at least one occurrence of the atom, so the
  // run extends through the first repetition before the scan flushes.
  EXPECT_EQ(required_literal("link error x{2,4} retry"), "link error x");
  const std::string lit = required_literal("failure{1,3} detected");
  EXPECT_FALSE(lit.empty());
  // Whatever is claimed must genuinely appear in every match.
  const Regex re("failure{1,3} detected");
  EXPECT_TRUE(re.search("node failuree detected"));
  EXPECT_NE(std::string("failuree detected").find(lit), std::string::npos);
}

TEST(RequiredLiteral, StarAndOptionalContributeNothing) {
  EXPECT_EQ(required_literal("a*b?c"), "c");
  EXPECT_EQ(required_literal(".*ciod: Error.*"), "ciod: Error");
}

TEST(RequiredLiteral, ClaimedLiteralAlwaysGates) {
  // The prefilter contract: literal absent => search cannot succeed.
  // Spot-check with real rule-style patterns over matching lines.
  const char* patterns[] = {
      "kernel: (read|write) fault",  "^MACHINE CHECK",
      "[0-9]+ ddr errors? detected", "rts: [kp]anic",
      "(ido|service) node (down|unreachable)",
  };
  const char* lines[] = {
      "Jun  3 15:42:50 sn373 kernel: read fault at 0xdeadbeef",
      "MACHINE CHECK master abort",
      "17 ddr errors detected and corrected",
      "rts: kanic -- halting",
      "service node down since 12:00",
  };
  for (const char* p : patterns) {
    const Regex re(p);
    const std::string& lit = re.prefilter_literal();
    for (const char* line : lines) {
      if (re.search(line, /*use_prefilter=*/false)) {
        EXPECT_NE(std::string_view(line).find(lit), std::string_view::npos)
            << "pattern=" << p << " line=" << line;
      }
    }
  }
}

// ---- LiteralScanner vs brute force --------------------------------

std::vector<bool> brute_force(const std::vector<std::string>& lits,
                              std::string_view text) {
  std::vector<bool> out(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    out[i] = text.find(lits[i]) != std::string_view::npos;
  }
  return out;
}

void expect_scan_equals_brute_force(const std::vector<std::string>& lits,
                                    std::string_view text) {
  const LiteralScanner scanner(lits);
  std::vector<std::uint64_t> found(scanner.bitset_words(), 0);
  scanner.scan(text, found.data());
  const auto expected = brute_force(lits, text);
  for (std::size_t i = 0; i < lits.size(); ++i) {
    EXPECT_EQ(bitset_test(found.data(), i), expected[i])
        << "literal=" << lits[i] << " text=" << text;
  }
}

TEST(LiteralScanner, RejectsEmptyLiteral) {
  EXPECT_THROW(LiteralScanner({std::string()}), std::invalid_argument);
  EXPECT_THROW(LiteralScanner({"ok", ""}), std::invalid_argument);
}

TEST(LiteralScanner, EmptySetScansCleanly) {
  const LiteralScanner scanner{std::vector<std::string>{}};
  EXPECT_EQ(scanner.size(), 0u);
  EXPECT_EQ(scanner.bitset_words(), 0u);
  scanner.scan("anything", nullptr);  // zero words to write
}

TEST(LiteralScanner, OverlappingAndNestedLiterals) {
  // "he"/"she"/"his"/"hers": the classic AC example where outputs must
  // be merged down fail links to be found at all.
  const std::vector<std::string> lits = {"he", "she", "his", "hers"};
  expect_scan_equals_brute_force(lits, "ushers");
  expect_scan_equals_brute_force(lits, "this");
  expect_scan_equals_brute_force(lits, "ahishers");
  expect_scan_equals_brute_force(lits, "");
}

TEST(LiteralScanner, DuplicateLiteralsReportBothIds) {
  const std::vector<std::string> lits = {"err", "err", "warn"};
  const LiteralScanner scanner(lits);
  std::vector<std::uint64_t> found(scanner.bitset_words(), 0);
  scanner.scan("an err occurred", found.data());
  EXPECT_TRUE(bitset_test(found.data(), 0));
  EXPECT_TRUE(bitset_test(found.data(), 1));
  EXPECT_FALSE(bitset_test(found.data(), 2));
}

TEST(LiteralScanner, AccumulatesAcrossFragments) {
  const std::vector<std::string> lits = {"alpha", "beta"};
  const LiteralScanner scanner(lits);
  std::vector<std::uint64_t> found(scanner.bitset_words(), 0);
  scanner.scan("alpha only", found.data());
  scanner.scan("beta only", found.data());
  EXPECT_TRUE(bitset_test(found.data(), 0));
  EXPECT_TRUE(bitset_test(found.data(), 1));
}

TEST(LiteralScanner, BinaryBytesAndWideBitsets) {
  // >64 literals exercises the multi-word bitset; bytes >= 0x80
  // exercise the unsigned-byte indexing of the dense table.
  std::vector<std::string> lits;
  for (int i = 0; i < 70; ++i) {
    lits.push_back("lit" + std::to_string(i));
  }
  lits.push_back(std::string("\xff\xfe\x80", 3));
  const LiteralScanner scanner(lits);
  ASSERT_EQ(scanner.bitset_words(), 2u);
  std::vector<std::uint64_t> found(scanner.bitset_words(), 0);
  const std::string text = std::string("noise lit69 \xff\xfe\x80 lit7!");
  scanner.scan(text, found.data());
  const auto expected = brute_force(lits, text);
  for (std::size_t i = 0; i < lits.size(); ++i) {
    EXPECT_EQ(bitset_test(found.data(), i), expected[i]) << "i=" << i;
  }
}

TEST(LiteralScanner, AllByteValuesInLiterals) {
  // Every byte value 0..255 occurs in some literal, so the byte-class
  // table has no catch-all members left -- the one value that cannot
  // get its own class id must still map distinctly (at most one byte
  // can share class 0, and only when no non-literal bytes exist).
  std::vector<std::string> lits;
  for (int c = 0; c < 256; ++c) {
    lits.push_back(std::string(1, static_cast<char>(c)) + "x");
  }
  const LiteralScanner scanner(lits);
  std::string text;
  for (int c = 255; c >= 0; --c) {
    text.push_back(static_cast<char>(c));
    text.push_back('x');
  }
  expect_scan_equals_brute_force(lits, text);
  expect_scan_equals_brute_force(lits, "plain ascii only");
}

TEST(LiteralScanner, RandomizedVsBruteForce) {
  util::Rng rng(20260806);
  static constexpr char kAlphabet[] = "abcde ";
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::string> lits;
    const std::size_t n = 1 + rng.uniform_u64(12);
    for (std::size_t i = 0; i < n; ++i) {
      std::string lit;
      const std::size_t len = 1 + rng.uniform_u64(5);
      for (std::size_t j = 0; j < len; ++j) {
        lit.push_back(kAlphabet[rng.uniform_u64(sizeof(kAlphabet) - 1)]);
      }
      lits.push_back(std::move(lit));
    }
    std::string text;
    const std::size_t len = rng.uniform_u64(60);
    for (std::size_t j = 0; j < len; ++j) {
      text.push_back(kAlphabet[rng.uniform_u64(sizeof(kAlphabet) - 1)]);
    }
    expect_scan_equals_brute_force(lits, text);
  }
}

TEST(LiteralScanner, RuleSetSizedCorpus) {
  // The shape the tag engine actually builds: a few dozen distinct
  // message fragments scanned against log-like lines.
  const std::vector<std::string> lits = {
      "data TLB error",     "MACHINE CHECK",      "ddr errors",
      "ciod: Error",        "kernel panic",       "Link error",
      "ECC error",          "node card",          "power module",
      "temperature",        "fan speed",          "L3 major internal",
  };
  expect_scan_equals_brute_force(
      lits, "RAS KERNEL FATAL data TLB error interrupt");
  expect_scan_equals_brute_force(
      lits, "RAS KERNEL INFO 4 ddr errors detected and corrected");
  expect_scan_equals_brute_force(
      lits, "generating core.2275 -- no rule fragment present here");
  expect_scan_equals_brute_force(lits, "MACHINE CHECK");
}

}  // namespace
}  // namespace wss::match
