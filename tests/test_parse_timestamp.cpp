#include "parse/timestamp.hpp"

#include <gtest/gtest.h>

namespace wss::parse {
namespace {

TEST(SyslogTimestamp, ParsesStandardStamp) {
  const auto t = parse_syslog_timestamp("Jun  3 15:42:50", 2005);
  ASSERT_TRUE(t);
  EXPECT_EQ(util::to_civil(*t), (util::CivilTime{2005, 6, 3, 15, 42, 50, 0}));
}

TEST(SyslogTimestamp, ParsesTwoDigitDay) {
  const auto t = parse_syslog_timestamp("Nov 19 01:02:03", 2005);
  ASSERT_TRUE(t);
  EXPECT_EQ(util::to_civil(*t).day, 19);
}

TEST(SyslogTimestamp, RejectsMalformed) {
  EXPECT_FALSE(parse_syslog_timestamp("Xyz  3 15:42:50", 2005));
  EXPECT_FALSE(parse_syslog_timestamp("Jun  3 25:42:50", 2005));
  EXPECT_FALSE(parse_syslog_timestamp("Jun  3 15:60:50", 2005));
  EXPECT_FALSE(parse_syslog_timestamp("Jun 32 15:42:50", 2005));
  EXPECT_FALSE(parse_syslog_timestamp("Jun  3 15:42", 2005));
  EXPECT_FALSE(parse_syslog_timestamp("", 2005));
  EXPECT_FALSE(parse_syslog_timestamp("Jun  3 15-42-50", 2005));
  EXPECT_FALSE(parse_syslog_timestamp("Feb 29 00:00:00", 2005));  // not leap
}

TEST(SyslogTimestamp, LeapDayValidByYear) {
  EXPECT_TRUE(parse_syslog_timestamp("Feb 29 00:00:00", 2004));
}

TEST(BglTimestamp, ParsesMicroseconds) {
  const auto t = parse_bgl_timestamp("2005-06-03-15.42.50.363779");
  ASSERT_TRUE(t);
  const auto ct = util::to_civil(*t);
  EXPECT_EQ(ct.micros, 363779);
  EXPECT_EQ(ct.hour, 15);
}

TEST(BglTimestamp, RejectsMalformed) {
  EXPECT_FALSE(parse_bgl_timestamp("2005-06-03 15.42.50.363779"));
  EXPECT_FALSE(parse_bgl_timestamp("2005-13-03-15.42.50.363779"));
  EXPECT_FALSE(parse_bgl_timestamp("2005-06-03-15.42.50.36377"));
  EXPECT_FALSE(parse_bgl_timestamp("garbage"));
}

TEST(IsoTimestamp, Parses) {
  const auto t = parse_iso_timestamp("2006-03-19 10:00:00");
  ASSERT_TRUE(t);
  EXPECT_EQ(util::to_civil(*t), (util::CivilTime{2006, 3, 19, 10, 0, 0, 0}));
}

TEST(IsoTimestamp, RejectsMalformed) {
  EXPECT_FALSE(parse_iso_timestamp("2006/03/19 10:00:00"));
  EXPECT_FALSE(parse_iso_timestamp("2006-03-19T10:00:00"));
  EXPECT_FALSE(parse_iso_timestamp("2006-03-32 10:00:00"));
}

TEST(CivilValidation, Ranges) {
  EXPECT_TRUE(civil_fields_valid(2005, 6, 3, 0, 0, 0));
  EXPECT_FALSE(civil_fields_valid(0, 6, 3, 0, 0, 0));
  EXPECT_FALSE(civil_fields_valid(2005, 0, 3, 0, 0, 0));
  EXPECT_FALSE(civil_fields_valid(2005, 6, 31, 0, 0, 0));
  EXPECT_FALSE(civil_fields_valid(2005, 6, 3, 24, 0, 0));
  EXPECT_FALSE(civil_fields_valid(2005, 6, 3, 0, 0, 60));
}

}  // namespace
}  // namespace wss::parse
