// Top-level simulator invariants: determinism, stream well-formedness,
// ground-truth consistency, weighted-count calibration.
#include "sim/generator.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "tag/rulesets.hpp"

namespace wss::sim {
namespace {

using parse::SystemId;

SimOptions tiny(std::uint64_t seed = 42) {
  SimOptions o;
  o.seed = seed;
  o.category_cap = 500;
  o.chatter_events = 3000;
  return o;
}

TEST(Generator, DeterministicFromSeed) {
  const Simulator a(SystemId::kLiberty, tiny(7));
  const Simulator b(SystemId::kLiberty, tiny(7));
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].source, b.events()[i].source);
    EXPECT_EQ(a.events()[i].category, b.events()[i].category);
    EXPECT_EQ(a.line(i), b.line(i));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Simulator a(SystemId::kLiberty, tiny(1));
  const Simulator b(SystemId::kLiberty, tiny(2));
  std::size_t same = 0;
  const std::size_t n = std::min(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.events()[i].time == b.events()[i].time) ++same;
  }
  EXPECT_LT(same, n / 10);
}

class GeneratorPerSystem : public ::testing::TestWithParam<SystemId> {};

TEST_P(GeneratorPerSystem, StreamWellFormed) {
  const Simulator sim(GetParam(), tiny());
  const auto& spec = sim.spec();
  ASSERT_FALSE(sim.events().empty());
  util::TimeUs prev = 0;
  for (const SimEvent& e : sim.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    EXPECT_GE(e.time, spec.start_time());
    EXPECT_LE(e.time, spec.end_time());
    EXPECT_LT(e.source, spec.n_sources);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST_P(GeneratorPerSystem, GroundTruthConsistent) {
  const Simulator sim(GetParam(), tiny());
  const auto cats = tag::categories_of(GetParam());
  // Every failure id maps to exactly one category; chatter has none.
  std::unordered_map<std::uint64_t, std::int32_t> failure_cat;
  for (const SimEvent& e : sim.events()) {
    if (!e.is_alert()) {
      EXPECT_EQ(e.failure_id, 0u);
      continue;
    }
    ASSERT_LT(static_cast<std::size_t>(e.category), cats.size());
    ASSERT_NE(e.failure_id, 0u);
    const auto it = failure_cat.find(e.failure_id);
    if (it == failure_cat.end()) {
      failure_cat[e.failure_id] = e.category;
    } else {
      EXPECT_EQ(it->second, e.category) << e.failure_id;
    }
  }
  EXPECT_EQ(failure_cat.size(), sim.total_failures());
}

TEST_P(GeneratorPerSystem, WeightedTotalsCalibrated) {
  const Simulator sim(GetParam(), tiny());
  EXPECT_NEAR(sim.weighted_message_total() /
                  static_cast<double>(sim.spec().messages),
              1.0, 1e-4);
  const auto counts = sim.weighted_alert_counts();
  const auto cats = tag::categories_of(GetParam());
  ASSERT_EQ(counts.size(), cats.size());
  double total = 0;
  for (const double c : counts) total += c;
  double paper = 0;
  for (const auto* c : cats) paper += static_cast<double>(c->raw_count);
  EXPECT_NEAR(total / paper, 1.0, 1e-4);
}

TEST_P(GeneratorPerSystem, AlertStreamMatchesEvents) {
  const Simulator sim(GetParam(), tiny());
  std::size_t alert_events = 0;
  for (const SimEvent& e : sim.events()) alert_events += e.is_alert() ? 1 : 0;
  EXPECT_EQ(sim.ground_truth_alerts().size(), alert_events);
}

TEST_P(GeneratorPerSystem, ForEachLineCoversStream) {
  const Simulator sim(GetParam(), tiny());
  std::size_t n = 0;
  sim.for_each_line([&](std::string_view line) {
    EXPECT_FALSE(line.empty());
    ++n;
  });
  EXPECT_EQ(n, sim.events().size());
}

TEST_P(GeneratorPerSystem, ContextObjectsAvailable) {
  const Simulator sim(GetParam(), tiny());
  EXPECT_FALSE(sim.jobs().empty());
  EXPECT_FALSE(sim.op_context().transitions().empty());
  EXPECT_GT(sim.op_context().metrics().production_fraction, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, GeneratorPerSystem, ::testing::ValuesIn(parse::kAllSystems),
    [](const ::testing::TestParamInfo<SystemId>& info) {
      return std::string(parse::system_short_name(info.param));
    });

}  // namespace
}  // namespace wss::sim
