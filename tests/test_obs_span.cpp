// obs::Span trace trees: nesting produces "/"-joined paths, repeated
// entries reuse nodes, per-thread trees merge by name chain in
// snapshots, and reset() zeroes counts while keeping cached node
// pointers valid.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace wss::obs {
namespace {

#ifdef WSS_OBS_OFF
#define SKIP_IF_OBS_OFF() \
  GTEST_SKIP() << "instrumentation compiled out (WSS_OBS_OFF)"
#else
#define SKIP_IF_OBS_OFF() (void)0
#endif

const SpanStats* find_span(const MetricsSnapshot& s, std::string_view path) {
  for (const SpanStats& sp : s.spans) {
    if (sp.path == path) return &sp;
  }
  return nullptr;
}

TEST(ObsSpan, NestedSpansMergeIntoPaths) {
  SKIP_IF_OBS_OFF();
  registry().reset();
  {
    Span outer("span_outer");
    { Span inner("span_inner"); }
    { Span inner("span_inner"); }
  }
  const MetricsSnapshot snap = registry().snapshot();
  const SpanStats* outer = find_span(snap, "span_outer");
  const SpanStats* inner = find_span(snap, "span_outer/span_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // The parent's clock encloses both children's.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  // The inner name never appears as a root span.
  EXPECT_EQ(find_span(snap, "span_inner"), nullptr);
}

TEST(ObsSpan, RepeatedRunsAccumulateWithoutNewPaths) {
  SKIP_IF_OBS_OFF();
  registry().reset();
  for (int i = 0; i < 5; ++i) {
    Span pass("span_pass");
    { Span chunk("span_chunk"); }
  }
  const MetricsSnapshot snap = registry().snapshot();
  const SpanStats* pass = find_span(snap, "span_pass");
  const SpanStats* chunk = find_span(snap, "span_pass/span_chunk");
  ASSERT_NE(pass, nullptr);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(pass->count, 5u);
  EXPECT_EQ(chunk->count, 5u);
}

TEST(ObsSpan, ThreadsMergeByNameChain) {
  SKIP_IF_OBS_OFF();
  registry().reset();
  constexpr int kThreads = 4;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        Span worker("span_worker");
        { Span chunk("span_chunk"); }
      });
    }
  }
  const MetricsSnapshot snap = registry().snapshot();
  const SpanStats* worker = find_span(snap, "span_worker");
  const SpanStats* chunk = find_span(snap, "span_worker/span_chunk");
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(chunk, nullptr);
  // One tree per thread, merged by name: counts sum across threads.
  EXPECT_EQ(worker->count, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(chunk->count, static_cast<std::uint64_t>(kThreads));
}

TEST(ObsSpan, ResetZeroesCountsInPlace) {
  SKIP_IF_OBS_OFF();
  { Span s("span_reset_me"); }
  registry().reset();
  const MetricsSnapshot snap = registry().snapshot();
  for (const SpanStats& sp : snap.spans) {
    EXPECT_EQ(sp.count, 0u) << sp.path;
    EXPECT_EQ(sp.total_ns, 0u) << sp.path;
  }
  // Nodes survive the reset: re-entering the span works and counts
  // from zero again.
  { Span s("span_reset_me"); }
  const SpanStats* again = find_span(registry().snapshot(), "span_reset_me");
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->count, 1u);
}

TEST(ObsSpan, PrometheusFlattensSpansToCounters) {
  SKIP_IF_OBS_OFF();
  registry().reset();
  {
    Span outer("span_prom");
    { Span inner("span_leaf"); }
  }
  const std::string prom = to_prometheus(registry().snapshot());
  EXPECT_NE(prom.find("wss_span_hits_total{path=\"span_prom\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("wss_span_hits_total{path=\"span_prom/span_leaf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("wss_span_nanoseconds_total{path=\"span_prom\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace wss::obs
