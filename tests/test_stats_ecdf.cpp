#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include "stats/correlation.hpp"
#include "util/rng.hpp"

namespace wss::stats {
namespace {

TEST(Ecdf, StepFunction) {
  const Ecdf f({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(f(1.5), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(f(2.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(f(3.0), 1.0);
  EXPECT_DOUBLE_EQ(f(99.0), 1.0);
}

TEST(Ecdf, Empty) {
  const Ecdf f({});
  EXPECT_DOUBLE_EQ(f(1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 0.0);
  EXPECT_TRUE(f.steps().empty());
}

TEST(Ecdf, Quantiles) {
  const Ecdf f({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.quantile(2.0), 4.0);
}

TEST(Ecdf, StepsCollapseDuplicates) {
  const Ecdf f({1.0, 1.0, 2.0});
  const auto steps = f.steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].first, 1.0);
  EXPECT_NEAR(steps[0].second, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(steps[1].second, 1.0);
}

TEST(Ecdf, TwoSampleKs) {
  util::Rng rng(1);
  std::vector<double> a(3000);
  std::vector<double> b(3000);
  std::vector<double> c(3000);
  for (auto& x : a) x = rng.exponential(1.0);
  for (auto& x : b) x = rng.exponential(1.0);
  for (auto& x : c) x = rng.exponential(0.2);  // shifted regime
  const Ecdf fa(a);
  const Ecdf fb(b);
  const Ecdf fc(c);
  EXPECT_LT(ks_two_sample_statistic(fa, fb), 0.05);  // same distribution
  EXPECT_GT(ks_two_sample_statistic(fa, fc), 0.4);   // regime shift
  EXPECT_DOUBLE_EQ(ks_two_sample_statistic(fa, fa), 0.0);
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto ac = autocorrelation({1, 2, 3, 4, 3, 2, 1, 2, 3, 4}, 3);
  ASSERT_EQ(ac.size(), 4u);
  EXPECT_DOUBLE_EQ(ac[0], 1.0);
}

TEST(Autocorrelation, WhiteNoiseDecaysImmediately) {
  util::Rng rng(2);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal();
  const auto ac = autocorrelation(xs, 5);
  for (std::size_t lag = 1; lag <= 5; ++lag) {
    EXPECT_LT(std::abs(ac[lag]), 0.05) << lag;
  }
}

TEST(Autocorrelation, BurstySeriesDecaysSlowly) {
  // Blocks of activity: strong correlation at small lags.
  std::vector<double> xs;
  for (int block = 0; block < 50; ++block) {
    const double level = block % 2 == 0 ? 10.0 : 0.0;
    for (int i = 0; i < 20; ++i) xs.push_back(level);
  }
  const auto ac = autocorrelation(xs, 5);
  EXPECT_GT(ac[1], 0.8);
  EXPECT_GT(ac[5], 0.4);
}

TEST(Autocorrelation, DegenerateInputs) {
  const auto short_series = autocorrelation({1.0}, 3);
  EXPECT_DOUBLE_EQ(short_series[0], 1.0);
  EXPECT_DOUBLE_EQ(short_series[1], 0.0);
  const auto constant = autocorrelation({2.0, 2.0, 2.0}, 2);
  EXPECT_DOUBLE_EQ(constant[1], 0.0);  // zero variance
}

}  // namespace
}  // namespace wss::stats
