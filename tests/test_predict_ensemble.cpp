// Ensemble routing and the evaluation harness.
#include <gtest/gtest.h>

#include "predict/ensemble.hpp"
#include "predict/periodic.hpp"
#include "predict/precursor.hpp"
#include "predict/rate_burst.hpp"
#include "util/rng.hpp"

namespace wss::predict {
namespace {

filter::Alert ev(double sec, std::uint16_t cat, std::uint64_t failure = 0) {
  filter::Alert a;
  a.time = static_cast<util::TimeUs>(sec * 1e6);
  a.category = cat;
  a.failure_id = failure;
  return a;
}

/// A stream with three behaviours: category 0 triggers category 1
/// (precursor-predictable), category 5 is periodic, category 2 is
/// independent noise (unpredictable).
std::vector<filter::Alert> mixed_stream(int n, std::uint64_t seed,
                                        double t0 = 0.0) {
  util::Rng rng(seed);
  std::vector<filter::Alert> out;
  std::uint64_t failure = seed * 100000 + 1;
  double t = t0 + 500.0;
  double t_noise = t0 + 200.0;
  for (int i = 0; i < n; ++i) {
    out.push_back(ev(t, 0, failure++));
    if (rng.bernoulli(0.85)) out.push_back(ev(t + 40.0, 1, failure++));
    t += 2500.0;
    // Genuinely memoryless noise: exponential interarrivals.
    t_noise += rng.exponential(1.0 / 2500.0);
    out.push_back(ev(t_noise, 2, failure++));
  }
  for (int i = 0; i < n; ++i) {
    out.push_back(ev(t0 + 777.0 + i * 1800.0, 5, failure++));
  }
  std::sort(out.begin(), out.end(),
            [](const filter::Alert& a, const filter::Alert& b) {
              return a.time < b.time;
            });
  return out;
}

TEST(GroundTruthIncidents, FirstAlertPerFailure) {
  const std::vector<filter::Alert> alerts = {
      ev(0, 1, 10), ev(2, 1, 10), ev(5, 2, 11), ev(6, 2, 0)};
  const auto incidents = ground_truth_incidents(alerts);
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].category, 1);
  EXPECT_EQ(incidents[1].category, 2);
}

TEST(Scoring, CorrectPredictionRequiresFutureIncident) {
  std::vector<Prediction> preds(1);
  preds[0].issued_at = static_cast<util::TimeUs>(10e6);
  preds[0].category = 1;
  preds[0].window_begin = static_cast<util::TimeUs>(10e6);
  preds[0].window_end = static_cast<util::TimeUs>(100e6);

  // Incident before issue: not counted.
  {
    const auto s = score_predictions(preds, {{static_cast<util::TimeUs>(5e6), 1}});
    EXPECT_EQ(s.correct_predictions, 0u);
    EXPECT_EQ(s.incidents_predicted, 0u);
  }
  // Incident inside the window, after issue: counted both ways.
  {
    const auto s =
        score_predictions(preds, {{static_cast<util::TimeUs>(50e6), 1}});
    EXPECT_EQ(s.correct_predictions, 1u);
    EXPECT_EQ(s.incidents_predicted, 1u);
    EXPECT_DOUBLE_EQ(s.precision(), 1.0);
    EXPECT_DOUBLE_EQ(s.recall(), 1.0);
    EXPECT_DOUBLE_EQ(s.f1(), 1.0);
  }
  // Wrong category: not counted.
  {
    const auto s =
        score_predictions(preds, {{static_cast<util::TimeUs>(50e6), 2}});
    EXPECT_EQ(s.correct_predictions, 0u);
  }
}

TEST(Scoring, EmptyInputs) {
  const auto s = score_predictions({}, {});
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);
  EXPECT_FALSE(s.describe().empty());
}

TEST(Ensemble, RejectsEmptyOrNullMembers) {
  EXPECT_THROW(EnsemblePredictor({}), std::invalid_argument);
  std::vector<std::unique_ptr<Predictor>> members;
  members.push_back(nullptr);
  EXPECT_THROW(EnsemblePredictor(std::move(members)), std::invalid_argument);
}

TEST(Ensemble, RoutesCategoriesToTheRightMembers) {
  const auto train = mixed_stream(50, 1);
  auto precursor = std::make_unique<PrecursorPredictor>();
  precursor->fit(train);
  auto periodic = std::make_unique<PeriodicPredictor>();
  periodic->fit(train);
  auto rate = std::make_unique<RateBurstPredictor>();

  std::vector<std::unique_ptr<Predictor>> members;
  members.push_back(std::move(rate));       // member 0
  members.push_back(std::move(precursor));  // member 1
  members.push_back(std::move(periodic));   // member 2
  EnsemblePredictor ensemble(std::move(members));
  const std::size_t routed = ensemble.fit_routing(train);
  EXPECT_GE(routed, 2u);
  ASSERT_TRUE(ensemble.routing().count(1));
  EXPECT_EQ(ensemble.routing().at(1), 1u);  // cascades -> precursor
  ASSERT_TRUE(ensemble.routing().count(5));
  EXPECT_EQ(ensemble.routing().at(5), 2u);  // heartbeat -> periodic
  EXPECT_FALSE(ensemble.routing().count(2));  // noise -> abstain
}

TEST(Ensemble, BeatsEverySingleMemberOnMixedStream) {
  const auto train = mixed_stream(60, 2);
  const auto test = mixed_stream(40, 3, /*t0=*/1e6);
  const auto incidents = ground_truth_incidents(test);

  auto precursor = std::make_unique<PrecursorPredictor>();
  precursor->fit(train);
  auto periodic = std::make_unique<PeriodicPredictor>();
  periodic->fit(train);
  auto rate = std::make_unique<RateBurstPredictor>();

  // Score each member alone.
  const double f1_rate =
      score_predictions(run_predictor(*rate, test), incidents).f1();
  const double f1_precursor =
      score_predictions(run_predictor(*precursor, test), incidents).f1();
  const double f1_periodic =
      score_predictions(run_predictor(*periodic, test), incidents).f1();

  std::vector<std::unique_ptr<Predictor>> members;
  members.push_back(std::move(rate));
  members.push_back(std::move(precursor));
  members.push_back(std::move(periodic));
  EnsemblePredictor ensemble(std::move(members));
  ensemble.fit_routing(train);
  const double f1_ensemble =
      score_predictions(run_predictor(ensemble, test), incidents).f1();

  EXPECT_GE(f1_ensemble, f1_rate);
  EXPECT_GE(f1_ensemble, f1_precursor);
  EXPECT_GE(f1_ensemble, f1_periodic);
  EXPECT_GT(f1_ensemble, 0.1);
}

TEST(Ensemble, DrainFiltersUnroutedCategories) {
  const auto train = mixed_stream(50, 4);
  auto rate = std::make_unique<RateBurstPredictor>();
  std::vector<std::unique_ptr<Predictor>> members;
  members.push_back(std::move(rate));
  EnsemblePredictor ensemble(std::move(members));
  ensemble.fit_routing(train);
  for (const auto& a : train) ensemble.observe(a);
  for (const auto& p : ensemble.drain()) {
    EXPECT_TRUE(ensemble.routing().count(p.category));
  }
}

}  // namespace
}  // namespace wss::predict
