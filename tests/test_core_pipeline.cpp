// End-to-end parse->tag pipeline over rendered lines: the tag engine
// must recover the ground truth, and volume/severity accounting must
// reproduce the calibrated totals.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/study.hpp"
#include "tag/rulesets.hpp"

namespace wss::core {
namespace {

using parse::SystemId;

StudyOptions tiny() {
  StudyOptions o;
  o.sim.category_cap = 1000;
  o.sim.chatter_events = 8000;
  return o;
}

class PipelinePerSystem : public ::testing::TestWithParam<SystemId> {};

TEST_P(PipelinePerSystem, TaggingMatchesGroundTruth) {
  Study study(tiny());
  const auto& res = study.pipeline_result(GetParam());

  // No alert missed: alerts are corruption-exempt by default, and the
  // rules match every rendered alert body by construction.
  EXPECT_EQ(res.tagging.false_negatives, 0u);
  // No false positives: chatter bodies are disjoint from all rules
  // (corruption can only remove text from chatter, and truncation of a
  // non-matching line cannot create a match for these patterns).
  EXPECT_EQ(res.tagging.false_positives, 0u);
  EXPECT_GT(res.tagging.true_positives, 0u);
  EXPECT_GT(res.tagging.true_negatives, 0u);
}

TEST_P(PipelinePerSystem, WeightedCountsMatchPaper) {
  Study study(tiny());
  const SystemId id = GetParam();
  const auto& res = study.pipeline_result(id);
  const auto cats = tag::categories_of(id);
  ASSERT_EQ(res.weighted_alert_counts.size(), cats.size());
  for (std::size_t c = 0; c < cats.size(); ++c) {
    // 1e-6 admits the 12 unit-weight events of Spirit's shadowed
    // sn325 incident, which are additions beyond the calibrated count.
    EXPECT_NEAR(res.weighted_alert_counts[c] /
                    static_cast<double>(cats[c]->raw_count),
                1.0, 1e-6)
        << cats[c]->name;
  }
  EXPECT_NEAR(res.weighted_messages /
                  static_cast<double>(sim::system_spec(id).messages),
              1.0, 1e-6);
}

TEST_P(PipelinePerSystem, AllCategoriesObserved) {
  Study study(tiny());
  const SystemId id = GetParam();
  EXPECT_EQ(study.pipeline_result(id).categories_observed,
            sim::system_spec(id).categories);
}

TEST_P(PipelinePerSystem, BytesAccounted) {
  Study study(tiny());
  const auto& res = study.pipeline_result(GetParam());
  EXPECT_GT(res.physical_bytes, res.physical_messages * 20);
  EXPECT_GT(res.weighted_bytes, res.weighted_messages * 20);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, PipelinePerSystem, ::testing::ValuesIn(parse::kAllSystems),
    [](const ::testing::TestParamInfo<SystemId>& info) {
      return std::string(parse::system_short_name(info.param));
    });

TEST(Pipeline, CorruptionShowsUpInParseFlags) {
  Study study(tiny());  // corruption on by default
  const auto& res = study.pipeline_result(SystemId::kLiberty);
  EXPECT_GT(res.corrupted_source_lines, 0u);
  EXPECT_GT(res.corrupted_source_weight, 0.0);
  // The corrupted cluster is small relative to the log.
  EXPECT_LT(static_cast<double>(res.corrupted_source_lines) /
                static_cast<double>(res.physical_messages),
            0.02);
}

TEST(Pipeline, SourceTalliesCoverAllSources) {
  Study study(tiny());
  const auto& res = study.pipeline_result(SystemId::kLiberty);
  EXPECT_GT(res.messages_by_source.size(), 100u);
  // Admin nodes dominate (Figure 2(b)).
  double admin_best = 0.0;
  double other_best = 0.0;
  for (const auto& [name, w] : res.messages_by_source) {
    if (name.rfind("ladmin", 0) == 0) {
      admin_best = std::max(admin_best, w);
    } else {
      other_best = std::max(other_best, w);
    }
  }
  EXPECT_GT(admin_best, other_best);
}

TEST(Pipeline, TaggedAlertsSortedAndTyped) {
  Study study(tiny());
  const auto& res = study.pipeline_result(SystemId::kRedStorm);
  const auto cats = tag::categories_of(SystemId::kRedStorm);
  for (std::size_t i = 1; i < res.tagged_alerts.size(); ++i) {
    EXPECT_LE(res.tagged_alerts[i - 1].time, res.tagged_alerts[i].time);
  }
  for (const auto& a : res.tagged_alerts) {
    ASSERT_LT(a.category, cats.size());
    EXPECT_EQ(a.type, cats[a.category]->type);
  }
}

}  // namespace
}  // namespace wss::core
