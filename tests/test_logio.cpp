// Log I/O: disk round-trips (plain, compressed, per-source layout),
// year-rollover inference, and anonymization that preserves tagging.
#include <gtest/gtest.h>

#include <filesystem>

#include "logio/anonymize.hpp"
#include "logio/reader.hpp"
#include "logio/writer.hpp"
#include "tag/engine.hpp"
#include "tag/rulesets.hpp"

namespace wss::logio {
namespace {

namespace fs = std::filesystem;
using parse::SystemId;

class LogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_logio_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  sim::Simulator make_sim(SystemId id) {
    sim::SimOptions opts;
    opts.category_cap = 300;
    opts.chatter_events = 2000;
    opts.inject_corruption = false;
    return sim::Simulator(id, opts);
  }

  fs::path dir_;
};

TEST_F(LogIoTest, PlainRoundTrip) {
  const auto sim = make_sim(SystemId::kLiberty);
  const auto res = write_log(sim, dir_ / "messages");
  EXPECT_EQ(res.lines, sim.events().size());
  EXPECT_EQ(res.files, 1u);
  EXPECT_GT(res.bytes_written, res.lines * 20);

  std::size_t read_lines = 0;
  const auto stats =
      read_log(dir_ / "messages", SystemId::kLiberty, 2004,
               [&](const parse::LogRecord& rec) {
                 ++read_lines;
                 EXPECT_TRUE(rec.timestamp_valid);
               });
  EXPECT_EQ(read_lines, res.lines);
  EXPECT_EQ(stats.lines, res.lines);
  EXPECT_EQ(stats.invalid_timestamps, 0u);
}

TEST_F(LogIoTest, CompressedRoundTrip) {
  const auto sim = make_sim(SystemId::kLiberty);
  WriteOptions opts;
  opts.compressed = true;
  const auto res = write_log(sim, dir_ / "messages.wsc", opts);

  // Compressed file is smaller than the raw text.
  const auto raw = write_log(sim, dir_ / "messages");
  EXPECT_LT(res.bytes_written, raw.bytes_written / 2);

  // And reads back identically.
  EXPECT_EQ(read_log_text(dir_ / "messages.wsc"),
            read_log_text(dir_ / "messages"));
}

TEST_F(LogIoTest, PerSourceLayout) {
  const auto sim = make_sim(SystemId::kLiberty);
  WriteOptions opts;
  opts.per_source_dirs = true;
  const auto res = write_log(sim, dir_, opts);
  EXPECT_GT(res.files, 50u);  // one per active source
  // The admin node's file exists (chattiest source).
  EXPECT_TRUE(fs::exists(dir_ / "ladmin1" / "messages"));
}

TEST_F(LogIoTest, YearRolloverInference) {
  // Spirit's window starts 2005-01-01 and spans 558 days -> one
  // New Year boundary inside the log.
  const auto sim = make_sim(SystemId::kSpirit);
  write_log(sim, dir_ / "messages");
  util::TimeUs prev = 0;
  bool monotone = true;
  const auto stats = read_log(dir_ / "messages", SystemId::kSpirit, 2005,
                              [&](const parse::LogRecord& rec) {
                                if (rec.time < prev) monotone = false;
                                prev = rec.time;
                              });
  EXPECT_EQ(stats.year_rollovers, 1);
  EXPECT_TRUE(monotone) << "year inference must keep time monotone";
}

TEST_F(LogIoTest, MissingFileThrows) {
  EXPECT_THROW(read_log_text(dir_ / "nope"), std::runtime_error);
}

TEST(YearTrackerTest, BumpsOnBackwardJump) {
  YearTracker yt(2005);
  EXPECT_EQ(yt.on_month(11), 2005);
  EXPECT_EQ(yt.on_month(12), 2005);
  EXPECT_EQ(yt.on_month(1), 2006);  // Dec -> Jan
  EXPECT_EQ(yt.on_month(2), 2006);
  EXPECT_EQ(yt.rollovers(), 1);
  // Mild out-of-order lines (Mar after Apr) do not bump.
  YearTracker yt2(2005);
  yt2.on_month(4);
  EXPECT_EQ(yt2.on_month(3), 2005);
}

TEST(AnonymizerTest, StableAndSeedKeyed) {
  const Anonymizer a(1);
  const Anonymizer b(1);
  const Anonymizer c(2);
  const std::string line = "connect from 192.168.7.13 by user42";
  EXPECT_EQ(a.anonymize(line), b.anonymize(line));
  EXPECT_NE(a.anonymize(line), c.anonymize(line));
  EXPECT_EQ(a.anonymize(line).find("192.168.7.13"), std::string::npos);
  EXPECT_EQ(a.anonymize(line).find("user42"), std::string::npos);
}

TEST(AnonymizerTest, ReplacesIpAddresses) {
  const Anonymizer a(3);
  const std::string out =
      a.anonymize("open_demux: connect 172.16.0.9:1234 failed");
  EXPECT_EQ(out.find("172.16.0.9"), std::string::npos);
  EXPECT_NE(out.find("10."), std::string::npos);
  EXPECT_NE(out.find(":1234"), std::string::npos);  // port kept
}

TEST(AnonymizerTest, DoesNotMangleNonIpNumbers) {
  const Anonymizer a(4);
  EXPECT_EQ(a.anonymize("sense key = 0x3 at 12345"),
            "sense key = 0x3 at 12345");
  // A version string with four components is admittedly IP-shaped;
  // anything else numeric is untouched.
  EXPECT_EQ(a.anonymize("job 99 exited 1"), "job 99 exited 1");
}

TEST(AnonymizerTest, ReplacesOwnersAndAtUsers) {
  const Anonymizer a(5);
  const std::string out =
      a.anonymize("Job Queued at request of root@ln12, owner = jdoe7");
  EXPECT_EQ(out.find("root@"), std::string::npos);
  EXPECT_EQ(out.find("jdoe7"), std::string::npos);
  EXPECT_NE(out.find("@ln12"), std::string::npos);
}

TEST(AnonymizerTest, PathsKeepBasename) {
  const Anonymizer a(6);
  const std::string out = a.anonymize(
      "assertion failed. /usr/src/gm/libgm/lx_mapper.c:2112 (m->root)");
  EXPECT_EQ(out.find("/usr/src/gm"), std::string::npos);
  EXPECT_NE(out.find("/lx_mapper.c:2112"), std::string::npos);
}

TEST(AnonymizerTest, TaggingSurvivesAnonymization) {
  // The whole point: anonymized logs must still be analyzable.
  sim::SimOptions opts;
  opts.category_cap = 300;
  opts.chatter_events = 1500;
  opts.inject_corruption = false;
  const sim::Simulator simulator(SystemId::kSpirit, opts);
  const tag::TagEngine engine(tag::build_ruleset(SystemId::kSpirit));
  const Anonymizer anon(7);

  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    const auto& e = simulator.events()[i];
    const std::string line = simulator.renderer().render_clean(e, i);
    const auto before = engine.tag_line(line);
    const auto after = engine.tag_line(anon.anonymize(line));
    ASSERT_EQ(before.has_value(), after.has_value()) << line;
    if (before) {
      EXPECT_EQ(before->category, after->category) << line;
    }
  }
}

}  // namespace
}  // namespace wss::logio
