#include "parse/syslog.hpp"

#include <gtest/gtest.h>

namespace wss::parse {
namespace {

constexpr SystemId kSys = SystemId::kSpirit;

TEST(SyslogParse, FullLine) {
  const auto r = parse_syslog_line(
      kSys, "Feb 28 01:02:03 sn373 kernel: cciss: cmd has CHECK CONDITION",
      2006);
  EXPECT_TRUE(r.timestamp_valid);
  EXPECT_FALSE(r.source_corrupted);
  EXPECT_EQ(r.source, "sn373");
  EXPECT_EQ(r.program, "kernel");
  EXPECT_EQ(r.body, "cciss: cmd has CHECK CONDITION");
  EXPECT_EQ(util::to_civil(r.time).month, 2);
}

TEST(SyslogParse, ProgramWithPid) {
  const auto r = parse_syslog_line(
      kSys, "Jun  3 10:00:00 ln42 pbs_mom[1234]: task_check, cannot tm_reply",
      2005);
  EXPECT_EQ(r.program, "pbs_mom");
  EXPECT_EQ(r.body, "task_check, cannot tm_reply");
}

TEST(SyslogParse, NoProgramTag) {
  const auto r = parse_syslog_line(
      kSys, "Jun  3 10:00:00 tbird-admin1 Server Administrator: "
            "Instrumentation Service EventID: 1404",
      2005);
  EXPECT_TRUE(r.program.empty());
  EXPECT_EQ(r.body.rfind("Server Administrator:", 0), 0u);
}

TEST(SyslogParse, RawPreserved) {
  const std::string line = "Jun  3 10:00:00 h kernel: body";
  EXPECT_EQ(parse_syslog_line(kSys, line, 2005).raw, line);
}

TEST(SyslogParse, CorruptTimestampStillAttributes) {
  const auto r = parse_syslog_line(
      kSys, "JXn  3 10:00:00 sn12 kernel: hello", 2005);
  EXPECT_FALSE(r.timestamp_valid);
  EXPECT_EQ(r.source, "sn12");
}

TEST(SyslogParse, CorruptHostFlagged) {
  const auto r = parse_syslog_line(
      kSys, "Jun  3 10:00:00 #@~^ kernel: hello", 2005);
  EXPECT_TRUE(r.source_corrupted);
  EXPECT_TRUE(r.source.empty());
}

TEST(SyslogParse, TruncatedLinesNeverThrow) {
  const char* cases[] = {"", "J", "Jun  3", "Jun  3 10:00:00",
                         "Jun  3 10:00:00 ", "Jun  3 10:00:00 host",
                         "Jun  3 10:00:00 host kern"};
  for (const char* line : cases) {
    EXPECT_NO_THROW({ (void)parse_syslog_line(kSys, line, 2005); }) << line;
  }
}

TEST(SyslogParse, SplicedGarbageNeverThrows) {
  const auto r = parse_syslog_line(
      kSys,
      "Jun  3 10:00:00 tb1 kernel: VIPKL(1): [create_mr] MM_bld_hh_mr "
      "failed (-253:VAPI_EAGSys/mosal_iobuf.c [126]: dump iobuf",
      2005);
  EXPECT_EQ(r.program, "kernel");
  EXPECT_FALSE(r.source_corrupted);
}

TEST(SyslogParse, HostnamePlausibility) {
  EXPECT_TRUE(plausible_hostname("sn373"));
  EXPECT_TRUE(plausible_hostname("tbird-admin1"));
  EXPECT_TRUE(plausible_hostname("R02-M1-N0"));
  EXPECT_FALSE(plausible_hostname(""));
  EXPECT_FALSE(plausible_hostname("-leading"));
  EXPECT_FALSE(plausible_hostname("has space"));
  EXPECT_FALSE(plausible_hostname("ctrl\x01char"));
  EXPECT_FALSE(plausible_hostname(std::string(80, 'a')));
}

TEST(SyslogParse, BinaryGarbageLine) {
  std::string junk = "\x01\x02\x03\xff\xfe random \x7f bytes";
  EXPECT_NO_THROW({
    const auto r = parse_syslog_line(kSys, junk, 2005);
    EXPECT_FALSE(r.timestamp_valid);
  });
}

}  // namespace
}  // namespace wss::parse
