#include "stats/changepoint.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace wss::stats {
namespace {

std::vector<double> noisy_segments(const std::vector<std::pair<int, double>>&
                                       segments,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out;
  for (const auto& [len, mean] : segments) {
    for (int i = 0; i < len; ++i) out.push_back(mean + rng.normal(0.0, 1.0));
  }
  return out;
}

TEST(ChangePoint, DetectsSingleShift) {
  const auto series = noisy_segments({{100, 10.0}, {100, 20.0}}, 1);
  const auto cps = detect_changepoints(series);
  ASSERT_GE(cps.size(), 1u);
  EXPECT_NEAR(static_cast<double>(cps[0].index), 100.0, 5.0);
  EXPECT_LT(cps[0].mean_before, cps[0].mean_after);
}

TEST(ChangePoint, DetectsMultipleShifts) {
  // The Liberty profile: up at the OS upgrade, up again, then down.
  const auto series = noisy_segments(
      {{80, 10.0}, {80, 18.0}, {60, 26.0}, {60, 16.0}}, 2);
  const auto cps = detect_changepoints(series);
  ASSERT_GE(cps.size(), 3u);
  EXPECT_NEAR(static_cast<double>(cps[0].index), 80.0, 8.0);
  EXPECT_NEAR(static_cast<double>(cps[1].index), 160.0, 8.0);
  EXPECT_NEAR(static_cast<double>(cps[2].index), 220.0, 8.0);
  // Sorted by index.
  for (std::size_t i = 1; i < cps.size(); ++i) {
    EXPECT_LT(cps[i - 1].index, cps[i].index);
  }
}

TEST(ChangePoint, QuietOnStationarySeries) {
  const auto series = noisy_segments({{300, 10.0}}, 3);
  EXPECT_TRUE(detect_changepoints(series).empty());
}

TEST(ChangePoint, RespectsMinSegment) {
  ChangePointOptions opts;
  opts.min_segment = 50;
  // Shift too close to the edge to honour min_segment.
  const auto series = noisy_segments({{20, 0.0}, {200, 8.0}}, 4);
  for (const auto& cp : detect_changepoints(series, opts)) {
    EXPECT_GE(cp.index, opts.min_segment);
    EXPECT_LE(cp.index, series.size() - opts.min_segment);
  }
}

TEST(ChangePoint, MaxChangesCap) {
  ChangePointOptions opts;
  opts.max_changes = 1;
  const auto series =
      noisy_segments({{60, 0.0}, {60, 10.0}, {60, 0.0}, {60, 10.0}}, 5);
  EXPECT_LE(detect_changepoints(series, opts).size(), 1u);
}

TEST(ChangePoint, TooShortSeries) {
  EXPECT_TRUE(detect_changepoints({1.0, 2.0, 3.0}).empty());
  EXPECT_TRUE(detect_changepoints({}).empty());
}

}  // namespace
}  // namespace wss::stats
