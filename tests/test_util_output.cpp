// Tests for the table, chart, and CSV rendering helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "util/chart.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace wss::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"Name", "Count"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name   | Count"), std::string::npos);
  EXPECT_NE(out.find("longer | 12345"), std::string::npos);
  // Right-aligned numeric column.
  EXPECT_NE(out.find("a      |     1"), std::string::npos);
}

TEST(Table, TitleAndSeparator) {
  Table t({"A"});
  t.set_title("My Table");
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string out = t.render();
  EXPECT_EQ(out.rfind("My Table", 0), 0u);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsBadArity) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
  EXPECT_THROW(t.set_align(5, Align::kLeft), std::out_of_range);
}

TEST(Table, AlignOverride) {
  Table t({"A", "B"});
  t.set_align(1, Align::kLeft);
  t.add_row({"x", "y"});
  EXPECT_NE(t.render().find("x | y"), std::string::npos);
}

TEST(BarChart, ScalesToMax) {
  const std::string out = bar_chart({"a", "b"}, {1.0, 2.0}, 10);
  // The larger bar has 10 marks, the smaller 5.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_TRUE(bar_chart({}, {}, 10).empty());
}

TEST(ColumnChart, HasAxisAndHeight) {
  const std::string out = column_chart({1.0, 3.0, 2.0}, 4);
  // 4 data rows plus the axis line.
  int lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_GE(lines, 5);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_TRUE(column_chart({}, 4).empty());
}

TEST(Scatter, PlotsPoints) {
  const std::string out =
      scatter({0.0, 1.0, 2.0}, {0.0, 1.0, 4.0}, 20, 8, '*');
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("x: ["), std::string::npos);
  EXPECT_TRUE(scatter({}, {}, 20, 8).empty());
  EXPECT_TRUE(scatter({1.0}, {1.0, 2.0}, 20, 8).empty());  // mismatched
}

TEST(StripPlot, OneRowPerLabel) {
  const std::string out = strip_plot({0.0, 5.0, 9.0}, {0, 1, 0},
                                     {"GM_PAR", "GM_LANAI"}, 30);
  EXPECT_NE(out.find("GM_PAR"), std::string::npos);
  EXPECT_NE(out.find("GM_LANAI"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b,c"});
  w.row_numeric({1.5, 2.0});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n1.5,2\n");
}

}  // namespace
}  // namespace wss::util
