#include "parse/redstorm.hpp"

#include <gtest/gtest.h>

#include "parse/dispatch.hpp"

namespace wss::parse {
namespace {

TEST(RedStormParse, EventRouterLine) {
  const auto r = parse_redstorm_line(
      "2006-03-19 10:00:00 ec_heartbeat_stop src:::c1-0c0s3n0 "
      "svc:::c1-0c0s3n0 warn node heartbeat_fault 7",
      2006);
  EXPECT_TRUE(r.timestamp_valid);
  EXPECT_EQ(r.program, "ec_heartbeat_stop");
  EXPECT_EQ(r.source, "c1-0c0s3n0");
  EXPECT_EQ(r.severity, Severity::kNone);  // "no severity analog"
  EXPECT_NE(r.body.find("heartbeat_fault"), std::string::npos);
}

TEST(RedStormParse, SyslogWithPriority) {
  const auto r = parse_redstorm_line(
      "Mar 19 10:00:00 login1 kern.crit kernel: LustreError: timeout", 2006);
  EXPECT_TRUE(r.timestamp_valid);
  EXPECT_EQ(r.source, "login1");
  EXPECT_EQ(r.severity, Severity::kCrit);
  EXPECT_EQ(r.program, "kernel");
  EXPECT_EQ(r.body, "LustreError: timeout");
}

TEST(RedStormParse, DdnLineNoProgram) {
  const auto r = parse_redstorm_line(
      "Mar 19 10:00:01 ddn1 local0.alert DMT_DINT Failing Disk 2A", 2006);
  EXPECT_EQ(r.source, "ddn1");
  EXPECT_EQ(r.severity, Severity::kAlert);
  EXPECT_EQ(r.body, "DMT_DINT Failing Disk 2A");
  EXPECT_TRUE(r.program.empty());
}

TEST(RedStormParse, PlainSyslogWithoutPriority) {
  const auto r = parse_redstorm_line(
      "Mar 19 10:00:00 smw kernel: ordinary message", 2006);
  EXPECT_EQ(r.severity, Severity::kNone);
  EXPECT_EQ(r.program, "kernel");
  EXPECT_EQ(r.body, "ordinary message");
}

TEST(RedStormParse, EventRouterCorruptSource) {
  const auto r = parse_redstorm_line(
      "2006-03-19 10:00:00 ec_console_log src:::#@! svc:::x PANIC", 2006);
  EXPECT_TRUE(r.source_corrupted);
}

TEST(RedStormParse, NodePlausibility) {
  EXPECT_TRUE(plausible_redstorm_node("c1-0c0s3n0"));
  EXPECT_TRUE(plausible_redstorm_node("login1"));
  EXPECT_TRUE(plausible_redstorm_node("smw"));
  EXPECT_FALSE(plausible_redstorm_node("UPPER"));
  EXPECT_FALSE(plausible_redstorm_node(""));
  EXPECT_FALSE(plausible_redstorm_node("1leading-digit-ok?"));
}

TEST(RedStormParse, NeverThrows) {
  EXPECT_NO_THROW({ (void)parse_redstorm_line("", 2006); });
  EXPECT_NO_THROW({ (void)parse_redstorm_line("2006-03-19 10:00:00", 2006); });
  EXPECT_NO_THROW({ (void)parse_redstorm_line("\xff\xfe binary", 2006); });
}

TEST(Dispatch, RoutesBySystem) {
  const auto bgl = parse_line(
      SystemId::kBlueGeneL,
      "1 2005.06.03 R00-M0-N0 2005-06-03-00.00.00.000000 R00-M0-N0 RAS "
      "KERNEL FATAL data TLB error interrupt",
      2005);
  EXPECT_EQ(bgl.system, SystemId::kBlueGeneL);
  EXPECT_EQ(bgl.severity, Severity::kFatal);

  const auto rs = parse_line(SystemId::kRedStorm,
                             "Mar 19 10:00:00 login1 kern.err kernel: x",
                             2006);
  EXPECT_EQ(rs.severity, Severity::kError);

  const auto lib = parse_line(SystemId::kLiberty,
                              "Jun  3 10:00:00 ln1 kernel: x", 2005);
  EXPECT_EQ(lib.system, SystemId::kLiberty);
  EXPECT_EQ(lib.severity, Severity::kNone);
}

TEST(SeverityNames, BothVocabularies) {
  EXPECT_EQ(severity_bgl_name(Severity::kError), "ERROR");
  EXPECT_EQ(severity_syslog_name(Severity::kError), "ERR");
  EXPECT_EQ(severity_bgl_name(Severity::kFatal), "FATAL");
  EXPECT_EQ(severity_syslog_name(Severity::kEmerg), "EMERG");
  EXPECT_EQ(severity_bgl_name(Severity::kNone), "-");
  EXPECT_EQ(parse_severity("ERR"), Severity::kError);
  EXPECT_EQ(parse_severity("error"), Severity::kError);
  EXPECT_EQ(parse_severity("FATAL"), Severity::kFatal);
  EXPECT_EQ(parse_severity("nonsense"), std::nullopt);
}

}  // namespace
}  // namespace wss::parse
