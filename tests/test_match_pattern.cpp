// Pattern parsing internals: CharClass, required_literal,
// escape_literal.
#include "match/pattern.hpp"

#include <gtest/gtest.h>

#include "match/nfa.hpp"

namespace wss::match {
namespace {

TEST(CharClass, AddAndContains) {
  CharClass c;
  EXPECT_FALSE(c.contains('a'));
  c.add('a');
  EXPECT_TRUE(c.contains('a'));
  c.add_range('0', '9');
  EXPECT_TRUE(c.contains('5'));
  EXPECT_FALSE(c.contains('b'));
}

TEST(CharClass, Negate) {
  CharClass c;
  c.add('x');
  c.negate();
  EXPECT_FALSE(c.contains('x'));
  EXPECT_TRUE(c.contains('y'));
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(255));
}

TEST(CharClass, Singleton) {
  CharClass c;
  c.add('q');
  EXPECT_EQ(c.singleton(), 'q');
  c.add('r');
  EXPECT_EQ(c.singleton(), -1);
  CharClass empty;
  EXPECT_EQ(empty.singleton(), -1);
}

TEST(Pattern, ParseProducesAst) {
  const auto ast = parse("a(b|c)*d");
  ASSERT_NE(ast, nullptr);
  EXPECT_EQ(ast->kind, NodeKind::kConcat);
  ASSERT_EQ(ast->children.size(), 3u);
  EXPECT_EQ(ast->children[0]->kind, NodeKind::kClass);
  EXPECT_EQ(ast->children[1]->kind, NodeKind::kRepeat);
  EXPECT_EQ(ast->children[1]->children[0]->kind, NodeKind::kAlt);
}

TEST(Pattern, RequiredLiteralBasics) {
  EXPECT_EQ(required_literal("data TLB error interrupt"),
            "data TLB error interrupt");
  EXPECT_EQ(required_literal("task_check, cannot tm_reply"),
            "task_check, cannot tm_reply");
  EXPECT_EQ(required_literal("\\(111\\) in open_demux"),
            "(111) in open_demux");
}

TEST(Pattern, RequiredLiteralWithMetachars) {
  // The run is interrupted by the class but the longest side wins.
  EXPECT_EQ(required_literal("ab[0-9]longer_part"), "longer_part");
  // A plus on a single char contributes its first copy.
  EXPECT_EQ(required_literal("erro+r"), "erro");
  // {2} of a char is not a contiguous guarantee beyond one copy
  // (implementation is conservative); result must be a substring of
  // every matching text.
  const std::string lit = required_literal("xy{2}z");
  EXPECT_TRUE(lit == "xy" || lit == "x");
}

TEST(Pattern, RequiredLiteralAnchorsTransparent) {
  EXPECT_EQ(required_literal("^kernel panic$"), "kernel panic");
}

TEST(Pattern, RequiredLiteralCaseInsensitiveEmpty) {
  ParseOptions opts;
  opts.case_insensitive = true;
  EXPECT_EQ(required_literal("Fatal", opts), "");
}

TEST(Pattern, EscapeLiteralRoundTrip) {
  const std::string bodies[] = {
      "total of 1 ddr error(s) detected and corrected",
      "torus receiver z+ input pipe error",
      "a.b*c?d{2}e|f[g]h(i)j^k$l\\m",
      "plain text",
  };
  for (const auto& body : bodies) {
    const std::string escaped = escape_literal(body);
    Regex re(escaped);
    EXPECT_TRUE(re.search(body)) << body;
    EXPECT_TRUE(re.full_match(body)) << body;
  }
}

TEST(Pattern, EscapeLiteralDefeatsMetaSemantics) {
  // Unescaped, "z+" would match "z"; escaped it must not.
  Regex re(escape_literal("z+ input"));
  EXPECT_FALSE(re.search("z input"));
  EXPECT_TRUE(re.search("torus z+ input pipe"));
}

TEST(Pattern, RepeatBoundExpansion) {
  // Program size stays sane for nested bounded repeats.
  Regex re("(ab){1,3}c");
  EXPECT_TRUE(re.search("ababc"));
  EXPECT_FALSE(re.full_match("c"));
  EXPECT_LT(re.program_size(), 64u);
}

}  // namespace
}  // namespace wss::match
