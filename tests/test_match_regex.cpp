// Regex engine tests: semantics, edge cases, and a property test
// against a simple reference backtracking matcher.
#include "match/nfa.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace wss::match {
namespace {

bool hit(const char* pattern, const char* text) {
  return Regex(pattern).search(text);
}

TEST(Regex, LiteralSearch) {
  EXPECT_TRUE(hit("panic", "rts panic! - stopping execution"));
  EXPECT_FALSE(hit("panic", "all is well"));
  EXPECT_TRUE(hit("", "anything"));  // empty pattern matches everywhere
  EXPECT_TRUE(hit("", ""));
}

TEST(Regex, Dot) {
  EXPECT_TRUE(hit("a.c", "abc"));
  EXPECT_TRUE(hit("a.c", "a-c"));
  EXPECT_FALSE(hit("a.c", "ac"));
  EXPECT_FALSE(hit("a.c", "a\nc"));  // dot excludes newline
}

TEST(Regex, Star) {
  EXPECT_TRUE(hit("ab*c", "ac"));
  EXPECT_TRUE(hit("ab*c", "abbbbc"));
  EXPECT_FALSE(hit("ab*c", "a c"));
}

TEST(Regex, Plus) {
  EXPECT_FALSE(hit("ab+c", "ac"));
  EXPECT_TRUE(hit("ab+c", "abc"));
  EXPECT_TRUE(hit("ab+c", "abbc"));
}

TEST(Regex, Question) {
  EXPECT_TRUE(hit("colou?r", "color"));
  EXPECT_TRUE(hit("colou?r", "colour"));
  EXPECT_FALSE(hit("colou?r", "colouur"));
}

TEST(Regex, BoundedRepeat) {
  EXPECT_TRUE(hit("a{3}", "xaaax"));
  EXPECT_FALSE(hit("^a{3}$", "aa"));
  EXPECT_TRUE(hit("^a{2,4}$", "aaa"));
  EXPECT_FALSE(hit("^a{2,4}$", "aaaaa"));
  EXPECT_TRUE(hit("^a{2,}$", "aaaaaa"));
  EXPECT_FALSE(hit("^a{2,}$", "a"));
}

TEST(Regex, BraceAsLiteralWhenNotABound) {
  // '{' not followed by a valid bound is a literal (log lines contain
  // plenty of braces).
  EXPECT_TRUE(hit("cmd {0", "cciss: cmd {0x12}"));
  EXPECT_TRUE(hit("a{,3}", "xa{,3}y"));
}

TEST(Regex, Alternation) {
  EXPECT_TRUE(hit("cat|dog", "hotdog stand"));
  EXPECT_TRUE(hit("cat|dog", "catalog"));
  EXPECT_FALSE(hit("cat|dog", "bird"));
  EXPECT_TRUE(hit("^(a|bc)+$", "abcbca"));
}

TEST(Regex, Groups) {
  EXPECT_TRUE(hit("(ab)+", "xababy"));
  EXPECT_FALSE(hit("^(ab)+$", "aba"));
}

TEST(Regex, CharClasses) {
  EXPECT_TRUE(hit("[abc]+", "cab"));
  EXPECT_FALSE(hit("^[abc]+$", "abd"));
  EXPECT_TRUE(hit("[a-z0-9]+", "xyz123"));
  EXPECT_TRUE(hit("[^0-9]", "a1"));
  EXPECT_FALSE(hit("^[^0-9]+$", "123"));
  EXPECT_TRUE(hit("[-x]", "a-b"));   // literal '-' at class edge
  EXPECT_TRUE(hit("[]x]", "]"));     // ']' first in class is literal
}

TEST(Regex, Escapes) {
  EXPECT_TRUE(hit("\\d+", "abc123"));
  EXPECT_FALSE(hit("\\d", "abc"));
  EXPECT_TRUE(hit("\\w+", "under_score9"));
  EXPECT_TRUE(hit("\\s", "a b"));
  EXPECT_FALSE(hit("\\S", "  \t"));
  EXPECT_TRUE(hit("\\D", "1a2"));
  EXPECT_TRUE(hit("a\\.b", "a.b"));
  EXPECT_FALSE(hit("a\\.b", "axb"));
  EXPECT_TRUE(hit("\\(111\\)", "refused (111) in open_demux"));
  EXPECT_TRUE(hit("\\\\", "back\\slash"));
  EXPECT_TRUE(hit("\\t", "a\tb"));
}

TEST(Regex, Anchors) {
  EXPECT_TRUE(hit("^kernel", "kernel: oops"));
  EXPECT_FALSE(hit("^kernel", "the kernel"));
  EXPECT_TRUE(hit("done$", "all done"));
  EXPECT_FALSE(hit("done$", "done yet?"));
  EXPECT_TRUE(hit("^$", ""));
  EXPECT_FALSE(hit("^$", "x"));
}

TEST(Regex, WordBoundaries) {
  EXPECT_TRUE(hit("\\bpanic\\b", "rts panic! - stopping"));
  EXPECT_FALSE(hit("\\bpanic\\b", "kernelpanic happened"));
  EXPECT_FALSE(hit("\\bpanic\\b", "panics everywhere"));
  EXPECT_TRUE(hit("\\bpanic", "panic at start"));
  EXPECT_TRUE(hit("panic\\b", "end with panic"));
  // \B: not at a boundary.
  EXPECT_TRUE(hit("\\Bode\\b", "node down"));
  EXPECT_FALSE(hit("\\Bnode", "node down"));
  EXPECT_THROW(Regex("\\b*"), PatternError);
}

TEST(Regex, FullMatch) {
  Regex re("a+b");
  EXPECT_TRUE(re.full_match("aaab"));
  EXPECT_FALSE(re.full_match("aaabc"));
  EXPECT_FALSE(re.full_match("xaab"));
  EXPECT_TRUE(Regex("").full_match(""));
  EXPECT_FALSE(Regex("").full_match("x"));
}

TEST(Regex, CaseInsensitive) {
  ParseOptions opts;
  opts.case_insensitive = true;
  Regex re("Fatal Error", opts);
  EXPECT_TRUE(re.search("FATAL ERROR detected"));
  EXPECT_TRUE(re.search("fatal error"));
  Regex cls("[a-c]+", opts);
  EXPECT_TRUE(cls.search("ABC"));
}

TEST(Regex, CompileErrors) {
  EXPECT_THROW(Regex("a("), PatternError);
  EXPECT_THROW(Regex("a)"), PatternError);
  EXPECT_THROW(Regex("["), PatternError);
  EXPECT_THROW(Regex("*a"), PatternError);
  EXPECT_THROW(Regex("a\\"), PatternError);
  EXPECT_THROW(Regex("[z-a]"), PatternError);
  EXPECT_THROW(Regex("a{3,2}"), PatternError);
  EXPECT_THROW(Regex("a{999}"), PatternError);
  EXPECT_THROW(Regex("^*"), PatternError);
}

TEST(Regex, PrefilterLiteral) {
  EXPECT_EQ(Regex("kernel panic").prefilter_literal(), "kernel panic");
  EXPECT_EQ(Regex("EXT3-fs error").prefilter_literal(), "EXT3-fs error");
  // The longest mandatory literal wins.
  EXPECT_EQ(Regex("a+ very long literal [0-9]").prefilter_literal(),
            " very long literal ");
  // Alternation yields no guaranteed literal.
  EXPECT_EQ(Regex("cat|dog").prefilter_literal(), "");
  // Optional parts contribute nothing.
  EXPECT_EQ(Regex("(abc)?xy").prefilter_literal(), "xy");
}

TEST(Regex, PathologicalPatternIsFast) {
  // Classic backtracking killer: (a+)+b on "aaaa...a". A Pike VM runs
  // this in linear time; just assert it terminates correctly.
  Regex re("(a+)+b");
  const std::string text(2000, 'a');
  EXPECT_FALSE(re.search(text));
  EXPECT_TRUE(re.search(text + "b"));
}

TEST(Regex, PaperRules) {
  // The three example rules from Section 3.2.
  EXPECT_TRUE(hit("kernel: EXT3-fs error",
                  "Feb 28 01:02:03 sn373 kernel: EXT3-fs error (device ...)"));
  EXPECT_TRUE(hit("PANIC_SP WE ARE TOASTED!",
                  "ec_console_log src:::c0-0c1s2n3 PANIC_SP WE ARE TOASTED!"));
  EXPECT_TRUE(hit("kernel panic", "RAS KERNEL FATAL kernel panic"));
}

// ------------------------------------------------------------------
// Property test: agreement with a reference backtracking matcher on
// random small patterns and texts over {a, b}.
// ------------------------------------------------------------------

/// Naive exponential-time matcher for the tested subset; `match_here`
/// returns true if pattern[pi..] matches some prefix of text[ti..].
class NaiveMatcher {
 public:
  explicit NaiveMatcher(std::string pattern) : p_(std::move(pattern)) {}

  bool search(const std::string& text) const {
    for (std::size_t i = 0; i <= text.size(); ++i) {
      if (match_here(0, text, i)) return true;
    }
    return false;
  }

 private:
  // Supports literals, '.', '*', '+', '?' on single atoms; enough to
  // cross-check the hot paths.
  bool match_here(std::size_t pi, const std::string& t, std::size_t ti) const {
    if (pi == p_.size()) return true;
    const bool has_quant =
        pi + 1 < p_.size() &&
        (p_[pi + 1] == '*' || p_[pi + 1] == '+' || p_[pi + 1] == '?');
    const auto atom_matches = [&](std::size_t at) {
      return at < t.size() && (p_[pi] == '.' || p_[pi] == t[at]);
    };
    if (!has_quant) {
      return atom_matches(ti) && match_here(pi + 1, t, ti + 1);
    }
    const char q = p_[pi + 1];
    if (q == '?') {
      if (atom_matches(ti) && match_here(pi + 2, t, ti + 1)) return true;
      return match_here(pi + 2, t, ti);
    }
    // '*' or '+': try every count.
    std::size_t k = 0;
    if (q == '+') {
      if (!atom_matches(ti)) return false;
      k = 1;
    }
    for (;; ++k) {
      if (match_here(pi + 2, t, ti + k)) return true;
      if (!atom_matches(ti + k)) return false;
    }
  }

  std::string p_;
};

TEST(RegexProperty, AgreesWithNaiveMatcher) {
  util::Rng rng(99);
  const char atoms[] = {'a', 'b', '.'};
  const char quants[] = {'\0', '*', '+', '?'};
  for (int iter = 0; iter < 3000; ++iter) {
    std::string pattern;
    const int n_atoms = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int i = 0; i < n_atoms; ++i) {
      pattern.push_back(atoms[rng.uniform_u64(3)]);
      const char q = quants[rng.uniform_u64(4)];
      if (q != '\0') pattern.push_back(q);
    }
    std::string text;
    const int n_chars = static_cast<int>(rng.uniform_u64(7));
    for (int i = 0; i < n_chars; ++i) {
      text.push_back(rng.bernoulli(0.5) ? 'a' : 'b');
    }
    const bool expected = NaiveMatcher(pattern).search(text);
    const bool actual = Regex(pattern).search(text);
    EXPECT_EQ(actual, expected)
        << "pattern=" << pattern << " text=" << text;
  }
}

}  // namespace
}  // namespace wss::match
