// ShutdownSignal: self-pipe wake-up, stop/hup flags, restore-on-
// uninstall. All signals are raised at this process with the handler
// installed, which is safe: install() saves the previous dispositions
// and uninstall() restores them, so gtest's environment is untouched.
#include <gtest/gtest.h>

#include <csignal>

#include <sys/select.h>
#include <sys/time.h>

#include "net/signal.hpp"

namespace wss::net {
namespace {

bool fd_readable(int fd, int timeout_ms) {
  fd_set rfds;
  FD_ZERO(&rfds);
  FD_SET(fd, &rfds);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::select(fd + 1, &rfds, nullptr, nullptr, &tv) == 1;
}

class NetSignal : public ::testing::Test {
 protected:
  void SetUp() override { ShutdownSignal::install(); }
  void TearDown() override {
    ShutdownSignal::reset();
    ShutdownSignal::uninstall();
  }
};

TEST_F(NetSignal, StartsClear) {
  EXPECT_FALSE(ShutdownSignal::stop_requested());
  EXPECT_FALSE(ShutdownSignal::take_hup());
  EXPECT_FALSE(fd_readable(ShutdownSignal::fd(), 0));
}

TEST_F(NetSignal, SigtermSetsStopAndWakesPipe) {
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_TRUE(ShutdownSignal::stop_requested());
  EXPECT_FALSE(ShutdownSignal::take_hup());
  EXPECT_TRUE(fd_readable(ShutdownSignal::fd(), 1000));
  ShutdownSignal::drain_fd();
  EXPECT_FALSE(fd_readable(ShutdownSignal::fd(), 0));
  // The flag is level-triggered; draining the pipe does not clear it.
  EXPECT_TRUE(ShutdownSignal::stop_requested());
}

TEST_F(NetSignal, SigintSetsStop) {
  ASSERT_EQ(::raise(SIGINT), 0);
  EXPECT_TRUE(ShutdownSignal::stop_requested());
}

TEST_F(NetSignal, SighupIsTakeOnce) {
  ASSERT_EQ(::raise(SIGHUP), 0);
  EXPECT_FALSE(ShutdownSignal::stop_requested());
  EXPECT_TRUE(ShutdownSignal::take_hup());
  EXPECT_FALSE(ShutdownSignal::take_hup());  // consumed
  ShutdownSignal::drain_fd();
}

TEST_F(NetSignal, ResetClearsFlags) {
  ASSERT_EQ(::raise(SIGTERM), 0);
  ASSERT_EQ(::raise(SIGHUP), 0);
  ShutdownSignal::reset();
  EXPECT_FALSE(ShutdownSignal::stop_requested());
  EXPECT_FALSE(ShutdownSignal::take_hup());
}

TEST_F(NetSignal, ReinstallClearsStaleState) {
  ASSERT_EQ(::raise(SIGTERM), 0);
  ShutdownSignal::install();  // idempotent + clears stale flags
  EXPECT_FALSE(ShutdownSignal::stop_requested());
}

TEST(NetSignalLifecycle, UninstallRestoresPreviousDisposition) {
  // With our handler gone, SIGHUP must fall back to whatever was saved
  // at install time. Set an ignoring disposition first so raising after
  // uninstall is harmless and observable.
  struct sigaction ign {};
  ign.sa_handler = SIG_IGN;
  ASSERT_EQ(::sigaction(SIGHUP, &ign, nullptr), 0);

  ShutdownSignal::install();
  ShutdownSignal::uninstall();

  struct sigaction cur {};
  ASSERT_EQ(::sigaction(SIGHUP, nullptr, &cur), 0);
  EXPECT_EQ(cur.sa_handler, SIG_IGN);
  ASSERT_EQ(::raise(SIGHUP), 0);  // ignored, does not set our flag
  EXPECT_FALSE(ShutdownSignal::take_hup());
}

}  // namespace
}  // namespace wss::net
