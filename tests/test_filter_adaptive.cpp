// Per-category adaptive thresholds and correlation-aware filtering
// (the paper's future-work recommendations, Section 4 / Section 5).
#include <gtest/gtest.h>

#include "filter/adaptive.hpp"
#include "filter/correlation_aware.hpp"
#include "util/rng.hpp"

namespace wss::filter {
namespace {

using util::kUsPerSec;
constexpr util::TimeUs T = 5 * kUsPerSec;

Alert at(double sec, std::uint32_t source, std::uint16_t cat = 0) {
  Alert a;
  a.time = static_cast<util::TimeUs>(sec * 1e6);
  a.source = source;
  a.category = cat;
  return a;
}

TEST(Adaptive, UsesPerCategoryThreshold) {
  // Category 0: T=2s. Category 1: default 5s.
  AdaptiveFilter f({{0, 2 * kUsPerSec}}, T);
  EXPECT_EQ(f.threshold_for(0), 2 * kUsPerSec);
  EXPECT_EQ(f.threshold_for(1), T);
  const auto out = apply_filter(
      f, {at(0, 1, 0), at(3, 1, 0), at(10, 1, 1), at(13, 1, 1)});
  // Category 0 gap 3s > 2s threshold: both kept. Category 1 gap 3s <
  // 5s: second removed.
  EXPECT_EQ(out.size(), 3u);
}

TEST(Adaptive, RejectsBadThresholds) {
  EXPECT_THROW(AdaptiveFilter({}, 0), std::invalid_argument);
  EXPECT_THROW(AdaptiveFilter({{0, 0}}, T), std::invalid_argument);
}

TEST(Adaptive, SuggestFindsTwoScaleStructure) {
  // Category 0: bursts with ~1s internal gaps, incidents hours apart.
  util::Rng rng(7);
  std::vector<Alert> alerts;
  double t = 0;
  for (int burst = 0; burst < 40; ++burst) {
    t += 3600.0 + rng.uniform(0, 600.0);
    double bt = t;
    for (int k = 0; k < 10; ++k) {
      alerts.push_back(at(bt, 1, 0));
      bt += rng.uniform(0.5, 1.5);
    }
  }
  const auto suggested = suggest_thresholds(alerts);
  ASSERT_TRUE(suggested.count(0));
  // The split should land between ~1.5s and ~1h.
  EXPECT_GT(suggested.at(0), 2 * kUsPerSec);
  EXPECT_LT(suggested.at(0), 3600 * kUsPerSec);
}

TEST(Adaptive, SuggestSkipsOneScaleCategories) {
  // Poisson-ish category: no clear valley, keep the default.
  util::Rng rng(8);
  std::vector<Alert> alerts;
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.exponential(1.0 / 100.0);
    alerts.push_back(at(t, 1, 3));
  }
  const auto suggested = suggest_thresholds(alerts);
  EXPECT_FALSE(suggested.count(3));
}

TEST(Adaptive, SuggestSkipsSparseCategories) {
  const auto suggested =
      suggest_thresholds({at(0, 1, 2), at(100, 1, 2), at(200, 1, 2)});
  EXPECT_TRUE(suggested.empty());
}

TEST(Adaptive, SuggestClampsToBounds) {
  ThresholdSuggestOptions opts;
  opts.max_threshold_us = 10 * kUsPerSec;
  std::vector<Alert> alerts;
  double t = 0;
  util::Rng rng(9);
  for (int burst = 0; burst < 30; ++burst) {
    t += 100000.0;
    for (int k = 0; k < 5; ++k) {
      alerts.push_back(at(t + k * 60.0, 1, 0));  // 1-minute internal gaps
    }
  }
  (void)rng;
  const auto suggested = suggest_thresholds(alerts, opts);
  if (suggested.count(0)) {
    EXPECT_LE(suggested.at(0), opts.max_threshold_us);
  }
}

TEST(CorrelationAware, GroupedCategoriesShareWindow) {
  // PBS_CHK (0) and PBS_BFD (1) in one group: a BFD right after a CHK
  // is redundant.
  CorrelationAwareFilter f({{0, 1}, {1, 1}}, T);
  const auto out = apply_filter(f, {at(0, 1, 0), at(2, 2, 1)});
  EXPECT_EQ(out.size(), 1u);
}

TEST(CorrelationAware, UngroupedCategoriesIndependent) {
  CorrelationAwareFilter f({{0, 1}, {1, 1}}, T);
  const auto out = apply_filter(f, {at(0, 1, 0), at(2, 2, 5)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(CorrelationAware, ReducesVersusPerCategory) {
  // The Figure 4 situation: two tags fire for the same failures.
  std::vector<Alert> in;
  for (int i = 0; i < 50; ++i) {
    in.push_back(at(i * 100.0, 1, 0));
    in.push_back(at(i * 100.0 + 2.0, 2, 1));
  }
  CorrelationAwareFilter grouped({{0, 9}, {1, 9}}, T);
  CorrelationAwareFilter ungrouped({}, T);
  EXPECT_EQ(apply_filter(grouped, in).size(), 50u);
  EXPECT_EQ(apply_filter(ungrouped, in).size(), 100u);
}

TEST(CorrelationAware, LearnsGroupsFromCooccurrence) {
  std::vector<Alert> in;
  for (int i = 0; i < 60; ++i) {
    in.push_back(at(i * 500.0, 1, 0));
    in.push_back(at(i * 500.0 + 3.0, 2, 1));      // always follows cat 0
    in.push_back(at(i * 500.0 + 250.0, 3, 2));    // unrelated
  }
  const auto groups = learn_correlation_groups(in, 10 * kUsPerSec, 0.5);
  ASSERT_TRUE(groups.count(0));
  ASSERT_TRUE(groups.count(1));
  EXPECT_EQ(groups.at(0), groups.at(1));
  EXPECT_FALSE(groups.count(2));
}

TEST(CorrelationAware, RejectsBadThreshold) {
  EXPECT_THROW(CorrelationAwareFilter({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wss::filter
