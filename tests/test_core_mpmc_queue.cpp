// Unit tests for the bounded MPMC work queue that feeds the parallel
// pipeline: FIFO delivery, close/drain semantics, backpressure, and
// multi-producer multi-consumer exactly-once delivery.
#include "core/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace wss::core {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcQueue, CloseDrainsThenEndsStream) {
  MpmcQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);          // items before close are delivered
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());  // then end-of-stream
  EXPECT_FALSE(q.push(3));        // pushes after close are refused
}

TEST(MpmcQueue, CapacityClampsToOne) {
  MpmcQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(MpmcQueue, BackpressureBlocksProducerUntilPop) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  std::atomic<bool> third_pushed{false};
  std::jthread producer([&] {
    q.push(3);  // must block: queue is full
    third_pushed.store(true);
  });
  // The producer cannot complete before a pop frees a slot. (A sleep
  // can't prove blocking, but a wrong queue that drops or overwrites
  // would corrupt the FIFO order checked below.)
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(MpmcQueue, ManyProducersManyConsumersExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(16);

  // Each value 0..N-1 is pushed exactly once; consumers tally how
  // often each was seen.
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  {
    std::vector<std::jthread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        while (auto v = q.pop()) seen[static_cast<std::size_t>(*v)]++;
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (int i = 0; i < kPerProducer; ++i) {
            EXPECT_TRUE(q.push(p * kPerProducer + i));
          }
        });
      }
    }  // producers join
    q.close();
  }  // consumers drain and join

  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "value " << i;
  }
}

TEST(MpmcQueue, SingleProducerOrderPreservedAcrossThreads) {
  MpmcQueue<int> q(4);
  std::vector<int> received;
  std::jthread consumer([&] {
    while (auto v = q.pop()) received.push_back(*v);
  });
  for (int i = 0; i < 1000; ++i) q.push(i);
  q.close();
  consumer.join();
  std::vector<int> expected(1000);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(received, expected);
}

}  // namespace
}  // namespace wss::core
