// Unit tests for the bounded MPMC work queue that feeds the parallel
// pipeline: FIFO delivery, close/drain semantics, backpressure, and
// multi-producer multi-consumer exactly-once delivery.
#include "core/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace wss::core {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcQueue, CloseDrainsThenEndsStream) {
  MpmcQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);          // items before close are delivered
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());  // then end-of-stream
  EXPECT_FALSE(q.push(3));        // pushes after close are refused
}

TEST(MpmcQueue, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
  EXPECT_THROW(MpmcQueue<int>(3), std::invalid_argument);
  EXPECT_THROW(MpmcQueue<int>(12), std::invalid_argument);
  EXPECT_NO_THROW(MpmcQueue<int>(1));
  EXPECT_NO_THROW(MpmcQueue<int>(64));
}

TEST(MpmcQueue, NextPow2) {
  EXPECT_EQ(MpmcQueue<int>::next_pow2(0), 1u);
  EXPECT_EQ(MpmcQueue<int>::next_pow2(1), 1u);
  EXPECT_EQ(MpmcQueue<int>::next_pow2(3), 4u);
  EXPECT_EQ(MpmcQueue<int>::next_pow2(8), 8u);
  EXPECT_EQ(MpmcQueue<int>::next_pow2(1000), 1024u);
}

TEST(MpmcQueue, TryPopNonBlocking) {
  MpmcQueue<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());  // empty: no blocking, no value
  q.push(7);
  EXPECT_EQ(q.try_pop(), 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, PushEvictingDropsOldestWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_EQ(q.push_evicting(1), 0u);
  EXPECT_EQ(q.push_evicting(2), 0u);
  EXPECT_EQ(q.push_evicting(3), 1u);  // evicts 1
  EXPECT_EQ(q.push_evicting(4), 1u);  // evicts 2
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
  q.close();
  EXPECT_EQ(q.push_evicting(5), MpmcQueue<int>::kClosed);
}

TEST(MpmcQueue, EvictedTotalCountsExactly) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(q.push_evicting(i), MpmcQueue<int>::kClosed);
  }
  // 8 fit, pushes 8..19 each evicted exactly one.
  EXPECT_EQ(q.evicted_total(), 12u);
  for (int i = 12; i < 20; ++i) EXPECT_EQ(q.pop(), i);
  // Popping is not evicting.
  EXPECT_EQ(q.evicted_total(), 12u);
}

TEST(MpmcQueue, EvictedTotalConservesUnderContention) {
  // Regression: the eviction counter used to be bumped outside the
  // queue lock, so concurrent evictors could lose increments and
  // popped + evicted would undercount the offered total.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpmcQueue<int> q(16);
  std::atomic<std::uint64_t> popped{0};
  {
    std::vector<std::jthread> consumers;
    for (int c = 0; c < 2; ++c) {
      consumers.emplace_back([&] {
        while (q.pop().has_value()) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
          for (int i = 0; i < kPerProducer; ++i) {
            EXPECT_NE(q.push_evicting(i), MpmcQueue<int>::kClosed);
          }
        });
      }
    }  // producers join
    q.close();
  }  // consumers drain and join
  // Every offered item was either delivered or evicted -- exactly once.
  EXPECT_EQ(popped.load() + q.evicted_total(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(MpmcQueue, BackpressureBlocksProducerUntilPop) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  std::atomic<bool> third_pushed{false};
  std::jthread producer([&] {
    q.push(3);  // must block: queue is full
    third_pushed.store(true);
  });
  // The producer cannot complete before a pop frees a slot. (A sleep
  // can't prove blocking, but a wrong queue that drops or overwrites
  // would corrupt the FIFO order checked below.)
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(MpmcQueue, ManyProducersManyConsumersExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(16);

  // Each value 0..N-1 is pushed exactly once; consumers tally how
  // often each was seen.
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  {
    std::vector<std::jthread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        while (auto v = q.pop()) seen[static_cast<std::size_t>(*v)]++;
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (int i = 0; i < kPerProducer; ++i) {
            EXPECT_TRUE(q.push(p * kPerProducer + i));
          }
        });
      }
    }  // producers join
    q.close();
  }  // consumers drain and join

  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "value " << i;
  }
}

TEST(MpmcQueue, SingleProducerOrderPreservedAcrossThreads) {
  MpmcQueue<int> q(4);
  std::vector<int> received;
  std::jthread consumer([&] {
    while (auto v = q.pop()) received.push_back(*v);
  });
  for (int i = 0; i < 1000; ++i) q.push(i);
  q.close();
  consumer.join();
  std::vector<int> expected(1000);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(received, expected);
}

}  // namespace
}  // namespace wss::core
