#include "util/time.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace wss::util {
namespace {

TEST(Time, EpochIsZero) {
  CivilTime ct;
  ct.year = 1970;
  ct.month = 1;
  ct.day = 1;
  EXPECT_EQ(to_time_us(ct), 0);
}

TEST(Time, KnownDate) {
  // 2005-06-03 00:00:00 UTC == 1117756800 (the BG/L start date).
  CivilTime ct{2005, 6, 3, 0, 0, 0, 0};
  EXPECT_EQ(to_time_us(ct), 1117756800LL * kUsPerSec);
}

TEST(Time, RoundTripMicros) {
  CivilTime ct{2006, 3, 19, 23, 59, 59, 123456};
  const TimeUs t = to_time_us(ct);
  EXPECT_EQ(to_civil(t), ct);
}

TEST(Time, NegativeTimesRoundTrip) {
  CivilTime ct{1969, 12, 31, 23, 59, 58, 999999};
  const TimeUs t = to_time_us(ct);
  EXPECT_LT(t, 0);
  EXPECT_EQ(to_civil(t), ct);
}

TEST(Time, DaysFromCivilKnownValues) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
}

TEST(Time, CivilFromDaysInverse) {
  int y = 0;
  int m = 0;
  int d = 0;
  civil_from_days(0, y, m, d);
  EXPECT_EQ(y, 1970);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(d, 1);
}

TEST(Time, LeapYears) {
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_TRUE(is_leap_year(2004));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2005));
  EXPECT_EQ(days_in_month(2004, 2), 29);
  EXPECT_EQ(days_in_month(2005, 2), 28);
  EXPECT_EQ(days_in_month(2005, 4), 30);
  EXPECT_EQ(days_in_month(2005, 12), 31);
  EXPECT_EQ(days_in_month(2005, 13), 0);
}

TEST(Time, MonthAbbrev) {
  EXPECT_EQ(month_abbrev(1), "Jan");
  EXPECT_EQ(month_abbrev(12), "Dec");
  EXPECT_EQ(month_abbrev(0), "???");
  EXPECT_EQ(parse_month_abbrev("Jun"), 6);
  EXPECT_EQ(parse_month_abbrev("jun"), 6);
  EXPECT_EQ(parse_month_abbrev("DEC"), 12);
  EXPECT_EQ(parse_month_abbrev("xyz"), 0);
  EXPECT_EQ(parse_month_abbrev("Ju"), 0);
}

TEST(Time, FormatSyslog) {
  const TimeUs t = to_time_us({2005, 6, 3, 15, 42, 50, 0});
  EXPECT_EQ(format_syslog(t), "Jun  3 15:42:50");
  const TimeUs t2 = to_time_us({2005, 11, 19, 1, 2, 3, 0});
  EXPECT_EQ(format_syslog(t2), "Nov 19 01:02:03");
}

TEST(Time, FormatBgl) {
  const TimeUs t = to_time_us({2005, 6, 3, 15, 42, 50, 363779});
  EXPECT_EQ(format_bgl(t), "2005-06-03-15.42.50.363779");
}

TEST(Time, FormatIso) {
  const TimeUs t = to_time_us({2006, 3, 19, 10, 0, 0, 0});
  EXPECT_EQ(format_iso(t), "2006-03-19 10:00:00");
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(1500), "1500us");
  EXPECT_EQ(format_duration(5 * kUsPerSec), "5.0s");
  EXPECT_EQ(format_duration(90 * kUsPerSec), "1.5m");
  EXPECT_EQ(format_duration(2 * kUsPerHour), "2.0h");
  EXPECT_EQ(format_duration(3 * kUsPerDay), "3.0d");
}

/// Property: to_civil(to_time_us(x)) == x for random valid civil
/// times across four decades.
TEST(TimeProperty, RoundTripRandom) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    CivilTime ct;
    ct.year = static_cast<int>(rng.uniform_i64(1980, 2040));
    ct.month = static_cast<int>(rng.uniform_i64(1, 12));
    ct.day = static_cast<int>(
        rng.uniform_i64(1, days_in_month(ct.year, ct.month)));
    ct.hour = static_cast<int>(rng.uniform_i64(0, 23));
    ct.minute = static_cast<int>(rng.uniform_i64(0, 59));
    ct.second = static_cast<int>(rng.uniform_i64(0, 59));
    ct.micros = static_cast<int>(rng.uniform_i64(0, 999999));
    EXPECT_EQ(to_civil(to_time_us(ct)), ct);
  }
}

/// Property: days_from_civil is strictly increasing day by day.
TEST(TimeProperty, MonotonicDays) {
  std::int64_t prev = days_from_civil(2004, 12, 31);
  for (int month = 1; month <= 12; ++month) {
    for (int day = 1; day <= days_in_month(2005, month); ++day) {
      const std::int64_t d = days_from_civil(2005, month, day);
      EXPECT_EQ(d, prev + 1);
      prev = d;
    }
  }
}

}  // namespace
}  // namespace wss::util
