#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wss::stats {
namespace {

TEST(Descriptive, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
}

TEST(Descriptive, BasicMoments) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.median, 4.5, 1e-12);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(Descriptive, CoefficientOfVariation) {
  // CV of a constant sample is 0.
  EXPECT_DOUBLE_EQ(coefficient_of_variation({3.0, 3.0, 3.0}), 0.0);
  // Exponential-like samples have CV near 1; a crude check.
  const std::vector<double> exp_like = {0.1, 0.3, 0.5, 1.0, 1.2, 2.5, 4.0};
  const double cv = coefficient_of_variation(exp_like);
  EXPECT_GT(cv, 0.5);
  EXPECT_LT(cv, 2.0);
}

TEST(Descriptive, InterarrivalSortsAndDiffs) {
  const auto gaps = interarrival_seconds({3'000'000, 1'000'000, 6'000'000});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 2.0);
  EXPECT_DOUBLE_EQ(gaps[1], 3.0);
  EXPECT_TRUE(interarrival_seconds({42}).empty());
  EXPECT_TRUE(interarrival_seconds({}).empty());
}

}  // namespace
}  // namespace wss::stats
