#include "sim/opcontext.hpp"

#include <gtest/gtest.h>

namespace wss::sim {
namespace {

using util::kUsPerDay;
using util::kUsPerHour;

TEST(OpContext, StateAtFollowsTransitions) {
  OpContextTimeline tl(0, 100 * kUsPerDay);
  EXPECT_EQ(tl.state_at(0), OpState::kProduction);
  tl.append({10 * kUsPerDay, OpState::kScheduledDowntime, "weekly PM"});
  tl.append({10 * kUsPerDay + 4 * kUsPerHour, OpState::kProduction, "done"});
  EXPECT_EQ(tl.state_at(5 * kUsPerDay), OpState::kProduction);
  EXPECT_EQ(tl.state_at(10 * kUsPerDay + kUsPerHour),
            OpState::kScheduledDowntime);
  EXPECT_EQ(tl.state_at(11 * kUsPerDay), OpState::kProduction);
}

TEST(OpContext, RejectsOutOfOrder) {
  OpContextTimeline tl(0, kUsPerDay);
  tl.append({kUsPerHour, OpState::kEngineering, "test"});
  EXPECT_THROW(tl.append({0, OpState::kProduction, "bad"}),
               std::invalid_argument);
  EXPECT_THROW(OpContextTimeline(10, 10), std::invalid_argument);
}

TEST(OpContext, MetricsFractionsSumToOne) {
  OpContextTimeline tl(0, 10 * kUsPerDay);
  tl.append({2 * kUsPerDay, OpState::kUnscheduledDowntime, "failure"});
  tl.append({2 * kUsPerDay + 12 * kUsPerHour, OpState::kProduction, "fixed"});
  tl.append({5 * kUsPerDay, OpState::kEngineering, "test"});
  tl.append({5 * kUsPerDay + 6 * kUsPerHour, OpState::kProduction, "done"});
  const RasMetrics m = tl.metrics();
  EXPECT_NEAR(m.production_fraction + m.scheduled_fraction +
                  m.unscheduled_fraction + m.engineering_fraction,
              1.0, 1e-12);
  EXPECT_NEAR(m.unscheduled_fraction, 0.05, 1e-9);
  EXPECT_EQ(m.unscheduled_outages, 1u);
  EXPECT_GT(m.availability, 0.9);
  EXPECT_GT(m.mtbf_hours, 0.0);
}

TEST(OpContext, AvailabilityIgnoresScheduledTime) {
  // Availability = production / (production + unscheduled); scheduled
  // downtime does not count against it.
  OpContextTimeline tl(0, 10 * kUsPerDay);
  tl.append({1 * kUsPerDay, OpState::kScheduledDowntime, "PM"});
  tl.append({2 * kUsPerDay, OpState::kProduction, "done"});
  const RasMetrics m = tl.metrics();
  EXPECT_DOUBLE_EQ(m.availability, 1.0);
}

TEST(OpContext, GeneratedTimelineIsSane) {
  const auto& spec = system_spec(parse::SystemId::kRedStorm);
  util::Rng rng(1);
  const auto tl = OpContextTimeline::generate(spec, rng);
  const RasMetrics m = tl.metrics();
  // Mostly production, weekly PM visible, availability high.
  EXPECT_GT(m.production_fraction, 0.8);
  EXPECT_GT(m.scheduled_fraction, 0.0);
  EXPECT_GT(m.availability, 0.9);
  // Transitions are ordered and inside the window.
  const auto& trs = tl.transitions();
  ASSERT_FALSE(trs.empty());
  for (std::size_t i = 1; i < trs.size(); ++i) {
    EXPECT_LE(trs[i - 1].time, trs[i].time);
  }
  EXPECT_GE(trs.front().time, tl.start());
  EXPECT_LE(trs.back().time, tl.end());
}

TEST(OpContext, DisambiguationExample) {
  // The Section 3.2.1 example: the same message is innocuous during
  // scheduled downtime, a job-killer in production.
  OpContextTimeline tl(0, 2 * kUsPerDay);
  tl.append({kUsPerDay, OpState::kScheduledDowntime, "OS upgrade"});
  tl.append({kUsPerDay + 4 * kUsPerHour, OpState::kProduction, "done"});
  const util::TimeUs during_maintenance = kUsPerDay + kUsPerHour;
  const util::TimeUs during_production = kUsPerHour;
  EXPECT_EQ(tl.state_at(during_maintenance), OpState::kScheduledDowntime);
  EXPECT_EQ(tl.state_at(during_production), OpState::kProduction);
}

TEST(OpContext, StateNames) {
  EXPECT_EQ(op_state_name(OpState::kProduction), "production");
  EXPECT_EQ(op_state_name(OpState::kScheduledDowntime), "scheduled downtime");
  EXPECT_EQ(op_state_name(OpState::kUnscheduledDowntime),
            "unscheduled downtime");
  EXPECT_EQ(op_state_name(OpState::kEngineering), "engineering");
}

}  // namespace
}  // namespace wss::sim
