#include "filter/score.hpp"

#include <gtest/gtest.h>

#include "filter/simultaneous.hpp"

namespace wss::filter {
namespace {

using util::kUsPerSec;
constexpr util::TimeUs T = 5 * kUsPerSec;

Alert ev(double sec, std::uint32_t src, std::uint64_t failure,
         std::uint16_t cat = 0) {
  Alert a;
  a.time = static_cast<util::TimeUs>(sec * 1e6);
  a.source = src;
  a.category = cat;
  a.failure_id = failure;
  return a;
}

TEST(Score, PerfectFilterOnCleanStream) {
  // Three well-separated failures, three alerts each.
  std::vector<Alert> in;
  for (int f = 1; f <= 3; ++f) {
    for (int k = 0; k < 3; ++k) {
      in.push_back(ev(f * 1000.0 + k * 2.0, 1, static_cast<std::uint64_t>(f)));
    }
  }
  SimultaneousFilter filter(T);
  const auto s = score_filter(filter, in);
  EXPECT_EQ(s.input_alerts, 9u);
  EXPECT_EQ(s.kept_alerts, 3u);
  EXPECT_EQ(s.failures_total, 3u);
  EXPECT_EQ(s.failures_represented, 3u);
  EXPECT_EQ(s.true_positives_lost, 0u);
  EXPECT_EQ(s.false_positives_kept, 0u);
  EXPECT_DOUBLE_EQ(s.compression, 3.0);
}

TEST(Score, DetectsLostFailure) {
  // Failure 2 hides entirely within failure 1's window.
  std::vector<Alert> in = {ev(0, 1, 1), ev(2, 1, 1), ev(3, 2, 2),
                           ev(4.5, 1, 1)};
  SimultaneousFilter filter(T);
  const auto s = score_filter(filter, in);
  EXPECT_EQ(s.failures_total, 2u);
  EXPECT_EQ(s.failures_represented, 1u);
  EXPECT_EQ(s.true_positives_lost, 1u);
}

TEST(Score, CountsDuplicateSurvivorsAsFalsePositives) {
  // Same failure resurfacing after a quiet gap: the second survivor is
  // redundant with respect to ground truth.
  std::vector<Alert> in = {ev(0, 1, 7), ev(100, 1, 7)};
  SimultaneousFilter filter(T);
  const auto s = score_filter(filter, in);
  EXPECT_EQ(s.kept_alerts, 2u);
  EXPECT_EQ(s.false_positives_kept, 1u);
  EXPECT_EQ(s.true_positives_lost, 0u);
}

TEST(Score, UnknownFailureIdsAreNoise) {
  std::vector<Alert> in = {ev(0, 1, 0), ev(100, 1, 0)};
  SimultaneousFilter filter(T);
  const auto s = score_filter(filter, in);
  EXPECT_EQ(s.failures_total, 0u);
  EXPECT_EQ(s.false_positives_kept, 2u);
}

TEST(Score, EmptyInput) {
  SimultaneousFilter filter(T);
  const auto s = score_filter(filter, {});
  EXPECT_EQ(s.kept_alerts, 0u);
  EXPECT_DOUBLE_EQ(s.compression, 0.0);
}

TEST(Score, DescribeMentionsKeyNumbers) {
  SimultaneousFilter filter(T);
  const auto s = score_filter(filter, {ev(0, 1, 1)});
  const std::string d = describe(s);
  EXPECT_NE(d.find("kept 1/1"), std::string::npos);
  EXPECT_NE(d.find("TP lost 0"), std::string::npos);
}

}  // namespace
}  // namespace wss::filter
