// wss::obs primitives: counter striping, gauge semantics, histogram
// bucketing, registry identity/reset, and the JSON + Prometheus
// exporters.
//
// The registry is process-global, so every test either uses names
// private to itself or calls registry().reset() first. Tests that
// assert live instrumentation values are skipped under -DWSS_OBS_OFF
// (the kill switch turns inc/set/observe into no-ops by design).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"

namespace wss::obs {
namespace {

namespace fs = std::filesystem;

#ifdef WSS_OBS_OFF
#define SKIP_IF_OBS_OFF() \
  GTEST_SKIP() << "instrumentation compiled out (WSS_OBS_OFF)"
#else
#define SKIP_IF_OBS_OFF() (void)0
#endif

TEST(ObsCounter, IncAndSet) {
  SKIP_IF_OBS_OFF();
  Counter& c = registry().counter("wss_test_inc_total");
  c.set(0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);  // overwrite clears every stripe, not just this thread's
  EXPECT_EQ(c.value(), 7u);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  SKIP_IF_OBS_OFF();
  Counter& c = registry().counter("wss_test_concurrent_total");
  c.set(0);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&c] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
      });
    }
  }
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAddRestore) {
  Gauge& g = registry().gauge("wss_test_gauge");
  g.restore(0);  // restore() is live even under WSS_OBS_OFF
#ifndef WSS_OBS_OFF
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
#endif
  g.restore(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsHistogram, BucketAssignment) {
  SKIP_IF_OBS_OFF();
  Histogram& h = registry().histogram("wss_test_hist", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.bounds().size(), 3u);
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // bounds are upper-inclusive: still bucket 0
  h.observe(5.0);    // (1, 10]
  h.observe(50.0);   // (10, 100]
  h.observe(1000.0); // +Inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + implicit +Inf
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 50.0 + 1000.0);
}

TEST(ObsHistogram, LatencyBoundsAreAscending) {
  const auto& bounds = latency_bounds_seconds();
  ASSERT_GT(bounds.size(), 3u);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_GT(bounds.front(), 0.0);
  EXPECT_LT(bounds.back(), 10.0);  // ingest latencies live well below 10 s
}

TEST(ObsRegistry, SameNameSameHandle) {
  Counter& a = registry().counter("wss_test_identity_total");
  Counter& b = registry().counter("wss_test_identity_total");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry().gauge("wss_test_identity_gauge");
  Gauge& g2 = registry().gauge("wss_test_identity_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry().histogram("wss_test_identity_hist", {1.0});
  // Later bounds are ignored: the first registration wins.
  Histogram& h2 = registry().histogram("wss_test_identity_hist", {2.0, 3.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), std::vector<double>{1.0});
}

TEST(ObsRegistry, LabeledCounterNameFormat) {
  Counter& c = labeled_counter("wss_test_labeled_total", "category", 3);
  EXPECT_EQ(c.name(), "wss_test_labeled_total{category=\"3\"}");
  // Same (base, key, value) resolves to the same counter.
  EXPECT_EQ(&c, &labeled_counter("wss_test_labeled_total", "category", 3));
  EXPECT_NE(&c, &labeled_counter("wss_test_labeled_total", "category", 4));
}

TEST(ObsRegistry, CounterValuesSortedByName) {
  registry().counter("wss_test_zzz_total");
  registry().counter("wss_test_aaa_total");
  const auto values = registry().counter_values();
  EXPECT_TRUE(std::is_sorted(
      values.begin(), values.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(ObsRegistry, SetCounterCreatesAndOverwrites) {
  // set_counter is the checkpoint-restore path: compiled in (and
  // observable) even under WSS_OBS_OFF.
  registry().set_counter("wss_test_restored_total", 123);
  EXPECT_EQ(registry().counter("wss_test_restored_total").value(), 123u);
  registry().set_counter("wss_test_restored_total", 5);
  EXPECT_EQ(registry().counter("wss_test_restored_total").value(), 5u);
  registry().set_gauge("wss_test_restored_gauge", -9);
  EXPECT_EQ(registry().gauge("wss_test_restored_gauge").value(), -9);
}

TEST(ObsRegistry, ResetZeroesButKeepsHandles) {
  Counter& c = registry().counter("wss_test_reset_total");
  c.set(99);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  // The registration survives: the same name still yields this handle.
  EXPECT_EQ(&c, &registry().counter("wss_test_reset_total"));
}

TEST(ObsSnapshot, CounterOrZero) {
  registry().set_counter("wss_test_snap_total", 17);
  const MetricsSnapshot snap = registry().snapshot();
  EXPECT_EQ(snap.counter_or_zero("wss_test_snap_total"), 17u);
  EXPECT_EQ(snap.counter_or_zero("wss_test_never_registered"), 0u);
}

TEST(ObsExport, JsonCarriesSchemaAndValues) {
  registry().reset();
  registry().set_counter("wss_json_c_total", 3);
  registry().set_gauge("wss_json_g", -2);
  const std::string json = to_json(registry().snapshot());
  EXPECT_NE(json.find("\"schema\": \"wss.obs.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wss_json_c_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"wss_json_g\": -2"), std::string::npos);
  // Labels embed quotes; the exporter must escape them.
  registry().set_counter("wss_json_l_total{category=\"7\"}", 4);
  const std::string json2 = to_json(registry().snapshot());
  EXPECT_NE(json2.find("\"wss_json_l_total{category=\\\"7\\\"}\": 4"),
            std::string::npos);
}

TEST(ObsExport, PrometheusTextFormat) {
  SKIP_IF_OBS_OFF();
  registry().reset();
  registry().set_counter("wss_prom_c_total", 5);
  registry().set_counter("wss_prom_l_total{category=\"1\"}", 2);
  registry().set_counter("wss_prom_l_total{category=\"2\"}", 3);
  registry().set_gauge("wss_prom_g", 11);
  Histogram& h = registry().histogram("wss_prom_h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(4.0);
  h.observe(40.0);
  const std::string prom = to_prometheus(registry().snapshot());

  EXPECT_NE(prom.find("# TYPE wss_prom_c_total counter"), std::string::npos);
  EXPECT_NE(prom.find("wss_prom_c_total 5\n"), std::string::npos);
  // One TYPE line per family, base name only, both labeled series listed.
  EXPECT_EQ(prom.find("# TYPE wss_prom_l_total counter"),
            prom.rfind("# TYPE wss_prom_l_total counter"));
  EXPECT_NE(prom.find("wss_prom_l_total{category=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("wss_prom_l_total{category=\"2\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE wss_prom_g gauge"), std::string::npos);
  EXPECT_NE(prom.find("wss_prom_g 11\n"), std::string::npos);
  // Histogram: cumulative le buckets ending in +Inf, plus _sum/_count.
  EXPECT_NE(prom.find("# TYPE wss_prom_h histogram"), std::string::npos);
  EXPECT_NE(prom.find("wss_prom_h_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("wss_prom_h_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("wss_prom_h_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("wss_prom_h_count 3\n"), std::string::npos);
}

class ObsExportFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_obs_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& p) {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }

  fs::path dir_;
};

TEST_F(ObsExportFileTest, WritesJsonAndPrometheusByExtension) {
  registry().reset();
  registry().set_counter("wss_file_c_total", 8);

  write_metrics_file((dir_ / "snap.json").string());
  const std::string json = slurp(dir_ / "snap.json");
  EXPECT_NE(json.find("\"schema\": \"wss.obs.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wss_file_c_total\": 8"), std::string::npos);

  write_metrics_file((dir_ / "snap.prom").string());
  const std::string prom = slurp(dir_ / "snap.prom");
  EXPECT_EQ(prom.find("schema"), std::string::npos);
  EXPECT_NE(prom.find("wss_file_c_total 8\n"), std::string::npos);
}

TEST_F(ObsExportFileTest, ThrowsWhenPathUnwritable) {
  EXPECT_THROW(write_metrics_file((dir_ / "missing" / "x.json").string()),
               std::runtime_error);
}

}  // namespace
}  // namespace wss::obs
