#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace wss::stats {
namespace {

using util::kUsPerSec;

TEST(Pearson, PerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  EXPECT_EQ(pearson({1, 2}, {1}), 0.0);        // length mismatch
  EXPECT_EQ(pearson({1}, {1}), 0.0);           // too short
  EXPECT_EQ(pearson({3, 3, 3}, {1, 2, 3}), 0.0);  // constant series
}

TEST(CrossCorrelation, PeaksAtTrueLag) {
  // Stream b = stream a shifted by +3 bins.
  std::vector<util::TimeUs> a;
  std::vector<util::TimeUs> b;
  util::Rng rng(5);
  util::TimeUs t = 0;
  for (int i = 0; i < 300; ++i) {
    t += static_cast<util::TimeUs>(rng.exponential(0.1) * 1e6);
    a.push_back(t);
    b.push_back(t + 3 * kUsPerSec);
  }
  const auto xc = cross_correlation(a, b, kUsPerSec, 5);
  ASSERT_EQ(xc.size(), 11u);
  // Peak at lag +3 (index 5 + 3).
  std::size_t best = 0;
  for (std::size_t i = 1; i < xc.size(); ++i) {
    if (xc[i] > xc[best]) best = i;
  }
  EXPECT_EQ(best, 8u);
  EXPECT_GT(xc[8], 0.8);
}

TEST(CrossCorrelation, EmptyStreams) {
  const auto xc = cross_correlation({}, {1}, kUsPerSec, 3);
  EXPECT_EQ(xc.size(), 7u);
  for (double v : xc) EXPECT_EQ(v, 0.0);
  EXPECT_THROW(cross_correlation({1}, {1}, 0, 3), std::invalid_argument);
}

TEST(Cooccurrence, FullWhenAligned) {
  const std::vector<util::TimeUs> a = {10, 20, 30};
  EXPECT_DOUBLE_EQ(cooccurrence_fraction(a, a, 1), 1.0);
}

TEST(Cooccurrence, PartialOverlap) {
  const std::vector<util::TimeUs> a = {0, 100, 200, 300};
  const std::vector<util::TimeUs> b = {102, 301};
  EXPECT_DOUBLE_EQ(cooccurrence_fraction(a, b, 5), 0.5);
  EXPECT_DOUBLE_EQ(cooccurrence_fraction(b, a, 5), 1.0);
}

TEST(Cooccurrence, Empty) {
  EXPECT_EQ(cooccurrence_fraction({}, {1}, 5), 0.0);
  EXPECT_EQ(cooccurrence_fraction({1}, {}, 5), 0.0);
}

TEST(SpatialSpread, SingleNodeBurstsScoreLow) {
  // All events in each window from one source (a dying disk).
  std::vector<util::TimeUs> times;
  std::vector<std::uint32_t> sources;
  for (int burst = 0; burst < 10; ++burst) {
    for (int k = 0; k < 8; ++k) {
      times.push_back(burst * 1000 * kUsPerSec + k * kUsPerSec);
      sources.push_back(7);
    }
  }
  EXPECT_NEAR(spatial_spread(times, sources, 30 * kUsPerSec), 0.0, 1e-12);
}

TEST(SpatialSpread, JobBurstsScoreHigh) {
  // Each window touches 8 distinct sources (the SMP clock bug shape).
  std::vector<util::TimeUs> times;
  std::vector<std::uint32_t> sources;
  for (int burst = 0; burst < 10; ++burst) {
    for (std::uint32_t k = 0; k < 8; ++k) {
      times.push_back(burst * 1000 * kUsPerSec + k * kUsPerSec);
      sources.push_back(100 + k);
    }
  }
  EXPECT_NEAR(spatial_spread(times, sources, 30 * kUsPerSec), 1.0, 1e-12);
}

TEST(SpatialSpread, DegenerateInputs) {
  EXPECT_EQ(spatial_spread({}, {}, 10), 0.0);
  EXPECT_EQ(spatial_spread({1}, {1, 2}, 10), 0.0);  // mismatched
  EXPECT_EQ(spatial_spread({1}, {1}, 0), 0.0);
}

}  // namespace
}  // namespace wss::stats
