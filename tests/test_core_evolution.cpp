#include "core/evolution.hpp"

#include <gtest/gtest.h>

namespace wss::core {
namespace {

TEST(Evolution, LibertySegmentsAtTheKnownShifts) {
  Study study(StudyOptions::small());
  const auto a = analyze_evolution(study, parse::SystemId::kLiberty);
  // The simulated Liberty profile has three rate shifts -> 4 epochs
  // (changepoint detection may merge the weakest; require >= 3).
  EXPECT_GE(a.epochs.size(), 3u);
  EXPECT_EQ(a.drifts.size(), a.epochs.size() - 1);

  // The OS-upgrade epoch boundary raises the message rate.
  EXPECT_GT(a.drifts.front().rate_ratio, 1.2);
  // Epochs tile the window.
  const auto& spec = sim::system_spec(parse::SystemId::kLiberty);
  EXPECT_EQ(a.epochs.front().begin, spec.start_time());
  EXPECT_EQ(a.epochs.back().end, spec.end_time());
  for (std::size_t i = 1; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].begin, a.epochs[i - 1].end);
  }
}

TEST(Evolution, FingerprintsAreShares) {
  Study study(StudyOptions::small());
  const auto a = analyze_evolution(study, parse::SystemId::kLiberty);
  for (const auto& ep : a.epochs) {
    double sum = 0.0;
    for (const double f : ep.fingerprint) {
      EXPECT_GE(f, 0.0);
      sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GE(ep.alert_fraction, 0.0);
    EXPECT_LE(ep.alert_fraction, 1.0);
  }
}

TEST(Evolution, StationarySystemDriftsLess) {
  // Thunderbird's chatter profile is flat; Liberty's is not. The
  // maximum rate jump across epochs should be larger on Liberty.
  Study study(StudyOptions::small());
  const auto lib = analyze_evolution(study, parse::SystemId::kLiberty);
  const auto tbird = analyze_evolution(study, parse::SystemId::kThunderbird);
  const auto max_rate_jump = [](const EvolutionAnalysis& a) {
    double m = 1.0;
    for (const auto& d : a.drifts) {
      m = std::max(m, std::max(d.rate_ratio, d.rate_ratio > 0.0
                                                 ? 1.0 / d.rate_ratio
                                                 : 1.0));
    }
    return m;
  };
  EXPECT_GT(max_rate_jump(lib), max_rate_jump(tbird));
}

TEST(Evolution, RenderContainsEpochsAndDrift) {
  Study study(StudyOptions::small());
  const auto a = analyze_evolution(study, parse::SystemId::kLiberty);
  const std::string text = render_evolution(a);
  EXPECT_NE(text.find("Behavioural epochs"), std::string::npos);
  EXPECT_NE(text.find("drift 0->1"), std::string::npos);
  EXPECT_GT(a.max_drift(), 0.0);
}

}  // namespace
}  // namespace wss::core
