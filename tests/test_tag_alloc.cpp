// Steady-state allocation contract of the tag path: after a warm-up
// pass (scratch buffers sized, lazy-DFA cache populated), tagging a
// line allocates NOTHING -- in any engine mode. The pipeline calls
// tag_line hundreds of millions of times; a single per-line allocation
// is the difference between memory-bandwidth-bound and
// allocator-bound.
//
// The counter is a global operator new override local to this binary;
// it counts every allocation on the thread, so the measured region is
// exactly the tag loop.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "logio/reader.hpp"
#include "match/scratch.hpp"
#include "parse/dispatch.hpp"
#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace wss::tag {
namespace {

std::vector<std::string> corpus() {
  sim::SimOptions opts;
  opts.category_cap = 500;
  opts.chatter_events = 5000;
  opts.inject_corruption = false;
  const sim::Simulator simulator(parse::SystemId::kBlueGeneL, opts);
  std::vector<std::string> lines;
  lines.reserve(simulator.events().size());
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    lines.push_back(simulator.line(i));
  }
  return lines;
}

std::size_t tag_pass(const TagEngine& engine,
                     const std::vector<std::string>& lines,
                     match::MatchScratch& scratch) {
  std::size_t hits = 0;
  for (const auto& line : lines) {
    hits += engine.tag_line(line, scratch).has_value() ? 1 : 0;
  }
  return hits;
}

class TagAllocTest : public ::testing::TestWithParam<TagEngineMode> {};

TEST_P(TagAllocTest, SteadyStateTaggingAllocatesNothing) {
  const std::vector<std::string> lines = corpus();
  ASSERT_FALSE(lines.empty());
  const TagEngine engine(build_ruleset(parse::SystemId::kBlueGeneL),
                         GetParam());
  match::MatchScratch scratch;
  // The metrics flusher rides the same hot loop in production; it must
  // hold the zero-allocation bar too (handles bind at construction).
  TagMetricsFlusher flusher;

  // Warm-up: grows every scratch buffer to its high-water mark and
  // (in multi mode) builds every DFA state this corpus ever visits.
  const std::size_t hits = tag_pass(engine, lines, scratch);
  flusher.flush(scratch);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const std::size_t hits_again = tag_pass(engine, lines, scratch);
  flusher.flush(scratch);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(hits_again, hits);
  EXPECT_GT(hits, 0u);  // the corpus must exercise the hit path too
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across " << lines.size()
      << " steady-state lines";
}

// End-to-end miss-path contract: read (mmap) -> split -> parse ->
// tag, the whole chain, allocates nothing per line in steady state.
// Direct before/after counting cannot separate warm-up (string
// capacities, scratch vectors, lazy-DFA states grow DURING the first
// pass), so the pin is differential: a file with the corpus once and
// a file with it twice incur IDENTICAL allocation counts -- every
// allocation is per-pass setup or high-water growth, and the extra
// N lines of the doubled file add exactly zero.
TEST(TagAllocEndToEnd, DoubledCorpusAddsZeroAllocations) {
  const std::vector<std::string> lines = corpus();
  std::string text;
  for (const auto& line : lines) {
    text += line;
    text += '\n';
  }
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("wss_alloc_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const fs::path once = dir / "once.log";
  const fs::path twice = dir / "twice.log";
  {
    std::ofstream(once, std::ios::binary) << text;
    std::ofstream(twice, std::ios::binary) << text << text;
  }

  const TagEngine engine(build_ruleset(parse::SystemId::kBlueGeneL),
                         TagEngineMode::kMulti);
  const auto pass = [&](const fs::path& p) -> std::pair<std::uint64_t,
                                                        std::size_t> {
    match::MatchScratch scratch;
    std::size_t hits = 0;
    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    logio::read_log(p, parse::SystemId::kBlueGeneL, 2005,
                    [&](const parse::LogRecord& rec) {
                      hits += engine.tag_line(rec.raw, scratch).has_value()
                                  ? 1
                                  : 0;
                    });
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    return {after - before, hits};
  };

  // Prime the engine's lazy caches (DFA states are engine-owned, not
  // per-pass) so both measured passes see the same engine state.
  pass(once);

  const auto [allocs_once, hits_once] = pass(once);
  const auto [allocs_twice, hits_twice] = pass(twice);

  std::error_code ec;
  fs::remove_all(dir, ec);

  EXPECT_GT(hits_once, 0u);
  EXPECT_EQ(hits_twice, 2 * hits_once);
  EXPECT_EQ(allocs_twice, allocs_once)
      << "the doubled corpus cost " << (allocs_twice - allocs_once)
      << " extra allocations across " << lines.size() << " extra lines";
}

INSTANTIATE_TEST_SUITE_P(AllModes, TagAllocTest,
                         ::testing::Values(TagEngineMode::kNaive,
                                           TagEngineMode::kPrefilter,
                                           TagEngineMode::kMulti),
                         [](const auto& info) {
                           switch (info.param) {
                             case TagEngineMode::kNaive:
                               return "naive";
                             case TagEngineMode::kPrefilter:
                               return "prefilter";
                             default:
                               return "multi";
                           }
                         });

}  // namespace
}  // namespace wss::tag
