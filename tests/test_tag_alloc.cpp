// Steady-state allocation contract of the tag path: after a warm-up
// pass (scratch buffers sized, lazy-DFA cache populated), tagging a
// line allocates NOTHING -- in any engine mode. The pipeline calls
// tag_line hundreds of millions of times; a single per-line allocation
// is the difference between memory-bandwidth-bound and
// allocator-bound.
//
// The counter is a global operator new override local to this binary;
// it counts every allocation on the thread, so the measured region is
// exactly the tag loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "match/scratch.hpp"
#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace wss::tag {
namespace {

std::vector<std::string> corpus() {
  sim::SimOptions opts;
  opts.category_cap = 500;
  opts.chatter_events = 5000;
  opts.inject_corruption = false;
  const sim::Simulator simulator(parse::SystemId::kBlueGeneL, opts);
  std::vector<std::string> lines;
  lines.reserve(simulator.events().size());
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    lines.push_back(simulator.line(i));
  }
  return lines;
}

std::size_t tag_pass(const TagEngine& engine,
                     const std::vector<std::string>& lines,
                     match::MatchScratch& scratch) {
  std::size_t hits = 0;
  for (const auto& line : lines) {
    hits += engine.tag_line(line, scratch).has_value() ? 1 : 0;
  }
  return hits;
}

class TagAllocTest : public ::testing::TestWithParam<TagEngineMode> {};

TEST_P(TagAllocTest, SteadyStateTaggingAllocatesNothing) {
  const std::vector<std::string> lines = corpus();
  ASSERT_FALSE(lines.empty());
  const TagEngine engine(build_ruleset(parse::SystemId::kBlueGeneL),
                         GetParam());
  match::MatchScratch scratch;
  // The metrics flusher rides the same hot loop in production; it must
  // hold the zero-allocation bar too (handles bind at construction).
  TagMetricsFlusher flusher;

  // Warm-up: grows every scratch buffer to its high-water mark and
  // (in multi mode) builds every DFA state this corpus ever visits.
  const std::size_t hits = tag_pass(engine, lines, scratch);
  flusher.flush(scratch);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const std::size_t hits_again = tag_pass(engine, lines, scratch);
  flusher.flush(scratch);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(hits_again, hits);
  EXPECT_GT(hits, 0u);  // the corpus must exercise the hit path too
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across " << lines.size()
      << " steady-state lines";
}

INSTANTIATE_TEST_SUITE_P(AllModes, TagAllocTest,
                         ::testing::Values(TagEngineMode::kNaive,
                                           TagEngineMode::kPrefilter,
                                           TagEngineMode::kMulti),
                         [](const auto& info) {
                           switch (info.param) {
                             case TagEngineMode::kNaive:
                               return "naive";
                             case TagEngineMode::kPrefilter:
                               return "prefilter";
                             default:
                               return "multi";
                           }
                         });

}  // namespace
}  // namespace wss::tag
