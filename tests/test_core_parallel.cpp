// Determinism equivalence: ParallelPipeline must be *bit-identical*
// to the serial run_pipeline for every system, at 1, 2, 4, and 7
// (non-power-of-two) threads, with corruption injection on and off.
// Floating-point fields are compared with exact equality -- the
// chunked canonical accumulation order (core/pipeline.hpp) is what
// makes that possible.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include "sim/corruption.hpp"

namespace wss::core {
namespace {

using parse::SystemId;

sim::SimOptions tiny_sim(bool corruption) {
  sim::SimOptions o;
  o.category_cap = 800;
  o.chatter_events = 6000;
  o.inject_corruption = corruption;
  return o;
}

/// Exact, field-by-field equality. EXPECT_EQ on doubles is bitwise
/// for the values the pipeline produces (no NaNs, no signed zeros
/// from sums of positive weights).
void expect_identical(const PipelineResult& a, const PipelineResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.system, b.system);
  EXPECT_EQ(a.physical_messages, b.physical_messages);
  EXPECT_EQ(a.weighted_messages, b.weighted_messages);
  EXPECT_EQ(a.physical_bytes, b.physical_bytes);
  EXPECT_EQ(a.weighted_bytes, b.weighted_bytes);
  EXPECT_EQ(a.corrupted_source_lines, b.corrupted_source_lines);
  EXPECT_EQ(a.invalid_timestamp_lines, b.invalid_timestamp_lines);
  EXPECT_EQ(a.categories_observed, b.categories_observed);

  EXPECT_EQ(a.weighted_alert_counts, b.weighted_alert_counts);
  EXPECT_EQ(a.physical_alert_counts, b.physical_alert_counts);

  EXPECT_EQ(a.tagging.true_positives, b.tagging.true_positives);
  EXPECT_EQ(a.tagging.false_positives, b.tagging.false_positives);
  EXPECT_EQ(a.tagging.true_negatives, b.tagging.true_negatives);
  EXPECT_EQ(a.tagging.false_negatives, b.tagging.false_negatives);

  ASSERT_EQ(a.tagged_alerts.size(), b.tagged_alerts.size());
  for (std::size_t i = 0; i < a.tagged_alerts.size(); ++i) {
    const auto& x = a.tagged_alerts[i];
    const auto& y = b.tagged_alerts[i];
    ASSERT_TRUE(x.time == y.time && x.source == y.source &&
                x.category == y.category && x.type == y.type &&
                x.failure_id == y.failure_id && x.weight == y.weight)
        << "alert " << i << " differs";
  }

  EXPECT_EQ(a.corrupted_source_weight, b.corrupted_source_weight);
  ASSERT_EQ(a.messages_by_source.size(), b.messages_by_source.size());
  auto ia = a.messages_by_source.begin();
  auto ib = b.messages_by_source.begin();
  for (; ia != a.messages_by_source.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second, ib->second) << "source " << ia->first;
  }
}

class ParallelPerSystem : public ::testing::TestWithParam<SystemId> {};

TEST_P(ParallelPerSystem, BitIdenticalAtEveryThreadCount) {
  const sim::Simulator simulator(GetParam(), tiny_sim(/*corruption=*/true));
  const PipelineResult serial = run_pipeline(simulator);
  for (const int threads : {1, 2, 4, 7}) {
    PipelineOptions opts;
    opts.num_threads = threads;
    const PipelineResult parallel = ParallelPipeline(opts).run(simulator);
    expect_identical(serial, parallel,
                     "threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelPerSystem, BitIdenticalWithoutCorruption) {
  const sim::Simulator simulator(GetParam(), tiny_sim(/*corruption=*/false));
  const PipelineResult serial = run_pipeline(simulator);
  for (const int threads : {2, 7}) {
    PipelineOptions opts;
    opts.num_threads = threads;
    expect_identical(serial, ParallelPipeline(opts).run(simulator),
                     "threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ParallelPerSystem, ::testing::ValuesIn(parse::kAllSystems),
    [](const ::testing::TestParamInfo<SystemId>& info) {
      return std::string(parse::system_short_name(info.param));
    });

TEST(ParallelPipeline, CustomChunkSizeMatchesSerialWithSameChunk) {
  // Chunk size is part of the determinism contract: parallel and
  // serial agree whenever they use the SAME chunk_events.
  const sim::Simulator simulator(SystemId::kSpirit, tiny_sim(true));
  PipelineOptions opts;
  opts.chunk_events = 1000;  // deliberately non-default
  const PipelineResult serial = run_pipeline(simulator, opts);
  opts.num_threads = 3;
  expect_identical(serial, ParallelPipeline(opts).run(simulator),
                   "chunk=1000 threads=3");
}

TEST(ParallelPipeline, SourceTalliesCanBeDisabled) {
  const sim::Simulator simulator(SystemId::kLiberty, tiny_sim(true));
  PipelineOptions opts;
  opts.num_threads = 4;
  opts.collect_source_tallies = false;
  const PipelineResult r = ParallelPipeline(opts).run(simulator);
  EXPECT_TRUE(r.messages_by_source.empty());
  EXPECT_EQ(r.corrupted_source_weight, 0.0);
  EXPECT_GT(r.physical_messages, 0u);
}

TEST(ParallelPipeline, ZeroThreadsResolvesToHardware) {
  PipelineOptions opts;
  opts.num_threads = 0;
  EXPECT_GE(ParallelPipeline(opts).resolved_threads(), 1);
}

TEST(ParallelPipeline, MoreThreadsThanChunksIsFine) {
  sim::SimOptions so = tiny_sim(true);
  so.category_cap = 100;
  so.chatter_events = 500;
  const sim::Simulator simulator(SystemId::kLiberty, so);
  PipelineOptions opts;
  opts.num_threads = 16;
  opts.chunk_events = 1 << 20;  // single chunk
  expect_identical(run_pipeline(simulator, opts),
                   ParallelPipeline(opts).run(simulator), "one chunk");
}

}  // namespace
}  // namespace wss::core
