// OnlineSimultaneousFilter vs the batch SimultaneousFilter:
// decision-for-decision equivalence, the watermark eviction proof in
// practice, and checkpoint round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "filter/simultaneous.hpp"
#include "sim/generator.hpp"
#include "stream/online_filter.hpp"

namespace wss {
namespace {

constexpr util::TimeUs kT = 5 * util::kUsPerSec;

filter::Alert make_alert(util::TimeUs t, std::uint16_t cat,
                         std::uint32_t source = 0) {
  filter::Alert a;
  a.time = t;
  a.category = cat;
  a.source = source;
  return a;
}

TEST(StreamFilter, MatchesBatchDecisionForDecisionOnSimulatedStreams) {
  for (const auto id :
       {parse::SystemId::kLiberty, parse::SystemId::kBlueGeneL,
        parse::SystemId::kRedStorm}) {
    sim::SimOptions opts;
    opts.category_cap = 1200;
    opts.chatter_events = 0;
    const sim::Simulator simulator(id, opts);
    const auto alerts = simulator.ground_truth_alerts();
    ASSERT_FALSE(alerts.empty());

    filter::SimultaneousFilter batch(kT);
    stream::OnlineSimultaneousFilter online(kT);
    std::size_t i = 0;
    for (const auto& a : alerts) {
      ASSERT_EQ(batch.admit(a), online.offer(a)) << "alert " << i;
      // Eviction mid-stream must never change a later decision.
      if (++i % 512 == 0) online.evict_stale();
    }
    EXPECT_EQ(online.offered(), alerts.size());
  }
}

TEST(StreamFilter, RedundantWithinThresholdAcrossSources) {
  stream::OnlineSimultaneousFilter f(kT);
  EXPECT_TRUE(f.offer(make_alert(0, 3, 1)));
  // Same category from another source inside T: redundant (the
  // "simultaneous" in the name).
  EXPECT_FALSE(f.offer(make_alert(2 * util::kUsPerSec, 3, 9)));
  // Different category inside T: admitted.
  EXPECT_TRUE(f.offer(make_alert(3 * util::kUsPerSec, 4, 9)));
  // Same category after the redundant report refreshed the entry:
  // still within T of the refresh -> redundant.
  EXPECT_FALSE(f.offer(make_alert(6 * util::kUsPerSec, 3, 1)));
  EXPECT_EQ(f.admitted(), 2u);
  EXPECT_EQ(f.suppressed(), 2u);
}

TEST(StreamFilter, QuietGapClearsTable) {
  stream::OnlineSimultaneousFilter f(kT);
  EXPECT_TRUE(f.offer(make_alert(0, 1)));
  // Gap > T: the table is cleared, so the same category is fresh.
  EXPECT_TRUE(f.offer(make_alert(kT + util::kUsPerSec, 1)));
}

TEST(StreamFilter, StrictModeThrowsOnRegression) {
  stream::OnlineSimultaneousFilter f(kT, /*strict_order=*/true);
  EXPECT_TRUE(f.offer(make_alert(10 * util::kUsPerSec, 1)));
  EXPECT_THROW(f.offer(make_alert(9 * util::kUsPerSec, 1)),
               std::invalid_argument);
}

TEST(StreamFilter, LenientModeMatchesBatchOnRegressingStream) {
  // syslog second-granularity stamps can regress; the batch admit()
  // tolerates this, and lenient online mode must agree with it.
  std::vector<filter::Alert> alerts;
  alerts.push_back(make_alert(10 * util::kUsPerSec, 0));
  alerts.push_back(make_alert(9 * util::kUsPerSec, 1));   // regression
  alerts.push_back(make_alert(11 * util::kUsPerSec, 0));
  alerts.push_back(make_alert(30 * util::kUsPerSec, 0));  // after gap
  alerts.push_back(make_alert(29 * util::kUsPerSec, 1));  // regression

  filter::SimultaneousFilter batch(kT);
  stream::OnlineSimultaneousFilter online(kT, /*strict_order=*/false);
  for (const auto& a : alerts) {
    EXPECT_EQ(batch.admit(a), online.offer(a));
  }
}

TEST(StreamFilter, EvictStaleDropsProvablyDeadEntries) {
  stream::OnlineSimultaneousFilter f(kT);
  for (std::uint16_t c = 0; c < 8; ++c) {
    f.offer(make_alert(static_cast<util::TimeUs>(c) * util::kUsPerSec / 2, c));
  }
  EXPECT_GT(f.live_entries(), 0u);
  // Advance the watermark far past T, then evict: every entry is
  // older than watermark - T and provably unobservable.
  f.offer(make_alert(100 * util::kUsPerSec, 0));
  f.evict_stale();
  EXPECT_EQ(f.live_entries(), 1u);  // only the advancing alert itself
}

TEST(StreamFilter, CheckpointRoundTripContinuesIdentically) {
  sim::SimOptions opts;
  opts.category_cap = 800;
  opts.chatter_events = 0;
  const sim::Simulator simulator(parse::SystemId::kSpirit, opts);
  const auto alerts = simulator.ground_truth_alerts();
  ASSERT_GT(alerts.size(), 100u);
  const std::size_t cut = alerts.size() / 2;

  stream::OnlineSimultaneousFilter uninterrupted(kT);
  stream::OnlineSimultaneousFilter first_half(kT);
  for (std::size_t i = 0; i < cut; ++i) {
    uninterrupted.offer(alerts[i]);
    first_half.offer(alerts[i]);
  }

  std::stringstream buf;
  {
    stream::CheckpointWriter w(buf);
    first_half.save(w);
    ASSERT_TRUE(w.ok());
  }
  stream::OnlineSimultaneousFilter restored(kT);
  {
    stream::CheckpointReader r(buf);
    restored.load(r);
  }

  for (std::size_t i = cut; i < alerts.size(); ++i) {
    ASSERT_EQ(uninterrupted.offer(alerts[i]), restored.offer(alerts[i]))
        << "post-restore divergence at alert " << i;
  }
  EXPECT_EQ(uninterrupted.admitted(), restored.admitted());
  EXPECT_EQ(uninterrupted.watermark(), restored.watermark());
}

}  // namespace
}  // namespace wss
