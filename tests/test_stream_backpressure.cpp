// Ingestion backpressure: exact drop accounting under kDropOldest,
// losslessness under kBlock, and an (env-gated) paced soak that runs
// the full producer/consumer engine for a configurable stretch of
// wall time -- the CI nightly stress job sets WSS_SOAK_SECONDS.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "sim/generator.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"

namespace wss {
namespace {

stream::StreamItem item(std::uint64_t index) {
  stream::StreamItem it;
  it.index = index;
  return it;
}

TEST(Backpressure, DropOldestEvictsExactlyAndInOrder) {
  // Single-threaded: capacity 4, push 10. The ring must hold the 4
  // newest items and have counted exactly 6 evictions.
  stream::IngestRing ring(4, stream::BackpressurePolicy::kDropOldest);
  ASSERT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(ring.push(item(i)));
  }
  EXPECT_EQ(ring.dropped(), 6u);
  ring.close();
  std::vector<std::uint64_t> got;
  while (auto it = ring.pop()) got.push_back(it->index);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(Backpressure, CapacityHintRoundsUpToPowerOfTwo) {
  stream::IngestRing ring(5, stream::BackpressurePolicy::kBlock);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(Backpressure, DropOldestAccountingBalancesUnderConcurrency) {
  // A deliberately slow consumer against a fast producer: whatever
  // happens, delivered + dropped must equal pushed, and delivered
  // indices must be strictly increasing (drops only remove a prefix
  // of the unconsumed window, never reorder).
  constexpr std::uint64_t kTotal = 20000;
  stream::IngestRing ring(16, stream::BackpressurePolicy::kDropOldest);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      ring.push(item(i));
    }
    ring.close();
  });

  std::uint64_t delivered = 0;
  std::uint64_t last = 0;
  bool first = true;
  bool monotone = true;
  while (auto it = ring.pop()) {
    ++delivered;
    if (!first && it->index <= last) monotone = false;
    last = it->index;
    first = false;
    if (delivered % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  producer.join();

  EXPECT_TRUE(monotone);
  EXPECT_EQ(delivered + ring.dropped(), kTotal);
  EXPECT_GT(ring.dropped(), 0u);  // the slow consumer must have lost some
}

TEST(Backpressure, BlockPolicyLosesNothing) {
  constexpr std::uint64_t kTotal = 50000;
  stream::IngestRing ring(8, stream::BackpressurePolicy::kBlock);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) ring.push(item(i));
    ring.close();
  });

  std::uint64_t delivered = 0;
  std::uint64_t expect_index = 0;
  bool in_order = true;
  while (auto it = ring.pop()) {
    if (it->index != expect_index) in_order = false;
    ++expect_index;
    ++delivered;
  }
  producer.join();

  EXPECT_TRUE(in_order);
  EXPECT_EQ(delivered, kTotal);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Backpressure, PushAfterCloseIsRejectedNotCounted) {
  stream::IngestRing ring(4, stream::BackpressurePolicy::kDropOldest);
  ring.close();
  EXPECT_FALSE(ring.push(item(0)));
  EXPECT_EQ(ring.dropped(), 0u);
}

// Paced end-to-end soak. Runs only when WSS_SOAK_SECONDS is set (the
// nightly stress job exports it); a bare `ctest` finishes instantly.
// The producer replays a simulated Liberty log at a pace chosen so the
// replay spans the requested wall time, through a small blocking ring,
// into the full streaming engine under tsan-visible concurrency; the
// result must still be bit-identical to the batch pipeline.
TEST(Backpressure, PacedSoakMatchesBatch) {
  const char* soak = std::getenv("WSS_SOAK_SECONDS");
  if (soak == nullptr) {
    GTEST_SKIP() << "set WSS_SOAK_SECONDS to run the paced soak";
  }
  const double wall_seconds = std::max(1.0, std::atof(soak));

  sim::SimOptions opts;
  opts.category_cap = 2000;
  opts.chatter_events = 20000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, opts);
  const auto& events = simulator.events();
  ASSERT_GT(events.size(), 1000u);
  const double sim_span_s =
      static_cast<double>(events.back().time - events.front().time) /
      static_cast<double>(util::kUsPerSec);

  sim::ReplayOptions ropts;
  ropts.speed = sim_span_s / wall_seconds;  // finish in ~wall_seconds
  const sim::Replayer replayer(simulator, ropts);

  stream::IngestRing ring(256, stream::BackpressurePolicy::kBlock);
  std::thread producer([&] {
    replayer.run([&](std::size_t i, const sim::SimEvent& e,
                     std::string&& line) {
      stream::StreamItem it;
      it.index = i;
      it.event = e;
      it.line = std::move(line);
      return ring.push(std::move(it));
    });
    ring.close();
  });

  stream::StreamPipeline pipeline(parse::SystemId::kLiberty);
  while (auto it = ring.pop()) {
    pipeline.ingest(it->event, it->line);
  }
  producer.join();
  pipeline.finish();

  core::PipelineOptions popts;
  const auto batch = core::run_pipeline(simulator, popts);
  const auto snap = pipeline.snapshot();
  EXPECT_EQ(snap.events, events.size());
  EXPECT_EQ(snap.weighted_messages, batch.weighted_messages);
  EXPECT_EQ(snap.weighted_bytes, batch.weighted_bytes);
  EXPECT_EQ(ring.dropped(), 0u);
}

}  // namespace
}  // namespace wss
