// Equivalence of the per-segment parallel simultaneous filter with the
// serial Algorithm 3.1 reference. The clear(X) rule is why segments
// split at quiet gaps > T are independent: no table entry survives
// such a gap, so running a fresh filter per segment changes nothing.
#include "filter/simultaneous.hpp"

#include <gtest/gtest.h>

#include "sim/generator.hpp"
#include "util/rng.hpp"

namespace wss::filter {
namespace {

constexpr util::TimeUs kT = 5 * util::kUsPerSec;

/// Bursty synthetic stream: clusters of near-simultaneous alerts with
/// occasional quiet gaps larger than T.
std::vector<Alert> bursty_stream(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<Alert> out;
  util::TimeUs t = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    Alert a;
    a.time = t;
    a.source = static_cast<std::uint32_t>(rng.uniform_i64(0, 30));
    a.category = static_cast<std::uint16_t>(rng.uniform_i64(0, 8));
    out.push_back(a);
    // 1-in-12 chance of a quiet gap; otherwise stay inside the burst.
    if (rng.uniform_i64(0, 11) == 0) {
      t += kT + 1 + static_cast<util::TimeUs>(rng.uniform_i64(0, 1000000));
    } else {
      t += static_cast<util::TimeUs>(rng.uniform_i64(0, 2000000));
    }
  }
  return out;
}

std::vector<Alert> serial_reference(const std::vector<Alert>& in,
                                    bool use_clear) {
  SimultaneousFilter f(kT, use_clear);
  return apply_filter(f, in);
}

void expect_same(const std::vector<Alert>& a, const std::vector<Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].time == b[i].time && a[i].source == b[i].source &&
                a[i].category == b[i].category)
        << "alert " << i;
  }
}

TEST(ShardedSimultaneous, MatchesSerialOnBurstyStreams) {
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const auto in = bursty_stream(seed, 4000);
    const auto expected = serial_reference(in, /*use_clear=*/true);
    for (const int threads : {1, 2, 4, 7}) {
      expect_same(expected,
                  apply_simultaneous_parallel(in, kT, threads));
    }
  }
}

TEST(ShardedSimultaneous, MatchesSerialWithoutClearOptimization) {
  const auto in = bursty_stream(42, 3000);
  const auto expected = serial_reference(in, /*use_clear=*/false);
  for (const int threads : {2, 7}) {
    expect_same(expected, apply_simultaneous_parallel(
                              in, kT, threads,
                              /*use_clear_optimization=*/false));
  }
}

TEST(ShardedSimultaneous, MatchesSerialOnSimulatedGroundTruth) {
  sim::SimOptions opts;
  opts.category_cap = 600;
  opts.chatter_events = 2000;
  for (const auto id :
       {parse::SystemId::kSpirit, parse::SystemId::kBlueGeneL}) {
    const sim::Simulator simulator(id, opts);
    const auto alerts = simulator.ground_truth_alerts();
    const auto expected = serial_reference(alerts, true);
    for (const int threads : {2, 4, 7}) {
      expect_same(expected,
                  apply_simultaneous_parallel(alerts, kT, threads));
    }
  }
}

TEST(ShardedSimultaneous, SegmentBoundariesAreQuietGaps) {
  std::vector<Alert> in(5);
  in[0].time = 0;
  in[1].time = kT;          // gap == T: same segment (clear needs > T)
  in[2].time = 2 * kT + 1;  // gap == T+1: new segment
  in[3].time = 2 * kT + 2;
  in[4].time = 10 * kT;     // new segment
  const auto starts = quiet_gap_segments(in, kT);
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 2, 4}));
}

TEST(ShardedSimultaneous, EmptyStream) {
  EXPECT_TRUE(quiet_gap_segments({}, kT).empty());
  EXPECT_TRUE(apply_simultaneous_parallel({}, kT, 4).empty());
}

TEST(ShardedSimultaneous, ThrowsOnUnsortedInput) {
  std::vector<Alert> in(2);
  in[0].time = 100;
  in[1].time = 50;
  EXPECT_THROW(apply_simultaneous_parallel(in, kT, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace wss::filter
