// The expert-rule catalog: structure, counts against Table 4, and
// rule <-> renderer consistency.
#include <gtest/gtest.h>

#include <set>

#include "tag/engine.hpp"
#include "tag/rulesets.hpp"

namespace wss::tag {
namespace {

using parse::SystemId;

TEST(Rulesets, CategoryCountsMatchPaper) {
  // Table 2 "Categories": 41 + 10 + 12 + 8 + 6 = 77 total.
  EXPECT_EQ(categories_of(SystemId::kBlueGeneL).size(), 41u);
  EXPECT_EQ(categories_of(SystemId::kThunderbird).size(), 10u);
  EXPECT_EQ(categories_of(SystemId::kRedStorm).size(), 12u);
  EXPECT_EQ(categories_of(SystemId::kSpirit).size(), 8u);
  EXPECT_EQ(categories_of(SystemId::kLiberty).size(), 6u);
  EXPECT_EQ(category_table().size(), 77u);
}

TEST(Rulesets, RawCountsSumToTable2Totals) {
  const std::uint64_t expected[] = {348460, 3248239, 1665744,
                                    172816563,  // Table 4 sum; see DESIGN.md
                                    2452};
  for (const auto id : parse::kAllSystems) {
    std::uint64_t raw = 0;
    for (const auto* c : categories_of(id)) raw += c->raw_count;
    EXPECT_EQ(raw, expected[static_cast<std::size_t>(id)])
        << parse::system_name(id);
  }
}

TEST(Rulesets, FilteredCountsSumToTable4Totals) {
  const std::uint64_t expected[] = {1202, 2088, 1430, 4875, 1050};
  for (const auto id : parse::kAllSystems) {
    std::uint64_t filtered = 0;
    for (const auto* c : categories_of(id)) filtered += c->filtered_count;
    EXPECT_EQ(filtered, expected[static_cast<std::size_t>(id)])
        << parse::system_name(id);
  }
}

TEST(Rulesets, GrandTotalsMatchAbstract) {
  // "178,081,459 alert messages in 77 categories" (+/- the paper's
  // internal off-by-one in Spirit, documented in DESIGN.md).
  std::uint64_t raw = 0;
  for (const auto& c : category_table()) raw += c.raw_count;
  EXPECT_EQ(raw, 178081458u);
}

TEST(Rulesets, Table3TypeTotalsMatch) {
  double raw[3] = {0, 0, 0};
  std::uint64_t filtered[3] = {0, 0, 0};
  for (const auto& c : category_table()) {
    raw[static_cast<std::size_t>(c.type)] += static_cast<double>(c.raw_count);
    filtered[static_cast<std::size_t>(c.type)] += c.filtered_count;
  }
  EXPECT_DOUBLE_EQ(raw[0], 174586516.0);  // Hardware: exact
  EXPECT_DOUBLE_EQ(raw[1], 144899.0);     // Software: exact
  EXPECT_DOUBLE_EQ(raw[2], 3350043.0);    // Indeterminate: paper says ...44
  EXPECT_EQ(filtered[0], 1999u);
  EXPECT_EQ(filtered[1], 6814u);
  EXPECT_EQ(filtered[2], 1832u);
}

TEST(Rulesets, FilteredNeverExceedsRaw) {
  for (const auto& c : category_table()) {
    EXPECT_LE(c.filtered_count, c.raw_count) << c.name;
    EXPECT_GE(c.raw_count, 1u) << c.name;
  }
}

TEST(Rulesets, NamesUniquePerSystem) {
  for (const auto id : parse::kAllSystems) {
    std::set<std::string> names;
    for (const auto* c : categories_of(id)) {
      EXPECT_TRUE(names.insert(c->name).second) << c->name;
    }
  }
}

TEST(Rulesets, FindCategory) {
  const auto* c = find_category(SystemId::kSpirit, "EXT_CCISS");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->raw_count, 103818910u);
  EXPECT_EQ(find_category(SystemId::kSpirit, "VAPI"), nullptr);
}

TEST(Rulesets, BuildRulesetAlignsWithCatalog) {
  for (const auto id : parse::kAllSystems) {
    const RuleSet rs = build_ruleset(id);
    const auto cats = categories_of(id);
    ASSERT_EQ(rs.size(), cats.size());
    for (std::size_t i = 0; i < cats.size(); ++i) {
      EXPECT_EQ(rs.category_name(static_cast<std::uint16_t>(i)),
                cats[i]->name);
      EXPECT_EQ(rs.rules()[i].type, cats[i]->type);
    }
    EXPECT_EQ(rs.index_of("definitely-not-a-category"), RuleSet::npos);
  }
}

TEST(Rulesets, PaperExampleBodiesMatchTheirRules) {
  // Spot-check the example bodies printed in Table 4 against our
  // rules (anonymized brackets replaced with plausible text).
  const struct {
    SystemId system;
    const char* category;
    const char* line;
  } cases[] = {
      {SystemId::kBlueGeneL, "KERNDTLB", "RAS KERNEL FATAL data TLB error interrupt"},
      {SystemId::kBlueGeneL, "KERNRTSP", "RAS KERNEL FATAL rts panic! - stopping execution"},
      {SystemId::kThunderbird, "VAPI",
       "kernel: [KERNEL_IB][ib_sm_sweep.c:1455]Fatal error (Local Catastrophic Error)"},
      {SystemId::kThunderbird, "NMI",
       "kernel: Uhhuh. NMI received. Dazed and confused, but trying to continue"},
      {SystemId::kRedStorm, "TOAST",
       "ec_console_log src:::c0-0c0s0n0 svc:::c0-0c0s0n0 PANIC_SP WE ARE TOASTED!"},
      {SystemId::kRedStorm, "BUS_PAR",
       "DMT_HINT Warning: Verify Host 2 bus parity error: 0200 Tier:5 LUN:4"},
      {SystemId::kSpirit, "EXT_CCISS",
       "kernel: cciss: cmd 0000010000a60000 has CHECK CONDITION, sense key = 0x3"},
      {SystemId::kLiberty, "PBS_CHK",
       "pbs_mom: task_check, cannot tm_reply to 1336.ladmin1 task 1"},
  };
  for (const auto& c : cases) {
    const RuleSet rs = build_ruleset(c.system);
    const TagEngine engine(rs);
    const auto tagged = engine.tag_line(c.line);
    ASSERT_TRUE(tagged.has_value()) << c.line;
    EXPECT_EQ(rs.category_name(tagged->category), c.category) << c.line;
  }
}

TEST(Rulesets, ApportionExactAndPositive) {
  const auto parts = apportion(7186, 31);
  ASSERT_EQ(parts.size(), 31u);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_GE(parts[i], 1u);
    if (i > 0) {
      EXPECT_LE(parts[i], parts[i - 1]);  // decreasing
    }
    sum += parts[i];
  }
  EXPECT_EQ(sum, 7186u);
  EXPECT_TRUE(apportion(10, 0).empty());
  // total < n still sums reasonably (all ones).
  const auto tight = apportion(3, 5);
  std::uint64_t tsum = 0;
  for (auto v : tight) tsum += v;
  EXPECT_GE(tsum, 3u);
}

TEST(Rulesets, RuleCountBoundedByCandidateBitsetWidth) {
  // The tag engine's candidate bitsets are kCandidateBitsetWords
  // uint64 words; RuleSet construction must reject anything wider,
  // loudly, at build time rather than corrupting memory at tag time.
  auto make_rules = [](std::size_t n) {
    std::vector<Rule> rules(n);
    for (std::size_t i = 0; i < n; ++i) {
      rules[i].category = "CAT" + std::to_string(i);
      rules[i].predicate.add_term(0, "pattern" + std::to_string(i));
    }
    return rules;
  };
  // At the cap: fine.
  EXPECT_NO_THROW(RuleSet(SystemId::kLiberty, make_rules(kMaxRules)));
  // One past the cap: a clear, actionable error.
  try {
    const RuleSet rs(SystemId::kLiberty, make_rules(kMaxRules + 1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1024"), std::string::npos) << what;
    EXPECT_NE(what.find("kCandidateBitsetWords"), std::string::npos) << what;
  }
}

TEST(Rulesets, OperationalContextExampleIsNotTagged) {
  // "BGLMASTER FAILURE ciodb exited normally with exit code 0" must
  // NOT be tagged (only with operational context could the paper call
  // it innocuous -- but the experts did not tag it as an alert).
  const TagEngine engine(build_ruleset(SystemId::kBlueGeneL));
  EXPECT_FALSE(engine.tag_line(
      "1117838570 2005.06.03 R63-M0-NF 2005-06-03-15.42.50.363779 R63-M0-NF "
      "RAS MASTER FAILURE BGLMASTER FAILURE ciodb exited normally with exit "
      "code 0"));
}

TEST(Rulesets, KernelPanicFieldRule) {
  // The awk rule ($7 ~ /KERNEL/ && /kernel panic/) in our field layout.
  const RuleSet rs = build_ruleset(SystemId::kBlueGeneL);
  const TagEngine engine(rs);
  const auto hit = engine.tag_line(
      "1 2005.06.03 R00-M0-N0 2005-06-03-00.00.00.000000 R00-M0-N0 RAS "
      "KERNEL FATAL kernel panic");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(rs.category_name(hit->category), "KPANIC");
  // Same body under the APP facility must not match the field term.
  EXPECT_FALSE(engine.tag_line(
      "1 2005.06.03 R00-M0-N0 2005-06-03-00.00.00.000000 R00-M0-N0 RAS "
      "APP FATAL kernel panic"));
}

}  // namespace
}  // namespace wss::tag
