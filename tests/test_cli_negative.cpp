// Negative-path CLI sweep: every malformed invocation must exit
// non-zero with a single-line diagnostic on stderr -- never a silent
// default, never a crash, never a page of usage for a typo.
//
// Exit-code convention: 2 for usage errors (bad flags/values), 1 for
// runtime I/O failures (missing input, unwritable output).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "cli/commands.hpp"

namespace wss::cli {
namespace {

namespace fs = std::filesystem;

Args make_args(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"wss"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

class CliNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_neg_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_tokens(std::vector<std::string> tokens) {
    out_.str("");
    err_.str("");
    return run(make_args(std::move(tokens)), out_, err_);
  }

  /// The error contract: exactly one line, newline-terminated,
  /// containing `needle`.
  void expect_one_line_error(const std::string& needle) {
    const std::string msg = err_.str();
    ASSERT_FALSE(msg.empty());
    EXPECT_EQ(msg.back(), '\n');
    EXPECT_EQ(std::count(msg.begin(), msg.end(), '\n'), 1)
        << "expected a one-line diagnostic, got:\n" << msg;
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "diagnostic missing '" << needle << "':\n" << msg;
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliNegativeTest, UnknownFlagRejectedByEveryCommand) {
  const std::string x = (dir_ / "x").string();
  const std::vector<std::vector<std::string>> cases = {
      {"generate", "--system", "liberty", "--out", x, "--bogus", "1"},
      {"analyze", "--system", "liberty", "--in", x, "--bogus", "1"},
      {"anonymize", "--in", x, "--out", x + "2", "--bogus", "1"},
      {"mine", "--in", x, "--bogus", "1"},
      {"tables", "--which", "1", "--bogus", "1"},
      {"study", "--system", "liberty", "--bogus", "1"},
      {"stream", "--system", "liberty", "--bogus", "1"},
  };
  for (const auto& tokens : cases) {
    SCOPED_TRACE(tokens.front());
    EXPECT_EQ(run_tokens(tokens), 2);
    expect_one_line_error("unknown flag --bogus");
  }
}

TEST_F(CliNegativeTest, ThreadsZeroRejected) {
  // 0 used to mean "all cores"; that spelling is now 'auto', and 0 is
  // a loud error (a zero-thread pipeline is always a mistake).
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--threads", "0"}),
            2);
  expect_one_line_error("--threads must be >= 1");
  EXPECT_EQ(run_tokens({"tables", "--which", "1", "--threads", "0"}), 2);
  expect_one_line_error("--threads must be >= 1");
}

TEST_F(CliNegativeTest, ThreadsNegativeRejected) {
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--threads", "-4"}),
            2);
  expect_one_line_error("--threads");
}

TEST_F(CliNegativeTest, ThreadsNonNumericRejected) {
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--threads", "two"}),
            2);
  expect_one_line_error("'two' is not a thread count");
}

TEST_F(CliNegativeTest, ThreadsAutoAccepted) {
  // Positive control: the documented spelling for "all cores" works.
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--threads", "auto",
                        "--cap", "200", "--chatter", "1000"}),
            0);
  EXPECT_TRUE(err_.str().empty()) << err_.str();
}

TEST_F(CliNegativeTest, EmptyMetricsPathRejected) {
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--metrics="}), 2);
  expect_one_line_error("--metrics requires a file path");
}

TEST_F(CliNegativeTest, UnwritableMetricsPathFails) {
  const std::string path = (dir_ / "no-such-dir" / "m.json").string();
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--cap", "200",
                        "--chatter", "1000", "--metrics", path}),
            1);
  expect_one_line_error("metrics: cannot open");
}

TEST_F(CliNegativeTest, CheckpointRestoreSamePathRejected) {
  const std::string ckpt = (dir_ / "state.ckpt").string();
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--checkpoint",
                        ckpt, "--restore", ckpt}),
            2);
  expect_one_line_error("--checkpoint and --restore");
}

TEST_F(CliNegativeTest, StreamRejectsBadPolicyAndQueue) {
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--policy", "lifo"}),
            2);
  expect_one_line_error("--policy must be block or drop-oldest");
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--queue", "0"}), 2);
  expect_one_line_error("--queue");
}

TEST_F(CliNegativeTest, StreamRestoreFromMissingFileFails) {
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--restore",
                        (dir_ / "nope.ckpt").string()}),
            1);
  expect_one_line_error("cannot open");
}

TEST_F(CliNegativeTest, StudyRejectsUnknownSystemAndBadThreshold) {
  EXPECT_EQ(run_tokens({"study", "--system", "nope"}), 2);
  expect_one_line_error("unknown system 'nope'");
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--threshold", "0"}),
            2);
  expect_one_line_error("--threshold must be positive");
}

TEST_F(CliNegativeTest, TablesRejectsWhichOutOfRange) {
  EXPECT_EQ(run_tokens({"tables", "--which", "7"}), 2);
  expect_one_line_error("--which must be 1..6");
}

TEST_F(CliNegativeTest, NonNumericValueBecomesOneLineCommandError) {
  // A stray throw inside a command must surface as "<cmd>: <what>",
  // one line, exit 2 -- the run() catch-all contract.
  EXPECT_EQ(run_tokens({"study", "--system", "liberty", "--seed", "abc"}), 2);
  const std::string msg = err_.str();
  EXPECT_EQ(msg.rfind("study: ", 0), 0u) << msg;
  EXPECT_EQ(std::count(msg.begin(), msg.end(), '\n'), 1) << msg;
}

TEST_F(CliNegativeTest, MissingInputFileIsOneLineError) {
  EXPECT_EQ(run_tokens({"analyze", "--system", "liberty", "--in",
                        (dir_ / "nope.log").string()}),
            1);
  const std::string msg = err_.str();
  EXPECT_EQ(msg.rfind("analyze: ", 0), 0u) << msg;
  EXPECT_EQ(std::count(msg.begin(), msg.end(), '\n'), 1) << msg;
}

// ---- Online prediction flags (stream/serve --predict family) ----

TEST_F(CliNegativeTest, PredictSatelliteFlagsRequirePredict) {
  for (const auto& cmd : {std::string("stream"), std::string("serve")}) {
    SCOPED_TRACE(cmd);
    EXPECT_EQ(run_tokens({cmd, "--system", "liberty", "--predict-train",
                          "100"}),
              2);
    expect_one_line_error("require --predict");
    EXPECT_EQ(run_tokens({cmd, "--system", "liberty", "--predict-horizon",
                          "600"}),
              2);
    expect_one_line_error("require --predict");
  }
}

TEST_F(CliNegativeTest, PredictTrainRejectsNonNumericAndZero) {
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--predict",
                        "--predict-train", "many"}),
            2);
  expect_one_line_error("--predict-train wants a training alert count >= 1");
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--predict",
                        "--predict-train", "0"}),
            2);
  expect_one_line_error("--predict-train wants a training alert count >= 1");
}

TEST_F(CliNegativeTest, PredictHorizonRejectsNonPositive) {
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--predict",
                        "--predict-horizon", "0"}),
            2);
  expect_one_line_error("--predict-horizon wants a window in seconds > 0");
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--predict",
                        "--predict-horizon", "-5"}),
            2);
  expect_one_line_error("--predict-horizon wants a window in seconds > 0");
  EXPECT_EQ(run_tokens({"serve", "--predict", "--predict-horizon", "soon"}),
            2);
  expect_one_line_error("--predict-horizon wants a window in seconds > 0");
}

TEST_F(CliNegativeTest, PredictRestoreFromNonPredictCheckpointStillWorks) {
  // Compatibility direction that must NOT error: a checkpoint written
  // WITHOUT --predict restores into a --predict invocation (the
  // checkpoint's own options win; v3 carries them explicitly).
  const std::string ckpt = (dir_ / "plain.ckpt").string();
  ASSERT_EQ(run_tokens({"stream", "--system", "liberty", "--cap", "200",
                        "--chatter", "1000", "--checkpoint", ckpt}),
            0)
      << err_.str();
  EXPECT_EQ(run_tokens({"stream", "--system", "liberty", "--cap", "200",
                        "--chatter", "1000", "--predict", "--restore", ckpt}),
            0)
      << err_.str();
}

// ---- Distributed study commands (study --split-by, worker, merge) ----

TEST_F(CliNegativeTest, StudySplitRejectsZeroSplits) {
  EXPECT_EQ(run_tokens({"study", "--split-by", "time", "--num-splits", "0",
                        "--manifest-dir", (dir_ / "m").string()}),
            2);
  expect_one_line_error("--num-splits must be >= 1");
}

TEST_F(CliNegativeTest, StudySplitRejectsUnknownAxis) {
  EXPECT_EQ(run_tokens({"study", "--split-by", "hostname", "--manifest-dir",
                        (dir_ / "m").string()}),
            2);
  expect_one_line_error("--split-by must be system, category, or time");
}

TEST_F(CliNegativeTest, StudySplitRequiresManifestDir) {
  EXPECT_EQ(run_tokens({"study", "--split-by", "time", "--num-splits", "2"}),
            2);
  expect_one_line_error("--split-by requires --manifest-dir");
}

TEST_F(CliNegativeTest, StudySplitFlagsWithoutSplitByRejected) {
  EXPECT_EQ(run_tokens({"study", "--num-splits", "2"}), 2);
  expect_one_line_error("require --split-by");
  EXPECT_EQ(run_tokens({"study", "--manifest-dir", (dir_ / "m").string()}),
            2);
  expect_one_line_error("require --split-by");
}

TEST_F(CliNegativeTest, WorkerRequiresAssignmentIdAndManifestDir) {
  EXPECT_EQ(run_tokens({"worker", "--manifest-dir", (dir_ / "m").string()}),
            2);
  expect_one_line_error("worker requires an assignment id");
  EXPECT_EQ(run_tokens({"worker", "0"}), 2);
  expect_one_line_error("worker requires --manifest-dir");
}

TEST_F(CliNegativeTest, WorkerRejectsNonNumericId) {
  EXPECT_EQ(run_tokens({"worker", "zero", "--manifest-dir",
                        (dir_ / "m").string()}),
            2);
  expect_one_line_error("not an assignment id");
}

TEST_F(CliNegativeTest, WorkerIdOutOfRangeIsUsageError) {
  // A real (tiny) manifest with 2 assignments; id 5 must be a loud
  // usage error, not an I/O failure.
  const std::string mdir = (dir_ / "m").string();
  ASSERT_EQ(run_tokens({"study", "--split-by", "time", "--num-splits", "2",
                        "--manifest-dir", mdir, "--system", "bgl", "--cap",
                        "200", "--chatter", "500"}),
            0)
      << err_.str();
  EXPECT_EQ(run_tokens({"worker", "5", "--manifest-dir", mdir}), 2);
  expect_one_line_error("id 5 out of range [0, 2)");
}

TEST_F(CliNegativeTest, WorkerMissingManifestDirectoryIsIoError) {
  EXPECT_EQ(run_tokens({"worker", "0", "--manifest-dir",
                        (dir_ / "nope").string()}),
            1);
  expect_one_line_error("cannot open");
}

TEST_F(CliNegativeTest, MergeRequiresManifestDir) {
  EXPECT_EQ(run_tokens({"merge"}), 2);
  expect_one_line_error("merge requires --manifest-dir");
}

TEST_F(CliNegativeTest, MergeMissingManifestDirectoryIsIoError) {
  EXPECT_EQ(run_tokens({"merge", "--manifest-dir", (dir_ / "nope").string()}),
            1);
  expect_one_line_error("cannot open");
}

TEST_F(CliNegativeTest, DistCommandsRejectUnknownFlags) {
  const std::string mdir = (dir_ / "m").string();
  EXPECT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir, "--bogus",
                        "1"}),
            2);
  expect_one_line_error("unknown flag --bogus");
  EXPECT_EQ(run_tokens({"merge", "--manifest-dir", mdir, "--bogus", "1"}), 2);
  expect_one_line_error("unknown flag --bogus");
  EXPECT_EQ(run_tokens({"study", "--split-by", "time", "--manifest-dir",
                        mdir, "--bogus", "1"}),
            2);
  expect_one_line_error("unknown flag --bogus");
}

}  // namespace
}  // namespace wss::cli
