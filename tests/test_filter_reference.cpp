// Cross-checks the streaming filters against reference
// implementations transcribed literally from the paper's definitions,
// over randomized streams.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "filter/serial.hpp"
#include "filter/simultaneous.hpp"
#include "util/rng.hpp"

namespace wss::filter {
namespace {

using util::kUsPerSec;
constexpr util::TimeUs T = 5 * kUsPerSec;

/// Algorithm 3.1, verbatim from the paper's pseudocode:
///
///   l <- 0
///   for i <- 1 to N:
///     if t_i - l > T then clear(X)
///     l <- t_i
///     if c_i in X and t_i - X[c_i] < T: X[c_i] <- t_i
///     else: X[c_i] <- t_i; output(a_i)
std::vector<Alert> reference_logfilter(const std::vector<Alert>& a) {
  std::vector<Alert> out;
  util::TimeUs l = 0;
  std::map<std::uint16_t, util::TimeUs> x;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0 && a[i].time - l > T) x.clear();
    l = a[i].time;
    const auto it = x.find(a[i].category);
    if (it != x.end() && a[i].time - it->second < T) {
      it->second = a[i].time;
    } else {
      x[a[i].category] = a[i].time;
      out.push_back(a[i]);
    }
  }
  return out;
}

/// Reference temporal filter: per (source, category) sliding window,
/// straight from the Section 3.3.2 definition.
std::vector<Alert> reference_temporal(const std::vector<Alert>& a) {
  std::vector<Alert> out;
  std::map<std::pair<std::uint32_t, std::uint16_t>, util::TimeUs> last;
  for (const Alert& al : a) {
    const auto key = std::make_pair(al.source, al.category);
    const auto it = last.find(key);
    const bool redundant = it != last.end() && al.time - it->second < T;
    last[key] = al.time;
    if (!redundant) out.push_back(al);
  }
  return out;
}

/// Reference spatial filter: "removes an alert if some other source
/// had previously reported that alert within T seconds" -- checked
/// against the complete per-source history (O(n * sources), exact).
std::vector<Alert> reference_spatial(const std::vector<Alert>& a) {
  std::vector<Alert> out;
  std::map<std::uint16_t, std::map<std::uint32_t, util::TimeUs>> last;
  for (const Alert& al : a) {
    bool redundant = false;
    for (const auto& [src, t] : last[al.category]) {
      if (src != al.source && al.time - t < T) {
        redundant = true;
        break;
      }
    }
    last[al.category][al.source] = al.time;
    if (!redundant) out.push_back(al);
  }
  return out;
}

std::vector<Alert> random_stream(util::Rng& rng, std::size_t n,
                                 double mean_gap_s, std::uint32_t sources,
                                 std::uint16_t categories) {
  std::vector<Alert> out;
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(1.0 / mean_gap_s);
    Alert a;
    a.time = static_cast<util::TimeUs>(t * 1e6);
    a.source = static_cast<std::uint32_t>(rng.uniform_u64(sources));
    a.category = static_cast<std::uint16_t>(rng.uniform_u64(categories));
    out.push_back(a);
  }
  return out;
}

void expect_same(const std::vector<Alert>& a, const std::vector<Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << i;
    EXPECT_EQ(a[i].source, b[i].source) << i;
    EXPECT_EQ(a[i].category, b[i].category) << i;
  }
}

/// Parameterized over mean gaps spanning dense storms (0.5 s) to
/// sparse trickles (60 s) -- both sides of the T=5s threshold.
class FilterReferenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(FilterReferenceSweep, SimultaneousMatchesPaperPseudocode) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  for (int iter = 0; iter < 12; ++iter) {
    const auto stream = random_stream(rng, 800, GetParam(), 6, 4);
    SimultaneousFilter f(T);
    expect_same(apply_filter(f, stream), reference_logfilter(stream));
  }
}

TEST_P(FilterReferenceSweep, TemporalMatchesDefinition) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000) + 1);
  for (int iter = 0; iter < 12; ++iter) {
    const auto stream = random_stream(rng, 800, GetParam(), 6, 4);
    TemporalFilter f(T);
    expect_same(apply_filter(f, stream), reference_temporal(stream));
  }
}

TEST_P(FilterReferenceSweep, SpatialTwoSlotMatchesFullHistory) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000) + 2);
  for (int iter = 0; iter < 12; ++iter) {
    const auto stream = random_stream(rng, 800, GetParam(), 6, 4);
    SpatialFilter f(T);
    expect_same(apply_filter(f, stream), reference_spatial(stream));
  }
}

TEST_P(FilterReferenceSweep, SerialIsComposition) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000) + 3);
  for (int iter = 0; iter < 12; ++iter) {
    const auto stream = random_stream(rng, 800, GetParam(), 6, 4);
    SerialFilter f(T);
    expect_same(apply_filter(f, stream),
                reference_spatial(reference_temporal(stream)));
  }
}

INSTANTIATE_TEST_SUITE_P(GapScales, FilterReferenceSweep,
                         ::testing::Values(0.5, 2.0, 5.0, 12.0, 60.0));

}  // namespace
}  // namespace wss::filter
