// CLI tests: flag parsing and the generate/analyze/anonymize/tables
// round-trip through temp files.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "cli/commands.hpp"

namespace wss::cli {
namespace {

namespace fs = std::filesystem;

Args make_args(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"wss"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsParse, CommandAndFlags) {
  // Note: a space-separated value binds to the preceding flag, so
  // positionals go before flags (or use --flag=value).
  const auto args =
      make_args({"generate", "extra.txt", "--system", "liberty", "--seed=7",
                 "--verbose"});
  EXPECT_EQ(args.command(), "generate");
  EXPECT_EQ(args.get_or("system", ""), "liberty");
  EXPECT_EQ(args.get_int("seed", 0), 7);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "extra.txt");
}

TEST(ArgsParse, Defaults) {
  const auto args = make_args({"analyze"});
  EXPECT_EQ(args.get_or("system", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("seed", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("threshold", 5.0), 5.0);
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(ArgsParse, Errors) {
  EXPECT_THROW(make_args({"x", "--"}), std::invalid_argument);
  EXPECT_THROW(make_args({"x", "--a", "1", "--a", "2"}),
               std::invalid_argument);
  const auto args = make_args({"x", "--n", "abc"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("n", 0), std::invalid_argument);
}

TEST(ArgsParse, UnusedFlagsDetected) {
  const auto args = make_args({"x", "--known", "1", "--typo", "2"});
  (void)args.get("known");
  const auto stray = args.unused();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0], "typo");
}

class CliCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_tokens(std::vector<std::string> tokens) {
    out_.str("");
    err_.str("");
    return run(make_args(std::move(tokens)), out_, err_);
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliCommandTest, HelpAndUnknownCommand) {
  EXPECT_EQ(run_tokens({"help"}), 0);
  EXPECT_NE(out_.str().find("usage: wss"), std::string::npos);
  EXPECT_EQ(run_tokens({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("usage: wss"), std::string::npos);
}

TEST_F(CliCommandTest, GenerateRequiresFlags) {
  EXPECT_EQ(run_tokens({"generate"}), 2);
  EXPECT_NE(err_.str().find("--system"), std::string::npos);
  EXPECT_EQ(run_tokens({"generate", "--system", "nope", "--out", "x"}), 2);
}

TEST_F(CliCommandTest, GenerateAnalyzeRoundTrip) {
  const auto log = (dir_ / "log.txt").string();
  ASSERT_EQ(run_tokens({"generate", "--system", "liberty", "--out", log,
                        "--cap", "500", "--chatter", "3000", "--seed",
                        "11"}),
            0);
  EXPECT_NE(out_.str().find("Liberty"), std::string::npos);
  ASSERT_EQ(run_tokens({"analyze", "--system", "liberty", "--in", log}), 0);
  EXPECT_NE(out_.str().find("PBS_CHK"), std::string::npos);
  EXPECT_NE(out_.str().find("after filtering"), std::string::npos);
}

TEST_F(CliCommandTest, GenerateCompressedAnalyze) {
  const auto log = (dir_ / "log.wsc").string();
  ASSERT_EQ(run_tokens({"generate", "--system", "spirit", "--out", log,
                        "--cap", "500", "--chatter", "2000",
                        "--compressed"}),
            0);
  ASSERT_EQ(run_tokens({"analyze", "--system", "spirit", "--in", log}), 0);
  EXPECT_NE(out_.str().find("EXT_CCISS"), std::string::npos);
}

TEST_F(CliCommandTest, GenerateRejectsTypoFlag) {
  EXPECT_EQ(run_tokens({"generate", "--system", "liberty", "--out",
                        (dir_ / "x").string(), "--sed", "7"}),
            2);
  EXPECT_NE(err_.str().find("unknown flag --sed"), std::string::npos);
}

TEST_F(CliCommandTest, AnalyzeMissingFileFails) {
  EXPECT_EQ(run_tokens({"analyze", "--system", "liberty", "--in",
                        (dir_ / "nope").string()}),
            1);
}

TEST_F(CliCommandTest, AnalyzeRejectsBadThreshold) {
  EXPECT_EQ(run_tokens({"analyze", "--system", "liberty", "--in", "x",
                        "--threshold", "-1"}),
            2);
}

TEST_F(CliCommandTest, AnonymizeRoundTrip) {
  const auto log = (dir_ / "log.txt").string();
  const auto anon = (dir_ / "anon.txt").string();
  ASSERT_EQ(run_tokens({"generate", "--system", "tbird", "--out", log,
                        "--cap", "300", "--chatter", "2000"}),
            0);
  ASSERT_EQ(run_tokens({"anonymize", "--in", log, "--out", anon}), 0);
  // Anonymized log still analyzes to the same alert counts.
  ASSERT_EQ(run_tokens({"analyze", "--system", "tbird", "--in", log}), 0);
  const std::string before = out_.str();
  ASSERT_EQ(run_tokens({"analyze", "--system", "tbird", "--in", anon}), 0);
  EXPECT_EQ(out_.str(), before);
}

TEST_F(CliCommandTest, MineFindsTemplates) {
  const auto log = (dir_ / "log.txt").string();
  ASSERT_EQ(run_tokens({"generate", "--system", "liberty", "--out", log,
                        "--cap", "400", "--chatter", "3000"}),
            0);
  ASSERT_EQ(run_tokens({"mine", "--in", log, "--support", "20", "--top",
                        "50"}),
            0);
  EXPECT_NE(out_.str().find("templates"), std::string::npos);
  EXPECT_NE(out_.str().find("task_check, cannot tm_reply"),
            std::string::npos);
  EXPECT_EQ(run_tokens({"mine"}), 2);
}

TEST_F(CliCommandTest, TablesSelectsOne) {
  ASSERT_EQ(run_tokens({"tables", "--which", "1"}), 0);
  EXPECT_NE(out_.str().find("Table 1"), std::string::npos);
  EXPECT_EQ(out_.str().find("Table 5"), std::string::npos);
}

TEST_F(CliCommandTest, TablesRejectsNegativeThreads) {
  EXPECT_EQ(run_tokens({"tables", "--which", "1", "--threads", "-1"}), 2);
  EXPECT_NE(err_.str().find("--threads"), std::string::npos);
}

}  // namespace
}  // namespace wss::cli
