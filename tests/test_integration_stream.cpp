// Streamed-vs-batch equivalence across all five systems and multiple
// seeds: the online pipeline, fed one (event, line) pair at a time,
// must reproduce the batch pipeline accumulators, the Table 2-4
// ingredients, and the filtered alert sequence bit-for-bit.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiments.hpp"
#include "core/pipeline.hpp"
#include "core/study.hpp"
#include "stream/pipeline.hpp"
#include "tag/rulesets.hpp"

namespace wss {
namespace {

sim::SimOptions small_sim(std::uint64_t seed) {
  sim::SimOptions opts;
  opts.seed = seed;
  opts.category_cap = 1500;
  opts.chatter_events = 10000;
  return opts;
}

stream::StreamSnapshot stream_system(const sim::Simulator& simulator,
                                     std::vector<filter::Alert>* emitted) {
  stream::StreamPipeline pipeline(simulator.spec().id);
  if (emitted != nullptr) {
    pipeline.set_alert_sink(
        [emitted](const filter::Alert& a) { emitted->push_back(a); });
  }
  const auto& events = simulator.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    pipeline.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  pipeline.finish();
  return pipeline.snapshot();
}

TEST(StreamIntegration, MatchesBatchPipelineBitForBitAllSystemsTwoSeeds) {
  for (const std::uint64_t seed : {42ull, 7ull}) {
    for (const auto id : parse::kAllSystems) {
      SCOPED_TRACE(testing::Message()
                   << parse::system_short_name(id) << " seed " << seed);
      const sim::Simulator simulator(id, small_sim(seed));
      const auto snap = stream_system(simulator, nullptr);

      core::PipelineOptions popts;
      popts.collect_source_tallies = false;
      const auto batch = core::run_pipeline(simulator, popts);

      EXPECT_EQ(snap.events, simulator.events().size());
      EXPECT_EQ(snap.physical_messages, batch.physical_messages);
      // Plain == on doubles throughout: the contract is bit-identity,
      // not tolerance.
      EXPECT_EQ(snap.weighted_messages, batch.weighted_messages);
      EXPECT_EQ(snap.physical_bytes, batch.physical_bytes);
      EXPECT_EQ(snap.weighted_bytes, batch.weighted_bytes);
      EXPECT_EQ(snap.corrupted_source_lines, batch.corrupted_source_lines);
      EXPECT_EQ(snap.invalid_timestamp_lines, batch.invalid_timestamp_lines);
      ASSERT_EQ(snap.weighted_alert_counts.size(),
                batch.weighted_alert_counts.size());
      for (std::size_t c = 0; c < batch.weighted_alert_counts.size(); ++c) {
        EXPECT_EQ(snap.weighted_alert_counts[c],
                  batch.weighted_alert_counts[c])
            << "category " << c;
      }
      EXPECT_EQ(snap.physical_alert_counts, batch.physical_alert_counts);
      EXPECT_EQ(snap.categories_observed, batch.categories_observed);
      EXPECT_EQ(snap.tagging.true_positives, batch.tagging.true_positives);
      EXPECT_EQ(snap.tagging.false_positives, batch.tagging.false_positives);
      EXPECT_EQ(snap.tagging.true_negatives, batch.tagging.true_negatives);
      EXPECT_EQ(snap.tagging.false_negatives, batch.tagging.false_negatives);
    }
  }
}

TEST(StreamIntegration, EmittedSequenceEqualsBatchFilteredAlerts) {
  for (const std::uint64_t seed : {42ull, 7ull}) {
    core::StudyOptions sopts;
    sopts.sim = small_sim(seed);
    core::Study study(sopts);
    for (const auto id : parse::kAllSystems) {
      SCOPED_TRACE(testing::Message()
                   << parse::system_short_name(id) << " seed " << seed);
      std::vector<filter::Alert> emitted;
      stream_system(study.simulator(id), &emitted);

      const auto batch = core::filtered_alerts(study, id);
      ASSERT_EQ(emitted.size(), batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(emitted[i].time, batch[i].time) << "alert " << i;
        EXPECT_EQ(emitted[i].category, batch[i].category) << "alert " << i;
        EXPECT_EQ(emitted[i].source, batch[i].source) << "alert " << i;
        EXPECT_EQ(emitted[i].type, batch[i].type) << "alert " << i;
      }
    }
  }
}

TEST(StreamIntegration, Table2IngredientsMatchBatchRows) {
  core::StudyOptions sopts;
  sopts.sim = small_sim(42);
  core::Study study(sopts);
  for (const auto id : parse::kAllSystems) {
    SCOPED_TRACE(parse::system_short_name(id));
    const auto snap = stream_system(study.simulator(id), nullptr);
    const auto row = core::table2_row(study, id);
    EXPECT_EQ(snap.days, row.days);
    EXPECT_EQ(snap.measured_gb, row.measured_gb);
    EXPECT_EQ(snap.rate_bytes_per_sec, row.rate_bytes_per_sec);
    EXPECT_EQ(snap.messages, row.messages);
    EXPECT_EQ(snap.alerts, row.alerts);
    EXPECT_EQ(snap.categories_observed, row.categories);
    ASSERT_TRUE(snap.compressed_fraction.has_value());
    EXPECT_EQ(*snap.compressed_fraction, row.compressed_fraction);
  }
}

TEST(StreamIntegration, Table3And4IngredientsMatchBatch) {
  core::StudyOptions sopts;
  sopts.sim = small_sim(42);
  core::Study study(sopts);

  core::Table3Data from_stream;
  for (const auto id : parse::kAllSystems) {
    SCOPED_TRACE(parse::system_short_name(id));
    const auto snap = stream_system(study.simulator(id), nullptr);

    // Table 4: per-category raw (weighted) and filtered counts.
    const auto rows = core::table4_rows(study, id);
    ASSERT_EQ(rows.size(), snap.weighted_alert_counts.size());
    ASSERT_EQ(rows.size(), snap.filtered_counts.size());
    for (std::size_t c = 0; c < rows.size(); ++c) {
      EXPECT_EQ(snap.weighted_alert_counts[c], rows[c].raw_weighted)
          << rows[c].category;
      EXPECT_EQ(snap.filtered_counts[c], rows[c].filtered_measured)
          << rows[c].category;
    }

    // Accumulate the Table 3 view from stream snapshots.
    const auto cats = tag::categories_of(id);
    for (std::size_t c = 0; c < cats.size(); ++c) {
      from_stream.raw[static_cast<std::size_t>(cats[c]->type)] +=
          snap.weighted_alert_counts[c];
    }
    for (int t = 0; t < 3; ++t) {
      from_stream.filtered[t] += snap.filtered_by_type[t];
    }
  }

  const auto batch = core::table3(study);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(from_stream.filtered[t], batch.filtered[t]) << "type " << t;
    EXPECT_EQ(from_stream.raw[t], batch.raw[t]) << "type " << t;
  }
}

}  // namespace
}  // namespace wss
