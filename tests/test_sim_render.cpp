// Renderer tests: each system's line shape, determinism, and the
// render -> parse round-trip that the whole pipeline rests on.
#include "sim/render.hpp"

#include <gtest/gtest.h>

#include "parse/dispatch.hpp"
#include "sim/generator.hpp"
#include "util/strings.hpp"

namespace wss::sim {
namespace {

using parse::SystemId;

sim::SimOptions tiny() {
  SimOptions o;
  o.category_cap = 200;
  o.chatter_events = 1000;
  o.inject_corruption = false;
  return o;
}

TEST(Render, DeterministicPerIndex) {
  const Simulator sim(SystemId::kLiberty, tiny());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sim.line(i), sim.line(i));
  }
}

class RenderRoundTrip : public ::testing::TestWithParam<SystemId> {};

TEST_P(RenderRoundTrip, ParseRecoversGroundTruth) {
  const SystemId id = GetParam();
  const Simulator sim(id, tiny());
  const int year_hint = sim.spec().start_date.year;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < sim.events().size(); ++i) {
    const SimEvent& e = sim.events()[i];
    const std::string line = sim.renderer().render_clean(e, i);
    const auto rec =
        parse::parse_line(id, line, util::to_civil(e.time).year);
    (void)year_hint;
    EXPECT_TRUE(rec.timestamp_valid) << line;
    EXPECT_FALSE(rec.source_corrupted) << line;
    EXPECT_EQ(rec.source, sim.namer().name(e.source)) << line;
    // syslog stamps are second-granular; BG/L keeps microseconds.
    const util::TimeUs granularity =
        id == SystemId::kBlueGeneL ? 1 : util::kUsPerSec;
    EXPECT_EQ(rec.time / granularity, e.time / granularity) << line;
    // Severity survives where the path records it.
    const tag::LogPath p = sim.renderer().path_of(e);
    if (p == tag::LogPath::kBglRas || p == tag::LogPath::kRsSyslog ||
        p == tag::LogPath::kRsDdn) {
      EXPECT_EQ(rec.severity, e.severity) << line;
    } else {
      EXPECT_EQ(rec.severity, parse::Severity::kNone) << line;
    }
    ++checked;
    if (checked > 4000) break;  // plenty of coverage per system
  }
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, RenderRoundTrip, ::testing::ValuesIn(parse::kAllSystems),
    [](const ::testing::TestParamInfo<SystemId>& info) {
      return std::string(parse::system_short_name(info.param));
    });

TEST(Render, PlaceholdersExpanded) {
  const Simulator sim(SystemId::kThunderbird, tiny());
  for (std::size_t i = 0; i < sim.events().size(); ++i) {
    const std::string line = sim.line(i);
    EXPECT_EQ(line.find("{n}"), std::string::npos) << line;
    EXPECT_EQ(line.find("{ip}"), std::string::npos) << line;
    EXPECT_EQ(line.find("{hex}"), std::string::npos) << line;
  }
}

TEST(Render, BglLineShape) {
  const Simulator sim(SystemId::kBlueGeneL, tiny());
  const std::string line = sim.line(0);
  const auto fields = util::split_fields(line);
  ASSERT_GE(fields.size(), 9u);
  EXPECT_EQ(fields[5], "RAS");
  EXPECT_EQ(fields[2], fields[4]);  // location appears twice
}

TEST(Render, RsSyslogCarriesPriorityToken) {
  const Simulator sim(SystemId::kRedStorm, tiny());
  bool saw_priority = false;
  for (std::size_t i = 0; i < sim.events().size(); ++i) {
    const SimEvent& e = sim.events()[i];
    if (sim.renderer().path_of(e) == tag::LogPath::kRsSyslog) {
      const std::string line = sim.renderer().render_clean(e, i);
      if (line.find("kern.") != std::string::npos ||
          line.find("daemon.") != std::string::npos) {
        saw_priority = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_priority);
}

}  // namespace
}  // namespace wss::sim
