// Integration: the paper's filtering claims on full simulated systems.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/study.hpp"
#include "filter/score.hpp"
#include "filter/adaptive.hpp"
#include "filter/correlation_aware.hpp"
#include "filter/serial.hpp"
#include "filter/simultaneous.hpp"
#include "stats/correlation.hpp"
#include "tag/rulesets.hpp"

namespace wss::core {
namespace {

using parse::SystemId;

StudyOptions medium() {
  StudyOptions o;
  o.sim.category_cap = 20000;
  o.sim.chatter_events = 30000;
  return o;
}

TEST(FilteringClaims, AtMostOneExtraTruePositiveLostPerMachine) {
  // Section 3.3.2: "At most one true positive was removed on any
  // single machine [by the simultaneous filter versus serial], whereas
  // sometimes dozens of false positives were removed."
  Study study(medium());
  bool some_machine_dozens = false;
  for (const auto id : parse::kAllSystems) {
    const auto alerts = study.simulator(id).ground_truth_alerts();
    filter::SerialFilter serial(study.threshold());
    filter::SimultaneousFilter simultaneous(study.threshold());
    const auto s_score = filter::score_filter(serial, alerts);
    const auto x_score = filter::score_filter(simultaneous, alerts);

    EXPECT_LE(x_score.true_positives_lost, s_score.true_positives_lost + 1)
        << parse::system_name(id);
    EXPECT_LE(x_score.kept_alerts, s_score.kept_alerts)
        << parse::system_name(id);
    if (s_score.false_positives_kept >= x_score.false_positives_kept + 12) {
      some_machine_dozens = true;
    }
  }
  EXPECT_TRUE(some_machine_dozens);
}

TEST(FilteringClaims, SpiritShadowedFailureCase) {
  // The sn373/sn325 case: serial keeps sn325's independent disk
  // failure, simultaneous erroneously removes it.
  Study study(medium());
  const auto alerts =
      study.simulator(SystemId::kSpirit).ground_truth_alerts();
  filter::SerialFilter serial(study.threshold());
  filter::SimultaneousFilter simultaneous(study.threshold());
  const auto s = filter::score_filter(serial, alerts);
  const auto x = filter::score_filter(simultaneous, alerts);
  EXPECT_EQ(x.true_positives_lost, s.true_positives_lost + 1);
}

TEST(FilteringClaims, CompressionIsMassive) {
  // Filtering reduces ~172.8M Spirit alerts to ~4875: four orders of
  // magnitude. On the physical stream compression is bounded by the
  // cap, but still large.
  Study study(medium());
  const auto alerts =
      study.simulator(SystemId::kSpirit).ground_truth_alerts();
  filter::SimultaneousFilter f(study.threshold());
  const auto score = filter::score_filter(f, alerts);
  EXPECT_GT(score.compression, 8.0);
  EXPECT_NEAR(static_cast<double>(score.kept_alerts), 4875.0, 100.0);
}

TEST(FilteringClaims, CorrelationAwareBeatsPerCategoryOnLiberty) {
  // Figure 4's point: PBS_CHK and PBS_BFD report the same failures.
  // A correlation-aware filter yields fewer redundant survivors.
  Study study(medium());
  const auto alerts =
      study.simulator(SystemId::kLiberty).ground_truth_alerts();
  const auto groups =
      filter::learn_correlation_groups(alerts, 2 * util::kUsPerMin);
  filter::CorrelationAwareFilter grouped(groups, study.threshold());
  filter::SimultaneousFilter plain(study.threshold());
  const auto g = filter::score_filter(grouped, alerts);
  const auto p = filter::score_filter(plain, alerts);
  EXPECT_LE(g.kept_alerts, p.kept_alerts);
}

TEST(SpatialCorrelation, CpuClockBugVersusEcc) {
  // Section 4: CPU clock alerts are spatially correlated (job-driven);
  // ECC alerts are not.
  Study study(medium());
  const auto& sim = study.simulator(SystemId::kThunderbird);
  const auto cats = tag::categories_of(SystemId::kThunderbird);
  int cpu = -1;
  int ecc = -1;
  for (std::size_t c = 0; c < cats.size(); ++c) {
    if (cats[c]->name == "CPU") cpu = static_cast<int>(c);
    if (cats[c]->name == "ECC") ecc = static_cast<int>(c);
  }
  std::vector<util::TimeUs> cpu_t;
  std::vector<std::uint32_t> cpu_s;
  std::vector<util::TimeUs> ecc_t;
  std::vector<std::uint32_t> ecc_s;
  for (const auto& a : sim.ground_truth_alerts()) {
    if (static_cast<int>(a.category) == cpu) {
      cpu_t.push_back(a.time);
      cpu_s.push_back(a.source);
    }
    if (static_cast<int>(a.category) == ecc) {
      ecc_t.push_back(a.time);
      ecc_s.push_back(a.source);
    }
  }
  const auto window = 10 * util::kUsPerMin;
  const double cpu_spread = stats::spatial_spread(cpu_t, cpu_s, window);
  const double ecc_spread = stats::spatial_spread(ecc_t, ecc_s, window);
  EXPECT_GT(cpu_spread, 0.5);
  // ECC events are nearly all singleton windows; spread is low or
  // undefined (0).
  EXPECT_LT(ecc_spread, cpu_spread);
}

TEST(AdaptiveThresholds, SuggestionsReduceLeakage) {
  // BG/L's leaky chains (gaps just over T=5s) defeat the fixed
  // threshold; data-driven per-category thresholds recover them.
  Study study(medium());
  const auto alerts =
      study.simulator(SystemId::kBlueGeneL).ground_truth_alerts();
  filter::SimultaneousFilter fixed(study.threshold());
  const auto fixed_score = filter::score_filter(fixed, alerts);

  const auto thresholds = filter::suggest_thresholds(alerts);
  filter::AdaptiveFilter adaptive(thresholds, study.threshold());
  const auto adaptive_score = filter::score_filter(adaptive, alerts);

  // Adaptive keeps at least as many distinct failures while keeping
  // fewer redundant alerts.
  EXPECT_GE(adaptive_score.failures_represented,
            fixed_score.failures_represented);
  EXPECT_LT(adaptive_score.false_positives_kept,
            fixed_score.false_positives_kept);
}

}  // namespace
}  // namespace wss::core
