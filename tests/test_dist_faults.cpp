// Fault injection for the distributed study subsystem: torn partial
// writes, duplicate claim races, stale-heartbeat takeover, corrupt
// manifests, and incomplete merges. Every failure mode must be
// detected loudly (one-line diagnostic, correct exit code) and every
// recovery path must converge back to the single-process bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "dist/claim.hpp"
#include "dist/manifest.hpp"
#include "dist/partial.hpp"

namespace wss {
namespace {

namespace fs = std::filesystem;

cli::Args make_args(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"wss"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return cli::Args::parse(static_cast<int>(argv.size()), argv.data());
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os) << path;
  os << content;
}

class DistFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wss_dist_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_tokens(std::vector<std::string> tokens) {
    out_.str("");
    err_.str("");
    return cli::run(make_args(std::move(tokens)), out_, err_);
  }

  void expect_one_line_error(const std::string& needle) {
    const std::string msg = err_.str();
    ASSERT_FALSE(msg.empty());
    EXPECT_EQ(msg.back(), '\n');
    EXPECT_EQ(std::count(msg.begin(), msg.end(), '\n'), 1)
        << "expected a one-line diagnostic, got:\n" << msg;
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "diagnostic missing '" << needle << "':\n" << msg;
  }

  /// Plans a small, fast BGL-only manifest (N assignments, time axis).
  fs::path plan_small(int num_splits) {
    const fs::path mdir = dir_ / "manifest";
    EXPECT_EQ(run_tokens({"study", "--split-by", "time", "--num-splits",
                          std::to_string(num_splits), "--manifest-dir",
                          mdir.string(), "--system", "bgl", "--cap", "300",
                          "--chatter", "1500"}),
              0)
        << err_.str();
    return mdir;
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

// ---- Torn writes ----------------------------------------------------

TEST_F(DistFaultsTest, TruncatedPartialRejectedReclaimedAndRerunToGoldenBytes) {
  // Golden-volume BGL study: the recovery path must land on the exact
  // golden bytes, not merely "a" result.
  const fs::path mdir = dir_ / "m";
  ASSERT_EQ(run_tokens({"study", "--split-by", "time", "--num-splits", "2",
                        "--manifest-dir", mdir.string(), "--system", "bgl",
                        "--cap", "2500", "--chatter", "15000"}),
            0)
      << err_.str();
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 0);
  ASSERT_EQ(run_tokens({"worker", "1", "--manifest-dir", mdir.string()}), 0);

  // Kill worker 0 "mid-write": truncate its published partial to half,
  // as a crash between write and rename (or a torn rename) would.
  const std::string ppath = dist::partial_path(mdir.string(), 0);
  const std::string bytes = read_file(ppath);
  ASSERT_GT(bytes.size(), 64u);
  write_file(ppath, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(dist::partial_is_valid(ppath, 0));

  // Merge must refuse, naming the corrupt assignment, and write
  // nothing.
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("corrupt partials [0]");
  EXPECT_FALSE(fs::exists(mdir / "merged"));

  // Reclaim (the dead worker's claim file is still there; stale-after
  // 0 treats it as dead) and rerun. The rerun recomputes because the
  // surviving partial fails validation.
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string(),
                        "--stale-after", "0"}),
            0)
      << err_.str();
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 0)
      << err_.str();

  for (const std::string file :
       {"table1.txt", "table4_bgl.csv", "table5.csv", "fig6_bgl.csv"}) {
    EXPECT_EQ(read_file(mdir / "merged" / file),
              read_file(fs::path(WSS_GOLDEN_DIR) / file))
        << file << " diverges from the single-process goldens after "
        << "truncate -> reclaim -> rerun";
  }
}

TEST_F(DistFaultsTest, FlippedByteFailsChecksum) {
  const fs::path mdir = plan_small(1);
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 0);
  const std::string ppath = dist::partial_path(mdir.string(), 0);
  std::string bytes = read_file(ppath);
  bytes[bytes.size() / 3] ^= 0x40;  // payload corruption, size intact
  write_file(ppath, bytes);
  EXPECT_FALSE(dist::partial_is_valid(ppath, 0));
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("corrupt partials [0]");
}

// ---- Claim protocol -------------------------------------------------

TEST_F(DistFaultsTest, DuplicateClaimRaceHasExactlyOneWinner) {
  // Two claimants race on the same assignment repeatedly; link(2)
  // semantics must admit exactly one winner every time.
  for (int round = 0; round < 50; ++round) {
    const std::string cpath =
        (dir_ / ("claims_" + std::to_string(round)) / "a.claim").string();
    std::atomic<int> winners{0};
    std::atomic<int> losers{0};
    std::thread a([&] {
      const auto r = dist::try_claim(cpath, 0, "instance-a", 300.0);
      (r.outcome == dist::ClaimOutcome::kClaimed ? winners : losers)
          .fetch_add(1);
    });
    std::thread b([&] {
      const auto r = dist::try_claim(cpath, 1, "instance-b", 300.0);
      (r.outcome == dist::ClaimOutcome::kClaimed ? winners : losers)
          .fetch_add(1);
    });
    a.join();
    b.join();
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    ASSERT_EQ(losers.load(), 1) << "round " << round;
    // The surviving claim names the winner.
    const auto holder = dist::read_claim(cpath);
    ASSERT_TRUE(holder.has_value());
    EXPECT_TRUE(holder->instance == "instance-a" ||
                holder->instance == "instance-b");
  }
}

TEST_F(DistFaultsTest, LiveClaimBlocksSecondWorker) {
  const std::string cpath = (dir_ / "claims" / "a.claim").string();
  const auto first = dist::try_claim(cpath, 0, "first-instance", 300.0);
  ASSERT_EQ(first.outcome, dist::ClaimOutcome::kClaimed);
  const auto second = dist::try_claim(cpath, 1, "second-instance", 300.0);
  ASSERT_EQ(second.outcome, dist::ClaimOutcome::kHeldByLive);
  ASSERT_TRUE(second.holder.has_value());
  EXPECT_EQ(second.holder->worker, 0u);
  EXPECT_EQ(second.holder->instance, "first-instance");
}

TEST_F(DistFaultsTest, StaleHeartbeatIsReclaimable) {
  const std::string cpath = (dir_ / "claims" / "a.claim").string();
  ASSERT_EQ(dist::try_claim(cpath, 0, "dead-instance", 300.0).outcome,
            dist::ClaimOutcome::kClaimed);
  // Age the heartbeat well past the liveness window.
  fs::last_write_time(cpath, fs::file_time_type::clock::now() -
                                 std::chrono::minutes(10));
  const auto age = dist::claim_age_seconds(cpath);
  ASSERT_TRUE(age.has_value());
  EXPECT_GT(*age, 500.0);

  const auto takeover = dist::try_claim(cpath, 1, "new-instance", 60.0);
  ASSERT_EQ(takeover.outcome, dist::ClaimOutcome::kClaimed);
  const auto holder = dist::read_claim(cpath);
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(holder->worker, 1u);
  EXPECT_EQ(holder->instance, "new-instance");
}

TEST_F(DistFaultsTest, HeartbeatKeepsClaimFresh) {
  const std::string cpath = (dir_ / "claims" / "a.claim").string();
  ASSERT_EQ(dist::try_claim(cpath, 0, "live-instance", 300.0).outcome,
            dist::ClaimOutcome::kClaimed);
  fs::last_write_time(cpath, fs::file_time_type::clock::now() -
                                 std::chrono::minutes(10));
  dist::heartbeat(cpath);
  const auto age = dist::claim_age_seconds(cpath);
  ASSERT_TRUE(age.has_value());
  EXPECT_LT(*age, 60.0);
}

TEST_F(DistFaultsTest, WorkerBacksOffWithExit3WhenClaimHeld) {
  const fs::path mdir = plan_small(1);
  // Another (live) worker holds assignment 0.
  ASSERT_EQ(dist::try_claim(dist::claim_path(mdir.string(), 0), 0,
                            "other-live-worker", 300.0)
                .outcome,
            dist::ClaimOutcome::kClaimed);
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 3);
  expect_one_line_error("held by");
  EXPECT_FALSE(fs::exists(dist::partial_path(mdir.string(), 0)));
}

TEST_F(DistFaultsTest, WorkerRerunIsIdempotent) {
  const fs::path mdir = plan_small(2);
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 0);
  const std::string ppath = dist::partial_path(mdir.string(), 0);
  const std::string first = read_file(ppath);
  // Second run short-circuits on the valid partial -- no reclaim, no
  // recompute, bytes untouched.
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 0);
  EXPECT_NE(out_.str().find("already complete"), std::string::npos)
      << out_.str();
  EXPECT_EQ(read_file(ppath), first);
}

// ---- Manifest validation --------------------------------------------

TEST_F(DistFaultsTest, GarbageManifestIsExit1OneLine) {
  const fs::path mdir = dir_ / "m";
  fs::create_directories(mdir);
  write_file(mdir / "study.json", "this is not json {{{");
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("study.json");
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("study.json");
}

TEST_F(DistFaultsTest, UnknownManifestVersionIsExit1OneLine) {
  const fs::path mdir = plan_small(1);
  std::string study = read_file(mdir / "study.json");
  const auto pos = study.find("\"version\": 1");
  ASSERT_NE(pos, std::string::npos);
  study.replace(pos, std::string("\"version\": 1").size(), "\"version\": 99");
  write_file(mdir / "study.json", study);
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("unsupported version 99");
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("unsupported version 99");
}

TEST_F(DistFaultsTest, UnknownManifestFormatIsExit1OneLine) {
  const fs::path mdir = plan_small(1);
  std::string study = read_file(mdir / "study.json");
  const auto pos = study.find("wss.dist.v1");
  ASSERT_NE(pos, std::string::npos);
  study.replace(pos, std::string("wss.dist.v1").size(), "acme.plan.v7");
  write_file(mdir / "study.json", study);
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("unknown format");
}

TEST_F(DistFaultsTest, TamperedAssignmentPartitionIsRejected) {
  const fs::path mdir = plan_small(2);
  // Hand-edit assignment 1 to drop its chunks: the union no longer
  // tiles the chunk space, which the loader must catch up front.
  write_file(mdir / "assignment_001.json",
             "{\"format\": \"wss.dist.v1\", \"version\": 1, \"id\": 1, "
             "\"slices\": []}\n");
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("assignments cover 1 of 2 bgl chunks");
}

// ---- Merge completeness ---------------------------------------------

TEST_F(DistFaultsTest, MergeOnIncompleteSetNamesMissingAssignments) {
  const fs::path mdir = plan_small(3);
  // Only assignment 1 completes.
  ASSERT_EQ(run_tokens({"worker", "1", "--manifest-dir", mdir.string()}), 0);
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("missing assignments [0 2]");
  EXPECT_FALSE(fs::exists(mdir / "merged"));
}

TEST_F(DistFaultsTest, MergeReportsMissingAndCorruptTogether) {
  const fs::path mdir = plan_small(3);
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 0);
  ASSERT_EQ(run_tokens({"worker", "1", "--manifest-dir", mdir.string()}), 0);
  const std::string ppath = dist::partial_path(mdir.string(), 1);
  write_file(ppath, read_file(ppath).substr(0, 10));
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("missing assignments [2]");
  EXPECT_NE(err_.str().find("corrupt partials [1]"), std::string::npos)
      << err_.str();
}

TEST_F(DistFaultsTest, PartialFromDifferentPlanIsCorrupt) {
  // A partial copied from another assignment parses fine but covers
  // the wrong chunk set; merge must refuse to fold it.
  const fs::path mdir = plan_small(2);
  ASSERT_EQ(run_tokens({"worker", "0", "--manifest-dir", mdir.string()}), 0);
  fs::create_directories(fs::path(dist::partial_path(mdir.string(), 1))
                             .parent_path());
  fs::copy_file(dist::partial_path(mdir.string(), 0),
                dist::partial_path(mdir.string(), 1));
  ASSERT_EQ(run_tokens({"merge", "--manifest-dir", mdir.string()}), 1);
  expect_one_line_error("corrupt partials [1]");
}

}  // namespace
}  // namespace wss
