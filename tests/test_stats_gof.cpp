#include "stats/gof.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/fit.hpp"
#include "util/rng.hpp"

namespace wss::stats {
namespace {

TEST(Kolmogorov, SurvivalFunctionEdges) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(1.36), 0.05, 0.005);  // classic 95% point
  EXPECT_LT(kolmogorov_q(3.0), 1e-6);
}

TEST(RegularizedGamma, KnownValues) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(regularized_gamma_q(1.0, 2.0), std::exp(-2.0), 1e-10);
  // Q(0.5, x) = erfc(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_q(0.5, 1.0), std::erfc(1.0), 1e-10);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_THROW(regularized_gamma_q(-1.0, 1.0), std::invalid_argument);
}

TEST(ChiSquaredSf, MatchesGamma) {
  // chi^2 with 2 dof: SF(x) = exp(-x/2).
  EXPECT_NEAR(chi_squared_sf(3.0, 2.0), std::exp(-1.5), 1e-10);
  EXPECT_DOUBLE_EQ(chi_squared_sf(0.0, 5.0), 1.0);
}

TEST(KsTest, AcceptsCorrectModel) {
  util::Rng rng(21);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.exponential(1.0);
  const auto r = ks_test(xs, [](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x);
  });
  EXPECT_GT(r.p_value, 0.01);
  EXPECT_LT(r.statistic, 0.05);
}

TEST(KsTest, RejectsWrongModel) {
  util::Rng rng(22);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.lognormal(0.0, 1.5);
  const auto fit = fit_exponential(xs);
  const auto r = ks_test(xs, [&](double x) { return fit.cdf(x); });
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(KsTest, EmptySample) {
  const auto r = ks_test({}, [](double) { return 0.5; });
  EXPECT_EQ(r.n, 0u);
  EXPECT_EQ(r.p_value, 0.0);
}

TEST(ChiSquaredTest, AcceptsCorrectModel) {
  util::Rng rng(23);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.exponential(2.0);
  const auto fit = fit_exponential(xs);
  const auto r = chi_squared_test(xs, [&](double x) { return fit.cdf(x); },
                                  20, 1);
  EXPECT_GT(r.p_value, 0.001);
}

TEST(ChiSquaredTest, RejectsWrongModel) {
  util::Rng rng(24);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.lognormal(0.0, 2.0);
  const auto fit = fit_exponential(xs);
  const auto r = chi_squared_test(xs, [&](double x) { return fit.cdf(x); },
                                  20, 1);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquaredTest, DegenerateInputs) {
  const auto fit = [](double x) { return x <= 0 ? 0.0 : 1 - std::exp(-x); };
  EXPECT_EQ(chi_squared_test({}, fit, 10, 1).n, 0u);
  EXPECT_EQ(chi_squared_test({1.0, 2.0}, fit, 1, 0).p_value, 0.0);
}

/// The paper's observation: heavy-tailed data makes even the best
/// visual fit fail GOF ("such modeling of this data is misguided").
TEST(KsTest, HeavyTailMixtureFailsBothModels) {
  util::Rng rng(25);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.exponential(1.0));
  for (int i = 0; i < 300; ++i) xs.push_back(rng.exponential(0.001));
  const auto ex = fit_exponential(xs);
  const auto ln = fit_lognormal(xs);
  EXPECT_LT(ks_test(xs, [&](double x) { return ex.cdf(x); }).p_value, 1e-6);
  EXPECT_LT(ks_test(xs, [&](double x) { return ln.cdf(x); }).p_value, 1e-3);
}

}  // namespace
}  // namespace wss::stats
