// Differential fuzzing of the multi-pattern matcher: on the same
// combined program, the lazy DFA and the Pike VM must produce the same
// match set for every pattern on every input -- including patterns
// heavy with anchors and word boundaries, binary texts, and starved
// caches. Seeded and deterministic; labelled `stress` (CI runs it
// under asan/tsan in the nightly lane).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "match/multiregex.hpp"
#include "match/nfa.hpp"
#include "util/rng.hpp"

namespace wss::match {
namespace {

std::string random_pattern(util::Rng& rng, std::size_t max_len) {
  // The same generator shape as test_match_fuzz.cpp, with extra weight
  // on the zero-width assertions the DFA resolves at transition time.
  static constexpr char kChars[] = "ab01.*+?()[]{}|^$\\-, dDwWsSbB";
  const std::size_t n = 1 + rng.uniform_u64(max_len);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kChars[rng.uniform_u64(sizeof(kChars) - 1)]);
  }
  return out;
}

std::string random_text(util::Rng& rng, std::size_t max_len, bool binary) {
  static constexpr char kChars[] = "ab01 ,x.";
  const std::size_t n = rng.uniform_u64(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(binary ? static_cast<char>(rng())
                         : kChars[rng.uniform_u64(sizeof(kChars) - 1)]);
  }
  return out;
}

struct PatternSet {
  std::vector<std::unique_ptr<Regex>> owned;
  std::vector<const Regex*> raw;
};

PatternSet random_patterns(util::Rng& rng, std::size_t count) {
  PatternSet set;
  while (set.raw.size() < count) {
    try {
      set.owned.push_back(
          std::make_unique<Regex>(random_pattern(rng, 10)));
      set.raw.push_back(set.owned.back().get());
    } catch (const PatternError&) {
      // Invalid pattern; roll another.
    }
  }
  return set;
}

void expect_dfa_equals_pike(const MultiRegex& multi, const PatternSet& pats,
                            MatchScratch& dfa_scratch,
                            MatchScratch& pike_scratch,
                            std::string_view text) {
  multi.match_all_pike(text, pike_scratch);
  if (!multi.match_all_dfa(text, dfa_scratch)) {
    return;  // cache starved: match_all would fall back to the Pike VM
  }
  for (std::size_t i = 0; i < multi.size(); ++i) {
    ASSERT_EQ(bitset_test(dfa_scratch.matched.data(), i),
              bitset_test(pike_scratch.matched.data(), i))
        << "pattern[" << i << "]=" << pats.owned[i]->pattern()
        << " text=" << text;
  }
}

TEST(MultiRegexFuzz, DfaEqualsPikeOnRandomSets) {
  util::Rng rng(4202607);
  for (int iter = 0; iter < 250; ++iter) {
    const auto pats = random_patterns(rng, 1 + rng.uniform_u64(8));
    const MultiRegex multi(pats.raw);
    MatchScratch dfa_scratch;
    MatchScratch pike_scratch;
    for (int t = 0; t < 12; ++t) {
      expect_dfa_equals_pike(multi, pats, dfa_scratch, pike_scratch,
                             random_text(rng, 48, /*binary=*/t % 4 == 3));
    }
  }
}

TEST(MultiRegexFuzz, DfaEqualsSinglePatternSearch) {
  // Cross-engine check: the combined matcher vs N independent Regexes.
  // This catches relocation bugs (mis-patched split/jump targets) that
  // a DFA-vs-Pike diff over the SAME combined program cannot see.
  util::Rng rng(4202608);
  for (int iter = 0; iter < 150; ++iter) {
    const auto pats = random_patterns(rng, 1 + rng.uniform_u64(6));
    const MultiRegex multi(pats.raw);
    MatchScratch scratch;
    for (int t = 0; t < 8; ++t) {
      const std::string text = random_text(rng, 40, /*binary=*/false);
      multi.match_all(text, scratch);
      for (std::size_t i = 0; i < multi.size(); ++i) {
        ASSERT_EQ(bitset_test(scratch.matched.data(), i),
                  pats.owned[i]->search(text))
            << "pattern[" << i << "]=" << pats.owned[i]->pattern()
            << " text=" << text;
      }
    }
  }
}

TEST(MultiRegexFuzz, StarvedCacheNeverChangesResults) {
  // match_all under a cache too small to hold the working set: the
  // flush/fallback/disable machinery must be invisible in the results.
  util::Rng rng(4202609);
  for (int iter = 0; iter < 60; ++iter) {
    const auto pats = random_patterns(rng, 1 + rng.uniform_u64(6));
    MultiRegex::Options opts;
    opts.dfa_cache_bytes = rng.uniform_u64(4096);  // 0..4095 bytes
    opts.max_cache_flushes = static_cast<int>(rng.uniform_u64(3));
    const MultiRegex starved(pats.raw, opts);
    const MultiRegex roomy(pats.raw);
    MatchScratch starved_scratch;
    MatchScratch roomy_scratch;
    for (int t = 0; t < 10; ++t) {
      const std::string text = random_text(rng, 64, /*binary=*/t % 3 == 2);
      starved.match_all(text, starved_scratch);
      roomy.match_all(text, roomy_scratch);
      for (std::size_t i = 0; i < starved.size(); ++i) {
        ASSERT_EQ(bitset_test(starved_scratch.matched.data(), i),
                  bitset_test(roomy_scratch.matched.data(), i))
            << "pattern[" << i << "]=" << pats.owned[i]->pattern()
            << " text=" << text << " cache=" << opts.dfa_cache_bytes;
      }
    }
  }
}

TEST(MultiRegexFuzz, InterestingSubsetsStayExact) {
  util::Rng rng(4202610);
  for (int iter = 0; iter < 100; ++iter) {
    const auto pats = random_patterns(rng, 2 + rng.uniform_u64(6));
    const MultiRegex multi(pats.raw);
    MatchScratch scratch;
    std::vector<std::uint64_t> interesting(multi.bitset_words(), 0);
    for (std::size_t i = 0; i < multi.size(); ++i) {
      if (rng.uniform_u64(2) == 0) bitset_set(interesting.data(), i);
    }
    for (int t = 0; t < 6; ++t) {
      const std::string text = random_text(rng, 40, /*binary=*/false);
      multi.match_all(text, scratch, interesting.data());
      for (std::size_t i = 0; i < multi.size(); ++i) {
        const bool truth = pats.owned[i]->search(text);
        if (bitset_test(interesting.data(), i)) {
          // Interesting bits are exact.
          ASSERT_EQ(bitset_test(scratch.matched.data(), i), truth)
              << "pattern[" << i << "]=" << pats.owned[i]->pattern()
              << " text=" << text;
        } else if (bitset_test(scratch.matched.data(), i)) {
          // Outside the set, a set bit must still be a real match.
          ASSERT_TRUE(truth)
              << "pattern[" << i << "]=" << pats.owned[i]->pattern()
              << " text=" << text;
        }
      }
    }
  }
}

}  // namespace
}  // namespace wss::match
