#include "sim/transport.hpp"

#include <gtest/gtest.h>

namespace wss::sim {
namespace {

std::vector<SimEvent> uniform_stream(std::size_t n, util::TimeUs gap) {
  std::vector<SimEvent> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].time = static_cast<util::TimeUs>(i) * gap;
    out[i].source = static_cast<std::uint32_t>(i % 7);
  }
  return out;
}

TEST(Transport, TcpIsLossless) {
  const auto in = uniform_stream(1000, util::kUsPerSec);
  TransportStats st;
  const auto out = apply_tcp(in, &st);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_DOUBLE_EQ(st.loss_rate(), 0.0);
}

TEST(Transport, UdpBaseLossApproximatesConfig) {
  const auto in = uniform_stream(50000, 10 * util::kUsPerSec);  // low rate
  UdpConfig cfg;
  cfg.base_loss = 0.02;
  cfg.contention_loss_per_k = 0.0;
  util::Rng rng(1);
  TransportStats st;
  const auto out = apply_udp_loss(in, cfg, rng, &st);
  EXPECT_NEAR(st.loss_rate(), 0.02, 0.004);
  EXPECT_EQ(st.offered, in.size());
  EXPECT_EQ(st.delivered, out.size());
}

TEST(Transport, ContentionLossRisesWithRate) {
  UdpConfig cfg;
  cfg.base_loss = 0.0;
  cfg.contention_loss_per_k = 0.5;
  util::Rng rng(2);

  // Dense burst: 1000 messages within one second.
  const auto dense = uniform_stream(5000, util::kUsPerSec / 1000);
  TransportStats dense_stats;
  (void)apply_udp_loss(dense, cfg, rng, &dense_stats);

  // Sparse: one message per 10 s.
  const auto sparse = uniform_stream(5000, 10 * util::kUsPerSec);
  TransportStats sparse_stats;
  (void)apply_udp_loss(sparse, cfg, rng, &sparse_stats);

  EXPECT_GT(dense_stats.loss_rate(), sparse_stats.loss_rate() + 0.1);
}

TEST(Transport, UdpLossCapsBelowTotal) {
  UdpConfig cfg;
  cfg.base_loss = 0.5;
  cfg.contention_loss_per_k = 100.0;  // would exceed 1.0 uncapped
  util::Rng rng(3);
  const auto in = uniform_stream(2000, 1);
  TransportStats st;
  const auto out = apply_udp_loss(in, cfg, rng, &st);
  EXPECT_GT(out.size(), 0u);  // capped at 0.9 drop probability
}

TEST(Transport, JtagPollingPreservesEvents) {
  const auto in = uniform_stream(1000, 300);  // 0.3 ms apart
  TransportStats st;
  const auto out = apply_jtag_polling(in, util::kUsPerSec / 1000, &st);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_EQ(st.dropped, 0u);
  // Poll-tick order is non-decreasing.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].time / 1000, out[i].time / 1000);
  }
}

}  // namespace
}  // namespace wss::sim
