// FrameDecoder: newline and length-prefix framing over arbitrary
// segment boundaries -- partial frames, coalesced frames, CRLF,
// oversized handling, EOF tails.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/framing.hpp"

namespace wss::net {
namespace {

std::vector<std::string> drain(FrameDecoder& d) {
  std::vector<std::string> frames;
  std::string f;
  while (d.next(f)) frames.push_back(f);
  return frames;
}

std::string be32(std::uint32_t v) {
  std::string s;
  s.push_back(static_cast<char>((v >> 24) & 0xff));
  s.push_back(static_cast<char>((v >> 16) & 0xff));
  s.push_back(static_cast<char>((v >> 8) & 0xff));
  s.push_back(static_cast<char>(v & 0xff));
  return s;
}

TEST(NetFraming, CoalescedNewlineFrames) {
  FrameDecoder d(Framing::kNewline);
  d.feed("alpha\nbeta\ngamma\n");
  EXPECT_EQ(drain(d), (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(NetFraming, PartialFrameAcrossManyFeeds) {
  FrameDecoder d(Framing::kNewline);
  const std::string line = "one long syslog line with fields";
  for (const char c : line) {
    d.feed(std::string_view(&c, 1));
    std::string f;
    EXPECT_FALSE(d.next(f));
  }
  d.feed("\n");
  EXPECT_EQ(drain(d), std::vector<std::string>{line});
}

TEST(NetFraming, StripsSingleTrailingCarriageReturn) {
  FrameDecoder d(Framing::kNewline);
  d.feed("crlf line\r\nbare cr \r\r\n");
  EXPECT_EQ(drain(d),
            (std::vector<std::string>{"crlf line", "bare cr \r"}));
}

TEST(NetFraming, EmptyLinesAreFrames) {
  FrameDecoder d(Framing::kNewline);
  d.feed("\n\nx\n");
  EXPECT_EQ(drain(d), (std::vector<std::string>{"", "", "x"}));
}

TEST(NetFraming, FinishFlushesUnterminatedTail) {
  FrameDecoder d(Framing::kNewline);
  d.feed("done\npartial tail");
  EXPECT_EQ(drain(d), std::vector<std::string>{"done"});
  std::string f;
  ASSERT_TRUE(d.finish(f));
  EXPECT_EQ(f, "partial tail");
  EXPECT_FALSE(d.finish(f));  // flushed once
}

TEST(NetFraming, FinishOnCleanStreamIsEmpty) {
  FrameDecoder d(Framing::kNewline);
  d.feed("done\n");
  drain(d);
  std::string f;
  EXPECT_FALSE(d.finish(f));
}

TEST(NetFraming, OversizedNewlineLineIsCountedNotDelivered) {
  FrameDecoder d(Framing::kNewline, 8);
  d.feed("tiny\n");
  d.feed(std::string(100, 'x'));  // exceeds cap mid-line
  d.feed("yyy\nafter\n");
  EXPECT_EQ(drain(d), (std::vector<std::string>{"tiny", "after"}));
  EXPECT_EQ(d.oversized(), 1u);
  EXPECT_FALSE(d.error());  // newline mode re-synchronizes
}

TEST(NetFraming, OversizedCompleteLineInOneFeed) {
  FrameDecoder d(Framing::kNewline, 8);
  d.feed(std::string(20, 'a') + "\nok\n");
  EXPECT_EQ(drain(d), std::vector<std::string>{"ok"});
  EXPECT_EQ(d.oversized(), 1u);
}

TEST(NetFraming, OversizedTailAtEof) {
  FrameDecoder d(Framing::kNewline, 8);
  d.feed(std::string(20, 'b'));
  drain(d);
  std::string f;
  EXPECT_FALSE(d.finish(f));
  EXPECT_EQ(d.oversized(), 1u);
}

TEST(NetFraming, LenPrefixRoundTrip) {
  using namespace std::string_literals;
  FrameDecoder d(Framing::kLenPrefix);
  const std::string payload = "binary \n payload \0 with newline"s;
  d.feed(be32(static_cast<std::uint32_t>(payload.size())) + payload);
  d.feed(be32(0));  // empty frame
  std::string f;
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f, payload);
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f, "");
  EXPECT_FALSE(d.next(f));
}

TEST(NetFraming, LenPrefixSplitAcrossFeeds) {
  FrameDecoder d(Framing::kLenPrefix);
  const std::string msg = be32(5) + "hello" + be32(5) + "world";
  for (const char c : msg) d.feed(std::string_view(&c, 1));
  EXPECT_EQ(drain(d), (std::vector<std::string>{"hello", "world"}));
}

TEST(NetFraming, LenPrefixOverflowIsUnrecoverable) {
  FrameDecoder d(Framing::kLenPrefix, 16);
  d.feed(be32(1u << 30));
  std::string f;
  EXPECT_FALSE(d.next(f));
  EXPECT_TRUE(d.error());
  EXPECT_EQ(d.oversized(), 1u);
  d.feed(be32(3) + "abc");  // too late: the stream position is lost
  EXPECT_FALSE(d.next(f));
  EXPECT_FALSE(d.finish(f));
}

TEST(NetFraming, TakeRestHandsOffUndecodedBytes) {
  FrameDecoder d(Framing::kNewline);
  d.feed("handshake line\n" + be32(2) + "ok");
  std::string f;
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f, "handshake line");
  FrameDecoder len(Framing::kLenPrefix);
  len.feed(d.take_rest());
  EXPECT_EQ(d.buffered(), 0u);
  ASSERT_TRUE(len.next(f));
  EXPECT_EQ(f, "ok");
}

TEST(NetFraming, CompactionKeepsLongStreamsBounded) {
  FrameDecoder d(Framing::kNewline);
  std::string f;
  for (int i = 0; i < 20000; ++i) {
    d.feed("some log line payload\n");
    ASSERT_TRUE(d.next(f));
    ASSERT_FALSE(d.next(f));
    ASSERT_LT(d.buffered(), 16u * 1024u);
  }
}

// Regression: a length-prefix header whose 4 bytes straddle the
// ring's wrap point must decode exactly like a contiguous header. The
// initial ring is 4096 bytes; a first frame of 4090 payload bytes
// parks the write head 2 bytes below the top, so the next header's
// bytes land [4094, 4095, 0, 1] -- split around the wrap. Every split
// of the header across feeds is exercised.
TEST(NetFraming, LenPrefixHeaderStraddlingRingWrap) {
  const std::string first(4090, 'a');
  std::string second;
  for (int i = 0; i < 300; ++i) second.push_back(static_cast<char>(i & 0xff));
  for (std::size_t split = 0; split <= 4; ++split) {
    FrameDecoder d(Framing::kLenPrefix);
    d.feed(be32(static_cast<std::uint32_t>(first.size())) + first);
    std::string f;
    ASSERT_TRUE(d.next(f));
    ASSERT_EQ(f, first);
    const std::string header = be32(static_cast<std::uint32_t>(second.size()));
    d.feed(std::string_view(header).substr(0, split));
    EXPECT_FALSE(d.next(f));
    d.feed(std::string_view(header).substr(split));
    d.feed(second);
    ASSERT_TRUE(d.next(f)) << "split=" << split;
    EXPECT_EQ(f, second) << "split=" << split;
    EXPECT_FALSE(d.next(f));
    EXPECT_FALSE(d.error());
  }
}

// Newline frames whose payload wraps the ring: drive the write head
// near the top, then feed lines long enough to wrap, in 1-byte feeds.
TEST(NetFraming, NewlinePayloadStraddlingRingWrap) {
  FrameDecoder d(Framing::kNewline);
  std::string f;
  // Park the head near the top of the initial 4096-byte ring.
  d.feed(std::string(4000, 'p') + "\n");
  ASSERT_TRUE(d.next(f));
  // This line occupies [4001..4095] and wraps into [0..].
  std::string wrapping(200, 'w');
  wrapping[95] = '!';  // lands exactly at the wrap byte
  for (const char c : wrapping) {
    d.feed(std::string_view(&c, 1));
    ASSERT_FALSE(d.next(f));
  }
  d.feed("\n");
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f, wrapping);
}

// Differential: any segmentation of any byte stream decodes to the
// same frames as feeding it whole, in both modes. Covers ring growth,
// wrap at every offset, CR/LF, embedded NULs, empty frames.
TEST(NetFraming, SegmentationInvariance) {
  using namespace std::string_literals;
  std::string newline_stream;
  for (int i = 0; i < 300; ++i) {
    newline_stream += "line " + std::to_string(i);
    if (i % 7 == 0) newline_stream += "\r";
    newline_stream += "\n";
    if (i % 13 == 0) newline_stream += "\n";  // empty frames
  }
  newline_stream += std::string(5000, 'Z') + "\n";  // forces ring growth
  std::string len_stream;
  for (int i = 0; i < 300; ++i) {
    std::string payload = "payload\0with nul "s + std::to_string(i);
    payload.append(static_cast<std::size_t>(i) % 97, '#');
    len_stream += be32(static_cast<std::uint32_t>(payload.size())) + payload;
  }

  const auto decode = [](Framing mode, std::string_view stream,
                         std::size_t seg) {
    FrameDecoder d(mode);
    std::vector<std::string> frames;
    std::string f;
    for (std::size_t pos = 0; pos < stream.size(); pos += seg) {
      d.feed(stream.substr(pos, seg));
      while (d.next(f)) frames.push_back(f);
    }
    if (mode == Framing::kNewline && d.finish(f)) frames.push_back(f);
    EXPECT_FALSE(d.error());
    return frames;
  };

  for (const Framing mode : {Framing::kNewline, Framing::kLenPrefix}) {
    const std::string_view stream =
        mode == Framing::kNewline ? newline_stream : len_stream;
    const auto whole = decode(mode, stream, stream.size());
    ASSERT_GE(whole.size(), 300u);
    for (const std::size_t seg : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{7},
                                  std::size_t{4095}, std::size_t{4096}}) {
      EXPECT_EQ(decode(mode, stream, seg), whole) << "seg=" << seg;
    }
  }
}

// The scanned_ cursor: a very long line arriving in many segments must
// not be re-scanned per segment. 2MiB in 1KiB feeds completes fast
// only if the scan is O(total); quadratic would be ~4M vector scans of
// 1MiB average. Checked by wall-clock-free proxy: the test simply
// completes within CTest's default timeout even under sanitizers.
TEST(NetFraming, LongPartialLineScansLinearly) {
  FrameDecoder d(Framing::kNewline, 4u << 20);
  const std::string chunk(1024, 'x');
  std::string f;
  for (int i = 0; i < 2048; ++i) {
    d.feed(chunk);
    ASSERT_FALSE(d.next(f));
  }
  d.feed("\n");
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f.size(), 2048u * 1024u);
}

}  // namespace
}  // namespace wss::net
