// FrameDecoder: newline and length-prefix framing over arbitrary
// segment boundaries -- partial frames, coalesced frames, CRLF,
// oversized handling, EOF tails.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/framing.hpp"

namespace wss::net {
namespace {

std::vector<std::string> drain(FrameDecoder& d) {
  std::vector<std::string> frames;
  std::string f;
  while (d.next(f)) frames.push_back(f);
  return frames;
}

std::string be32(std::uint32_t v) {
  std::string s;
  s.push_back(static_cast<char>((v >> 24) & 0xff));
  s.push_back(static_cast<char>((v >> 16) & 0xff));
  s.push_back(static_cast<char>((v >> 8) & 0xff));
  s.push_back(static_cast<char>(v & 0xff));
  return s;
}

TEST(NetFraming, CoalescedNewlineFrames) {
  FrameDecoder d(Framing::kNewline);
  d.feed("alpha\nbeta\ngamma\n");
  EXPECT_EQ(drain(d), (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(NetFraming, PartialFrameAcrossManyFeeds) {
  FrameDecoder d(Framing::kNewline);
  const std::string line = "one long syslog line with fields";
  for (const char c : line) {
    d.feed(std::string_view(&c, 1));
    std::string f;
    EXPECT_FALSE(d.next(f));
  }
  d.feed("\n");
  EXPECT_EQ(drain(d), std::vector<std::string>{line});
}

TEST(NetFraming, StripsSingleTrailingCarriageReturn) {
  FrameDecoder d(Framing::kNewline);
  d.feed("crlf line\r\nbare cr \r\r\n");
  EXPECT_EQ(drain(d),
            (std::vector<std::string>{"crlf line", "bare cr \r"}));
}

TEST(NetFraming, EmptyLinesAreFrames) {
  FrameDecoder d(Framing::kNewline);
  d.feed("\n\nx\n");
  EXPECT_EQ(drain(d), (std::vector<std::string>{"", "", "x"}));
}

TEST(NetFraming, FinishFlushesUnterminatedTail) {
  FrameDecoder d(Framing::kNewline);
  d.feed("done\npartial tail");
  EXPECT_EQ(drain(d), std::vector<std::string>{"done"});
  std::string f;
  ASSERT_TRUE(d.finish(f));
  EXPECT_EQ(f, "partial tail");
  EXPECT_FALSE(d.finish(f));  // flushed once
}

TEST(NetFraming, FinishOnCleanStreamIsEmpty) {
  FrameDecoder d(Framing::kNewline);
  d.feed("done\n");
  drain(d);
  std::string f;
  EXPECT_FALSE(d.finish(f));
}

TEST(NetFraming, OversizedNewlineLineIsCountedNotDelivered) {
  FrameDecoder d(Framing::kNewline, 8);
  d.feed("tiny\n");
  d.feed(std::string(100, 'x'));  // exceeds cap mid-line
  d.feed("yyy\nafter\n");
  EXPECT_EQ(drain(d), (std::vector<std::string>{"tiny", "after"}));
  EXPECT_EQ(d.oversized(), 1u);
  EXPECT_FALSE(d.error());  // newline mode re-synchronizes
}

TEST(NetFraming, OversizedCompleteLineInOneFeed) {
  FrameDecoder d(Framing::kNewline, 8);
  d.feed(std::string(20, 'a') + "\nok\n");
  EXPECT_EQ(drain(d), std::vector<std::string>{"ok"});
  EXPECT_EQ(d.oversized(), 1u);
}

TEST(NetFraming, OversizedTailAtEof) {
  FrameDecoder d(Framing::kNewline, 8);
  d.feed(std::string(20, 'b'));
  drain(d);
  std::string f;
  EXPECT_FALSE(d.finish(f));
  EXPECT_EQ(d.oversized(), 1u);
}

TEST(NetFraming, LenPrefixRoundTrip) {
  using namespace std::string_literals;
  FrameDecoder d(Framing::kLenPrefix);
  const std::string payload = "binary \n payload \0 with newline"s;
  d.feed(be32(static_cast<std::uint32_t>(payload.size())) + payload);
  d.feed(be32(0));  // empty frame
  std::string f;
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f, payload);
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f, "");
  EXPECT_FALSE(d.next(f));
}

TEST(NetFraming, LenPrefixSplitAcrossFeeds) {
  FrameDecoder d(Framing::kLenPrefix);
  const std::string msg = be32(5) + "hello" + be32(5) + "world";
  for (const char c : msg) d.feed(std::string_view(&c, 1));
  EXPECT_EQ(drain(d), (std::vector<std::string>{"hello", "world"}));
}

TEST(NetFraming, LenPrefixOverflowIsUnrecoverable) {
  FrameDecoder d(Framing::kLenPrefix, 16);
  d.feed(be32(1u << 30));
  std::string f;
  EXPECT_FALSE(d.next(f));
  EXPECT_TRUE(d.error());
  EXPECT_EQ(d.oversized(), 1u);
  d.feed(be32(3) + "abc");  // too late: the stream position is lost
  EXPECT_FALSE(d.next(f));
  EXPECT_FALSE(d.finish(f));
}

TEST(NetFraming, TakeRestHandsOffUndecodedBytes) {
  FrameDecoder d(Framing::kNewline);
  d.feed("handshake line\n" + be32(2) + "ok");
  std::string f;
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f, "handshake line");
  FrameDecoder len(Framing::kLenPrefix);
  len.feed(d.take_rest());
  EXPECT_EQ(d.buffered(), 0u);
  ASSERT_TRUE(len.next(f));
  EXPECT_EQ(f, "ok");
}

TEST(NetFraming, CompactionKeepsLongStreamsBounded) {
  FrameDecoder d(Framing::kNewline);
  std::string f;
  for (int i = 0; i < 20000; ++i) {
    d.feed("some log line payload\n");
    ASSERT_TRUE(d.next(f));
    ASSERT_FALSE(d.next(f));
    ASSERT_LT(d.buffered(), 16u * 1024u);
  }
}

}  // namespace
}  // namespace wss::net
