#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace wss::util {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
}

TEST(Strings, SplitPreservesEmpty) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitFieldsDropsEmpty) {
  const auto f = split_fields("  one  two\tthree \n");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "one");
  EXPECT_EQ(f[1], "two");
  EXPECT_EQ(f[2], "three");
  EXPECT_TRUE(split_fields("   ").empty());
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(starts_with("kernel: panic", "kernel"));
  EXPECT_FALSE(starts_with("ker", "kernel"));
  EXPECT_TRUE(ends_with("file.cpp", ".cpp"));
  EXPECT_FALSE(ends_with("cpp", ".cpp"));
  EXPECT_TRUE(contains("abcdef", "cde"));
  EXPECT_FALSE(contains("abcdef", "xyz"));
  EXPECT_TRUE(contains("abc", ""));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_upper("AbC123"), "ABC123");
  EXPECT_TRUE(iequals("FATAL", "fatal"));
  EXPECT_FALSE(iequals("FATAL", "fata"));
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~0ull);
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12a"));
  EXPECT_FALSE(parse_u64("-1"));
}

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_i64("+7"), 7);
  EXPECT_EQ(parse_i64("9223372036854775807"), 9223372036854775807LL);
  EXPECT_FALSE(parse_i64("9223372036854775808"));
  EXPECT_EQ(parse_i64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE(parse_i64("--2"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_double("-3e2"), -300.0);
  EXPECT_FALSE(parse_double("1.5x"));
  EXPECT_FALSE(parse_double(""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none here", "xyz", "!"), "none here");
  EXPECT_EQ(replace_all("abc", "", "!"), "abc");
  EXPECT_EQ(replace_all("a.b.c", ".", ""), "abc");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(178081459), "178,081,459");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Strings, Fnv1aStable) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("kernel"), fnv1a("kernel"));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace wss::util
