#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace wss::stats {
namespace {

using util::kUsPerHour;

TEST(TimeSeries, BucketsEvents) {
  TimeSeries ts(0, kUsPerHour, 3);
  ts.add(0);
  ts.add(kUsPerHour - 1);
  ts.add(kUsPerHour);
  ts.add(2 * kUsPerHour + 5);
  EXPECT_DOUBLE_EQ(ts.buckets()[0], 2.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[1], 1.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[2], 1.0);
  EXPECT_DOUBLE_EQ(ts.total(), 4.0);
}

TEST(TimeSeries, DropsOutOfRange) {
  TimeSeries ts(100, 10, 2);
  ts.add(99);
  ts.add(120);
  EXPECT_EQ(ts.dropped(), 2u);
  EXPECT_DOUBLE_EQ(ts.total(), 0.0);
}

TEST(TimeSeries, Weighted) {
  TimeSeries ts(0, 10, 1);
  ts.add(5, 2.5);
  EXPECT_DOUBLE_EQ(ts.buckets()[0], 2.5);
}

TEST(TimeSeries, CoveringComputesBucketCount) {
  const auto ts = TimeSeries::covering(0, 25, 10);
  EXPECT_EQ(ts.buckets().size(), 3u);
  EXPECT_THROW(TimeSeries::covering(10, 10, 5), std::invalid_argument);
}

TEST(TimeSeries, BucketMidAndMean) {
  TimeSeries ts(0, 10, 4);
  EXPECT_EQ(ts.bucket_mid(0), 5);
  EXPECT_EQ(ts.bucket_mid(3), 35);
  ts.add(1);
  ts.add(11);
  ts.add(12);
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(ts.mean_over(2, 99), 0.0);  // clamped, empty tail
  EXPECT_DOUBLE_EQ(ts.mean_over(3, 3), 0.0);
}

TEST(TimeSeries, RejectsBadArgs) {
  EXPECT_THROW(TimeSeries(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(TimeSeries(0, 10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wss::stats
