#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace wss::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformI64Bounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_THROW(rng.uniform_i64(3, 2), std::invalid_argument);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(29);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.5);
  std::sort(xs.begin(), xs.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.15);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonLargeMeanUsesApprox) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, WeightedIndex) {
  Rng rng(41);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
  std::vector<double> bad = {0.0, -1.0};
  EXPECT_THROW(rng.weighted_index(bad), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIndependence) {
  Rng a(47);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(47);
  (void)b();  // align with the fork's consumption
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Zipf, RankZeroMostProbable) {
  Zipf z(100, 1.1);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(50));
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(z.pmf(100), 0.0);
}

TEST(Zipf, SamplingMatchesPmf) {
  Zipf z(10, 1.0);
  Rng rng(53);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.pmf(r), 0.01);
  }
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument); }

}  // namespace
}  // namespace wss::util
