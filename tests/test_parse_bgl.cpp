#include "parse/bgl.hpp"

#include <gtest/gtest.h>

namespace wss::parse {
namespace {

const char* kLine =
    "1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 "
    "R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error "
    "corrected";

TEST(BglParse, FullRecord) {
  const auto r = parse_bgl_line(kLine);
  EXPECT_TRUE(r.timestamp_valid);
  EXPECT_EQ(r.source, "R02-M1-N0-C:J12-U11");
  EXPECT_EQ(r.program, "KERNEL");
  EXPECT_EQ(r.severity, Severity::kInfo);
  EXPECT_EQ(r.body, "instruction cache parity error corrected");
  EXPECT_EQ(util::to_civil(r.time).micros, 363779);
}

TEST(BglParse, SeverityVariants) {
  const auto mk = [](const char* sev) {
    return std::string("1 2005.06.03 R00-M0-N0 2005-06-03-00.00.00.000000 "
                       "R00-M0-N0 RAS APP ") +
           sev + " body text";
  };
  EXPECT_EQ(parse_bgl_line(mk("FATAL")).severity, Severity::kFatal);
  EXPECT_EQ(parse_bgl_line(mk("FAILURE")).severity, Severity::kFailure);
  EXPECT_EQ(parse_bgl_line(mk("SEVERE")).severity, Severity::kSevere);
  EXPECT_EQ(parse_bgl_line(mk("ERROR")).severity, Severity::kError);
  EXPECT_EQ(parse_bgl_line(mk("WARNING")).severity, Severity::kWarning);
  EXPECT_EQ(parse_bgl_line(mk("bogus")).severity, Severity::kNone);
}

TEST(BglParse, FallsBackToEpochOnBadStamp) {
  const auto r = parse_bgl_line(
      "1117838570 2005.06.03 R02-M1-N0 garbage-stamp R02-M1-N0 RAS KERNEL "
      "INFO body");
  EXPECT_TRUE(r.timestamp_valid);
  EXPECT_EQ(r.time, 1117838570LL * util::kUsPerSec);
}

TEST(BglParse, ShortLineIsCorrupt) {
  const auto r = parse_bgl_line("too short");
  EXPECT_TRUE(r.source_corrupted);
  EXPECT_FALSE(r.timestamp_valid);
}

TEST(BglParse, BadLocationFlagged) {
  const auto r = parse_bgl_line(
      "1117838570 2005.06.03 #=garbage 2005-06-03-15.42.50.363779 x RAS "
      "KERNEL INFO body");
  EXPECT_TRUE(r.source_corrupted);
  EXPECT_TRUE(r.timestamp_valid);  // timestamp field is intact
}

TEST(BglParse, LocationPlausibility) {
  EXPECT_TRUE(plausible_bgl_location("R02-M1-N0-C:J12-U11"));
  EXPECT_TRUE(plausible_bgl_location("R63-M0-NF"));
  EXPECT_TRUE(plausible_bgl_location("R00-SVC"));
  EXPECT_FALSE(plausible_bgl_location("sn373"));
  EXPECT_FALSE(plausible_bgl_location("R"));
  EXPECT_FALSE(plausible_bgl_location("R02 M1"));
  EXPECT_FALSE(plausible_bgl_location(""));
}

TEST(BglParse, NeverThrowsOnGarbage) {
  EXPECT_NO_THROW({ (void)parse_bgl_line(""); });
  EXPECT_NO_THROW({ (void)parse_bgl_line("\x01\x02 \xff garbage here x y z"); });
  EXPECT_NO_THROW({ (void)parse_bgl_line("1 2 3 4 5 6 7 8 9 10 11"); });
}

}  // namespace
}  // namespace wss::parse
