// Property tests for the split planner: every axis must partition the
// (system, chunk) work-unit space *exactly* -- no chunk unassigned, no
// chunk assigned twice -- across seeds and split counts, and the
// partition property must hold all the way down to the event stream
// (verified by folding the per-slice wss_pipeline_* counter deltas
// against an independent batch run's totals).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dist/manifest.hpp"
#include "dist/partial.hpp"
#include "dist/split.hpp"
#include "dist/worker.hpp"
#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "tag/rulesets.hpp"

namespace wss {
namespace {

namespace fs = std::filesystem;

/// Small, fast study volumes for property sweeps.
core::StudyOptions small_options(std::uint64_t seed) {
  core::StudyOptions o;
  o.sim.seed = seed;
  o.sim.category_cap = 300;
  o.sim.chatter_events = 1500;
  return o;
}

TEST(DistSplitProperty, EveryAxisPartitionsChunksExactly) {
  for (const std::uint64_t seed : {42ull, 7ull, 20260807ull}) {
    for (const auto axis : {dist::SplitAxis::kSystem, dist::SplitAxis::kTime,
                            dist::SplitAxis::kCategory}) {
      for (const std::uint32_t n : {1u, 2u, 3u, 5u, 9u}) {
        SCOPED_TRACE(std::string(dist::split_axis_name(axis)) + " N=" +
                     std::to_string(n) + " seed=" + std::to_string(seed));
        dist::SplitOptions opts;
        opts.axis = axis;
        opts.num_splits = n;
        opts.study = small_options(seed);
        const dist::StudyManifest m = dist::plan_split(opts);
        ASSERT_EQ(m.assignments.size(), n);
        ASSERT_EQ(m.systems.size(), parse::kNumSystems);
        for (std::size_t i = 0; i < m.systems.size(); ++i) {
          std::vector<std::uint64_t> owned(m.chunk_counts[i], 0);
          for (const dist::Assignment& a : m.assignments) {
            for (const dist::Slice& slice : a.slices) {
              if (slice.system != m.systems[i]) continue;
              for (const dist::ChunkRange& r : slice.ranges) {
                ASSERT_LT(r.begin, r.end);
                ASSERT_LE(r.end, m.chunk_counts[i]);
                for (std::uint64_t c = r.begin; c < r.end; ++c) ++owned[c];
              }
            }
          }
          for (std::uint64_t c = 0; c < m.chunk_counts[i]; ++c) {
            ASSERT_EQ(owned[c], 1u)
                << parse::system_short_name(m.systems[i]) << " chunk " << c
                << " assigned " << owned[c] << " times";
          }
        }
      }
    }
  }
}

TEST(DistSplitProperty, SystemAxisKeepsWholeSystemsTogether) {
  dist::SplitOptions opts;
  opts.axis = dist::SplitAxis::kSystem;
  opts.num_splits = 3;
  opts.study = small_options(42);
  const dist::StudyManifest m = dist::plan_split(opts);
  for (std::size_t i = 0; i < m.systems.size(); ++i) {
    const auto expected = static_cast<std::uint32_t>(i % 3);
    for (const dist::Assignment& a : m.assignments) {
      for (const dist::Slice& slice : a.slices) {
        if (slice.system != m.systems[i]) continue;
        EXPECT_EQ(a.id, expected)
            << parse::system_short_name(m.systems[i])
            << " landed on the wrong assignment";
        EXPECT_EQ(slice.chunk_count(), m.chunk_counts[i])
            << "system axis must assign whole systems";
      }
    }
  }
}

TEST(DistSplitProperty, TimeAxisSlicesAreContiguousAndOrdered) {
  dist::SplitOptions opts;
  opts.axis = dist::SplitAxis::kTime;
  opts.num_splits = 4;
  opts.study = small_options(42);
  const dist::StudyManifest m = dist::plan_split(opts);
  for (std::size_t i = 0; i < m.systems.size(); ++i) {
    const std::uint64_t chunks = m.chunk_counts[i];
    for (const dist::Assignment& a : m.assignments) {
      for (const dist::Slice& slice : a.slices) {
        if (slice.system != m.systems[i]) continue;
        // One contiguous run per system, at the documented boundaries.
        ASSERT_EQ(slice.ranges.size(), 1u);
        EXPECT_EQ(slice.ranges[0].begin, a.id * chunks / 4);
        EXPECT_EQ(slice.ranges[0].end, (a.id + 1ull) * chunks / 4);
      }
    }
  }
}

TEST(DistSplitProperty, PlanningIsDeterministic) {
  for (const auto axis : {dist::SplitAxis::kSystem, dist::SplitAxis::kTime,
                          dist::SplitAxis::kCategory}) {
    dist::SplitOptions opts;
    opts.axis = axis;
    opts.num_splits = 3;
    opts.study = small_options(99);
    const dist::StudyManifest a = dist::plan_split(opts);
    const dist::StudyManifest b = dist::plan_split(opts);
    ASSERT_EQ(a.assignments.size(), b.assignments.size());
    for (std::size_t i = 0; i < a.assignments.size(); ++i) {
      ASSERT_EQ(a.assignments[i].slices.size(),
                b.assignments[i].slices.size());
      for (std::size_t s = 0; s < a.assignments[i].slices.size(); ++s) {
        const auto& sa = a.assignments[i].slices[s];
        const auto& sb = b.assignments[i].slices[s];
        ASSERT_EQ(sa.system, sb.system);
        ASSERT_EQ(sa.ranges.size(), sb.ranges.size());
        for (std::size_t r = 0; r < sa.ranges.size(); ++r) {
          EXPECT_EQ(sa.ranges[r].begin, sb.ranges[r].begin);
          EXPECT_EQ(sa.ranges[r].end, sb.ranges[r].end);
        }
      }
    }
  }
}

TEST(DistSplitProperty, ManifestRoundTripsThroughDisk) {
  const fs::path dir = fs::temp_directory_path() /
                       ("wss_dist_split_rt_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  for (const auto axis : {dist::SplitAxis::kSystem, dist::SplitAxis::kTime,
                          dist::SplitAxis::kCategory}) {
    dist::SplitOptions opts;
    opts.axis = axis;
    opts.num_splits = 3;
    opts.study = small_options(4242);
    const dist::StudyManifest m = dist::plan_split(opts);
    dist::write_manifest(m, dir.string());
    const dist::StudyManifest loaded = dist::load_manifest(dir.string());
    EXPECT_EQ(loaded.axis, m.axis);
    EXPECT_EQ(loaded.num_splits, m.num_splits);
    EXPECT_EQ(loaded.options.sim.seed, m.options.sim.seed);
    EXPECT_EQ(loaded.options.sim.category_cap, m.options.sim.category_cap);
    EXPECT_EQ(loaded.options.sim.chatter_events,
              m.options.sim.chatter_events);
    EXPECT_EQ(loaded.options.sim.inject_corruption,
              m.options.sim.inject_corruption);
    EXPECT_EQ(loaded.options.sim.threshold_us, m.options.sim.threshold_us);
    EXPECT_EQ(loaded.options.pipeline.chunk_events,
              m.options.pipeline.chunk_events);
    EXPECT_EQ(loaded.systems, m.systems);
    EXPECT_EQ(loaded.chunk_counts, m.chunk_counts);
    ASSERT_EQ(loaded.assignments.size(), m.assignments.size());
    for (std::size_t i = 0; i < m.assignments.size(); ++i) {
      ASSERT_EQ(loaded.assignments[i].slices.size(),
                m.assignments[i].slices.size());
    }
    fs::remove_all(dir);
  }
}

// The partition property, verified at event granularity: fold every
// worker's wss_pipeline_* counter deltas and compare with an
// independent batch run over the same systems. Equal totals mean
// every event was processed by exactly one slice.
TEST(DistSplitProperty, SliceCounterDeltasFoldToBatchTotals) {
  const core::StudyOptions study = small_options(42);

  // Batch reference: registry deltas across serial runs of all five.
  std::map<std::string, std::uint64_t> before;
  for (const auto& [name, v] : obs::registry().counter_values()) {
    before[name] = v;
  }
  std::uint64_t total_events = 0;
  for (const auto id : parse::kAllSystems) {
    const sim::Simulator sim(id, study.sim);
    total_events += sim.events().size();
    (void)core::run_pipeline(sim, study.pipeline);
  }
  std::map<std::string, std::uint64_t> batch;
  for (const auto& [name, v] : obs::registry().counter_values()) {
    const auto it = before.find(name);
    const std::uint64_t prior = it == before.end() ? 0 : it->second;
    if (v > prior) batch[name] = v - prior;
  }

  const fs::path dir = fs::temp_directory_path() /
                       ("wss_dist_split_fold_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  dist::SplitOptions sopts;
  sopts.axis = dist::SplitAxis::kCategory;  // maximally interleaved
  sopts.num_splits = 3;
  sopts.study = study;
  const dist::StudyManifest m = dist::plan_split(sopts);
  dist::write_manifest(m, dir.string());

  std::map<std::string, std::uint64_t> folded;
  for (std::uint32_t id = 0; id < m.num_splits; ++id) {
    dist::WorkerOptions wopts;
    wopts.manifest_dir = dir.string();
    wopts.worker_id = id;
    const auto report = dist::run_worker(m, wopts);
    ASSERT_EQ(report.outcome, dist::WorkerOutcome::kCompleted);
    const auto partial =
        dist::read_partial(dist::partial_path(dir.string(), id));
    for (const auto& [name, delta] : partial.counter_deltas) {
      folded[name] += delta;
    }
  }
  fs::remove_all(dir);

  // The event-granular pipeline counters must agree exactly. (The
  // chunks counter is merge-side bookkeeping and excluded: workers
  // never fold.)
  for (const std::string name :
       {"wss_pipeline_events_total", "wss_pipeline_bytes_total",
        "wss_pipeline_corrupted_source_lines_total",
        "wss_pipeline_invalid_timestamp_lines_total",
        "wss_pipeline_alerts_tagged_total"}) {
    const auto b = batch.find(name);
    const auto f = folded.find(name);
    const std::uint64_t batch_v = b == batch.end() ? 0 : b->second;
    const std::uint64_t fold_v = f == folded.end() ? 0 : f->second;
    EXPECT_EQ(fold_v, batch_v) << name;
  }
#ifndef WSS_OBS_OFF
  const auto events = batch.find("wss_pipeline_events_total");
  ASSERT_NE(events, batch.end());
  EXPECT_EQ(events->second, total_events);
#endif
}

// Serialization round-trip: a real chunk partial must survive
// save -> load -> save with byte-identical encoding (bit-exact FP
// fields included).
TEST(DistSplitProperty, ChunkPartialSerializationRoundTripsBitExactly) {
  const core::StudyOptions study = small_options(42);
  const sim::Simulator sim(parse::SystemId::kSpirit, study.sim);
  const tag::RuleSet rules = tag::build_ruleset(parse::SystemId::kSpirit);
  const tag::TagEngine engine(rules);
  core::detail::ChunkContext ctx;
  ctx.simulator = &sim;
  ctx.engine = &engine;
  ctx.system = parse::SystemId::kSpirit;
  ctx.num_categories = tag::categories_of(parse::SystemId::kSpirit).size();
  const auto shards = sim.event_shards(study.pipeline.chunk_events);
  ASSERT_FALSE(shards.empty());
  match::MatchScratch scratch;
  const core::PipelineResult original =
      core::detail::process_chunk(ctx, shards[0].begin, shards[0].end,
                                  scratch);

  const auto encode = [](const core::PipelineResult& r) {
    std::ostringstream os(std::ios::binary);
    stream::CheckpointWriter w(os);
    dist::save_result(w, r);
    return std::move(os).str();
  };
  const std::string bytes = encode(original);
  std::istringstream is(bytes, std::ios::binary);
  stream::CheckpointReader r(is);
  const core::PipelineResult decoded = dist::load_result(r);
  EXPECT_EQ(encode(decoded), bytes);
  EXPECT_EQ(decoded.physical_messages, original.physical_messages);
  EXPECT_EQ(decoded.tagged_alerts.size(), original.tagged_alerts.size());
  EXPECT_EQ(decoded.messages_by_source, original.messages_by_source);
}

}  // namespace
}  // namespace wss
