// Checkpoint/restore of the full streaming engine:
// checkpoint -> restore -> finish must equal an uninterrupted run,
// bit for bit -- FP accumulators, reservoir contents, filter verdicts,
// emitted alert sequence, everything.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/generator.hpp"
#include "stream/pipeline.hpp"

namespace wss {
namespace {

void expect_snapshots_identical(const stream::StreamSnapshot& a,
                                const stream::StreamSnapshot& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.first_time, b.first_time);
  EXPECT_EQ(a.watermark, b.watermark);
  EXPECT_EQ(a.physical_messages, b.physical_messages);
  // Bit-exact doubles: plain == on purpose.
  EXPECT_EQ(a.weighted_messages, b.weighted_messages);
  EXPECT_EQ(a.physical_bytes, b.physical_bytes);
  EXPECT_EQ(a.weighted_bytes, b.weighted_bytes);
  EXPECT_EQ(a.corrupted_source_lines, b.corrupted_source_lines);
  EXPECT_EQ(a.invalid_timestamp_lines, b.invalid_timestamp_lines);
  ASSERT_EQ(a.weighted_alert_counts.size(), b.weighted_alert_counts.size());
  for (std::size_t c = 0; c < a.weighted_alert_counts.size(); ++c) {
    EXPECT_EQ(a.weighted_alert_counts[c], b.weighted_alert_counts[c])
        << "category " << c;
  }
  EXPECT_EQ(a.physical_alert_counts, b.physical_alert_counts);
  EXPECT_EQ(a.categories_observed, b.categories_observed);
  EXPECT_EQ(a.tagging.true_positives, b.tagging.true_positives);
  EXPECT_EQ(a.tagging.false_positives, b.tagging.false_positives);
  EXPECT_EQ(a.tagging.true_negatives, b.tagging.true_negatives);
  EXPECT_EQ(a.tagging.false_negatives, b.tagging.false_negatives);
  EXPECT_EQ(a.measured_gb, b.measured_gb);
  EXPECT_EQ(a.rate_bytes_per_sec, b.rate_bytes_per_sec);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(a.compressed_fraction.has_value(),
            b.compressed_fraction.has_value());
  if (a.compressed_fraction) {
    EXPECT_EQ(*a.compressed_fraction, *b.compressed_fraction);
  }
  EXPECT_EQ(a.alerts_offered, b.alerts_offered);
  EXPECT_EQ(a.alerts_admitted, b.alerts_admitted);
  EXPECT_EQ(a.filtered_counts, b.filtered_counts);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.filtered_by_type[i], b.filtered_by_type[i]);
  }
  EXPECT_EQ(a.gap_count, b.gap_count);
  EXPECT_EQ(a.gap_mean_s, b.gap_mean_s);
  EXPECT_EQ(a.gap_stddev_s, b.gap_stddev_s);
  EXPECT_EQ(a.gap_min_s, b.gap_min_s);
  EXPECT_EQ(a.gap_max_s, b.gap_max_s);
  EXPECT_EQ(a.gap_p50_s, b.gap_p50_s);
  EXPECT_EQ(a.gap_p95_s, b.gap_p95_s);
  EXPECT_EQ(a.gap_p99_s, b.gap_p99_s);
  EXPECT_EQ(a.messages_in_window, b.messages_in_window);
  EXPECT_EQ(a.raw_alerts_in_window, b.raw_alerts_in_window);
  EXPECT_EQ(a.admitted_in_window, b.admitted_in_window);
  EXPECT_EQ(a.predict_enabled, b.predict_enabled);
  EXPECT_EQ(a.predict_fitted, b.predict_fitted);
  EXPECT_EQ(a.predict_issued, b.predict_issued);
  EXPECT_EQ(a.predict_hits, b.predict_hits);
  EXPECT_EQ(a.predict_misses, b.predict_misses);
  EXPECT_EQ(a.predict_false_alarms, b.predict_false_alarms);
  EXPECT_EQ(a.predict_incidents, b.predict_incidents);
  EXPECT_EQ(a.predict_rules, b.predict_rules);
  EXPECT_EQ(a.predict_candidates, b.predict_candidates);
  EXPECT_EQ(a.predict_routed, b.predict_routed);
}

struct Emitted {
  std::vector<filter::Alert> alerts;
  void attach(stream::StreamPipeline& p) {
    p.set_alert_sink(
        [this](const filter::Alert& a) { alerts.push_back(a); });
  }
};

TEST(StreamCheckpoint, RestoreAndFinishEqualsUninterrupted) {
  sim::SimOptions opts;
  opts.category_cap = 900;
  opts.chatter_events = 4000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, opts);
  const auto& events = simulator.events();
  ASSERT_GT(events.size(), 1000u);
  // An awkward cut on purpose: mid-chunk, so the open partial, the
  // filter table, and the reservoir all carry live state across the
  // checkpoint.
  const std::size_t cut = events.size() / 2 + 137;

  stream::StreamPipeline uninterrupted(parse::SystemId::kLiberty);
  Emitted full;
  full.attach(uninterrupted);
  for (std::size_t i = 0; i < events.size(); ++i) {
    uninterrupted.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  uninterrupted.finish();

  stream::StreamPipeline first(parse::SystemId::kLiberty);
  Emitted head;
  head.attach(first);
  for (std::size_t i = 0; i < cut; ++i) {
    first.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  std::stringstream checkpoint;
  first.save(checkpoint);

  stream::StreamPipeline resumed(parse::SystemId::kLiberty);
  resumed.restore(checkpoint);
  EXPECT_EQ(resumed.events(), cut);
  Emitted tail;
  tail.attach(resumed);
  for (std::size_t i = cut; i < events.size(); ++i) {
    resumed.ingest(events[i], simulator.renderer().render(events[i], i));
  }
  resumed.finish();

  expect_snapshots_identical(resumed.snapshot(), uninterrupted.snapshot());

  // The emitted survivor stream splices exactly.
  ASSERT_EQ(head.alerts.size() + tail.alerts.size(), full.alerts.size());
  for (std::size_t i = 0; i < full.alerts.size(); ++i) {
    const auto& got =
        i < head.alerts.size() ? head.alerts[i]
                               : tail.alerts[i - head.alerts.size()];
    EXPECT_EQ(got.time, full.alerts[i].time) << "alert " << i;
    EXPECT_EQ(got.category, full.alerts[i].category) << "alert " << i;
    EXPECT_EQ(got.source, full.alerts[i].source) << "alert " << i;
  }
}

TEST(StreamCheckpoint, FileModeRoundTrip) {
  // Render a small log, stream it line by line with a mid-stream
  // checkpoint, and require equivalence in file (analyze-style) mode
  // too -- this exercises year-tracker and source-intern state.
  sim::SimOptions opts;
  opts.category_cap = 400;
  opts.chatter_events = 1500;
  const sim::Simulator simulator(parse::SystemId::kSpirit, opts);
  std::vector<std::string> lines;
  simulator.for_each_line(
      [&](std::string_view l) { lines.emplace_back(l); });
  ASSERT_GT(lines.size(), 200u);
  const std::size_t cut = lines.size() / 3 + 29;

  stream::StreamPipelineOptions popts;
  popts.strict_order = false;
  stream::StreamPipeline uninterrupted(parse::SystemId::kSpirit, popts);
  for (const auto& l : lines) uninterrupted.ingest_line(l);
  uninterrupted.finish();

  stream::StreamPipeline first(parse::SystemId::kSpirit, popts);
  for (std::size_t i = 0; i < cut; ++i) first.ingest_line(lines[i]);
  std::stringstream checkpoint;
  first.save(checkpoint);

  stream::StreamPipeline resumed(parse::SystemId::kSpirit, popts);
  resumed.restore(checkpoint);
  for (std::size_t i = cut; i < lines.size(); ++i) {
    resumed.ingest_line(lines[i]);
  }
  resumed.finish();

  expect_snapshots_identical(resumed.snapshot(), uninterrupted.snapshot());
}

// ---- Prediction-stage state across the checkpoint ----

struct PredictedStream {
  std::vector<predict::Prediction> predictions;
  void attach(stream::StreamPipeline& p) {
    p.set_prediction_sink([this](const predict::Prediction& pr) {
      predictions.push_back(pr);
    });
  }
};

void expect_prediction_splice(const PredictedStream& head,
                              const PredictedStream& tail,
                              const PredictedStream& full) {
  ASSERT_EQ(head.predictions.size() + tail.predictions.size(),
            full.predictions.size());
  for (std::size_t i = 0; i < full.predictions.size(); ++i) {
    const auto& got =
        i < head.predictions.size()
            ? head.predictions[i]
            : tail.predictions[i - head.predictions.size()];
    EXPECT_EQ(got.issued_at, full.predictions[i].issued_at) << "pred " << i;
    EXPECT_EQ(got.category, full.predictions[i].category) << "pred " << i;
    EXPECT_EQ(got.window_begin, full.predictions[i].window_begin)
        << "pred " << i;
    EXPECT_EQ(got.window_end, full.predictions[i].window_end) << "pred " << i;
  }
}

TEST(StreamCheckpoint, PredictStateRoundTripsMidTrainingAndPostFit) {
  sim::SimOptions opts;
  opts.category_cap = 900;
  opts.chatter_events = 4000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, opts);
  const auto& events = simulator.events();
  const std::size_t cut = events.size() / 2 + 137;
  const std::size_t total_alerts = simulator.ground_truth_alerts().size();
  ASSERT_GT(total_alerts, 100u);

  // Two training sizes, chosen against the cut: a small one so the cut
  // lands AFTER fit (live miner, routing, and pending windows cross
  // the checkpoint) and a huge one so the cut lands MID-TRAINING (the
  // training buffer itself crosses).
  for (const std::size_t train_alerts :
       {total_alerts / 10, total_alerts * 2}) {
    SCOPED_TRACE(testing::Message() << "train_alerts " << train_alerts);
    stream::StreamPipelineOptions popts;
    popts.predict.enabled = true;
    popts.predict.train_alerts = train_alerts;

    stream::StreamPipeline uninterrupted(parse::SystemId::kLiberty, popts);
    PredictedStream full;
    full.attach(uninterrupted);
    for (std::size_t i = 0; i < events.size(); ++i) {
      uninterrupted.ingest(events[i],
                           simulator.renderer().render(events[i], i));
    }
    uninterrupted.finish();

    stream::StreamPipeline first(parse::SystemId::kLiberty, popts);
    PredictedStream head;
    head.attach(first);
    for (std::size_t i = 0; i < cut; ++i) {
      first.ingest(events[i], simulator.renderer().render(events[i], i));
    }
    std::stringstream checkpoint;
    first.save(checkpoint);

    stream::StreamPipeline resumed(parse::SystemId::kLiberty, popts);
    PredictedStream tail;
    tail.attach(resumed);  // sink survives restore (set before it)
    resumed.restore(checkpoint);
    for (std::size_t i = cut; i < events.size(); ++i) {
      resumed.ingest(events[i], simulator.renderer().render(events[i], i));
    }
    resumed.finish();

    expect_snapshots_identical(resumed.snapshot(), uninterrupted.snapshot());
    expect_prediction_splice(head, tail, full);
  }
}

TEST(StreamCheckpoint, PredictDisabledRoundTripStaysDisabled) {
  stream::StreamPipeline p(parse::SystemId::kLiberty);
  std::stringstream checkpoint;
  p.save(checkpoint);
  stream::StreamPipeline q(parse::SystemId::kLiberty);
  q.restore(checkpoint);
  EXPECT_FALSE(q.snapshot().predict_enabled);
}

TEST(StreamCheckpoint, RejectsV2WithUpgradeDiagnostic) {
  stream::StreamPipeline p(parse::SystemId::kLiberty);
  std::stringstream checkpoint;
  p.save(checkpoint);
  std::string bytes = checkpoint.str();
  // The header is magic(u32 LE) then version(u32 LE): rewrite the
  // version field to 2, as a pre-prediction build would have written.
  ASSERT_GE(bytes.size(), 8u);
  bytes[4] = 2;
  bytes[5] = bytes[6] = bytes[7] = 0;
  std::stringstream v2(bytes);
  stream::StreamPipeline q(parse::SystemId::kLiberty);
  try {
    q.restore(v2);
    FAIL() << "v2 checkpoint was accepted";
  } catch (const std::runtime_error& e) {
    // One line, names the version AND the cure.
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported version 2"), std::string::npos) << what;
    EXPECT_NE(what.find("regenerate"), std::string::npos) << what;
    EXPECT_EQ(what.find('\n'), std::string::npos) << what;
  }
}

TEST(StreamCheckpoint, RejectsWrongSystem) {
  stream::StreamPipeline liberty(parse::SystemId::kLiberty);
  std::stringstream checkpoint;
  liberty.save(checkpoint);
  stream::StreamPipeline spirit(parse::SystemId::kSpirit);
  EXPECT_THROW(spirit.restore(checkpoint), std::runtime_error);
}

TEST(StreamCheckpoint, RejectsTruncatedCheckpoint) {
  stream::StreamPipeline p(parse::SystemId::kLiberty);
  std::stringstream checkpoint;
  p.save(checkpoint);
  const std::string full = checkpoint.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  stream::StreamPipeline q(parse::SystemId::kLiberty);
  EXPECT_THROW(q.restore(cut), std::runtime_error);
}

}  // namespace
}  // namespace wss
