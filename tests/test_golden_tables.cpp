// Golden-file regression suite: every paper artifact (Tables 1-6 and
// the Figure 2/5/6 data series) is rendered to canonical text and
// byte-compared against the checked-in files under tests/golden/.
// Doubles are serialized at %.17g, so the suite fails if any weighted
// count, severity cross-tab, or fit parameter drifts at all.
//
// Intentional change? Rebless with
//   cmake --build build --target update-goldens
// then review the git diff of tests/golden/ and commit it.
#include "core/golden.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace wss::core {
namespace {

#ifndef WSS_GOLDEN_DIR
#error "tests/CMakeLists.txt must define WSS_GOLDEN_DIR"
#endif

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Line number and content of the first differing line, for readable
/// failure output (the full files can be hundreds of KB).
std::string first_diff(const std::string& expected,
                       const std::string& actual) {
  std::istringstream e(expected);
  std::istringstream a(actual);
  std::string el;
  std::string al;
  for (std::size_t line = 1;; ++line) {
    const bool got_e = static_cast<bool>(std::getline(e, el));
    const bool got_a = static_cast<bool>(std::getline(a, al));
    if (!got_e && !got_a) return "files identical";
    if (el != al || got_e != got_a) {
      return "line " + std::to_string(line) + ":\n  golden: " +
             (got_e ? el : "<eof>") + "\n  actual: " + (got_a ? al : "<eof>");
    }
  }
}

TEST(GoldenTables, AllArtifactsMatch) {
  // One shared Study: the artifacts all read the same cached pipeline
  // results, so the suite costs one simulation pass, not fifteen.
  Study study(golden_study_options());
  for (const auto& artifact : golden_artifacts()) {
    const std::string path = std::string(WSS_GOLDEN_DIR) + "/" + artifact.file;
    const std::string expected = read_file(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path << " (" << artifact.what
        << ") -- run: cmake --build build --target update-goldens";
    const std::string actual = artifact.produce(study);
    EXPECT_EQ(expected, actual)
        << artifact.file << " (" << artifact.what << ") drifted; "
        << first_diff(expected, actual)
        << "\nIf intentional: cmake --build build --target update-goldens";
  }
}

TEST(GoldenTables, CoversAllSixTables) {
  // The acceptance bar: every one of the paper's six tables has a
  // golden. Table 4 is per-system (five files).
  std::size_t tables = 0;
  for (const auto& a : golden_artifacts()) {
    if (a.file.rfind("table", 0) == 0) ++tables;
  }
  EXPECT_EQ(tables, 5u + parse::kNumSystems);  // 1,2,3,5,6 + five table4_*
}

}  // namespace
}  // namespace wss::core
