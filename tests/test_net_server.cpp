// Loopback integration suite for `wss serve` (the net label's
// centerpiece): real sockets against a running Server -- TCP framing
// edge cases, handshake routing, UDP ingest, per-tenant isolation,
// accounted drops under a stalled tenant, lossless TCP backpressure,
// the HTTP endpoints, and the round-trip proof that a tenant's final
// table is byte-identical to `wss stream --in` over the same
// delivered lines.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "stream/pipeline.hpp"

namespace wss::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string be32(std::uint32_t v) {
  std::string s;
  s.push_back(static_cast<char>((v >> 24) & 0xff));
  s.push_back(static_cast<char>((v >> 16) & 0xff));
  s.push_back(static_cast<char>((v >> 8) & 0xff));
  s.push_back(static_cast<char>(v & 0xff));
  return s;
}

TenantConfig tenant(const std::string& name, parse::SystemId system,
                    std::size_t queue = 4096,
                    std::uint64_t ingest_delay_us = 0) {
  TenantConfig cfg;
  cfg.name = name;
  cfg.system = system;
  cfg.queue_capacity = queue;
  cfg.ingest_delay_us = ingest_delay_us;
  return cfg;
}

const ServeTenantReport* find_tenant(const ServeReport& report,
                                     const std::string& name) {
  for (const auto& t : report.tenants) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

class NetServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (runner_.joinable()) stop();
  }

  void start(ServeOptions opts) {
    server_ = std::make_unique<Server>(std::move(opts));
    server_->bind();
    runner_ = std::thread([this] {
      try {
        report_ = server_->run();
      } catch (const std::exception& e) {
        run_error_ = e.what();
      }
    });
  }

  ServeReport stop() {
    server_->request_stop();
    runner_.join();
    EXPECT_EQ(run_error_, "");
    return report_;
  }

  /// Polls /status until it contains `needle` (enqueue counters are
  /// event-loop-side, so "all bytes received" is observable here
  /// before any stop is requested).
  void wait_status_contains(const std::string& needle) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (server_->status_json().find(needle) != std::string::npos) return;
      std::this_thread::sleep_for(2ms);
    }
    FAIL() << "status never showed: " << needle << "\nlast: "
           << server_->status_json();
  }

  std::unique_ptr<Server> server_;
  std::thread runner_;
  ServeReport report_;
  std::string run_error_;
};

/// Writes `data` to a fresh loopback connection in `chunk`-byte
/// slices with tiny pauses, then closes -- forcing the decoder through
/// partial/coalesced segment boundaries.
void blast_chunked(std::uint16_t port, const std::string& data,
                   std::size_t chunk) {
  Fd c = connect_tcp(resolve_ipv4("127.0.0.1", port));
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t n = std::min(chunk, data.size() - off);
    write_all(c.get(), data.data() + off, n);
    std::this_thread::sleep_for(1ms);
  }
}

TEST_F(NetServerTest, TcpHandshakeRoutedFramingEdges) {
  ServeOptions opts;
  opts.tcp.push_back({0, ""});  // handshake-routed
  opts.tenant_defaults = tenant("", parse::SystemId::kLiberty);
  start(std::move(opts));

  // Handshake split mid-token, CRLF line, coalesced lines, and an
  // unterminated tail that only the EOF flush can deliver.
  blast_chunked(server_->tcp_port(0),
                "tenant=edge system=liberty\n"
                "first line\nsecond line\r\nthird line\nunterminated tail",
                7);
  // The tail is only flushed once the server sees EOF; wait for it so
  // the stop request races nothing.
  wait_status_contains("\"name\":\"edge\",\"system\":\"liberty\",\"delivered\":4");

  const ServeReport report = stop();
  const ServeTenantReport* t = find_tenant(report, "edge");
  ASSERT_NE(t, nullptr) << "handshake did not create the tenant";
  EXPECT_EQ(t->system, "liberty");
  EXPECT_EQ(t->delivered, 4u);
  EXPECT_EQ(t->dropped, 0u);
  EXPECT_EQ(t->ingested, 4u);
  EXPECT_EQ(report.connections, 1u);
  EXPECT_EQ(report.protocol_errors, 0u);
}

TEST_F(NetServerTest, TcpPortKeyedListenerTakesDataFromByteOne) {
  ServeOptions opts;
  opts.tcp.push_back({0, "fixed"});
  opts.tenants.push_back(tenant("fixed", parse::SystemId::kLiberty));
  start(std::move(opts));

  SinkOptions sopts;
  sopts.endpoint = {Transport::kTcp, "127.0.0.1", server_->tcp_port(0)};
  SinkClient client(sopts);  // empty tenant: no handshake line
  client.send(0, "alpha");
  client.send(0, "beta");
  client.close();
  wait_status_contains(
      "\"name\":\"fixed\",\"system\":\"liberty\",\"delivered\":2");

  const ServeTenantReport* t = find_tenant(stop(), "fixed");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, 2u);
  EXPECT_EQ(t->ingested, 2u);
}

TEST_F(NetServerTest, LenPrefixHandshakeSwitchesDecoder) {
  ServeOptions opts;
  opts.tcp.push_back({0, ""});
  opts.tenant_defaults = tenant("", parse::SystemId::kLiberty);
  start(std::move(opts));

  // The handshake line and the first frame's header arrive together
  // (take_rest hand-off), the second frame is split mid-payload.
  const std::string first = "tenant=lenf system=liberty framing=len\n" +
                            be32(5) + "hello" + be32(10) + "split";
  Fd c = connect_tcp(resolve_ipv4("127.0.0.1", server_->tcp_port(0)));
  write_all(c.get(), first.data(), first.size());
  std::this_thread::sleep_for(20ms);
  write_all(c.get(), "apart", 5);
  c.reset();  // orderly FIN
  wait_status_contains(
      "\"name\":\"lenf\",\"system\":\"liberty\",\"delivered\":2");

  const ServeTenantReport* t = find_tenant(stop(), "lenf");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, 2u);
  EXPECT_EQ(t->ingested, 2u);
}

TEST_F(NetServerTest, UdpDatagramIngest) {
  ServeOptions opts;
  opts.udp.push_back({0, "u"});
  opts.tenants.push_back(tenant("u", parse::SystemId::kLiberty));
  start(std::move(opts));

  Fd tx = udp_socket();
  const Ipv4 to = resolve_ipv4("127.0.0.1", server_->udp_port(0));
  // Two lines in one datagram (trailing empty segment is not a line),
  // a bare line with no terminator, and a CRLF-terminated line.
  for (const char* gram_cstr : {"a\nb\n", "c", "d\r\n"}) {
    const std::string gram(gram_cstr);
    ASSERT_TRUE(send_dgram(tx.get(), to, gram.data(), gram.size()));
  }
  wait_status_contains("\"name\":\"u\",\"system\":\"liberty\",\"delivered\":4");

  const ServeTenantReport* t = find_tenant(stop(), "u");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, 4u);
  EXPECT_EQ(t->dropped, 0u);
  EXPECT_EQ(t->ingested, 4u);
}

TEST_F(NetServerTest, StalledTenantDropsAreAccountedNeverSilent) {
  ServeOptions opts;
  opts.udp.push_back({0, "stall"});
  // 4-slot ring + 2ms per ingested line: the consumer cannot keep up
  // with a burst, so the ring's drop-oldest path must engage.
  opts.tenants.push_back(
      tenant("stall", parse::SystemId::kLiberty, /*queue=*/4,
             /*ingest_delay_us=*/2000));
  start(std::move(opts));

  Fd tx = udp_socket();
  const Ipv4 to = resolve_ipv4("127.0.0.1", server_->udp_port(0));
  const std::string line = "burst line\n";
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(send_dgram(tx.get(), to, line.data(), line.size()));
  }
  wait_status_contains(
      "\"name\":\"stall\",\"system\":\"liberty\",\"delivered\":200");

  const ServeTenantReport* t = find_tenant(stop(), "stall");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, 200u);
  EXPECT_GT(t->dropped, 0u);
  // The invariant that makes the drops "accounted, never silent":
  // every delivered frame is either ingested or counted dropped.
  EXPECT_EQ(t->ingested + t->dropped, t->delivered);
}

TEST_F(NetServerTest, TcpBackpressurePausesInsteadOfDropping) {
  ServeOptions opts;
  opts.tcp.push_back({0, "slowtcp"});
  opts.tenants.push_back(
      tenant("slowtcp", parse::SystemId::kLiberty, /*queue=*/4,
             /*ingest_delay_us=*/500));
  opts.drain_grace_ms = 30000;  // the drain must outlast the slow drain
  start(std::move(opts));

  SinkOptions sopts;
  sopts.endpoint = {Transport::kTcp, "127.0.0.1", server_->tcp_port(0)};
  SinkClient client(sopts);
  for (int i = 0; i < 500; ++i) client.send(0, "tcp line under pressure");
  client.close();
  // Pause/resume cycles deliver all 500 before the stop is requested;
  // the drain then only has the ring tail to finish.
  wait_status_contains(
      "\"name\":\"slowtcp\",\"system\":\"liberty\",\"delivered\":500");

  const ServeTenantReport* t = find_tenant(stop(), "slowtcp");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, 500u);
  EXPECT_EQ(t->dropped, 0u) << "TCP into a full ring must pause, not evict";
  EXPECT_EQ(t->ingested, 500u);
}

TEST_F(NetServerTest, TenantsAreIsolatedAndMatchWssStreamBitForBit) {
  // Two tenants on different systems fed concurrently over one
  // handshake-routed listener; each final table must be byte-identical
  // to `wss stream --in` over the same lines.
  sim::SimOptions gen;
  gen.category_cap = 100;
  gen.chatter_events = 500;
  const sim::Simulator lib(parse::SystemId::kLiberty, gen);
  const sim::Simulator spi(parse::SystemId::kSpirit, gen);
  auto render_all = [](const sim::Simulator& s) {
    std::vector<std::string> lines;
    const auto& events = s.events();
    lines.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      lines.push_back(s.renderer().render(events[i], i));
    }
    return lines;
  };
  const std::vector<std::string> lib_lines = render_all(lib);
  const std::vector<std::string> spi_lines = render_all(spi);

  ServeOptions opts;
  opts.tcp.push_back({0, ""});
  opts.tenants.push_back(tenant("iso-a", parse::SystemId::kLiberty));
  opts.tenants.push_back(tenant("iso-b", parse::SystemId::kSpirit));
  start(std::move(opts));
  const std::uint16_t port = server_->tcp_port(0);

  auto feed = [port](const std::string& name, const char* system,
                     const std::vector<std::string>& lines) {
    SinkOptions sopts;
    sopts.endpoint = {Transport::kTcp, "127.0.0.1", port};
    sopts.tenant = name;
    sopts.system_short = system;
    SinkClient client(sopts);
    for (const auto& line : lines) client.send(0, line);
    client.close();
  };
  std::thread ta(feed, "iso-a", "liberty", std::cref(lib_lines));
  std::thread tb(feed, "iso-b", "spirit", std::cref(spi_lines));
  ta.join();
  tb.join();
  wait_status_contains("\"name\":\"iso-a\",\"system\":\"liberty\",\"delivered\":" +
                       std::to_string(lib_lines.size()));
  wait_status_contains("\"name\":\"iso-b\",\"system\":\"spirit\",\"delivered\":" +
                       std::to_string(spi_lines.size()));

  const ServeReport report = stop();
  const ServeTenantReport* a = find_tenant(report, "iso-a");
  const ServeTenantReport* b = find_tenant(report, "iso-b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->ingested, lib_lines.size());
  EXPECT_EQ(b->ingested, spi_lines.size());
  EXPECT_EQ(a->dropped, 0u);
  EXPECT_EQ(b->dropped, 0u);

  // Reference: the offline streaming CLI over the identical byte
  // stream.
  const fs::path dir =
      fs::temp_directory_path() /
      ("wss_net_equiv_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  auto reference = [&dir](const char* system,
                          const std::vector<std::string>& lines) {
    const fs::path log = dir / (std::string(system) + ".log");
    std::ofstream os(log);
    for (const auto& line : lines) os << line << "\n";
    os.close();
    std::vector<const char*> argv = {"wss", "stream", "--system", system,
                                     "--in"};
    const std::string log_str = log.string();
    argv.push_back(log_str.c_str());
    std::ostringstream out, err;
    EXPECT_EQ(
        cli::run(cli::Args::parse(static_cast<int>(argv.size()), argv.data()),
                 out, err),
        0)
        << err.str();
    return out.str();
  };
  EXPECT_EQ(a->table, reference("liberty", lib_lines));
  EXPECT_EQ(b->table, reference("spirit", spi_lines));
  fs::remove_all(dir);
}

TEST_F(NetServerTest, HttpServesMetricsAndStatus) {
  ServeOptions opts;
  opts.tcp.push_back({0, "webt"});
  opts.tenants.push_back(tenant("webt", parse::SystemId::kLiberty));
  opts.http_enabled = true;
  start(std::move(opts));

  SinkOptions sopts;
  sopts.endpoint = {Transport::kTcp, "127.0.0.1", server_->tcp_port(0)};
  SinkClient client(sopts);
  for (int i = 0; i < 3; ++i) client.send(0, "observed line");
  client.close();
  wait_status_contains(
      "\"name\":\"webt\",\"system\":\"liberty\",\"delivered\":3");

  auto http_get = [this](const std::string& request) {
    Fd c = connect_tcp(resolve_ipv4("127.0.0.1", server_->http_port()));
    write_all(c.get(), request.data(), request.size());
    std::string all;
    char buf[4096];
    for (;;) {
      std::size_t got = 0;
      const IoStatus st = read_some(c.get(), buf, sizeof buf, got);
      if (st == IoStatus::kClosed) return all;
      if (st == IoStatus::kOk) all.append(buf, got);
      else std::this_thread::sleep_for(1ms);
    }
  };

  const std::string metrics =
      http_get("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("wss_net_delivered_total{tenant=\"webt\"} 3"),
            std::string::npos)
      << metrics;

  const std::string status = http_get("GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(status.find("\"schema\":\"wss.serve.v1\""), std::string::npos);
  EXPECT_NE(status.find("\"name\":\"webt\""), std::string::npos);

  const std::string json =
      http_get("GET /metrics.json HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(json.find("wss.obs.v1"), std::string::npos);

  EXPECT_NE(http_get("GET /nope HTTP/1.1\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(http_get("POST /metrics HTTP/1.1\r\n\r\n").find("405"),
            std::string::npos);

  const ServeReport report = stop();
  EXPECT_EQ(report.http_requests, 5u);
}

TEST_F(NetServerTest, ProtocolErrorsCloseTheConnection) {
  ServeOptions opts;
  opts.tcp.push_back({0, ""});
  opts.tenant_defaults = tenant("", parse::SystemId::kLiberty);
  opts.allow_handshake_tenants = true;
  start(std::move(opts));
  const std::uint16_t port = server_->tcp_port(0);

  {  // Shared listener, first line is not a handshake.
    Fd c = connect_tcp(resolve_ipv4("127.0.0.1", port));
    const std::string bad = "plain data with no routing\n";
    write_all(c.get(), bad.data(), bad.size());
  }
  {  // Handshake names an unknown system.
    Fd c = connect_tcp(resolve_ipv4("127.0.0.1", port));
    const std::string bad = "tenant=x system=vax\n";
    write_all(c.get(), bad.data(), bad.size());
  }
  {  // Length-prefixed stream ends mid-frame.
    Fd c = connect_tcp(resolve_ipv4("127.0.0.1", port));
    const std::string bad =
        "tenant=midframe system=liberty framing=len\n" + be32(100) + "short";
    write_all(c.get(), bad.data(), bad.size());
  }

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline &&
         server_->status_json().find("\"protocol_errors_total\":3") ==
             std::string::npos) {
    std::this_thread::sleep_for(2ms);
  }
  const ServeReport report = stop();
  EXPECT_EQ(report.protocol_errors, 3u);
}

TEST_F(NetServerTest, OversizedLinesAreCountedNotDelivered) {
  ServeOptions opts;
  opts.tcp.push_back({0, "cap"});
  opts.tenants.push_back(tenant("cap", parse::SystemId::kLiberty));
  opts.max_frame = 64;
  start(std::move(opts));

  Fd c = connect_tcp(resolve_ipv4("127.0.0.1", server_->tcp_port(0)));
  const std::string data =
      "short one\n" + std::string(500, 'x') + "\nshort two\n";
  write_all(c.get(), data.data(), data.size());
  c.reset();
  wait_status_contains("\"name\":\"cap\",\"system\":\"liberty\",\"delivered\":2");
  wait_status_contains("\"oversized_total\":1");

  const ServeReport report = stop();
  const ServeTenantReport* t = find_tenant(report, "cap");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->delivered, 2u);
  EXPECT_EQ(report.oversized, 1u);
}

TEST_F(NetServerTest, RejectsUnknownTenantWhenHandshakeTenantsDisabled) {
  ServeOptions opts;
  opts.tcp.push_back({0, ""});
  opts.tenants.push_back(tenant("only", parse::SystemId::kLiberty));
  opts.allow_handshake_tenants = false;
  start(std::move(opts));
  const std::uint16_t port = server_->tcp_port(0);

  {  // Unknown tenant: refused.
    Fd c = connect_tcp(resolve_ipv4("127.0.0.1", port));
    const std::string bad = "tenant=intruder system=liberty\nline\n";
    write_all(c.get(), bad.data(), bad.size());
  }
  {  // Declared tenant: still fine.
    Fd c = connect_tcp(resolve_ipv4("127.0.0.1", port));
    const std::string ok = "tenant=only system=liberty\nline\n";
    write_all(c.get(), ok.data(), ok.size());
  }
  wait_status_contains("\"protocol_errors_total\":1");
  wait_status_contains("\"name\":\"only\",\"system\":\"liberty\",\"delivered\":1");

  const ServeReport report = stop();
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].name, "only");
  EXPECT_EQ(report.tenants[0].delivered, 1u);
}

TEST_F(NetServerTest, DrainWritesCheckpointsLoadableByWssStream) {
  const fs::path dir = fs::temp_directory_path() /
                       ("wss_net_ckpt_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  ServeOptions opts;
  opts.tcp.push_back({0, "ck"});
  opts.tenants.push_back(tenant("ck", parse::SystemId::kLiberty));
  opts.checkpoint_dir = dir.string();
  start(std::move(opts));

  SinkOptions sopts;
  sopts.endpoint = {Transport::kTcp, "127.0.0.1", server_->tcp_port(0)};
  SinkClient client(sopts);
  client.send(0, "checkpointed line");
  client.close();
  wait_status_contains("\"name\":\"ck\",\"system\":\"liberty\",\"delivered\":1");

  const ServeReport report = stop();
  ASSERT_EQ(report.checkpoints.size(), 1u);
  const fs::path ckpt = report.checkpoints[0];
  EXPECT_EQ(ckpt.filename().string(), "ck.ckpt");
  ASSERT_TRUE(fs::exists(ckpt));

  // The checkpoint restores into the offline pipeline: the engines are
  // the same code, so `wss stream --restore` accepts a server drain.
  std::ostringstream out, err;
  const std::string ckpt_str = ckpt.string();
  std::vector<const char*> argv = {"wss",  "stream",         "--system",
                                   "liberty", "--in", "/dev/null",
                                   "--restore", ckpt_str.c_str()};
  EXPECT_EQ(
      cli::run(cli::Args::parse(static_cast<int>(argv.size()), argv.data()),
               out, err),
      0)
      << err.str();
  EXPECT_NE(out.str().find("1"), std::string::npos);  // one event restored
  fs::remove_all(dir);
}

#ifndef WSS_PREDICT_OFF
TEST_F(NetServerTest, PredictCountersReconcileWithInjectedIncidents) {
  // A predict-enabled tenant fed a rendered Liberty stream over
  // loopback TCP: the per-tenant wss_predict_* counters must equal
  // what the same lines produce through a local StreamPipeline with
  // the tenant's pipeline options, and hits + misses must equal the
  // injected incident count (every incident decided exactly once).
  sim::SimOptions gen;
  gen.category_cap = 200;
  gen.chatter_events = 4000;
  const sim::Simulator sim(parse::SystemId::kLiberty, gen);
  std::vector<std::string> lines;
  const auto& events = sim.events();
  lines.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    lines.push_back(sim.renderer().render(events[i], i));
  }

  TenantConfig cfg = tenant("predl", parse::SystemId::kLiberty);
  cfg.predict = true;
  cfg.predict_train = 50;

  // Local reference: the tenant consumer is ingest_line over the
  // delivered lines in order, so the same options over the same lines
  // must land on identical prediction stats.
  stream::StreamPipelineOptions popts;
  popts.study.threshold_us = static_cast<util::TimeUs>(cfg.threshold_s * 1e6);
  popts.study.window_us = static_cast<util::TimeUs>(cfg.window_s * 1e6);
  popts.strict_order = false;
  popts.start_year = cfg.start_year;
  popts.predict.enabled = true;
  popts.predict.train_alerts = cfg.predict_train;
  popts.predict.horizon_us = cfg.predict_horizon_us;
  stream::StreamPipeline reference(parse::SystemId::kLiberty, popts);
  for (const auto& line : lines) reference.ingest_line(line);
  reference.finish();
  const stream::StreamSnapshot want = reference.snapshot();
  ASSERT_GT(want.predict_incidents, 0u) << "stream injects no incidents; "
                                           "the reconciliation would be vacuous";
  ASSERT_TRUE(want.predict_fitted);

  ServeOptions opts;
  opts.tcp.push_back({0, "predl"});
  opts.tenants.push_back(cfg);
  opts.http_enabled = true;
  start(std::move(opts));

  SinkOptions sopts;
  sopts.endpoint = {Transport::kTcp, "127.0.0.1", server_->tcp_port(0)};
  SinkClient client(sopts);
  for (const auto& line : lines) client.send(0, line);
  client.close();
  wait_status_contains("\"name\":\"predl\",\"system\":\"liberty\",\"delivered\":" +
                       std::to_string(lines.size()));
  // /status carries the live predict object for predict-enabled
  // tenants (values keep moving until the drain, so presence only).
  wait_status_contains("\"predict\":{\"issued\":");

  const ServeReport report = stop();
  const ServeTenantReport* t = find_tenant(report, "predl");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->ingested, lines.size());
  EXPECT_EQ(t->dropped, 0u) << "drops would desync the reference stream";

  // The drain published the final deltas; the registry counters are
  // exactly what a last /metrics scrape would report.
  const auto counter_value = [](const std::string& base) {
    return obs::registry().counter(base + "{tenant=\"predl\"}").value();
  };
  const std::uint64_t issued = counter_value("wss_predict_issued_total");
  const std::uint64_t hits = counter_value("wss_predict_hits_total");
  const std::uint64_t misses = counter_value("wss_predict_misses_total");
  const std::uint64_t false_alarms =
      counter_value("wss_predict_false_alarms_total");
  EXPECT_EQ(issued, want.predict_issued);
  EXPECT_EQ(hits, want.predict_hits);
  EXPECT_EQ(misses, want.predict_misses);
  EXPECT_EQ(false_alarms, want.predict_false_alarms);
  EXPECT_EQ(hits + misses, want.predict_incidents)
      << "an incident went unaccounted (neither hit nor miss)";
}
#endif  // WSS_PREDICT_OFF

TEST_F(NetServerTest, BindRequiresAnIngestListener) {
  ServeOptions opts;
  opts.http_enabled = true;  // metrics alone is not a server
  Server server(std::move(opts));
  EXPECT_THROW(server.bind(), std::runtime_error);
}

TEST_F(NetServerTest, UdpListenerRequiresDeclaredTenant) {
  ServeOptions opts;
  opts.udp.push_back({0, "ghost"});  // never declared
  Server server(std::move(opts));
  EXPECT_THROW(server.bind(), std::runtime_error);
}

}  // namespace
}  // namespace wss::net
