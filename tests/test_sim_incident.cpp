// Incident planner: calibration properties of each generation mode.
#include "sim/incident.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "filter/simultaneous.hpp"
#include "sim/catalog.hpp"

namespace wss::sim {
namespace {

using parse::SystemId;

constexpr util::TimeUs T = 5 * util::kUsPerSec;

IncidentContext make_ctx(const SystemSpec& spec) {
  IncidentContext ctx;
  ctx.spec = &spec;
  ctx.threshold_us = T;
  return ctx;
}

/// Filters events of one category with Algorithm 3.1 and counts
/// survivors.
std::size_t survivors(const std::vector<SimEvent>& events) {
  filter::SimultaneousFilter f(T);
  std::size_t kept = 0;
  for (const SimEvent& e : events) {
    filter::Alert a;
    a.time = e.time;
    a.source = e.source;
    a.category = static_cast<std::uint16_t>(e.category);
    if (f.admit(a)) ++kept;
  }
  return kept;
}

CategoryGenPlan base_plan(std::uint64_t events, std::uint64_t incidents) {
  CategoryGenPlan p;
  p.category_id = 0;
  p.gen_events = events;
  p.incidents = incidents;
  p.weight = 1.0;
  return p;
}

TEST(Incident, PoissonModeCountsExact) {
  const auto& spec = system_spec(SystemId::kThunderbird);
  auto ctx = make_ctx(spec);
  util::Rng rng(1);
  auto p = base_plan(146, 143);
  p.mode = SourceMode::kPoisson;
  p.engineered_pairs = 3;
  const auto events = generate_category(p, ctx, rng);
  EXPECT_EQ(events.size(), 146u);
  // Distinct ground-truth failures: 146 (pairs are separate failures).
  std::unordered_set<std::uint64_t> failures;
  for (const auto& e : events) failures.insert(e.failure_id);
  EXPECT_EQ(failures.size(), 146u);
  // Filtering merges exactly the engineered pairs.
  EXPECT_EQ(survivors(events), 143u);
}

TEST(Incident, SingleNodeBurstsHitFilteredTarget) {
  const auto& spec = system_spec(SystemId::kSpirit);
  auto ctx = make_ctx(spec);
  util::Rng rng(2);
  auto p = base_plan(5000, 37);
  p.mode = SourceMode::kSingleNodeBursts;
  const auto events = generate_category(p, ctx, rng);
  EXPECT_EQ(events.size(), 5000u);
  EXPECT_EQ(survivors(events), 37u);
  std::unordered_set<std::uint64_t> failures;
  for (const auto& e : events) failures.insert(e.failure_id);
  EXPECT_EQ(failures.size(), 37u);
}

TEST(Incident, EventsAreSortedAndInWindow) {
  const auto& spec = system_spec(SystemId::kLiberty);
  auto ctx = make_ctx(spec);
  util::Rng rng(3);
  auto p = base_plan(2231, 920);
  p.mode = SourceMode::kMultiNodeBursts;
  const auto events = generate_category(p, ctx, rng);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  for (const auto& e : events) {
    EXPECT_GE(e.time, spec.start_time());
    EXPECT_LE(e.time, spec.end_time());
  }
}

TEST(Incident, LeakyChainsRaiseSurvivorsToTarget) {
  const auto& spec = system_spec(SystemId::kBlueGeneL);
  auto ctx = make_ctx(spec);
  util::Rng rng(4);
  auto p = base_plan(3983, 260);
  p.mode = SourceMode::kSingleNodeBursts;
  p.leak_frac = 0.4;
  const auto events = generate_category(p, ctx, rng);
  // Leak math: survivors should still land on the target.
  EXPECT_EQ(survivors(events), 260u);
  // ...but with strictly fewer ground-truth failures than survivors
  // (leaky chains contribute several survivors per failure).
  std::unordered_set<std::uint64_t> failures;
  for (const auto& e : events) failures.insert(e.failure_id);
  EXPECT_LT(failures.size(), 260u);
}

TEST(Incident, StormNodeConcentration) {
  const auto& spec = system_spec(SystemId::kSpirit);
  auto ctx = make_ctx(spec);
  util::Rng rng(5);
  auto p = base_plan(50000, 29);
  p.mode = SourceMode::kSingleNodeBursts;
  p.has_storm = true;
  p.storm_node = SourceNamer::kSpiritStormNode;
  p.storm_event_frac = 0.86;
  p.storm_incident_frac = 20.0 / 29.0;
  const auto events = generate_category(p, ctx, rng);
  std::uint64_t on_storm = 0;
  for (const auto& e : events) {
    if (e.source == SourceNamer::kSpiritStormNode) ++on_storm;
  }
  EXPECT_NEAR(static_cast<double>(on_storm) / 50000.0, 0.86, 0.03);
}

TEST(Incident, ShadowedIncidentIsFilteredButReal) {
  const auto& spec = system_spec(SystemId::kSpirit);
  auto ctx = make_ctx(spec);
  util::Rng rng(6);
  auto p = base_plan(50000, 29);
  p.mode = SourceMode::kSingleNodeBursts;
  p.has_storm = true;
  p.storm_node = SourceNamer::kSpiritStormNode;
  p.storm_event_frac = 0.86;
  p.storm_incident_frac = 20.0 / 29.0;
  p.shadowed_incident = true;
  p.shadow_node = SourceNamer::kSpiritShadowedNode;
  const auto events = generate_category(p, ctx, rng);
  // The shadow node emitted, but the simultaneous filter's survivor
  // count is still the target (its incident is swallowed).
  bool shadow_seen = false;
  for (const auto& e : events) {
    if (e.source == SourceNamer::kSpiritShadowedNode) shadow_seen = true;
  }
  EXPECT_TRUE(shadow_seen);
  EXPECT_EQ(survivors(events), 29u);
  // Ground truth has one more failure than survivors.
  std::unordered_set<std::uint64_t> failures;
  for (const auto& e : events) failures.insert(e.failure_id);
  EXPECT_EQ(failures.size(), 30u);
}

TEST(Incident, MultiNodeBurstsTouchMultipleSources) {
  const auto& spec = system_spec(SystemId::kLiberty);
  auto ctx = make_ctx(spec);
  util::Rng rng(7);
  auto p = base_plan(3000, 500);
  p.mode = SourceMode::kMultiNodeBursts;
  p.nodes_per_burst = 3;
  const auto events = generate_category(p, ctx, rng);
  std::map<std::uint64_t, std::set<std::uint32_t>> sources_per_failure;
  for (const auto& e : events) sources_per_failure[e.failure_id].insert(e.source);
  std::size_t multi = 0;
  for (const auto& [fid, srcs] : sources_per_failure) {
    if (srcs.size() > 1) ++multi;
  }
  EXPECT_GT(multi, sources_per_failure.size() / 2);
}

TEST(Incident, CascadeAnchorsNearSourceCategory) {
  const auto& spec = system_spec(SystemId::kLiberty);
  auto ctx = make_ctx(spec);
  util::Rng rng(8);
  auto anchor_plan = base_plan(44, 19);
  anchor_plan.mode = SourceMode::kSingleNodeBursts;
  std::vector<util::TimeUs> anchors;
  (void)generate_category(anchor_plan, ctx, rng, nullptr, &anchors);
  ASSERT_EQ(anchors.size(), 19u);

  auto dep = base_plan(13, 10);
  dep.category_id = 1;
  dep.mode = SourceMode::kSingleNodeBursts;
  dep.cascade_from = 0;
  dep.cascade_frac = 0.7;
  const auto events = generate_category(dep, ctx, rng, &anchors);
  // At least some dependent incidents start within 2 minutes of an
  // anchor.
  std::size_t near = 0;
  for (const auto& e : events) {
    for (const auto a : anchors) {
      if (e.time >= a && e.time - a < 2 * 60 * util::kUsPerSec) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GE(near, 5u);
}

TEST(Incident, ConcentrationWindow) {
  const auto& spec = system_spec(SystemId::kLiberty);
  auto ctx = make_ctx(spec);
  util::Rng rng(9);
  auto p = base_plan(2231, 920);
  p.mode = SourceMode::kMultiNodeBursts;
  p.concentrate_frac = 0.8;
  p.concentrate_begin_frac = 0.72;
  p.concentrate_len_frac = 0.20;
  const auto events = generate_category(p, ctx, rng);
  const auto window = spec.end_time() - spec.start_time();
  std::size_t late = 0;
  for (const auto& e : events) {
    const double f = static_cast<double>(e.time - spec.start_time()) /
                     static_cast<double>(window);
    if (f >= 0.70) ++late;
  }
  EXPECT_GT(static_cast<double>(late) / static_cast<double>(events.size()),
            0.6);
}

TEST(Incident, JobBurstsUseJobNodes) {
  const auto& spec = system_spec(SystemId::kThunderbird);
  auto ctx = make_ctx(spec);
  util::Rng jrng(10);
  const auto jobs = generate_jobs(spec, jrng, 100);
  ctx.jobs = &jobs;
  util::Rng rng(11);
  auto p = base_plan(2741, 367);
  p.mode = SourceMode::kJobBursts;
  const auto events = generate_category(p, ctx, rng);
  // Each failure's sources span a small contiguous block.
  std::map<std::uint64_t, std::set<std::uint32_t>> per_failure;
  for (const auto& e : events) per_failure[e.failure_id].insert(e.source);
  for (const auto& [fid, srcs] : per_failure) {
    EXPECT_LE(*srcs.rbegin() - *srcs.begin(), 128u);
  }
}

TEST(Incident, WeightsApplied) {
  const auto& spec = system_spec(SystemId::kSpirit);
  auto ctx = make_ctx(spec);
  util::Rng rng(12);
  auto p = base_plan(1000, 29);
  p.mode = SourceMode::kSingleNodeBursts;
  p.weight = 103818.910;
  const auto events = generate_category(p, ctx, rng);
  for (const auto& e : events) EXPECT_DOUBLE_EQ(e.weight, 103818.910);
}

TEST(Incident, NullSpecThrows) {
  IncidentContext ctx;
  util::Rng rng(13);
  auto p = base_plan(10, 5);
  EXPECT_THROW((void)generate_category(p, ctx, rng), std::invalid_argument);
}

TEST(Incident, MergeStreamsSortsGlobally) {
  std::vector<SimEvent> a(3);
  a[0].time = 1;
  a[1].time = 5;
  a[2].time = 9;
  std::vector<SimEvent> b(2);
  b[0].time = 2;
  b[1].time = 7;
  const auto merged = merge_streams({a, b});
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time, merged[i].time);
  }
}

}  // namespace
}  // namespace wss::sim
