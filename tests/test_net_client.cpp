// SinkClient (`wss generate --sink`): exact wire bytes for both TCP
// framings + handshake, and client-side UDP loss accounting that is
// deterministic in the seed and exact against a real receiver.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "net/client.hpp"
#include "net/socket.hpp"

namespace wss::net {
namespace {

using namespace std::chrono_literals;

std::string be32(std::uint32_t v) {
  std::string s;
  s.push_back(static_cast<char>((v >> 24) & 0xff));
  s.push_back(static_cast<char>((v >> 16) & 0xff));
  s.push_back(static_cast<char>((v >> 8) & 0xff));
  s.push_back(static_cast<char>(v & 0xff));
  return s;
}

Fd accept_one(const Fd& listener) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    std::this_thread::sleep_for(1ms);
  }
  ADD_FAILURE() << "no connection within 5s";
  return Fd();
}

std::string read_to_eof(int fd) {
  std::string all;
  char buf[4096];
  for (;;) {
    std::size_t got = 0;
    const IoStatus st = read_some(fd, buf, sizeof buf, got);
    if (st == IoStatus::kClosed) return all;
    if (st == IoStatus::kOk) all.append(buf, got);
    else std::this_thread::sleep_for(1ms);
  }
}

TEST(NetClient, TcpNewlineWireFormat) {
  Fd listener = listen_tcp(resolve_ipv4("127.0.0.1", 0));
  SinkOptions opts;
  opts.endpoint = {Transport::kTcp, "127.0.0.1", bound_port(listener.get())};
  opts.tenant = "acme";
  opts.system_short = "liberty";
  SinkClient client(opts);
  Fd conn = accept_one(listener);
  ASSERT_TRUE(conn.valid());

  client.send(0, "line one");
  client.send(1000, "line two");
  client.close();

  EXPECT_EQ(read_to_eof(conn.get()),
            "tenant=acme system=liberty\nline one\nline two\n");
  EXPECT_EQ(client.stats().offered, 2u);
  EXPECT_EQ(client.stats().delivered, 2u);
  EXPECT_EQ(client.stats().dropped, 0u);
}

TEST(NetClient, TcpLenPrefixWireFormatWithYear) {
  Fd listener = listen_tcp(resolve_ipv4("127.0.0.1", 0));
  SinkOptions opts;
  opts.endpoint = {Transport::kTcp, "127.0.0.1", bound_port(listener.get())};
  opts.tenant = "bank";
  opts.system_short = "spirit";
  opts.start_year = 2004;
  opts.framing = Framing::kLenPrefix;
  SinkClient client(opts);
  Fd conn = accept_one(listener);
  ASSERT_TRUE(conn.valid());

  client.send(0, "payload");
  client.send(0, "");
  client.close();

  EXPECT_EQ(read_to_eof(conn.get()),
            "tenant=bank system=spirit year=2004 framing=len\n" + be32(7) +
                "payload" + be32(0));
  EXPECT_EQ(client.stats().delivered, 2u);
}

TEST(NetClient, TcpWithoutTenantSendsNoHandshake) {
  Fd listener = listen_tcp(resolve_ipv4("127.0.0.1", 0));
  SinkOptions opts;
  opts.endpoint = {Transport::kTcp, "127.0.0.1", bound_port(listener.get())};
  SinkClient client(opts);  // port-keyed listener: data from byte one
  Fd conn = accept_one(listener);
  ASSERT_TRUE(conn.valid());
  client.send(0, "raw");
  client.close();
  EXPECT_EQ(read_to_eof(conn.get()), "raw\n");
}

// Drains every queued datagram out of `fd` (loopback delivery is
// immediate once sendto returns, but give the stack a grace loop).
std::vector<std::string> drain_datagrams(int fd, std::size_t expect) {
  std::vector<std::string> grams;
  char buf[2048];
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (grams.size() < expect &&
         std::chrono::steady_clock::now() < deadline) {
    std::size_t got = 0;
    if (recv_dgram(fd, buf, sizeof buf, got) == IoStatus::kOk) {
      grams.emplace_back(buf, got);
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  return grams;
}

TEST(NetClient, UdpLosslessDeliversEveryDatagram) {
  Fd rx = bind_udp(resolve_ipv4("127.0.0.1", 0), 1 << 20);
  SinkOptions opts;
  opts.endpoint = {Transport::kUdp, "127.0.0.1", bound_port(rx.get())};
  opts.lossless_udp = true;
  SinkClient client(opts);
  for (int i = 0; i < 200; ++i) client.send(i * 1000, "udp line");
  client.close();

  EXPECT_EQ(client.stats().offered, 200u);
  EXPECT_EQ(client.stats().dropped, 0u);
  EXPECT_EQ(client.stats().delivered, 200u);
  const auto grams = drain_datagrams(rx.get(), 200);
  ASSERT_EQ(grams.size(), 200u);
  EXPECT_EQ(grams.front(), "udp line");
}

TEST(NetClient, UdpLossModelIsSeedDeterministicAndExact) {
  auto run = [](std::uint64_t seed) {
    Fd rx = bind_udp(resolve_ipv4("127.0.0.1", 0), 1 << 20);
    SinkOptions opts;
    opts.endpoint = {Transport::kUdp, "127.0.0.1", bound_port(rx.get())};
    opts.udp.base_loss = 0.2;  // force visible loss in 500 offers
    opts.seed = seed;
    SinkClient client(opts);
    for (int i = 0; i < 500; ++i) client.send(i * 100000, "lossy line");
    const sim::TransportStats stats = client.stats();
    client.close();
    // Exactness: a modeled drop is never sent, so the receiver holds
    // precisely `delivered` datagrams.
    EXPECT_EQ(drain_datagrams(rx.get(), stats.delivered).size(),
              stats.delivered);
    return stats;
  };

  const sim::TransportStats a = run(42);
  EXPECT_EQ(a.offered, 500u);
  EXPECT_EQ(a.delivered + a.dropped, a.offered);
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.delivered, 0u);

  const sim::TransportStats b = run(42);  // same seed, same verdicts
  EXPECT_EQ(b.delivered, a.delivered);
  EXPECT_EQ(b.dropped, a.dropped);
}

}  // namespace
}  // namespace wss::net
