// Thread-compatibility of the shared read paths: a single TagEngine /
// Regex / Renderer is documented as safely shareable across threads
// (const calls, no mutable state). Tagging a billion-message corpus is
// embarrassingly parallel, so this property is load-bearing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/rulesets.hpp"

namespace wss {
namespace {

TEST(Threading, SharedTagEngineAcrossThreads) {
  sim::SimOptions opts;
  opts.category_cap = 500;
  opts.chatter_events = 4000;
  opts.inject_corruption = false;
  const sim::Simulator simulator(parse::SystemId::kSpirit, opts);
  const tag::TagEngine engine(tag::build_ruleset(parse::SystemId::kSpirit));

  // Pre-render the corpus (the renderer is also const-shared below).
  std::vector<std::string> lines;
  std::vector<bool> expected;
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    lines.push_back(simulator.line(i));
    expected.push_back(simulator.events()[i].is_alert());
  }

  constexpr int kThreads = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Each worker scans a strided slice; all share `engine`.
      for (std::size_t i = static_cast<std::size_t>(w); i < lines.size();
           i += kThreads) {
        const bool tagged = engine.tag_line(lines[i]).has_value();
        if (tagged != expected[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(Threading, SharedRendererAcrossThreads) {
  sim::SimOptions opts;
  opts.category_cap = 300;
  opts.chatter_events = 2000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, opts);

  // Reference rendering, single-threaded.
  std::vector<std::string> reference;
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    reference.push_back(simulator.line(i));
  }

  constexpr int kThreads = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t i = static_cast<std::size_t>(w);
           i < reference.size(); i += kThreads) {
        if (simulator.line(i) != reference[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace wss
