// Regex engine fuzzing: random pattern strings must either compile or
// throw PatternError (never crash or hang), and compiled patterns must
// search arbitrary text -- including binary garbage -- in bounded
// time. The tag engine runs over hundreds of millions of partially
// corrupted lines, so this robustness is load-bearing.
#include <gtest/gtest.h>

#include "match/nfa.hpp"
#include "util/rng.hpp"

namespace wss::match {
namespace {

std::string random_pattern(util::Rng& rng, std::size_t max_len) {
  static constexpr char kChars[] =
      "ab01.*+?()[]{}|^$\\-, dDwWsS";
  const std::size_t n = 1 + rng.uniform_u64(max_len);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kChars[rng.uniform_u64(sizeof(kChars) - 1)]);
  }
  return out;
}

std::string random_text(util::Rng& rng, std::size_t max_len) {
  const std::size_t n = rng.uniform_u64(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng()));  // full byte range
  }
  return out;
}

TEST(RegexFuzz, CompileEitherSucceedsOrThrowsPatternError) {
  util::Rng rng(2025);
  int compiled = 0;
  int rejected = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    const std::string pattern = random_pattern(rng, 12);
    try {
      const Regex re(pattern);
      ++compiled;
      // Whatever compiled must search without incident.
      (void)re.search("Jun  3 15:42:50 sn373 kernel: test line");
      (void)re.search("");
    } catch (const PatternError&) {
      ++rejected;
    }
  }
  // Both outcomes occur in a healthy fuzz corpus.
  EXPECT_GT(compiled, 500);
  EXPECT_GT(rejected, 500);
}

TEST(RegexFuzz, SearchBinaryGarbage) {
  util::Rng rng(2026);
  const Regex patterns[] = {
      Regex("kernel: EXT3-fs error"),
      Regex("[A-Z]+_[0-9]{2,4}"),
      Regex("(ab|cd)+ef?"),
      Regex("^\\d+ .* RAS [A-Z]+"),
  };
  for (int iter = 0; iter < 2000; ++iter) {
    const std::string text = random_text(rng, 200);
    for (const auto& re : patterns) {
      EXPECT_NO_THROW({ (void)re.search(text); });
    }
  }
}

TEST(RegexFuzz, PrefilterNeverChangesResults) {
  util::Rng rng(2027);
  for (int iter = 0; iter < 1500; ++iter) {
    const std::string pattern = random_pattern(rng, 10);
    std::unique_ptr<Regex> re;
    try {
      re = std::make_unique<Regex>(pattern);
    } catch (const PatternError&) {
      continue;
    }
    for (int t = 0; t < 4; ++t) {
      // Texts over the pattern alphabet so matches actually happen.
      std::string text;
      const std::size_t n = rng.uniform_u64(24);
      for (std::size_t i = 0; i < n; ++i) {
        text.push_back("ab01 ,x"[rng.uniform_u64(7)]);
      }
      EXPECT_EQ(re->search(text, true), re->search(text, false))
          << "pattern=" << pattern << " text=" << text;
    }
  }
}

TEST(RegexFuzz, FullMatchImpliesSearch) {
  util::Rng rng(2028);
  for (int iter = 0; iter < 1500; ++iter) {
    const std::string pattern = random_pattern(rng, 8);
    std::unique_ptr<Regex> re;
    try {
      re = std::make_unique<Regex>(pattern);
    } catch (const PatternError&) {
      continue;
    }
    std::string text;
    const std::size_t n = rng.uniform_u64(12);
    for (std::size_t i = 0; i < n; ++i) {
      text.push_back("ab01"[rng.uniform_u64(4)]);
    }
    if (re->full_match(text)) {
      EXPECT_TRUE(re->search(text)) << "pattern=" << pattern
                                    << " text=" << text;
    }
  }
}

TEST(RegexFuzz, LongInputsLinearish) {
  // A worst-case-ish pattern over a 1 MB text must finish promptly
  // (the Pike VM guarantee); this is a smoke bound, not a benchmark.
  const Regex re("(a|b)*c[0-9]+d");
  util::Rng rng(2029);
  std::string text;
  text.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); ++i) {
    text.push_back("ab"[rng.uniform_u64(2)]);
  }
  EXPECT_FALSE(re.search(text));
  text += "c123d";
  EXPECT_TRUE(re.search(text));
}

}  // namespace
}  // namespace wss::match
