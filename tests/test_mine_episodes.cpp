// EpisodeMiner: bounded-state online episode mining, differentially
// fuzzed against an unbounded in-test reference.
//
// The miner's contract is exactness-under-bounding: the candidate
// table never exceeds max_candidates, evicted/refused pairs are banned
// permanently, and every rule the bounded miner DOES emit carries
// support/confidence/delay moments bit-identical to an unbounded
// reference over the same stream (the bound trades recall, never
// correctness). Eviction is deterministic (min support, key-order
// tie-break), so two runs over one stream agree bit for bit.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "mine/episodes.hpp"
#include "stream/checkpoint.hpp"
#include "util/rng.hpp"

namespace wss::mine {
namespace {

// ---- Unbounded reference ----
//
// Same incident detection, same credit-once-per-predecessor-start
// dedupe, same Welford update -- in the same order -- but no candidate
// cap and no bans. Kept deliberately naive and separate from the
// production code so a shared bug cannot hide.
struct RefCandidate {
  std::uint64_t support = 0;
  util::TimeUs last_credited_start = 0;
  double delay_mean_us = 0.0;
  double delay_m2_us = 0.0;
  util::TimeUs delay_min_us = 0;
  util::TimeUs delay_max_us = 0;
};

class ReferenceMiner {
 public:
  explicit ReferenceMiner(EpisodeOptions opts) : opts_(opts) {}

  void observe(const filter::Alert& a) {
    const std::size_t b = a.category;
    if (b >= last_alert_.size()) {
      last_alert_.resize(b + 1, 0);
      alert_seen_.resize(b + 1, 0);
      start_seen_.resize(b + 1, 0);
      last_start_.resize(b + 1, 0);
      incident_count_.resize(b + 1, 0);
    }
    const bool fresh =
        !alert_seen_[b] || a.time - last_alert_[b] >= opts_.incident_gap_us;
    alert_seen_[b] = 1;
    last_alert_[b] = a.time;
    if (!fresh) return;
    ++incident_count_[b];
    for (std::size_t cat = 0; cat < last_start_.size(); ++cat) {
      if (cat == b || !start_seen_[cat]) continue;
      const util::TimeUs delay = a.time - last_start_[cat];
      if (delay <= 0 || delay > opts_.window_us) continue;
      const auto key = static_cast<std::uint32_t>(
          cat * kMaxEpisodeCategories + b);
      auto [it, inserted] = cands_.emplace(key, RefCandidate{});
      RefCandidate& c = it->second;
      if (inserted) {
        c.delay_min_us = delay;
        c.delay_max_us = delay;
      }
      if (!(c.support > 0 && c.last_credited_start == last_start_[cat])) {
        c.last_credited_start = last_start_[cat];
        ++c.support;
        const double x = static_cast<double>(delay);
        const double d = x - c.delay_mean_us;
        c.delay_mean_us += d / static_cast<double>(c.support);
        c.delay_m2_us += d * (x - c.delay_mean_us);
        if (delay < c.delay_min_us) c.delay_min_us = delay;
        if (delay > c.delay_max_us) c.delay_max_us = delay;
      }
    }
    start_seen_[b] = 1;
    last_start_[b] = a.time;
  }

  const RefCandidate* find(std::uint16_t pred, std::uint16_t succ) const {
    const auto it = cands_.find(
        static_cast<std::uint32_t>(pred) * kMaxEpisodeCategories + succ);
    return it == cands_.end() ? nullptr : &it->second;
  }

  std::uint64_t incidents_of(std::uint16_t cat) const {
    return cat < incident_count_.size() ? incident_count_[cat] : 0;
  }

 private:
  EpisodeOptions opts_;
  std::vector<std::uint8_t> alert_seen_;
  std::vector<util::TimeUs> last_alert_;
  std::vector<std::uint8_t> start_seen_;
  std::vector<util::TimeUs> last_start_;
  std::vector<std::uint64_t> incident_count_;
  std::map<std::uint32_t, RefCandidate> cands_;
};

std::vector<filter::Alert> random_stream(std::uint64_t seed, std::size_t n,
                                         std::uint16_t categories) {
  util::Rng rng(seed);
  std::vector<filter::Alert> out;
  out.reserve(n);
  util::TimeUs t = util::kUsPerSec;
  for (std::size_t i = 0; i < n; ++i) {
    // Gaps span well below and well above the 30 s incident gap, so
    // the stream mixes continuations and fresh incident starts.
    t += static_cast<util::TimeUs>(rng.uniform_u64(90 * util::kUsPerSec));
    filter::Alert a;
    a.time = t;
    a.category = static_cast<std::uint16_t>(rng.uniform_u64(categories));
    a.source = static_cast<std::uint32_t>(rng.uniform_u64(16));
    a.type = filter::AlertType::kIndeterminate;
    a.weight = 1.0;
    out.push_back(a);
  }
  return out;
}

EpisodeOptions fuzz_options(std::size_t max_candidates) {
  EpisodeOptions o;
  o.max_candidates = max_candidates;
  // No floors: compare every tracked pair, not just the strong ones.
  o.min_support = 1;
  o.min_confidence = 0.0;
  return o;
}

TEST(EpisodeMiner, BoundedRulesBitIdenticalToUnboundedReference) {
  // Tight cap (32) against 40 categories => up to 1560 distinct pairs
  // compete for 32 slots, forcing constant eviction/refusal traffic.
  bool any_pressure = false;
  for (const std::uint64_t seed : {11ull, 29ull, 101ull, 4242ull}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const auto alerts = random_stream(seed, 20000, 40);
    const EpisodeOptions opts = fuzz_options(32);
    EpisodeMiner bounded(opts);
    ReferenceMiner reference(opts);
    for (const auto& a : alerts) {
      bounded.observe(a);
      reference.observe(a);
      ASSERT_LE(bounded.candidate_count(), opts.max_candidates);
    }
    if (bounded.evictions() > 0 || bounded.bans() > 0) any_pressure = true;

    const auto rules = bounded.rules();
    ASSERT_FALSE(rules.empty());
    for (const auto& r : rules) {
      const RefCandidate* ref = reference.find(r.predecessor, r.successor);
      ASSERT_NE(ref, nullptr)
          << "rule " << r.predecessor << "->" << r.successor
          << " missing from the unbounded reference";
      // Bit-exact on purpose: a tracked pair has been counted since
      // its first occurrence, so its whole statistics agree.
      EXPECT_EQ(r.support, ref->support);
      EXPECT_EQ(r.incidents, reference.incidents_of(r.predecessor));
      EXPECT_EQ(r.confidence,
                static_cast<double>(ref->support) /
                    static_cast<double>(reference.incidents_of(
                        r.predecessor)));
      EXPECT_EQ(r.delay_mean_s, ref->delay_mean_us / 1e6);
      EXPECT_EQ(r.delay_min_s,
                static_cast<double>(ref->delay_min_us) / 1e6);
      EXPECT_EQ(r.delay_max_s,
                static_cast<double>(ref->delay_max_us) / 1e6);
    }
  }
  EXPECT_TRUE(any_pressure)
      << "fuzz streams never filled the table -- the bound was not tested";
}

TEST(EpisodeMiner, EvictionIsDeterministicAcrossRuns) {
  const auto alerts = random_stream(7, 15000, 48);
  const EpisodeOptions opts = fuzz_options(24);
  EpisodeMiner first(opts);
  EpisodeMiner second(opts);
  for (const auto& a : alerts) {
    first.observe(a);
    second.observe(a);
  }
  EXPECT_EQ(first.evictions(), second.evictions());
  EXPECT_EQ(first.bans(), second.bans());
  EXPECT_EQ(first.candidate_count(), second.candidate_count());
  const auto ra = first.rules();
  const auto rb = second.rules();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].predecessor, rb[i].predecessor);
    EXPECT_EQ(ra[i].successor, rb[i].successor);
    EXPECT_EQ(ra[i].support, rb[i].support);
    EXPECT_EQ(ra[i].confidence, rb[i].confidence);
    EXPECT_EQ(ra[i].delay_mean_s, rb[i].delay_mean_s);
    EXPECT_EQ(ra[i].delay_stddev_s, rb[i].delay_stddev_s);
  }
}

TEST(EpisodeMiner, CreditsOncePerPredecessorStart) {
  EpisodeMiner m(fuzz_options(16));
  const auto alert = [](util::TimeUs t, std::uint16_t cat) {
    filter::Alert a;
    a.time = t;
    a.category = cat;
    return a;
  };
  const util::TimeUs s = util::kUsPerSec;
  EXPECT_TRUE(m.observe(alert(1000 * s, 0)));       // A incident
  EXPECT_TRUE(m.observe(alert(1001 * s, 1)));       // B: credit A->B
  EXPECT_TRUE(m.observe(alert(1040 * s, 1)));       // B again, same A start
  auto rules = m.rules_from(0);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].support, 1u);   // deduped: one credit per A start
  EXPECT_EQ(rules[0].incidents, 1u);
  EXPECT_EQ(rules[0].confidence, 1.0);

  EXPECT_TRUE(m.observe(alert(2000 * s, 0)));       // new A incident
  EXPECT_TRUE(m.observe(alert(2005 * s, 1)));       // credit again
  rules = m.rules_from(0);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].support, 2u);
  EXPECT_EQ(rules[0].incidents, 2u);
  EXPECT_EQ(rules[0].delay_min_s, 1.0);
  EXPECT_EQ(rules[0].delay_max_s, 5.0);
}

TEST(EpisodeMiner, IncidentGapSeparatesIncidents) {
  EpisodeMiner m;
  filter::Alert a;
  a.category = 3;
  a.time = 100 * util::kUsPerSec;
  EXPECT_TRUE(m.observe(a));
  a.time += 10 * util::kUsPerSec;   // inside the 30 s gap: same incident
  EXPECT_FALSE(m.observe(a));
  a.time += 29 * util::kUsPerSec;   // still within gap of the LAST alert
  EXPECT_FALSE(m.observe(a));
  a.time += 30 * util::kUsPerSec;   // quiet >= gap: new incident
  EXPECT_TRUE(m.observe(a));
  EXPECT_EQ(m.incident_count(), 2u);
}

TEST(EpisodeMiner, RejectsBadOptionsAndCategories) {
  EpisodeOptions bad;
  bad.window_us = 0;
  EXPECT_THROW(EpisodeMiner{bad}, std::invalid_argument);
  bad = {};
  bad.incident_gap_us = -1;
  EXPECT_THROW(EpisodeMiner{bad}, std::invalid_argument);
  bad = {};
  bad.max_candidates = 0;
  EXPECT_THROW(EpisodeMiner{bad}, std::invalid_argument);

  EpisodeMiner m;
  filter::Alert a;
  a.category = static_cast<std::uint16_t>(kMaxEpisodeCategories);
  EXPECT_THROW(m.observe(a), std::invalid_argument);
}

TEST(EpisodeMiner, CheckpointRoundTripMidStream) {
  const auto alerts = random_stream(99, 12000, 32);
  const EpisodeOptions opts = fuzz_options(24);  // pressure => live bans
  EpisodeMiner uninterrupted(opts);
  EpisodeMiner first(opts);
  const std::size_t cut = alerts.size() / 2 + 41;
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    uninterrupted.observe(alerts[i]);
    if (i < cut) first.observe(alerts[i]);
  }
  ASSERT_GT(first.bans(), 0u) << "cut stream never engaged the bound";

  std::stringstream buf;
  stream::CheckpointWriter w(buf);
  first.save(w);
  EpisodeMiner resumed(opts);
  stream::CheckpointReader r(buf);
  resumed.load(r);
  for (std::size_t i = cut; i < alerts.size(); ++i) resumed.observe(alerts[i]);

  EXPECT_EQ(resumed.evictions(), uninterrupted.evictions());
  EXPECT_EQ(resumed.bans(), uninterrupted.bans());
  EXPECT_EQ(resumed.incident_count(), uninterrupted.incident_count());
  const auto ra = resumed.rules();
  const auto rb = uninterrupted.rules();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].predecessor, rb[i].predecessor);
    EXPECT_EQ(ra[i].successor, rb[i].successor);
    EXPECT_EQ(ra[i].support, rb[i].support);
    EXPECT_EQ(ra[i].confidence, rb[i].confidence);
    EXPECT_EQ(ra[i].delay_mean_s, rb[i].delay_mean_s);
    EXPECT_EQ(ra[i].delay_stddev_s, rb[i].delay_stddev_s);
    EXPECT_EQ(ra[i].delay_min_s, rb[i].delay_min_s);
    EXPECT_EQ(ra[i].delay_max_s, rb[i].delay_max_s);
  }
}

}  // namespace
}  // namespace wss::mine
