#include "sim/spec.hpp"

#include <gtest/gtest.h>

#include "sim/sources.hpp"

#include <set>

namespace wss::sim {
namespace {

using parse::SystemId;

TEST(Spec, Table1Values) {
  const auto& bgl = system_spec(SystemId::kBlueGeneL);
  EXPECT_EQ(bgl.procs, 131072u);
  EXPECT_EQ(bgl.top500_rank, 1);
  EXPECT_EQ(bgl.owner, "LLNL");
  const auto& lib = system_spec(SystemId::kLiberty);
  EXPECT_EQ(lib.procs, 512u);
  EXPECT_EQ(lib.interconnect, "Myrinet");
  EXPECT_EQ(lib.top500_rank, 445);
}

TEST(Spec, Table2Values) {
  const auto& spirit = system_spec(SystemId::kSpirit);
  EXPECT_EQ(spirit.days, 558);
  EXPECT_EQ(spirit.messages, 272298969u);
  EXPECT_EQ(spirit.alerts, 172816564u);
  EXPECT_EQ(spirit.categories, 8);
  // Spirit's log is the largest despite the second-smallest machine.
  const auto& tbird = system_spec(SystemId::kThunderbird);
  EXPECT_GT(spirit.size_gb, tbird.size_gb);
  EXPECT_LT(spirit.procs, tbird.procs);
}

TEST(Spec, WindowArithmetic) {
  const auto& rs = system_spec(SystemId::kRedStorm);
  EXPECT_EQ(rs.end_time() - rs.start_time(),
            104LL * util::kUsPerDay);
  EXPECT_EQ(util::to_civil(rs.start_time()).month, 3);
  EXPECT_EQ(util::to_civil(rs.start_time()).year, 2006);
}

TEST(Spec, TotalAlertsAcrossSystems) {
  std::uint64_t total = 0;
  for (const auto id : parse::kAllSystems) total += system_spec(id).alerts;
  EXPECT_EQ(total, 178081459u);  // the abstract's count
}

TEST(Sources, SpecialNodesKeepTheirNames) {
  const SourceNamer spirit(SystemId::kSpirit, 520);
  EXPECT_EQ(spirit.name(SourceNamer::kSpiritStormNode), "sn373");
  EXPECT_EQ(spirit.name(SourceNamer::kSpiritShadowedNode), "sn325");
}

TEST(Sources, AdminNamesPerSystem) {
  const SourceNamer tbird(SystemId::kThunderbird, 1024);
  EXPECT_EQ(tbird.name(tbird.first_admin()), "tbird-admin1");
  EXPECT_EQ(tbird.name(tbird.first_admin() + 1), "tbird-sm1");
  EXPECT_TRUE(tbird.is_admin(tbird.first_admin()));
  EXPECT_FALSE(tbird.is_admin(0));

  const SourceNamer rs(SystemId::kRedStorm, 640);
  EXPECT_EQ(rs.name(rs.first_admin()), "smw");
  EXPECT_EQ(rs.name(rs.first_admin() + 4), "ddn1");

  const SourceNamer lib(SystemId::kLiberty, 264);
  EXPECT_EQ(lib.name(lib.first_admin()), "ladmin1");
}

TEST(Sources, BglLocationCodes) {
  const SourceNamer bgl(SystemId::kBlueGeneL, 544);
  const std::string loc = bgl.name(37);
  EXPECT_EQ(loc.rfind("R01-", 0), 0u) << loc;
  EXPECT_NE(loc.find("C:J"), std::string::npos);
  EXPECT_EQ(bgl.n_admin(), 2u);
}

TEST(Sources, NamesAreUnique) {
  const SourceNamer namer(SystemId::kRedStorm, 640);
  std::set<std::string> names;
  for (std::uint32_t i = 0; i < namer.size(); ++i) {
    EXPECT_TRUE(names.insert(namer.name(i)).second) << i;
  }
}

TEST(Sources, OutOfRangeThrows) {
  const SourceNamer namer(SystemId::kLiberty, 264);
  EXPECT_THROW((void)namer.name(264), std::out_of_range);
  EXPECT_THROW(SourceNamer(SystemId::kLiberty, 4), std::invalid_argument);
}

}  // namespace
}  // namespace wss::sim
