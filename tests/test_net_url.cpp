// udp://host:port / tcp://host:port endpoint parsing.
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/url.hpp"

namespace wss::net {
namespace {

TEST(NetUrl, ParsesUdp) {
  const Endpoint e = parse_endpoint("udp://127.0.0.1:5514");
  EXPECT_EQ(e.transport, Transport::kUdp);
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 5514);
}

TEST(NetUrl, ParsesTcpLocalhost) {
  const Endpoint e = parse_endpoint("tcp://localhost:65535");
  EXPECT_EQ(e.transport, Transport::kTcp);
  EXPECT_EQ(e.host, "localhost");
  EXPECT_EQ(e.port, 65535);
}

TEST(NetUrl, RoundTripsThroughToString) {
  for (const char* url : {"udp://10.0.0.7:514", "tcp://localhost:9000"}) {
    EXPECT_EQ(parse_endpoint(url).to_string(), url);
  }
}

TEST(NetUrl, RejectsMalformed) {
  for (const char* url : {
           "",
           "udp://",
           "http://127.0.0.1:80",     // unknown scheme
           "127.0.0.1:514",           // no scheme
           "udp//127.0.0.1:514",      // missing colon
           "udp://127.0.0.1",         // missing port
           "udp://127.0.0.1:",        // empty port
           "udp://:514",              // empty host
           "udp://127.0.0.1:0",       // port out of range
           "udp://127.0.0.1:65536",   // port out of range
           "udp://127.0.0.1:12ab",    // junk port
           "tcp://127.0.0.1:514x",    // trailing junk
       }) {
    EXPECT_THROW(parse_endpoint(url), std::invalid_argument) << url;
  }
}

}  // namespace
}  // namespace wss::net
