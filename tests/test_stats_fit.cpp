// Distribution fit tests, including parameterized parameter-recovery
// property tests.
#include "stats/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace wss::stats {
namespace {

TEST(ExponentialFit, RecoversRate) {
  util::Rng rng(1);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(0.25);
  const auto fit = fit_exponential(xs);
  EXPECT_NEAR(fit.rate, 0.25, 0.01);
  EXPECT_LT(fit.log_likelihood, 0.0);
}

TEST(ExponentialFit, PdfCdf) {
  ExponentialFit f;
  f.rate = 2.0;
  EXPECT_DOUBLE_EQ(f.pdf(0.0), 2.0);
  EXPECT_NEAR(f.cdf(std::log(2.0) / 2.0), 0.5, 1e-12);
  EXPECT_EQ(f.cdf(-1.0), 0.0);
  EXPECT_EQ(f.pdf(-1.0), 0.0);
}

TEST(ExponentialFit, DropsNonPositive) {
  const auto fit = fit_exponential({-1.0, 0.0, 2.0, 2.0});
  EXPECT_NEAR(fit.rate, 0.5, 1e-12);
  EXPECT_THROW(fit_exponential({-1.0, 0.0}), std::invalid_argument);
}

TEST(LognormalFit, RecoversParams) {
  util::Rng rng(2);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.lognormal(1.5, 0.7);
  const auto fit = fit_lognormal(xs);
  EXPECT_NEAR(fit.mu, 1.5, 0.02);
  EXPECT_NEAR(fit.sigma, 0.7, 0.02);
}

TEST(LognormalFit, PdfIntegratesToHalfAtMedian) {
  LognormalFit f;
  f.mu = 2.0;
  f.sigma = 0.5;
  EXPECT_NEAR(f.cdf(std::exp(2.0)), 0.5, 1e-9);
  EXPECT_EQ(f.pdf(0.0), 0.0);
}

TEST(WeibullFit, RecoversShapeScale) {
  util::Rng rng(3);
  // Sample Weibull(k=1.7, lambda=3) via inverse transform.
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    const double u = rng.uniform();
    x = 3.0 * std::pow(-std::log(1.0 - u), 1.0 / 1.7);
  }
  const auto fit = fit_weibull(xs);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.shape, 1.7, 0.05);
  EXPECT_NEAR(fit.scale, 3.0, 0.05);
}

TEST(WeibullFit, ShapeOneIsExponential) {
  util::Rng rng(4);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(1.0);
  const auto fit = fit_weibull(xs);
  EXPECT_NEAR(fit.shape, 1.0, 0.05);
}

TEST(Fits, AicOrdersModelsCorrectly) {
  util::Rng rng(5);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.lognormal(2.0, 1.0);
  const auto ln = fit_lognormal(xs);
  const auto ex = fit_exponential(xs);
  EXPECT_LT(aic(ln.log_likelihood, 2), aic(ex.log_likelihood, 1));
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

// Parameterized sweep: exponential fit recovers a range of rates.
class ExpRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExpRateSweep, Recovers) {
  const double rate = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(rate * 1000) + 11);
  std::vector<double> xs(8000);
  for (auto& x : xs) x = rng.exponential(rate);
  EXPECT_NEAR(fit_exponential(xs).rate / rate, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExpRateSweep,
                         ::testing::Values(0.001, 0.1, 1.0, 10.0, 500.0));

// Parameterized sweep: lognormal sigma recovery across scales.
class LognormalSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LognormalSigmaSweep, Recovers) {
  const double sigma = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(sigma * 100) + 17);
  std::vector<double> xs(8000);
  for (auto& x : xs) x = rng.lognormal(0.5, sigma);
  EXPECT_NEAR(fit_lognormal(xs).sigma / sigma, 1.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, LognormalSigmaSweep,
                         ::testing::Values(0.2, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace wss::stats
