// The `wss` command-line tool. All logic lives in src/cli (testable);
// this is only the process shell.
#include <exception>
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  try {
    const auto args = wss::cli::Args::parse(argc, argv);
    return wss::cli::run(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "wss: " << e.what() << "\n";
    return 2;
  }
}
