// Regenerates the golden files under tests/golden/ from the current
// build. Run via `cmake --build build --target update-goldens` after
// an intentional behavior change, review the git diff, and commit the
// reblessed files together with the change that caused them.
#include <cstdio>
#include <exception>

#include "core/golden.hpp"

#ifndef WSS_GOLDEN_DIR
#define WSS_GOLDEN_DIR "tests/golden"
#endif

int main(int argc, char** argv) {
  const char* dir = argc > 1 ? argv[1] : WSS_GOLDEN_DIR;
  try {
    const std::size_t n = wss::core::write_goldens(dir);
    std::printf("wrote %zu golden file(s) to %s\n", n, dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "update_goldens: %s\n", e.what());
    return 1;
  }
  return 0;
}
