#include "obs/metrics.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace wss::obs {

namespace detail {

std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return idx;
}

}  // namespace detail

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t MetricsSnapshot::counter_or_zero(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed: handles and
  return *r;                            // thread traces outlive main()
}

Registry& registry() { return Registry::global(); }

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  }
  return *it->second;
}

namespace {

/// Span aggregation across threads: same name chain -> one node.
struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, SpanAgg> kids;
};

void merge_trace(const TraceNode& node, SpanAgg& into) {
  for (const auto& child : node.children) {
    SpanAgg& agg = into.kids[child->name];
    agg.count += child->count.load(std::memory_order_relaxed);
    agg.total_ns += child->total_ns.load(std::memory_order_relaxed);
    merge_trace(*child, agg);
  }
}

void flatten_spans(const SpanAgg& agg, const std::string& prefix,
                   std::vector<SpanStats>& out) {
  for (const auto& [name, kid] : agg.kids) {
    const std::string path = prefix.empty() ? name : prefix + "/" + name;
    out.push_back({path, kid.count, kid.total_ns});
    flatten_spans(kid, path, out);
  }
}

void reset_trace(TraceNode& node) {
  node.count.store(0, std::memory_order_relaxed);
  node.total_ns.store(0, std::memory_order_relaxed);
  for (auto& child : node.children) reset_trace(*child);
}

}  // namespace

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.bounds = h->bounds();
    v.counts = h->bucket_counts();
    v.count = h->count();
    v.sum = h->sum();
    s.histograms.push_back(std::move(v));
  }
  SpanAgg root;
  for (const auto& trace : traces_) merge_trace(trace->root, root);
  flatten_spans(root, "", s.spans);
  return s;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::gauge_values()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

void Registry::set_counter(std::string_view name, std::uint64_t v) {
  counter(name).set(v);
}

void Registry::set_gauge(std::string_view name, std::int64_t v) {
  gauge(name).restore(v);
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  // value()+set() rather than inc(): inc() compiles out under
  // WSS_OBS_OFF, but folded worker deltas must land regardless. Only
  // meaningful at quiescence (the merge path is single-threaded).
  Counter& c = counter(name);
  c.set(c.value() + delta);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->set(0);
  for (auto& [name, g] : gauges_) g->restore(0);
  for (auto& [name, h] : histograms_) {
    for (std::size_t i = 0; i <= h->bounds_.size(); ++i) h->counts_[i] = 0;
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& trace : traces_) reset_trace(trace->root);
}

ThreadTrace& Registry::thread_trace() {
  thread_local ThreadTrace* mine = nullptr;
  if (mine == nullptr) {
    auto owned = std::make_unique<ThreadTrace>();
    mine = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    traces_.push_back(std::move(owned));
  }
  return *mine;
}

Counter& labeled_counter(std::string_view base, std::string_view key,
                         std::uint64_t value) {
  const std::string name =
      util::format("%.*s{%.*s=\"%llu\"}", static_cast<int>(base.size()),
                   base.data(), static_cast<int>(key.size()), key.data(),
                   static_cast<unsigned long long>(value));
  return registry().counter(name);
}

const std::vector<double>& latency_bounds_seconds() {
  static const std::vector<double> bounds = {
      2.5e-7, 1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4,
      1.024e-3, 4.096e-3, 1.6384e-2, 6.5536e-2, 2.62144e-1};
  return bounds;
}

const std::vector<double>& lead_time_bounds_seconds() {
  static const std::vector<double> bounds = {1,   5,   15,   60,
                                             300, 900, 3600, 14400};
  return bounds;
}

}  // namespace wss::obs
