#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars) --
/// metric names embed quotes via their Prometheus labels.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += util::format("\\u%04x", ch);
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string fmt_double(double v) { return util::format("%.17g", v); }

/// Splits `name{key="value"}` into (name, `key="value"`); the label
/// part is empty for plain names.
std::pair<std::string_view, std::string_view> split_label(
    std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

void emit_type_line(std::string& out, std::string_view full_name,
                    const char* kind, std::string& last_base) {
  const auto [base, label] = split_label(full_name);
  (void)label;
  if (last_base == base) return;  // one TYPE line per metric family
  last_base = std::string(base);
  out += util::format("# TYPE %.*s %s\n", static_cast<int>(base.size()),
                      base.data(), kind);
}

}  // namespace

std::string to_json(const MetricsSnapshot& s) {
  std::string out = "{\n  \"schema\": \"wss.obs.v1\",\n  \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    out += util::format("%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                        json_escape(s.counters[i].name).c_str(),
                        static_cast<unsigned long long>(s.counters[i].value));
  }
  out += s.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    out += util::format("%s\n    \"%s\": %lld", i == 0 ? "" : ",",
                        json_escape(s.gauges[i].name).c_str(),
                        static_cast<long long>(s.gauges[i].value));
  }
  out += s.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& h = s.histograms[i];
    out += util::format("%s\n    \"%s\": {\"bounds\": [", i == 0 ? "" : ",",
                        json_escape(h.name).c_str());
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out += (b == 0 ? "" : ", ") + fmt_double(h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out += util::format("%s%llu", b == 0 ? "" : ", ",
                          static_cast<unsigned long long>(h.counts[b]));
    }
    out += util::format("], \"count\": %llu, \"sum\": %s}",
                        static_cast<unsigned long long>(h.count),
                        fmt_double(h.sum).c_str());
  }
  out += s.histograms.empty() ? "},\n" : "\n  },\n";

  out += "  \"spans\": [";
  for (std::size_t i = 0; i < s.spans.size(); ++i) {
    const auto& sp = s.spans[i];
    out += util::format(
        "%s\n    {\"path\": \"%s\", \"count\": %llu, \"total_ns\": %llu}",
        i == 0 ? "" : ",", json_escape(sp.path).c_str(),
        static_cast<unsigned long long>(sp.count),
        static_cast<unsigned long long>(sp.total_ns));
  }
  out += s.spans.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& s) {
  std::string out;
  std::string last_base;

  for (const auto& c : s.counters) {
    emit_type_line(out, c.name, "counter", last_base);
    out += util::format("%s %llu\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.value));
  }
  last_base.clear();
  for (const auto& g : s.gauges) {
    emit_type_line(out, g.name, "gauge", last_base);
    out += util::format("%s %lld\n", g.name.c_str(),
                        static_cast<long long>(g.value));
  }
  last_base.clear();
  for (const auto& h : s.histograms) {
    const auto [base, label] = split_label(h.name);
    emit_type_line(out, h.name, "histogram", last_base);
    const std::string base_s(base);
    const std::string label_prefix =
        label.empty() ? "" : std::string(label) + ",";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? fmt_double(h.bounds[b]) : "+Inf";
      out += util::format("%s_bucket{%sle=\"%s\"} %llu\n", base_s.c_str(),
                          label_prefix.c_str(), le.c_str(),
                          static_cast<unsigned long long>(cumulative));
    }
    const std::string suffix =
        label.empty() ? "" : "{" + std::string(label) + "}";
    out += util::format("%s_sum%s %s\n", base_s.c_str(), suffix.c_str(),
                        fmt_double(h.sum).c_str());
    out += util::format("%s_count%s %llu\n", base_s.c_str(), suffix.c_str(),
                        static_cast<unsigned long long>(h.count));
  }

  for (const auto& sp : s.spans) {
    out += util::format("wss_span_hits_total{path=\"%s\"} %llu\n",
                        sp.path.c_str(),
                        static_cast<unsigned long long>(sp.count));
    out += util::format("wss_span_nanoseconds_total{path=\"%s\"} %llu\n",
                        sp.path.c_str(),
                        static_cast<unsigned long long>(sp.total_ns));
  }
  return out;
}

void write_metrics_file(const std::string& path) {
  const MetricsSnapshot snap = registry().snapshot();
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  // Write-then-rename so a long-running server can re-export on SIGHUP
  // or per-scrape while a reader tails the file: the reader sees either
  // the old export or the new one, never a torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary);
    if (!os) {
      throw std::runtime_error("metrics: cannot open " + tmp);
    }
    os << (prom ? to_prometheus(snap) : to_json(snap));
    os.flush();
    if (!os) {
      throw std::runtime_error("metrics: write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("metrics: cannot rename " + tmp + " to " + path);
  }
}

}  // namespace wss::obs
