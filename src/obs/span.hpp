// RAII scoped timers that nest into the per-run trace tree.
//
//   {
//     obs::Span span("pipeline");
//     ...
//     { obs::Span chunk("chunk"); ... }   // appears as "pipeline/chunk"
//   }
//
// Each thread owns one tree (obs::ThreadTrace, kept alive by the
// registry); entering a span walks one level down, leaving walks back
// up. Registry::snapshot() merges all thread trees by name path into
// the flat SpanStats list ("a/b" style paths).
//
// Cost model: steady state is a linear scan of the parent's children
// (pointer compare, then strcmp -- span trees are a handful of nodes
// wide) plus two relaxed atomic adds and two steady_clock reads. The
// first visit of a (parent, name) pair takes the registry mutex to
// append the node; nodes are never removed, so there is no allocation
// or locking after warm-up (tests/test_obs_alloc.cpp pins this).
//
// `name` MUST be a string literal (or otherwise outlive the process):
// the tree stores the pointer. Spans are meant for stage granularity
// (a command, a pass, a chunk) -- not per-event loops; per-event data
// belongs in counters and histograms.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace wss::obs {

class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifndef WSS_OBS_OFF
  TraceNode* node_ = nullptr;
  ThreadTrace* trace_ = nullptr;
  std::chrono::steady_clock::time_point start_;
#endif
};

#ifdef WSS_OBS_OFF
inline Span::Span(const char*) {}
inline Span::~Span() {}
#endif

}  // namespace wss::obs
