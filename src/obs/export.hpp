// Snapshot serialization: JSON (schema "wss.obs.v1") and Prometheus
// text exposition format.
//
// JSON carries everything (counters, gauges, histograms, spans) and is
// the machine-readable attachment for BENCH records and test
// assertions. Prometheus text carries counters, gauges, and histograms
// in scrape format; spans are flattened to a pair of counters per path
// (`wss_span_hits_total` / `wss_span_nanoseconds_total` with a
// path="..." label) so a scraper sees them too.
//
// Metric names may already embed one label (`name{key="value"}` --
// see obs::labeled_counter); the Prometheus emitter splits it back out
// and merges it with `le` for histogram buckets.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace wss::obs {

/// One-line-per-metric JSON object, schema "wss.obs.v1".
std::string to_json(const MetricsSnapshot& s);

/// Prometheus text exposition format (# TYPE comments included).
std::string to_prometheus(const MetricsSnapshot& s);

/// Snapshots the global registry and writes it to `path`: Prometheus
/// text when the path ends in ".prom", JSON otherwise. Throws
/// std::runtime_error when the file cannot be written.
void write_metrics_file(const std::string& path);

}  // namespace wss::obs
