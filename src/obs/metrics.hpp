// Process-wide observability registry: counters, gauges, histograms,
// and the span trace tree (obs/span.hpp).
//
// The paper's Section 3.2 lesson -- you cannot trust a log you cannot
// measure -- applies to the pipelines themselves: BENCH_*.json records
// end-to-end numbers, but nothing explains where events and time go
// inside a run. Every stage (pipeline, stream, filter, tag) publishes
// named metrics here; `wss <cmd> --metrics FILE` snapshots them as
// JSON or Prometheus text (obs/export.hpp).
//
// Design constraints, in order:
//
//  1. *The hot path is a relaxed atomic add.* Counter::inc() touches
//     one cache-line-private stripe (16 stripes, one chosen per thread
//     at first use), so concurrent workers never contend on a line.
//     value() sums the stripes; totals are exact at quiescence, which
//     is the only time anything reads them.
//  2. *Registration is cold, handles are hot.* Looking a metric up by
//     name takes the registry mutex; callers do it once and cache the
//     Counter*/Gauge*/Histogram* (handles are stable for the process
//     lifetime -- the registry never deletes a metric, reset() only
//     zeroes values).
//  3. *Determinism-friendly.* Counters count events, not time, so the
//     pipeline counters are bit-identical at any thread count and
//     across batch/stream runs (tests/test_obs_determinism.cpp).
//     Wall-clock lives only in histograms and spans, which the
//     determinism and checkpoint contracts exclude.
//  4. *Compile-time kill switch.* -DWSS_OBS_OFF turns inc/set/observe
//     and Span into no-ops while keeping the API (and the snapshot
//     schema -- everything reads zero) intact.
//
// The checkpoint integration (stream/pipeline.cpp) serializes
// counter_values()/gauge_values() and restores them with set_counter/
// set_gauge, so a restored-and-finished stream reports the same
// counters as an uninterrupted one. Histograms and spans are NOT
// checkpointed: they measure this process's wall time.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wss::obs {

/// Stripes per counter. Enough that a machine-sized worker pool rarely
/// shares one; small enough that 100 counters cost ~100 KiB.
inline constexpr std::size_t kCounterStripes = 16;

namespace detail {
/// This thread's stripe index, assigned round-robin at first use.
std::size_t stripe_index();
}  // namespace detail

/// Monotonic event counter. inc() is wait-free (one relaxed fetch_add
/// on a thread-striped cell); value() is exact once writers quiesce.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifndef WSS_OBS_OFF
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Overwrites the total (checkpoint restore / registry reset). Only
  /// meaningful at quiescence; concurrent inc()s may be lost.
  void set(std::uint64_t v) noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
    cells_[0].v.store(v, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  std::string name_;
  std::array<Cell, kCounterStripes> cells_{};
};

/// Last-writer-wins instantaneous value (occupancy, watermark).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#ifndef WSS_OBS_OFF
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) noexcept {
#ifndef WSS_OBS_OFF
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// Restore path: same as set() but compiled in even under WSS_OBS_OFF
  /// so checkpoints round-trip identically.
  void restore(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative-le semantics on
/// export; stored as per-bucket counts here). Bounds are upper bounds,
/// ascending; values above the last bound land in the implicit +Inf
/// bucket. observe() is a bucket scan plus relaxed adds -- cheap, but
/// meant for sampled or cold paths, not per-event hot loops.
class Histogram {
 public:
  void observe(double v) noexcept {
#ifndef WSS_OBS_OFF
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);

  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One merged span-tree node in a snapshot: path is the "/"-joined
/// name chain, aggregated across every thread that ran the span.
struct SpanStats {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Point-in-time copy of every metric, sorted by name (map order) --
/// the unit of export and of test assertions.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 buckets
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SpanStats> spans;  ///< pre-order over the merged trace tree

  /// Counter lookup by full name; 0 when absent (convenience for
  /// tests).
  std::uint64_t counter_or_zero(std::string_view name) const;
};

// ---- Trace tree (see obs/span.hpp for the RAII front-end) ----

/// One node of a thread's span tree. Children are appended only by the
/// owning thread *under the registry mutex* (so snapshot() can walk
/// concurrently); count/total_ns are relaxed atomics. Nodes are never
/// removed -- reset() zeroes them in place, keeping every Span's
/// cached pointer valid.
struct TraceNode {
  const char* name = nullptr;  ///< string literal supplied by Span
  TraceNode* parent = nullptr;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::vector<std::unique_ptr<TraceNode>> children;
};

/// Per-thread trace root, owned by the registry (so it outlives the
/// thread). `current` is touched only by the owning thread.
struct ThreadTrace {
  TraceNode root;
  TraceNode* current = &root;
};

/// The process-wide metric registry. All lookups are by full name,
/// label included -- e.g. `wss_filter_admitted_total{category="3"}` is
/// simply a counter whose name carries its Prometheus label.
class Registry {
 public:
  /// The one registry every instrumentation site and `--metrics` use.
  static Registry& global();

  /// Finds or creates. Handles are stable for the process lifetime;
  /// cache them on hot paths. A name resolves within its own kind only
  /// (counter/gauge/histogram namespaces are distinct -- don't reuse a
  /// name across kinds, exports would collide).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is used on first registration only; later calls return
  /// the existing histogram regardless.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Full copy of everything, spans merged across threads.
  MetricsSnapshot snapshot() const;

  /// Counters/gauges as sorted (name, value) pairs -- the checkpoint
  /// payload.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, std::int64_t>> gauge_values() const;

  /// Checkpoint-restore: registers the metric if needed and overwrites
  /// its value (compiled in even under WSS_OBS_OFF).
  void set_counter(std::string_view name, std::uint64_t v);
  void set_gauge(std::string_view name, std::int64_t v);

  /// Distributed-merge fold: registers the counter if needed and adds a
  /// worker's delta to it (compiled in even under WSS_OBS_OFF, so a
  /// merged study reports the same totals as a batch run regardless of
  /// the merge binary's instrumentation mode).
  void add_counter(std::string_view name, std::uint64_t delta);

  /// Zeroes every counter, gauge, histogram, and span node in place.
  /// Registrations and handles survive. Call only at quiescence (no
  /// concurrent writers, no open spans) -- tests use this to isolate
  /// runs.
  void reset();

  /// This thread's trace root, lazily created and registered. Used by
  /// Span; exposed for tests.
  ThreadTrace& thread_trace();

 private:
  friend class Span;
  Registry() = default;

  Histogram* find_histogram(std::string_view name) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::unique_ptr<ThreadTrace>> traces_;
};

/// Shorthand for Registry::global().
Registry& registry();

/// Counter whose name carries a Prometheus label with a small-integer
/// value: labeled_counter("wss_filter_admitted_total", "category", 3)
/// -> `wss_filter_admitted_total{category="3"}`. Registration-cost
/// lookup; cache the handle or call it only on cold paths.
Counter& labeled_counter(std::string_view base, std::string_view key,
                         std::uint64_t value);

/// Default latency bucket bounds in seconds: 250ns..~0.5s, roughly
/// quadrupling. Shared by the stream ingest histogram and tests.
const std::vector<double>& latency_bounds_seconds();

/// Lead-time bucket bounds in seconds for prediction histograms:
/// 1s..4h. Lead times are stream-time deltas (incident time minus
/// prediction issue time), so the scale is operational, not I/O.
const std::vector<double>& lead_time_bounds_seconds();

}  // namespace wss::obs
