#include "obs/span.hpp"

#include <cstring>

#ifndef WSS_OBS_OFF

namespace wss::obs {

namespace {

/// Finds `name` among the children of `parent`. Only the owning thread
/// appends to its own tree, so the unlocked scan cannot race a
/// concurrent append; snapshot() walks under the registry mutex, which
/// the append path also takes.
TraceNode* find_child(TraceNode* parent, const char* name) {
  for (const auto& child : parent->children) {
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      return child.get();
    }
  }
  return nullptr;
}

}  // namespace

Span::Span(const char* name) {
  ThreadTrace& trace = Registry::global().thread_trace();
  trace_ = &trace;
  TraceNode* parent = trace.current;
  TraceNode* node = find_child(parent, name);
  if (node == nullptr) {
    auto owned = std::make_unique<TraceNode>();
    owned->name = name;
    owned->parent = parent;
    node = owned.get();
    std::lock_guard<std::mutex> lock(Registry::global().mu_);
    parent->children.push_back(std::move(owned));
  }
  trace.current = node;
  node_ = node;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  node_->count.fetch_add(1, std::memory_order_relaxed);
  node_->total_ns.fetch_add(static_cast<std::uint64_t>(ns),
                            std::memory_order_relaxed);
  trace_->current = node_->parent;
}

}  // namespace wss::obs

#endif  // WSS_OBS_OFF
