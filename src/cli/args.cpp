#include "cli/args.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace wss::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args out;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    out.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!util::starts_with(arg, "--")) {
      out.positional_.emplace_back(arg);
      continue;
    }
    if (arg.size() == 2) {
      throw std::invalid_argument("bare '--' is not a valid flag");
    }
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(2, eq - 2));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg.substr(2));
      // A following token that is not a flag is this flag's value.
      if (i + 1 < argc && !util::starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      }
    }
    if (out.flags_.count(name)) {
      throw std::invalid_argument("repeated flag --" + name);
    }
    out.flags_[name] = value;
  }
  return out;
}

std::optional<std::string> Args::get(const std::string& name) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& name,
                         const std::string& def) const {
  const auto v = get(name);
  return v ? *v : def;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  const auto v = get(name);
  if (!v) return def;
  const auto parsed = util::parse_i64(*v);
  if (!parsed) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                *v + "'");
  }
  return *parsed;
}

double Args::get_double(const std::string& name, double def) const {
  const auto v = get(name);
  if (!v) return def;
  const auto parsed = util::parse_double(*v);
  if (!parsed) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                *v + "'");
  }
  return *parsed;
}

bool Args::has(const std::string& name) const {
  touched_[name] = true;
  return flags_.count(name) > 0;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (!touched_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace wss::cli
