// Minimal command-line flag parsing for the wss tool.
//
// Supports "--flag value", "--flag=value", and boolean "--flag".
// Deliberately tiny: the tool has a handful of flags and no external
// dependency budget.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wss::cli {

/// Parsed command line: a subcommand, flags, and positional arguments.
class Args {
 public:
  /// Parses argv[1..]; argv[1] (if not a flag) is the subcommand.
  /// Throws std::invalid_argument on a malformed flag ("--" alone,
  /// repeated flag).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  /// Value of --name, if present.
  std::optional<std::string> get(const std::string& name) const;

  /// Value of --name or a default.
  std::string get_or(const std::string& name, const std::string& def) const;

  /// Integer flag with range checking; throws std::invalid_argument
  /// on a non-numeric value.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;

  /// Double flag.
  double get_double(const std::string& name, double def) const;

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  /// Flags that were never read by any get*/has call -- used to
  /// reject typos.
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace wss::cli
