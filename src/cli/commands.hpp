// Subcommands of the `wss` command-line tool.
//
//   wss generate  --system liberty --out log.txt [--seed N] [--cap N]
//                 [--chatter N] [--compressed] [--per-source]
//   wss analyze   --system liberty --in log.txt [--year 2004]
//                 [--threshold 5.0]
//   wss anonymize --in log.txt --out anon.txt [--seed N]
//   wss mine      --in log.txt [--support N] [--skip N]
//   wss tables    [--which 1..6] [--threads N|auto]
//   wss study     [--system NAME|all] [--threads N|auto]
//                 [--threshold 5.0] [--seed N] [--cap N] [--chatter N]
//                 [--split-by system|category|time --num-splits N
//                  --manifest-dir DIR]  plan a distributed study
//   wss worker    <id> --manifest-dir DIR [--stale-after SEC]
//                 [--threads N|auto]  claim + compute one assignment
//   wss merge     --manifest-dir DIR [--out DIR]  fold worker partials
//                 into the single-process tables/figures
//   wss stream    --system liberty [--speed N] [--threshold 5.0]
//                 [--in log.txt | --seed N --cap N --chatter N]
//                 [--policy block|drop-oldest] [--queue N]
//                 [--checkpoint PATH] [--restore PATH] [--max-events N]
//                 [--emit PATH] [--refresh N] [--window SEC]
//                 SIGINT/SIGTERM drain gracefully (checkpoint + report)
//   wss serve     --tcp PORT[:TENANT],... [--udp PORT:TENANT,...]
//                 [--tenant NAME:SYSTEM[:YEAR],...] [--http PORT]
//                 [--bind HOST] [--queue N] [--threshold SEC]
//                 [--window SEC] [--checkpoint-dir DIR] [--max-frame N]
//                 [--drain-grace SEC]  multi-tenant network ingest
//                 server; SIGTERM drains, SIGHUP re-exports --metrics
//
// `wss generate` additionally accepts --sink udp://H:P|tcp://H:P to
// send the replayed stream over the network instead of to a file
// ([--tenant NAME] [--framing nl|len] [--loss-base P]
//  [--loss-contention P] [--lossless] [--loss-seed N]).
//
// Every command additionally accepts --metrics FILE (observability
// snapshot on exit: Prometheus text for .prom, JSON otherwise).
//
// Each command is a function of (Args, ostream) so tests can drive
// them without a process boundary; wss_main.cpp is a thin shell.
#pragma once

#include <ostream>

#include "cli/args.hpp"

namespace wss::cli {

/// Dispatches to the subcommand; returns a process exit code. Usage
/// and error text go to `err`, results to `out`.
int run(const Args& args, std::ostream& out, std::ostream& err);

/// Individual commands (exposed for tests).
int cmd_generate(const Args& args, std::ostream& out, std::ostream& err);
int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err);
int cmd_anonymize(const Args& args, std::ostream& out, std::ostream& err);
int cmd_tables(const Args& args, std::ostream& out, std::ostream& err);
int cmd_study(const Args& args, std::ostream& out, std::ostream& err);
int cmd_mine(const Args& args, std::ostream& out, std::ostream& err);
int cmd_stream(const Args& args, std::ostream& out, std::ostream& err);
int cmd_serve(const Args& args, std::ostream& out, std::ostream& err);
int cmd_worker(const Args& args, std::ostream& out, std::ostream& err);
int cmd_merge(const Args& args, std::ostream& out, std::ostream& err);

/// Prints usage.
void print_usage(std::ostream& os);

}  // namespace wss::cli
