#include "cli/commands.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "core/report.hpp"
#include "core/study.hpp"
#include "filter/simultaneous.hpp"
#include "logio/anonymize.hpp"
#include "mine/templates.hpp"
#include "logio/reader.hpp"
#include "logio/writer.hpp"
#include "tag/engine.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wss::cli {

namespace {

std::optional<parse::SystemId> parse_system(const std::string& name) {
  for (const auto id : parse::kAllSystems) {
    if (name == parse::system_short_name(id)) return id;
  }
  return std::nullopt;
}

/// Shared guard: reject unknown flags (typos fail loudly).
bool reject_unused(const Args& args, std::ostream& err) {
  const auto stray = args.unused();
  if (stray.empty()) return false;
  err << "unknown flag --" << stray.front() << "\n";
  return true;
}

}  // namespace

void print_usage(std::ostream& os) {
  os << "wss -- What Supercomputers Say (DSN 2007) reproduction tool\n"
        "\n"
        "usage: wss <command> [flags]\n"
        "\n"
        "commands:\n"
        "  generate   simulate a system log and write it to disk\n"
        "             --system bgl|tbird|rstorm|spirit|liberty  --out PATH\n"
        "             [--seed N] [--cap N] [--chatter N] [--compressed]\n"
        "             [--per-source]\n"
        "  analyze    parse, tag, and filter a log file; print a summary\n"
        "             --system NAME --in PATH [--year Y] [--threshold SEC]\n"
        "  anonymize  pseudonymize IPs/users/paths in a log file\n"
        "             --in PATH --out PATH [--seed N]\n"
        "  mine       mine message templates from a log (SLCT-style)\n"
        "             --in PATH [--support N] [--skip N] [--top N]\n"
        "  tables     print the paper's tables from a fresh simulation\n"
        "             [--which N] (default: all)\n"
        "             [--threads N]  pipeline worker threads (0 = all\n"
        "             cores); results are bit-identical at any N\n";
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto system = parse_system(args.get_or("system", ""));
  const auto out_path = args.get("out");
  if (!system || !out_path) {
    err << "generate requires --system and --out\n";
    return 2;
  }
  sim::SimOptions opts;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opts.category_cap =
      static_cast<std::uint64_t>(args.get_int("cap", 20000));
  opts.chatter_events =
      static_cast<std::uint64_t>(args.get_int("chatter", 50000));
  logio::WriteOptions wopts;
  wopts.compressed = args.has("compressed");
  wopts.per_source_dirs = args.has("per-source");
  if (reject_unused(args, err)) return 2;

  const sim::Simulator simulator(*system, opts);
  const auto result = logio::write_log(simulator, *out_path, wopts);
  out << util::format(
      "wrote %zu lines (%s bytes) across %zu file(s) for %s\n", result.lines,
      util::with_commas(static_cast<std::int64_t>(result.bytes_written))
          .c_str(),
      result.files,
      std::string(parse::system_name(*system)).c_str());
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  const auto system = parse_system(args.get_or("system", ""));
  const auto in_path = args.get("in");
  if (!system || !in_path) {
    err << "analyze requires --system and --in\n";
    return 2;
  }
  const int year = static_cast<int>(args.get_int(
      "year", sim::system_spec(*system).start_date.year));
  const double threshold_s = args.get_double("threshold", 5.0);
  if (threshold_s <= 0.0) {
    err << "--threshold must be positive\n";
    return 2;
  }
  if (reject_unused(args, err)) return 2;

  const tag::RuleSet rules = tag::build_ruleset(*system);
  const tag::TagEngine engine(rules);
  filter::SimultaneousFilter filter(
      static_cast<util::TimeUs>(threshold_s * 1e6));

  // Numeric source ids for the filter: interned from parsed hostnames.
  std::map<std::string, std::uint32_t> source_ids;
  std::vector<std::size_t> raw_counts(rules.size(), 0);
  std::vector<std::size_t> filtered_counts(rules.size(), 0);
  std::size_t alerts = 0;
  std::size_t kept = 0;

  logio::ReadStats stats;
  try {
    stats = logio::read_log(*in_path, *system, year,
                            [&](const parse::LogRecord& rec) {
      const auto tagged = engine.tag(rec);
      if (!tagged) return;
      ++alerts;
      ++raw_counts[tagged->category];
      filter::Alert a;
      a.time = rec.time;
      a.category = tagged->category;
      a.type = tagged->type;
      const auto [it, inserted] = source_ids.emplace(
          rec.source, static_cast<std::uint32_t>(source_ids.size()));
      a.source = it->second;
      if (filter.admit(a)) {
        ++kept;
        ++filtered_counts[tagged->category];
      }
    });
  } catch (const std::exception& e) {
    err << "analyze: " << e.what() << "\n";
    return 1;
  }

  out << util::format(
      "%zu lines: %zu alerts -> %zu after filtering (T=%.1fs); "
      "%zu corrupted sources, %zu invalid timestamps, %d year rollover(s)\n",
      stats.lines, alerts, kept, threshold_s, stats.corrupted_sources,
      stats.invalid_timestamps, stats.year_rollovers);
  util::Table t({"Category", "Raw", "Filtered"});
  for (std::uint16_t c = 0; c < rules.size(); ++c) {
    if (raw_counts[c] == 0) continue;
    t.add_row({rules.category_name(c), std::to_string(raw_counts[c]),
               std::to_string(filtered_counts[c])});
  }
  out << t.render();
  return 0;
}

int cmd_anonymize(const Args& args, std::ostream& out, std::ostream& err) {
  const auto in_path = args.get("in");
  const auto out_path = args.get("out");
  if (!in_path || !out_path) {
    err << "anonymize requires --in and --out\n";
    return 2;
  }
  const logio::Anonymizer anon(
      static_cast<std::uint64_t>(args.get_int("seed", 0x5eed)));
  if (reject_unused(args, err)) return 2;

  std::string text;
  try {
    text = logio::read_log_text(*in_path);
  } catch (const std::exception& e) {
    err << "anonymize: " << e.what() << "\n";
    return 1;
  }
  std::ofstream os(*out_path, std::ios::binary);
  if (!os) {
    err << "anonymize: cannot open " << *out_path << "\n";
    return 1;
  }
  std::istringstream in(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    os << anon.anonymize(line) << '\n';
    ++lines;
  }
  out << util::format("anonymized %zu lines -> %s\n", lines,
                      out_path->c_str());
  return 0;
}

int cmd_tables(const Args& args, std::ostream& out, std::ostream& err) {
  const int which = static_cast<int>(args.get_int("which", 0));
  const int threads = static_cast<int>(args.get_int("threads", 1));
  if (threads < 0) {
    err << "--threads must be >= 0 (0 = all cores)\n";
    return 2;
  }
  if (reject_unused(args, err)) return 2;
  core::StudyOptions opts;
  opts.sim.category_cap = 20000;
  opts.sim.chatter_events = 30000;
  opts.pipeline.num_threads = threads;
  core::Study study(opts);
  // Warm the shared result cache through the parallel path; every
  // render_table* call below then hits the cache. Output is
  // bit-identical to the serial path at any thread count.
  if (threads != 1) {
    for (const auto id : parse::kAllSystems) {
      study.parallel_pipeline_result(id);
    }
  }
  const auto want = [&](int n) { return which == 0 || which == n; };
  if (want(1)) out << core::render_table1() << "\n";
  if (want(2)) out << core::render_table2(study) << "\n";
  if (want(3)) out << core::render_table3(study) << "\n";
  if (want(4)) {
    for (const auto id : parse::kAllSystems) {
      out << core::render_table4(study, id) << "\n";
    }
  }
  if (want(5)) out << core::render_table5(study) << "\n";
  if (want(6)) out << core::render_table6(study) << "\n";
  if (which < 0 || which > 6) {
    err << "--which must be 1..6\n";
    return 2;
  }
  return 0;
}

int cmd_mine(const Args& args, std::ostream& out, std::ostream& err) {
  const auto in_path = args.get("in");
  if (!in_path) {
    err << "mine requires --in\n";
    return 2;
  }
  mine::MinerOptions opts;
  opts.min_support = static_cast<std::size_t>(args.get_int("support", 20));
  opts.min_template_count = opts.min_support;
  opts.skip_positions = static_cast<std::size_t>(args.get_int("skip", 4));
  const auto top = static_cast<std::size_t>(args.get_int("top", 25));
  if (reject_unused(args, err)) return 2;

  std::string text;
  try {
    text = logio::read_log_text(*in_path);
  } catch (const std::exception& e) {
    err << "mine: " << e.what() << "\n";
    return 1;
  }
  mine::TemplateMiner miner(opts);
  std::istringstream pass1(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(pass1, line)) {
    miner.learn(line);
    ++lines;
  }
  miner.freeze();
  std::istringstream pass2(text);
  while (std::getline(pass2, line)) miner.digest(line);

  const auto templates = miner.templates();
  out << util::format("%zu lines -> %zu templates (support >= %zu)\n", lines,
                      templates.size(), opts.min_support);
  for (std::size_t i = 0; i < templates.size() && i < top; ++i) {
    out << util::format("%8zu  %s\n", templates[i].count,
                        templates[i].pattern.c_str());
  }
  return 0;
}

int run(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string& cmd = args.command();
  if (cmd == "generate") return cmd_generate(args, out, err);
  if (cmd == "analyze") return cmd_analyze(args, out, err);
  if (cmd == "anonymize") return cmd_anonymize(args, out, err);
  if (cmd == "tables") return cmd_tables(args, out, err);
  if (cmd == "mine") return cmd_mine(args, out, err);
  print_usage(cmd.empty() || cmd == "help" ? out : err);
  return cmd.empty() || cmd == "help" ? 0 : 2;
}

}  // namespace wss::cli
