#include "cli/commands.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "dist/manifest.hpp"
#include "dist/merge.hpp"
#include "dist/split.hpp"
#include "dist/worker.hpp"
#include "filter/simultaneous.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "logio/anonymize.hpp"
#include "logio/input.hpp"
#include "mine/templates.hpp"
#include "logio/reader.hpp"
#include "logio/writer.hpp"
#include "simd/split.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/signal.hpp"
#include "net/url.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"
#include "stream/report.hpp"
#include "stream/source.hpp"
#include "tag/engine.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wss::cli {

namespace {

std::optional<parse::SystemId> parse_system(const std::string& name) {
  for (const auto id : parse::kAllSystems) {
    if (name == parse::system_short_name(id)) return id;
  }
  return std::nullopt;
}

/// Shared guard: reject unknown flags (typos fail loudly).
bool reject_unused(const Args& args, std::ostream& err) {
  const auto stray = args.unused();
  if (stray.empty()) return false;
  err << "unknown flag --" << stray.front() << "\n";
  return true;
}

/// Shared --threads parsing: a worker count >= 1, or "auto" for all
/// cores (mapped to 0, the PipelineOptions convention). Anything else
/// -- zero, negative, non-numeric -- is a loud error, never a silent
/// default.
bool parse_threads_flag(const Args& args, std::ostream& err, int& threads) {
  const auto raw = args.get("threads");
  if (!raw) {
    threads = 1;
    return true;
  }
  if (*raw == "auto") {
    threads = 0;
    return true;
  }
  std::int64_t n = 0;
  try {
    n = args.get_int("threads", 1);
  } catch (const std::exception&) {
    err << "--threads: '" << *raw << "' is not a thread count (use a number"
        << " >= 1, or 'auto')\n";
    return false;
  }
  if (n < 1) {
    err << "--threads must be >= 1 (or 'auto' for all cores)\n";
    return false;
  }
  threads = static_cast<int>(n);
  return true;
}

/// Shared --metrics parsing. Must run before reject_unused (so the
/// flag counts as read); a present-but-empty path is an error.
bool parse_metrics_flag(const Args& args, std::ostream& err,
                        std::optional<std::string>& path) {
  path = args.get("metrics");
  if (args.has("metrics") && (!path || path->empty())) {
    err << "--metrics requires a file path\n";
    return false;
  }
  return true;
}

/// Shared --predict flag family (stream and serve). The satellite
/// flags are usage errors without --predict, and bad values are loud
/// (exit 2), matching the --threads convention.
bool parse_predict_flags(const Args& args, std::ostream& err,
                         stream::PredictOptions& predict) {
  predict.enabled = args.has("predict");
  const bool has_train = args.has("predict-train");
  const bool has_horizon = args.has("predict-horizon");
  if (!predict.enabled && (has_train || has_horizon)) {
    err << "--predict-train/--predict-horizon require --predict\n";
    return false;
  }
  if (has_train) {
    std::int64_t n = 0;
    try {
      n = args.get_int("predict-train", 0);
    } catch (const std::exception&) {
      n = 0;
    }
    if (n < 1) {
      err << "--predict-train wants a training alert count >= 1\n";
      return false;
    }
    predict.train_alerts = static_cast<std::size_t>(n);
  }
  if (has_horizon) {
    double s = 0.0;
    try {
      s = args.get_double("predict-horizon", 0.0);
    } catch (const std::exception&) {
      s = 0.0;
    }
    if (s <= 0.0) {
      err << "--predict-horizon wants a window in seconds > 0\n";
      return false;
    }
    predict.horizon_us = static_cast<util::TimeUs>(s * 1e6);
  }
  return true;
}

/// Snapshots the registry to `path` (JSON, or Prometheus text for
/// .prom). Returns the command's exit code contribution: 0, or 1 on an
/// I/O failure.
int write_metrics(const std::optional<std::string>& path, const char* cmd,
                  std::ostream& err) {
  if (!path) return 0;
  try {
    obs::write_metrics_file(*path);
  } catch (const std::exception& e) {
    err << cmd << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}

/// The shared graceful-drain scope for the long-running commands
/// (stream, serve, generate --sink): installs the SIGINT/SIGTERM/
/// SIGHUP handlers and bridges the signal flag into a cancel atomic
/// the replayer's paced waits poll. One instance per command
/// invocation; the destructor restores the previous dispositions so
/// in-process callers (tests) are unaffected.
class SignalDrain {
 public:
  SignalDrain() {
    net::ShutdownSignal::install();
    watcher_ = std::thread([this] {
      while (!done_.load(std::memory_order_relaxed)) {
        if (net::ShutdownSignal::stop_requested()) {
          cancel_.store(true, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  ~SignalDrain() {
    done_.store(true, std::memory_order_relaxed);
    watcher_.join();
    net::ShutdownSignal::uninstall();
  }

  bool stopped() const {
    return cancel_.load(std::memory_order_relaxed) ||
           net::ShutdownSignal::stop_requested();
  }

  /// For sim::ReplayOptions::cancel (interrupts paced sleeps).
  const std::atomic<bool>* cancel_flag() const { return &cancel_; }

 private:
  std::atomic<bool> cancel_{false};
  std::atomic<bool> done_{false};
  std::thread watcher_;
};

/// Splits a comma-separated multi-value flag ("9000:a,9001:b").
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Parses the PORT in "PORT" / "PORT:TENANT" specs. Returns false on
/// junk or out-of-range values (0 is allowed: ephemeral bind).
bool parse_port(const std::string& tok, std::uint16_t& port) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || v > 65535) {
    return false;
  }
  port = static_cast<std::uint16_t>(v);
  return true;
}

}  // namespace

void print_usage(std::ostream& os) {
  os << "wss -- What Supercomputers Say (DSN 2007) reproduction tool\n"
        "\n"
        "usage: wss <command> [flags]\n"
        "\n"
        "commands:\n"
        "  generate   simulate a system log and write it to disk\n"
        "             --system bgl|tbird|rstorm|spirit|liberty  --out PATH\n"
        "             [--seed N] [--cap N] [--chatter N] [--compressed]\n"
        "             [--per-source]\n"
        "             [--speed N]  replay mode: pace lines at N simulated\n"
        "             seconds per wall second (0 = unpaced); --out - for\n"
        "             stdout\n"
        "             [--sink udp://H:P|tcp://H:P]  send the replayed\n"
        "             stream to a wss serve instance instead of a file\n"
        "             ([--tenant NAME] [--framing nl|len] [--loss-base P]\n"
        "              [--loss-contention P] [--lossless] [--loss-seed N]\n"
        "              [--stamp-latency] [--send-batch BYTES];\n"
        "             udp runs the paper's contention loss model\n"
        "             client-side and prints exact delivered/dropped;\n"
        "             tcp can stamp 1-in-16 lines for the server's\n"
        "             ingest-latency histogram and coalesce writes)\n"
        "  analyze    parse, tag, and filter a log file; print a summary\n"
        "             --system NAME --in PATH [--year Y] [--threshold SEC]\n"
        "  anonymize  pseudonymize IPs/users/paths in a log file\n"
        "             --in PATH --out PATH [--seed N]\n"
        "  mine       mine message templates from a log (SLCT-style)\n"
        "             --in PATH [--support N] [--skip N] [--top N]\n"
        "  tables     print the paper's tables from a fresh simulation\n"
        "             [--which N] (default: all)\n"
        "             [--threads N|auto]  pipeline worker threads (auto =\n"
        "             all cores); results are bit-identical at any N\n"
        "  study      run the full parallel pipeline + filter over fresh\n"
        "             simulations and print a per-system summary\n"
        "             [--system NAME|all] [--threads N|auto]\n"
        "             [--threshold SEC] [--seed N] [--cap N] [--chatter N]\n"
        "             [--split-by system|category|time --num-splits N\n"
        "              --manifest-dir DIR]  plan a distributed study:\n"
        "             write claimable assignment manifests instead of\n"
        "             running the pipeline\n"
        "  worker     claim one assignment from a manifest directory,\n"
        "             compute its chunk partials, publish them atomically\n"
        "             wss worker <id> --manifest-dir DIR\n"
        "             [--stale-after SEC] [--threads N|auto]\n"
        "             exit 3 when the assignment is held by a live worker\n"
        "  merge      validate + fold every assignment's partial and\n"
        "             write the study's tables/figure data; byte-identical\n"
        "             to a single-process run\n"
        "             --manifest-dir DIR [--out DIR]\n"
        "  stream     run the online pipeline over a live event stream\n"
        "             --system NAME; source: simulated replay (default;\n"
        "             [--seed N] [--cap N] [--chatter N] [--speed N]) or\n"
        "             --in PATH (parsed log, [--year Y])\n"
        "             [--threshold SEC] [--window SEC] [--queue N]\n"
        "             [--policy block|drop-oldest] [--refresh N]\n"
        "             [--checkpoint PATH] [--restore PATH]\n"
        "             [--max-events N] [--emit PATH]\n"
        "             [--predict]  online failure prediction: mines\n"
        "             episode rules + runs the predictor ensemble over\n"
        "             the alert stream ([--predict-train N] alerts of\n"
        "             self-training, [--predict-horizon SEC] window);\n"
        "             predictions ride --emit as 'P' lines\n"
        "             SIGINT/SIGTERM drain gracefully: finish in-flight\n"
        "             events, checkpoint (with --checkpoint), report\n"
        "  serve      multi-tenant network ingest server: one stream\n"
        "             engine per tenant behind accounted backpressure\n"
        "             --tcp PORT[:TENANT],...  newline/len-framed lines;\n"
        "             no tenant = route by first-line handshake\n"
        "             'tenant=NAME [system=SYS] [framing=len] [year=Y]'\n"
        "             [--udp PORT:TENANT,...]  syslog-over-UDP datagrams\n"
        "             [--tenant NAME:SYSTEM[:YEAR],...]  declare tenants\n"
        "             [--http PORT]  GET /metrics /metrics.json /status\n"
        "             [--bind HOST] [--queue N] [--threshold SEC]\n"
        "             [--window SEC] [--checkpoint-dir DIR]\n"
        "             [--max-frame BYTES] [--drain-grace SEC]\n"
        "             [--loop-shards N|auto]  SO_REUSEPORT event-loop\n"
        "             shards (default 1; auto = hardware threads <= 8)\n"
        "             [--predict] [--predict-train N]\n"
        "             [--predict-horizon SEC]  per-tenant online failure\n"
        "             prediction (wss_predict_* in /metrics and /status)\n"
        "             SIGTERM/SIGINT drain + checkpoint each tenant;\n"
        "             SIGHUP re-exports --metrics without stopping\n"
        "\n"
        "every command accepts --metrics FILE: write an observability\n"
        "snapshot on exit (Prometheus text when FILE ends in .prom, JSON\n"
        "otherwise)\n";
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto system = parse_system(args.get_or("system", ""));
  const auto out_path = args.get("out");
  const auto sink_url = args.get("sink");
  if (!system || (!out_path && !sink_url)) {
    err << "generate requires --system and --out (or --sink URL)\n";
    return 2;
  }
  if (out_path && sink_url) {
    err << "generate: --out and --sink are mutually exclusive\n";
    return 2;
  }
  sim::SimOptions opts;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opts.category_cap =
      static_cast<std::uint64_t>(args.get_int("cap", 20000));
  opts.chatter_events =
      static_cast<std::uint64_t>(args.get_int("chatter", 50000));
  logio::WriteOptions wopts;
  wopts.compressed = args.has("compressed");
  wopts.per_source_dirs = args.has("per-source");
  const bool replay_mode = args.has("speed");
  const double speed = args.get_double("speed", 0.0);
  if (replay_mode && speed < 0.0) {
    err << "--speed must be >= 0\n";
    return 2;
  }

  // Network sink flags (read only in --sink mode so a stray --tenant
  // on a file run still fails loudly via reject_unused).
  net::SinkOptions sink;
  if (sink_url) {
    try {
      sink.endpoint = net::parse_endpoint(*sink_url);
    } catch (const std::exception& e) {
      err << "generate: " << e.what() << "\n";
      return 2;
    }
    sink.tenant =
        args.get_or("tenant", std::string(parse::system_short_name(*system)));
    sink.system_short = std::string(parse::system_short_name(*system));
    const std::string framing_name = args.get_or("framing", "nl");
    if (framing_name == "nl") {
      sink.framing = net::Framing::kNewline;
    } else if (framing_name == "len") {
      sink.framing = net::Framing::kLenPrefix;
    } else {
      err << "generate: --framing must be nl or len\n";
      return 2;
    }
    if (sink.framing == net::Framing::kLenPrefix &&
        sink.endpoint.transport != net::Transport::kTcp) {
      err << "generate: --framing len requires a tcp:// sink\n";
      return 2;
    }
    sink.udp.base_loss = args.get_double("loss-base", sink.udp.base_loss);
    sink.udp.contention_loss_per_k =
        args.get_double("loss-contention", sink.udp.contention_loss_per_k);
    sink.lossless_udp = args.has("lossless");
    sink.seed = static_cast<std::uint64_t>(args.get_int("loss-seed", 1));
    if (sink.udp.base_loss < 0.0 || sink.udp.base_loss > 1.0 ||
        sink.udp.contention_loss_per_k < 0.0) {
      err << "generate: --loss-base must be in [0,1], --loss-contention "
             ">= 0\n";
      return 2;
    }
    sink.stamp_latency = args.has("stamp-latency");
    const int batch = args.get_int("send-batch", 0);
    if (batch < 0) {
      err << "generate: --send-batch wants a byte count >= 0\n";
      return 2;
    }
    sink.send_batch_bytes = static_cast<std::size_t>(batch);
    if ((sink.stamp_latency || batch > 0) &&
        sink.endpoint.transport != net::Transport::kTcp) {
      err << "generate: --stamp-latency/--send-batch require a tcp:// "
             "sink\n";
      return 2;
    }
  }

  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  const sim::Simulator simulator(*system, opts);

  if (sink_url) {
    // Network sink: replay the stream into the server. UDP runs the
    // paper's contention loss model client-side (sim::UdpLossModel),
    // so the delivered/dropped line below is exact ground truth for
    // the server's wss_net_* counters.
    SignalDrain drain;
    std::unique_ptr<net::SinkClient> client;
    try {
      client = std::make_unique<net::SinkClient>(sink);
    } catch (const std::exception& e) {
      err << "generate: " << e.what() << "\n";
      return 1;
    }
    sim::ReplayOptions ropts;
    ropts.speed = speed;
    ropts.cancel = drain.cancel_flag();
    const sim::Replayer replayer(simulator, ropts);
    int rc = 0;
    try {
      replayer.run([&](std::size_t, const sim::SimEvent& e,
                       std::string&& line) {
        if (drain.stopped()) return false;
        client->send(e.time, line);
        return true;
      });
    } catch (const std::exception& e) {
      err << "generate: send failed: " << e.what() << "\n";
      rc = 1;
    }
    client->close();
    const sim::TransportStats& st = client->stats();
    out << util::format(
        "sink %s: offered %llu delivered %llu dropped %llu (%.2f%% loss)\n",
        sink.endpoint.to_string().c_str(),
        static_cast<unsigned long long>(st.offered),
        static_cast<unsigned long long>(st.delivered),
        static_cast<unsigned long long>(st.dropped), 100.0 * st.loss_rate());
    const int mrc = write_metrics(metrics, "generate", err);
    return rc != 0 ? rc : mrc;
  }

  if (replay_mode) {
    // Replay mode: stream rendered lines at --speed simulated seconds
    // per wall second instead of bulk-writing the log.
    std::ofstream file;
    const bool to_stdout = *out_path == "-";
    if (!to_stdout) {
      file.open(*out_path, std::ios::binary);
      if (!file) {
        err << "generate: cannot open " << *out_path << "\n";
        return 1;
      }
    }
    std::ostream& dst = to_stdout ? out : file;
    sim::ReplayOptions ropts;
    ropts.speed = speed;
    const sim::Replayer replayer(simulator, ropts);
    const std::size_t lines = replayer.run(
        [&](std::size_t, const sim::SimEvent&, std::string&& line) {
          dst << line << '\n';
          if (speed > 0.0) dst.flush();  // live consumers want lines now
          return static_cast<bool>(dst);
        });
    if (!to_stdout) {
      out << util::format("replayed %zu lines for %s\n", lines,
                          std::string(parse::system_name(*system)).c_str());
    }
    if (!dst) return 1;
    return write_metrics(metrics, "generate", err);
  }

  const auto result = logio::write_log(simulator, *out_path, wopts);
  out << util::format(
      "wrote %zu lines (%s bytes) across %zu file(s) for %s\n", result.lines,
      util::with_commas(static_cast<std::int64_t>(result.bytes_written))
          .c_str(),
      result.files,
      std::string(parse::system_name(*system)).c_str());
  return write_metrics(metrics, "generate", err);
}

int cmd_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  const auto system = parse_system(args.get_or("system", ""));
  const auto in_path = args.get("in");
  if (!system || !in_path) {
    err << "analyze requires --system and --in\n";
    return 2;
  }
  const int year = static_cast<int>(args.get_int(
      "year", sim::system_spec(*system).start_date.year));
  const double threshold_s = args.get_double("threshold", 5.0);
  if (threshold_s <= 0.0) {
    err << "--threshold must be positive\n";
    return 2;
  }
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  const tag::RuleSet rules = tag::build_ruleset(*system);
  const tag::TagEngine engine(rules);
  filter::SimultaneousFilter filter(
      static_cast<util::TimeUs>(threshold_s * 1e6));

  // Numeric source ids for the filter: interned from parsed hostnames.
  std::map<std::string, std::uint32_t> source_ids;
  std::vector<std::size_t> raw_counts(rules.size(), 0);
  std::vector<std::size_t> filtered_counts(rules.size(), 0);
  std::size_t alerts = 0;
  std::size_t kept = 0;

  logio::ReadStats stats;
  match::MatchScratch scratch;  // reused across every line of the file
  tag::TagMetricsFlusher flusher;
  try {
    obs::Span span("analyze_pass");  // closes before the metrics snapshot
    stats = logio::read_log(*in_path, *system, year,
                            [&](const parse::LogRecord& rec) {
      const auto tagged = engine.tag(rec, scratch);
      if (!tagged) return;
      ++alerts;
      ++raw_counts[tagged->category];
      filter::Alert a;
      a.time = rec.time;
      a.category = tagged->category;
      a.type = tagged->type;
      const auto [it, inserted] = source_ids.emplace(
          rec.source, static_cast<std::uint32_t>(source_ids.size()));
      a.source = it->second;
      if (filter.admit(a)) {
        ++kept;
        ++filtered_counts[tagged->category];
      }
    });
  } catch (const std::exception& e) {
    err << "analyze: " << e.what() << "\n";
    return 1;
  }
  flusher.flush(scratch);
  filter.publish_metrics();

  out << util::format(
      "%zu lines: %zu alerts -> %zu after filtering (T=%.1fs); "
      "%zu corrupted sources, %zu invalid timestamps, %d year rollover(s)\n",
      stats.lines, alerts, kept, threshold_s, stats.corrupted_sources,
      stats.invalid_timestamps, stats.year_rollovers);
  util::Table t({"Category", "Raw", "Filtered"});
  for (std::uint16_t c = 0; c < rules.size(); ++c) {
    if (raw_counts[c] == 0) continue;
    t.add_row({rules.category_name(c), std::to_string(raw_counts[c]),
               std::to_string(filtered_counts[c])});
  }
  out << t.render();
  return write_metrics(metrics, "analyze", err);
}

int cmd_anonymize(const Args& args, std::ostream& out, std::ostream& err) {
  const auto in_path = args.get("in");
  const auto out_path = args.get("out");
  if (!in_path || !out_path) {
    err << "anonymize requires --in and --out\n";
    return 2;
  }
  const logio::Anonymizer anon(
      static_cast<std::uint64_t>(args.get_int("seed", 0x5eed)));
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  logio::InputBuffer input;
  try {
    input = logio::InputBuffer::open(*in_path);
  } catch (const std::exception& e) {
    err << "anonymize: " << e.what() << "\n";
    return 1;
  }
  std::ofstream os(*out_path, std::ios::binary);
  if (!os) {
    err << "anonymize: cannot open " << *out_path << "\n";
    return 1;
  }
  std::size_t lines = 0;
  simd::for_each_line(input.view(), [&](std::string_view line) {
    os << anon.anonymize(line) << '\n';
    ++lines;
  });
  out << util::format("anonymized %zu lines -> %s\n", lines,
                      out_path->c_str());
  return write_metrics(metrics, "anonymize", err);
}

int cmd_tables(const Args& args, std::ostream& out, std::ostream& err) {
  const int which = static_cast<int>(args.get_int("which", 0));
  int threads = 1;
  if (!parse_threads_flag(args, err, threads)) return 2;
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;
  if (which < 0 || which > 6) {
    err << "--which must be 1..6\n";
    return 2;
  }
  core::StudyOptions opts;
  opts.sim.category_cap = 20000;
  opts.sim.chatter_events = 30000;
  opts.pipeline.num_threads = threads;
  core::Study study(opts);
  {
    obs::Span span("cmd_tables");
    // Warm the shared result cache through the parallel path; every
    // render_table* call below then hits the cache. Output is
    // bit-identical to the serial path at any thread count.
    if (threads != 1) {
      for (const auto id : parse::kAllSystems) {
        study.parallel_pipeline_result(id);
      }
    }
    const auto want = [&](int n) { return which == 0 || which == n; };
    if (want(1)) out << core::render_table1() << "\n";
    if (want(2)) out << core::render_table2(study) << "\n";
    if (want(3)) out << core::render_table3(study) << "\n";
    if (want(4)) {
      for (const auto id : parse::kAllSystems) {
        out << core::render_table4(study, id) << "\n";
      }
    }
    if (want(5)) out << core::render_table5(study) << "\n";
    if (want(6)) out << core::render_table6(study) << "\n";
  }
  return write_metrics(metrics, "tables", err);
}

int cmd_mine(const Args& args, std::ostream& out, std::ostream& err) {
  const auto in_path = args.get("in");
  if (!in_path) {
    err << "mine requires --in\n";
    return 2;
  }
  mine::MinerOptions opts;
  opts.min_support = static_cast<std::size_t>(args.get_int("support", 20));
  opts.min_template_count = opts.min_support;
  opts.skip_positions = static_cast<std::size_t>(args.get_int("skip", 4));
  const auto top = static_cast<std::size_t>(args.get_int("top", 25));
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  logio::InputBuffer input;
  try {
    input = logio::InputBuffer::open(*in_path);
  } catch (const std::exception& e) {
    err << "mine: " << e.what() << "\n";
    return 1;
  }
  mine::TemplateMiner miner(opts);
  std::size_t lines = 0;
  simd::for_each_line(input.view(), [&](std::string_view line) {
    miner.learn(line);
    ++lines;
  });
  miner.freeze();
  simd::for_each_line(input.view(),
                      [&](std::string_view line) { miner.digest(line); });

  const auto templates = miner.templates();
  out << util::format("%zu lines -> %zu templates (support >= %zu)\n", lines,
                      templates.size(), opts.min_support);
  for (std::size_t i = 0; i < templates.size() && i < top; ++i) {
    out << util::format("%8zu  %s\n", templates[i].count,
                        templates[i].pattern.c_str());
  }
  return write_metrics(metrics, "mine", err);
}

int cmd_stream(const Args& args, std::ostream& out, std::ostream& err) {
  const auto system = parse_system(args.get_or("system", ""));
  if (!system) {
    err << "stream requires --system\n";
    return 2;
  }
  const auto in_path = args.get("in");
  const double threshold_s = args.get_double("threshold", 5.0);
  const double window_s = args.get_double("window", 3600.0);
  const double speed = args.get_double("speed", 0.0);
  const std::int64_t queue_cap = args.get_int("queue", 1024);
  const std::string policy_name = args.get_or("policy", "block");
  const std::int64_t refresh = args.get_int("refresh", 0);
  const auto checkpoint_path = args.get("checkpoint");
  const auto restore_path = args.get("restore");
  const auto emit_path = args.get("emit");
  const std::int64_t max_events = args.get_int("max-events", 0);
  const int year = static_cast<int>(args.get_int("year", 0));
  sim::SimOptions sopts;
  sopts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  sopts.category_cap = static_cast<std::uint64_t>(args.get_int("cap", 20000));
  sopts.chatter_events =
      static_cast<std::uint64_t>(args.get_int("chatter", 50000));
  if (threshold_s <= 0.0 || window_s <= 0.0) {
    err << "--threshold and --window must be positive\n";
    return 2;
  }
  if (speed < 0.0 || queue_cap < 1 || max_events < 0) {
    err << "--speed must be >= 0, --queue >= 1, --max-events >= 0\n";
    return 2;
  }
  stream::BackpressurePolicy policy;
  if (policy_name == "block") {
    policy = stream::BackpressurePolicy::kBlock;
  } else if (policy_name == "drop-oldest") {
    policy = stream::BackpressurePolicy::kDropOldest;
  } else {
    err << "--policy must be block or drop-oldest\n";
    return 2;
  }
  if (checkpoint_path && restore_path && *checkpoint_path == *restore_path) {
    err << "--checkpoint and --restore must not name the same file (the "
           "checkpoint would overwrite the state being restored)\n";
    return 2;
  }
  stream::PredictOptions predict;
  if (!parse_predict_flags(args, err, predict)) return 2;
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  stream::StreamPipelineOptions popts;
  popts.study.threshold_us = static_cast<util::TimeUs>(threshold_s * 1e6);
  popts.study.window_us = static_cast<util::TimeUs>(window_s * 1e6);
  popts.strict_order = !in_path.has_value();
  popts.start_year = year;
  popts.predict = predict;
  std::optional<stream::StreamPipeline> pipeline_storage;
  try {
    pipeline_storage.emplace(*system, popts);
  } catch (const std::exception& e) {
    err << "stream: " << e.what() << "\n";
    return 1;
  }
  stream::StreamPipeline& pipeline = *pipeline_storage;

  if (restore_path) {
    std::ifstream is(*restore_path, std::ios::binary);
    if (!is) {
      err << "stream: cannot open " << *restore_path << "\n";
      return 1;
    }
    try {
      pipeline.restore(is);
    } catch (const std::exception& e) {
      err << "stream: restore failed: " << e.what() << "\n";
      return 1;
    }
  }

  std::ofstream emit;
  if (emit_path) {
    emit.open(*emit_path, std::ios::binary);
    if (!emit) {
      err << "stream: cannot open " << *emit_path << "\n";
      return 1;
    }
    pipeline.set_alert_sink([&emit](const filter::Alert& a) {
      emit << util::format_iso(a.time) << ' ' << a.category << ' '
           << filter::alert_type_letter(a.type) << ' ' << a.source << '\n';
    });
    // Predicted-alert events ride the same channel, marked 'P':
    // issue time, predicted category, and the expected window.
    pipeline.set_prediction_sink([&emit](const predict::Prediction& p) {
      emit << "P " << util::format_iso(p.issued_at) << ' ' << p.category
           << ' ' << util::format_iso(p.window_begin) << ' '
           << util::format_iso(p.window_end) << '\n';
    });
  }

  const std::uint64_t resume = pipeline.events();
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t ingested = 0;
  bool truncated = false;

  stream::IngestRing ring(static_cast<std::size_t>(queue_cap), policy);

  // SIGINT/SIGTERM request a graceful drain: stop the producer, finish
  // what is in flight, checkpoint if asked, and print the tables --
  // the same contract `wss serve` gives its tenants.
  SignalDrain drain;

  const auto tick = [&] {
    if (refresh <= 0 || ingested % static_cast<std::uint64_t>(refresh) != 0) {
      return;
    }
    auto snap = pipeline.snapshot();
    snap.dropped = ring.dropped();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    err << stream::render_status_line(
               snap, secs > 0.0 ? static_cast<double>(ingested) / secs : 0.0)
        << "\n";
  };

  std::thread producer;
  try {
    if (!in_path) {
      // Simulated source: paced replay of the generator's stream.
      const sim::Simulator simulator(*system, sopts);
      const std::size_t total = simulator.events().size();
      if (resume > total) {
        err << "stream: checkpoint lies beyond this simulation\n";
        return 1;
      }
      std::size_t end = total;
      if (max_events > 0) {
        end = std::min<std::size_t>(
            total, resume + static_cast<std::size_t>(max_events));
      }
      truncated = end < total;

      sim::ReplayOptions ropts;
      ropts.speed = speed;
      ropts.begin = static_cast<std::size_t>(resume);
      ropts.end = end;
      ropts.cancel = drain.cancel_flag();
      const sim::Replayer replayer(simulator, ropts);
      producer = std::thread([&replayer, &ring, &drain] {
        replayer.run([&ring, &drain](std::size_t i, const sim::SimEvent& e,
                                     std::string&& line) {
          if (drain.stopped()) return false;
          return ring.push({i, e, std::move(line)});
        });
        ring.close();
      });
      while (auto item = ring.pop()) {
        pipeline.ingest(item->event, item->line);
        ++ingested;
        tick();
        if (drain.stopped()) {
          truncated = true;
          break;
        }
      }
      if (truncated) {
        ring.close();
        while (ring.try_pop()) {  // unblock a producer stuck in push
        }
      }
      producer.join();
    } else {
      // File source: line-delimited log, optionally stdin ("-").
      // InputBuffer mmaps plain files (zero-copy; WSS_MMAP=0 forces
      // the read() path) and drains pipes via read().
      logio::InputBuffer input = *in_path == "-"
                                     ? logio::InputBuffer::from_fd(0)
                                     : logio::InputBuffer::open(*in_path);
      producer = std::thread([&ring, &resume, input = std::move(input)] {
        const std::string_view text = input.view();
        const char* p = text.data();
        const char* const end = p + text.size();
        std::uint64_t index = 0;
        // Manual split (not for_each_line) so a closed ring can stop
        // the scan early; getline semantics otherwise.
        while (p != end) {
          const char* nl = simd::find_byte(p, end, '\n');
          const std::string_view line(p, static_cast<std::size_t>(nl - p));
          p = nl == end ? end : nl + 1;
          if (index++ < resume) continue;  // checkpoint resume skip
          if (!ring.push({index - 1, sim::SimEvent{}, std::string(line)})) {
            break;
          }
        }
        ring.close();
      });
      while (auto item = ring.pop()) {
        pipeline.ingest_line(item->line);
        ++ingested;
        tick();
        if (drain.stopped() ||
            (max_events > 0 &&
             ingested >= static_cast<std::uint64_t>(max_events))) {
          truncated = true;
          break;
        }
      }
      if (truncated) {
        ring.close();
        while (ring.try_pop()) {  // a drained producer can exit
        }
      }
      producer.join();
    }
  } catch (const std::exception& e) {
    if (producer.joinable()) {
      ring.close();
      producer.join();
    }
    err << "stream: " << e.what() << "\n";
    return 1;
  }

  if (!truncated) pipeline.finish();

  if (checkpoint_path) {
    std::ofstream os(*checkpoint_path, std::ios::binary);
    if (!os) {
      err << "stream: cannot open " << *checkpoint_path << "\n";
      return 1;
    }
    try {
      pipeline.save(os);
    } catch (const std::exception& e) {
      err << "stream: checkpoint failed: " << e.what() << "\n";
      return 1;
    }
  }

  auto snap = pipeline.snapshot();
  snap.dropped = ring.dropped();
  if (truncated) {
    out << util::format(
        "paused after %s events%s\n",
        util::with_commas(static_cast<std::int64_t>(pipeline.events()))
            .c_str(),
        checkpoint_path ? " (resume with --restore)" : "");
  }
  out << stream::render_snapshot(snap);
  // A truncated run skipped finish(); publish pending deltas so the
  // exported snapshot is complete either way.
  pipeline.publish_metrics();
  return write_metrics(metrics, "stream", err);
}

int cmd_serve(const Args& args, std::ostream& out, std::ostream& err) {
  net::ServeOptions sopts;
  sopts.bind_host = args.get_or("bind", "127.0.0.1");
  const double threshold_s = args.get_double("threshold", 5.0);
  const double window_s = args.get_double("window", 3600.0);
  const std::int64_t queue_cap = args.get_int("queue", 4096);
  const std::int64_t max_frame = args.get_int("max-frame", 1 << 20);
  const double drain_grace_s = args.get_double("drain-grace", 5.0);
  const std::string loop_shards = args.get_or("loop-shards", "1");
  sopts.checkpoint_dir = args.get_or("checkpoint-dir", "");
  const auto tenant_spec = args.get("tenant");
  const auto tcp_spec = args.get("tcp");
  const auto udp_spec = args.get("udp");
  const auto http_spec = args.get("http");
  stream::PredictOptions predict;
  if (!parse_predict_flags(args, err, predict)) return 2;
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  if (threshold_s <= 0.0 || window_s <= 0.0) {
    err << "--threshold and --window must be positive\n";
    return 2;
  }
  if (queue_cap < 1 || max_frame < 1 || drain_grace_s < 0.0) {
    err << "--queue and --max-frame must be >= 1, --drain-grace >= 0\n";
    return 2;
  }
  if (loop_shards == "auto") {
    sopts.loop_shards = 0;  // the server sizes to the machine
  } else {
    sopts.loop_shards = std::atoi(loop_shards.c_str());
    if (sopts.loop_shards < 1 || sopts.loop_shards > 64) {
      err << "--loop-shards wants 1..64 or auto, got '" << loop_shards
          << "'\n";
      return 2;
    }
  }
  if (!tcp_spec && !udp_spec) {
    err << "serve requires at least one listener (--tcp and/or --udp)\n";
    return 2;
  }

  sopts.tenant_defaults.threshold_s = threshold_s;
  sopts.tenant_defaults.window_s = window_s;
  sopts.tenant_defaults.queue_capacity =
      static_cast<std::size_t>(queue_cap);
  // The --predict family applies to every tenant (explicit --tenant
  // entries copy the defaults below; handshake tenants clone them too).
  sopts.tenant_defaults.predict = predict.enabled;
  sopts.tenant_defaults.predict_train = predict.train_alerts;
  sopts.tenant_defaults.predict_horizon_us = predict.horizon_us;
  sopts.max_frame = static_cast<std::size_t>(max_frame);
  sopts.drain_grace_ms = static_cast<int>(drain_grace_s * 1000.0);
  if (metrics) sopts.metrics_path = *metrics;
  sopts.watch_shutdown_signal = true;
  sopts.log = &err;

  // --tenant NAME:SYSTEM[:YEAR],...
  for (const std::string& tok : split_commas(args.get_or("tenant", ""))) {
    const auto c1 = tok.find(':');
    if (c1 == std::string::npos) {
      err << "serve: --tenant wants NAME:SYSTEM[:YEAR], got '" << tok
          << "'\n";
      return 2;
    }
    const auto c2 = tok.find(':', c1 + 1);
    net::TenantConfig cfg = sopts.tenant_defaults;
    cfg.name = tok.substr(0, c1);
    const std::string sys_name =
        tok.substr(c1 + 1, (c2 == std::string::npos ? tok.size() : c2) -
                               c1 - 1);
    const auto sys = parse_system(sys_name);
    if (!sys) {
      err << "serve: unknown system '" << sys_name << "' in --tenant\n";
      return 2;
    }
    cfg.system = *sys;
    if (c2 != std::string::npos) {
      cfg.start_year = std::atoi(tok.c_str() + c2 + 1);
      if (cfg.start_year <= 0) {
        err << "serve: bad year in --tenant '" << tok << "'\n";
        return 2;
      }
    }
    sopts.tenants.push_back(std::move(cfg));
  }
  // The handshake-tenant template inherits the shared knobs; system
  // defaults to liberty unless the handshake names one.
  sopts.tenant_defaults.system = parse::SystemId::kLiberty;

  // --tcp PORT[:TENANT],...
  for (const std::string& tok : split_commas(args.get_or("tcp", ""))) {
    net::TcpListenerSpec spec;
    const auto colon = tok.find(':');
    if (!parse_port(tok.substr(0, colon), spec.port)) {
      err << "serve: bad --tcp port in '" << tok << "'\n";
      return 2;
    }
    if (colon != std::string::npos) spec.tenant = tok.substr(colon + 1);
    sopts.tcp.push_back(std::move(spec));
  }
  // --udp PORT:TENANT,...
  for (const std::string& tok : split_commas(args.get_or("udp", ""))) {
    net::UdpListenerSpec spec;
    const auto colon = tok.find(':');
    if (colon == std::string::npos ||
        !parse_port(tok.substr(0, colon), spec.port) ||
        colon + 1 >= tok.size()) {
      err << "serve: --udp wants PORT:TENANT, got '" << tok << "'\n";
      return 2;
    }
    spec.tenant = tok.substr(colon + 1);
    sopts.udp.push_back(std::move(spec));
  }
  if (http_spec) {
    if (!parse_port(*http_spec, sopts.http_port)) {
      err << "serve: bad --http port '" << *http_spec << "'\n";
      return 2;
    }
    sopts.http_enabled = true;
  }

  // Keep display copies; the server owns the options after this.
  const auto tcp_specs = sopts.tcp;
  const auto udp_specs = sopts.udp;
  const std::string bind_host = sopts.bind_host;
  const bool http_on = sopts.http_enabled;

  SignalDrain drainer;  // handlers must be live before bind() wires fd()
  net::Server server(std::move(sopts));
  try {
    server.bind();
  } catch (const std::exception& e) {
    err << "serve: " << e.what() << "\n";
    return 2;
  }
  for (std::size_t i = 0; i < tcp_specs.size(); ++i) {
    out << util::format(
        "listening tcp %s:%u (%s)\n", bind_host.c_str(),
        unsigned{server.tcp_port(i)},
        tcp_specs[i].tenant.empty() ? "handshake-routed"
                                    : tcp_specs[i].tenant.c_str());
  }
  for (std::size_t i = 0; i < udp_specs.size(); ++i) {
    out << util::format("listening udp %s:%u (%s)\n", bind_host.c_str(),
                        unsigned{server.udp_port(i)},
                        udp_specs[i].tenant.c_str());
  }
  if (http_on) {
    out << util::format("http %s:%u (/metrics /metrics.json /status)\n",
                        bind_host.c_str(), unsigned{server.http_port()});
  }
  out.flush();

  net::ServeReport report;
  try {
    report = server.run();
  } catch (const std::exception& e) {
    err << "serve: " << e.what() << "\n";
    return 1;
  }

  for (const net::ServeTenantReport& tr : report.tenants) {
    out << util::format(
        "tenant %s (%s): delivered %llu dropped %llu ingested %llu "
        "admitted %llu\n",
        tr.name.c_str(), tr.system.c_str(),
        static_cast<unsigned long long>(tr.delivered),
        static_cast<unsigned long long>(tr.dropped),
        static_cast<unsigned long long>(tr.ingested),
        static_cast<unsigned long long>(tr.admitted));
    out << tr.table;
  }
  out << util::format(
      "served %llu connection(s), %llu http request(s), %llu protocol "
      "error(s), %llu oversized frame(s)\n",
      static_cast<unsigned long long>(report.connections),
      static_cast<unsigned long long>(report.http_requests),
      static_cast<unsigned long long>(report.protocol_errors),
      static_cast<unsigned long long>(report.oversized));
  for (const std::string& path : report.checkpoints) {
    out << "checkpoint " << path << "\n";
  }
  return write_metrics(metrics, "serve", err);
}

int cmd_study(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string sys_name = args.get_or("system", "all");
  int threads = 1;
  if (!parse_threads_flag(args, err, threads)) return 2;
  const double threshold_s = args.get_double("threshold", 5.0);
  if (threshold_s <= 0.0) {
    err << "--threshold must be positive\n";
    return 2;
  }
  sim::SimOptions sopts;
  sopts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  sopts.category_cap = static_cast<std::uint64_t>(args.get_int("cap", 20000));
  sopts.chatter_events =
      static_cast<std::uint64_t>(args.get_int("chatter", 50000));

  // Distributed planning mode: --split-by switches `study` from
  // running the pipeline to emitting a claimable manifest.
  const auto split_by = args.get("split-by");
  const std::int64_t num_splits = args.get_int("num-splits", 4);
  const auto manifest_dir = args.get("manifest-dir");
  if (!split_by && (args.has("num-splits") || manifest_dir)) {
    err << "study: --num-splits/--manifest-dir require --split-by\n";
    return 2;
  }

  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  std::vector<parse::SystemId> systems;
  if (sys_name == "all") {
    systems.assign(parse::kAllSystems.begin(), parse::kAllSystems.end());
  } else {
    const auto system = parse_system(sys_name);
    if (!system) {
      err << "study: unknown system '" << sys_name << "'\n";
      return 2;
    }
    systems.push_back(*system);
  }

  if (split_by) {
    const auto axis = dist::parse_split_axis(*split_by);
    if (!axis) {
      err << "study: --split-by must be system, category, or time\n";
      return 2;
    }
    if (num_splits < 1) {
      err << "study: --num-splits must be >= 1\n";
      return 2;
    }
    if (!manifest_dir || manifest_dir->empty()) {
      err << "study: --split-by requires --manifest-dir\n";
      return 2;
    }
    dist::SplitOptions split;
    split.axis = *axis;
    split.num_splits = static_cast<std::uint32_t>(num_splits);
    split.study.sim = sopts;
    split.study.sim.threshold_us =
        static_cast<util::TimeUs>(threshold_s * 1e6);
    split.systems = systems;
    try {
      obs::Span span("cmd_study_split");
      const dist::StudyManifest manifest = dist::plan_split(split);
      dist::write_manifest(manifest, *manifest_dir);
      std::uint64_t chunks = 0;
      for (const auto c : manifest.chunk_counts) chunks += c;
      out << util::format(
          "planned %u assignment(s) over %zu system(s), %llu chunks, split "
          "by %s -> %s\n",
          manifest.num_splits, manifest.systems.size(),
          static_cast<unsigned long long>(chunks),
          std::string(dist::split_axis_name(manifest.axis)).c_str(),
          manifest_dir->c_str());
      for (const dist::Assignment& a : manifest.assignments) {
        std::uint64_t owned = 0;
        for (const auto& slice : a.slices) owned += slice.chunk_count();
        out << util::format("  assignment %u: %llu chunk(s)\n", a.id,
                            static_cast<unsigned long long>(owned));
      }
    } catch (const std::exception& e) {
      err << "study: " << e.what() << "\n";
      return 1;
    }
    return write_metrics(metrics, "study", err);
  }
  const auto threshold_us = static_cast<util::TimeUs>(threshold_s * 1e6);

  util::Table t({"System", "Events", "Messages", "Raw alerts", "Admitted",
                 "Suppressed", "Corrupt src", "Bad stamps"});
  {
    obs::Span span("cmd_study");  // closes before the metrics snapshot
    core::PipelineOptions popts;
    popts.num_threads = threads;
    const core::ParallelPipeline pipeline(popts);
    const int filter_threads = pipeline.resolved_threads();
    for (const auto id : systems) {
      const sim::Simulator simulator(id, sopts);
      const core::PipelineResult r = pipeline.run(simulator);
      const auto truth = simulator.ground_truth_alerts();
      const auto kept = filter::apply_simultaneous_parallel(
          truth, threshold_us, filter_threads);
      t.add_row(
          {std::string(parse::system_short_name(id)),
           util::with_commas(static_cast<std::int64_t>(
               simulator.events().size())),
           util::with_commas(static_cast<std::int64_t>(r.physical_messages)),
           util::with_commas(static_cast<std::int64_t>(truth.size())),
           util::with_commas(static_cast<std::int64_t>(kept.size())),
           util::with_commas(
               static_cast<std::int64_t>(truth.size() - kept.size())),
           util::with_commas(
               static_cast<std::int64_t>(r.corrupted_source_lines)),
           util::with_commas(
               static_cast<std::int64_t>(r.invalid_timestamp_lines))});
    }
  }
  out << t.render();
  return write_metrics(metrics, "study", err);
}

int cmd_worker(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << "worker requires an assignment id (wss worker <id> "
           "--manifest-dir DIR)\n";
    return 2;
  }
  const std::string& id_token = args.positional().front();
  std::uint64_t worker_id = 0;
  {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(id_token.c_str(), &end, 10);
    if (errno != 0 || end == id_token.c_str() || *end != '\0' ||
        id_token[0] == '-') {
      err << "worker: '" << id_token << "' is not an assignment id\n";
      return 2;
    }
    worker_id = v;
  }
  const auto manifest_dir = args.get("manifest-dir");
  if (!manifest_dir || manifest_dir->empty()) {
    err << "worker requires --manifest-dir\n";
    return 2;
  }
  const double stale_after = args.get_double("stale-after", 300.0);
  int threads = 1;
  if (!parse_threads_flag(args, err, threads)) return 2;
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  const auto instance = args.get_or("instance", "");
  if (reject_unused(args, err)) return 2;

  dist::StudyManifest manifest;
  try {
    manifest = dist::load_manifest(*manifest_dir);
  } catch (const std::exception& e) {
    err << "worker: " << e.what() << "\n";
    return 1;
  }
  if (worker_id >= manifest.num_splits) {
    err << util::format("worker: id %llu out of range [0, %u)\n",
                        static_cast<unsigned long long>(worker_id),
                        manifest.num_splits);
    return 2;
  }

  dist::WorkerOptions wopts;
  wopts.manifest_dir = *manifest_dir;
  wopts.worker_id = static_cast<std::uint32_t>(worker_id);
  wopts.stale_after_s = stale_after;
  wopts.threads = threads;
  wopts.instance = instance;
  dist::WorkerReport report;
  try {
    obs::Span span("cmd_worker");
    report = dist::run_worker(manifest, wopts);
  } catch (const std::exception& e) {
    err << "worker: " << e.what() << "\n";
    return 1;
  }
  switch (report.outcome) {
    case dist::WorkerOutcome::kLostClaim:
      err << util::format("worker: assignment %llu is held by %s\n",
                          static_cast<unsigned long long>(worker_id),
                          report.holder.c_str());
      return 3;
    case dist::WorkerOutcome::kAlreadyComplete:
      out << util::format("assignment %llu already complete\n",
                          static_cast<unsigned long long>(worker_id));
      break;
    case dist::WorkerOutcome::kCompleted:
      out << util::format(
          "assignment %llu: processed %llu chunk(s), %llu event(s) -> %s\n",
          static_cast<unsigned long long>(worker_id),
          static_cast<unsigned long long>(report.chunks),
          static_cast<unsigned long long>(report.events),
          dist::partial_path(*manifest_dir,
                             static_cast<std::uint32_t>(worker_id))
              .c_str());
      break;
  }
  return write_metrics(metrics, "worker", err);
}

int cmd_merge(const Args& args, std::ostream& out, std::ostream& err) {
  const auto manifest_dir = args.get("manifest-dir");
  if (!manifest_dir || manifest_dir->empty()) {
    err << "merge requires --manifest-dir\n";
    return 2;
  }
  const auto out_dir = args.get_or("out", "");
  std::optional<std::string> metrics;
  if (!parse_metrics_flag(args, err, metrics)) return 2;
  if (reject_unused(args, err)) return 2;

  dist::StudyManifest manifest;
  try {
    manifest = dist::load_manifest(*manifest_dir);
  } catch (const std::exception& e) {
    err << "merge: " << e.what() << "\n";
    return 1;
  }
  dist::MergeOptions mopts;
  mopts.manifest_dir = *manifest_dir;
  mopts.out_dir = out_dir;
  dist::MergeReport report;
  try {
    obs::Span span("cmd_merge");
    report = dist::run_merge(manifest, mopts);
  } catch (const std::exception& e) {
    err << "merge: " << e.what() << "\n";
    return 1;
  }
  if (!report.ok()) {
    err << report.describe_failure() << "\n";
    return 1;
  }
  out << util::format(
      "merged %zu assignment(s): %llu chunk(s) across %zu system(s) -> %s "
      "(%zu artifact(s))\n",
      manifest.assignments.size(),
      static_cast<unsigned long long>(report.chunks), report.covered.size(),
      report.out_dir.c_str(), report.artifacts);
  return write_metrics(metrics, "merge", err);
}

int run(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string& cmd = args.command();
  try {
    if (cmd == "generate") return cmd_generate(args, out, err);
    if (cmd == "analyze") return cmd_analyze(args, out, err);
    if (cmd == "anonymize") return cmd_anonymize(args, out, err);
    if (cmd == "tables") return cmd_tables(args, out, err);
    if (cmd == "study") return cmd_study(args, out, err);
    if (cmd == "mine") return cmd_mine(args, out, err);
    if (cmd == "stream") return cmd_stream(args, out, err);
    if (cmd == "serve") return cmd_serve(args, out, err);
    if (cmd == "worker") return cmd_worker(args, out, err);
    if (cmd == "merge") return cmd_merge(args, out, err);
  } catch (const std::exception& e) {
    // Last-resort guard: no command may escape as an uncaught throw
    // (a stray exception would read as a crash, not a usage error).
    err << cmd << ": " << e.what() << "\n";
    return 2;
  }
  print_usage(cmd.empty() || cmd == "help" ? out : err);
  return cmd.empty() || cmd == "help" ? 0 : 2;
}

}  // namespace wss::cli
