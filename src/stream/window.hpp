// Bounded-memory statistics primitives for the streaming engine.
//
// The batch study materializes every interarrival gap and sorts it to
// take quantiles; a stream cannot. These are the standard online
// replacements, each with O(1) or O(k) state and a bit-exact
// checkpoint story:
//
//   StreamingMoments     Welford's single-pass mean/variance. Same
//                        numerically stable recurrence every run, so a
//                        restored checkpoint continues the exact FP
//                        trajectory of an uninterrupted run.
//   ReservoirSample      Vitter's Algorithm R over a deterministic
//                        util::Rng; quantile estimates from a uniform
//                        k-sample of the stream. The RNG state rides
//                        along in the checkpoint, so the sample a
//                        resumed run keeps is the sample the
//                        uninterrupted run would have kept.
//   SlidingWindowCounter Time-bucketed ring covering the last W of
//                        stream time ("how many alerts in the last
//                        hour"), advanced by the consumer's watermark.
#pragma once

#include <cstdint>
#include <vector>

#include "stream/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace wss::stream {

/// Welford online mean/variance plus min/max. O(1) state.
class StreamingMoments {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator), 0 when count < 2 -- matching
  /// stats::variance on the materialized sample.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  void save(CheckpointWriter& w) const;
  void load(CheckpointReader& r);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Algorithm R reservoir sample of fixed capacity k. While the stream
/// is shorter than k the sample is exact (quantiles match the sorted
/// sample bit-for-bit); beyond that each element survives with
/// probability k/n.
class ReservoirSample {
 public:
  ReservoirSample(std::size_t capacity, std::uint64_t seed);

  void add(double x);

  std::uint64_t seen() const { return seen_; }
  const std::vector<double>& samples() const { return samples_; }

  /// Linear-interpolated quantile of the current sample, q in [0, 1];
  /// 0 when empty. Sorts a copy (the sample is small).
  double quantile(double q) const;

  void save(CheckpointWriter& w) const;
  void load(CheckpointReader& r);

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<double> samples_;
  util::Rng rng_;
};

/// Weighted event counts over the trailing `window_us` of *stream*
/// time, kept in `buckets` fixed time buckets. Memory is O(buckets)
/// regardless of stream length; granularity is window/buckets. Times
/// must be presented nondecreasing (the streaming engine's watermark
/// guarantees it); total(watermark) counts events in
/// (watermark - window, watermark].
class SlidingWindowCounter {
 public:
  SlidingWindowCounter(util::TimeUs window_us, std::size_t buckets);

  void add(util::TimeUs t, double weight);

  /// Weighted total inside the window ending at `watermark`.
  double total(util::TimeUs watermark) const;

  util::TimeUs window() const { return window_us_; }

  void save(CheckpointWriter& w) const;
  void load(CheckpointReader& r);

 private:
  util::TimeUs window_us_;
  util::TimeUs span_us_;                 ///< per-bucket time span
  std::vector<std::int64_t> bucket_id_;  ///< absolute bucket index, -1 empty
  std::vector<double> bucket_sum_;
};

}  // namespace wss::stream
