#include "stream/predict_stage.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace wss::stream {

namespace {

/// Incident-detection quiet gap (matches the batch predictors and the
/// episode miner).
constexpr util::TimeUs kIncidentGapUs = 30 * util::kUsPerSec;

/// seen_failures_ horizon: a failure id older than this of stream time
/// can be forgotten (ids are not reused across days in any corpus).
constexpr util::TimeUs kFailureHorizonUs = 24 * util::kUsPerHour;

/// Pending predictions are expired every this many observed alerts
/// (checkpointed via observed_, so interrupted and uninterrupted runs
/// expire at identical points).
constexpr std::uint64_t kExpiryStride = 64;

/// Hard bound on the pending set; the oldest entries are force-expired
/// (unhit ones as false alarms) beyond it.
constexpr std::size_t kMaxPending = 16384;

/// Cached handles for the prediction metrics (registration is cold).
struct PredictObs {
  obs::Counter& issued;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& false_alarms;
  obs::Counter& incidents;
  obs::Histogram& lead_time;
  static PredictObs& get() {
    static PredictObs s{
        obs::registry().counter("wss_predict_issued_total"),
        obs::registry().counter("wss_predict_hits_total"),
        obs::registry().counter("wss_predict_misses_total"),
        obs::registry().counter("wss_predict_false_alarms_total"),
        obs::registry().counter("wss_predict_incidents_total"),
        obs::registry().histogram("wss_predict_lead_time_seconds",
                                  obs::lead_time_bounds_seconds()),
    };
    return s;
  }
};

}  // namespace

PredictStage::PredictStage(const PredictOptions& opts) : opts_(opts) {
  if (opts_.train_alerts == 0) {
    throw std::invalid_argument("predict stage: train_alerts must be >= 1");
  }
  if (opts_.horizon_us <= 0) {
    throw std::invalid_argument("predict stage: horizon must be positive");
  }
  auto rate = std::make_unique<predict::RateBurstPredictor>();
  predict::PrecursorOptions popts;
  popts.window_us = opts_.horizon_us;
  auto prec = std::make_unique<predict::PrecursorPredictor>(popts);
  auto peri = std::make_unique<predict::PeriodicPredictor>();
  mine::EpisodeOptions eopts;
  eopts.window_us = opts_.horizon_us;
  eopts.max_candidates = opts_.max_candidates;
  auto epi = std::make_unique<predict::EpisodeRulePredictor>(eopts);
  rate_burst_ = rate.get();
  precursor_ = prec.get();
  periodic_ = peri.get();
  episode_ = epi.get();
  std::vector<std::unique_ptr<predict::Predictor>> members;
  members.push_back(std::move(rate));
  members.push_back(std::move(prec));
  members.push_back(std::move(peri));
  members.push_back(std::move(epi));
  ensemble_ = std::make_unique<predict::EnsemblePredictor>(std::move(members));
}

bool PredictStage::is_incident(const filter::Alert& a, bool ground_truth) {
  if (ground_truth) {
    // Simulated streams: an incident is the first alert of each
    // distinct failure (the predict::ground_truth_incidents rule);
    // chatter (id 0) is never an incident.
    if (a.failure_id == 0) return false;
    return seen_failures_.emplace(a.failure_id, a.time).second;
  }
  // Parsed real logs: quiet-gap heuristic per category.
  const auto it = gap_last_.find(a.category);
  const bool fresh = it == gap_last_.end() ||
                     a.time - it->second >= kIncidentGapUs;
  gap_last_[a.category] = a.time;
  return fresh;
}

void PredictStage::score_incident(const filter::Alert& a) {
  ++incidents_;
  bool any = false;
  util::TimeUs earliest = 0;
  for (PendingPrediction& pp : pending_) {
    if (pp.p.category != a.category) continue;
    if (pp.p.issued_at >= a.time) continue;  // zero lead is no warning
    if (a.time < pp.p.window_begin || a.time > pp.p.window_end) continue;
    pp.hit = true;
    if (!any || pp.p.issued_at < earliest) earliest = pp.p.issued_at;
    any = true;
  }
  if (any) {
    ++hits_;
    PredictObs::get().lead_time.observe(
        static_cast<double>(a.time - earliest) / 1e6);
  } else {
    ++misses_;
  }
}

void PredictStage::expire(util::TimeUs before) {
  auto keep = pending_.begin();
  for (PendingPrediction& pp : pending_) {
    if (pp.p.window_end < before) {
      if (!pp.hit) ++false_alarms_;
    } else {
      *keep++ = pp;
    }
  }
  pending_.erase(keep, pending_.end());
  if (pending_.size() > kMaxPending) {
    const std::size_t excess = pending_.size() - kMaxPending;
    for (std::size_t i = 0; i < excess; ++i) {
      if (!pending_[i].hit) ++false_alarms_;
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(excess));
  }
  // Shed failure ids the stream has moved past.
  while (!seen_failures_.empty()) {
    const auto oldest = std::min_element(
        seen_failures_.begin(), seen_failures_.end(),
        [](const auto& x, const auto& y) { return x.second < y.second; });
    if (watermark_ - oldest->second < kFailureHorizonUs) break;
    seen_failures_.erase(oldest);
  }
}

void PredictStage::fit() {
  precursor_->fit(training_);
  periodic_->fit(training_);
  // fit_routing streams the training vector through every member once
  // (and resets their streaming state after) -- that pass is also the
  // episode miner's training pass, so no separate episode fit here.
  ensemble_->fit_routing(training_, opts_.min_f1);
  fitted_ = true;
  training_.clear();
  training_.shrink_to_fit();
}

void PredictStage::observe(const filter::Alert& a, bool ground_truth) {
  ++observed_;
  if (a.time > watermark_) watermark_ = a.time;

  // Score first: a prediction issued *by* this alert cannot claim it.
  if (is_incident(a, ground_truth)) score_incident(a);

  if (!fitted_) {
    training_.push_back(a);
    if (training_.size() >= opts_.train_alerts) fit();
  } else {
    ensemble_->observe(a);
    for (const predict::Prediction& p : ensemble_->drain()) {
      ++issued_;
      pending_.push_back(PendingPrediction{p, false});
      if (sink_) sink_(p);
    }
  }

  if (observed_ % kExpiryStride == 0) expire(watermark_);
}

void PredictStage::finish() {
  // +1: a window ending exactly at the watermark has had its last
  // chance (the alert at the watermark was already scored). Windows
  // still open stay undecided -- neither hit nor false alarm.
  expire(watermark_ + 1);
}

PredictStats PredictStage::stats() const {
  PredictStats s;
  s.fitted = fitted_;
  s.issued = issued_;
  s.hits = hits_;
  s.misses = misses_;
  s.false_alarms = false_alarms_;
  s.incidents = incidents_;
  s.rules = episode_->miner().rules().size();
  s.candidates = episode_->miner().candidate_count();
  s.routed = ensemble_->routing().size();
  return s;
}

void PredictStage::publish_metrics() {
  PredictObs& o = PredictObs::get();
  o.issued.inc(issued_ - published_issued_);
  o.hits.inc(hits_ - published_hits_);
  o.misses.inc(misses_ - published_misses_);
  o.false_alarms.inc(false_alarms_ - published_false_alarms_);
  o.incidents.inc(incidents_ - published_incidents_);
  published_issued_ = issued_;
  published_hits_ = hits_;
  published_misses_ = misses_;
  published_false_alarms_ = false_alarms_;
  published_incidents_ = incidents_;
}

void PredictStage::save(CheckpointWriter& w) const {
  w.boolean(fitted_);
  w.u64(observed_);
  w.i64(watermark_);

  w.u64(static_cast<std::uint64_t>(training_.size()));
  for (const filter::Alert& a : training_) {
    w.i64(a.time);
    w.u32(a.source);
    w.u32(a.category);
    w.u8(static_cast<std::uint8_t>(a.type));
    w.u64(a.failure_id);
    w.f64(a.weight);
  }

  rate_burst_->save(w);
  precursor_->save(w);
  periodic_->save(w);
  episode_->save(w);
  ensemble_->save_routing(w);

  w.u64(static_cast<std::uint64_t>(seen_failures_.size()));
  for (const auto& [id, t] : seen_failures_) {
    w.u64(id);
    w.i64(t);
  }
  w.u64(static_cast<std::uint64_t>(gap_last_.size()));
  for (const auto& [cat, t] : gap_last_) {
    w.u32(cat);
    w.i64(t);
  }

  w.u64(static_cast<std::uint64_t>(pending_.size()));
  for (const PendingPrediction& pp : pending_) {
    w.i64(pp.p.issued_at);
    w.u32(pp.p.category);
    w.i64(pp.p.window_begin);
    w.i64(pp.p.window_end);
    w.u8(pp.hit ? 1 : 0);
  }

  w.u64(issued_);
  w.u64(hits_);
  w.u64(misses_);
  w.u64(false_alarms_);
  w.u64(incidents_);
}

void PredictStage::load(CheckpointReader& r) {
  fitted_ = r.boolean();
  observed_ = r.u64();
  watermark_ = r.i64();

  training_.clear();
  const std::uint64_t nt = r.u64();
  if (nt > opts_.train_alerts) {
    throw std::runtime_error("checkpoint: implausible training buffer size");
  }
  for (std::uint64_t i = 0; i < nt; ++i) {
    filter::Alert a;
    a.time = r.i64();
    a.source = r.u32();
    a.category = static_cast<std::uint16_t>(r.u32());
    a.type = static_cast<filter::AlertType>(r.u8());
    a.failure_id = r.u64();
    a.weight = r.f64();
    training_.push_back(a);
  }

  rate_burst_->load(r);
  precursor_->load(r);
  periodic_->load(r);
  episode_->load(r);
  ensemble_->load_routing(r);

  seen_failures_.clear();
  const std::uint64_t nf = r.u64();
  if (nf > (1u << 24)) {
    throw std::runtime_error("checkpoint: implausible failure map size");
  }
  for (std::uint64_t i = 0; i < nf; ++i) {
    const std::uint64_t id = r.u64();
    seen_failures_[id] = r.i64();
  }
  gap_last_.clear();
  const std::uint64_t ng = r.u64();
  if (ng > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible gap map size");
  }
  for (std::uint64_t i = 0; i < ng; ++i) {
    const auto cat = static_cast<std::uint16_t>(r.u32());
    gap_last_[cat] = r.i64();
  }

  pending_.clear();
  const std::uint64_t np = r.u64();
  if (np > kMaxPending) {
    throw std::runtime_error("checkpoint: implausible pending set size");
  }
  for (std::uint64_t i = 0; i < np; ++i) {
    PendingPrediction pp;
    pp.p.issued_at = r.i64();
    pp.p.category = static_cast<std::uint16_t>(r.u32());
    pp.p.window_begin = r.i64();
    pp.p.window_end = r.i64();
    pp.hit = r.u8() != 0;
    pending_.push_back(pp);
  }

  issued_ = r.u64();
  hits_ = r.u64();
  misses_ = r.u64();
  false_alarms_ = r.u64();
  incidents_ = r.u64();

  // The restored registry (saved after a publish) already holds every
  // published delta; re-base so nothing is double-counted.
  published_issued_ = issued_;
  published_hits_ = hits_;
  published_misses_ = misses_;
  published_false_alarms_ = false_alarms_;
  published_incidents_ = incidents_;
}

}  // namespace wss::stream
