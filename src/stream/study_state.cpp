#include "stream/study_state.hpp"

#include <algorithm>
#include <stdexcept>

#include "compress/codec.hpp"

namespace wss::stream {

namespace {

/// A fresh chunk partial with the same zero-state the batch
/// core::detail::make_partial produces.
core::PipelineResult fresh_partial(parse::SystemId system,
                                   std::size_t num_categories) {
  core::PipelineResult r;
  r.system = system;
  r.weighted_alert_counts.assign(num_categories, 0.0);
  r.physical_alert_counts.assign(num_categories, 0);
  return r;
}

}  // namespace

std::vector<double> StreamSnapshot::category_rates_per_day() const {
  std::vector<double> rates(weighted_alert_counts.size(), 0.0);
  const double elapsed_days =
      static_cast<double>(watermark - first_time) /
      static_cast<double>(util::kUsPerDay);
  if (elapsed_days <= 0.0) return rates;
  for (std::size_t c = 0; c < rates.size(); ++c) {
    rates[c] = weighted_alert_counts[c] / elapsed_days;
  }
  return rates;
}

StreamStudyState::StreamStudyState(parse::SystemId system,
                                   const StreamStudyOptions& opts)
    : system_(system),
      opts_(opts),
      num_categories_(tag::categories_of(system).size()),
      total_(fresh_partial(system, num_categories_)),
      partial_(fresh_partial(system, num_categories_)),
      filtered_counts_(num_categories_, 0),
      gap_reservoir_(opts.reservoir_k, opts.reservoir_seed),
      window_messages_(opts.window_us, opts.window_buckets),
      window_raw_alerts_(opts.window_us, opts.window_buckets),
      window_admitted_(opts.window_us, opts.window_buckets) {
  if (opts.chunk_events == 0) {
    throw std::invalid_argument("StreamStudyOptions: chunk_events must be > 0");
  }
}

void StreamStudyState::on_event(const sim::SimEvent& e,
                                std::string_view line) {
  if (finished_) {
    throw std::logic_error("StreamStudyState: on_event after finish()");
  }
  if (!any_event_) {
    first_time_ = e.time;
    any_event_ = true;
  }
  watermark_ = std::max(watermark_, e.time);
  ++events_;
  window_messages_.add(e.time, e.weight);

  if (opts_.capture_compression_sample &&
      sampled_lines_ < kCompressionSampleLines) {
    compression_sample_.append(line);
    compression_sample_.push_back('\n');
    ++sampled_lines_;
  }

  ++events_in_partial_;
  if (events_in_partial_ >= opts_.chunk_events) merge_open_chunk();
}

void StreamStudyState::on_filter_verdict(const filter::Alert& a,
                                         bool admitted) {
  ++alerts_offered_;
  window_raw_alerts_.add(a.time, a.weight);
  if (!admitted) return;

  ++alerts_admitted_;
  if (a.category >= filtered_counts_.size()) {
    filtered_counts_.resize(static_cast<std::size_t>(a.category) + 1, 0);
  }
  ++filtered_counts_[a.category];
  ++filtered_by_type_[static_cast<std::size_t>(a.type)];
  window_admitted_.add(a.time, 1.0);

  if (any_admitted_) {
    const double gap_s = static_cast<double>(a.time - last_admitted_time_) /
                         static_cast<double>(util::kUsPerSec);
    gap_moments_.add(gap_s);
    gap_reservoir_.add(gap_s);
  }
  last_admitted_time_ = a.time;
  any_admitted_ = true;
}

void StreamStudyState::merge_open_chunk() {
  // The per-chunk tagged-alert vector is the one batch output no table
  // consumes; dropping it here (instead of letting it accumulate) is
  // the O(log) -> O(chunk) memory step. Everything else merges exactly
  // as core::run_pipeline does, in chunk order.
  partial_.tagged_alerts.clear();
  core::detail::merge_partial(total_, std::move(partial_));
  partial_ = fresh_partial(system_, num_categories_);
  events_in_partial_ = 0;
  // Same chunk-merge accounting as the batch run/merge loops; NOT in
  // merge_partial itself, because snapshot() merges a copy.
  core::detail::PipelineCounters::get().chunks.inc();
}

void StreamStudyState::finish() {
  if (finished_) return;
  if (events_in_partial_ > 0) merge_open_chunk();
  finished_ = true;
}

StreamSnapshot StreamStudyState::snapshot() const {
  // Fold the open chunk into a copy of the running total -- the same
  // partial-merge the batch pipeline would perform if the log ended
  // here.
  core::PipelineResult acc = total_;
  if (events_in_partial_ > 0) {
    core::PipelineResult part = partial_;
    part.tagged_alerts.clear();
    core::detail::merge_partial(acc, std::move(part));
  }
  core::detail::finalize_result(acc);

  StreamSnapshot s;
  s.system = system_;
  s.finished = finished_;
  s.events = events_;
  s.first_time = first_time_;
  s.watermark = watermark_;

  s.physical_messages = acc.physical_messages;
  s.weighted_messages = acc.weighted_messages;
  s.physical_bytes = acc.physical_bytes;
  s.weighted_bytes = acc.weighted_bytes;
  s.corrupted_source_lines = acc.corrupted_source_lines;
  s.invalid_timestamp_lines = acc.invalid_timestamp_lines;
  s.weighted_alert_counts = acc.weighted_alert_counts;
  s.physical_alert_counts = acc.physical_alert_counts;
  s.categories_observed = acc.categories_observed;
  s.tagging = acc.tagging;
  s.has_ground_truth = has_ground_truth_;

  // Table 2 derived fields: the exact expressions of
  // core::table2_row, evaluated on bit-identical inputs.
  const auto& spec = sim::system_spec(system_);
  s.days = spec.days;
  s.measured_gb = acc.weighted_bytes / 1e9;
  s.rate_bytes_per_sec =
      acc.weighted_bytes / (static_cast<double>(spec.days) * 86400.0);
  s.messages = acc.weighted_messages;
  for (const double w : acc.weighted_alert_counts) s.alerts += w;

  if (opts_.capture_compression_sample && !compression_sample_.empty()) {
    if (!compression_cache_ ||
        compression_cache_->first != compression_sample_.size()) {
      compression_cache_ = {compression_sample_.size(),
                            compress::compression_fraction(
                                compression_sample_)};
    }
    s.compressed_fraction = compression_cache_->second;
  }

  s.alerts_offered = alerts_offered_;
  s.alerts_admitted = alerts_admitted_;
  s.filtered_counts = filtered_counts_;
  for (int i = 0; i < 3; ++i) s.filtered_by_type[i] = filtered_by_type_[i];

  s.gap_count = gap_moments_.count();
  s.gap_mean_s = gap_moments_.mean();
  s.gap_stddev_s = gap_moments_.stddev();
  s.gap_min_s = gap_moments_.min();
  s.gap_max_s = gap_moments_.max();
  s.gap_p50_s = gap_reservoir_.quantile(0.50);
  s.gap_p95_s = gap_reservoir_.quantile(0.95);
  s.gap_p99_s = gap_reservoir_.quantile(0.99);

  s.window_seconds = static_cast<double>(window_messages_.window()) /
                     static_cast<double>(util::kUsPerSec);
  s.messages_in_window = window_messages_.total(watermark_);
  s.raw_alerts_in_window = window_raw_alerts_.total(watermark_);
  s.admitted_in_window = window_admitted_.total(watermark_);
  return s;
}

void StreamStudyState::save_result(CheckpointWriter& w,
                                   const core::PipelineResult& r) {
  // tagged_alerts is intentionally not serialized: it is cleared at
  // every chunk merge and no streaming output reads it.
  w.u8(static_cast<std::uint8_t>(r.system));
  w.u64(r.physical_messages);
  w.f64(r.weighted_messages);
  w.u64(r.physical_bytes);
  w.f64(r.weighted_bytes);
  w.u64(r.corrupted_source_lines);
  w.u64(r.invalid_timestamp_lines);
  w.u64(r.weighted_alert_counts.size());
  for (const double v : r.weighted_alert_counts) w.f64(v);
  for (const std::uint64_t v : r.physical_alert_counts) w.u64(v);
  w.u64(r.tagging.true_positives);
  w.u64(r.tagging.false_positives);
  w.u64(r.tagging.true_negatives);
  w.u64(r.tagging.false_negatives);
  w.u64(r.messages_by_source.size());
  for (const auto& [source, weight] : r.messages_by_source) {
    w.str(source);
    w.f64(weight);
  }
  w.f64(r.corrupted_source_weight);
}

void StreamStudyState::load_result(CheckpointReader& r,
                                   core::PipelineResult& out) {
  out.system = static_cast<parse::SystemId>(r.u8());
  out.physical_messages = r.u64();
  out.weighted_messages = r.f64();
  out.physical_bytes = r.u64();
  out.weighted_bytes = r.f64();
  out.corrupted_source_lines = r.u64();
  out.invalid_timestamp_lines = r.u64();
  const std::uint64_t n = r.u64();
  if (n > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible category count");
  }
  out.weighted_alert_counts.assign(static_cast<std::size_t>(n), 0.0);
  out.physical_alert_counts.assign(static_cast<std::size_t>(n), 0);
  for (auto& v : out.weighted_alert_counts) v = r.f64();
  for (auto& v : out.physical_alert_counts) v = r.u64();
  out.tagging = {};
  out.tagging.add(true, true, r.u64());
  out.tagging.add(true, false, r.u64());
  out.tagging.add(false, false, r.u64());
  out.tagging.add(false, true, r.u64());
  const std::uint64_t sources = r.u64();
  if (sources > (1u << 24)) {
    throw std::runtime_error("checkpoint: implausible source count");
  }
  out.messages_by_source.clear();
  for (std::uint64_t i = 0; i < sources; ++i) {
    std::string name = r.str();
    out.messages_by_source[std::move(name)] = r.f64();
  }
  out.corrupted_source_weight = r.f64();
  out.tagged_alerts.clear();
}

void StreamStudyState::save(CheckpointWriter& w) const {
  save_result(w, total_);
  save_result(w, partial_);
  w.u64(events_in_partial_);
  w.u64(events_);
  w.i64(first_time_);
  w.i64(watermark_);
  w.boolean(any_event_);
  w.boolean(finished_);
  w.boolean(has_ground_truth_);

  w.u64(filtered_counts_.size());
  for (const std::uint64_t v : filtered_counts_) w.u64(v);
  for (int i = 0; i < 3; ++i) w.u64(filtered_by_type_[i]);
  w.u64(alerts_offered_);
  w.u64(alerts_admitted_);

  gap_moments_.save(w);
  gap_reservoir_.save(w);
  w.i64(last_admitted_time_);
  w.boolean(any_admitted_);

  window_messages_.save(w);
  window_raw_alerts_.save(w);
  window_admitted_.save(w);

  w.str(compression_sample_);
  w.u64(sampled_lines_);
}

void StreamStudyState::load(CheckpointReader& r) {
  load_result(r, total_);
  load_result(r, partial_);
  events_in_partial_ = static_cast<std::size_t>(r.u64());
  events_ = r.u64();
  first_time_ = r.i64();
  watermark_ = r.i64();
  any_event_ = r.boolean();
  finished_ = r.boolean();
  has_ground_truth_ = r.boolean();

  const std::uint64_t n = r.u64();
  if (n > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible filtered count size");
  }
  filtered_counts_.assign(static_cast<std::size_t>(n), 0);
  for (auto& v : filtered_counts_) v = r.u64();
  for (int i = 0; i < 3; ++i) filtered_by_type_[i] = r.u64();
  alerts_offered_ = r.u64();
  alerts_admitted_ = r.u64();

  gap_moments_.load(r);
  gap_reservoir_.load(r);
  last_admitted_time_ = r.i64();
  any_admitted_ = r.boolean();

  window_messages_.load(r);
  window_raw_alerts_.load(r);
  window_admitted_.load(r);

  compression_sample_ = r.str();
  sampled_lines_ = static_cast<std::size_t>(r.u64());
  compression_cache_.reset();
}

}  // namespace wss::stream
