// The online streaming engine: batch semantics, O(window) memory.
//
// StreamPipeline consumes one event at a time and maintains exactly
// three kinds of state:
//
//   * the chunk-mirrored pipeline accumulators (StreamStudyState) --
//     bounded by chunk_events plus the category count;
//   * the online Algorithm 3.1 filter table (OnlineSimultaneousFilter)
//     -- bounded by one entry per category, evicted down to the live
//     T-second horizon at every chunk boundary;
//   * sliding windows / reservoir for live rates and quantiles --
//     bounded by their configured sizes.
//
// Nothing grows with the length of the log, yet a finished stream
// reports bit-identical Tables 2-4 ingredients and a bit-identical
// filtered alert sequence versus the batch pipeline over the same
// rendered events (tests/test_integration_stream.cpp pins this for
// all five systems).
//
// Two ingestion modes:
//   ingest(event, line)  -- simulated streams: ground truth rides
//     along, the filter consumes the ground-truth alert stream (the
//     batch Study::filtered_alerts feed), and tagging is scored.
//   ingest_line(line)    -- real/parsed logs: analyze-style. The line
//     is parsed with year-rollover inference, tagged, and the tagged
//     alert stream (weight 1, interned source ids) feeds the filter --
//     the same semantics as `wss analyze`, made incremental.
//
// Admitted alerts are emitted through the AlertSink the moment the
// filter rules them non-redundant (decisions are final; see
// online_filter.hpp). save()/restore() checkpoint the entire engine
// bit-exactly: checkpoint -> restore -> finish equals uninterrupted.
#pragma once

#include <functional>
#include <map>
#include <string>

#include <memory>

#include "logio/reader.hpp"
#include "stream/online_filter.hpp"
#include "stream/predict_stage.hpp"
#include "stream/study_state.hpp"
#include "tag/engine.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"

namespace wss::stream {

struct StreamPipelineOptions {
  StreamStudyOptions study;

  /// Sorted-stream contract for the filter. Keep true for simulated
  /// streams (regression = bug); set false for parsed real logs,
  /// where 1 s stamp granularity can tie or regress.
  bool strict_order = true;

  /// Year seed for file-mode timestamp inference; 0 = the system
  /// spec's collection start year.
  int start_year = 0;

  /// Online failure prediction (PredictStage); off by default.
  PredictOptions predict;
};

/// Online counterpart of core::run_pipeline + filtered_alerts.
class StreamPipeline {
 public:
  /// Receives each admitted alert, in stream order, as soon as its
  /// verdict is final.
  using AlertSink = std::function<void(const filter::Alert&)>;

  explicit StreamPipeline(parse::SystemId system,
                          StreamPipelineOptions opts = {});

  void set_alert_sink(AlertSink sink) { sink_ = std::move(sink); }

  /// Receives each issued prediction as soon as the predict stage
  /// emits it. No-op unless options().predict.enabled.
  void set_prediction_sink(PredictStage::PredictionSink sink);

  /// Simulated-stream mode: one event plus its rendered line, in
  /// stream order (the pair process_chunk would see).
  void ingest(const sim::SimEvent& e, std::string_view line);

  /// File mode: one raw log line, in file order.
  void ingest_line(std::string_view line);

  /// Flushes the open chunk; snapshot() afterwards is the batch
  /// result. Idempotent.
  void finish();

  StreamSnapshot snapshot() const;

  std::uint64_t events() const { return study_.events(); }
  util::TimeUs watermark() const { return study_.watermark(); }
  const OnlineSimultaneousFilter& filter() const { return filter_; }
  const StreamStudyState& study() const { return study_; }
  /// The prediction stage, or nullptr when prediction is off.
  const PredictStage* predict_stage() const { return predict_.get(); }
  const StreamPipelineOptions& options() const { return opts_; }
  int year_rollovers() const { return year_.rollovers(); }

  /// Publishes every pending metric delta (tag tallies, filter
  /// tallies, watermark gauge) to the obs registry. Idempotent; called
  /// by finish() and save(), and by the CLI before writing --metrics.
  void publish_metrics();

  /// Serializes the full engine state, including the obs registry's
  /// counter/gauge tables (checkpoint v2) -- restore-and-finish then
  /// reports the same --metrics counters as an uninterrupted run.
  /// Publishes pending metric deltas first (hence non-const). Throws
  /// std::runtime_error on a write failure.
  void save(std::ostream& os);

  /// Restores a checkpoint written by save() for the same system.
  /// Replaces options, all accumulator state, and the process-wide obs
  /// counters/gauges; the sink is kept.
  void restore(std::istream& is);

 private:
  void offer(const filter::Alert& a);
  std::uint32_t intern(const std::string& name);

  parse::SystemId system_;
  StreamPipelineOptions opts_;
  tag::TagEngine engine_;
  std::vector<const tag::CategoryInfo*> cats_;
  core::detail::ChunkContext ctx_;
  StreamStudyState study_;
  OnlineSimultaneousFilter filter_;
  /// Present iff opts_.predict.enabled (and the build has prediction
  /// compiled in; WSS_PREDICT_OFF makes enabling a runtime error).
  std::unique_ptr<PredictStage> predict_;
  AlertSink sink_;
  /// Kept here as well so restore() (which rebuilds predict_) can
  /// re-attach it -- sinks survive restore like the alert sink does.
  PredictStage::PredictionSink psink_;

  // File-mode state: year inference + source-name interning (the
  // `wss analyze` scheme). The intern map is O(distinct sources) --
  // the same bound cmd_analyze accepts.
  logio::YearTracker year_;
  std::map<std::string, std::uint32_t> source_ids_;

  // Per-engine matching scratch, reused across every ingested line.
  // Purely transient (cleared at the start of each tag call), so it is
  // deliberately NOT part of save()/restore().
  match::MatchScratch scratch_;

  // Delta-flusher for the scratch's tag tallies (flushed at chunk
  // boundaries and publish points; re-based on restore because the
  // restored registry already holds everything published).
  tag::TagMetricsFlusher flusher_;

  // Every 16th ingest is latency-sampled (wall-clock; never
  // checkpointed -- it measures this process, not the stream).
  std::uint64_t latency_tick_ = 0;
};

}  // namespace wss::stream
