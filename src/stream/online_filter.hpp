// Algorithm 3.1 as an online operator with a watermark.
//
// The batch SimultaneousFilter already processes alerts one at a time,
// but it is framed for a materialized, finite stream: apply_filter
// walks a vector and returns the survivors. This class reframes the
// same algorithm for an unbounded stream and makes its two finality
// properties explicit:
//
//  1. *Decisions are final immediately.* Algorithm 3.1 is causal -- the
//     verdict on alert a_i depends only on a_1..a_i -- so an admitted
//     alert can be emitted downstream the moment offer() returns true.
//     Nothing is ever revised or retracted; bit-identical output to
//     the batch filter on the same input needs no lookahead at all.
//
//  2. *State older than the watermark minus T is dead.* Let W be the
//     watermark (the largest timestamp seen). On a time-sorted stream
//     every future alert has time >= W, so a table entry with
//     W - entry.time >= T can never again satisfy the redundancy test
//     "a.time - entry.time < T" -- it is provably unobservable and
//     evict_stale() may drop it. This is the same quiet-gap argument
//     that makes PR 1's sharded filter correct, applied per entry
//     instead of per segment: the filter's live state is bounded by
//     the alerts of the last T seconds (at most one entry per
//     category), never by the length of the log.
//
// Decision logic is kept line-for-line equivalent to
// filter::SimultaneousFilter (epoch-bump clear included);
// tests/test_stream_filter.cpp locks the two together
// decision-for-decision on bursty and simulated streams.
#pragma once

#include <cstdint>
#include <vector>

#include "filter/alert.hpp"
#include "stream/checkpoint.hpp"

namespace wss::stream {

/// Online simultaneous spatio-temporal filter (paper Algorithm 3.1).
class OnlineSimultaneousFilter {
 public:
  /// `strict_order`: throw std::invalid_argument on a timestamp
  /// regression (the contract of the batch apply_filter). Disable for
  /// parsed real-log streams, where second-granularity stamps can tie
  /// or regress; decisions then match SimultaneousFilter::admit, which
  /// tolerates regressions.
  explicit OnlineSimultaneousFilter(util::TimeUs threshold_us,
                                    bool strict_order = true);

  /// Feeds the next alert. Returns true iff admitted; an admitted
  /// alert is final immediately (see file comment) and should be
  /// emitted downstream by the caller.
  bool offer(const filter::Alert& a);

  /// Largest timestamp seen (0 before the first alert).
  util::TimeUs watermark() const { return watermark_; }

  /// Drops table entries that the watermark proves unobservable
  /// (W - entry.time >= T). Semantics-preserving ONLY on sorted
  /// streams; requires strict_order. Called by the engine between
  /// chunks to keep resident state at its O(live categories) floor.
  void evict_stale();

  /// Live entries: current epoch and still inside the T horizon.
  std::size_t live_entries() const;

  std::uint64_t offered() const { return offered_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t suppressed() const { return offered_ - admitted_; }

  /// Table entries dropped by evict_stale() so far.
  std::uint64_t evicted_entries() const { return evicted_entries_; }

  util::TimeUs threshold() const { return threshold_; }

  /// Publishes tally growth since the last publish to the same
  /// wss_filter_* counters the batch filter uses (the decision
  /// sequences are identical, so the totals agree between batch and
  /// stream runs of the same alerts), plus the stream-only eviction
  /// counter and the live-entry gauge. Call at cold points (chunk
  /// boundary, finish, save); idempotent.
  void publish_metrics();

  void save(CheckpointWriter& w) const;
  void load(CheckpointReader& r);

 private:
  struct Entry {
    std::uint32_t epoch = 0;  ///< 0 = never written
    util::TimeUs time = 0;
  };

  util::TimeUs threshold_;
  bool strict_;
  util::TimeUs watermark_ = 0;    ///< max timestamp seen
  util::TimeUs last_offer_ = 0;   ///< previous timestamp (clear(X) test)
  bool any_seen_ = false;
  std::uint32_t epoch_ = 1;
  std::vector<Entry> table_;  ///< indexed by category id
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t evicted_entries_ = 0;
  std::vector<std::uint64_t> offered_by_cat_;   ///< indexed by category id
  std::vector<std::uint64_t> admitted_by_cat_;  ///< indexed by category id

  // Publish baselines (NOT checkpointed: save() publishes pending
  // deltas first, and load() re-bases on the loaded tallies because
  // the restored registry already contains everything published).
  std::uint64_t published_offered_ = 0;
  std::uint64_t published_admitted_ = 0;
  std::uint64_t published_evicted_ = 0;
  std::vector<std::uint64_t> published_offered_by_cat_;
  std::vector<std::uint64_t> published_admitted_by_cat_;
};

}  // namespace wss::stream
