#include "stream/online_filter.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace wss::stream {

OnlineSimultaneousFilter::OnlineSimultaneousFilter(util::TimeUs threshold_us,
                                                   bool strict_order)
    : threshold_(threshold_us), strict_(strict_order) {
  if (threshold_us <= 0) {
    throw std::invalid_argument(
        "OnlineSimultaneousFilter: threshold must be > 0");
  }
}

bool OnlineSimultaneousFilter::offer(const filter::Alert& a) {
  if (strict_ && any_seen_ && a.time < watermark_) {
    throw std::invalid_argument(
        "OnlineSimultaneousFilter: stream not time-sorted");
  }
  // Identical decision sequence to SimultaneousFilter::admit; the
  // clear(X) test uses the *previous* timestamp, which on a sorted
  // stream coincides with the watermark.
  if (any_seen_ && a.time - last_offer_ > threshold_) {
    ++epoch_;  // clear(X): every entry is too stale to matter
  }
  watermark_ = any_seen_ ? std::max(watermark_, a.time) : a.time;
  last_offer_ = a.time;
  any_seen_ = true;
  ++offered_;

  if (a.category >= table_.size()) {
    table_.resize(static_cast<std::size_t>(a.category) + 1);
  }
  if (a.category >= offered_by_cat_.size()) {
    offered_by_cat_.resize(static_cast<std::size_t>(a.category) + 1, 0);
    admitted_by_cat_.resize(static_cast<std::size_t>(a.category) + 1, 0);
  }
  Entry& e = table_[a.category];
  const bool redundant = e.epoch == epoch_ && a.time - e.time < threshold_;
  e.epoch = epoch_;
  e.time = a.time;
  ++offered_by_cat_[a.category];
  if (!redundant) {
    ++admitted_;
    ++admitted_by_cat_[a.category];
  }
  return !redundant;
}

void OnlineSimultaneousFilter::evict_stale() {
  if (!strict_) return;  // only provable on sorted streams
  for (Entry& e : table_) {
    if (e.epoch != 0 &&
        (e.epoch != epoch_ || watermark_ - e.time >= threshold_)) {
      e = Entry{};  // unobservable: future times are >= watermark
      ++evicted_entries_;
    }
  }
}

std::size_t OnlineSimultaneousFilter::live_entries() const {
  std::size_t live = 0;
  for (const Entry& e : table_) {
    if (e.epoch == epoch_ && watermark_ - e.time < threshold_) ++live;
  }
  return live;
}

void OnlineSimultaneousFilter::publish_metrics() {
  auto& reg = obs::registry();
  const std::uint64_t d_offered = offered_ - published_offered_;
  const std::uint64_t d_admitted = admitted_ - published_admitted_;
  reg.counter("wss_filter_offered_total").inc(d_offered);
  reg.counter("wss_filter_admitted_total").inc(d_admitted);
  reg.counter("wss_filter_suppressed_total").inc(d_offered - d_admitted);
  reg.counter("wss_stream_filter_evicted_entries_total")
      .inc(evicted_entries_ - published_evicted_);
  published_offered_ = offered_;
  published_admitted_ = admitted_;
  published_evicted_ = evicted_entries_;
  published_offered_by_cat_.resize(offered_by_cat_.size(), 0);
  published_admitted_by_cat_.resize(admitted_by_cat_.size(), 0);
  for (std::size_t c = 0; c < offered_by_cat_.size(); ++c) {
    if (const auto d = offered_by_cat_[c] - published_offered_by_cat_[c]) {
      obs::labeled_counter("wss_filter_offered_by_category_total", "category",
                           c)
          .inc(d);
    }
    if (const auto d = admitted_by_cat_[c] - published_admitted_by_cat_[c]) {
      obs::labeled_counter("wss_filter_admitted_by_category_total", "category",
                           c)
          .inc(d);
    }
    published_offered_by_cat_[c] = offered_by_cat_[c];
    published_admitted_by_cat_[c] = admitted_by_cat_[c];
  }
  reg.gauge("wss_filter_table_live_entries")
      .set(static_cast<std::int64_t>(live_entries()));
}

void OnlineSimultaneousFilter::save(CheckpointWriter& w) const {
  w.i64(threshold_);
  w.boolean(strict_);
  w.i64(watermark_);
  w.i64(last_offer_);
  w.boolean(any_seen_);
  w.u32(epoch_);
  w.u64(offered_);
  w.u64(admitted_);
  w.u64(evicted_entries_);
  w.u64(offered_by_cat_.size());
  for (const std::uint64_t v : offered_by_cat_) w.u64(v);
  for (const std::uint64_t v : admitted_by_cat_) w.u64(v);
  w.u64(table_.size());
  for (const Entry& e : table_) {
    w.u32(e.epoch);
    w.i64(e.time);
  }
}

void OnlineSimultaneousFilter::load(CheckpointReader& r) {
  threshold_ = r.i64();
  strict_ = r.boolean();
  watermark_ = r.i64();
  last_offer_ = r.i64();
  any_seen_ = r.boolean();
  epoch_ = r.u32();
  offered_ = r.u64();
  admitted_ = r.u64();
  evicted_entries_ = r.u64();
  const std::uint64_t cats = r.u64();
  if (cats > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible category count");
  }
  offered_by_cat_.assign(static_cast<std::size_t>(cats), 0);
  admitted_by_cat_.assign(static_cast<std::size_t>(cats), 0);
  for (auto& v : offered_by_cat_) v = r.u64();
  for (auto& v : admitted_by_cat_) v = r.u64();
  const std::uint64_t n = r.u64();
  if (n > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible filter table size");
  }
  table_.assign(static_cast<std::size_t>(n), Entry{});
  for (Entry& e : table_) {
    e.epoch = r.u32();
    e.time = r.i64();
  }
  // The restored registry (checkpoint v2) already holds everything
  // published before save(); re-base so nothing is double-counted.
  published_offered_ = offered_;
  published_admitted_ = admitted_;
  published_evicted_ = evicted_entries_;
  published_offered_by_cat_ = offered_by_cat_;
  published_admitted_by_cat_ = admitted_by_cat_;
}

}  // namespace wss::stream
