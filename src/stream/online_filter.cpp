#include "stream/online_filter.hpp"

#include <algorithm>
#include <stdexcept>

namespace wss::stream {

OnlineSimultaneousFilter::OnlineSimultaneousFilter(util::TimeUs threshold_us,
                                                   bool strict_order)
    : threshold_(threshold_us), strict_(strict_order) {
  if (threshold_us <= 0) {
    throw std::invalid_argument(
        "OnlineSimultaneousFilter: threshold must be > 0");
  }
}

bool OnlineSimultaneousFilter::offer(const filter::Alert& a) {
  if (strict_ && any_seen_ && a.time < watermark_) {
    throw std::invalid_argument(
        "OnlineSimultaneousFilter: stream not time-sorted");
  }
  // Identical decision sequence to SimultaneousFilter::admit; the
  // clear(X) test uses the *previous* timestamp, which on a sorted
  // stream coincides with the watermark.
  if (any_seen_ && a.time - last_offer_ > threshold_) {
    ++epoch_;  // clear(X): every entry is too stale to matter
  }
  watermark_ = any_seen_ ? std::max(watermark_, a.time) : a.time;
  last_offer_ = a.time;
  any_seen_ = true;
  ++offered_;

  if (a.category >= table_.size()) {
    table_.resize(static_cast<std::size_t>(a.category) + 1);
  }
  Entry& e = table_[a.category];
  const bool redundant = e.epoch == epoch_ && a.time - e.time < threshold_;
  e.epoch = epoch_;
  e.time = a.time;
  if (!redundant) ++admitted_;
  return !redundant;
}

void OnlineSimultaneousFilter::evict_stale() {
  if (!strict_) return;  // only provable on sorted streams
  for (Entry& e : table_) {
    if (e.epoch != 0 &&
        (e.epoch != epoch_ || watermark_ - e.time >= threshold_)) {
      e = Entry{};  // unobservable: future times are >= watermark
    }
  }
}

std::size_t OnlineSimultaneousFilter::live_entries() const {
  std::size_t live = 0;
  for (const Entry& e : table_) {
    if (e.epoch == epoch_ && watermark_ - e.time < threshold_) ++live;
  }
  return live;
}

void OnlineSimultaneousFilter::save(CheckpointWriter& w) const {
  w.i64(threshold_);
  w.boolean(strict_);
  w.i64(watermark_);
  w.i64(last_offer_);
  w.boolean(any_seen_);
  w.u32(epoch_);
  w.u64(offered_);
  w.u64(admitted_);
  w.u64(table_.size());
  for (const Entry& e : table_) {
    w.u32(e.epoch);
    w.i64(e.time);
  }
}

void OnlineSimultaneousFilter::load(CheckpointReader& r) {
  threshold_ = r.i64();
  strict_ = r.boolean();
  watermark_ = r.i64();
  last_offer_ = r.i64();
  any_seen_ = r.boolean();
  epoch_ = r.u32();
  offered_ = r.u64();
  admitted_ = r.u64();
  const std::uint64_t n = r.u64();
  if (n > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible filter table size");
  }
  table_.assign(static_cast<std::size_t>(n), Entry{});
  for (Entry& e : table_) {
    e.epoch = r.u32();
    e.time = r.i64();
  }
}

}  // namespace wss::stream
