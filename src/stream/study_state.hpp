// Incremental study state: Tables 2-4 ingredients, queryable mid-stream.
//
// The batch pipeline's determinism contract is *chunked*: events are
// reduced in fixed chunks of PipelineOptions::chunk_events, and chunk
// partials are merged in index order (core/pipeline.hpp). This class
// keeps that exact accumulation structure alive online -- a current
// chunk partial plus a merged total -- so the floating-point sums a
// finished stream reports are bit-identical to core::run_pipeline over
// the same rendered events, not merely close. Only the per-chunk
// tagged-alert vector is dropped at each merge (no table consumes it;
// the filtered stream is emitted, not retained), which is what turns
// the batch O(log) footprint into O(chunk + categories + window).
//
// On top of the pipeline accumulators it tracks what the tables need
// from the *filtered* stream (per-category and per-type survivor
// counts), online interarrival statistics of survivors (streaming
// moments + reservoir quantiles -- the Figure 5/6 ingredients), and
// sliding-window rates for live dashboards. Everything checkpoints
// through save()/load() bit-exactly.
#pragma once

#include <optional>
#include <string>

#include "core/pipeline.hpp"
#include "sim/spec.hpp"
#include "stream/checkpoint.hpp"
#include "stream/window.hpp"

namespace wss::stream {

/// Streaming knobs. chunk_events MUST equal the batch
/// PipelineOptions::chunk_events for bit-identical table rows.
struct StreamStudyOptions {
  util::TimeUs threshold_us = 5 * util::kUsPerSec;  ///< filter T
  std::size_t chunk_events = 8192;

  /// Sliding-window extent and bucket count for live rates.
  util::TimeUs window_us = util::kUsPerHour;
  std::size_t window_buckets = 64;

  /// Reservoir size for interarrival quantiles.
  std::size_t reservoir_k = 512;
  std::uint64_t reservoir_seed = 0x5eed;

  /// Capture the first core-sample lines for the Table 2 compression
  /// fraction (bounded: the batch measurement is itself a prefix
  /// sample). Off saves the sample buffer.
  bool capture_compression_sample = true;

  /// Fig 2(b)-style per-source tallies (O(sources) memory). Off by
  /// default in streams; Tables 2-4 do not need them.
  bool collect_source_tallies = false;
};

/// A point-in-time view of the stream. `final` snapshots (after
/// finish()) reproduce the batch table rows bit-for-bit.
struct StreamSnapshot {
  parse::SystemId system = parse::SystemId::kBlueGeneL;
  bool finished = false;

  // ---- Stream position ----
  std::uint64_t events = 0;        ///< physical messages ingested
  util::TimeUs first_time = 0;     ///< first event timestamp
  util::TimeUs watermark = 0;      ///< latest event timestamp

  // ---- Pipeline accumulators (batch PipelineResult mirror) ----
  std::uint64_t physical_messages = 0;
  double weighted_messages = 0.0;
  std::uint64_t physical_bytes = 0;
  double weighted_bytes = 0.0;
  std::uint64_t corrupted_source_lines = 0;
  std::uint64_t invalid_timestamp_lines = 0;
  std::vector<double> weighted_alert_counts;          ///< Table 4 "Raw"
  std::vector<std::uint64_t> physical_alert_counts;
  int categories_observed = 0;                        ///< Table 2 "Cat."
  tag::TaggerEvaluation tagging;
  bool has_ground_truth = true;    ///< false for parsed real-log streams

  // ---- Table 2 derived fields (same expressions as table2_row) ----
  int days = 0;
  double measured_gb = 0.0;
  double rate_bytes_per_sec = 0.0;
  double messages = 0.0;           ///< weighted total
  double alerts = 0.0;             ///< weighted alert total
  /// Compression fraction over the captured prefix sample; unset when
  /// capture is off or no line has been seen.
  std::optional<double> compressed_fraction;

  // ---- Filtered stream (Algorithm 3.1 survivors) ----
  std::uint64_t alerts_offered = 0;
  std::uint64_t alerts_admitted = 0;
  std::vector<std::uint64_t> filtered_counts;         ///< Table 4 "Filtered"
  std::uint64_t filtered_by_type[3] = {0, 0, 0};      ///< Table 3 "Filtered"

  // ---- Online interarrival stats of admitted alerts (seconds) ----
  std::uint64_t gap_count = 0;
  double gap_mean_s = 0.0;
  double gap_stddev_s = 0.0;
  double gap_min_s = 0.0;
  double gap_max_s = 0.0;
  double gap_p50_s = 0.0;
  double gap_p95_s = 0.0;
  double gap_p99_s = 0.0;

  // ---- Sliding-window rates (trailing window of stream time) ----
  double window_seconds = 0.0;
  double messages_in_window = 0.0;   ///< weighted
  double raw_alerts_in_window = 0.0; ///< weighted
  double admitted_in_window = 0.0;   ///< physical survivors

  // ---- Ingestion accounting (filled by the driver) ----
  std::uint64_t dropped = 0;

  // ---- Prediction stage (filled by StreamPipeline when --predict) ----
  bool predict_enabled = false;
  bool predict_fitted = false;
  std::uint64_t predict_issued = 0;
  std::uint64_t predict_hits = 0;
  std::uint64_t predict_misses = 0;
  std::uint64_t predict_false_alarms = 0;
  std::uint64_t predict_incidents = 0;
  std::size_t predict_rules = 0;       ///< episode rules above floors
  std::size_t predict_candidates = 0;  ///< miner candidate-table size
  std::size_t predict_routed = 0;      ///< ensemble routed categories

  /// Cumulative per-category weighted rate (alerts/day of stream time);
  /// empty before the first event.
  std::vector<double> category_rates_per_day() const;
};

/// The incremental accumulator behind StreamSnapshot.
class StreamStudyState {
 public:
  StreamStudyState(parse::SystemId system, const StreamStudyOptions& opts);

  /// Folds one rendered event (already reduced into the pipeline
  /// partial by the caller via core::detail::process_line) -- this
  /// entry point only advances chunk bookkeeping and window state.
  /// `partial()` exposes the live chunk partial to reduce into.
  core::PipelineResult& partial() { return partial_; }

  /// Called after each process_line into partial(): advances event
  /// counters, windows, and (at chunk boundaries) merges the partial.
  void on_event(const sim::SimEvent& e, std::string_view line);

  /// Records an Algorithm 3.1 verdict on a (ground-truth or tagged)
  /// alert so filtered tallies, interarrival stats, and windows track
  /// the survivor stream.
  void on_filter_verdict(const filter::Alert& a, bool admitted);

  /// Flushes the open chunk. Call once at end-of-stream; snapshot()
  /// afterwards reproduces the batch table rows bit-for-bit.
  void finish();

  StreamSnapshot snapshot() const;

  std::uint64_t events() const { return events_; }
  util::TimeUs watermark() const { return watermark_; }
  const StreamStudyOptions& options() const { return opts_; }

  void mark_no_ground_truth() { has_ground_truth_ = false; }
  bool has_ground_truth() const { return has_ground_truth_; }

  void save(CheckpointWriter& w) const;
  void load(CheckpointReader& r);

 private:
  void merge_open_chunk();
  static void save_result(CheckpointWriter& w, const core::PipelineResult& r);
  static void load_result(CheckpointReader& r, core::PipelineResult& out);

  parse::SystemId system_;
  StreamStudyOptions opts_;
  std::size_t num_categories_ = 0;

  // Chunk-mirrored pipeline accumulation (see file comment).
  core::PipelineResult total_;
  core::PipelineResult partial_;
  std::size_t events_in_partial_ = 0;

  std::uint64_t events_ = 0;
  util::TimeUs first_time_ = 0;
  util::TimeUs watermark_ = 0;
  bool any_event_ = false;
  bool finished_ = false;
  bool has_ground_truth_ = true;

  // Filtered-stream tallies.
  std::vector<std::uint64_t> filtered_counts_;
  std::uint64_t filtered_by_type_[3] = {0, 0, 0};
  std::uint64_t alerts_offered_ = 0;
  std::uint64_t alerts_admitted_ = 0;

  // Interarrival state over admitted alerts.
  StreamingMoments gap_moments_;
  ReservoirSample gap_reservoir_;
  util::TimeUs last_admitted_time_ = 0;
  bool any_admitted_ = false;

  // Sliding windows (stream time).
  SlidingWindowCounter window_messages_;
  SlidingWindowCounter window_raw_alerts_;
  SlidingWindowCounter window_admitted_;

  // Table 2 compression sample: first kCompressionSampleLines lines.
  std::string compression_sample_;
  std::size_t sampled_lines_ = 0;
  // Cache: fraction computed at a given sample size.
  mutable std::optional<std::pair<std::size_t, double>> compression_cache_;
};

/// Lines sampled for the Table 2 compression fraction -- the same
/// prefix length the batch measurement uses (core/experiments.cpp).
inline constexpr std::size_t kCompressionSampleLines = 20000;

}  // namespace wss::stream
