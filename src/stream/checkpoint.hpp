// Binary serialization for streaming checkpoints.
//
// A checkpoint must round-trip *bit-exactly*: the restored engine has
// to produce the same FP sums, the same reservoir decisions, and the
// same filter verdicts as an uninterrupted run, or the
// checkpoint -> restore -> finish equivalence guarantee (and the test
// that enforces it) breaks. Doubles are therefore written as their raw
// IEEE-754 bit patterns, never through decimal text, and every integer
// is fixed-width little-endian so a checkpoint is portable across
// builds of the same version.
//
// The format is deliberately dumb: a magic/version header, then a flat
// sequence of typed fields in a fixed order defined by the save()/
// load() pairs of each streaming class. There is no schema evolution;
// a version bump invalidates old checkpoints (they cover hours of
// stream, not years of archive).
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wss::stream {

/// Format tag written at the head of every checkpoint file.
/// v2: adds the obs registry counter/gauge tables and the filter's
/// per-category tallies + eviction count (restore-and-finish reports
/// the same --metrics snapshot as an uninterrupted run).
/// v3: adds the prediction stage -- PredictOptions always, and when
/// prediction is enabled the full miner/predictor/pending state.
inline constexpr std::uint32_t kCheckpointMagic = 0x57535343u;  // "WSSC"
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// Little-endian fixed-width field writer.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::ostream& os) : os_(os) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);

  /// Writes the standard header.
  void header();

  bool ok() const { return static_cast<bool>(os_); }

 private:
  void raw(const void* p, std::size_t n);
  std::ostream& os_;
};

/// Reader mirroring CheckpointWriter. Every accessor throws
/// std::runtime_error on truncation; header() additionally validates
/// magic and version.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream& is) : is_(is) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str();

  /// Reads and validates the standard header.
  void header();

 private:
  void raw(void* p, std::size_t n);
  std::istream& is_;
};

// ---- Shared metric-table serialization (checkpoint v2 payloads) ----
//
// The obs registry's counter/gauge tables travel in two places: stream
// checkpoints (so a restored run reports the same --metrics snapshot)
// and distributed partial-result files (so `wss merge` can fold each
// worker's deltas back into one registry). Both use this one format:
// u64 count, then (str name, u64/i64 value) pairs in sorted-name order.

void write_counter_table(
    CheckpointWriter& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters);
void write_gauge_table(
    CheckpointWriter& w,
    const std::vector<std::pair<std::string, std::int64_t>>& gauges);

/// Readers validate the count against a sanity bound (1M entries) and
/// throw std::runtime_error on implausible tables or truncation.
std::vector<std::pair<std::string, std::uint64_t>> read_counter_table(
    CheckpointReader& r);
std::vector<std::pair<std::string, std::int64_t>> read_gauge_table(
    CheckpointReader& r);

}  // namespace wss::stream
