#include "stream/window.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wss::stream {

// ---------------------------------------------------- StreamingMoments

void StreamingMoments::add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

void StreamingMoments::save(CheckpointWriter& w) const {
  w.u64(count_);
  w.f64(mean_);
  w.f64(m2_);
  w.f64(min_);
  w.f64(max_);
}

void StreamingMoments::load(CheckpointReader& r) {
  count_ = r.u64();
  mean_ = r.f64();
  m2_ = r.f64();
  min_ = r.f64();
  max_ = r.f64();
}

// ----------------------------------------------------- ReservoirSample

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ReservoirSample: capacity must be >= 1");
  }
  samples_.reserve(capacity_);
}

void ReservoirSample::add(double x) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Algorithm R: element n survives with probability k/n.
  const std::uint64_t j = rng_.uniform_u64(seen_);
  if (j < capacity_) samples_[static_cast<std::size_t>(j)] = x;
}

double ReservoirSample::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void ReservoirSample::save(CheckpointWriter& w) const {
  w.u64(capacity_);
  w.u64(seen_);
  w.u64(samples_.size());
  for (const double x : samples_) w.f64(x);
  const util::Rng::State st = rng_.state();
  for (const std::uint64_t word : st.s) w.u64(word);
  w.f64(st.cached_normal);
  w.boolean(st.has_cached_normal);
}

void ReservoirSample::load(CheckpointReader& r) {
  capacity_ = static_cast<std::size_t>(r.u64());
  seen_ = r.u64();
  const std::uint64_t n = r.u64();
  if (n > capacity_) throw std::runtime_error("checkpoint: oversized reservoir");
  samples_.assign(static_cast<std::size_t>(n), 0.0);
  for (auto& x : samples_) x = r.f64();
  util::Rng::State st;
  for (auto& word : st.s) word = r.u64();
  st.cached_normal = r.f64();
  st.has_cached_normal = r.boolean();
  rng_.set_state(st);
}

// ------------------------------------------------- SlidingWindowCounter

SlidingWindowCounter::SlidingWindowCounter(util::TimeUs window_us,
                                           std::size_t buckets)
    : window_us_(window_us) {
  if (window_us <= 0 || buckets == 0) {
    throw std::invalid_argument(
        "SlidingWindowCounter: window and buckets must be positive");
  }
  span_us_ = std::max<util::TimeUs>(
      1, (window_us + static_cast<util::TimeUs>(buckets) - 1) /
             static_cast<util::TimeUs>(buckets));
  bucket_id_.assign(buckets, -1);
  bucket_sum_.assign(buckets, 0.0);
}

void SlidingWindowCounter::add(util::TimeUs t, double weight) {
  const std::int64_t id = t / span_us_;
  const std::size_t slot =
      static_cast<std::size_t>(id) % bucket_id_.size();
  if (bucket_id_[slot] != id) {
    bucket_id_[slot] = id;
    bucket_sum_[slot] = 0.0;
  }
  bucket_sum_[slot] += weight;
}

double SlidingWindowCounter::total(util::TimeUs watermark) const {
  // Whole buckets only: ids strictly newer than the bucket containing
  // watermark - window, up to the watermark's own bucket. The boundary
  // bucket is excluded, so the window is approximated from below by up
  // to one bucket span -- fine for live rates.
  const std::int64_t newest = watermark / span_us_;
  const std::int64_t oldest = (watermark - window_us_) / span_us_;
  double sum = 0.0;
  for (std::size_t i = 0; i < bucket_id_.size(); ++i) {
    if (bucket_id_[i] > oldest && bucket_id_[i] <= newest) {
      sum += bucket_sum_[i];
    }
  }
  return sum;
}

void SlidingWindowCounter::save(CheckpointWriter& w) const {
  w.i64(window_us_);
  w.i64(span_us_);
  w.u64(bucket_id_.size());
  for (std::size_t i = 0; i < bucket_id_.size(); ++i) {
    w.i64(bucket_id_[i]);
    w.f64(bucket_sum_[i]);
  }
}

void SlidingWindowCounter::load(CheckpointReader& r) {
  window_us_ = r.i64();
  span_us_ = r.i64();
  const std::uint64_t n = r.u64();
  if (n == 0 || n > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible window bucket count");
  }
  bucket_id_.assign(static_cast<std::size_t>(n), -1);
  bucket_sum_.assign(static_cast<std::size_t>(n), 0.0);
  for (std::size_t i = 0; i < bucket_id_.size(); ++i) {
    bucket_id_[i] = r.i64();
    bucket_sum_[i] = r.f64();
  }
}

}  // namespace wss::stream
