#include "stream/checkpoint.hpp"

#include <stdexcept>

namespace wss::stream {

void CheckpointWriter::raw(const void* p, std::size_t n) {
  os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void CheckpointWriter::u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(b, 4);
}

void CheckpointWriter::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(b, 8);
}

void CheckpointWriter::str(std::string_view s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void CheckpointWriter::header() {
  u32(kCheckpointMagic);
  u32(kCheckpointVersion);
}

void CheckpointReader::raw(void* p, std::size_t n) {
  is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n) {
    throw std::runtime_error("checkpoint: truncated file");
  }
}

std::uint8_t CheckpointReader::u8() {
  std::uint8_t v;
  raw(&v, 1);
  return v;
}

std::uint32_t CheckpointReader::u32() {
  std::uint8_t b[4];
  raw(b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t CheckpointReader::u64() {
  std::uint8_t b[8];
  raw(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::string CheckpointReader::str() {
  const std::uint64_t n = u64();
  if (n > (1ull << 32)) {
    throw std::runtime_error("checkpoint: implausible string length");
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) raw(s.data(), static_cast<std::size_t>(n));
  return s;
}

void CheckpointReader::header() {
  if (u32() != kCheckpointMagic) {
    throw std::runtime_error("checkpoint: bad magic (not a wss checkpoint)");
  }
  const std::uint32_t version = u32();
  if (version == 2) {
    // The one upgrade path users actually hit: a v2 file from a
    // pre-prediction build. Name the cure, not just the number.
    throw std::runtime_error(
        "checkpoint: unsupported version 2 (v3 adds the prediction stage; "
        "regenerate the checkpoint with this build)");
  }
  if (version != kCheckpointVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
}

void write_counter_table(
    CheckpointWriter& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  w.u64(counters.size());
  for (const auto& [name, value] : counters) {
    w.str(name);
    w.u64(value);
  }
}

void write_gauge_table(
    CheckpointWriter& w,
    const std::vector<std::pair<std::string, std::int64_t>>& gauges) {
  w.u64(gauges.size());
  for (const auto& [name, value] : gauges) {
    w.str(name);
    w.i64(value);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> read_counter_table(
    CheckpointReader& r) {
  const std::uint64_t n = r.u64();
  if (n > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible counter count");
  }
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    out.emplace_back(std::move(name), value);
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> read_gauge_table(
    CheckpointReader& r) {
  const std::uint64_t n = r.u64();
  if (n > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible gauge count");
  }
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::int64_t value = r.i64();
    out.emplace_back(std::move(name), value);
  }
  return out;
}

}  // namespace wss::stream
