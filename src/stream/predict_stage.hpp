// Online failure prediction as a pipeline stage.
//
// Runs the Section 5 ensemble (rate-burst, precursor, periodic, plus
// the live episode-rule member backed by mine::EpisodeMiner) over the
// offered alert stream inside StreamPipeline. The stage has three
// jobs:
//
//  1. *Self-training.* The first `train_alerts` offered alerts are
//     buffered; at the boundary the batch fit steps run once
//     (precursor pairs, periodic periods, ensemble routing -- the
//     routing pass also gives the episode miner its single training
//     pass) and the buffer is dropped. Until then no predictions are
//     issued. The episode miner keeps accumulating after the boundary,
//     so episode rules sharpen without a refit.
//
//  2. *Lead-time accounting.* Every issued prediction is held in a
//     pending set until its window closes. Incidents are detected
//     online -- by first-alert-of-failure_id when the stream carries
//     ground truth, by a 30s quiet-gap heuristic otherwise -- and
//     each incident is scored the moment it happens: `hit` if some
//     pending prediction of its category covers it (lead time =
//     incident time minus the earliest covering issue time, observed
//     into wss_predict_lead_time_seconds), `miss` otherwise. A
//     prediction whose window expires uncovered is a `false alarm`.
//     Incidents are scored from the first alert (the training phase
//     has no predictions, so early incidents count as misses), which
//     keeps the reconciliation identity hits + misses == incidents
//     exact over the whole stream.
//
//  3. *Bit-exact checkpointing.* save()/load() carry the training
//     buffer, every member's learned + streaming state, the miner's
//     candidate table and ban set, the pending set, and all counters,
//     so restore-and-finish emits byte-identical predictions to an
//     uninterrupted run (checkpoint v3). Like the ingest-latency
//     histogram, the lead-time histogram is live-only and not
//     checkpointed.
#pragma once

#include <functional>
#include <map>

#include "predict/ensemble.hpp"
#include "predict/episode_rule.hpp"
#include "predict/periodic.hpp"
#include "predict/precursor.hpp"
#include "predict/rate_burst.hpp"
#include "stream/checkpoint.hpp"

namespace wss::stream {

/// Knobs for PredictStage.
struct PredictOptions {
  bool enabled = false;
  /// Offered alerts buffered before the one-shot fit.
  std::size_t train_alerts = 4096;
  /// Prediction/episode window (precursor window_us, episode
  /// window_us; the other members keep their own defaults).
  util::TimeUs horizon_us = 10 * util::kUsPerMin;
  /// Episode miner candidate-table cap.
  std::size_t max_candidates = 4096;
  /// Routing floor for the ensemble fit.
  double min_f1 = 0.02;
};

/// Point-in-time prediction tallies (StreamSnapshot payload and the
/// per-tenant /status fields).
struct PredictStats {
  bool fitted = false;
  std::uint64_t issued = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t false_alarms = 0;
  std::uint64_t incidents = 0;
  std::size_t rules = 0;       ///< episode rules above floors
  std::size_t candidates = 0;  ///< miner candidate-table size
  std::size_t routed = 0;      ///< ensemble routed categories
};

/// The online prediction stage (see file comment).
class PredictStage {
 public:
  using PredictionSink = std::function<void(const predict::Prediction&)>;

  explicit PredictStage(const PredictOptions& opts);

  /// Consumes one offered alert in stream order. `ground_truth` picks
  /// the incident-detection mode (see file comment).
  void observe(const filter::Alert& a, bool ground_truth);

  /// End-of-stream: expires every pending prediction whose window has
  /// closed (windows still open at the watermark stay undecided).
  void finish();

  /// Sink for issued predictions (called inside observe()).
  void set_sink(PredictionSink sink) { sink_ = std::move(sink); }

  PredictStats stats() const;
  bool fitted() const { return fitted_; }
  const PredictOptions& options() const { return opts_; }
  const mine::EpisodeMiner& miner() const { return episode_->miner(); }
  const predict::EnsemblePredictor& ensemble() const { return *ensemble_; }

  /// Publishes counter growth since the last publish to the global
  /// wss_predict_* counters. Idempotent; call at cold points.
  void publish_metrics();

  void save(CheckpointWriter& w) const;
  void load(CheckpointReader& r);

 private:
  struct PendingPrediction {
    predict::Prediction p;
    bool hit = false;
  };

  void fit();
  void score_incident(const filter::Alert& a);
  bool is_incident(const filter::Alert& a, bool ground_truth);
  void expire(util::TimeUs before);

  PredictOptions opts_;

  // Ensemble members: owned by ensemble_, concrete handles kept for
  // fit and serialization.
  predict::RateBurstPredictor* rate_burst_ = nullptr;
  predict::PrecursorPredictor* precursor_ = nullptr;
  predict::PeriodicPredictor* periodic_ = nullptr;
  predict::EpisodeRulePredictor* episode_ = nullptr;
  std::unique_ptr<predict::EnsemblePredictor> ensemble_;

  bool fitted_ = false;
  std::uint64_t observed_ = 0;
  util::TimeUs watermark_ = 0;
  std::vector<filter::Alert> training_;

  // Incident detection state.
  std::map<std::uint64_t, util::TimeUs> seen_failures_;  ///< id -> first time
  std::map<std::uint16_t, util::TimeUs> gap_last_;       ///< cat -> last alert

  std::vector<PendingPrediction> pending_;

  std::uint64_t issued_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t false_alarms_ = 0;
  std::uint64_t incidents_ = 0;

  // Publish baselines (NOT checkpointed: save() publishes pending
  // deltas first, and load() re-bases on the loaded tallies because
  // the restored registry already contains everything published).
  std::uint64_t published_issued_ = 0;
  std::uint64_t published_hits_ = 0;
  std::uint64_t published_misses_ = 0;
  std::uint64_t published_false_alarms_ = 0;
  std::uint64_t published_incidents_ = 0;

  PredictionSink sink_;
};

}  // namespace wss::stream
