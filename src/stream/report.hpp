// Human-readable rendering of streaming snapshots for `wss stream`.
#pragma once

#include <string>

#include "stream/study_state.hpp"

namespace wss::stream {

/// Multi-line report of a snapshot (mid-stream or final). The final
/// report's table section carries the same numbers as the batch
/// Tables 2-4 ingredients.
std::string render_snapshot(const StreamSnapshot& s);

/// One-line live status for periodic refresh. `wall_events_per_sec`
/// is the driver-measured ingest rate (<= 0 to omit).
std::string render_status_line(const StreamSnapshot& s,
                               double wall_events_per_sec);

}  // namespace wss::stream
