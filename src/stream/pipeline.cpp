#include "stream/pipeline.hpp"

#include <chrono>
#include <stdexcept>

#include "parse/dispatch.hpp"
#include "sim/spec.hpp"

namespace wss::stream {

namespace {

/// Cached handles for the stream-side metrics (registration is cold;
/// these are touched per event).
struct StreamObs {
  obs::Counter& events;
  obs::Gauge& watermark;
  obs::Histogram& latency;
  static StreamObs& get() {
    static StreamObs s{
        obs::registry().counter("wss_stream_events_total"),
        obs::registry().gauge("wss_stream_watermark_us"),
        obs::registry().histogram("wss_stream_ingest_latency_seconds",
                                  obs::latency_bounds_seconds()),
    };
    return s;
  }
};

}  // namespace

StreamPipeline::StreamPipeline(parse::SystemId system,
                               StreamPipelineOptions opts)
    : system_(system),
      opts_(opts),
      engine_(tag::build_ruleset(system)),
      cats_(tag::categories_of(system)),
      study_(system, opts.study),
      filter_(opts.study.threshold_us, opts.strict_order),
      year_(opts.start_year != 0 ? opts.start_year
                                 : sim::system_spec(system).start_date.year) {
  ctx_.engine = &engine_;
  ctx_.system = system;
  ctx_.num_categories = cats_.size();
  ctx_.collect_source_tallies = opts.study.collect_source_tallies;
  if (opts_.predict.enabled) {
#ifdef WSS_PREDICT_OFF
    throw std::runtime_error(
        "prediction is compiled out in this build (WSS_PREDICT_OFF)");
#else
    predict_ = std::make_unique<PredictStage>(opts_.predict);
#endif
  }
}

void StreamPipeline::set_prediction_sink(PredictStage::PredictionSink sink) {
  psink_ = std::move(sink);
  if (predict_) predict_->set_sink(psink_);
}

void StreamPipeline::offer(const filter::Alert& a) {
#ifndef WSS_PREDICT_OFF
  if (predict_) predict_->observe(a, study_.has_ground_truth());
#endif
  const bool admitted = filter_.offer(a);
  study_.on_filter_verdict(a, admitted);
  if (admitted && sink_) sink_(a);
}

void StreamPipeline::ingest(const sim::SimEvent& e, std::string_view line) {
#ifndef WSS_OBS_OFF
  const bool sampled = (latency_tick_++ % 16) == 0;
  const auto t0 = sampled ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
#endif
  // Reduce into the open chunk partial with the shared batch reducer,
  // then let the study state advance chunk bookkeeping (it merges the
  // partial at every chunk_events boundary, exactly like run_pipeline).
  core::detail::process_line(ctx_, e, line, study_.partial(), scratch_);
  study_.on_event(e, line);
  StreamObs::get().events.inc();

  if (e.is_alert()) {
    // The ground-truth alert, constructed exactly as
    // Simulator::ground_truth_alerts() does -- the batch
    // filtered_alerts() feed.
    filter::Alert a;
    a.time = e.time;
    a.source = e.source;
    a.category = static_cast<std::uint16_t>(e.category);
    a.type = cats_.at(static_cast<std::size_t>(e.category))->type;
    a.failure_id = e.failure_id;
    a.weight = e.weight;
    offer(a);
  }

  if (study_.events() % opts_.study.chunk_events == 0) {
    // Chunk boundary: shed filter entries the watermark proves dead,
    // and publish the cold-path metric deltas.
    if (opts_.strict_order) filter_.evict_stale();
    flusher_.flush(scratch_);
    StreamObs::get().watermark.set(study_.watermark());
  }
#ifndef WSS_OBS_OFF
  if (sampled) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    StreamObs::get().latency.observe(dt.count());
  }
#endif
}

std::uint32_t StreamPipeline::intern(const std::string& name) {
  const auto [it, inserted] = source_ids_.emplace(
      name, static_cast<std::uint32_t>(source_ids_.size()));
  return it->second;
}

void StreamPipeline::ingest_line(std::string_view line) {
#ifndef WSS_OBS_OFF
  const bool sampled = (latency_tick_++ % 16) == 0;
  const auto t0 = sampled ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
#endif
  study_.mark_no_ground_truth();

  // Year-rollover inference, as logio::read_log does it: peek the
  // month abbreviation; stamps that carry their own year leave the
  // tracker inert.
  int month = 0;
  if (line.size() >= 3) month = util::parse_month_abbrev(line.substr(0, 3));
  const int year = month > 0 ? year_.on_month(month) : year_.year();

  const parse::LogRecord rec = parse::parse_line(system_, line, year);

  // Analyze-style reduction: no ground truth, every line weight 1.
  // Mirrors core::detail::process_line except for the tagger scoring
  // (meaningless without ground truth, left at zero).
  core::PipelineResult& r = study_.partial();
  core::detail::PipelineCounters& pc = core::detail::PipelineCounters::get();
  pc.events.inc();
  pc.bytes.inc(line.size() + 1);
  ++r.physical_messages;
  r.weighted_messages += 1.0;
  r.physical_bytes += line.size() + 1;
  r.weighted_bytes += static_cast<double>(line.size() + 1);
  if (rec.source_corrupted) {
    ++r.corrupted_source_lines;
    pc.corrupted_sources.inc();
  }
  if (!rec.timestamp_valid) {
    ++r.invalid_timestamp_lines;
    pc.invalid_timestamps.inc();
  }

  sim::SimEvent e;
  e.time = rec.timestamp_valid ? rec.time : study_.watermark();
  e.severity = rec.severity;
  e.weight = 1.0;

  const auto tagged = engine_.tag(rec, scratch_);
  filter::Alert a;
  if (tagged) {
    pc.alerts_tagged.inc();
    e.category = static_cast<std::int32_t>(tagged->category);
    if (tagged->category < r.weighted_alert_counts.size()) {
      r.weighted_alert_counts[tagged->category] += 1.0;
      ++r.physical_alert_counts[tagged->category];
    }
    a.time = e.time;
    a.category = tagged->category;
    a.type = tagged->type;
    a.source = intern(rec.source);
    a.weight = 1.0;
    e.source = a.source;
  }

  if (ctx_.collect_source_tallies) {
    if (rec.source_corrupted) {
      r.corrupted_source_weight += 1.0;
    } else {
      r.messages_by_source[rec.source] += 1.0;
    }
  }

  study_.on_event(e, line);
  StreamObs::get().events.inc();
  if (tagged) offer(a);

  if (study_.events() % opts_.study.chunk_events == 0) {
    flusher_.flush(scratch_);
    StreamObs::get().watermark.set(study_.watermark());
  }
#ifndef WSS_OBS_OFF
  if (sampled) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    StreamObs::get().latency.observe(dt.count());
  }
#endif
}

void StreamPipeline::publish_metrics() {
  flusher_.flush(scratch_);
  filter_.publish_metrics();
  if (predict_) predict_->publish_metrics();
  StreamObs::get().watermark.set(study_.watermark());
}

void StreamPipeline::finish() {
  if (predict_) predict_->finish();
  publish_metrics();
  study_.finish();
}

StreamSnapshot StreamPipeline::snapshot() const {
  StreamSnapshot s = study_.snapshot();
  if (predict_) {
    const PredictStats ps = predict_->stats();
    s.predict_enabled = true;
    s.predict_fitted = ps.fitted;
    s.predict_issued = ps.issued;
    s.predict_hits = ps.hits;
    s.predict_misses = ps.misses;
    s.predict_false_alarms = ps.false_alarms;
    s.predict_incidents = ps.incidents;
    s.predict_rules = ps.rules;
    s.predict_candidates = ps.candidates;
    s.predict_routed = ps.routed;
  }
  return s;
}

void StreamPipeline::save(std::ostream& os) {
  // Publish first: the serialized registry must already contain every
  // pending delta, so restore can simply re-base the flushers.
  publish_metrics();
  CheckpointWriter w(os);
  w.header();
  w.u8(static_cast<std::uint8_t>(system_));

  // Options travel with the state: a restored engine must rebuild its
  // accumulators with the exact shapes the checkpoint assumes.
  w.i64(opts_.study.threshold_us);
  w.u64(opts_.study.chunk_events);
  w.i64(opts_.study.window_us);
  w.u64(opts_.study.window_buckets);
  w.u64(opts_.study.reservoir_k);
  w.u64(opts_.study.reservoir_seed);
  w.boolean(opts_.study.capture_compression_sample);
  w.boolean(opts_.study.collect_source_tallies);
  w.boolean(opts_.strict_order);

  // v3: the prediction stage travels too -- options always, state only
  // when enabled.
  w.boolean(opts_.predict.enabled);
  w.u64(opts_.predict.train_alerts);
  w.i64(opts_.predict.horizon_us);
  w.u64(opts_.predict.max_candidates);
  w.f64(opts_.predict.min_f1);

  study_.save(w);
  filter_.save(w);
  if (predict_) predict_->save(w);

  w.i64(year_.year());
  w.u32(static_cast<std::uint32_t>(year_.last_month()));
  w.u32(static_cast<std::uint32_t>(year_.rollovers()));
  w.u64(source_ids_.size());
  for (const auto& [name, id] : source_ids_) {
    w.str(name);
    w.u32(id);
  }

  // v2: the obs registry's counter/gauge tables. Histograms and spans
  // measure this process's wall time and are deliberately absent.
  write_counter_table(w, obs::registry().counter_values());
  write_gauge_table(w, obs::registry().gauge_values());
  if (!w.ok()) throw std::runtime_error("checkpoint: write failed");
}

void StreamPipeline::restore(std::istream& is) {
  CheckpointReader r(is);
  r.header();
  const auto sys = static_cast<parse::SystemId>(r.u8());
  if (sys != system_) {
    throw std::runtime_error("checkpoint: system mismatch");
  }

  StreamStudyOptions so;
  so.threshold_us = r.i64();
  so.chunk_events = static_cast<std::size_t>(r.u64());
  so.window_us = r.i64();
  so.window_buckets = static_cast<std::size_t>(r.u64());
  so.reservoir_k = static_cast<std::size_t>(r.u64());
  so.reservoir_seed = r.u64();
  so.capture_compression_sample = r.boolean();
  so.collect_source_tallies = r.boolean();
  const bool strict = r.boolean();

  PredictOptions po;
  po.enabled = r.boolean();
  po.train_alerts = static_cast<std::size_t>(r.u64());
  po.horizon_us = r.i64();
  po.max_candidates = static_cast<std::size_t>(r.u64());
  po.min_f1 = r.f64();

  opts_.study = so;
  opts_.strict_order = strict;
  opts_.predict = po;
  ctx_.collect_source_tallies = so.collect_source_tallies;

  predict_.reset();
  if (po.enabled) {
#ifdef WSS_PREDICT_OFF
    throw std::runtime_error(
        "checkpoint has prediction state but this build has WSS_PREDICT_OFF");
#else
    predict_ = std::make_unique<PredictStage>(po);
    if (psink_) predict_->set_sink(psink_);
#endif
  }

  study_ = StreamStudyState(system_, so);
  study_.load(r);
  filter_ = OnlineSimultaneousFilter(so.threshold_us, strict);
  filter_.load(r);
  if (predict_) predict_->load(r);

  const int year = static_cast<int>(r.i64());
  const int last_month = static_cast<int>(r.u32());
  const int rollovers = static_cast<int>(r.u32());
  year_.restore(year, last_month, rollovers);

  const std::uint64_t sources = r.u64();
  if (sources > (1u << 24)) {
    throw std::runtime_error("checkpoint: implausible source map size");
  }
  source_ids_.clear();
  for (std::uint64_t i = 0; i < sources; ++i) {
    std::string name = r.str();
    const std::uint32_t id = r.u32();
    source_ids_[std::move(name)] = id;
  }

  // v2: restore the obs registry, then re-base the tag flusher on the
  // (transient, possibly non-zero) scratch so future flushes publish
  // only post-restore growth.
  for (const auto& [name, value] : read_counter_table(r)) {
    obs::registry().set_counter(name, value);
  }
  for (const auto& [name, value] : read_gauge_table(r)) {
    obs::registry().set_gauge(name, value);
  }
  flusher_.rebase(scratch_);
}

}  // namespace wss::stream
