#include "stream/report.hpp"

#include <sstream>

#include "filter/alert.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wss::stream {

std::string render_snapshot(const StreamSnapshot& s) {
  std::ostringstream os;
  os << util::format(
      "%s stream %s: %s events",
      std::string(parse::system_name(s.system)).c_str(),
      s.finished ? "(final)" : "(live)",
      util::with_commas(static_cast<std::int64_t>(s.events)).c_str());
  if (s.events > 0) {
    os << util::format(" spanning %s .. %s",
                       util::format_iso(s.first_time).c_str(),
                       util::format_iso(s.watermark).c_str());
  }
  os << "\n";
  if (s.dropped > 0) {
    os << util::format("  !! %s events dropped at ingestion (drop-oldest)\n",
                       util::with_commas(
                           static_cast<std::int64_t>(s.dropped)).c_str());
  }

  os << util::format(
      "  volume: %.4g weighted messages, %.3f GB, %.1f bytes/s, "
      "%d categories",
      s.messages, s.measured_gb, s.rate_bytes_per_sec, s.categories_observed);
  if (s.compressed_fraction) {
    os << util::format(", compresses to %.1f%%",
                       *s.compressed_fraction * 100.0);
  }
  os << "\n";
  os << util::format(
      "  parse: %s corrupted sources, %s invalid timestamps\n",
      util::with_commas(
          static_cast<std::int64_t>(s.corrupted_source_lines)).c_str(),
      util::with_commas(
          static_cast<std::int64_t>(s.invalid_timestamp_lines)).c_str());

  os << util::format(
      "  filter: %s alerts -> %s after filtering (H %s / S %s / I %s)\n",
      util::with_commas(static_cast<std::int64_t>(s.alerts_offered)).c_str(),
      util::with_commas(static_cast<std::int64_t>(s.alerts_admitted)).c_str(),
      util::with_commas(
          static_cast<std::int64_t>(s.filtered_by_type[0])).c_str(),
      util::with_commas(
          static_cast<std::int64_t>(s.filtered_by_type[1])).c_str(),
      util::with_commas(
          static_cast<std::int64_t>(s.filtered_by_type[2])).c_str());

  if (s.predict_enabled) {
    os << util::format(
        "  predict%s: %s issued, %s hits / %s misses / %s false alarms "
        "(%s incidents), %zu rules, %zu routed\n",
        s.predict_fitted ? "" : " (training)",
        util::with_commas(
            static_cast<std::int64_t>(s.predict_issued)).c_str(),
        util::with_commas(static_cast<std::int64_t>(s.predict_hits)).c_str(),
        util::with_commas(
            static_cast<std::int64_t>(s.predict_misses)).c_str(),
        util::with_commas(
            static_cast<std::int64_t>(s.predict_false_alarms)).c_str(),
        util::with_commas(
            static_cast<std::int64_t>(s.predict_incidents)).c_str(),
        s.predict_rules, s.predict_routed);
  }

  if (s.gap_count > 0) {
    os << util::format(
        "  interarrival (admitted): mean %.1fs sd %.1fs min %.1fs "
        "p50 %.1fs p95 %.1fs p99 %.1fs max %.1fs (n=%s)\n",
        s.gap_mean_s, s.gap_stddev_s, s.gap_min_s, s.gap_p50_s, s.gap_p95_s,
        s.gap_p99_s, s.gap_max_s,
        util::with_commas(static_cast<std::int64_t>(s.gap_count)).c_str());
  }
  os << util::format(
      "  last %.0fs of stream time: %.4g messages, %.4g raw alerts, "
      "%.4g admitted\n",
      s.window_seconds, s.messages_in_window, s.raw_alerts_in_window,
      s.admitted_in_window);

  const auto cats = tag::categories_of(s.system);
  util::Table t({"Category", "Type", "Raw", "Filtered"});
  for (std::size_t c = 0; c < s.weighted_alert_counts.size(); ++c) {
    if (s.physical_alert_counts.size() > c && s.physical_alert_counts[c] == 0 &&
        (c >= s.filtered_counts.size() || s.filtered_counts[c] == 0)) {
      continue;
    }
    const std::string name =
        c < cats.size() ? cats[c]->name : util::format("cat%zu", c);
    const char type_letter =
        c < cats.size() ? filter::alert_type_letter(cats[c]->type) : '?';
    const std::uint64_t filtered =
        c < s.filtered_counts.size() ? s.filtered_counts[c] : 0;
    t.add_row({name, std::string(1, type_letter),
               util::format("%.0f", s.weighted_alert_counts[c]),
               std::to_string(filtered)});
  }
  os << t.render();
  return os.str();
}

std::string render_status_line(const StreamSnapshot& s,
                               double wall_events_per_sec) {
  std::string line = util::format(
      "[%s] %s events, %s admitted, window %.4g msg / %.4g adm",
      s.events > 0 ? util::format_iso(s.watermark).c_str() : "-",
      util::with_commas(static_cast<std::int64_t>(s.events)).c_str(),
      util::with_commas(static_cast<std::int64_t>(s.alerts_admitted)).c_str(),
      s.messages_in_window, s.admitted_in_window);
  if (wall_events_per_sec > 0.0) {
    line += util::format(", %.0f ev/s", wall_events_per_sec);
  }
  if (s.dropped > 0) {
    line += util::format(", %s dropped",
                         util::with_commas(
                             static_cast<std::int64_t>(s.dropped)).c_str());
  }
  return line;
}

}  // namespace wss::stream
