// Bounded ingestion front-end for the streaming pipeline.
//
// A producer (paced replay, file tail, generator) pushes StreamItems
// into a fixed-capacity ring; the engine pops them. Backpressure is
// explicit and lossless by default: BackpressurePolicy::kBlock stalls
// the producer when the consumer falls behind (the right choice when
// the producer is replay and can wait). kDropOldest never blocks --
// the ring evicts its oldest unconsumed items to make room and counts
// every eviction, so a slow consumer under a live source degrades to a
// sampled stream with an exact, queryable drop count. Nothing is ever
// dropped silently.
//
// The ring is core::MpmcQueue -- the same bounded queue the parallel
// batch pipeline uses for its work chunks -- with the lossy
// push_evicting() path enabled by policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/mpmc_queue.hpp"
#include "sim/process.hpp"

namespace wss::stream {

/// One unit of ingestion: the event plus its rendered line. In file
/// mode only `line` is meaningful (the event is synthesized by the
/// engine after parsing).
struct StreamItem {
  std::uint64_t index = 0;  ///< position in the source stream
  sim::SimEvent event;
  std::string line;
};

/// What to do when the ring is full and the producer has a new item.
enum class BackpressurePolicy : std::uint8_t {
  kBlock = 0,       ///< stall the producer (lossless)
  kDropOldest = 1,  ///< evict oldest unconsumed items; count each drop
};

/// Fixed-capacity ingestion ring with accounted backpressure.
class IngestRing {
 public:
  /// `capacity_hint` is rounded up to the next power of two (the
  /// queue's invariant); the effective bound is capacity().
  IngestRing(std::size_t capacity_hint, BackpressurePolicy policy);

  /// Producer side. Applies the policy; returns false only when the
  /// ring was closed (the item is discarded, not counted as dropped).
  bool push(StreamItem item);

  /// Consumer side: blocks while empty, nullopt at end-of-stream.
  std::optional<StreamItem> pop() { return queue_.pop(); }

  /// Non-blocking consumer probe (empty != end-of-stream).
  std::optional<StreamItem> try_pop() { return queue_.try_pop(); }

  /// Ends the stream; consumers drain what remains.
  void close() { queue_.close(); }

  std::size_t capacity() const { return queue_.capacity(); }
  std::size_t size() const { return queue_.size(); }
  BackpressurePolicy policy() const { return policy_; }

  /// Exact number of items evicted under kDropOldest so far. Reads the
  /// queue's own lock-protected total, so the invariant
  /// popped + dropped() + resident == pushed holds at every instant
  /// (an external tally bumped after push_evicting returned would lag
  /// the queue between the eviction and the add).
  std::uint64_t dropped() const { return queue_.evicted_total(); }

 private:
  core::MpmcQueue<StreamItem> queue_;
  BackpressurePolicy policy_;
};

}  // namespace wss::stream
