// Bounded ingestion front-end for the streaming pipeline.
//
// A producer (paced replay, file tail, generator) pushes StreamItems
// into a fixed-capacity ring; the engine pops them. Backpressure is
// explicit and lossless by default: BackpressurePolicy::kBlock stalls
// the producer when the consumer falls behind (the right choice when
// the producer is replay and can wait). kDropOldest never blocks --
// the ring evicts its oldest unconsumed items to make room and counts
// every eviction, so a slow consumer under a live source degrades to a
// sampled stream with an exact, queryable drop count. Nothing is ever
// dropped silently.
//
// The ring is core::MpmcQueue -- the same bounded queue the parallel
// batch pipeline uses for its work chunks -- with the lossy
// push_evicting() path enabled by policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/mpmc_queue.hpp"
#include "sim/process.hpp"

namespace wss::stream {

/// One unit of ingestion: the event plus its rendered line. In file
/// mode only `line` is meaningful (the event is synthesized by the
/// engine after parsing).
struct StreamItem {
  std::uint64_t index = 0;  ///< position in the source stream
  sim::SimEvent event;
  std::string line;
  /// Wall-clock send stamp (microseconds since epoch) carried by a
  /// latency-stamping network client; 0 = unstamped. The consumer
  /// subtracts it from its own clock to observe end-to-end ingest
  /// latency (net/tenant.cpp).
  std::int64_t client_us = 0;
};

/// What to do when the ring is full and the producer has a new item.
enum class BackpressurePolicy : std::uint8_t {
  kBlock = 0,       ///< stall the producer (lossless)
  kDropOldest = 1,  ///< evict oldest unconsumed items; count each drop
};

/// Fixed-capacity ingestion ring with accounted backpressure.
class IngestRing {
 public:
  /// `capacity_hint` is rounded up to the next power of two (the
  /// queue's invariant); the effective bound is capacity().
  IngestRing(std::size_t capacity_hint, BackpressurePolicy policy);

  /// Producer side. Applies the policy; returns false only when the
  /// ring was closed (the item is discarded, not counted as dropped).
  bool push(StreamItem item);

  /// Non-evicting bulk admission: swaps items[from..to) in until the
  /// ring is full, returning how many were accepted. The check and the
  /// insert share the queue's lock, so concurrent producers can never
  /// overfill (the lossless-TCP admission path -- policy-independent
  /// because nothing is ever evicted here). A closed ring discards the
  /// rest and reports it accepted. Admitted elements receive retired
  /// ring-slot payloads back (see MpmcQueue::try_push_many), so
  /// producers that reuse their batch storage skip the per-line
  /// allocation.
  std::size_t try_push_batch(std::vector<StreamItem>& items,
                             std::size_t from, std::size_t to) {
    return queue_.try_push_many(items, from, to);
  }
  std::size_t try_push_batch(std::vector<StreamItem>& items,
                             std::size_t from) {
    return queue_.try_push_many(items, from);
  }

  /// Evicting bulk push (kDropOldest semantics regardless of policy):
  /// every item enters; evictions are counted exactly and mirrored to
  /// the stream drop counter. Returns the eviction count (0 when the
  /// ring was closed -- nothing entered, nothing dropped).
  std::size_t push_batch_evicting(std::vector<StreamItem>& items,
                                  std::size_t from);
  std::size_t push_batch_evicting(std::vector<StreamItem>& items,
                                  std::size_t from, std::size_t to);

  /// Consumer side: blocks while empty, nullopt at end-of-stream.
  std::optional<StreamItem> pop() { return queue_.pop(); }

  /// Bulk consumer: blocks while empty, then appends up to `max` items
  /// to `out` under one lock. 0 = closed and drained.
  std::size_t pop_many(std::vector<StreamItem>& out, std::size_t max) {
    return queue_.pop_many(out, max);
  }

  /// Recycling bulk consumer: swaps up to `max` items into out[0..n),
  /// parking the caller's processed elements in the vacated slots so
  /// the next batch admission hands their line buffers back to a
  /// producer (MpmcQueue::pop_many_swap). 0 = closed and drained.
  std::size_t pop_many_swap(std::vector<StreamItem>& out, std::size_t max) {
    return queue_.pop_many_swap(out, max);
  }

  /// Non-blocking consumer probe (empty != end-of-stream).
  std::optional<StreamItem> try_pop() { return queue_.try_pop(); }

  /// Ends the stream; consumers drain what remains.
  void close() { queue_.close(); }

  std::size_t capacity() const { return queue_.capacity(); }
  std::size_t size() const { return queue_.size(); }
  BackpressurePolicy policy() const { return policy_; }

  /// Exact number of items evicted under kDropOldest so far. Reads the
  /// queue's own lock-protected total, so the invariant
  /// popped + dropped() + resident == pushed holds at every instant
  /// (an external tally bumped after push_evicting returned would lag
  /// the queue between the eviction and the add).
  std::uint64_t dropped() const { return queue_.evicted_total(); }

 private:
  core::MpmcQueue<StreamItem> queue_;
  BackpressurePolicy policy_;
};

}  // namespace wss::stream
