#include "stream/source.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace wss::stream {

IngestRing::IngestRing(std::size_t capacity_hint, BackpressurePolicy policy)
    : queue_(core::MpmcQueue<StreamItem>::next_pow2(
          std::max<std::size_t>(1, capacity_hint))),
      policy_(policy) {}

bool IngestRing::push(StreamItem item) {
  if (policy_ == BackpressurePolicy::kBlock) {
    return queue_.push(std::move(item));
  }
  const std::size_t evicted = queue_.push_evicting(std::move(item));
  if (evicted == core::MpmcQueue<StreamItem>::kClosed) return false;
  if (evicted > 0) {
    // Exactness lives in the queue's lock-protected total (see
    // dropped()); this counter is the observability mirror.
    static obs::Counter& dropped_counter =
        obs::registry().counter("wss_stream_ring_dropped_total");
    dropped_counter.inc(evicted);
  }
  return true;
}

std::size_t IngestRing::push_batch_evicting(std::vector<StreamItem>& items,
                                            std::size_t from) {
  return push_batch_evicting(items, from, items.size());
}

std::size_t IngestRing::push_batch_evicting(std::vector<StreamItem>& items,
                                            std::size_t from,
                                            std::size_t to) {
  const std::size_t evicted = queue_.push_evicting_many(items, from, to);
  if (evicted == core::MpmcQueue<StreamItem>::kClosed) return 0;
  if (evicted > 0) {
    static obs::Counter& dropped_counter =
        obs::registry().counter("wss_stream_ring_dropped_total");
    dropped_counter.inc(evicted);
  }
  return evicted;
}

}  // namespace wss::stream
