#include "core/golden.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"

namespace wss::core {

namespace {

/// Round-trip double formatting: 17 significant digits uniquely
/// identify an IEEE double, so any drift changes the golden bytes.
std::string g(double v) { return util::format("%.17g", v); }

std::string csv_escape(const std::string& s) {
  // Golden fields (category names, hostnames) contain no commas or
  // quotes today; fail loudly rather than emit an ambiguous file.
  if (s.find_first_of(",\"\n") != std::string::npos) {
    throw std::logic_error("golden: field needs CSV escaping: " + s);
  }
  return s;
}

std::string golden_table2(Study& study) {
  std::string out =
      "system,days,measured_gb,compressed_fraction,rate_bytes_per_sec,"
      "messages,alerts,categories\n";
  for (const auto id : parse::kAllSystems) {
    const auto row = table2_row(study, id);
    out += util::format(
        "%s,%d,%s,%s,%s,%s,%s,%d\n",
        std::string(parse::system_short_name(id)).c_str(), row.days,
        g(row.measured_gb).c_str(), g(row.compressed_fraction).c_str(),
        g(row.rate_bytes_per_sec).c_str(), g(row.messages).c_str(),
        g(row.alerts).c_str(), row.categories);
  }
  return out;
}

std::string golden_table3(Study& study) {
  const auto d = table3(study);
  std::string out = "type,raw_weighted,filtered\n";
  for (int i = 0; i < 3; ++i) {
    const auto type = static_cast<filter::AlertType>(i);
    out += util::format("%s,%s,%llu\n",
                        std::string(filter::alert_type_name(type)).c_str(),
                        g(d.raw[i]).c_str(),
                        static_cast<unsigned long long>(d.filtered[i]));
  }
  return out;
}

std::string golden_table4(Study& study, parse::SystemId id) {
  std::string out = "category,type,raw_weighted,filtered\n";
  for (const auto& r : table4_rows(study, id)) {
    out += util::format("%s,%c,%s,%llu\n", csv_escape(r.category).c_str(),
                        filter::alert_type_letter(r.type),
                        g(r.raw_weighted).c_str(),
                        static_cast<unsigned long long>(r.filtered_measured));
  }
  return out;
}

std::string golden_severity(Study& study, parse::SystemId id,
                            bool syslog_names) {
  std::string out = "severity,messages_weighted,alerts_weighted\n";
  for (const auto& r : severity_distribution(study, id)) {
    const auto name = syslog_names ? parse::severity_syslog_name(r.severity)
                                   : parse::severity_bgl_name(r.severity);
    out += util::format("%s,%s,%s\n", std::string(name).c_str(),
                        g(r.messages).c_str(), g(r.alerts).c_str());
  }
  return out;
}

std::string golden_table5(Study& study) {
  std::string out =
      golden_severity(study, parse::SystemId::kBlueGeneL,
                      /*syslog_names=*/false);
  const auto rates = bgl_severity_tagging(study);
  out += util::format("severity_tagger_fp_rate,%s\n",
                      g(rates.false_positive_rate).c_str());
  out += util::format("severity_tagger_fn_rate,%s\n",
                      g(rates.false_negative_rate).c_str());
  return out;
}

std::string golden_fig2a(Study& study) {
  const auto d = fig2a(study);
  std::string out = "bucket,weighted_messages\n";
  const auto& b = d.series.buckets();
  for (std::size_t i = 0; i < b.size(); ++i) {
    out += util::format("%zu,%s\n", i, g(b[i]).c_str());
  }
  out += "changepoints";
  for (const auto cp : d.changepoints) out += util::format(",%zu", cp);
  out += "\n";
  return out;
}

std::string golden_fig2b(Study& study) {
  const auto d = fig2b(study);
  std::string out = "source,weighted_messages\n";
  for (const auto& [name, w] : d.sources) {
    out += util::format("%s,%s\n", csv_escape(name).c_str(), g(w).c_str());
  }
  out += util::format("corrupted,%s\n", g(d.corrupted_weight).c_str());
  return out;
}

std::string golden_fig5(Study& study) {
  const auto d = fig5(study);
  std::string out = util::format(
      "exp_rate,%s\nlognormal_mu,%s\nlognormal_sigma,%s\n"
      "ks_exp_d,%s\nks_exp_p,%s\nks_lognormal_d,%s\nks_lognormal_p,%s\n",
      g(d.exponential.rate).c_str(), g(d.lognormal.mu).c_str(),
      g(d.lognormal.sigma).c_str(), g(d.ks_exponential.statistic).c_str(),
      g(d.ks_exponential.p_value).c_str(),
      g(d.ks_lognormal.statistic).c_str(),
      g(d.ks_lognormal.p_value).c_str());
  out += "gap_seconds\n";
  for (const double gap : d.gaps_seconds) out += g(gap) + "\n";
  return out;
}

std::string golden_fig6(Study& study, parse::SystemId id) {
  const auto d = fig6(study, id);
  std::string out = "bin,count\n";
  const auto& bins = d.hist.bins();
  for (std::size_t i = 0; i < bins.size(); ++i) {
    out += util::format("%zu,%s\n", i, g(bins[i]).c_str());
  }
  out += util::format("underflow,%s\noverflow,%s\n",
                      g(d.hist.underflow()).c_str(),
                      g(d.hist.overflow()).c_str());
  out += "modes";
  for (const auto m : d.modes) out += util::format(",%zu", m);
  out += "\n";
  return out;
}

}  // namespace

StudyOptions golden_study_options() {
  StudyOptions o;
  // Big enough that every table row and figure series is populated,
  // small enough that the golden suite runs in a few seconds. These
  // values are part of the golden identity: changing them (or the
  // seed, or corruption) requires a rebless.
  o.sim.category_cap = 2500;
  o.sim.chatter_events = 15000;
  return o;
}

const std::vector<GoldenArtifact>& golden_artifacts() {
  static const std::vector<GoldenArtifact> kArtifacts = [] {
    const std::vector<parse::SystemId> all(parse::kAllSystems.begin(),
                                           parse::kAllSystems.end());
    std::vector<GoldenArtifact> a;
    a.push_back({"table1.txt", "Table 1 system characteristics",
                 [](Study&) { return render_table1(); },
                 {}});
    a.push_back({"table2.csv", "Table 2 log characteristics",
                 golden_table2, all});
    a.push_back({"table3.csv", "Table 3 alert type distribution",
                 golden_table3, all});
    for (const auto id : parse::kAllSystems) {
      a.push_back({util::format("table4_%s.csv",
                                std::string(parse::system_short_name(id))
                                    .c_str()),
                   util::format("Table 4 per-category counts (%s)",
                                std::string(parse::system_name(id)).c_str()),
                   [id](Study& s) { return golden_table4(s, id); },
                   {id}});
    }
    a.push_back({"table5.csv", "Table 5 BG/L severity cross-tab",
                 golden_table5,
                 {parse::SystemId::kBlueGeneL}});
    a.push_back({"table6.csv", "Table 6 Red Storm severity cross-tab",
                 [](Study& s) {
                   return golden_severity(s, parse::SystemId::kRedStorm,
                                          /*syslog_names=*/true);
                 },
                 {parse::SystemId::kRedStorm}});
    a.push_back({"fig2a.csv", "Figure 2(a) Liberty hourly rate series",
                 golden_fig2a,
                 {parse::SystemId::kLiberty}});
    a.push_back({"fig2b.csv", "Figure 2(b) Liberty per-source counts",
                 golden_fig2b,
                 {parse::SystemId::kLiberty}});
    a.push_back({"fig5.csv", "Figure 5 ECC interarrivals and fits",
                 golden_fig5,
                 {parse::SystemId::kThunderbird}});
    a.push_back({"fig6_bgl.csv", "Figure 6 BG/L interarrival histogram",
                 [](Study& s) {
                   return golden_fig6(s, parse::SystemId::kBlueGeneL);
                 },
                 {parse::SystemId::kBlueGeneL}});
    a.push_back({"fig6_spirit.csv", "Figure 6 Spirit interarrival histogram",
                 [](Study& s) {
                   return golden_fig6(s, parse::SystemId::kSpirit);
                 },
                 {parse::SystemId::kSpirit}});
    return a;
  }();
  return kArtifacts;
}

std::size_t write_artifacts(
    Study& study, const std::string& dir,
    const std::function<bool(const GoldenArtifact&)>& want) {
  std::filesystem::create_directories(dir);
  std::size_t written = 0;
  for (const auto& artifact : golden_artifacts()) {
    if (want && !want(artifact)) continue;
    const std::string path = dir + "/" + artifact.file;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("golden: cannot open " + path);
    os << artifact.produce(study);
    if (!os.flush()) throw std::runtime_error("golden: write failed: " + path);
    ++written;
  }
  return written;
}

std::size_t write_goldens(const std::string& dir) {
  Study study(golden_study_options());
  return write_artifacts(study, dir, [](const GoldenArtifact&) {
    return true;
  });
}

}  // namespace wss::core
