// Parallel parse->tag pipeline over a simulated system log.
//
// Shards the simulator's rendered line stream into fixed-size chunks
// (sim::Simulator::event_shards), reduces each chunk to a partial
// PipelineResult on a fixed-size std::jthread pool fed by a bounded
// MPMC work queue, and merges the partials in chunk-index order.
//
// Determinism guarantee: because chunk boundaries depend only on
// PipelineOptions::chunk_events and the merge walks chunks in index
// order (regardless of which worker finished when), the output is
// bit-identical to the serial core::run_pipeline for every thread
// count and every scheduling interleave. tests/test_core_parallel.cpp
// enforces this at 1, 2, 4, and 7 threads.
//
// The hot path (parse + tag of one chunk) takes no locks: workers
// share only const state (Simulator, TagEngine -- both documented
// const-shareable, see test_tag_threading) and write partial results
// into per-chunk slots they exclusively own.
#pragma once

#include "core/pipeline.hpp"

namespace wss::core {

/// Runs the pipeline across a thread pool. Stateless apart from its
/// options; a single instance may be reused for many runs.
class ParallelPipeline {
 public:
  explicit ParallelPipeline(PipelineOptions options = {});

  const PipelineOptions& options() const { return options_; }

  /// The thread count a run will actually use (resolves num_threads=0
  /// to the hardware concurrency).
  int resolved_threads() const;

  /// Runs parse->tag over every rendered line of `simulator`.
  /// Bit-identical to run_pipeline(simulator, options()).
  PipelineResult run(const sim::Simulator& simulator) const;

 private:
  PipelineOptions options_;
};

}  // namespace wss::core
