#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/mpmc_queue.hpp"
#include "obs/span.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"

namespace wss::core {

ParallelPipeline::ParallelPipeline(PipelineOptions options)
    : options_(options) {}

int ParallelPipeline::resolved_threads() const {
  if (options_.num_threads > 0) return options_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

PipelineResult ParallelPipeline::run(const sim::Simulator& simulator) const {
  const auto shards = simulator.event_shards(options_.chunk_events);
  const int workers = std::min<int>(
      resolved_threads(), static_cast<int>(std::max<std::size_t>(
                              shards.size(), 1)));
  if (workers <= 1) {
    // Serial fallback shares the exact code path (and therefore the
    // exact FP accumulation order) with the threaded run below.
    return run_pipeline(simulator, options_);
  }

  const parse::SystemId system = simulator.spec().id;
  const tag::RuleSet rules = tag::build_ruleset(system);
  const tag::TagEngine engine(rules);

  detail::ChunkContext ctx;
  ctx.simulator = &simulator;
  ctx.engine = &engine;
  ctx.system = system;
  ctx.num_categories = tag::categories_of(system).size();
  ctx.collect_source_tallies = options_.collect_source_tallies;

  // Each worker writes only partials[i] for the chunk ids it pops, so
  // the result array needs no lock; the queue provides the necessary
  // happens-before edges between producer, workers, and the join.
  std::vector<PipelineResult> partials(shards.size());
  MpmcQueue<std::size_t> queue(
      MpmcQueue<std::size_t>::next_pow2(static_cast<std::size_t>(workers) * 4));
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        // Worker-owned matching scratch, reused across every chunk
        // this worker pops: the steady-state tag path allocates
        // nothing, and the lazy-DFA cache warms once per thread.
        match::MatchScratch scratch;
        tag::TagMetricsFlusher flusher;
        obs::Span worker_span("pipeline_worker");
        while (auto chunk = queue.pop()) {
          if (failed.load(std::memory_order_relaxed)) continue;
          try {
            partials[*chunk] = detail::process_chunk(
                ctx, shards[*chunk].begin, shards[*chunk].end, scratch);
            flusher.flush(scratch);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!failed.exchange(true)) first_error = std::current_exception();
          }
        }
      });
    }
    // Producer side: enqueue chunk ids with backpressure (the bounded
    // queue caps how far ahead of the workers we run).
    for (std::size_t i = 0; i < shards.size(); ++i) queue.push(i);
    queue.close();
  }  // jthreads join here

  if (failed.load()) std::rethrow_exception(first_error);

  PipelineResult r;
  r.system = system;
  r.weighted_alert_counts.assign(ctx.num_categories, 0.0);
  r.physical_alert_counts.assign(ctx.num_categories, 0);
  obs::Counter& chunks = detail::PipelineCounters::get().chunks;
  {
    obs::Span merge_span("pipeline_merge");
    for (auto& part : partials) {
      detail::merge_partial(r, std::move(part));
      chunks.inc();
    }
  }
  {
    obs::Span fin("finalize");
    detail::finalize_result(r);
  }
  return r;
}

}  // namespace wss::core
