// The parse -> tag pipeline over a simulated system log.
//
// This is the "downstream consumer" view: everything here is computed
// from rendered text lines the way a real analysis would, not from the
// simulator's ground truth. Ground truth is used only to score the
// tagger (the paper had to do this scoring by hand).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "filter/alert.hpp"
#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/evaluate.hpp"
#include "tag/rule.hpp"

namespace wss::core {

/// Everything a single parse+tag pass produces.
struct PipelineResult {
  parse::SystemId system = parse::SystemId::kBlueGeneL;

  // ---- Volume (Table 2 ingredients) ----
  std::uint64_t physical_messages = 0;
  double weighted_messages = 0.0;       ///< reproduces Table 2 "Messages"
  std::uint64_t physical_bytes = 0;     ///< rendered log bytes
  double weighted_bytes = 0.0;          ///< reproduces Table 2 "Size"

  // ---- Parsing quality (Section 3.2.1 corruption modes) ----
  std::uint64_t corrupted_source_lines = 0;
  std::uint64_t invalid_timestamp_lines = 0;

  // ---- Tagging ----
  /// Alerts found by the rule engine on rendered lines, time-sorted.
  /// Category ids are rule indices (same space as ground truth).
  std::vector<filter::Alert> tagged_alerts;
  /// Weighted raw alert count per category (Table 4 "Raw").
  std::vector<double> weighted_alert_counts;
  /// Engine-vs-ground-truth confusion counts.
  tag::TaggerEvaluation tagging;
  /// Categories with at least one physical alert (Table 2
  /// "Categories").
  int categories_observed = 0;

  // ---- Per-source tallies (Figure 2(b)) ----
  /// Weighted message count by parsed source name.
  std::map<std::string, double> messages_by_source;
  /// Weighted count of messages whose source was unattributable.
  double corrupted_source_weight = 0.0;
};

/// Runs the pipeline over every rendered line of `simulator`.
/// `collect_source_tallies` enables the Figure 2(b) map (it is the
/// only expensive-by-memory part).
PipelineResult run_pipeline(const sim::Simulator& simulator,
                            bool collect_source_tallies = true);

}  // namespace wss::core
