// The parse -> tag pipeline over a simulated system log.
//
// This is the "downstream consumer" view: everything here is computed
// from rendered text lines the way a real analysis would, not from the
// simulator's ground truth. Ground truth is used only to score the
// tagger (the paper had to do this scoring by hand).
//
// Determinism contract: the pipeline's canonical semantics are
// *chunked*. The event stream is cut into fixed-size chunks of
// `PipelineOptions::chunk_events` events, each chunk is reduced to a
// partial PipelineResult, and partials are merged in chunk-index
// order. Chunk boundaries depend only on chunk_events -- never on
// thread count or scheduling -- so the serial run_pipeline and
// core::ParallelPipeline at any thread count produce bit-identical
// results (floating-point sums included). Changing chunk_events
// changes FP rounding at the 1e-15 level; it is a constant for a
// reason.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "filter/alert.hpp"
#include "match/scratch.hpp"
#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/evaluate.hpp"
#include "tag/rule.hpp"

namespace wss::core {

/// Knobs for one parse+tag pass (serial or parallel).
struct PipelineOptions {
  /// Worker threads. 1 = serial; 0 = std::thread::hardware_concurrency.
  int num_threads = 1;

  /// Events per work-queue chunk. Part of the determinism contract
  /// (see file comment); identical results require identical values.
  std::size_t chunk_events = 8192;

  /// Enables the Figure 2(b) per-source map (the only
  /// expensive-by-memory part).
  bool collect_source_tallies = true;
};

/// Everything a single parse+tag pass produces.
struct PipelineResult {
  parse::SystemId system = parse::SystemId::kBlueGeneL;

  // ---- Volume (Table 2 ingredients) ----
  std::uint64_t physical_messages = 0;
  double weighted_messages = 0.0;       ///< reproduces Table 2 "Messages"
  std::uint64_t physical_bytes = 0;     ///< rendered log bytes
  double weighted_bytes = 0.0;          ///< reproduces Table 2 "Size"

  // ---- Parsing quality (Section 3.2.1 corruption modes) ----
  std::uint64_t corrupted_source_lines = 0;
  std::uint64_t invalid_timestamp_lines = 0;

  // ---- Tagging ----
  /// Alerts found by the rule engine on rendered lines, time-sorted.
  /// Category ids are rule indices (same space as ground truth).
  std::vector<filter::Alert> tagged_alerts;
  /// Weighted raw alert count per category (Table 4 "Raw").
  std::vector<double> weighted_alert_counts;
  /// Physical (unweighted) alert count per category.
  std::vector<std::uint64_t> physical_alert_counts;
  /// Engine-vs-ground-truth confusion counts.
  tag::TaggerEvaluation tagging;
  /// Categories with at least one physical alert (Table 2
  /// "Categories").
  int categories_observed = 0;

  // ---- Per-source tallies (Figure 2(b)) ----
  /// Weighted message count by parsed source name.
  std::map<std::string, double> messages_by_source;
  /// Weighted count of messages whose source was unattributable.
  double corrupted_source_weight = 0.0;
};

/// Runs the pipeline over every rendered line of `simulator`.
/// `collect_source_tallies` enables the Figure 2(b) map (it is the
/// only expensive-by-memory part).
PipelineResult run_pipeline(const sim::Simulator& simulator,
                            bool collect_source_tallies = true);

/// Same, with explicit options. num_threads is ignored here (this is
/// the serial reference); use ParallelPipeline for threaded runs.
PipelineResult run_pipeline(const sim::Simulator& simulator,
                            const PipelineOptions& options);

namespace detail {

/// Read-only state shared by every chunk of one pass. `simulator` may
/// be null for consumers that supply (event, line) pairs themselves
/// (the streaming engine); process_chunk requires it.
struct ChunkContext {
  const sim::Simulator* simulator = nullptr;
  const tag::TagEngine* engine = nullptr;  ///< const-shareable across threads
  parse::SystemId system = parse::SystemId::kBlueGeneL;
  std::size_t num_categories = 0;
  bool collect_source_tallies = true;
};

/// Initializes an empty partial for one chunk of a pass. Part of the
/// determinism contract: every accumulator starts from the same zeros
/// in batch and streaming runs.
PipelineResult make_partial(const ChunkContext& ctx);

/// Reduces ONE rendered event into the partial `r`. This is the whole
/// per-event semantics of the pipeline -- process_chunk and the online
/// stream::StreamPipeline both call it, which is what makes their
/// outputs bit-identical on the same (event, line) sequence.
/// `scratch` is the caller-owned per-thread matching scratch, reused
/// across lines so the steady-state tag path never allocates.
void process_line(const ChunkContext& ctx, const sim::SimEvent& e,
                  std::string_view line, PipelineResult& r,
                  match::MatchScratch& scratch);

/// Reduces events [begin, end) to a partial result. Pure function of
/// its arguments; safe to call concurrently for disjoint ranges with
/// distinct scratches (ParallelPipeline keeps one per worker).
PipelineResult process_chunk(const ChunkContext& ctx, std::size_t begin,
                             std::size_t end, match::MatchScratch& scratch);

/// Folds `part` into `acc`. MUST be called in chunk-index order --
/// the merge order is what the determinism guarantee hangs on.
void merge_partial(PipelineResult& acc, PipelineResult&& part);

/// Cached handles for the per-event pipeline counters. process_line
/// increments these (relaxed striped adds), so the same names track
/// the same per-event semantics in the serial, parallel, and streaming
/// paths -- which is what makes the wss_pipeline_* counters
/// thread-count- and batch/stream-invariant. `chunks` is incremented
/// by whoever performs a chunk merge (run_pipeline, ParallelPipeline,
/// StreamStudyState::merge_open_chunk).
struct PipelineCounters {
  obs::Counter& events;
  obs::Counter& bytes;
  obs::Counter& corrupted_sources;
  obs::Counter& invalid_timestamps;
  obs::Counter& alerts_tagged;
  obs::Counter& chunks;
  static PipelineCounters& get();
};

/// Final pass after all chunks are merged: categories_observed and the
/// canonical alert sort.
void finalize_result(PipelineResult& r);

}  // namespace detail

}  // namespace wss::core
