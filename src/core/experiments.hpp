// Per-experiment drivers: one function per table/figure of the paper.
//
// Benches print these; tests assert on them. Filtering-based numbers
// are computed from the ground-truth alert stream (what a perfect
// tagger extracts); tagging quality itself is measured separately in
// PipelineResult::tagging.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/study.hpp"
#include "filter/alert.hpp"
#include "stats/fit.hpp"
#include "stats/gof.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"

namespace wss::core {

// ---------------------------------------------------------------- T2
struct Table2Row {
  parse::SystemId system;
  int days = 0;
  double measured_gb = 0.0;            ///< weighted rendered bytes / 1e9
  double compressed_fraction = 0.0;    ///< wss codec size / raw size
  double rate_bytes_per_sec = 0.0;
  double messages = 0.0;               ///< weighted
  double alerts = 0.0;                 ///< weighted
  int categories = 0;
};
Table2Row table2_row(Study& study, parse::SystemId id);

// ---------------------------------------------------------------- T3
/// Raw (weighted) and filtered (simultaneous, T) alert counts by
/// H/S/I type, across all five systems.
struct Table3Data {
  double raw[3] = {0, 0, 0};
  std::uint64_t filtered[3] = {0, 0, 0};
};
Table3Data table3(Study& study);

// ---------------------------------------------------------------- T4
struct Table4Row {
  std::string category;
  filter::AlertType type = filter::AlertType::kIndeterminate;
  double raw_weighted = 0.0;
  std::uint64_t paper_raw = 0;
  std::uint64_t filtered_measured = 0;
  std::uint64_t paper_filtered = 0;
};
std::vector<Table4Row> table4_rows(Study& study, parse::SystemId id);

// ------------------------------------------------------------- T5/T6
struct SeverityRow {
  parse::Severity severity = parse::Severity::kNone;
  double messages = 0.0;  ///< weighted count among all messages
  double alerts = 0.0;    ///< weighted count among alerts
};
/// Severity distribution for one system. For Red Storm only the
/// syslog paths are counted (Table 6's scope); the TCP event-router
/// path "has no severity analog".
std::vector<SeverityRow> severity_distribution(Study& study,
                                               parse::SystemId id);

/// FP/FN rates of FATAL/FAILURE severity tagging on BG/L versus the
/// expert rules (the paper: FP 59.34%, FN 0%).
struct SeverityTaggerRates {
  double false_positive_rate = 0.0;
  double false_negative_rate = 0.0;
};
SeverityTaggerRates bgl_severity_tagging(Study& study);

// ------------------------------------------------------------ Figures
/// Fig 2(a): Liberty messages per hour (weighted), plus detected
/// regime changepoints (bucket indices).
struct Fig2aData {
  stats::TimeSeries series;
  std::vector<std::size_t> changepoints;
};
Fig2aData fig2a(Study& study);

/// Fig 2(b): per-source weighted message counts, descending, plus the
/// corrupted-source bucket.
struct Fig2bData {
  std::vector<std::pair<std::string, double>> sources;  ///< sorted desc
  double corrupted_weight = 0.0;
};
Fig2bData fig2b(Study& study);

/// Fig 3: the two correlated Liberty GM alert streams.
struct Fig3Data {
  std::vector<util::TimeUs> gm_par;
  std::vector<util::TimeUs> gm_lanai;
  double cooccur_par_to_lanai = 0.0;  ///< within 10 min
  double cooccur_lanai_to_par = 0.0;
  double peak_cross_correlation = 0.0;
};
Fig3Data fig3(Study& study);

/// Fig 4: categorized *filtered* Liberty alerts over time.
struct Fig4Point {
  util::TimeUs time = 0;
  std::uint16_t category = 0;
};
std::vector<Fig4Point> fig4(Study& study);

/// Fig 5: Thunderbird critical-ECC interarrivals (filtered) and fits.
struct Fig5Data {
  std::vector<double> gaps_seconds;
  stats::ExponentialFit exponential;
  stats::LognormalFit lognormal;
  stats::GofResult ks_exponential;
  stats::GofResult ks_lognormal;
};
Fig5Data fig5(Study& study);

/// Fig 6: log-histogram of filtered interarrival times for one system
/// (the paper contrasts bimodal BG/L with unimodal Spirit).
struct Fig6Data {
  stats::LogHistogram hist;
  std::vector<std::size_t> modes;
};
Fig6Data fig6(Study& study, parse::SystemId id);

// ------------------------------------------------------------ Helpers
/// Ground-truth alerts filtered with the simultaneous algorithm at the
/// study threshold.
std::vector<filter::Alert> filtered_alerts(Study& study, parse::SystemId id);

}  // namespace wss::core
