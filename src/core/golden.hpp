// Canonical text serializations of the paper artifacts, for the
// golden-file regression suite.
//
// Each artifact (Tables 1-6, the Figure 2/5/6 data series) has one
// producer that renders it to a canonical CSV/text form with
// round-trip double formatting (%.17g), so *any* drift in a weighted
// count, severity cross-tab, or fit parameter changes the bytes and
// fails tests/test_golden_tables.cpp. tools/update_goldens.cpp writes
// the same bytes into tests/golden/ to rebless intentional changes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/study.hpp"

namespace wss::core {

/// One golden artifact: a file name under tests/golden/ plus the
/// producer that renders its canonical text from a Study.
struct GoldenArtifact {
  std::string file;  ///< e.g. "table2.csv"
  std::string what;  ///< one-line description for test failure output
  std::function<std::string(Study&)> produce;
  /// Systems whose pipeline results / simulators this artifact reads.
  /// Empty = static data only. `wss merge` uses this to render exactly
  /// the artifacts a partial-coverage study can produce without
  /// silently recomputing uncovered systems locally.
  std::vector<parse::SystemId> needs;
};

/// The fixed study configuration the goldens are generated with. Any
/// change here changes every golden file (rebless required).
StudyOptions golden_study_options();

/// All artifacts, in stable order: Tables 1-6 (Table 4 per system),
/// then the Figure 2(a)/2(b)/5/6 data series.
const std::vector<GoldenArtifact>& golden_artifacts();

/// Renders every artifact and writes it to `dir` (created if needed).
/// Returns the number of files written; throws on I/O failure.
std::size_t write_goldens(const std::string& dir);

/// Renders the artifacts selected by `want` from an existing Study and
/// writes them to `dir` (created if needed). Returns the number of
/// files written; throws on I/O failure. write_goldens is this with a
/// fresh golden-options Study and an all-pass predicate.
std::size_t write_artifacts(
    Study& study, const std::string& dir,
    const std::function<bool(const GoldenArtifact&)>& want);

}  // namespace wss::core
