#include "core/experiments.hpp"

#include <algorithm>

#include "compress/codec.hpp"
#include "filter/simultaneous.hpp"
#include "stats/changepoint.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "tag/rulesets.hpp"
#include "tag/severity_tagger.hpp"

namespace wss::core {

namespace {

/// Number of rendered lines sampled for the compression measurement.
constexpr std::size_t kCompressionSampleLines = 20000;

}  // namespace

std::vector<filter::Alert> filtered_alerts(Study& study, parse::SystemId id) {
  // Per-segment parallel Algorithm 3.1: bit-identical to the serial
  // filter at every thread count (see filter/simultaneous.hpp).
  return filter::apply_simultaneous_parallel(
      study.simulator(id).ground_truth_alerts(), study.threshold(),
      study.options().pipeline.num_threads);
}

Table2Row table2_row(Study& study, parse::SystemId id) {
  const auto& sim = study.simulator(id);
  const auto& res = study.pipeline_result(id);
  Table2Row row;
  row.system = id;
  row.days = sim.spec().days;
  row.measured_gb = res.weighted_bytes / 1e9;
  row.rate_bytes_per_sec =
      res.weighted_bytes /
      (static_cast<double>(sim.spec().days) * 86400.0);
  row.messages = res.weighted_messages;
  for (const double w : res.weighted_alert_counts) row.alerts += w;
  row.categories = res.categories_observed;

  // Compression fraction from a sample of rendered text.
  std::string sample;
  const std::size_t n =
      std::min<std::size_t>(kCompressionSampleLines, sim.events().size());
  sample.reserve(n * 96);
  for (std::size_t i = 0; i < n; ++i) {
    sample.append(sim.line(i));
    sample.push_back('\n');
  }
  row.compressed_fraction = compress::compression_fraction(sample);
  return row;
}

Table3Data table3(Study& study) {
  Table3Data d;
  for (const auto id : parse::kAllSystems) {
    const auto cats = tag::categories_of(id);
    const auto& counts = study.pipeline_result(id).weighted_alert_counts;
    for (std::size_t c = 0; c < cats.size(); ++c) {
      d.raw[static_cast<std::size_t>(cats[c]->type)] += counts[c];
    }
    for (const filter::Alert& a : filtered_alerts(study, id)) {
      ++d.filtered[static_cast<std::size_t>(a.type)];
    }
  }
  return d;
}

std::vector<Table4Row> table4_rows(Study& study, parse::SystemId id) {
  const auto cats = tag::categories_of(id);
  const auto& counts = study.pipeline_result(id).weighted_alert_counts;

  std::vector<std::uint64_t> filtered(cats.size(), 0);
  for (const filter::Alert& a : filtered_alerts(study, id)) {
    ++filtered[a.category];
  }

  std::vector<Table4Row> rows;
  rows.reserve(cats.size());
  for (std::size_t c = 0; c < cats.size(); ++c) {
    Table4Row r;
    r.category = cats[c]->name;
    r.type = cats[c]->type;
    r.raw_weighted = counts[c];
    r.paper_raw = cats[c]->raw_count;
    r.filtered_measured = filtered[c];
    r.paper_filtered = cats[c]->filtered_count;
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<SeverityRow> severity_distribution(Study& study,
                                               parse::SystemId id) {
  const auto& sim = study.simulator(id);
  const bool rs = id == parse::SystemId::kRedStorm;

  std::map<parse::Severity, SeverityRow> acc;
  for (const sim::SimEvent& e : sim.events()) {
    if (rs) {
      // Table 6 scope: syslog paths only (the TCP event-router path
      // has no severity analog).
      const tag::LogPath p = sim.renderer().path_of(e);
      if (p != tag::LogPath::kRsSyslog && p != tag::LogPath::kRsDdn) continue;
    }
    auto& row = acc[e.severity];
    row.severity = e.severity;
    row.messages += e.weight;
    if (e.is_alert()) row.alerts += e.weight;
  }

  std::vector<SeverityRow> out;
  for (auto& [sev, row] : acc) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const SeverityRow& a, const SeverityRow& b) {
              return static_cast<int>(a.severity) > static_cast<int>(b.severity);
            });
  return out;
}

SeverityTaggerRates bgl_severity_tagging(Study& study) {
  const auto& sim = study.simulator(parse::SystemId::kBlueGeneL);
  // Weighted confusion counts: "tag FATAL/FAILURE messages as alerts".
  double tp = 0.0;
  double fp = 0.0;
  double fn = 0.0;
  for (const sim::SimEvent& e : sim.events()) {
    const bool predicted = e.severity == parse::Severity::kFatal ||
                           e.severity == parse::Severity::kFailure;
    if (predicted && e.is_alert()) {
      tp += e.weight;
    } else if (predicted && !e.is_alert()) {
      fp += e.weight;
    } else if (!predicted && e.is_alert()) {
      fn += e.weight;
    }
  }
  SeverityTaggerRates r;
  r.false_positive_rate = tp + fp > 0.0 ? fp / (tp + fp) : 0.0;
  r.false_negative_rate = tp + fn > 0.0 ? fn / (tp + fn) : 0.0;
  return r;
}

Fig2aData fig2a(Study& study) {
  const auto& sim = study.simulator(parse::SystemId::kLiberty);
  Fig2aData d{stats::TimeSeries::covering(sim.spec().start_time(),
                                          sim.spec().end_time(),
                                          util::kUsPerHour),
              {}};
  for (const sim::SimEvent& e : sim.events()) d.series.add(e.time, e.weight);

  // Changepoints over day-level aggregation (hourly is too noisy).
  std::vector<double> daily;
  const auto& b = d.series.buckets();
  for (std::size_t i = 0; i + 24 <= b.size(); i += 24) {
    double s = 0.0;
    for (std::size_t k = 0; k < 24; ++k) s += b[i + k];
    daily.push_back(s);
  }
  for (const auto& cp : stats::detect_changepoints(daily)) {
    d.changepoints.push_back(cp.index * 24);  // back to hourly index
  }
  return d;
}

Fig2bData fig2b(Study& study) {
  const auto& res = study.pipeline_result(parse::SystemId::kLiberty);
  Fig2bData d;
  d.corrupted_weight = res.corrupted_source_weight;
  d.sources.assign(res.messages_by_source.begin(),
                   res.messages_by_source.end());
  // Tie-break on name so the ordering (and the golden file built from
  // it) is fully determined.
  std::sort(d.sources.begin(), d.sources.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return d;
}

Fig3Data fig3(Study& study) {
  const auto id = parse::SystemId::kLiberty;
  const auto cats = tag::categories_of(id);
  int par = -1;
  int lanai = -1;
  for (std::size_t c = 0; c < cats.size(); ++c) {
    if (cats[c]->name == "GM_PAR") par = static_cast<int>(c);
    if (cats[c]->name == "GM_LANAI") lanai = static_cast<int>(c);
  }
  Fig3Data d;
  for (const filter::Alert& a : study.simulator(id).ground_truth_alerts()) {
    if (static_cast<int>(a.category) == par) d.gm_par.push_back(a.time);
    if (static_cast<int>(a.category) == lanai) d.gm_lanai.push_back(a.time);
  }
  const util::TimeUs window = 10 * util::kUsPerMin;
  d.cooccur_par_to_lanai =
      stats::cooccurrence_fraction(d.gm_par, d.gm_lanai, window);
  d.cooccur_lanai_to_par =
      stats::cooccurrence_fraction(d.gm_lanai, d.gm_par, window);
  const auto xc = stats::cross_correlation(d.gm_par, d.gm_lanai,
                                           util::kUsPerHour, 24);
  for (const double v : xc) {
    d.peak_cross_correlation = std::max(d.peak_cross_correlation, v);
  }
  return d;
}

std::vector<Fig4Point> fig4(Study& study) {
  std::vector<Fig4Point> out;
  for (const filter::Alert& a :
       filtered_alerts(study, parse::SystemId::kLiberty)) {
    out.push_back({a.time, a.category});
  }
  return out;
}

Fig5Data fig5(Study& study) {
  const auto id = parse::SystemId::kThunderbird;
  const auto cats = tag::categories_of(id);
  int ecc = -1;
  for (std::size_t c = 0; c < cats.size(); ++c) {
    if (cats[c]->name == "ECC") ecc = static_cast<int>(c);
  }
  std::vector<util::TimeUs> times;
  for (const filter::Alert& a : filtered_alerts(study, id)) {
    if (static_cast<int>(a.category) == ecc) times.push_back(a.time);
  }
  Fig5Data d;
  d.gaps_seconds = stats::interarrival_seconds(
      std::vector<std::int64_t>(times.begin(), times.end()));
  if (d.gaps_seconds.size() >= 8) {
    d.exponential = stats::fit_exponential(d.gaps_seconds);
    d.lognormal = stats::fit_lognormal(d.gaps_seconds);
    d.ks_exponential = stats::ks_test(
        d.gaps_seconds, [&](double x) { return d.exponential.cdf(x); });
    d.ks_lognormal = stats::ks_test(
        d.gaps_seconds, [&](double x) { return d.lognormal.cdf(x); });
  }
  return d;
}

Fig6Data fig6(Study& study, parse::SystemId id) {
  // Bins: 10^0 .. 10^7 seconds, 4 per decade (the paper plots log
  // interarrival).
  Fig6Data d{stats::LogHistogram(0.0, 7.0, 4), {}};
  std::vector<std::int64_t> times;
  for (const filter::Alert& a : filtered_alerts(study, id)) {
    times.push_back(a.time);
  }
  for (const double g : stats::interarrival_seconds(std::move(times))) {
    d.hist.add(g);
  }
  d.modes = d.hist.modes();
  return d;
}

}  // namespace wss::core
