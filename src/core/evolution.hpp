// System-evolution (phase shift) analysis.
//
// Section 3.2.1: "Log analysis is a moving target ... anything from
// software upgrades to minor configuration changes can drastically
// alter the meaning or character of the logs ... The ability to detect
// phase shifts in behavior would be a valuable tool for triggering
// relearning or for knowing which existing behavioral model to apply."
//
// This module segments a system's message stream into epochs at the
// detected rate changepoints (Figure 2(a)'s shifts), characterizes
// each epoch, and quantifies *model drift* across epochs -- the reason
// "learned patterns and behaviors may not be applicable for very
// long."
#pragma once

#include <string>
#include <vector>

#include "core/study.hpp"
#include "util/time.hpp"

namespace wss::core {

/// One behavioural epoch of a system's log.
struct Epoch {
  util::TimeUs begin = 0;
  util::TimeUs end = 0;
  double mean_hourly_messages = 0.0;  ///< weighted
  double alert_fraction = 0.0;        ///< weighted alerts / messages
  /// Weighted message share per chatter kind + alert category (a
  /// coarse behavioural fingerprint; indices are internal but stable
  /// within one analysis).
  std::vector<double> fingerprint;
};

/// Drift between two adjacent epochs.
struct EpochDrift {
  std::size_t from = 0;
  std::size_t to = 0;
  double rate_ratio = 0.0;         ///< mean rate after / before
  double fingerprint_l1 = 0.0;     ///< L1 distance of the two shares
};

/// Result of the evolution analysis.
struct EvolutionAnalysis {
  std::vector<Epoch> epochs;
  std::vector<EpochDrift> drifts;

  /// Largest adjacent-epoch fingerprint distance (0 = stationary).
  double max_drift() const;
};

/// Segments `system`'s stream at daily-rate changepoints and
/// characterizes the epochs. The fingerprint vector spans alert
/// categories followed by chatter template kinds.
EvolutionAnalysis analyze_evolution(Study& study, parse::SystemId system);

/// Renders the analysis as text (epoch table + drift summary).
std::string render_evolution(const EvolutionAnalysis& a);

}  // namespace wss::core
