#include "core/report.hpp"

#include "sim/spec.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wss::core {

namespace {

std::string fmt_count(double v) {
  return util::with_commas(static_cast<std::int64_t>(v + 0.5));
}

}  // namespace

std::string render_table1() {
  util::Table t({"System", "Owner", "Vendor", "Rank", "Procs", "Memory (GB)",
                 "Interconnect"});
  t.set_title("Table 1. System characteristics at the time of collection.");
  for (const auto id : parse::kAllSystems) {
    const auto& s = sim::system_spec(id);
    t.add_row({std::string(parse::system_name(id)), std::string(s.owner),
               std::string(s.vendor), std::to_string(s.top500_rank),
               util::with_commas(static_cast<std::int64_t>(s.procs)),
               util::with_commas(static_cast<std::int64_t>(s.memory_gb)),
               std::string(s.interconnect)});
  }
  return t.render();
}

std::string render_table2(Study& study) {
  util::Table t({"System", "Days", "Size(GB) meas", "Size(GB) paper",
                 "Compr. frac", "Rate(B/s) meas", "Rate(B/s) paper",
                 "Messages meas", "Messages paper", "Alerts meas",
                 "Alerts paper", "Cat."});
  t.set_title(
      "Table 2. Log characteristics (measured = weighted simulation; "
      "sizes depend on rendered line lengths, counts are calibrated).");
  for (const auto id : parse::kAllSystems) {
    const auto row = table2_row(study, id);
    const auto& s = sim::system_spec(id);
    t.add_row({std::string(parse::system_name(id)), std::to_string(row.days),
               util::format("%.3f", row.measured_gb),
               util::format("%.3f", s.size_gb),
               util::format("%.3f", row.compressed_fraction),
               util::format("%.1f", row.rate_bytes_per_sec),
               util::format("%.1f", s.rate_bytes_per_sec),
               fmt_count(row.messages),
               util::with_commas(static_cast<std::int64_t>(s.messages)),
               fmt_count(row.alerts),
               util::with_commas(static_cast<std::int64_t>(s.alerts)),
               std::to_string(row.categories)});
  }
  return t.render();
}

std::string render_table3(Study& study) {
  const auto d = table3(study);
  // Paper values for comparison (Table 3).
  constexpr double kPaperRaw[3] = {174586516, 144899, 3350044};
  constexpr std::uint64_t kPaperFiltered[3] = {1999, 6814, 1832};

  double raw_total = 0;
  std::uint64_t filt_total = 0;
  for (int i = 0; i < 3; ++i) {
    raw_total += d.raw[i];
    filt_total += d.filtered[i];
  }

  util::Table t({"Type", "Raw meas", "Raw %", "Raw paper", "Filt meas",
                 "Filt %", "Filt paper"});
  t.set_title("Table 3. Alert type distribution before and after filtering.");
  for (int i = 0; i < 3; ++i) {
    const auto type = static_cast<filter::AlertType>(i);
    t.add_row({std::string(filter::alert_type_name(type)), fmt_count(d.raw[i]),
               util::format("%.2f", 100.0 * d.raw[i] / raw_total),
               fmt_count(kPaperRaw[i]),
               util::with_commas(static_cast<std::int64_t>(d.filtered[i])),
               util::format("%.2f", 100.0 * static_cast<double>(d.filtered[i]) /
                                        static_cast<double>(filt_total)),
               util::with_commas(static_cast<std::int64_t>(kPaperFiltered[i]))});
  }
  return t.render();
}

std::string render_table4(Study& study, parse::SystemId id) {
  util::Table t({"Type/Cat.", "Raw meas", "Raw paper", "Filt meas",
                 "Filt paper"});
  t.set_title(util::format("Table 4 (%s). Raw and filtered alert counts.",
                           std::string(parse::system_name(id)).c_str()));
  double raw_total = 0;
  std::uint64_t filt_total = 0;
  for (const auto& r : table4_rows(study, id)) {
    raw_total += r.raw_weighted;
    filt_total += r.filtered_measured;
    t.add_row({util::format("%c / %s", filter::alert_type_letter(r.type),
                            r.category.c_str()),
               fmt_count(r.raw_weighted),
               util::with_commas(static_cast<std::int64_t>(r.paper_raw)),
               util::with_commas(static_cast<std::int64_t>(r.filtered_measured)),
               util::with_commas(static_cast<std::int64_t>(r.paper_filtered))});
  }
  t.add_separator();
  t.add_row({"total", fmt_count(raw_total), "",
             util::with_commas(static_cast<std::int64_t>(filt_total)), ""});
  return t.render();
}

namespace {

std::string render_severity_table(Study& study, parse::SystemId id,
                                  const char* title, bool syslog_names) {
  const auto rows = severity_distribution(study, id);
  double msg_total = 0;
  double alert_total = 0;
  for (const auto& r : rows) {
    msg_total += r.messages;
    alert_total += r.alerts;
  }
  util::Table t({"Severity", "Messages", "Msg %", "Alerts", "Alert %"});
  t.set_title(title);
  for (const auto& r : rows) {
    const auto name = syslog_names ? parse::severity_syslog_name(r.severity)
                                   : parse::severity_bgl_name(r.severity);
    t.add_row({std::string(name), fmt_count(r.messages),
               util::format("%.2f", 100.0 * r.messages / msg_total),
               fmt_count(r.alerts),
               util::format("%.2f", alert_total > 0
                                        ? 100.0 * r.alerts / alert_total
                                        : 0.0)});
  }
  return t.render();
}

}  // namespace

std::string render_table5(Study& study) {
  std::string out = render_severity_table(
      study, parse::SystemId::kBlueGeneL,
      "Table 5. BG/L severity distribution (messages vs expert-tagged "
      "alerts).",
      /*syslog_names=*/false);
  const auto rates = bgl_severity_tagging(study);
  out += util::format(
      "Severity tagging (FATAL/FAILURE => alert): FP rate %.2f%% "
      "(paper: 59.34%%), FN rate %.2f%% (paper: 0%%)\n",
      100.0 * rates.false_positive_rate, 100.0 * rates.false_negative_rate);
  return out;
}

std::string render_table6(Study& study) {
  return render_severity_table(
      study, parse::SystemId::kRedStorm,
      "Table 6. Red Storm syslog severity distribution (syslog paths "
      "only; the TCP RAS path has no severity analog).",
      /*syslog_names=*/true);
}

}  // namespace wss::core
