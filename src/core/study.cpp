#include "core/study.hpp"

namespace wss::core {

Study::Study(StudyOptions opts) : opts_(opts) {}

const sim::Simulator& Study::simulator(parse::SystemId id) {
  auto& slot = sims_[static_cast<std::size_t>(id)];
  if (!slot) slot = std::make_unique<sim::Simulator>(id, opts_.sim);
  return *slot;
}

const PipelineResult& Study::pipeline_result(parse::SystemId id) {
  auto& slot = results_[static_cast<std::size_t>(id)];
  if (!slot) {
    slot = std::make_unique<PipelineResult>(run_pipeline(simulator(id)));
  }
  return *slot;
}

}  // namespace wss::core
