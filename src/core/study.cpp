#include "core/study.hpp"

#include <stdexcept>

#include "core/parallel.hpp"

namespace wss::core {

Study::Study(StudyOptions opts) : opts_(opts) {}

const sim::Simulator& Study::simulator(parse::SystemId id) {
  const auto i = static_cast<std::size_t>(id);
  std::call_once(sim_once_[i], [&] {
    sims_[i] = std::make_unique<sim::Simulator>(id, opts_.sim);
  });
  return *sims_[i];
}

const PipelineResult& Study::ensure_result(parse::SystemId id, bool parallel) {
  const auto i = static_cast<std::size_t>(id);
  std::call_once(result_once_[i], [&] {
    const sim::Simulator& sim = simulator(id);
    if (parallel) {
      results_[i] = std::make_unique<PipelineResult>(
          ParallelPipeline(opts_.pipeline).run(sim));
    } else {
      results_[i] =
          std::make_unique<PipelineResult>(run_pipeline(sim, opts_.pipeline));
    }
  });
  return *results_[i];
}

const PipelineResult& Study::pipeline_result(parse::SystemId id) {
  return ensure_result(id, /*parallel=*/false);
}

const PipelineResult& Study::parallel_pipeline_result(parse::SystemId id) {
  return ensure_result(id, /*parallel=*/true);
}

void Study::adopt_result(parse::SystemId id, PipelineResult&& result) {
  const auto i = static_cast<std::size_t>(id);
  bool adopted = false;
  std::call_once(result_once_[i], [&] {
    results_[i] = std::make_unique<PipelineResult>(std::move(result));
    adopted = true;
  });
  if (!adopted) {
    throw std::logic_error("Study::adopt_result: result already computed");
  }
}

}  // namespace wss::core
