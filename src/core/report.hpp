// Renders each reproduced table as aligned text, paper value next to
// measured value, for the bench binaries and examples.
#pragma once

#include <string>

#include "core/experiments.hpp"
#include "core/study.hpp"

namespace wss::core {

/// Table 1: system characteristics (static data).
std::string render_table1();

/// Table 2: log characteristics, paper vs measured.
std::string render_table2(Study& study);

/// Table 3: alert type distribution, raw vs filtered.
std::string render_table3(Study& study);

/// Table 4: per-category raw/filtered for one system.
std::string render_table4(Study& study, parse::SystemId id);

/// Table 5: BG/L severity distribution + severity-tagging FP rate.
std::string render_table5(Study& study);

/// Table 6: Red Storm syslog severity distribution.
std::string render_table6(Study& study);

}  // namespace wss::core
