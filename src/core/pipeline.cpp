#include "core/pipeline.hpp"

#include "parse/dispatch.hpp"
#include "tag/rulesets.hpp"

namespace wss::core {

PipelineResult run_pipeline(const sim::Simulator& simulator,
                            bool collect_source_tallies) {
  const parse::SystemId system = simulator.spec().id;
  const tag::RuleSet rules = tag::build_ruleset(system);
  const tag::TagEngine engine(rules);
  const auto cats = tag::categories_of(system);

  PipelineResult r;
  r.system = system;
  r.weighted_alert_counts.assign(cats.size(), 0.0);
  std::vector<std::uint64_t> physical_counts(cats.size(), 0);

  const auto& events = simulator.events();
  const int base_year = simulator.spec().start_date.year;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::SimEvent& e = events[i];
    const std::string line = simulator.renderer().render(e, i);

    ++r.physical_messages;
    r.weighted_messages += e.weight;
    r.physical_bytes += line.size() + 1;  // trailing newline on disk
    r.weighted_bytes += e.weight * static_cast<double>(line.size() + 1);

    // Parse. The year hint follows the event's own year; a real reader
    // would advance it at log rollover boundaries.
    const parse::LogRecord rec =
        parse::parse_line(system, line, util::to_civil(e.time).year);
    (void)base_year;
    if (rec.source_corrupted) ++r.corrupted_source_lines;
    if (!rec.timestamp_valid) ++r.invalid_timestamp_lines;

    // Tag.
    const auto tagged = engine.tag(rec);
    r.tagging.add(tagged.has_value(), e.is_alert());
    if (tagged) {
      filter::Alert a;
      // Trust the parsed timestamp when valid; otherwise fall back to
      // stream position (ground-truth time), as an operator reading a
      // sequential log effectively does.
      a.time = rec.timestamp_valid ? rec.time : e.time;
      a.source = e.source;
      a.category = tagged->category;
      a.type = tagged->type;
      a.failure_id = e.failure_id;  // ground truth rides along for scoring
      a.weight = e.weight;
      r.tagged_alerts.push_back(a);
      r.weighted_alert_counts[tagged->category] += e.weight;
      ++physical_counts[tagged->category];
    }

    if (collect_source_tallies) {
      if (rec.source_corrupted) {
        r.corrupted_source_weight += e.weight;
      } else {
        r.messages_by_source[rec.source] += e.weight;
      }
    }
  }

  for (const auto c : physical_counts) {
    if (c > 0) ++r.categories_observed;
  }
  // syslog stamps have 1 s granularity, so parsed times can tie or
  // regress within a second relative to event order; restore order.
  filter::sort_alerts(r.tagged_alerts);
  return r;
}

}  // namespace wss::core
