#include "core/pipeline.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "parse/dispatch.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"

namespace wss::core {

namespace detail {

PipelineCounters& PipelineCounters::get() {
  static PipelineCounters c{
      obs::registry().counter("wss_pipeline_events_total"),
      obs::registry().counter("wss_pipeline_bytes_total"),
      obs::registry().counter("wss_pipeline_corrupted_source_lines_total"),
      obs::registry().counter("wss_pipeline_invalid_timestamp_lines_total"),
      obs::registry().counter("wss_pipeline_alerts_tagged_total"),
      obs::registry().counter("wss_pipeline_chunks_total"),
  };
  return c;
}

PipelineResult make_partial(const ChunkContext& ctx) {
  PipelineResult r;
  r.system = ctx.system;
  r.weighted_alert_counts.assign(ctx.num_categories, 0.0);
  r.physical_alert_counts.assign(ctx.num_categories, 0);
  return r;
}

void process_line(const ChunkContext& ctx, const sim::SimEvent& e,
                  std::string_view line, PipelineResult& r,
                  match::MatchScratch& scratch) {
  PipelineCounters& obs = PipelineCounters::get();
  obs.events.inc();
  obs.bytes.inc(line.size() + 1);
  ++r.physical_messages;
  r.weighted_messages += e.weight;
  r.physical_bytes += line.size() + 1;  // trailing newline on disk
  r.weighted_bytes += e.weight * static_cast<double>(line.size() + 1);

  // Parse. The year hint follows the event's own year; a real reader
  // would advance it at log rollover boundaries.
  const parse::LogRecord rec =
      parse::parse_line(ctx.system, line, util::to_civil(e.time).year);
  if (rec.source_corrupted) {
    ++r.corrupted_source_lines;
    obs.corrupted_sources.inc();
  }
  if (!rec.timestamp_valid) {
    ++r.invalid_timestamp_lines;
    obs.invalid_timestamps.inc();
  }

  // Tag.
  const auto tagged = ctx.engine->tag(rec, scratch);
  r.tagging.add(tagged.has_value(), e.is_alert());
  if (tagged) {
    obs.alerts_tagged.inc();
    filter::Alert a;
    // Trust the parsed timestamp when valid; otherwise fall back to
    // stream position (ground-truth time), as an operator reading a
    // sequential log effectively does.
    a.time = rec.timestamp_valid ? rec.time : e.time;
    a.source = e.source;
    a.category = tagged->category;
    a.type = tagged->type;
    a.failure_id = e.failure_id;  // ground truth rides along for scoring
    a.weight = e.weight;
    r.tagged_alerts.push_back(a);
    r.weighted_alert_counts[tagged->category] += e.weight;
    ++r.physical_alert_counts[tagged->category];
  }

  if (ctx.collect_source_tallies) {
    if (rec.source_corrupted) {
      r.corrupted_source_weight += e.weight;
    } else {
      r.messages_by_source[rec.source] += e.weight;
    }
  }
}

PipelineResult process_chunk(const ChunkContext& ctx, std::size_t begin,
                             std::size_t end, match::MatchScratch& scratch) {
  const sim::Simulator& simulator = *ctx.simulator;
  PipelineResult r = make_partial(ctx);
  const auto& events = simulator.events();
  for (std::size_t i = begin; i < end; ++i) {
    process_line(ctx, events[i], simulator.renderer().render(events[i], i), r,
                 scratch);
  }
  return r;
}

void merge_partial(PipelineResult& acc, PipelineResult&& part) {
  if (acc.weighted_alert_counts.empty()) {
    acc.system = part.system;
    acc.weighted_alert_counts.assign(part.weighted_alert_counts.size(), 0.0);
    acc.physical_alert_counts.assign(part.physical_alert_counts.size(), 0);
  }

  acc.physical_messages += part.physical_messages;
  acc.weighted_messages += part.weighted_messages;
  acc.physical_bytes += part.physical_bytes;
  acc.weighted_bytes += part.weighted_bytes;
  acc.corrupted_source_lines += part.corrupted_source_lines;
  acc.invalid_timestamp_lines += part.invalid_timestamp_lines;

  acc.tagged_alerts.insert(acc.tagged_alerts.end(),
                           std::make_move_iterator(part.tagged_alerts.begin()),
                           std::make_move_iterator(part.tagged_alerts.end()));
  for (std::size_t c = 0; c < part.weighted_alert_counts.size(); ++c) {
    acc.weighted_alert_counts[c] += part.weighted_alert_counts[c];
    acc.physical_alert_counts[c] += part.physical_alert_counts[c];
  }

  acc.tagging.add(true, true, part.tagging.true_positives);
  acc.tagging.add(true, false, part.tagging.false_positives);
  acc.tagging.add(false, false, part.tagging.true_negatives);
  acc.tagging.add(false, true, part.tagging.false_negatives);

  // std::map iterates keys in sorted order, so for any one source the
  // per-chunk partials are added in chunk order -- the same FP
  // accumulation order at every thread count.
  for (auto& [source, weight] : part.messages_by_source) {
    acc.messages_by_source[source] += weight;
  }
  acc.corrupted_source_weight += part.corrupted_source_weight;
}

void finalize_result(PipelineResult& r) {
  r.categories_observed = 0;
  for (const auto c : r.physical_alert_counts) {
    if (c > 0) ++r.categories_observed;
  }
  // syslog stamps have 1 s granularity, so parsed times can tie or
  // regress within a second relative to event order; restore order.
  filter::sort_alerts(r.tagged_alerts);
}

}  // namespace detail

PipelineResult run_pipeline(const sim::Simulator& simulator,
                            const PipelineOptions& options) {
  const parse::SystemId system = simulator.spec().id;
  const tag::RuleSet rules = tag::build_ruleset(system);
  const tag::TagEngine engine(rules);

  detail::ChunkContext ctx;
  ctx.simulator = &simulator;
  ctx.engine = &engine;
  ctx.system = system;
  ctx.num_categories = tag::categories_of(system).size();
  ctx.collect_source_tallies = options.collect_source_tallies;

  const std::size_t n = simulator.events().size();
  const std::size_t chunk = std::max<std::size_t>(options.chunk_events, 1);

  PipelineResult r;
  r.system = system;
  r.weighted_alert_counts.assign(ctx.num_categories, 0.0);
  r.physical_alert_counts.assign(ctx.num_categories, 0);
  match::MatchScratch scratch;  // reused across every line of the pass
  tag::TagMetricsFlusher flusher;
  obs::Counter& chunks = detail::PipelineCounters::get().chunks;
  {
    obs::Span pass("pipeline_serial");
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      detail::merge_partial(r, detail::process_chunk(
                                   ctx, begin, std::min(begin + chunk, n),
                                   scratch));
      chunks.inc();
      flusher.flush(scratch);
    }
  }
  {
    obs::Span fin("finalize");
    detail::finalize_result(r);
  }
  return r;
}

PipelineResult run_pipeline(const sim::Simulator& simulator,
                            bool collect_source_tallies) {
  PipelineOptions options;
  options.collect_source_tallies = collect_source_tallies;
  return run_pipeline(simulator, options);
}

}  // namespace wss::core
