// A bounded multi-producer multi-consumer work queue.
//
// The parallel pipeline's work-distribution channel: producers block
// when the queue is full (backpressure), consumers block when it is
// empty, and close() lets consumers drain remaining items and then
// observe end-of-stream. Synchronization is one mutex + two condition
// variables around a ring buffer; this is *not* on the per-event hot
// path -- one pop covers a whole chunk of PipelineOptions::chunk_events
// events, so the lock is taken a few hundred times per run, total.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace wss::core {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` must be >= 1; pushes beyond it block until a pop.
  explicit MpmcQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while full. Returns false (and drops the item) if the
  /// queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
    if (closed_) return false;
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed AND
  /// drained -- items pushed before close() are always delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: blocked producers give up, consumers drain what
  /// remains and then see end-of-stream.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  std::vector<T> ring_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace wss::core
