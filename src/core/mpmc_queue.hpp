// A bounded multi-producer multi-consumer work queue.
//
// One implementation serves two clients with different backpressure
// policies. The parallel pipeline uses the blocking push(): producers
// wait when the queue is full, consumers wait when it is empty, and
// close() lets consumers drain remaining items and then observe
// end-of-stream. The streaming ingest ring (stream::IngestRing) adds
// the lossy alternative push_evicting(): never block, evict the oldest
// item to make room, and report exactly how many were evicted so the
// caller can account for every drop.
//
// Capacity must be a power of two: the ring index is computed with a
// mask instead of a modulo, and an accidental capacity like 1000 (that
// silently wastes the rounding) is rejected loudly at construction.
// Synchronization is one mutex + two condition variables around the
// ring; for the pipeline this is *not* on the per-event hot path --
// one pop covers a whole chunk of PipelineOptions::chunk_events
// events, so the lock is taken a few hundred times per run, total.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wss::core {

template <typename T>
class MpmcQueue {
 public:
  /// Returned by push_evicting when the queue was closed.
  static constexpr std::size_t kClosed =
      std::numeric_limits<std::size_t>::max();

  /// Smallest power of two >= n (and >= 1). Use to derive a valid
  /// capacity from a size that is merely a scale hint.
  static constexpr std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  /// `capacity` must be a power of two >= 1; pushes beyond it block
  /// (push) or evict (push_evicting). Throws std::invalid_argument on
  /// zero or non-power-of-two capacities.
  explicit MpmcQueue(std::size_t capacity)
      : capacity_(capacity), mask_(capacity - 1) {
    if (capacity == 0 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument(
          "MpmcQueue: capacity must be a power of two >= 1");
    }
    ring_.resize(capacity_);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while full. Returns false (and drops the item) if the
  /// queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
    if (closed_) return false;
    ring_[(head_ + size_) & mask_] = std::move(item);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-evicting bulk push: admits items[from..to) into the queue
  /// until it is full and returns how many were accepted (0 when
  /// full). Never blocks and never evicts -- admission happens under
  /// the queue's own lock, so concurrent producers cannot both observe
  /// "one slot left" and overfill (the race a has-room probe followed
  /// by a separate push would reintroduce). A closed queue discards
  /// the remainder and reports it accepted: the stream is over and
  /// retrying is pointless, which matches push()'s drop-on-closed.
  ///
  /// Admission SWAPS rather than moves: the caller's slot receives
  /// whatever the ring slot held -- for T with heap payloads (e.g. a
  /// StreamItem's line string) that is a retired buffer a pop_many_swap
  /// consumer parked there, so a producer that reuses its batch
  /// elements in place gets its allocations back instead of paying a
  /// malloc per item and leaving a cross-thread free to the consumer.
  std::size_t try_push_many(std::vector<T>& items, std::size_t from,
                            std::size_t to) {
    std::size_t n = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        for (std::size_t i = from; i < to; ++i) items[i] = T();
        return to - from;
      }
      n = std::min(capacity_ - size_, to - from);
      for (std::size_t i = 0; i < n; ++i) {
        using std::swap;
        swap(ring_[(head_ + size_) & mask_], items[from + i]);
        ++size_;
      }
    }
    if (n > 0) not_empty_.notify_one();
    return n;
  }

  std::size_t try_push_many(std::vector<T>& items, std::size_t from) {
    return try_push_many(items, from, items.size());
  }

  /// Bulk push_evicting: every item in items[from..to) enters the
  /// queue; the oldest residents are evicted to make room (a batch
  /// larger than the capacity evicts its own head -- still
  /// drop-oldest). Returns the eviction count (kClosed when closed;
  /// nothing is pushed or evicted). One lock acquisition per batch.
  /// Swaps on admission, like try_push_many.
  std::size_t push_evicting_many(std::vector<T>& items, std::size_t from,
                                 std::size_t to) {
    std::size_t evicted = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return kClosed;
      for (std::size_t i = from; i < to; ++i) {
        while (size_ >= capacity_) {
          ring_[head_] = T();
          head_ = (head_ + 1) & mask_;
          --size_;
          ++evicted;
        }
        using std::swap;
        swap(ring_[(head_ + size_) & mask_], items[i]);
        ++size_;
      }
      evicted_total_ += evicted;
    }
    not_empty_.notify_one();
    return evicted;
  }

  std::size_t push_evicting_many(std::vector<T>& items, std::size_t from) {
    return push_evicting_many(items, from, items.size());
  }

  /// Never blocks: while the queue is full, evicts the oldest item to
  /// make room (drop-oldest backpressure). Returns the number of items
  /// evicted (0 when there was room), or kClosed if the queue was
  /// closed (the item is dropped and nothing is evicted). Eviction and
  /// insertion happen under one lock, and evicted_total() is updated
  /// under that same lock -- so the running total is exact at every
  /// instant, even while other producers push and consumers pop
  /// concurrently (a caller-side atomic added after return would lag
  /// the queue's real state between the unlock and the add).
  std::size_t push_evicting(T item) {
    std::size_t evicted = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return kClosed;
      while (size_ >= capacity_) {
        ring_[head_] = T();  // release the oldest item's resources
        head_ = (head_ + 1) & mask_;
        --size_;
        ++evicted;
      }
      evicted_total_ += evicted;
      ring_[(head_ + size_) & mask_] = std::move(item);
      ++size_;
    }
    not_empty_.notify_one();
    return evicted;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed AND
  /// drained -- items pushed before close() are always delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Bulk pop: blocks while empty, then appends up to `max` items to
  /// `out` under one lock. Returns the count; 0 means closed AND
  /// drained (the end-of-stream signal). One wait + one lock per
  /// batch amortizes the queue synchronization the same way the batch
  /// pipeline's chunking does.
  std::size_t pop_many(std::vector<T>& out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    const std::size_t n = std::min(size_, max);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) & mask_;
      --size_;
    }
    lock.unlock();
    // A batch frees many slots at once: wake every blocked producer.
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Recycling bulk pop: blocks while empty, then swaps up to `max`
  /// items into out[0..n) under one lock (out is grown to `max` first
  /// if needed; elements beyond n are untouched). Returns n; 0 means
  /// closed AND drained. The consumer's previously-processed elements
  /// land in the vacated ring slots, where the next try_push_many /
  /// push_evicting_many hands their heap buffers back to a producer --
  /// the other half of the allocation-recycling loop. A consumer that
  /// keeps one vector alive across calls therefore reaches a steady
  /// state with no per-item allocation on either side of the ring.
  std::size_t pop_many_swap(std::vector<T>& out, std::size_t max) {
    if (out.size() < max) out.resize(max);
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    const std::size_t n = std::min(size_, max);
    for (std::size_t i = 0; i < n; ++i) {
      using std::swap;
      swap(out[i], ring_[head_]);
      head_ = (head_ + 1) & mask_;
      --size_;
    }
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Non-blocking pop: nullopt when the queue is currently empty
  /// (which does NOT imply end-of-stream -- check via pop() or after
  /// observing close() out of band).
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (size_ == 0) return std::nullopt;
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: blocked producers give up, consumers drain what
  /// remains and then see end-of-stream.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  /// Instantaneous occupancy (a snapshot; racy by nature).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  /// Exact number of items ever evicted by push_evicting. Maintained
  /// under the queue lock, so (items popped) + evicted_total() +
  /// (items resident) == items pushed holds at any observation point.
  std::uint64_t evicted_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evicted_total_;
  }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> ring_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t evicted_total_ = 0;
  bool closed_ = false;
};

}  // namespace wss::core
