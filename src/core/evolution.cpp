#include "core/evolution.hpp"

#include <algorithm>
#include <cmath>

#include "sim/chatter.hpp"
#include "stats/changepoint.hpp"
#include "stats/timeseries.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wss::core {

double EvolutionAnalysis::max_drift() const {
  double m = 0.0;
  for (const auto& d : drifts) m = std::max(m, d.fingerprint_l1);
  return m;
}

EvolutionAnalysis analyze_evolution(Study& study, parse::SystemId system) {
  const auto& sim = study.simulator(system);
  const auto& spec = sim.spec();
  const std::size_t n_cats = tag::categories_of(system).size();
  const std::size_t n_kinds = sim::chatter_templates(system).size();

  // Daily weighted message counts drive the segmentation.
  auto daily = stats::TimeSeries::covering(spec.start_time(), spec.end_time(),
                                           util::kUsPerDay);
  for (const auto& e : sim.events()) daily.add(e.time, e.weight);

  stats::ChangePointOptions cp_opts;
  cp_opts.min_segment = 14;  // two weeks of data per epoch minimum
  const auto cps = stats::detect_changepoints(daily.buckets(), cp_opts);

  // Epoch boundaries in time.
  std::vector<util::TimeUs> bounds = {spec.start_time()};
  for (const auto& cp : cps) {
    bounds.push_back(spec.start_time() +
                     static_cast<util::TimeUs>(cp.index) * util::kUsPerDay);
  }
  bounds.push_back(spec.end_time());

  EvolutionAnalysis out;
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    Epoch ep;
    ep.begin = bounds[b];
    ep.end = bounds[b + 1];
    ep.fingerprint.assign(n_cats + n_kinds, 0.0);
    out.epochs.push_back(ep);
  }

  // Single pass: accumulate weighted volume and fingerprints.
  std::vector<double> messages(out.epochs.size(), 0.0);
  std::vector<double> alerts(out.epochs.size(), 0.0);
  for (const auto& e : sim.events()) {
    // Locate the epoch (few epochs; linear scan is fine).
    std::size_t idx = out.epochs.size() - 1;
    for (std::size_t i = 0; i < out.epochs.size(); ++i) {
      if (e.time < out.epochs[i].end) {
        idx = i;
        break;
      }
    }
    messages[idx] += e.weight;
    if (e.is_alert()) {
      alerts[idx] += e.weight;
      out.epochs[idx].fingerprint[static_cast<std::size_t>(e.category)] +=
          e.weight;
    } else {
      out.epochs[idx].fingerprint[n_cats + e.chatter_kind] += e.weight;
    }
  }
  for (std::size_t i = 0; i < out.epochs.size(); ++i) {
    Epoch& ep = out.epochs[i];
    const double hours =
        static_cast<double>(ep.end - ep.begin) / static_cast<double>(
                                                     util::kUsPerHour);
    ep.mean_hourly_messages = hours > 0.0 ? messages[i] / hours : 0.0;
    ep.alert_fraction = messages[i] > 0.0 ? alerts[i] / messages[i] : 0.0;
    // Normalize the fingerprint to shares.
    if (messages[i] > 0.0) {
      for (auto& f : ep.fingerprint) f /= messages[i];
    }
  }

  for (std::size_t i = 1; i < out.epochs.size(); ++i) {
    EpochDrift d;
    d.from = i - 1;
    d.to = i;
    const Epoch& a = out.epochs[i - 1];
    const Epoch& b2 = out.epochs[i];
    d.rate_ratio = a.mean_hourly_messages > 0.0
                       ? b2.mean_hourly_messages / a.mean_hourly_messages
                       : 0.0;
    for (std::size_t k = 0; k < a.fingerprint.size(); ++k) {
      d.fingerprint_l1 += std::fabs(a.fingerprint[k] - b2.fingerprint[k]);
    }
    out.drifts.push_back(d);
  }
  return out;
}

std::string render_evolution(const EvolutionAnalysis& a) {
  util::Table t({"Epoch", "From", "To", "Msgs/hour", "Alert frac"});
  t.set_title("Behavioural epochs (segmented at rate changepoints):");
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const Epoch& e = a.epochs[i];
    t.add_row({std::to_string(i), util::format_iso(e.begin),
               util::format_iso(e.end),
               util::format("%.1f", e.mean_hourly_messages),
               util::format("%.5f", e.alert_fraction)});
  }
  std::string out = t.render();
  for (const auto& d : a.drifts) {
    out += util::format(
        "drift %zu->%zu: rate x%.2f, fingerprint L1 %.3f\n", d.from, d.to,
        d.rate_ratio, d.fingerprint_l1);
  }
  return out;
}

}  // namespace wss::core
