// Study: the top-level object of the library.
//
// A Study owns one Simulator per system (built lazily) plus the
// pipeline results computed from rendered lines, and is what examples
// and benches instantiate. Typical use:
//
//   wss::core::Study study;                       // default options
//   const auto& sim = study.simulator(SystemId::kLiberty);
//   const auto& res = study.pipeline_result(SystemId::kLiberty);
//
#pragma once

#include <array>
#include <memory>

#include "core/pipeline.hpp"
#include "sim/generator.hpp"

namespace wss::core {

/// Study-wide options.
struct StudyOptions {
  sim::SimOptions sim;

  /// Smaller, test-friendly volumes (a full run takes seconds; tests
  /// should take milliseconds).
  static StudyOptions small() {
    StudyOptions o;
    o.sim.category_cap = 4000;
    o.sim.chatter_events = 20000;
    return o;
  }
};

/// Lazily builds and caches the per-system simulators and pipeline
/// results.
class Study {
 public:
  explicit Study(StudyOptions opts = {});

  const StudyOptions& options() const { return opts_; }

  /// The simulator for one system (built on first use).
  const sim::Simulator& simulator(parse::SystemId id);

  /// The full parse->tag pipeline result for one system (cached).
  const PipelineResult& pipeline_result(parse::SystemId id);

  /// The filtering threshold T (paper value: 5 s).
  util::TimeUs threshold() const { return opts_.sim.threshold_us; }

 private:
  StudyOptions opts_;
  std::array<std::unique_ptr<sim::Simulator>, parse::kNumSystems> sims_;
  std::array<std::unique_ptr<PipelineResult>, parse::kNumSystems> results_;
};

}  // namespace wss::core
