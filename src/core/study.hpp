// Study: the top-level object of the library.
//
// A Study owns one Simulator per system (built lazily) plus the
// pipeline results computed from rendered lines, and is what examples
// and benches instantiate. Typical use:
//
//   wss::core::Study study;                       // default options
//   const auto& sim = study.simulator(SystemId::kLiberty);
//   const auto& res = study.pipeline_result(SystemId::kLiberty);
//
// Every accessor is thread-safe: the lazy caches are guarded by
// per-system std::once_flag, so concurrent first calls build a
// simulator or result exactly once and everyone gets the same object
// (tests/test_core_study_concurrent.cpp hammers this). Serial and
// parallel pipeline execution are bit-identical (see
// core/parallel.hpp), so both entry points share one result cache.
#pragma once

#include <array>
#include <memory>
#include <mutex>

#include "core/pipeline.hpp"
#include "sim/generator.hpp"

namespace wss::core {

/// Study-wide options.
struct StudyOptions {
  sim::SimOptions sim;

  /// How pipeline results are computed (thread count, chunk size).
  /// Results do not depend on num_threads -- only wall-clock does.
  PipelineOptions pipeline;

  /// Smaller, test-friendly volumes (a full run takes seconds; tests
  /// should take milliseconds).
  static StudyOptions small() {
    StudyOptions o;
    o.sim.category_cap = 4000;
    o.sim.chatter_events = 20000;
    return o;
  }
};

/// Lazily builds and caches the per-system simulators and pipeline
/// results. Thread-safe; not copyable or movable (the once_flags pin
/// it in place).
class Study {
 public:
  explicit Study(StudyOptions opts = {});

  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  const StudyOptions& options() const { return opts_; }

  /// The simulator for one system (built on first use).
  const sim::Simulator& simulator(parse::SystemId id);

  /// The full parse->tag pipeline result for one system, computed
  /// serially on first use (cached).
  const PipelineResult& pipeline_result(parse::SystemId id);

  /// The same result, computed on first use with
  /// ParallelPipeline(options().pipeline). Bit-identical to
  /// pipeline_result() -- whichever entry point runs first fills the
  /// shared cache.
  const PipelineResult& parallel_pipeline_result(parse::SystemId id);

  /// The filtering threshold T (paper value: 5 s).
  util::TimeUs threshold() const { return opts_.sim.threshold_us; }

  /// Distributed-merge hook: installs a pre-computed pipeline result
  /// (deserialized from worker partials) into the cache, so later
  /// pipeline_result() calls return it instead of recomputing. The
  /// result must have been produced with these StudyOptions, or every
  /// downstream table silently disagrees with a local run. Throws
  /// std::logic_error if the result for `id` was already computed --
  /// adopting after the fact would hide a split-brain study.
  void adopt_result(parse::SystemId id, PipelineResult&& result);

 private:
  const PipelineResult& ensure_result(parse::SystemId id, bool parallel);

  StudyOptions opts_;
  std::array<std::once_flag, parse::kNumSystems> sim_once_;
  std::array<std::once_flag, parse::kNumSystems> result_once_;
  std::array<std::unique_ptr<sim::Simulator>, parse::kNumSystems> sims_;
  std::array<std::unique_ptr<PipelineResult>, parse::kNumSystems> results_;
};

}  // namespace wss::core
