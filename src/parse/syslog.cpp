#include "parse/syslog.hpp"

#include "parse/timestamp.hpp"
#include "util/strings.hpp"

namespace wss::parse {

namespace {

bool is_alnum(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

}  // namespace

bool plausible_hostname(std::string_view s) {
  if (s.empty() || s.size() > 64) return false;
  if (!is_alnum(s[0])) return false;
  for (char c : s) {
    if (!is_alnum(c) && c != '.' && c != '_' && c != '-') return false;
  }
  return true;
}

void parse_syslog_line_into(SystemId system, std::string_view line,
                            int base_year, LogRecord& rec,
                            ParseScratch& scratch) {
  rec.reset();
  rec.system = system;
  rec.raw.assign(line);

  // Timestamp: fixed-width first 15 bytes.
  std::string_view rest = line;
  if (line.size() >= 15) {
    if (const auto t = parse_syslog_timestamp(line.substr(0, 15), base_year)) {
      rec.time = *t;
      rec.timestamp_valid = true;
    }
    rest = line.substr(15);
  } else {
    rest = {};
  }
  if (!rec.timestamp_valid) {
    // Corrupted stamp: resync on the first space-delimited boundary
    // after three tokens (Mon, dd, time) so we can still attribute.
    util::split_fields(line, scratch.fields);
    if (scratch.fields.size() >= 4) {
      const char* after = scratch.fields[2].data() + scratch.fields[2].size();
      rest = line.substr(static_cast<std::size_t>(after - line.data()));
    } else {
      rest = {};
    }
  }

  // Host token.
  rest = util::trim(rest);
  const std::size_t host_end = rest.find(' ');
  const std::string_view host =
      host_end == std::string_view::npos ? rest : rest.substr(0, host_end);
  if (plausible_hostname(host)) {
    rec.source.assign(host);
  } else {
    rec.source_corrupted = true;
  }
  rest = host_end == std::string_view::npos ? std::string_view{}
                                            : rest.substr(host_end + 1);

  // Program tag: "prog:" or "prog[pid]:". If absent, the whole
  // remainder is the body.
  const std::size_t colon = rest.find(": ");
  std::string_view tag;
  if (colon != std::string_view::npos && colon > 0 &&
      rest.substr(0, colon).find(' ') == std::string_view::npos) {
    tag = rest.substr(0, colon);
    rec.body.assign(util::trim(rest.substr(colon + 2)));
  } else if (!rest.empty() && rest.back() == ':' &&
             rest.find(' ') == std::string_view::npos) {
    tag = rest.substr(0, rest.size() - 1);
  } else {
    rec.body.assign(util::trim(rest));
  }
  if (!tag.empty()) {
    const std::size_t bracket = tag.find('[');
    rec.program.assign(bracket == std::string_view::npos
                           ? tag
                           : tag.substr(0, bracket));
  }
}

LogRecord parse_syslog_line(SystemId system, std::string_view line,
                            int base_year) {
  LogRecord rec;
  ParseScratch scratch;
  parse_syslog_line_into(system, line, base_year, rec, scratch);
  return rec;
}

}  // namespace wss::parse
