// Per-system parser dispatch.
#pragma once

#include <string_view>

#include "parse/record.hpp"

namespace wss::parse {

/// Parses one line with the parser appropriate to `system`.
/// `base_year` supplies the year for syslog stamps (which lack one);
/// callers that iterate multi-year logs adjust it at year boundaries.
/// Never throws on malformed input; quality is in the record's flags.
LogRecord parse_line(SystemId system, std::string_view line, int base_year);

}  // namespace wss::parse
