// Per-system parser dispatch.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "parse/record.hpp"

namespace wss::parse {

/// Reusable scratch for the zero-allocation parse path: the field
/// vector and a staging string the Red Storm re-parse needs. One per
/// reader/thread, like match::MatchScratch; warm after the first few
/// lines, then no parser allocates on any path (pinned by
/// tests/test_tag_alloc.cpp).
struct ParseScratch {
  std::vector<std::string_view> fields;
  std::string tmp;
};

/// Parses one line with the parser appropriate to `system`.
/// `base_year` supplies the year for syslog stamps (which lack one);
/// callers that iterate multi-year logs adjust it at year boundaries.
/// Never throws on malformed input; quality is in the record's flags.
LogRecord parse_line(SystemId system, std::string_view line, int base_year);

/// Same result, written into `rec` (capacity-reusing: rec.reset() +
/// assign, never fresh strings). The hot-path form under
/// logio::read_log and the stream pipeline.
void parse_line_into(SystemId system, std::string_view line, int base_year,
                     LogRecord& rec, ParseScratch& scratch);

}  // namespace wss::parse
