// Parsers for Red Storm's several logging paths (Section 3.1).
//
// 1. syslog path (login / Lustre I/O / management nodes, and the DDN
//    RAS machine): syslog lines extended with a "facility.severity"
//    token -- Red Storm is the only Sandia system configured to store
//    syslog severity (Section 3.2, Table 6):
//      "Mar 19 10:00:00 login1 kern.crit kernel: LustreError: ..."
//      "Mar 19 10:00:01 ddn1 local0.crit DMT: DMT_310 Command Aborted ..."
//
// 2. RAS event-router path (compute nodes, SeaStar NICs, hierarchical
//    management), delivered over reliable TCP to the SMW; events carry
//    an ISO stamp and src/svc node fields and *no severity analog*:
//      "2006-03-19 10:00:00 ec_heartbeat_stop src:::c1-0c0s3n2
//       svc:::c1-0c0s3n2 warn node heartbeat_fault"
#pragma once

#include <string_view>

#include "parse/dispatch.hpp"
#include "parse/record.hpp"

namespace wss::parse {

/// Parses one Red Storm line, auto-detecting the path by shape.
LogRecord parse_redstorm_line(std::string_view line, int base_year);

/// Capacity-reusing form (see parse_line_into).
void parse_redstorm_line_into(std::string_view line, int base_year,
                              LogRecord& rec, ParseScratch& scratch);

/// True if `s` looks like a Cray XT node name ("c12-3c1s4n0") or an
/// administrative host.
bool plausible_redstorm_node(std::string_view s);

}  // namespace wss::parse
