// Timestamp parsing for the three log formats in the study.
//
// syslog stamps ("Jun  3 15:42:50") have one-second granularity and no
// year; BG/L RAS stamps ("2005-06-03-15.42.50.363779") are microsecond
// granularity (Section 3.1). Parsers are corruption-tolerant: they
// return nullopt instead of throwing, because corrupted timestamps are
// one of the corruption modes the paper documents.
#pragma once

#include <optional>
#include <string_view>

#include "util/time.hpp"

namespace wss::parse {

/// Parses "Mon dd HH:MM:SS" (syslog, RFC 3164 flavour). The year is
/// not in the stamp; `base_year` supplies it. Returns nullopt on any
/// malformation (bad month, out-of-range fields, truncation).
std::optional<util::TimeUs> parse_syslog_timestamp(std::string_view s,
                                                   int base_year);

/// Parses "YYYY-MM-DD-HH.MM.SS.ffffff" (BG/L RAS database export).
std::optional<util::TimeUs> parse_bgl_timestamp(std::string_view s);

/// Parses "YYYY-MM-DD HH:MM:SS" (ISO-ish, used by the Red Storm event
/// router path in our rendering).
std::optional<util::TimeUs> parse_iso_timestamp(std::string_view s);

/// Validates a civil date/time tuple (month/day ranges, leap years).
bool civil_fields_valid(int year, int month, int day, int hour, int minute,
                        int second);

}  // namespace wss::parse
