// Parser for Blue Gene/L RAS database records.
//
// BG/L logging goes through MMCS into a DB2 RAS database; records are
// exported as lines of the shape (modelled on the public BG/L corpus):
//
//   <epoch> <YYYY.MM.DD> <location> <YYYY-MM-DD-HH.MM.SS.ffffff>
//       <location> RAS <FACILITY> <SEVERITY> <body...>
//
// e.g.
//   1117838570 2005.06.03 R02-M1-N0-C:J12-U11
//       2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL
//       INFO instruction cache parity error corrected
//
// Time granularity is microseconds (Section 3.1). The severity field
// is the one Table 5 tabulates.
#pragma once

#include <string_view>

#include "parse/dispatch.hpp"
#include "parse/record.hpp"

namespace wss::parse {

/// Parses one BG/L RAS line; never throws. `raw` is always preserved.
LogRecord parse_bgl_line(std::string_view line);

/// Capacity-reusing form (see parse_line_into).
void parse_bgl_line_into(std::string_view line, LogRecord& rec,
                         ParseScratch& scratch);

/// True if `s` looks like a BG/L location code (e.g. "R02-M1-N0-C:J12-U11"
/// or "R63-M0-NF"). Used to flag corrupted source fields.
bool plausible_bgl_location(std::string_view s);

}  // namespace wss::parse
