// The parsed log record model shared by every parser, the tag engine,
// and the simulator's renderers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace wss::parse {

/// The five systems of the study (Table 1), in the paper's order.
enum class SystemId : std::uint8_t {
  kBlueGeneL = 0,
  kThunderbird = 1,
  kRedStorm = 2,
  kSpirit = 3,
  kLiberty = 4,
};

inline constexpr std::size_t kNumSystems = 5;

/// All systems, for iteration.
inline constexpr std::array<SystemId, kNumSystems> kAllSystems = {
    SystemId::kBlueGeneL, SystemId::kThunderbird, SystemId::kRedStorm,
    SystemId::kSpirit, SystemId::kLiberty};

/// Display name ("Blue Gene/L", "Thunderbird", ...).
std::string_view system_name(SystemId id);

/// Short machine-friendly name ("bgl", "tbird", "rstorm", "spirit",
/// "liberty").
std::string_view system_short_name(SystemId id);

/// Message severity. One enum covers both vocabularies in the paper:
/// the BG/L RAS levels (Table 5: FATAL, FAILURE, SEVERE, ERROR,
/// WARNING, INFO) and the syslog levels (Table 6: EMERG..DEBUG).
/// kNone marks records whose log path does not record severity at all
/// (Thunderbird, Spirit, and Liberty syslogs, per Section 3.2).
enum class Severity : std::uint8_t {
  kNone = 0,
  kDebug,
  kInfo,
  kNotice,
  kWarning,
  kError,   // printed "ERROR" by BG/L, "ERR" by syslog
  kSevere,  // BG/L only
  kCrit,    // syslog only
  kAlert,   // syslog only
  kEmerg,   // syslog only
  kFailure, // BG/L only
  kFatal,   // BG/L only
};

/// BG/L RAS spelling ("FATAL", "FAILURE", ..., "INFO"; "-" for kNone).
std::string_view severity_bgl_name(Severity s);

/// syslog spelling ("EMERG", ..., "DEBUG"; "-" for kNone).
std::string_view severity_syslog_name(Severity s);

/// Parses either vocabulary, case-insensitively. Returns nullopt for
/// unknown spellings.
std::optional<Severity> parse_severity(std::string_view s);

/// One parsed log message.
struct LogRecord {
  util::TimeUs time = 0;          ///< event time (0 if unparseable)
  SystemId system = SystemId::kBlueGeneL;
  Severity severity = Severity::kNone;
  std::string source;             ///< attributed node/host ("" if corrupted)
  std::string program;            ///< syslog tag or BG/L facility
  std::string body;               ///< free-text message body
  std::string raw;                ///< the original line, verbatim

  bool timestamp_valid = false;   ///< time could be parsed
  bool source_corrupted = false;  ///< source field garbled / missing

  /// Returns the record to its default state while KEEPING the string
  /// capacities, so the reusing caller (parse_line_into) allocates
  /// nothing once the strings have grown to the corpus's line sizes.
  void reset() {
    time = 0;
    severity = Severity::kNone;
    source.clear();
    program.clear();
    body.clear();
    raw.clear();
    timestamp_valid = false;
    source_corrupted = false;
  }
};

}  // namespace wss::parse
