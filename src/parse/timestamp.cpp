#include "parse/timestamp.hpp"

#include "util/strings.hpp"

namespace wss::parse {

namespace {

/// Parses exactly `n` decimal digits starting at `pos`; advances pos.
std::optional<int> digits(std::string_view s, std::size_t& pos, int n) {
  if (pos + static_cast<std::size_t>(n) > s.size()) return std::nullopt;
  int v = 0;
  for (int i = 0; i < n; ++i) {
    const char c = s[pos + static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + (c - '0');
  }
  pos += static_cast<std::size_t>(n);
  return v;
}

bool expect(std::string_view s, std::size_t& pos, char c) {
  if (pos >= s.size() || s[pos] != c) return false;
  ++pos;
  return true;
}

}  // namespace

bool civil_fields_valid(int year, int month, int day, int hour, int minute,
                        int second) {
  if (year < 1 || year > 9999) return false;
  if (month < 1 || month > 12) return false;
  if (day < 1 || day > util::days_in_month(year, month)) return false;
  if (hour < 0 || hour > 23) return false;
  if (minute < 0 || minute > 59) return false;
  if (second < 0 || second > 59) return false;
  return true;
}

std::optional<util::TimeUs> parse_syslog_timestamp(std::string_view s,
                                                   int base_year) {
  // "Mon dd HH:MM:SS" -- dd may be space-padded ("Jun  3").
  if (s.size() < 15) return std::nullopt;
  const int month = util::parse_month_abbrev(s.substr(0, 3));
  if (month == 0) return std::nullopt;
  std::size_t pos = 3;
  if (!expect(s, pos, ' ')) return std::nullopt;
  int day = 0;
  if (s[pos] == ' ') {
    ++pos;
    const auto d = digits(s, pos, 1);
    if (!d) return std::nullopt;
    day = *d;
  } else {
    const auto d = digits(s, pos, 2);
    if (!d) return std::nullopt;
    day = *d;
  }
  if (!expect(s, pos, ' ')) return std::nullopt;
  const auto hour = digits(s, pos, 2);
  if (!hour || !expect(s, pos, ':')) return std::nullopt;
  const auto minute = digits(s, pos, 2);
  if (!minute || !expect(s, pos, ':')) return std::nullopt;
  const auto second = digits(s, pos, 2);
  if (!second) return std::nullopt;
  if (!civil_fields_valid(base_year, month, day, *hour, *minute, *second)) {
    return std::nullopt;
  }
  util::CivilTime ct;
  ct.year = base_year;
  ct.month = month;
  ct.day = day;
  ct.hour = *hour;
  ct.minute = *minute;
  ct.second = *second;
  return util::to_time_us(ct);
}

std::optional<util::TimeUs> parse_bgl_timestamp(std::string_view s) {
  // "YYYY-MM-DD-HH.MM.SS.ffffff"
  std::size_t pos = 0;
  const auto year = digits(s, pos, 4);
  if (!year || !expect(s, pos, '-')) return std::nullopt;
  const auto month = digits(s, pos, 2);
  if (!month || !expect(s, pos, '-')) return std::nullopt;
  const auto day = digits(s, pos, 2);
  if (!day || !expect(s, pos, '-')) return std::nullopt;
  const auto hour = digits(s, pos, 2);
  if (!hour || !expect(s, pos, '.')) return std::nullopt;
  const auto minute = digits(s, pos, 2);
  if (!minute || !expect(s, pos, '.')) return std::nullopt;
  const auto second = digits(s, pos, 2);
  if (!second || !expect(s, pos, '.')) return std::nullopt;
  const auto micros = digits(s, pos, 6);
  if (!micros) return std::nullopt;
  if (!civil_fields_valid(*year, *month, *day, *hour, *minute, *second)) {
    return std::nullopt;
  }
  util::CivilTime ct;
  ct.year = *year;
  ct.month = *month;
  ct.day = *day;
  ct.hour = *hour;
  ct.minute = *minute;
  ct.second = *second;
  ct.micros = *micros;
  return util::to_time_us(ct);
}

std::optional<util::TimeUs> parse_iso_timestamp(std::string_view s) {
  // "YYYY-MM-DD HH:MM:SS"
  std::size_t pos = 0;
  const auto year = digits(s, pos, 4);
  if (!year || !expect(s, pos, '-')) return std::nullopt;
  const auto month = digits(s, pos, 2);
  if (!month || !expect(s, pos, '-')) return std::nullopt;
  const auto day = digits(s, pos, 2);
  if (!day || !expect(s, pos, ' ')) return std::nullopt;
  const auto hour = digits(s, pos, 2);
  if (!hour || !expect(s, pos, ':')) return std::nullopt;
  const auto minute = digits(s, pos, 2);
  if (!minute || !expect(s, pos, ':')) return std::nullopt;
  const auto second = digits(s, pos, 2);
  if (!second) return std::nullopt;
  if (!civil_fields_valid(*year, *month, *day, *hour, *minute, *second)) {
    return std::nullopt;
  }
  util::CivilTime ct;
  ct.year = *year;
  ct.month = *month;
  ct.day = *day;
  ct.hour = *hour;
  ct.minute = *minute;
  ct.second = *second;
  return util::to_time_us(ct);
}

}  // namespace wss::parse
