#include "parse/redstorm.hpp"

#include "parse/syslog.hpp"
#include "parse/timestamp.hpp"
#include "util/strings.hpp"

namespace wss::parse {

namespace {

/// Parses the RAS event-router shape; returns false if `line` is not
/// that shape (caller falls back to syslog). Expects a freshly reset
/// `rec` with raw already assigned.
bool parse_event_router(std::string_view line, LogRecord& rec,
                        ParseScratch& scratch) {
  if (line.size() < 20) return false;
  const auto t = parse_iso_timestamp(line.substr(0, 19));
  if (!t) return false;
  rec.time = *t;
  rec.timestamp_valid = true;

  util::split_fields(line.substr(19), scratch.fields);
  const auto& fields = scratch.fields;
  if (fields.empty()) {
    rec.source_corrupted = true;
    return true;
  }
  rec.program.assign(fields[0]);  // event class, e.g. ec_heartbeat_stop
  bool have_src = false;
  for (const auto f : fields) {
    if (util::starts_with(f, "src:::")) {
      const std::string_view node = f.substr(6);
      if (plausible_redstorm_node(node)) {
        rec.source.assign(node);
        have_src = true;
      }
      break;
    }
  }
  if (!have_src) rec.source_corrupted = true;

  // Body: everything after the event-class token.
  const char* body_start = fields[0].data() + fields[0].size();
  const auto offset = static_cast<std::size_t>(body_start - line.data());
  rec.body.assign(util::trim(line.substr(offset)));
  return true;
}

}  // namespace

bool plausible_redstorm_node(std::string_view s) {
  if (s.empty() || s.size() > 32) return false;
  // Cray node ids: c<col>-<row>c<cage>s<slot>n<cpu>; also plain admin
  // hostnames (login1, smw, ddn1, ...).
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return (s[0] >= 'a' && s[0] <= 'z');
}

void parse_redstorm_line_into(std::string_view line, int base_year,
                              LogRecord& rec, ParseScratch& scratch) {
  rec.reset();
  rec.system = SystemId::kRedStorm;
  rec.raw.assign(line);
  if (parse_event_router(line, rec, scratch)) return;

  // syslog-with-priority: after host there may be a "facility.severity"
  // token; split it off and reuse the base syslog parser.
  parse_syslog_line_into(SystemId::kRedStorm, line, base_year, rec, scratch);
  // The base parser left "kern.crit kernel: body" as the unparsed
  // remainder if the priority token blocked the program detection; the
  // priority token ends up at the front of the body. Pull it out.
  util::split_fields(rec.body, scratch.fields);
  if (!scratch.fields.empty()) {
    const std::string_view tok = scratch.fields[0];
    const std::size_t dot = tok.find('.');
    if (dot != std::string_view::npos && dot > 0 && dot + 1 < tok.size() &&
        tok.find(':') == std::string_view::npos) {
      if (const auto sev = parse_severity(tok.substr(dot + 1))) {
        rec.severity = *sev;
        // Re-parse the remainder for program/body. The remainder
        // aliases rec.body, so stage it in scratch.tmp before the
        // assignments below overwrite the storage it views.
        const char* after = tok.data() + tok.size();
        const auto offset = static_cast<std::size_t>(after - rec.body.data());
        scratch.tmp.assign(
            util::trim(std::string_view(rec.body).substr(offset)));
        const std::string_view rest = scratch.tmp;
        const std::size_t colon = rest.find(": ");
        if (colon != std::string_view::npos &&
            rest.substr(0, colon).find(' ') == std::string_view::npos) {
          std::string_view prog = rest.substr(0, colon);
          const std::size_t bracket = prog.find('[');
          if (bracket != std::string_view::npos) prog = prog.substr(0, bracket);
          rec.program.assign(prog);
          rec.body.assign(util::trim(rest.substr(colon + 2)));
        } else {
          rec.program.clear();
          rec.body.assign(rest);
        }
      }
    }
  }
}

LogRecord parse_redstorm_line(std::string_view line, int base_year) {
  LogRecord rec;
  ParseScratch scratch;
  parse_redstorm_line_into(line, base_year, rec, scratch);
  return rec;
}

}  // namespace wss::parse
