#include "parse/redstorm.hpp"

#include "parse/syslog.hpp"
#include "parse/timestamp.hpp"
#include "util/strings.hpp"

namespace wss::parse {

namespace {

/// Parses the RAS event-router shape; returns false if `line` is not
/// that shape (caller falls back to syslog).
bool parse_event_router(std::string_view line, LogRecord& rec) {
  if (line.size() < 20) return false;
  const auto t = parse_iso_timestamp(line.substr(0, 19));
  if (!t) return false;
  rec.time = *t;
  rec.timestamp_valid = true;

  const auto fields = util::split_fields(line.substr(19));
  if (fields.empty()) {
    rec.source_corrupted = true;
    return true;
  }
  rec.program = std::string(fields[0]);  // event class, e.g. ec_heartbeat_stop
  bool have_src = false;
  for (const auto f : fields) {
    if (util::starts_with(f, "src:::")) {
      const std::string_view node = f.substr(6);
      if (plausible_redstorm_node(node)) {
        rec.source = std::string(node);
        have_src = true;
      }
      break;
    }
  }
  if (!have_src) rec.source_corrupted = true;

  // Body: everything after the event-class token.
  const char* body_start = fields[0].data() + fields[0].size();
  const auto offset = static_cast<std::size_t>(body_start - line.data());
  rec.body = std::string(util::trim(line.substr(offset)));
  return true;
}

}  // namespace

bool plausible_redstorm_node(std::string_view s) {
  if (s.empty() || s.size() > 32) return false;
  // Cray node ids: c<col>-<row>c<cage>s<slot>n<cpu>; also plain admin
  // hostnames (login1, smw, ddn1, ...).
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return (s[0] >= 'a' && s[0] <= 'z');
}

LogRecord parse_redstorm_line(std::string_view line, int base_year) {
  LogRecord rec;
  rec.system = SystemId::kRedStorm;
  rec.raw = std::string(line);
  if (parse_event_router(line, rec)) return rec;

  // syslog-with-priority: after host there may be a "facility.severity"
  // token; split it off and reuse the base syslog parser.
  rec = parse_syslog_line(SystemId::kRedStorm, line, base_year);
  // The base parser left "kern.crit kernel: body" as the unparsed
  // remainder if the priority token blocked the program detection; the
  // priority token ends up at the front of the body. Pull it out.
  const auto fields = util::split_fields(rec.body);
  if (!fields.empty()) {
    const std::string_view tok = fields[0];
    const std::size_t dot = tok.find('.');
    if (dot != std::string_view::npos && dot > 0 && dot + 1 < tok.size() &&
        tok.find(':') == std::string_view::npos) {
      if (const auto sev = parse_severity(tok.substr(dot + 1))) {
        rec.severity = *sev;
        // Re-parse the remainder for program/body.
        const char* after = tok.data() + tok.size();
        const auto offset = static_cast<std::size_t>(after - rec.body.data());
        std::string rest(util::trim(
            std::string_view(rec.body).substr(offset)));
        const std::size_t colon = rest.find(": ");
        if (colon != std::string::npos &&
            rest.substr(0, colon).find(' ') == std::string::npos) {
          std::string prog = rest.substr(0, colon);
          const std::size_t bracket = prog.find('[');
          if (bracket != std::string::npos) prog.resize(bracket);
          rec.program = prog;
          rec.body = std::string(
              util::trim(std::string_view(rest).substr(colon + 2)));
        } else {
          rec.program.clear();
          rec.body = rest;
        }
      }
    }
  }
  return rec;
}

}  // namespace wss::parse
