#include "parse/bgl.hpp"

#include "parse/timestamp.hpp"
#include "util/strings.hpp"

namespace wss::parse {

bool plausible_bgl_location(std::string_view s) {
  // Location codes are 'R' + rack digits, then dash-separated
  // components of uppercase letters and digits, optionally with a
  // ':'-separated chip part: R02-M1-N0-C:J12-U11.
  if (s.size() < 3 || s.size() > 40 || s[0] != 'R') return false;
  for (char c : s) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == ':';
    if (!ok) return false;
  }
  return s.find('-') != std::string_view::npos;
}

void parse_bgl_line_into(std::string_view line, LogRecord& rec,
                         ParseScratch& scratch) {
  rec.reset();
  rec.system = SystemId::kBlueGeneL;
  rec.raw.assign(line);

  util::split_fields(line, scratch.fields);
  const auto& fields = scratch.fields;
  // epoch date loc timestamp loc RAS FACILITY SEVERITY body...
  if (fields.size() < 9) {
    rec.source_corrupted = true;
    rec.body.assign(util::trim(line));
    return;
  }

  if (const auto t = parse_bgl_timestamp(fields[3])) {
    rec.time = *t;
    rec.timestamp_valid = true;
  } else if (const auto epoch = util::parse_u64(fields[0])) {
    // Fall back to the coarse epoch-seconds field.
    rec.time = static_cast<util::TimeUs>(*epoch) * util::kUsPerSec;
    rec.timestamp_valid = true;
  }

  if (plausible_bgl_location(fields[2])) {
    rec.source.assign(fields[2]);
  } else {
    rec.source_corrupted = true;
  }

  rec.program.assign(fields[6]);  // FACILITY (KERNEL, APP, ...)
  if (const auto sev = parse_severity(fields[7])) {
    rec.severity = *sev;
  }

  // Body: everything after the severity token.
  const char* body_start = fields[7].data() + fields[7].size();
  const auto offset = static_cast<std::size_t>(body_start - line.data());
  rec.body.assign(util::trim(line.substr(offset)));
}

LogRecord parse_bgl_line(std::string_view line) {
  LogRecord rec;
  ParseScratch scratch;
  parse_bgl_line_into(line, rec, scratch);
  return rec;
}

}  // namespace wss::parse
