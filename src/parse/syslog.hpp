// Parser for syslog-ng collected logs (Thunderbird, Spirit, Liberty).
//
// Line shape:
//   "Jun  3 15:42:50 sn373 kernel: cciss: cmd ... CHECK CONDITION ..."
//   "Jun  3 15:42:50 ln101 pbs_mom[2345]: task_check, cannot tm_reply"
//
// The parser never throws on malformed input: the paper documents
// truncated, partially overwritten, and mis-timestamped messages, and
// misattributed sources (Figure 2(b)'s corrupted cluster). Quality is
// reported through LogRecord's flags instead.
#pragma once

#include <string_view>

#include "parse/dispatch.hpp"
#include "parse/record.hpp"

namespace wss::parse {

/// Parses one syslog line. `base_year` supplies the year the stamp
/// lacks. The returned record always carries `raw` = `line`.
LogRecord parse_syslog_line(SystemId system, std::string_view line,
                            int base_year);

/// Capacity-reusing form (see parse_line_into).
void parse_syslog_line_into(SystemId system, std::string_view line,
                            int base_year, LogRecord& rec,
                            ParseScratch& scratch);

/// True if `s` looks like a legitimate hostname: nonempty, starts with
/// an alphanumeric, and contains only [A-Za-z0-9._-]. The corrupted-
/// source cluster in Figure 2(b) is exactly the lines failing this.
bool plausible_hostname(std::string_view s);

}  // namespace wss::parse
