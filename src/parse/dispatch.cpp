#include "parse/dispatch.hpp"

#include "parse/bgl.hpp"
#include "parse/redstorm.hpp"
#include "parse/syslog.hpp"

namespace wss::parse {

LogRecord parse_line(SystemId system, std::string_view line, int base_year) {
  switch (system) {
    case SystemId::kBlueGeneL:
      return parse_bgl_line(line);
    case SystemId::kRedStorm:
      return parse_redstorm_line(line, base_year);
    case SystemId::kThunderbird:
    case SystemId::kSpirit:
    case SystemId::kLiberty:
      return parse_syslog_line(system, line, base_year);
  }
  LogRecord rec;
  rec.system = system;
  rec.raw = std::string(line);
  rec.source_corrupted = true;
  return rec;
}

}  // namespace wss::parse
