#include "parse/dispatch.hpp"

#include "parse/bgl.hpp"
#include "parse/redstorm.hpp"
#include "parse/syslog.hpp"

namespace wss::parse {

void parse_line_into(SystemId system, std::string_view line, int base_year,
                     LogRecord& rec, ParseScratch& scratch) {
  switch (system) {
    case SystemId::kBlueGeneL:
      parse_bgl_line_into(line, rec, scratch);
      return;
    case SystemId::kRedStorm:
      parse_redstorm_line_into(line, base_year, rec, scratch);
      return;
    case SystemId::kThunderbird:
    case SystemId::kSpirit:
    case SystemId::kLiberty:
      parse_syslog_line_into(system, line, base_year, rec, scratch);
      return;
  }
  rec.reset();
  rec.system = system;
  rec.raw.assign(line);
  rec.source_corrupted = true;
}

LogRecord parse_line(SystemId system, std::string_view line, int base_year) {
  LogRecord rec;
  ParseScratch scratch;
  parse_line_into(system, line, base_year, rec, scratch);
  return rec;
}

}  // namespace wss::parse
