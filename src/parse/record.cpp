#include "parse/record.hpp"

#include "util/strings.hpp"

namespace wss::parse {

std::string_view system_name(SystemId id) {
  switch (id) {
    case SystemId::kBlueGeneL:
      return "Blue Gene/L";
    case SystemId::kThunderbird:
      return "Thunderbird";
    case SystemId::kRedStorm:
      return "Red Storm";
    case SystemId::kSpirit:
      return "Spirit (ICC2)";
    case SystemId::kLiberty:
      return "Liberty";
  }
  return "?";
}

std::string_view system_short_name(SystemId id) {
  switch (id) {
    case SystemId::kBlueGeneL:
      return "bgl";
    case SystemId::kThunderbird:
      return "tbird";
    case SystemId::kRedStorm:
      return "rstorm";
    case SystemId::kSpirit:
      return "spirit";
    case SystemId::kLiberty:
      return "liberty";
  }
  return "?";
}

std::string_view severity_bgl_name(Severity s) {
  switch (s) {
    case Severity::kNone:
      return "-";
    case Severity::kDebug:
      return "DEBUG";
    case Severity::kInfo:
      return "INFO";
    case Severity::kNotice:
      return "NOTICE";
    case Severity::kWarning:
      return "WARNING";
    case Severity::kError:
      return "ERROR";
    case Severity::kSevere:
      return "SEVERE";
    case Severity::kCrit:
      return "CRIT";
    case Severity::kAlert:
      return "ALERT";
    case Severity::kEmerg:
      return "EMERG";
    case Severity::kFailure:
      return "FAILURE";
    case Severity::kFatal:
      return "FATAL";
  }
  return "?";
}

std::string_view severity_syslog_name(Severity s) {
  switch (s) {
    case Severity::kError:
      return "ERR";
    default:
      return severity_bgl_name(s);
  }
}

std::optional<Severity> parse_severity(std::string_view s) {
  using util::iequals;
  if (iequals(s, "DEBUG")) return Severity::kDebug;
  if (iequals(s, "INFO")) return Severity::kInfo;
  if (iequals(s, "NOTICE")) return Severity::kNotice;
  if (iequals(s, "WARNING") || iequals(s, "WARN")) return Severity::kWarning;
  if (iequals(s, "ERROR") || iequals(s, "ERR")) return Severity::kError;
  if (iequals(s, "SEVERE")) return Severity::kSevere;
  if (iequals(s, "CRIT") || iequals(s, "CRITICAL")) return Severity::kCrit;
  if (iequals(s, "ALERT")) return Severity::kAlert;
  if (iequals(s, "EMERG") || iequals(s, "PANIC")) return Severity::kEmerg;
  if (iequals(s, "FAILURE")) return Severity::kFailure;
  if (iequals(s, "FATAL")) return Severity::kFatal;
  return std::nullopt;
}

}  // namespace wss::parse
