#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wss::stats {

namespace {

/// Inverts a monotone CDF by bisection over an expanding bracket.
double invert_cdf(const std::function<double(double)>& cdf, double p) {
  double lo = 0.0;
  double hi = 1.0;
  while (cdf(hi) < p && hi < 1e30) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double kolmogorov_q(double t) {
  if (t <= 0.0) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double regularized_gamma_q(double a, double x) {
  if (x < 0.0 || a <= 0.0) {
    throw std::invalid_argument("regularized_gamma_q: bad arguments");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) {
    // Series for P(a, x); Q = 1 - P.
    double sum = 1.0 / a;
    double term = sum;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
    return std::clamp(1.0 - p, 0.0, 1.0);
  }
  // Continued fraction for Q(a, x) (Lentz's algorithm).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  const double q = h * std::exp(-x + a * std::log(x) - std::lgamma(a));
  return std::clamp(q, 0.0, 1.0);
}

double chi_squared_sf(double x, double df) {
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(df / 2.0, x / 2.0);
}

GofResult ks_test(std::vector<double> xs,
                  const std::function<double(double)>& cdf) {
  GofResult r;
  r.n = xs.size();
  if (xs.empty()) return r;
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  double d = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  r.statistic = d;
  // Asymptotic with the Stephens small-sample correction.
  const double t = d * (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n));
  r.p_value = kolmogorov_q(t);
  return r;
}

GofResult chi_squared_test(const std::vector<double>& xs,
                           const std::function<double(double)>& cdf,
                           std::size_t n_bins, int n_fitted_params) {
  GofResult r;
  r.n = xs.size();
  if (xs.empty() || n_bins < 2) return r;
  // Equal-probability bin edges from the model.
  std::vector<double> edges;
  edges.reserve(n_bins - 1);
  for (std::size_t i = 1; i < n_bins; ++i) {
    edges.push_back(
        invert_cdf(cdf, static_cast<double>(i) / static_cast<double>(n_bins)));
  }
  std::vector<double> observed(n_bins, 0.0);
  for (double x : xs) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    observed[static_cast<std::size_t>(it - edges.begin())] += 1.0;
  }
  const double expected =
      static_cast<double>(xs.size()) / static_cast<double>(n_bins);
  double x2 = 0.0;
  for (double o : observed) {
    x2 += (o - expected) * (o - expected) / expected;
  }
  r.statistic = x2;
  const double df =
      static_cast<double>(n_bins) - 1.0 - static_cast<double>(n_fitted_params);
  r.p_value = df > 0.0 ? chi_squared_sf(x2, df) : 0.0;
  return r;
}

}  // namespace wss::stats
