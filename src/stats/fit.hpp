// Maximum-likelihood distribution fits.
//
// Section 4 of the paper fits interarrival distributions: ECC alerts
// look exponential / roughly lognormal, most other categories fit
// nothing well ("heavy tails result in very poor statistical
// goodness-of-fit metrics"). We implement the three families the
// failure-modeling literature uses: exponential, lognormal, Weibull.
#pragma once

#include <vector>

namespace wss::stats {

/// Fitted exponential distribution: pdf(x) = rate * exp(-rate x).
struct ExponentialFit {
  double rate = 0.0;
  double log_likelihood = 0.0;

  double pdf(double x) const;
  double cdf(double x) const;
};

/// Fitted lognormal distribution: log(X) ~ Normal(mu, sigma).
struct LognormalFit {
  double mu = 0.0;
  double sigma = 0.0;
  double log_likelihood = 0.0;

  double pdf(double x) const;
  double cdf(double x) const;
};

/// Fitted Weibull distribution with shape k and scale lambda.
struct WeibullFit {
  double shape = 0.0;
  double scale = 0.0;
  double log_likelihood = 0.0;
  bool converged = false;

  double pdf(double x) const;
  double cdf(double x) const;
};

/// MLE for the exponential family. Samples must be positive; zeros and
/// negatives are dropped. Throws std::invalid_argument if nothing
/// positive remains.
ExponentialFit fit_exponential(const std::vector<double>& xs);

/// MLE for the lognormal family (mu, sigma from log-samples).
LognormalFit fit_lognormal(const std::vector<double>& xs);

/// MLE for the Weibull family; the shape equation is solved by Newton
/// iteration with bisection fallback.
WeibullFit fit_weibull(const std::vector<double>& xs);

/// Standard normal CDF (via erfc).
double normal_cdf(double z);

/// Akaike information criterion given a fit's log-likelihood and its
/// parameter count. Lower is better; used to rank candidate families.
double aic(double log_likelihood, int n_params);

}  // namespace wss::stats
