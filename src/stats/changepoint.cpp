#include "stats/changepoint.hpp"

#include <algorithm>
#include <cmath>

namespace wss::stats {

namespace {

struct Split {
  bool found = false;
  std::size_t index = 0;
  double score = 0.0;
};

double segment_mean(const std::vector<double>& s, std::size_t b,
                    std::size_t e) {
  double sum = 0.0;
  for (std::size_t i = b; i < e; ++i) sum += s[i];
  return e > b ? sum / static_cast<double>(e - b) : 0.0;
}

/// Best CUSUM split of s[b, e).
Split best_split(const std::vector<double>& s, std::size_t b, std::size_t e,
                 const ChangePointOptions& opts) {
  Split out;
  const std::size_t n = e - b;
  if (n < 2 * opts.min_segment) return out;
  const double m = segment_mean(s, b, e);
  double var = 0.0;
  for (std::size_t i = b; i < e; ++i) var += (s[i] - m) * (s[i] - m);
  var /= static_cast<double>(n);
  const double sigma = std::sqrt(std::max(var, 1e-12));

  double cusum = 0.0;
  double best = 0.0;
  std::size_t best_k = 0;
  for (std::size_t i = b; i + 1 < e; ++i) {
    cusum += s[i] - m;
    const std::size_t left = i - b + 1;
    const std::size_t right = e - i - 1;
    if (left < opts.min_segment || right < opts.min_segment) continue;
    const double score =
        std::fabs(cusum) / (sigma * std::sqrt(static_cast<double>(n)));
    if (score > best) {
      best = score;
      best_k = i + 1;
    }
  }
  if (best >= opts.min_score) {
    out.found = true;
    out.index = best_k;
    out.score = best;
  }
  return out;
}

void segment(const std::vector<double>& s, std::size_t b, std::size_t e,
             const ChangePointOptions& opts, std::vector<ChangePoint>& out) {
  if (out.size() >= opts.max_changes) return;
  const Split sp = best_split(s, b, e, opts);
  if (!sp.found) return;
  ChangePoint cp;
  cp.index = sp.index;
  cp.score = sp.score;
  cp.mean_before = segment_mean(s, b, sp.index);
  cp.mean_after = segment_mean(s, sp.index, e);
  out.push_back(cp);
  segment(s, b, sp.index, opts, out);
  segment(s, sp.index, e, opts, out);
}

}  // namespace

std::vector<ChangePoint> detect_changepoints(const std::vector<double>& series,
                                             const ChangePointOptions& opts) {
  std::vector<ChangePoint> out;
  if (series.size() >= 2 * opts.min_segment) {
    segment(series, 0, series.size(), opts, out);
  }
  std::sort(out.begin(), out.end(),
            [](const ChangePoint& a, const ChangePoint& b) {
              return a.index < b.index;
            });
  return out;
}

}  // namespace wss::stats
