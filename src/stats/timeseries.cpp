#include "stats/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace wss::stats {

TimeSeries::TimeSeries(util::TimeUs start, util::TimeUs width_us,
                       std::size_t n_buckets)
    : start_(start), width_(width_us), buckets_(n_buckets, 0.0) {
  if (width_us <= 0 || n_buckets == 0) {
    throw std::invalid_argument("TimeSeries: bad width or bucket count");
  }
}

TimeSeries TimeSeries::covering(util::TimeUs start, util::TimeUs end,
                                util::TimeUs width_us) {
  if (end <= start || width_us <= 0) {
    throw std::invalid_argument("TimeSeries::covering: bad range");
  }
  const auto n = static_cast<std::size_t>((end - start + width_us - 1) /
                                          width_us);
  return TimeSeries(start, width_us, n);
}

void TimeSeries::add(util::TimeUs t, double weight) {
  if (t < start_) {
    ++dropped_;
    return;
  }
  const auto i = static_cast<std::size_t>((t - start_) / width_);
  if (i >= buckets_.size()) {
    ++dropped_;
    return;
  }
  buckets_[i] += weight;
}

util::TimeUs TimeSeries::bucket_mid(std::size_t i) const {
  return start_ + static_cast<util::TimeUs>(i) * width_ + width_ / 2;
}

double TimeSeries::mean_over(std::size_t from, std::size_t to) const {
  to = std::min(to, buckets_.size());
  if (from >= to) return 0.0;
  double s = 0.0;
  for (std::size_t i = from; i < to; ++i) s += buckets_[i];
  return s / static_cast<double>(to - from);
}

double TimeSeries::total() const {
  double s = 0.0;
  for (double b : buckets_) s += b;
  return s;
}

}  // namespace wss::stats
