#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace wss::stats {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double coefficient_of_variation(const std::vector<double>& xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return std::sqrt(variance(xs)) / m;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs);
  std::sort(sorted.begin(), sorted.end());
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = std::sqrt(variance(xs));
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 0.5);
  s.p05 = percentile_sorted(sorted, 0.05);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

std::vector<double> interarrival_seconds(std::vector<std::int64_t> times_us) {
  std::sort(times_us.begin(), times_us.end());
  std::vector<double> gaps;
  if (times_us.size() < 2) return gaps;
  gaps.reserve(times_us.size() - 1);
  for (std::size_t i = 1; i < times_us.size(); ++i) {
    gaps.push_back(static_cast<double>(times_us[i] - times_us[i - 1]) / 1e6);
  }
  return gaps;
}

}  // namespace wss::stats
