// Goodness-of-fit statistics.
//
// The paper's central modeling observation is that even visually good
// fits have "very poor statistical goodness-of-fit metrics" on these
// data. We implement the two tests used in the failure-modeling
// literature: Kolmogorov-Smirnov against a fitted CDF, and Pearson's
// chi-squared over equal-probability bins.
#pragma once

#include <functional>
#include <vector>

namespace wss::stats {

/// Result of a goodness-of-fit test.
struct GofResult {
  double statistic = 0.0;  ///< D for KS; X^2 for chi-squared
  double p_value = 0.0;    ///< asymptotic; approximate for small n
  std::size_t n = 0;       ///< sample count used
};

/// One-sample KS test of `xs` against the model CDF. The p-value uses
/// the asymptotic Kolmogorov distribution Q(d sqrt(n)); note that when
/// the model parameters were themselves fitted from `xs` the true
/// p-value is smaller (we match the paper, which makes the same
/// simplification and still finds fits rejected).
GofResult ks_test(std::vector<double> xs,
                  const std::function<double(double)>& cdf);

/// Chi-squared test over `n_bins` equal-probability bins of the model.
/// Degrees of freedom are n_bins - 1 - n_fitted_params.
GofResult chi_squared_test(const std::vector<double>& xs,
                           const std::function<double(double)>& cdf,
                           std::size_t n_bins, int n_fitted_params);

/// Survival function of the Kolmogorov distribution,
/// Q(t) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2).
double kolmogorov_q(double t);

/// Upper regularized incomplete gamma Q(a, x) = Gamma(a,x)/Gamma(a);
/// the chi-squared survival function is Q(df/2, x/2).
double regularized_gamma_q(double a, double x);

/// Chi-squared survival function with `df` degrees of freedom.
double chi_squared_sf(double x, double df);

}  // namespace wss::stats
