// Change-point (phase-shift) detection.
//
// Section 3.2.1 ("System Evolution") observes that upgrades and
// configuration changes shift log behavior wholesale -- Figure 2(a)
// shows Liberty's message rate jumping after an OS upgrade -- and that
// "the ability to detect phase shifts in behavior would be a valuable
// tool". We implement the standard tool for that: binary-segmentation
// mean-shift detection with a CUSUM statistic.
#pragma once

#include <cstddef>
#include <vector>

namespace wss::stats {

/// A detected mean shift.
struct ChangePoint {
  std::size_t index = 0;     ///< first bucket of the new regime
  double mean_before = 0.0;  ///< segment mean to the left
  double mean_after = 0.0;   ///< segment mean to the right
  double score = 0.0;        ///< normalized CUSUM statistic at the split
};

/// Options for detect_changepoints.
struct ChangePointOptions {
  /// Minimum normalized CUSUM score to accept a split. The score is
  /// |S_k| / (sigma * sqrt(n)) where S_k is the centered cumulative
  /// sum; under the no-change null it concentrates below ~1.36 (the
  /// 95% Kolmogorov bound), so the default rejects noise.
  double min_score = 1.5;
  /// Minimum segment length on either side of a split.
  std::size_t min_segment = 8;
  /// Maximum number of change points to return.
  std::size_t max_changes = 8;
};

/// Detects mean shifts in `series` by recursive binary segmentation.
/// Returned points are sorted by index.
std::vector<ChangePoint> detect_changepoints(
    const std::vector<double>& series, const ChangePointOptions& opts = {});

}  // namespace wss::stats
