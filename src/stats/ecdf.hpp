// Empirical cumulative distribution function.
//
// Backs the figure benches' CSV series and the KS test's visual
// counterpart: the paper reads distribution shape off CDF/histogram
// plots before (and instead of) trusting best-fit parameters.
#pragma once

#include <vector>

namespace wss::stats {

/// Immutable ECDF over a sample. Construction sorts a copy; evaluation
/// is O(log n).
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> xs);

  /// F(x) = fraction of samples <= x. 0 for an empty sample.
  double operator()(double x) const;

  /// Inverse: smallest sample value with F(x) >= q, for q in (0, 1].
  /// Returns the minimum for q <= 0 and the maximum for q >= 1.
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// (x, F(x)) pairs at each distinct sample point -- a plottable
  /// staircase series.
  std::vector<std::pair<double, double>> steps() const;

 private:
  std::vector<double> sorted_;
};

/// Largest absolute difference between two ECDFs (the two-sample KS
/// statistic), used to compare a category's behaviour across epochs
/// (the "system evolution" phase-shift check).
double ks_two_sample_statistic(const Ecdf& a, const Ecdf& b);

}  // namespace wss::stats
