#include "stats/ecdf.hpp"

#include <algorithm>

namespace wss::stats {

Ecdf::Ecdf(std::vector<double> xs) : sorted_(std::move(xs)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const auto idx = static_cast<std::size_t>(
      std::max(0.0, q * static_cast<double>(sorted_.size()) - 1.0));
  // Smallest value whose F >= q.
  for (std::size_t i = idx; i < sorted_.size(); ++i) {
    if ((*this)(sorted_[i]) >= q) return sorted_[i];
  }
  return sorted_.back();
}

std::vector<std::pair<double, double>> Ecdf::steps() const {
  std::vector<std::pair<double, double>> out;
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                     static_cast<double>(sorted_.size()));
  }
  return out;
}

double ks_two_sample_statistic(const Ecdf& a, const Ecdf& b) {
  double d = 0.0;
  for (const double x : a.sorted()) d = std::max(d, std::abs(a(x) - b(x)));
  for (const double x : b.sorted()) d = std::max(d, std::abs(a(x) - b(x)));
  return d;
}

}  // namespace wss::stats
