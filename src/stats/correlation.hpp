// Correlation measures for alert streams.
//
// Figure 3 shows GM_PAR and GM_LANAI alerts on Liberty are clearly
// correlated although neither always follows the other; Section 4
// describes CPU clock alerts that are *spatially* correlated across
// the node set of a communication-heavy job. These functions quantify
// both effects.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace wss::stats {

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant or lengths mismatch.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Cross-correlation of two event-time streams: the two streams are
/// binned at `bin_us`, and the Pearson correlation of the binned
/// series is computed at integer bin lags in [-max_lag, +max_lag].
/// Returns the correlations indexed by lag + max_lag.
std::vector<double> cross_correlation(const std::vector<util::TimeUs>& a,
                                      const std::vector<util::TimeUs>& b,
                                      util::TimeUs bin_us, std::size_t max_lag);

/// Co-occurrence score for two event streams: fraction of events in
/// `a` that have at least one event of `b` within `window_us`.
/// This is the paper-style evidence that two tags "travel together".
double cooccurrence_fraction(std::vector<util::TimeUs> a,
                             std::vector<util::TimeUs> b,
                             util::TimeUs window_us);

/// Autocorrelation of a series at integer lags 0..max_lag (lag 0 is
/// 1 by definition). Bursty/correlated alert streams show slowly
/// decaying autocorrelation in their binned counts; independent
/// streams drop to ~0 immediately -- the Section 4 distinction
/// between ECC and everything else.
std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag);

/// Spatial correlation score over (time, source) events: the mean,
/// over all `window_us` windows (greedily segmented from the first
/// event), of (distinct sources - 1) / (events - 1); windows with a
/// single event contribute 0 (no spatial structure at all). Near 1
/// means bursts span many nodes (spatially correlated, e.g. the SMP
/// clock bug); near 0 means events are isolated or stay on one node
/// (independent ECC faults, a dying disk).
double spatial_spread(const std::vector<util::TimeUs>& times,
                      const std::vector<std::uint32_t>& sources,
                      util::TimeUs window_us);

}  // namespace wss::stats
