#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace wss::stats {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> cross_correlation(const std::vector<util::TimeUs>& a,
                                      const std::vector<util::TimeUs>& b,
                                      util::TimeUs bin_us,
                                      std::size_t max_lag) {
  if (bin_us <= 0) throw std::invalid_argument("cross_correlation: bad bin");
  std::vector<double> out(2 * max_lag + 1, 0.0);
  if (a.empty() || b.empty()) return out;

  util::TimeUs lo = std::min(*std::min_element(a.begin(), a.end()),
                             *std::min_element(b.begin(), b.end()));
  util::TimeUs hi = std::max(*std::max_element(a.begin(), a.end()),
                             *std::max_element(b.begin(), b.end()));
  const auto n_bins = static_cast<std::size_t>((hi - lo) / bin_us + 1);
  std::vector<double> sa(n_bins, 0.0);
  std::vector<double> sb(n_bins, 0.0);
  for (const auto t : a) sa[static_cast<std::size_t>((t - lo) / bin_us)] += 1.0;
  for (const auto t : b) sb[static_cast<std::size_t>((t - lo) / bin_us)] += 1.0;

  for (std::size_t k = 0; k < out.size(); ++k) {
    const auto lag = static_cast<std::int64_t>(k) -
                     static_cast<std::int64_t>(max_lag);
    // Correlate sa[i] with sb[i + lag] over the overlapping range.
    std::vector<double> xa;
    std::vector<double> xb;
    for (std::size_t i = 0; i < n_bins; ++i) {
      const std::int64_t j = static_cast<std::int64_t>(i) + lag;
      if (j < 0 || j >= static_cast<std::int64_t>(n_bins)) continue;
      xa.push_back(sa[i]);
      xb.push_back(sb[static_cast<std::size_t>(j)]);
    }
    out[k] = pearson(xa, xb);
  }
  return out;
}

std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  const std::size_t n = series.size();
  if (n < 2) {
    out.assign(max_lag + 1, 0.0);
    if (!out.empty()) out[0] = 1.0;
    return out;
  }
  double m = 0.0;
  for (const double x : series) m += x;
  m /= static_cast<double>(n);
  double var = 0.0;
  for (const double x : series) var += (x - m) * (x - m);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    if (lag >= n || var <= 0.0) {
      out.push_back(lag == 0 ? 1.0 : 0.0);
      continue;
    }
    double cov = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      cov += (series[i] - m) * (series[i + lag] - m);
    }
    out.push_back(cov / var);
  }
  return out;
}

double cooccurrence_fraction(std::vector<util::TimeUs> a,
                             std::vector<util::TimeUs> b,
                             util::TimeUs window_us) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::size_t hits = 0;
  for (const auto t : a) {
    const auto it = std::lower_bound(b.begin(), b.end(), t - window_us);
    if (it != b.end() && *it <= t + window_us) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

double spatial_spread(const std::vector<util::TimeUs>& times,
                      const std::vector<std::uint32_t>& sources,
                      util::TimeUs window_us) {
  if (times.size() != sources.size() || times.empty() || window_us <= 0) {
    return 0.0;
  }
  // Sort events by time (indices).
  std::vector<std::size_t> order(times.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return times[x] < times[y]; });

  double score_sum = 0.0;
  std::size_t n_windows = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const util::TimeUs window_end = times[order[i]] + window_us;
    std::unordered_set<std::uint32_t> distinct;
    std::size_t count = 0;
    std::size_t j = i;
    while (j < order.size() && times[order[j]] < window_end) {
      distinct.insert(sources[order[j]]);
      ++count;
      ++j;
    }
    if (count >= 2) {
      score_sum += static_cast<double>(distinct.size() - 1) /
                   static_cast<double>(count - 1);
    }
    ++n_windows;  // singleton windows contribute 0
    i = j;
  }
  return n_windows == 0 ? 0.0 : score_sum / static_cast<double>(n_windows);
}

}  // namespace wss::stats
