// Linear and logarithmic histograms.
//
// Figure 6 of the paper plots "the log distribution of interarrival
// times" -- a histogram over log10(seconds) buckets -- which is what
// LogHistogram produces. LinearHistogram backs the time-bucketed rate
// plots (Figure 2(a)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wss::stats {

/// Fixed-width bins over [lo, hi); out-of-range samples are counted in
/// underflow/overflow.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t n_bins);

  void add(double x, double weight = 1.0);

  const std::vector<double>& bins() const { return bins_; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double total() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> bins_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

/// Log10-spaced bins between 10^lo_exp and 10^hi_exp; samples <= 0 are
/// counted in underflow.
class LogHistogram {
 public:
  /// `bins_per_decade` bins per factor of 10; e.g. exponents [-6, 6]
  /// with 4 bins/decade covers 1us .. 11.5 days of interarrival gaps.
  LogHistogram(double lo_exp, double hi_exp, std::size_t bins_per_decade);

  void add(double x, double weight = 1.0);

  const std::vector<double>& bins() const { return bins_; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }

  /// Geometric center of bin i (in x units, not exponent).
  double bin_center(std::size_t i) const;

  /// Lower edge of bin i (in x units).
  double bin_lo(std::size_t i) const;

  /// Short axis label for bin i, e.g. "1e+02".
  std::string bin_label(std::size_t i) const;

  double total() const;

  /// Detects modes: indices of local maxima whose height is at least
  /// `min_fraction` of the tallest bin, with neighbouring candidates
  /// within `merge_distance` bins merged. The paper's key qualitative
  /// claim (BG/L bimodal vs Spirit unimodal, Figure 6) is tested with
  /// this.
  std::vector<std::size_t> modes(double min_fraction = 0.2,
                                 std::size_t merge_distance = 3) const;

 private:
  double lo_exp_;
  double hi_exp_;
  std::size_t per_decade_;
  std::vector<double> bins_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace wss::stats
