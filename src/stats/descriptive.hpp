// Descriptive statistics over double samples.
#pragma once

#include <cstdint>
#include <vector>

namespace wss::stats {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
};

/// Computes summary statistics. Returns a zeroed Summary when `xs` is
/// empty. Does not modify the input.
Summary summarize(const std::vector<double>& xs);

/// Linear-interpolated percentile of a *sorted* sample; q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Arithmetic mean (0 for an empty sample).
double mean(const std::vector<double>& xs);

/// Sample variance with n-1 denominator (0 when count < 2).
double variance(const std::vector<double>& xs);

/// Coefficient of variation: stddev / mean. The paper's heavy-tail /
/// burstiness discussions hinge on CV >> 1 (an exponential has CV = 1).
double coefficient_of_variation(const std::vector<double>& xs);

/// Converts interarrival gaps from event timestamps (sorted or not;
/// they are sorted internally). Result has size() - 1 entries, in
/// seconds given timestamps in microseconds.
std::vector<double> interarrival_seconds(std::vector<std::int64_t> times_us);

}  // namespace wss::stats
