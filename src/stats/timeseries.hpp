// Time-bucketed event series (Figure 2(a), Figure 4's x axis).
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace wss::stats {

/// Event counts bucketed by fixed-width time windows.
class TimeSeries {
 public:
  /// Buckets cover [start, start + n_buckets * width_us).
  TimeSeries(util::TimeUs start, util::TimeUs width_us, std::size_t n_buckets);

  /// Convenience: covers [start, end) with the given bucket width.
  static TimeSeries covering(util::TimeUs start, util::TimeUs end,
                             util::TimeUs width_us);

  /// Adds an event; out-of-range events are silently dropped (they are
  /// counted in dropped()).
  void add(util::TimeUs t, double weight = 1.0);

  const std::vector<double>& buckets() const { return buckets_; }
  util::TimeUs start() const { return start_; }
  util::TimeUs width() const { return width_; }
  std::size_t dropped() const { return dropped_; }

  /// Midpoint time of bucket i.
  util::TimeUs bucket_mid(std::size_t i) const;

  /// Mean bucket value over [from, to) bucket indices.
  double mean_over(std::size_t from, std::size_t to) const;

  double total() const;

 private:
  util::TimeUs start_;
  util::TimeUs width_;
  std::vector<double> buckets_;
  std::size_t dropped_ = 0;
};

}  // namespace wss::stats
