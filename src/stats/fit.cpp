#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wss::stats {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<double> positive_only(const std::vector<double>& xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (x > 0.0) out.push_back(x);
  }
  if (out.empty()) {
    throw std::invalid_argument("distribution fit: no positive samples");
  }
  return out;
}

}  // namespace

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double aic(double log_likelihood, int n_params) {
  return 2.0 * n_params - 2.0 * log_likelihood;
}

double ExponentialFit::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return rate * std::exp(-rate * x);
}

double ExponentialFit::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate * x);
}

double LognormalFit::pdf(double x) const {
  if (x <= 0.0 || sigma <= 0.0) return 0.0;
  const double z = (std::log(x) - mu) / sigma;
  return std::exp(-0.5 * z * z) / (x * sigma * std::sqrt(2.0 * kPi));
}

double LognormalFit::cdf(double x) const {
  if (x <= 0.0 || sigma <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu) / sigma);
}

double WeibullFit::pdf(double x) const {
  if (x <= 0.0 || shape <= 0.0 || scale <= 0.0) return 0.0;
  const double t = x / scale;
  return (shape / scale) * std::pow(t, shape - 1.0) *
         std::exp(-std::pow(t, shape));
}

double WeibullFit::cdf(double x) const {
  if (x <= 0.0 || shape <= 0.0 || scale <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale, shape));
}

ExponentialFit fit_exponential(const std::vector<double>& xs) {
  const auto pos = positive_only(xs);
  double sum = 0.0;
  for (double x : pos) sum += x;
  ExponentialFit fit;
  fit.rate = static_cast<double>(pos.size()) / sum;
  double ll = 0.0;
  for (double x : pos) ll += std::log(fit.rate) - fit.rate * x;
  fit.log_likelihood = ll;
  return fit;
}

LognormalFit fit_lognormal(const std::vector<double>& xs) {
  const auto pos = positive_only(xs);
  const auto n = static_cast<double>(pos.size());
  double sum = 0.0;
  for (double x : pos) sum += std::log(x);
  const double mu = sum / n;
  double ss = 0.0;
  for (double x : pos) {
    const double d = std::log(x) - mu;
    ss += d * d;
  }
  LognormalFit fit;
  fit.mu = mu;
  fit.sigma = std::sqrt(ss / n);  // MLE uses the n denominator
  if (fit.sigma <= 0.0) fit.sigma = 1e-12;
  double ll = 0.0;
  for (double x : pos) ll += std::log(fit.pdf(x));
  fit.log_likelihood = ll;
  return fit;
}

WeibullFit fit_weibull(const std::vector<double>& xs) {
  const auto pos = positive_only(xs);
  const auto n = static_cast<double>(pos.size());
  std::vector<double> logs(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) logs[i] = std::log(pos[i]);
  double mean_log = 0.0;
  for (double l : logs) mean_log += l;
  mean_log /= n;

  // Profile likelihood equation for the shape k:
  //   g(k) = sum(x^k log x)/sum(x^k) - 1/k - mean(log x) = 0
  const auto g = [&](double k) {
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      const double xk = std::pow(pos[i], k);
      num += xk * logs[i];
      den += xk;
    }
    return num / den - 1.0 / k - mean_log;
  };

  WeibullFit fit;
  // Bracket the root; g is increasing in k for positive samples.
  double lo = 1e-3;
  double hi = 1.0;
  while (g(hi) < 0.0 && hi < 1e3) hi *= 2.0;
  if (g(hi) < 0.0 || g(lo) > 0.0) {
    fit.converged = false;
    fit.shape = 1.0;
  } else {
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (g(mid) < 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    fit.shape = 0.5 * (lo + hi);
    fit.converged = true;
  }
  double sk = 0.0;
  for (double x : pos) sk += std::pow(x, fit.shape);
  fit.scale = std::pow(sk / n, 1.0 / fit.shape);
  double ll = 0.0;
  for (double x : pos) {
    const double p = fit.pdf(x);
    ll += std::log(std::max(p, 1e-300));
  }
  fit.log_likelihood = ll;
  return fit;
}

}  // namespace wss::stats
