#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t n_bins)
    : lo_(lo), hi_(hi), bins_(n_bins, 0.0) {
  if (!(hi > lo) || n_bins == 0) {
    throw std::invalid_argument("LinearHistogram: bad range or bin count");
  }
}

void LinearHistogram::add(double x, double weight) {
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::size_t>(frac * static_cast<double>(bins_.size()));
  i = std::min(i, bins_.size() - 1);
  bins_[i] += weight;
}

double LinearHistogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins_.size());
}

double LinearHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double LinearHistogram::total() const {
  double t = underflow_ + overflow_;
  for (double b : bins_) t += b;
  return t;
}

LogHistogram::LogHistogram(double lo_exp, double hi_exp,
                           std::size_t bins_per_decade)
    : lo_exp_(lo_exp), hi_exp_(hi_exp), per_decade_(bins_per_decade) {
  if (!(hi_exp > lo_exp) || bins_per_decade == 0) {
    throw std::invalid_argument("LogHistogram: bad range or bin count");
  }
  const auto n = static_cast<std::size_t>(
      std::ceil((hi_exp - lo_exp) * static_cast<double>(bins_per_decade)));
  bins_.assign(std::max<std::size_t>(n, 1), 0.0);
}

void LogHistogram::add(double x, double weight) {
  if (!(x > 0.0)) {
    underflow_ += weight;
    return;
  }
  const double e = std::log10(x);
  if (e < lo_exp_) {
    underflow_ += weight;
    return;
  }
  if (e >= hi_exp_) {
    overflow_ += weight;
    return;
  }
  auto i = static_cast<std::size_t>((e - lo_exp_) *
                                    static_cast<double>(per_decade_));
  i = std::min(i, bins_.size() - 1);
  bins_[i] += weight;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return std::pow(10.0, lo_exp_ + static_cast<double>(i) /
                                      static_cast<double>(per_decade_));
}

double LogHistogram::bin_center(std::size_t i) const {
  const double e = lo_exp_ + (static_cast<double>(i) + 0.5) /
                                 static_cast<double>(per_decade_);
  return std::pow(10.0, e);
}

std::string LogHistogram::bin_label(std::size_t i) const {
  return util::format("%.0e", bin_lo(i));
}

double LogHistogram::total() const {
  double t = underflow_ + overflow_;
  for (double b : bins_) t += b;
  return t;
}

std::vector<std::size_t> LogHistogram::modes(double min_fraction,
                                             std::size_t merge_distance) const {
  std::vector<std::size_t> out;
  if (bins_.empty()) return out;
  const double tallest = *std::max_element(bins_.begin(), bins_.end());
  if (tallest <= 0.0) return out;
  const double floor = tallest * min_fraction;

  // A bin is a candidate mode if it is >= both neighbours and above the
  // height floor.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double left = i > 0 ? bins_[i - 1] : 0.0;
    const double right = i + 1 < bins_.size() ? bins_[i + 1] : 0.0;
    if (bins_[i] >= floor && bins_[i] >= left && bins_[i] >= right &&
        bins_[i] > 0.0) {
      candidates.push_back(i);
    }
  }
  // Merge candidates closer than merge_distance, keeping the taller.
  for (const std::size_t c : candidates) {
    if (!out.empty() && c - out.back() <= merge_distance) {
      if (bins_[c] > bins_[out.back()]) out.back() = c;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace wss::stats
