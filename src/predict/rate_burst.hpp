// Rate-burst predictor: the classic single-feature approach.
//
// Early work (Nassar & Andrews; Lin & Siewiorek, cited as [13]/[11] in
// the paper) observed that "failures tend to be preceded by an
// increased rate of non-fatal errors", and later prediction work used
// "message bursts" as the feature. This predictor fires when a
// category produces at least `burst_count` alerts within
// `burst_window`: it works on burst-shaped categories and abstains on
// independent (ECC-like) ones -- precisely the heterogeneity that
// motivates the ensemble.
#pragma once

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "predict/predictor.hpp"

namespace wss::predict {

/// Configuration for RateBurstPredictor.
struct RateBurstOptions {
  /// Fire when this many alerts of one category arrive...
  std::size_t burst_count = 8;
  /// ...within this window.
  util::TimeUs burst_window_us = 60 * util::kUsPerSec;
  util::TimeUs lead_us = 0;  ///< window start offset
  /// Prediction window: failures cluster, so a burst forecasts more
  /// trouble on a scale of hours (Section 4's interdependence).
  util::TimeUs window_us = 2 * 60 * util::kUsPerMin;
  /// Minimum spacing between predictions of one category (suppresses
  /// machine-gun re-warnings inside one burst).
  util::TimeUs refractory_us = 30 * util::kUsPerMin;
};

/// Per-category windowed-count burst detector.
class RateBurstPredictor final : public Predictor {
 public:
  explicit RateBurstPredictor(RateBurstOptions opts = {});

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "rate-burst"; }

  /// Checkpoint serialization (templated so the predict layer does not
  /// depend on the stream layer; unordered state is emitted in sorted
  /// key order for byte-stable output).
  template <class Writer>
  void save(Writer& w) const {
    std::vector<std::uint16_t> keys;
    keys.reserve(state_.size());
    for (const auto& [cat, st] : state_) keys.push_back(cat);
    std::sort(keys.begin(), keys.end());
    w.u64(static_cast<std::uint64_t>(keys.size()));
    for (const std::uint16_t cat : keys) {
      const State& st = state_.at(cat);
      w.u32(cat);
      w.u64(static_cast<std::uint64_t>(st.recent.size()));
      for (const util::TimeUs t : st.recent) w.i64(t);
      w.i64(st.last_fired);
      w.u8(st.fired_any ? 1 : 0);
    }
    w.u64(static_cast<std::uint64_t>(out_.size()));
    for (const Prediction& p : out_) {
      w.i64(p.issued_at);
      w.u32(p.category);
      w.i64(p.window_begin);
      w.i64(p.window_end);
    }
  }

  template <class Reader>
  void load(Reader& r) {
    state_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto cat = static_cast<std::uint16_t>(r.u32());
      State st;
      const std::uint64_t m = r.u64();
      for (std::uint64_t j = 0; j < m; ++j) st.recent.push_back(r.i64());
      st.last_fired = r.i64();
      st.fired_any = r.u8() != 0;
      state_.emplace(cat, std::move(st));
    }
    out_.clear();
    const std::uint64_t k = r.u64();
    for (std::uint64_t i = 0; i < k; ++i) {
      Prediction p;
      p.issued_at = r.i64();
      p.category = static_cast<std::uint16_t>(r.u32());
      p.window_begin = r.i64();
      p.window_end = r.i64();
      out_.push_back(p);
    }
  }

 private:
  struct State {
    std::deque<util::TimeUs> recent;  ///< last <= burst_count arrival times
    util::TimeUs last_fired = 0;
    bool fired_any = false;
  };

  RateBurstOptions opts_;
  std::unordered_map<std::uint16_t, State> state_;
  std::vector<Prediction> out_;
};

}  // namespace wss::predict
