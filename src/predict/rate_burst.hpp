// Rate-burst predictor: the classic single-feature approach.
//
// Early work (Nassar & Andrews; Lin & Siewiorek, cited as [13]/[11] in
// the paper) observed that "failures tend to be preceded by an
// increased rate of non-fatal errors", and later prediction work used
// "message bursts" as the feature. This predictor fires when a
// category produces at least `burst_count` alerts within
// `burst_window`: it works on burst-shaped categories and abstains on
// independent (ECC-like) ones -- precisely the heterogeneity that
// motivates the ensemble.
#pragma once

#include <deque>
#include <unordered_map>

#include "predict/predictor.hpp"

namespace wss::predict {

/// Configuration for RateBurstPredictor.
struct RateBurstOptions {
  /// Fire when this many alerts of one category arrive...
  std::size_t burst_count = 8;
  /// ...within this window.
  util::TimeUs burst_window_us = 60 * util::kUsPerSec;
  util::TimeUs lead_us = 0;  ///< window start offset
  /// Prediction window: failures cluster, so a burst forecasts more
  /// trouble on a scale of hours (Section 4's interdependence).
  util::TimeUs window_us = 2 * 60 * util::kUsPerMin;
  /// Minimum spacing between predictions of one category (suppresses
  /// machine-gun re-warnings inside one burst).
  util::TimeUs refractory_us = 30 * util::kUsPerMin;
};

/// Per-category windowed-count burst detector.
class RateBurstPredictor final : public Predictor {
 public:
  explicit RateBurstPredictor(RateBurstOptions opts = {});

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "rate-burst"; }

 private:
  struct State {
    std::deque<util::TimeUs> recent;  ///< last <= burst_count arrival times
    util::TimeUs last_fired = 0;
    bool fired_any = false;
  };

  RateBurstOptions opts_;
  std::unordered_map<std::uint16_t, State> state_;
  std::vector<Prediction> out_;
};

}  // namespace wss::predict
