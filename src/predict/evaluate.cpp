#include "predict/evaluate.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/strings.hpp"

namespace wss::predict {

std::vector<Incident> ground_truth_incidents(
    const std::vector<filter::Alert>& alerts) {
  std::vector<Incident> out;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& a : alerts) {
    if (a.failure_id == 0) continue;
    if (seen.insert(a.failure_id).second) {
      out.push_back({a.time, a.category});
    }
  }
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    return a.time < b.time;
  });
  return out;
}

namespace {

/// Per-category sorted incident times.
std::map<std::uint16_t, std::vector<util::TimeUs>> index_incidents(
    const std::vector<Incident>& incidents) {
  std::map<std::uint16_t, std::vector<util::TimeUs>> by_cat;
  for (const auto& inc : incidents) by_cat[inc.category].push_back(inc.time);
  for (auto& [cat, times] : by_cat) std::sort(times.begin(), times.end());
  return by_cat;
}

bool prediction_correct(
    const Prediction& p,
    const std::map<std::uint16_t, std::vector<util::TimeUs>>& by_cat) {
  const auto it = by_cat.find(p.category);
  if (it == by_cat.end()) return false;
  const auto& times = it->second;
  // First incident at or after max(window_begin, issued_at + 1).
  const util::TimeUs from = std::max(p.window_begin, p.issued_at + 1);
  const auto t = std::lower_bound(times.begin(), times.end(), from);
  return t != times.end() && *t <= p.window_end;
}

}  // namespace

PredictionScore score_predictions(const std::vector<Prediction>& predictions,
                                  const std::vector<Incident>& incidents) {
  const auto by_cat = index_incidents(incidents);
  PredictionScore s;
  s.predictions = predictions.size();
  s.incidents = incidents.size();
  for (const auto& p : predictions) {
    if (prediction_correct(p, by_cat)) ++s.correct_predictions;
  }
  // Recall: an incident is predicted if some prediction of its
  // category covers it and was issued before it.
  for (const auto& inc : incidents) {
    for (const auto& p : predictions) {
      if (p.category == inc.category && p.issued_at < inc.time &&
          p.window_begin <= inc.time && inc.time <= p.window_end) {
        ++s.incidents_predicted;
        break;
      }
    }
  }
  return s;
}

std::map<std::uint16_t, PredictionScore> score_by_category(
    const std::vector<Prediction>& predictions,
    const std::vector<Incident>& incidents) {
  std::map<std::uint16_t, std::vector<Prediction>> preds;
  std::map<std::uint16_t, std::vector<Incident>> incs;
  for (const auto& p : predictions) preds[p.category].push_back(p);
  for (const auto& i : incidents) incs[i.category].push_back(i);

  std::map<std::uint16_t, PredictionScore> out;
  for (const auto& [cat, ps] : preds) {
    out[cat] = score_predictions(ps, incs[cat]);
  }
  for (const auto& [cat, is] : incs) {
    if (!out.count(cat)) out[cat] = score_predictions({}, is);
  }
  return out;
}

std::vector<Prediction> run_predictor(
    Predictor& p, const std::vector<filter::Alert>& alerts) {
  p.reset();
  for (const auto& a : alerts) p.observe(a);
  return p.drain();
}

std::string PredictionScore::describe() const {
  return util::format(
      "predictions %zu (precision %.2f), incidents %zu (recall %.2f), "
      "F1 %.2f",
      predictions, precision(), incidents, recall(), f1());
}

}  // namespace wss::predict
