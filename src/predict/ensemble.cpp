#include "predict/ensemble.hpp"

#include <algorithm>
#include <stdexcept>

namespace wss::predict {

EnsemblePredictor::EnsemblePredictor(
    std::vector<std::unique_ptr<Predictor>> members)
    : members_(std::move(members)) {
  if (members_.empty()) {
    throw std::invalid_argument("EnsemblePredictor: no members");
  }
  for (const auto& m : members_) {
    if (!m) throw std::invalid_argument("EnsemblePredictor: null member");
  }
}

std::size_t EnsemblePredictor::fit_routing(
    const std::vector<filter::Alert>& training, double min_f1) {
  routing_.clear();
  const auto incidents = ground_truth_incidents(training);

  // Per member: per-category scores on the training stream.
  std::vector<std::map<std::uint16_t, PredictionScore>> scores;
  scores.reserve(members_.size());
  for (const auto& m : members_) {
    scores.push_back(
        score_by_category(run_predictor(*m, training), incidents));
  }

  // Route each category to the best positive-F1 member.
  std::map<std::uint16_t, double> best_f1;
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    for (const auto& [cat, score] : scores[mi]) {
      const double f1 = score.f1();
      if (f1 >= min_f1 && (!best_f1.count(cat) || f1 > best_f1[cat])) {
        best_f1[cat] = f1;
        routing_[cat] = mi;
      }
    }
  }
  for (const auto& m : members_) m->reset();
  return routing_.size();
}

void EnsemblePredictor::observe(const filter::Alert& a) {
  for (const auto& m : members_) m->observe(a);
}

std::vector<Prediction> EnsemblePredictor::drain() {
  std::vector<Prediction> out;
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    for (const auto& p : members_[mi]->drain()) {
      const auto it = routing_.find(p.category);
      if (it != routing_.end() && it->second == mi) out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Prediction& a, const Prediction& b) {
              return a.issued_at < b.issued_at;
            });
  return out;
}

void EnsemblePredictor::reset() {
  for (const auto& m : members_) m->reset();
}

}  // namespace wss::predict
