#include "predict/periodic.hpp"

#include <algorithm>
#include <map>

#include "stats/descriptive.hpp"

namespace wss::predict {

PeriodicPredictor::PeriodicPredictor(PeriodicOptions opts) : opts_(opts) {}

std::size_t PeriodicPredictor::fit(const std::vector<filter::Alert>& training) {
  period_.clear();
  std::map<std::uint16_t, std::vector<util::TimeUs>> starts;
  std::map<std::uint16_t, util::TimeUs> last;
  for (const auto& a : training) {
    const auto it = last.find(a.category);
    if (it == last.end() || a.time - it->second >= opts_.incident_gap_us) {
      starts[a.category].push_back(a.time);
    }
    last[a.category] = a.time;
  }
  for (const auto& [cat, times] : starts) {
    if (times.size() < opts_.min_incidents) continue;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(static_cast<double>(times[i] - times[i - 1]));
    }
    std::sort(gaps.begin(), gaps.end());
    const double median = stats::percentile_sorted(gaps, 0.5);
    const double iqr = stats::percentile_sorted(gaps, 0.75) -
                       stats::percentile_sorted(gaps, 0.25);
    if (median > 0.0 && iqr / median <= opts_.max_relative_iqr) {
      period_[cat] = static_cast<util::TimeUs>(median);
    }
  }
  last_seen_.clear();
  return period_.size();
}

util::TimeUs PeriodicPredictor::period_of(std::uint16_t category) const {
  const auto it = period_.find(category);
  return it == period_.end() ? 0 : it->second;
}

void PeriodicPredictor::observe(const filter::Alert& a) {
  const auto pit = period_.find(a.category);
  if (pit == period_.end()) return;  // not periodic: abstain
  const auto lit = last_seen_.find(a.category);
  const bool incident_start =
      lit == last_seen_.end() || a.time - lit->second >= opts_.incident_gap_us;
  last_seen_[a.category] = a.time;
  if (!incident_start) return;

  const auto period = pit->second;
  const auto slack = static_cast<util::TimeUs>(
      opts_.window_fraction * static_cast<double>(period));
  Prediction p;
  p.issued_at = a.time;
  p.category = a.category;
  p.window_begin = a.time + period - slack;
  p.window_end = a.time + period + slack;
  out_.push_back(p);
}

std::vector<Prediction> PeriodicPredictor::drain() {
  std::vector<Prediction> out;
  out.swap(out_);
  return out;
}

void PeriodicPredictor::reset() {
  last_seen_.clear();
  out_.clear();
}

}  // namespace wss::predict
