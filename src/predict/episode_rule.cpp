#include "predict/episode_rule.hpp"

namespace wss::predict {

std::size_t EpisodeRulePredictor::fit(
    const std::vector<filter::Alert>& training) {
  for (const filter::Alert& a : training) miner_.observe(a);
  miner_.clear_streaming_state();
  return miner_.rules().size();
}

void EpisodeRulePredictor::observe(const filter::Alert& a) {
  // The miner sees the alert first: the incident that fires a rule
  // also counts toward that rule's own statistics, exactly as it
  // would in a batch pass over the same stream.
  if (!miner_.observe(a)) return;
  for (const mine::EpisodeRule& rule : miner_.rules_from(a.category)) {
    Prediction p;
    p.issued_at = a.time;
    p.category = rule.successor;
    p.window_begin = a.time;
    p.window_end = a.time + miner_.options().window_us;
    out_.push_back(p);
  }
}

std::vector<Prediction> EpisodeRulePredictor::drain() {
  std::vector<Prediction> out;
  out.swap(out_);
  return out;
}

void EpisodeRulePredictor::reset() {
  miner_.clear_streaming_state();
  out_.clear();
}

}  // namespace wss::predict
