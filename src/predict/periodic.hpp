// Periodicity predictor.
//
// Some log phenomena recur on a clock (partially periodic event
// patterns are the subject of the paper's citation [12], Ma &
// Hellerstein). This predictor estimates the median incident
// interarrival per category on a training stream; when the spread of
// interarrivals is tight enough to call the category periodic, each
// incident predicts the next one around t + median. On the simulated
// corpora nothing is truly periodic, so this member mostly abstains --
// which is itself the point of the ensemble experiment: predictors
// must be matched to failure categories.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "predict/predictor.hpp"

namespace wss::predict {

/// Configuration for PeriodicPredictor.
struct PeriodicOptions {
  /// Category is periodic if (p75 - p25) / median of interarrivals is
  /// below this.
  double max_relative_iqr = 0.3;
  std::size_t min_incidents = 6;
  /// Prediction window around the expected next time, as a fraction
  /// of the period.
  double window_fraction = 0.35;
  util::TimeUs incident_gap_us = 30 * util::kUsPerSec;
};

/// Predicts the next incident of near-periodic categories.
class PeriodicPredictor final : public Predictor {
 public:
  explicit PeriodicPredictor(PeriodicOptions opts = {});

  /// Learns per-category periods; returns the number of categories
  /// deemed periodic.
  std::size_t fit(const std::vector<filter::Alert>& training);

  /// Learned period for a category (0 if not periodic).
  util::TimeUs period_of(std::uint16_t category) const;

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "periodic"; }

  /// Checkpoint serialization (learned periods + streaming position;
  /// unordered state in sorted key order for byte-stable output).
  template <class Writer>
  void save(Writer& w) const {
    save_map(w, period_);
    save_map(w, last_seen_);
    w.u64(static_cast<std::uint64_t>(out_.size()));
    for (const Prediction& p : out_) {
      w.i64(p.issued_at);
      w.u32(p.category);
      w.i64(p.window_begin);
      w.i64(p.window_end);
    }
  }

  template <class Reader>
  void load(Reader& r) {
    load_map(r, period_);
    load_map(r, last_seen_);
    out_.clear();
    const std::uint64_t k = r.u64();
    for (std::uint64_t i = 0; i < k; ++i) {
      Prediction p;
      p.issued_at = r.i64();
      p.category = static_cast<std::uint16_t>(r.u32());
      p.window_begin = r.i64();
      p.window_end = r.i64();
      out_.push_back(p);
    }
  }

 private:
  template <class Writer>
  static void save_map(
      Writer& w, const std::unordered_map<std::uint16_t, util::TimeUs>& m) {
    std::vector<std::uint16_t> keys;
    keys.reserve(m.size());
    for (const auto& [cat, t] : m) keys.push_back(cat);
    std::sort(keys.begin(), keys.end());
    w.u64(static_cast<std::uint64_t>(keys.size()));
    for (const std::uint16_t cat : keys) {
      w.u32(cat);
      w.i64(m.at(cat));
    }
  }

  template <class Reader>
  static void load_map(Reader& r,
                       std::unordered_map<std::uint16_t, util::TimeUs>& m) {
    m.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto cat = static_cast<std::uint16_t>(r.u32());
      m[cat] = r.i64();
    }
  }

  PeriodicOptions opts_;
  std::unordered_map<std::uint16_t, util::TimeUs> period_;
  std::unordered_map<std::uint16_t, util::TimeUs> last_seen_;
  std::vector<Prediction> out_;
};

}  // namespace wss::predict
