// Periodicity predictor.
//
// Some log phenomena recur on a clock (partially periodic event
// patterns are the subject of the paper's citation [12], Ma &
// Hellerstein). This predictor estimates the median incident
// interarrival per category on a training stream; when the spread of
// interarrivals is tight enough to call the category periodic, each
// incident predicts the next one around t + median. On the simulated
// corpora nothing is truly periodic, so this member mostly abstains --
// which is itself the point of the ensemble experiment: predictors
// must be matched to failure categories.
#pragma once

#include <unordered_map>

#include "predict/predictor.hpp"

namespace wss::predict {

/// Configuration for PeriodicPredictor.
struct PeriodicOptions {
  /// Category is periodic if (p75 - p25) / median of interarrivals is
  /// below this.
  double max_relative_iqr = 0.3;
  std::size_t min_incidents = 6;
  /// Prediction window around the expected next time, as a fraction
  /// of the period.
  double window_fraction = 0.35;
  util::TimeUs incident_gap_us = 30 * util::kUsPerSec;
};

/// Predicts the next incident of near-periodic categories.
class PeriodicPredictor final : public Predictor {
 public:
  explicit PeriodicPredictor(PeriodicOptions opts = {});

  /// Learns per-category periods; returns the number of categories
  /// deemed periodic.
  std::size_t fit(const std::vector<filter::Alert>& training);

  /// Learned period for a category (0 if not periodic).
  util::TimeUs period_of(std::uint16_t category) const;

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "periodic"; }

 private:
  PeriodicOptions opts_;
  std::unordered_map<std::uint16_t, util::TimeUs> period_;
  std::unordered_map<std::uint16_t, util::TimeUs> last_seen_;
  std::vector<Prediction> out_;
};

}  // namespace wss::predict
