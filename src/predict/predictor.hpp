// Failure prediction (the paper's Section 5 recommendation).
//
// "Whereas the failures in this study have widely varying signatures,
// previous prediction approaches focused on single features for
// detecting all failure types ... Future research should consider
// ensembles of predictors based on multiple features, with failure
// categories being predicted according to their respective behavior."
//
// This module implements exactly that: three single-feature predictors
// (rate burst, cross-category precursor, periodicity) and an ensemble
// that routes each category to whichever member predicts it best on a
// training split. predict/evaluate.hpp scores predictions against the
// simulator's ground-truth failures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "filter/alert.hpp"
#include "util/time.hpp"

namespace wss::predict {

/// One issued warning: "a failure of `category` is expected within
/// [window_begin, window_end]". Issued strictly from data seen up to
/// `issued_at` (predictors are streaming and cannot look ahead).
struct Prediction {
  util::TimeUs issued_at = 0;
  std::uint16_t category = 0;
  util::TimeUs window_begin = 0;
  util::TimeUs window_end = 0;
};

/// Streaming predictor interface. observe() consumes the raw alert
/// stream in time order; predictions accumulate and are collected with
/// drain().
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Consumes one alert (time-ordered).
  virtual void observe(const filter::Alert& a) = 0;

  /// Returns and clears the predictions issued so far.
  virtual std::vector<Prediction> drain() = 0;

  /// Restores the initial state (learned parameters are kept; only
  /// the streaming state is reset).
  virtual void reset() = 0;

  virtual std::string name() const = 0;
};

}  // namespace wss::predict
