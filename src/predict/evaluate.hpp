// Scoring predictions against ground-truth failures.
//
// A prediction is *correct* if a failure of the predicted category
// begins inside its window and strictly after it was issued (warning
// about an incident already underway does not count). Recall is over
// incidents, precision over predictions -- "limiting false positives
// to an operationally-acceptable rate tends to be the critical factor"
// (Section 3.3.2) applies to predictors just as to filters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "predict/predictor.hpp"

namespace wss::predict {

/// A ground-truth failure onset.
struct Incident {
  util::TimeUs time = 0;      ///< time of the failure's first alert
  std::uint16_t category = 0;
};

/// Derives incidents from a time-sorted alert stream: the first alert
/// of each distinct failure_id (alerts with failure_id 0 are ignored).
std::vector<Incident> ground_truth_incidents(
    const std::vector<filter::Alert>& alerts);

/// Aggregate prediction quality.
struct PredictionScore {
  std::size_t predictions = 0;
  std::size_t correct_predictions = 0;
  std::size_t incidents = 0;
  std::size_t incidents_predicted = 0;

  double precision() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(correct_predictions) /
                                  static_cast<double>(predictions);
  }
  double recall() const {
    return incidents == 0 ? 0.0
                          : static_cast<double>(incidents_predicted) /
                                static_cast<double>(incidents);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  std::string describe() const;
};

/// Scores predictions against incidents (both may be unsorted).
PredictionScore score_predictions(const std::vector<Prediction>& predictions,
                                  const std::vector<Incident>& incidents);

/// Same, broken down by category.
std::map<std::uint16_t, PredictionScore> score_by_category(
    const std::vector<Prediction>& predictions,
    const std::vector<Incident>& incidents);

/// Convenience: reset `p`, stream `alerts` through it, return its
/// predictions.
std::vector<Prediction> run_predictor(Predictor& p,
                                      const std::vector<filter::Alert>& alerts);

}  // namespace wss::predict
