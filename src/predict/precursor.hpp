// Precursor predictor: cross-category signatures.
//
// Figure 3's GM_PAR -> GM_LANAI relationship and Figure 4's
// PBS_CHK -> PBS_BFD pairing are exactly the "predictive signature"
// the paper says some failure categories have: an alert of category A
// raises the probability of a failure of category B shortly after.
// fit() estimates P(B within the window | A incident) on a training
// stream and keeps pairs above a confidence floor; at run time every
// A-incident issues a B-prediction.
#pragma once

#include <algorithm>
#include <map>
#include <unordered_map>

#include "predict/predictor.hpp"

namespace wss::predict {

/// Configuration for PrecursorPredictor.
struct PrecursorOptions {
  util::TimeUs window_us = 10 * util::kUsPerMin;  ///< B expected within this
  double min_confidence = 0.4;   ///< keep pair if P(B | A) >= this
  std::size_t min_support = 4;   ///< and at least this many A incidents
  /// Incident detection: an alert starts a new incident of its
  /// category if the previous one is at least this old.
  util::TimeUs incident_gap_us = 30 * util::kUsPerSec;
};

/// Learns (A -> B) precursor pairs from a training stream, then
/// predicts B after each A incident.
class PrecursorPredictor final : public Predictor {
 public:
  explicit PrecursorPredictor(PrecursorOptions opts = {});

  /// Learns precursor pairs from a time-sorted training stream.
  /// Returns the number of pairs kept.
  std::size_t fit(const std::vector<filter::Alert>& training);

  /// The learned pairs: precursor category -> predicted category.
  const std::multimap<std::uint16_t, std::uint16_t>& pairs() const {
    return pairs_;
  }

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "precursor"; }

  /// Checkpoint serialization (learned pairs + streaming position;
  /// unordered state in sorted key order for byte-stable output).
  template <class Writer>
  void save(Writer& w) const {
    w.u64(static_cast<std::uint64_t>(pairs_.size()));
    for (const auto& [a, b] : pairs_) {
      w.u32(a);
      w.u32(b);
    }
    std::vector<std::uint16_t> keys;
    keys.reserve(last_seen_.size());
    for (const auto& [cat, t] : last_seen_) keys.push_back(cat);
    std::sort(keys.begin(), keys.end());
    w.u64(static_cast<std::uint64_t>(keys.size()));
    for (const std::uint16_t cat : keys) {
      w.u32(cat);
      w.i64(last_seen_.at(cat));
    }
    w.u64(static_cast<std::uint64_t>(out_.size()));
    for (const Prediction& p : out_) {
      w.i64(p.issued_at);
      w.u32(p.category);
      w.i64(p.window_begin);
      w.i64(p.window_end);
    }
  }

  template <class Reader>
  void load(Reader& r) {
    pairs_.clear();
    const std::uint64_t np = r.u64();
    for (std::uint64_t i = 0; i < np; ++i) {
      const auto a = static_cast<std::uint16_t>(r.u32());
      const auto b = static_cast<std::uint16_t>(r.u32());
      pairs_.emplace(a, b);
    }
    last_seen_.clear();
    const std::uint64_t nl = r.u64();
    for (std::uint64_t i = 0; i < nl; ++i) {
      const auto cat = static_cast<std::uint16_t>(r.u32());
      last_seen_[cat] = r.i64();
    }
    out_.clear();
    const std::uint64_t k = r.u64();
    for (std::uint64_t i = 0; i < k; ++i) {
      Prediction p;
      p.issued_at = r.i64();
      p.category = static_cast<std::uint16_t>(r.u32());
      p.window_begin = r.i64();
      p.window_end = r.i64();
      out_.push_back(p);
    }
  }

 private:
  /// True if `a` begins a new incident of its category (both during
  /// fit and during streaming).
  bool is_incident_start(std::unordered_map<std::uint16_t, util::TimeUs>& last,
                         const filter::Alert& a) const;

  PrecursorOptions opts_;
  std::multimap<std::uint16_t, std::uint16_t> pairs_;
  std::unordered_map<std::uint16_t, util::TimeUs> last_seen_;
  std::vector<Prediction> out_;
};

}  // namespace wss::predict
