// Precursor predictor: cross-category signatures.
//
// Figure 3's GM_PAR -> GM_LANAI relationship and Figure 4's
// PBS_CHK -> PBS_BFD pairing are exactly the "predictive signature"
// the paper says some failure categories have: an alert of category A
// raises the probability of a failure of category B shortly after.
// fit() estimates P(B within the window | A incident) on a training
// stream and keeps pairs above a confidence floor; at run time every
// A-incident issues a B-prediction.
#pragma once

#include <map>
#include <unordered_map>

#include "predict/predictor.hpp"

namespace wss::predict {

/// Configuration for PrecursorPredictor.
struct PrecursorOptions {
  util::TimeUs window_us = 10 * util::kUsPerMin;  ///< B expected within this
  double min_confidence = 0.4;   ///< keep pair if P(B | A) >= this
  std::size_t min_support = 4;   ///< and at least this many A incidents
  /// Incident detection: an alert starts a new incident of its
  /// category if the previous one is at least this old.
  util::TimeUs incident_gap_us = 30 * util::kUsPerSec;
};

/// Learns (A -> B) precursor pairs from a training stream, then
/// predicts B after each A incident.
class PrecursorPredictor final : public Predictor {
 public:
  explicit PrecursorPredictor(PrecursorOptions opts = {});

  /// Learns precursor pairs from a time-sorted training stream.
  /// Returns the number of pairs kept.
  std::size_t fit(const std::vector<filter::Alert>& training);

  /// The learned pairs: precursor category -> predicted category.
  const std::multimap<std::uint16_t, std::uint16_t>& pairs() const {
    return pairs_;
  }

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "precursor"; }

 private:
  /// True if `a` begins a new incident of its category (both during
  /// fit and during streaming).
  bool is_incident_start(std::unordered_map<std::uint16_t, util::TimeUs>& last,
                         const filter::Alert& a) const;

  PrecursorOptions opts_;
  std::multimap<std::uint16_t, std::uint16_t> pairs_;
  std::unordered_map<std::uint16_t, util::TimeUs> last_seen_;
  std::vector<Prediction> out_;
};

}  // namespace wss::predict
