#include "predict/rate_burst.hpp"

namespace wss::predict {

RateBurstPredictor::RateBurstPredictor(RateBurstOptions opts) : opts_(opts) {}

void RateBurstPredictor::observe(const filter::Alert& a) {
  State& st = state_[a.category];
  st.recent.push_back(a.time);
  while (st.recent.size() > opts_.burst_count) st.recent.pop_front();

  const bool bursting =
      st.recent.size() == opts_.burst_count &&
      a.time - st.recent.front() <= opts_.burst_window_us;
  const bool refractory =
      st.fired_any && a.time - st.last_fired < opts_.refractory_us;
  if (bursting && !refractory) {
    Prediction p;
    p.issued_at = a.time;
    p.category = a.category;
    p.window_begin = a.time + opts_.lead_us;
    p.window_end = p.window_begin + opts_.window_us;
    out_.push_back(p);
    st.last_fired = a.time;
    st.fired_any = true;
  }
}

std::vector<Prediction> RateBurstPredictor::drain() {
  std::vector<Prediction> out;
  out.swap(out_);
  return out;
}

void RateBurstPredictor::reset() {
  state_.clear();
  out_.clear();
}

}  // namespace wss::predict
