#include "predict/precursor.hpp"

#include <algorithm>

namespace wss::predict {

PrecursorPredictor::PrecursorPredictor(PrecursorOptions opts) : opts_(opts) {}

bool PrecursorPredictor::is_incident_start(
    std::unordered_map<std::uint16_t, util::TimeUs>& last,
    const filter::Alert& a) const {
  const auto it = last.find(a.category);
  const bool fresh =
      it == last.end() || a.time - it->second >= opts_.incident_gap_us;
  last[a.category] = a.time;
  return fresh;
}

std::size_t PrecursorPredictor::fit(
    const std::vector<filter::Alert>& training) {
  pairs_.clear();

  // Incident start times per category.
  std::map<std::uint16_t, std::vector<util::TimeUs>> starts;
  {
    std::unordered_map<std::uint16_t, util::TimeUs> last;
    for (const auto& a : training) {
      if (is_incident_start(last, a)) starts[a.category].push_back(a.time);
    }
  }

  // For each ordered pair (A, B): fraction of A incidents followed by
  // a B incident within the window.
  for (const auto& [a_cat, a_times] : starts) {
    if (a_times.size() < opts_.min_support) continue;
    for (const auto& [b_cat, b_times] : starts) {
      if (a_cat == b_cat) continue;
      std::size_t hits = 0;
      for (const auto t : a_times) {
        const auto it =
            std::upper_bound(b_times.begin(), b_times.end(), t);
        if (it != b_times.end() && *it - t <= opts_.window_us) ++hits;
      }
      const double confidence = static_cast<double>(hits) /
                                static_cast<double>(a_times.size());
      if (confidence >= opts_.min_confidence) {
        pairs_.emplace(a_cat, b_cat);
      }
    }
  }
  last_seen_.clear();
  return pairs_.size();
}

void PrecursorPredictor::observe(const filter::Alert& a) {
  if (!is_incident_start(last_seen_, a)) return;
  const auto [lo, hi] = pairs_.equal_range(a.category);
  for (auto it = lo; it != hi; ++it) {
    Prediction p;
    p.issued_at = a.time;
    p.category = it->second;
    p.window_begin = a.time;
    p.window_end = a.time + opts_.window_us;
    out_.push_back(p);
  }
}

std::vector<Prediction> PrecursorPredictor::drain() {
  std::vector<Prediction> out;
  out.swap(out_);
  return out;
}

void PrecursorPredictor::reset() {
  last_seen_.clear();
  out_.clear();
}

}  // namespace wss::predict
