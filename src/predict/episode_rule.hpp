// Episode-rule predictor: the online-miner-backed ensemble member.
//
// Unlike PrecursorPredictor, whose (A -> B) pairs are frozen at fit()
// time, this member consults mine::EpisodeMiner's *live* rule table:
// rules keep accumulating support while the predictor runs, so a
// correlation that only becomes significant after deployment starts
// firing without a refit. Each alert first updates the miner; when the
// alert begins an incident of category A, every current rule A -> B
// above the support/confidence floors issues a B-prediction for the
// episode window.
#pragma once

#include <algorithm>

#include "mine/episodes.hpp"
#include "predict/predictor.hpp"

namespace wss::predict {

/// Predicts successors of mined episode rules as they fire.
class EpisodeRulePredictor final : public Predictor {
 public:
  explicit EpisodeRulePredictor(mine::EpisodeOptions opts = {})
      : miner_(opts) {}

  /// Streams `training` through the miner (pre-seeding the rule table
  /// the way fit() pre-seeds the other members), then clears the
  /// streaming position. Returns the number of rules above floors.
  std::size_t fit(const std::vector<filter::Alert>& training);

  const mine::EpisodeMiner& miner() const { return miner_; }

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "episode"; }

  template <class Writer>
  void save(Writer& w) const {
    miner_.save(w);
    w.u64(static_cast<std::uint64_t>(out_.size()));
    for (const Prediction& p : out_) {
      w.i64(p.issued_at);
      w.u32(p.category);
      w.i64(p.window_begin);
      w.i64(p.window_end);
    }
  }

  template <class Reader>
  void load(Reader& r) {
    miner_.load(r);
    out_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Prediction p;
      p.issued_at = r.i64();
      p.category = static_cast<std::uint16_t>(r.u32());
      p.window_begin = r.i64();
      p.window_end = r.i64();
      out_.push_back(p);
    }
  }

 private:
  mine::EpisodeMiner miner_;
  std::vector<Prediction> out_;
};

}  // namespace wss::predict
