// The ensemble: per-category routing across single-feature predictors.
//
// "Just as filtering would benefit from catering to specific classes
// of failures, predictors should specialize in sets of failures with
// similar predictive behaviors." (Section 5) fit_routing() evaluates
// every member per category on a training stream and routes each
// category to the member with the best F1 (categories nobody predicts
// well are left unrouted: the ensemble abstains rather than spam).
#pragma once

#include <map>
#include <memory>

#include "predict/evaluate.hpp"
#include "predict/predictor.hpp"

namespace wss::predict {

/// Per-category best-member router over a set of predictors.
class EnsemblePredictor final : public Predictor {
 public:
  /// Takes ownership of the members (which must already be fitted, if
  /// they have a fit step).
  explicit EnsemblePredictor(std::vector<std::unique_ptr<Predictor>> members);

  /// Chooses, for each category with ground-truth incidents in
  /// `training`, the member whose predictions score the best F1 of at
  /// least `min_f1` on it (the floor keeps noise-level skill from
  /// being routed). Returns the number of routed categories.
  std::size_t fit_routing(const std::vector<filter::Alert>& training,
                          double min_f1 = 0.02);

  /// The routing table: category -> member index.
  const std::map<std::uint16_t, std::size_t>& routing() const {
    return routing_;
  }

  std::size_t member_count() const { return members_.size(); }
  const Predictor& member(std::size_t i) const { return *members_.at(i); }

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "ensemble"; }

 private:
  std::vector<std::unique_ptr<Predictor>> members_;
  std::map<std::uint16_t, std::size_t> routing_;
};

}  // namespace wss::predict
