// The ensemble: per-category routing across single-feature predictors.
//
// "Just as filtering would benefit from catering to specific classes
// of failures, predictors should specialize in sets of failures with
// similar predictive behaviors." (Section 5) fit_routing() evaluates
// every member per category on a training stream and routes each
// category to the member with the best F1 (categories nobody predicts
// well are left unrouted: the ensemble abstains rather than spam).
#pragma once

#include <map>
#include <memory>
#include <stdexcept>

#include "predict/evaluate.hpp"
#include "predict/predictor.hpp"

namespace wss::predict {

/// Per-category best-member router over a set of predictors.
class EnsemblePredictor final : public Predictor {
 public:
  /// Takes ownership of the members (which must already be fitted, if
  /// they have a fit step).
  explicit EnsemblePredictor(std::vector<std::unique_ptr<Predictor>> members);

  /// Chooses, for each category with ground-truth incidents in
  /// `training`, the member whose predictions score the best F1 of at
  /// least `min_f1` on it (the floor keeps noise-level skill from
  /// being routed). Returns the number of routed categories.
  std::size_t fit_routing(const std::vector<filter::Alert>& training,
                          double min_f1 = 0.02);

  /// The routing table: category -> member index.
  const std::map<std::uint16_t, std::size_t>& routing() const {
    return routing_;
  }

  std::size_t member_count() const { return members_.size(); }
  const Predictor& member(std::size_t i) const { return *members_.at(i); }

  void observe(const filter::Alert& a) override;
  std::vector<Prediction> drain() override;
  void reset() override;
  std::string name() const override { return "ensemble"; }

  /// Routing-table serialization; members serialize themselves (the
  /// owner knows their concrete types).
  template <class Writer>
  void save_routing(Writer& w) const {
    w.u64(static_cast<std::uint64_t>(routing_.size()));
    for (const auto& [cat, idx] : routing_) {
      w.u32(cat);
      w.u64(static_cast<std::uint64_t>(idx));
    }
  }

  template <class Reader>
  void load_routing(Reader& r) {
    routing_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto cat = static_cast<std::uint16_t>(r.u32());
      const auto idx = static_cast<std::size_t>(r.u64());
      if (idx >= members_.size()) {
        throw std::runtime_error("ensemble: routed member index out of range");
      }
      routing_[cat] = idx;
    }
  }

 private:
  std::vector<std::unique_ptr<Predictor>> members_;
  std::map<std::uint16_t, std::size_t> routing_;
};

}  // namespace wss::predict
