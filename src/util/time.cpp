#include "util/time.hpp"

#include <array>
#include <cstdio>

namespace wss::util {

namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

char lower(char c) { return (c >= 'A' && c <= 'Z') ? char(c - 'A' + 'a') : c; }

}  // namespace

std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  year = static_cast<int>(y + (m <= 2));
  month = static_cast<int>(m);
  day = static_cast<int>(d);
}

TimeUs to_time_us(const CivilTime& ct) {
  const std::int64_t days = days_from_civil(ct.year, ct.month, ct.day);
  return days * kUsPerDay + ct.hour * kUsPerHour + ct.minute * kUsPerMin +
         ct.second * kUsPerSec + ct.micros;
}

CivilTime to_civil(TimeUs t) {
  std::int64_t days = t / kUsPerDay;
  std::int64_t rem = t % kUsPerDay;
  if (rem < 0) {
    rem += kUsPerDay;
    days -= 1;
  }
  CivilTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(rem / kUsPerHour);
  rem %= kUsPerHour;
  ct.minute = static_cast<int>(rem / kUsPerMin);
  rem %= kUsPerMin;
  ct.second = static_cast<int>(rem / kUsPerSec);
  ct.micros = static_cast<int>(rem % kUsPerSec);
  return ct;
}

std::string_view month_abbrev(int month) {
  if (month < 1 || month > 12) return "???";
  return kMonths[static_cast<std::size_t>(month - 1)];
}

int parse_month_abbrev(std::string_view s) {
  if (s.size() < 3) return 0;
  for (int m = 1; m <= 12; ++m) {
    const std::string_view ref = kMonths[static_cast<std::size_t>(m - 1)];
    if (lower(s[0]) == lower(ref[0]) && lower(s[1]) == lower(ref[1]) &&
        lower(s[2]) == lower(ref[2])) {
      return m;
    }
  }
  return 0;
}

std::string format_syslog(TimeUs t) {
  const CivilTime ct = to_civil(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3s %2d %02d:%02d:%02d",
                month_abbrev(ct.month).data(), ct.day, ct.hour, ct.minute,
                ct.second);
  return buf;
}

std::string format_bgl(TimeUs t) {
  const CivilTime ct = to_civil(t);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d-%02d.%02d.%02d.%06d",
                ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second,
                ct.micros);
  return buf;
}

std::string format_iso(TimeUs t) {
  const CivilTime ct = to_civil(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

std::string format_duration(TimeUs us) {
  char buf[32];
  const double s = static_cast<double>(us) / static_cast<double>(kUsPerSec);
  if (us < kUsPerSec) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  } else if (us < kUsPerMin) {
    std::snprintf(buf, sizeof(buf), "%.1fs", s);
  } else if (us < kUsPerHour) {
    std::snprintf(buf, sizeof(buf), "%.1fm", s / 60.0);
  } else if (us < kUsPerDay) {
    std::snprintf(buf, sizeof(buf), "%.1fh", s / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fd", s / 86400.0);
  }
  return buf;
}

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

}  // namespace wss::util
