// Civil-time utilities.
//
// The five systems in the study timestamp messages differently: syslog
// lines carry a one-second-granularity "Mon dd hh:mm:ss" stamp with no
// year; BG/L RAS records carry microsecond-granularity ISO-style stamps.
// Everything inside the library is therefore carried as microseconds
// since the Unix epoch (UTC), and this header provides the conversions.
//
// The civil <-> day-count algorithms are the classic Howard Hinnant
// public-domain formulas, valid over the whole int64 microsecond range
// we care about (years 1..9999).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wss::util {

/// Microseconds since the Unix epoch, UTC. The library-wide time type.
using TimeUs = std::int64_t;

inline constexpr TimeUs kUsPerSec = 1'000'000;
inline constexpr TimeUs kUsPerMin = 60 * kUsPerSec;
inline constexpr TimeUs kUsPerHour = 60 * kUsPerMin;
inline constexpr TimeUs kUsPerDay = 24 * kUsPerHour;

/// A broken-down UTC civil time.
struct CivilTime {
  int year = 1970;   ///< e.g. 2005
  int month = 1;     ///< 1..12
  int day = 1;       ///< 1..31
  int hour = 0;      ///< 0..23
  int minute = 0;    ///< 0..59
  int second = 0;    ///< 0..59 (no leap seconds)
  int micros = 0;    ///< 0..999999

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Days since the epoch for a civil date (Hinnant's days_from_civil).
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month, int& day);

/// Converts a civil time to microseconds since the epoch.
TimeUs to_time_us(const CivilTime& ct);

/// Converts microseconds since the epoch to a civil time.
CivilTime to_civil(TimeUs t);

/// Three-letter English month abbreviation, capitalized ("Jan".."Dec").
/// `month` is 1-based; out-of-range returns "???".
std::string_view month_abbrev(int month);

/// Parses a three-letter month abbreviation (case-insensitive).
/// Returns 1..12, or 0 if unrecognized.
int parse_month_abbrev(std::string_view s);

/// Formats like syslog: "Jan  2 03:04:05" (day space-padded, no year).
std::string format_syslog(TimeUs t);

/// Formats like the BG/L RAS database: "2005-06-03-15.42.50.363779".
std::string format_bgl(TimeUs t);

/// Formats as ISO-8601 "2005-06-03 15:42:50" (second granularity).
std::string format_iso(TimeUs t);

/// Formats a duration in microseconds as a short human string, e.g.
/// "5s", "3.2m", "1.5h", "2.3d".
std::string format_duration(TimeUs us);

/// True if `year` is a leap year in the proleptic Gregorian calendar.
bool is_leap_year(int year);

/// Number of days in `month` (1..12) of `year`; 0 for invalid month.
int days_in_month(int year, int month);

}  // namespace wss::util
