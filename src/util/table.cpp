#include "util/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace wss::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void Table::set_align(std::size_t col, Align a) {
  if (col >= align_.size()) throw std::out_of_range("Table: bad column");
  align_[col] = a;
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(Row{false, std::move(row)});
  ++n_data_rows_;
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

void Table::set_title(std::string title) { title_ = std::move(title); }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  const auto emit_cell = [&](std::string& out, const std::string& cell,
                             std::size_t c) {
    const std::size_t pad = width[c] - cell.size();
    if (align_[c] == Align::kRight) out.append(pad, ' ');
    out.append(cell);
    if (align_[c] == Align::kLeft) out.append(pad, ' ');
  };

  const auto emit_rule = [&](std::string& out) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c > 0) out.append("-+-");
      out.append(width[c], '-');
    }
    out.push_back('\n');
  };

  std::string out;
  if (!title_.empty()) {
    out.append(title_);
    out.push_back('\n');
  }
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out.append(" | ");
    emit_cell(out, header_[c], c);
  }
  out.push_back('\n');
  emit_rule(out);
  for (const Row& r : rows_) {
    if (r.separator) {
      emit_rule(out);
      continue;
    }
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      if (c > 0) out.append(" | ");
      emit_cell(out, r.cells[c], c);
    }
    // Trim trailing spaces left-aligned final columns may produce.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  }
  return out;
}

}  // namespace wss::util
