// Aligned plain-text table rendering.
//
// Every reproduced table in the benchmark harness is printed through
// this class so that paper-vs-measured comparisons line up visually.
#pragma once

#include <string>
#include <vector>

namespace wss::util {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Builds and renders a fixed-column ASCII table.
///
/// Usage:
///   Table t({"System", "Messages"});
///   t.add_row({"Liberty", "265,569,231"});
///   std::cout << t.render();
class Table {
 public:
  /// Creates a table with the given header row. Column count is fixed
  /// by the header; rows with a different arity throw.
  explicit Table(std::vector<std::string> header);

  /// Sets the alignment of column `col` (default: left for the first
  /// column, right for the rest — the convention used by the paper's
  /// count-heavy tables).
  void set_align(std::size_t col, Align a);

  /// Appends a data row. Throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator at the current position.
  void add_separator();

  /// Optional table title printed above the header.
  void set_title(std::string title);

  /// Renders the table with a header separator and aligned columns.
  std::string render() const;

  /// Number of data rows added so far (separators excluded).
  std::size_t row_count() const { return n_data_rows_; }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
  std::size_t n_data_rows_ = 0;
};

}  // namespace wss::util
