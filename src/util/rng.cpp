#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wss::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // All-zero state is the one invalid state for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const State& st) {
  if ((st.s[0] | st.s[1] | st.s[2] | st.s[3]) == 0) {
    throw std::invalid_argument("Rng::set_state: all-zero state");
  }
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  cached_normal_ = st.cached_normal;
  has_cached_normal_ = st.has_cached_normal;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_u64: n must be > 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_i64: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // bulk-count use cases in the simulator.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_index: no positive weight");
  }
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = std::max(weights[i], 0.0);
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bin
}

Rng Rng::fork() { return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ull); }

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t Zipf::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Zipf::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace wss::util
