#include "util/chart.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace wss::util {

namespace {

struct Bounds {
  double lo = 0.0;
  double hi = 1.0;
};

Bounds find_bounds(const std::vector<double>& v) {
  Bounds b;
  if (v.empty()) return b;
  b.lo = *std::min_element(v.begin(), v.end());
  b.hi = *std::max_element(v.begin(), v.end());
  if (b.hi <= b.lo) b.hi = b.lo + 1.0;
  return b;
}

}  // namespace

std::string bar_chart(const std::vector<std::string>& labels,
                      const std::vector<double>& values, std::size_t width) {
  std::string out;
  if (values.empty()) return out;
  const double maxv =
      std::max(1e-300, *std::max_element(values.begin(), values.end()));
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string label = i < labels.size() ? labels[i] : std::string();
    out.append(label);
    out.append(label_w - label.size(), ' ');
    out.append(" |");
    const double frac = std::max(0.0, values[i]) / maxv;
    const auto n = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(width)));
    out.append(n, '#');
    out.push_back(' ');
    out.append(format("%.6g", values[i]));
    out.push_back('\n');
  }
  return out;
}

std::string column_chart(const std::vector<double>& values, std::size_t height,
                         const std::vector<std::string>& bin_labels) {
  std::string out;
  if (values.empty() || height == 0) return out;
  const double maxv =
      std::max(1e-300, *std::max_element(values.begin(), values.end()));
  for (std::size_t row = 0; row < height; ++row) {
    const double threshold =
        maxv * static_cast<double>(height - row) / static_cast<double>(height);
    // y-axis label on the first and middle rows for scale.
    if (row == 0) {
      out.append(format("%10.4g |", maxv));
    } else {
      out.append("           |");
    }
    for (double v : values) {
      out.push_back(v >= threshold - 1e-12 ? '#' : ' ');
    }
    out.push_back('\n');
  }
  out.append("           +");
  out.append(values.size(), '-');
  out.push_back('\n');
  if (!bin_labels.empty()) {
    out.append("            ");
    // Print every k-th label so they do not overlap.
    const std::size_t k = std::max<std::size_t>(
        1, bin_labels.size() / std::max<std::size_t>(1, values.size() / 10));
    std::size_t col = 0;
    for (std::size_t i = 0; i < bin_labels.size(); i += k) {
      const std::size_t target = i;
      if (target < col) continue;
      out.append(target - col, ' ');
      out.append(bin_labels[i]);
      col = target + bin_labels[i].size();
    }
    out.push_back('\n');
  }
  return out;
}

std::string scatter(const std::vector<double>& xs, const std::vector<double>& ys,
                    std::size_t width, std::size_t height, char mark) {
  std::string out;
  if (xs.empty() || xs.size() != ys.size() || width < 2 || height < 2) {
    return out;
  }
  const Bounds bx = find_bounds(xs);
  const Bounds by = find_bounds(ys);
  std::vector<std::string> raster(height, std::string(width, ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double fx = (xs[i] - bx.lo) / (bx.hi - bx.lo);
    const double fy = (ys[i] - by.lo) / (by.hi - by.lo);
    if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) continue;
    const auto cx = std::min(width - 1, static_cast<std::size_t>(
                                            fx * static_cast<double>(width)));
    const auto cy = std::min(height - 1, static_cast<std::size_t>(
                                             fy * static_cast<double>(height)));
    raster[height - 1 - cy][cx] = mark;
  }
  out.append(format("y: [%.4g, %.4g]\n", by.lo, by.hi));
  for (const auto& row : raster) {
    out.append("|");
    out.append(row);
    out.append("\n");
  }
  out.append("+");
  out.append(width, '-');
  out.push_back('\n');
  out.append(format("x: [%.4g, %.4g]\n", bx.lo, bx.hi));
  return out;
}

std::string strip_plot(const std::vector<double>& times,
                       const std::vector<std::size_t>& rows,
                       const std::vector<std::string>& row_labels,
                       std::size_t width) {
  std::string out;
  if (times.empty() || times.size() != rows.size() || row_labels.empty()) {
    return out;
  }
  const Bounds bx = find_bounds(times);
  std::size_t label_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());
  std::vector<std::string> raster(row_labels.size(), std::string(width, '.'));
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (rows[i] >= raster.size()) continue;
    const double fx = (times[i] - bx.lo) / (bx.hi - bx.lo);
    const auto cx = std::min(width - 1, static_cast<std::size_t>(
                                            fx * static_cast<double>(width)));
    raster[rows[i]][cx] = '*';
  }
  for (std::size_t r = 0; r < raster.size(); ++r) {
    out.append(row_labels[r]);
    out.append(label_w - row_labels[r].size(), ' ');
    out.append(" |");
    out.append(raster[r]);
    out.push_back('\n');
  }
  out.append(label_w, ' ');
  out.append(" +");
  out.append(width, '-');
  out.push_back('\n');
  out.append(format("time: [%.6g, %.6g]\n", bx.lo, bx.hi));
  return out;
}

}  // namespace wss::util
