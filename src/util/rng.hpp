// Deterministic random number generation for the simulator.
//
// Everything the simulator does must be reproducible from a single seed,
// so we use our own engine (xoshiro256++, public-domain by Blackman &
// Vigna) rather than std::mt19937, whose distributions are not
// specified bit-for-bit across standard library implementations. All
// distributions here are implemented from first principles and are
// stable across platforms.
#pragma once

#include <cstdint>
#include <vector>

namespace wss::util {

/// xoshiro256++ pseudo-random engine with splitmix64 seeding.
///
/// Satisfies UniformRandomBitGenerator, so it can also be used with
/// standard distributions in tests (not in the simulator, where
/// reproducibility matters).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64 random bits.
  std::uint64_t operator()();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Poisson-distributed count with the given mean. Uses Knuth's method
  /// for small means and a normal approximation above 64.
  std::uint64_t poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero or negative weights are treated as zero. Requires at least one
  /// positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffles a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent child stream; deterministic given this
  /// stream's state. Used to give each simulator process its own stream
  /// so adding a process does not perturb the others.
  Rng fork();

  /// The full engine state, exposed so long-running consumers (the
  /// streaming checkpoint) can persist and resume a stream bit-exactly.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;

  /// Restores a state captured by state(). Throws std::invalid_argument
  /// on the all-zero word state (invalid for xoshiro).
  void set_state(const State& st);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf (power-law) sampler over ranks {0, .., n-1} with exponent s.
/// Used for per-source message volume, which is heavy-tailed on all
/// five systems (Figure 2(b)). Precomputes the CDF; O(log n) sampling.
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  /// Samples a rank; rank 0 is the most probable.
  std::size_t operator()(Rng& rng) const;

  /// Probability mass of `rank`.
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace wss::util
