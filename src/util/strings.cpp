#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "simd/scan.hpp"

namespace wss::util {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

// The same six bytes as is_space(), in nibble-table form for the
// vectorized field scan. The differential suite pins the two
// representations equal over all 256 byte values.
const simd::NibbleSet& space_set() {
  static const simd::NibbleSet set = simd::make_nibble_set(" \t\n\r\f\v");
  return set;
}

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? char(c - 'A' + 'a') : c;
}

char ascii_upper(char c) {
  return (c >= 'a' && c <= 'z') ? char(c - 'a' + 'A') : c;
}

}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_fields(std::string_view s) {
  std::vector<std::string_view> out;
  split_fields(s, out);
  return out;
}

void split_fields(std::string_view s, std::vector<std::string_view>& out) {
  out.clear();
  const simd::NibbleSet& ws = space_set();
  const simd::Level level = simd::active_level();
  const char* p = s.data();
  const char* const end = p + s.size();
  while (p != end) {
    p = simd::find_not_in_set(level, p, end, ws);
    if (p == end) break;
    const char* field_end = simd::find_in_set(level, p, end, ws);
    out.push_back({p, static_cast<std::size_t>(field_end - p)});
    p = field_end;
  }
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = ascii_lower(c);
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = ascii_upper(c);
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~0ull - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  return v;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  const auto mag = parse_u64(s);
  if (!mag) return std::nullopt;
  if (neg) {
    if (*mag > 0x8000000000000000ull) return std::nullopt;
    return -static_cast<std::int64_t>(*mag);
  }
  if (*mag > 0x7fffffffffffffffull) return std::nullopt;
  return static_cast<std::int64_t>(*mag);
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty() || s.size() > 63) return std::nullopt;
  char buf[64];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size() || errno == ERANGE) return std::nullopt;
  return v;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) break;
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  out.append(s.substr(pos));
  return out;
}

std::string with_commas(std::int64_t v) {
  const bool neg = v < 0;
  std::uint64_t mag = neg ? static_cast<std::uint64_t>(-(v + 1)) + 1
                          : static_cast<std::uint64_t>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  if (neg) out.insert(out.begin(), '-');
  return out;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace wss::util
