// ASCII chart rendering for the figure-reproduction benches.
//
// The paper's figures are scatter plots, histograms, and time series.
// The bench binaries print both a CSV block (machine-readable series)
// and one of these ASCII renderings (human-readable shape check).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wss::util {

/// A horizontal bar chart: one labeled bar per value.
/// Bars are scaled so the maximum value spans `width` characters.
std::string bar_chart(const std::vector<std::string>& labels,
                      const std::vector<double>& values, std::size_t width = 60);

/// A column histogram over the given bin counts, `height` rows tall.
/// `bin_labels` annotates the x axis below the plot (may be empty).
std::string column_chart(const std::vector<double>& values,
                         std::size_t height = 12,
                         const std::vector<std::string>& bin_labels = {});

/// An x/y scatter plot on a character raster, with linear axes.
/// Points outside the data bounding box are clipped.
std::string scatter(const std::vector<double>& xs, const std::vector<double>& ys,
                    std::size_t width = 72, std::size_t height = 20,
                    char mark = '*');

/// A categorical strip / event timeline, as in the paper's Figures 3
/// and 4: one row per category, marks placed at event times.
/// `times[i]` and `rows[i]` give each event's x position and row index;
/// `row_labels` names the rows.
std::string strip_plot(const std::vector<double>& times,
                       const std::vector<std::size_t>& rows,
                       const std::vector<std::string>& row_labels,
                       std::size_t width = 72);

}  // namespace wss::util
