// Minimal CSV emission, used by the bench harness to dump every
// reproduced series in machine-readable form alongside the ASCII view.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wss::util {

/// Escapes a single CSV field per RFC 4180 (quotes fields containing
/// commas, quotes, or newlines; doubles embedded quotes).
std::string csv_escape(std::string_view field);

/// Writes rows of fields as CSV lines to `os`.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; fields are escaped as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with %.9g formatting.
  void row_numeric(const std::vector<double>& values);

 private:
  std::ostream& os_;
};

}  // namespace wss::util
