// Small string utilities used throughout the library.
//
// Log parsing is byte-oriented and allocation-sensitive, so most of
// these operate on std::string_view and never allocate unless the
// return type requires it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wss::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
/// This is awk's default field splitting, used by the rule engine's
/// field predicates ($1, $2, ...).
std::vector<std::string_view> split_fields(std::string_view s);

/// Same, into a caller-owned buffer (cleared first). The tag engine's
/// per-line hot path reuses one buffer to stay allocation-free.
void split_fields(std::string_view s, std::vector<std::string_view>& out);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// True if `needle` occurs anywhere in `haystack`.
bool contains(std::string_view haystack, std::string_view needle);

/// ASCII lower-casing (copies).
std::string to_lower(std::string_view s);

/// ASCII upper-casing (copies).
std::string to_upper(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Parses a non-negative decimal integer; rejects trailing junk.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Parses a signed decimal integer; rejects trailing junk.
std::optional<std::int64_t> parse_i64(std::string_view s);

/// Parses a double; rejects trailing junk.
std::optional<double> parse_double(std::string_view s);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
/// This is how the paper prints every count, so tables use it too.
std::string with_commas(std::int64_t v);

/// FNV-1a 64-bit hash; stable across platforms (used for dedup keys).
std::uint64_t fnv1a(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace wss::util
