// `wss serve`: the multi-tenant network ingest server.
//
// N epoll-driven, non-blocking event-loop shards (--loop-shards, default
// 1) share each listening port via SO_REUSEPORT: every shard binds its
// own listener socket and the kernel spreads incoming connections across
// them by 4-tuple hash, so accept, read, decode, and ring hand-off all
// scale without a dispatch hop or any shard-to-shard locking. A shard
// owns its accepted connections end to end -- the only cross-thread
// touch points are the tenants' rings (their own locks, taken once per
// batch) and relaxed stats atomics. Socket kinds per shard: TCP
// listeners (length- or newline-framed log lines, routed to a tenant by
// the listener's binding or by a `tenant=` handshake line) and UDP
// listeners (syslog-over-UDP datagrams, port-keyed; one sender's
// datagrams always hash to one shard, preserving per-sender order).
// Shard 0 additionally owns the optional HTTP listener serving GET
// /metrics (Prometheus text), /metrics.json (the wss.obs.v1 snapshot),
// and /status (live per-tenant JSON), plus the shutdown-signal fd. Each
// tenant runs its own stream engine on its own consumer thread behind
// its own accounted IngestRing (net/tenant.hpp).
//
// The hot path is batched and copy-light: a readiness callback decodes
// frames as string_views sliced straight out of the recv buffer
// (FrameDecoder::write_window/next_view), copies each once into a
// StreamItem, and publishes up to 256 items per ring lock instead of
// one.
//
// Backpressure, per transport:
//   * TCP: before a decoded frame is pushed, the loop checks the
//     tenant's ring for room; a full ring pauses the connection
//     (EPOLLIN removed, bytes stay in the kernel buffer, TCP flow
//     control pushes back to the sender). Nothing is evicted for TCP
//     traffic, so a TCP-fed tenant is lossless end to end.
//   * UDP: datagrams cannot be deferred; a full ring evicts
//     oldest-first through the IngestRing's counted drop path. Every
//     eviction shows up in wss_net_dropped_total{tenant=...} -- never
//     a silent drop.
//
// Shutdown (request_stop(), or SIGINT/SIGTERM via net/signal.hpp when
// watch_shutdown_signal is set): listeners close immediately, live
// connections get drain_grace_ms to reach EOF (their buffered frames
// are flushed), rings close, consumers finish their pipelines, each
// tenant optionally writes a final checkpoint, and run() returns the
// per-tenant final tables -- byte-identical to `wss stream` over the
// same delivered lines. SIGHUP re-exports --metrics without stopping.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/tenant.hpp"

namespace wss::net {

/// A TCP listener. `tenant` empty means handshake-routed: each
/// connection's first line must be `tenant=NAME [system=SYS] [...]`.
struct TcpListenerSpec {
  std::uint16_t port = 0;  ///< 0 = ephemeral (tests)
  std::string tenant;
};

/// A UDP listener; datagrams cannot carry a handshake, so the tenant
/// binding is mandatory.
struct UdpListenerSpec {
  std::uint16_t port = 0;
  std::string tenant;
};

struct ServeOptions {
  std::string bind_host = "127.0.0.1";
  std::vector<TcpListenerSpec> tcp;
  std::vector<UdpListenerSpec> udp;
  bool http_enabled = false;
  std::uint16_t http_port = 0;

  /// Pre-declared tenants (required for UDP and port-keyed TCP).
  std::vector<TenantConfig> tenants;

  /// Template for tenants created by a TCP handshake that names an
  /// undeclared tenant (`tenant=x system=liberty`); name/system/year
  /// come from the handshake. Set allow_handshake_tenants=false to
  /// reject unknown tenants instead.
  TenantConfig tenant_defaults;
  bool allow_handshake_tenants = true;

  std::size_t max_frame = 1 << 20;  ///< mirrors the reader's line guard
  int drain_grace_ms = 5000;        ///< connection EOF budget at shutdown
  int poll_ms = 50;                 ///< event-loop tick (pause/resume scan)

  /// Event-loop shards sharing every ingest port via SO_REUSEPORT.
  /// 1 = the classic single loop; 0 = auto (hardware threads, capped
  /// at 8); explicit values are capped at 64.
  int loop_shards = 1;

  /// Per-tenant checkpoints written here at drain (<dir>/<name>.ckpt);
  /// empty disables.
  std::string checkpoint_dir;

  /// Re-export target for SIGHUP (and the CLI's exit export); empty
  /// disables the SIGHUP path.
  std::string metrics_path;

  /// Watch net::ShutdownSignal's fd (the CLI sets this; tests use
  /// request_stop()).
  bool watch_shutdown_signal = false;

  /// Diagnostics sink for non-fatal runtime events (HUP export
  /// failures, protocol errors); null = silent.
  std::ostream* log = nullptr;
};

struct ServeTenantReport {
  std::string name;
  std::string system;  ///< short name
  std::uint64_t delivered = 0;    ///< frames enqueued to the ring
  std::uint64_t dropped = 0;      ///< ring evictions (accounted)
  std::uint64_t ingested = 0;     ///< lines the engine consumed
  std::uint64_t admitted = 0;     ///< filtered alerts admitted
  std::string table;              ///< final render_snapshot()
};

struct ServeReport {
  std::vector<ServeTenantReport> tenants;  ///< sorted by name
  std::uint64_t connections = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t oversized = 0;
  std::vector<std::string> checkpoints;  ///< files written at drain
};

class Server {
 public:
  explicit Server(ServeOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds every listener (resolving port-0 binds) and starts the
  /// pre-declared tenants. Throws std::runtime_error on bind/validate
  /// failures. Call once, before run().
  void bind();

  /// Bound ports, valid after bind() (index into ServeOptions' specs).
  std::uint16_t tcp_port(std::size_t i) const;
  std::uint16_t udp_port(std::size_t i) const;
  std::uint16_t http_port() const;

  /// The blocking event loop: returns after a stop request completes
  /// the drain. Call from one thread only.
  ServeReport run();

  /// Requests a graceful stop (thread- and signal-safe: one pipe
  /// write).
  void request_stop();

  /// Live status document (the /status payload); callable from any
  /// thread while run() is active, and from the owner after.
  std::string status_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wss::net
