#include "net/tenant.hpp"

#include <chrono>

#include "util/strings.hpp"
#include "stream/report.hpp"

namespace wss::net {

namespace {

constexpr std::size_t kConsumeBatch = 256;

obs::Counter& tenant_counter(const char* base, const std::string& tenant) {
  return obs::registry().counter(
      util::format("%s{tenant=\"%s\"}", base, tenant.c_str()));
}

obs::Histogram& tenant_latency_histogram(const std::string& tenant) {
  return obs::registry().histogram(
      util::format("wss_net_ingest_latency_seconds{tenant=\"%s\"}",
                   tenant.c_str()),
      obs::latency_bounds_seconds());
}

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

stream::StreamPipelineOptions pipeline_options(const TenantConfig& cfg) {
  stream::StreamPipelineOptions popts;
  popts.study.threshold_us =
      static_cast<util::TimeUs>(cfg.threshold_s * 1e6);
  popts.study.window_us = static_cast<util::TimeUs>(cfg.window_s * 1e6);
  // Network lines are parsed real logs: same semantics as
  // `wss stream --in` (that equivalence is the round-trip proof).
  popts.strict_order = false;
  popts.start_year = cfg.start_year;
  popts.predict.enabled = cfg.predict;
  popts.predict.train_alerts = cfg.predict_train;
  popts.predict.horizon_us = cfg.predict_horizon_us;
  return popts;
}

}  // namespace

Tenant::Tenant(const TenantConfig& cfg)
    : cfg_(cfg),
      ring_(cfg.queue_capacity, stream::BackpressurePolicy::kDropOldest),
      pipeline_(cfg.system, pipeline_options(cfg)),
      delivered_ctr_(tenant_counter("wss_net_delivered_total", cfg.name)),
      dropped_ctr_(tenant_counter("wss_net_dropped_total", cfg.name)),
      ingested_ctr_(tenant_counter("wss_net_ingested_total", cfg.name)),
      ingest_latency_(tenant_latency_histogram(cfg.name)) {
  pipeline_.set_alert_sink([this](const filter::Alert&) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
  });
  if (cfg_.predict) {
    predict_issued_ctr_ =
        &tenant_counter("wss_predict_issued_total", cfg.name);
    predict_hits_ctr_ = &tenant_counter("wss_predict_hits_total", cfg.name);
    predict_misses_ctr_ =
        &tenant_counter("wss_predict_misses_total", cfg.name);
    predict_false_alarms_ctr_ =
        &tenant_counter("wss_predict_false_alarms_total", cfg.name);
  }
}

Tenant::~Tenant() { close_and_join(); }

void Tenant::start() {
  consumer_ = std::thread([this] { consume(); });
}

std::size_t Tenant::try_enqueue_batch(std::vector<stream::StreamItem>& items,
                                      std::size_t from, std::size_t to) {
  const std::size_t accepted = ring_.try_push_batch(items, from, to);
  if (accepted > 0) {
    enqueued_.fetch_add(accepted, std::memory_order_relaxed);
    delivered_ctr_.inc(accepted);
  }
  return accepted;
}

void Tenant::enqueue_batch_evicting(std::vector<stream::StreamItem>& items,
                                    std::size_t from, std::size_t to) {
  const std::size_t n = to - from;
  if (n == 0) return;
  ring_.push_batch_evicting(items, from, to);
  enqueued_.fetch_add(n, std::memory_order_relaxed);
  delivered_ctr_.inc(n);
}

void Tenant::enqueue(std::string line) {
  stream::StreamItem item;
  item.index = next_index();
  item.line = std::move(line);
  ring_.push(std::move(item));
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  delivered_ctr_.inc();
}

std::uint64_t Tenant::take_ring_drops() {
  const std::uint64_t total = ring_.dropped();
  std::uint64_t prev = published_ring_drops_.load(std::memory_order_relaxed);
  for (;;) {
    if (prev >= total) return 0;
    if (published_ring_drops_.compare_exchange_weak(
            prev, total, std::memory_order_relaxed)) {
      dropped_ctr_.inc(total - prev);
      return total - prev;
    }
  }
}

void Tenant::consume() {
  // One vector for the whole stream: pop_many_swap parks the previous
  // batch's processed items in the vacated ring slots, where the next
  // admission hands their line buffers back to a producer -- at steady
  // state neither side of the ring allocates per line.
  std::vector<stream::StreamItem> batch(kConsumeBatch);
  std::uint64_t n = 0;
  for (;;) {
    const std::size_t got = ring_.pop_many_swap(batch, kConsumeBatch);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      stream::StreamItem& item = batch[i];
      if (cfg_.ingest_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.ingest_delay_us));
      }
      pipeline_.ingest_line(item.line);
      // Stamps arrive pre-sampled (the client stamps 1-in-16), so
      // every stamped item is observed -- a clock read per stamp, not
      // per line.
      if (item.client_us > 0) {
        const std::int64_t now = wall_now_us();
        if (now >= item.client_us) {
          ingest_latency_.observe(
              static_cast<double>(now - item.client_us) * 1e-6);
        }
      }
      // Periodic publish keeps /metrics scrapes fresh to within a few
      // chunks even on an endless stream (finish() publishes the rest).
      if (++n % 65536 == 0) pipeline_.publish_metrics();
    }
    // Batch-granular accounting: one atomic add per pop, not per line.
    ingested_.fetch_add(got, std::memory_order_relaxed);
    ingested_ctr_.inc(got);
    watermark_.store(pipeline_.watermark(), std::memory_order_relaxed);
    publish_predict_stats();
  }
  pipeline_.finish();
  publish_predict_stats();
}

void Tenant::publish_predict_stats() {
  const stream::PredictStage* stage = pipeline_.predict_stage();
  if (stage == nullptr) return;
  const stream::PredictStats s = stage->stats();
  predict_issued_.store(s.issued, std::memory_order_relaxed);
  predict_hits_.store(s.hits, std::memory_order_relaxed);
  predict_misses_.store(s.misses, std::memory_order_relaxed);
  predict_false_alarms_.store(s.false_alarms, std::memory_order_relaxed);
  predict_incidents_.store(s.incidents, std::memory_order_relaxed);
  predict_issued_ctr_->inc(s.issued - pub_predict_issued_);
  predict_hits_ctr_->inc(s.hits - pub_predict_hits_);
  predict_misses_ctr_->inc(s.misses - pub_predict_misses_);
  predict_false_alarms_ctr_->inc(s.false_alarms -
                                 pub_predict_false_alarms_);
  pub_predict_issued_ = s.issued;
  pub_predict_hits_ = s.hits;
  pub_predict_misses_ = s.misses;
  pub_predict_false_alarms_ = s.false_alarms;
}

void Tenant::close_and_join() {
  if (joined_) return;
  ring_.close();
  if (consumer_.joinable()) consumer_.join();
  joined_ = true;
  // Late evictions (none should occur after close, but the accounting
  // must balance regardless).
  take_ring_drops();
}

stream::StreamSnapshot Tenant::final_snapshot() const {
  auto snap = pipeline_.snapshot();
  snap.dropped = ring_.dropped();
  return snap;
}

std::string Tenant::render_final() const {
  return stream::render_snapshot(final_snapshot());
}

void Tenant::save_checkpoint(std::ostream& os) { pipeline_.save(os); }

}  // namespace wss::net
