#include "net/tenant.hpp"

#include <chrono>

#include "util/strings.hpp"
#include "stream/report.hpp"

namespace wss::net {

namespace {

obs::Counter& tenant_counter(const char* base, const std::string& tenant) {
  return obs::registry().counter(
      util::format("%s{tenant=\"%s\"}", base, tenant.c_str()));
}

stream::StreamPipelineOptions pipeline_options(const TenantConfig& cfg) {
  stream::StreamPipelineOptions popts;
  popts.study.threshold_us =
      static_cast<util::TimeUs>(cfg.threshold_s * 1e6);
  popts.study.window_us = static_cast<util::TimeUs>(cfg.window_s * 1e6);
  // Network lines are parsed real logs: same semantics as
  // `wss stream --in` (that equivalence is the round-trip proof).
  popts.strict_order = false;
  popts.start_year = cfg.start_year;
  return popts;
}

}  // namespace

Tenant::Tenant(const TenantConfig& cfg)
    : cfg_(cfg),
      ring_(cfg.queue_capacity, stream::BackpressurePolicy::kDropOldest),
      pipeline_(cfg.system, pipeline_options(cfg)),
      delivered_ctr_(tenant_counter("wss_net_delivered_total", cfg.name)),
      dropped_ctr_(tenant_counter("wss_net_dropped_total", cfg.name)),
      ingested_ctr_(tenant_counter("wss_net_ingested_total", cfg.name)) {
  pipeline_.set_alert_sink([this](const filter::Alert&) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
  });
}

Tenant::~Tenant() { close_and_join(); }

void Tenant::start() {
  consumer_ = std::thread([this] { consume(); });
}

void Tenant::enqueue(std::string line) {
  stream::StreamItem item;
  item.index = item_index_++;
  item.line = std::move(line);
  ring_.push(std::move(item));
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  delivered_ctr_.inc();
}

std::uint64_t Tenant::take_ring_drops() {
  const std::uint64_t total = ring_.dropped();
  const std::uint64_t fresh = total - published_ring_drops_;
  if (fresh > 0) {
    dropped_ctr_.inc(fresh);
    published_ring_drops_ = total;
  }
  return fresh;
}

void Tenant::consume() {
  std::uint64_t n = 0;
  while (auto item = ring_.pop()) {
    if (cfg_.ingest_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cfg_.ingest_delay_us));
    }
    pipeline_.ingest_line(item->line);
    ingested_.fetch_add(1, std::memory_order_relaxed);
    ingested_ctr_.inc();
    watermark_.store(pipeline_.watermark(), std::memory_order_relaxed);
    // Periodic publish keeps /metrics scrapes fresh to within a few
    // chunks even on an endless stream (finish() publishes the rest).
    if (++n % 65536 == 0) pipeline_.publish_metrics();
  }
  pipeline_.finish();
}

void Tenant::close_and_join() {
  if (joined_) return;
  ring_.close();
  if (consumer_.joinable()) consumer_.join();
  joined_ = true;
  // Late evictions (none should occur after close, but the accounting
  // must balance regardless).
  take_ring_drops();
}

stream::StreamSnapshot Tenant::final_snapshot() const {
  auto snap = pipeline_.snapshot();
  snap.dropped = ring_.dropped();
  return snap;
}

std::string Tenant::render_final() const {
  return stream::render_snapshot(final_snapshot());
}

void Tenant::save_checkpoint(std::ostream& os) { pipeline_.save(os); }

}  // namespace wss::net
