#include "net/http.hpp"

#include "util/strings.hpp"

namespace wss::net {

namespace {

constexpr std::size_t kMaxHead = 8 * 1024;

const char* reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

}  // namespace

bool HttpRequestParser::feed(std::string_view bytes) {
  if (complete_ || error_) return complete_;
  buf_.append(bytes);
  if (buf_.size() > kMaxHead) {
    error_ = true;
    complete_ = true;
    return true;
  }
  // The head ends at the first blank line; tolerate bare-LF clients.
  const auto crlf = buf_.find("\r\n\r\n");
  const auto lf = buf_.find("\n\n");
  if (crlf == std::string::npos && lf == std::string::npos) return false;
  complete_ = true;
  parse_head();
  return true;
}

void HttpRequestParser::parse_head() {
  const auto eol = buf_.find_first_of("\r\n");
  if (eol == std::string::npos) {
    error_ = true;
    return;
  }
  const std::string line = buf_.substr(0, eol);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    error_ = true;
    return;
  }
  req_.method = line.substr(0, sp1);
  req_.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req_.method.empty() || req_.path.empty() || req_.path[0] != '/') {
    error_ = true;
  }
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = util::format(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %.*s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      status, reason(status), static_cast<int>(content_type.size()),
      content_type.data(), body.size());
  out.append(body);
  return out;
}

}  // namespace wss::net
