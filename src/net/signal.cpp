#include "net/signal.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

namespace wss::net {

namespace {

// All handler-touched state is async-signal-safe: plain volatile
// sig_atomic_t flags plus a pipe write. The pipe is created once per
// process and reused across install/uninstall cycles.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_hup = 0;
int g_pipe[2] = {-1, -1};
bool g_installed = false;
struct sigaction g_prev_int, g_prev_term, g_prev_hup, g_prev_pipe;

void handler(int sig) {
  if (sig == SIGHUP) {
    g_hup = 1;
  } else {
    if (g_stop) {
      // Second stop request: the graceful drain is taking too long for
      // the operator -- exit with the conventional fatal-signal code.
      _exit(128 + sig);
    }
    g_stop = 1;
  }
  if (g_pipe[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &b, 1);
  }
}

void ensure_pipe() {
  if (g_pipe[0] >= 0) return;
  if (::pipe(g_pipe) != 0) {
    throw std::runtime_error(std::string("signal: pipe: ") +
                             std::strerror(errno));
  }
  for (const int fd : g_pipe) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
}

}  // namespace

void ShutdownSignal::install() {
  ensure_pipe();
  reset();
  if (g_installed) return;
  struct sigaction sa{};
  sa.sa_handler = handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking reads must wake up
  ::sigaction(SIGINT, &sa, &g_prev_int);
  ::sigaction(SIGTERM, &sa, &g_prev_term);
  ::sigaction(SIGHUP, &sa, &g_prev_hup);
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  ::sigaction(SIGPIPE, &ign, &g_prev_pipe);
  g_installed = true;
}

void ShutdownSignal::uninstall() {
  if (!g_installed) return;
  ::sigaction(SIGINT, &g_prev_int, nullptr);
  ::sigaction(SIGTERM, &g_prev_term, nullptr);
  ::sigaction(SIGHUP, &g_prev_hup, nullptr);
  ::sigaction(SIGPIPE, &g_prev_pipe, nullptr);
  g_installed = false;
}

bool ShutdownSignal::stop_requested() { return g_stop != 0; }

bool ShutdownSignal::take_hup() {
  if (g_hup == 0) return false;
  g_hup = 0;
  return true;
}

int ShutdownSignal::fd() {
  ensure_pipe();
  return g_pipe[0];
}

void ShutdownSignal::drain_fd() {
  if (g_pipe[0] < 0) return;
  char buf[64];
  while (::read(g_pipe[0], buf, sizeof(buf)) > 0) {
  }
}

void ShutdownSignal::reset() {
  g_stop = 0;
  g_hup = 0;
  drain_fd();
}

}  // namespace wss::net
