// Minimal HTTP/1.1 request parsing and response building -- just
// enough for `curl http://host:port/metrics` and `/status` against the
// ingest server. One request per connection (Connection: close), GET
// only, headers ignored beyond the terminating blank line.
#pragma once

#include <string>
#include <string_view>

namespace wss::net {

struct HttpRequest {
  std::string method;
  std::string path;
};

/// Incremental request accumulator: feed bytes until complete() --
/// i.e. the header-terminating blank line arrived. Oversize guards a
/// hostile peer (the server closes the connection on error()).
class HttpRequestParser {
 public:
  /// Returns true once the request head is complete (idempotent).
  bool feed(std::string_view bytes);

  bool complete() const { return complete_; }
  /// True when the peer sent something that is not parseable HTTP or
  /// exceeded the 8 KiB head limit.
  bool error() const { return error_; }

  /// Valid once complete() && !error().
  const HttpRequest& request() const { return req_; }

 private:
  void parse_head();

  std::string buf_;
  HttpRequest req_;
  bool complete_ = false;
  bool error_ = false;
};

/// Serializes a full response (status line, minimal headers, body).
std::string http_response(int status, std::string_view content_type,
                          std::string_view body);

}  // namespace wss::net
