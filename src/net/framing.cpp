#include "net/framing.hpp"

#include <cstring>

#include "simd/scan.hpp"

namespace wss::net {

char* FrameDecoder::write_window(std::size_t min_bytes) {
  if (min_bytes == 0) min_bytes = 1;
  const std::size_t cap = buf_.size();
  if (cap - head_ - size_ < min_bytes) {
    if (size_ + min_bytes <= cap) {
      // Compact the carry (a partial frame straddling the last read) to
      // the front. This is the only copy a straddling frame ever pays.
      std::memmove(buf_.data(), buf_.data() + head_, size_);
      head_ = 0;
    } else {
      std::size_t ncap = cap != 0 ? cap : 4096;
      while (ncap < size_ + min_bytes) ncap <<= 1;
      std::vector<char> nbuf(ncap);
      if (size_ > 0) std::memcpy(nbuf.data(), buf_.data() + head_, size_);
      buf_ = std::move(nbuf);
      head_ = 0;
    }
  }
  return buf_.data() + head_ + size_;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (bytes.empty()) return;
  char* dst = write_window(bytes.size());
  std::memcpy(dst, bytes.data(), bytes.size());
  commit(bytes.size());
}

std::size_t FrameDecoder::find_newline() {
  // Resume where the last search stopped: bytes [0, scanned_) hold no
  // '\n', so a line delivered in thousands of 1-byte segments is still
  // scanned O(length) total, not O(length^2).
  const char* base = head();
  const char* hit = simd::find_byte(base + scanned_, base + size_, '\n');
  if (hit == base + size_) {
    scanned_ = size_;
    return kNpos;
  }
  return static_cast<std::size_t>(hit - base);
}

bool FrameDecoder::next_view(std::string_view& frame) {
  if (error_) return false;
  if (mode_ == Framing::kNewline) {
    for (;;) {
      const std::size_t nl = find_newline();
      if (nl == kNpos) {
        // No terminator buffered. If the partial already exceeds the
        // cap, switch to discard mode and drop what we hold -- the
        // frame is oversized no matter what follows.
        if (!discarding_ && size_ > max_frame_) {
          discarding_ = true;
          ++oversized_;
        }
        if (discarding_) clear_bytes();
        return false;
      }
      if (discarding_) {
        // The terminator of the oversized line: resume at the next one.
        consume(nl + 1);
        scanned_ = 0;
        discarding_ = false;
        continue;
      }
      std::size_t len = nl;
      if (len > max_frame_) {
        ++oversized_;
        consume(nl + 1);
        scanned_ = 0;
        continue;
      }
      if (len > 0 && head()[len - 1] == '\r') --len;
      frame = std::string_view(head(), len);
      // consume() only advances indices; the bytes stay put until the
      // next write_window() compacts or grows, so the view holds.
      consume(nl + 1);
      scanned_ = 0;
      return true;
    }
  }

  // kLenPrefix: 4-byte big-endian header, contiguous in the linear
  // buffer.
  if (size_ < 4) return false;
  const auto* h = reinterpret_cast<const unsigned char*>(head());
  const std::uint32_t len = (static_cast<std::uint32_t>(h[0]) << 24) |
                            (static_cast<std::uint32_t>(h[1]) << 16) |
                            (static_cast<std::uint32_t>(h[2]) << 8) |
                            static_cast<std::uint32_t>(h[3]);
  if (len > max_frame_) {
    // The announced frame cannot be honored and skipping it wholesale
    // would still mean buffering `len` bytes we refuse to hold; the
    // stream position is unrecoverable.
    ++oversized_;
    error_ = true;
    clear_bytes();
    return false;
  }
  if (size_ - 4 < len) return false;
  frame = std::string_view(head() + 4, len);
  consume(4 + len);
  return true;
}

bool FrameDecoder::next(std::string& frame) {
  std::string_view v;
  if (!next_view(v)) return false;
  frame.assign(v.data(), v.size());
  return true;
}

std::string FrameDecoder::take_rest() {
  std::string rest;
  if (size_ > 0) rest.assign(head(), size_);
  clear_bytes();
  discarding_ = false;
  return rest;
}

bool FrameDecoder::finish_view(std::string_view& frame) {
  if (mode_ != Framing::kNewline || error_) return false;
  if (discarding_) {
    discarding_ = false;
    clear_bytes();
    return false;
  }
  if (size_ == 0) return false;
  std::size_t len = size_;
  if (len > max_frame_) {
    ++oversized_;
    clear_bytes();
    return false;
  }
  if (head()[len - 1] == '\r') --len;
  frame = std::string_view(head(), len);
  // Index reset, not a memory write: the returned view stays valid
  // until the next write_window()/feed().
  clear_bytes();
  // A tail of exactly "\r" strips to nothing: cleared, not delivered.
  return len > 0;
}

bool FrameDecoder::finish(std::string& frame) {
  std::string_view v;
  if (!finish_view(v)) return false;
  frame.assign(v.data(), v.size());
  return true;
}

}  // namespace wss::net
