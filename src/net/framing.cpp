#include "net/framing.hpp"

namespace wss::net {

namespace {

std::uint32_t read_be32(const char* p) {
  const auto b = [p](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
}

}  // namespace

void FrameDecoder::compact() {
  // Reclaim the consumed prefix once it dominates the buffer; amortized
  // O(1) per byte, keeps buffered() == live bytes between calls.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

bool FrameDecoder::next(std::string& frame) {
  if (error_) return false;
  if (mode_ == Framing::kNewline) {
    for (;;) {
      const auto nl = buf_.find('\n', pos_);
      if (nl == std::string::npos) {
        // No terminator buffered. If the partial already exceeds the
        // cap, switch to discard mode and drop what we hold -- the
        // frame is oversized no matter what follows.
        if (!discarding_ && buf_.size() - pos_ > max_frame_) {
          discarding_ = true;
          ++oversized_;
        }
        if (discarding_) {
          buf_.clear();
          pos_ = 0;
        }
        compact();
        return false;
      }
      if (discarding_) {
        // The terminator of the oversized line: resume at the next one.
        pos_ = nl + 1;
        discarding_ = false;
        continue;
      }
      std::size_t len = nl - pos_;
      if (len > max_frame_) {
        ++oversized_;
        pos_ = nl + 1;
        continue;
      }
      if (len > 0 && buf_[pos_ + len - 1] == '\r') --len;
      frame.assign(buf_, pos_, len);
      pos_ = nl + 1;
      compact();
      return true;
    }
  }

  // kLenPrefix.
  if (buf_.size() - pos_ < 4) {
    compact();
    return false;
  }
  const std::uint32_t len = read_be32(buf_.data() + pos_);
  if (len > max_frame_) {
    // The announced frame cannot be honored and skipping it wholesale
    // would still mean buffering `len` bytes we refuse to hold; the
    // stream position is unrecoverable.
    ++oversized_;
    error_ = true;
    buf_.clear();
    pos_ = 0;
    return false;
  }
  if (buf_.size() - pos_ - 4 < len) {
    compact();
    return false;
  }
  frame.assign(buf_, pos_ + 4, len);
  pos_ += 4 + len;
  compact();
  return true;
}

std::string FrameDecoder::take_rest() {
  std::string rest = buf_.substr(pos_);
  buf_.clear();
  pos_ = 0;
  discarding_ = false;
  return rest;
}

bool FrameDecoder::finish(std::string& frame) {
  if (mode_ != Framing::kNewline || error_) return false;
  if (discarding_) {
    discarding_ = false;
    buf_.clear();
    pos_ = 0;
    return false;
  }
  if (buf_.size() == pos_) return false;
  std::size_t len = buf_.size() - pos_;
  if (len > max_frame_) {
    ++oversized_;
    buf_.clear();
    pos_ = 0;
    return false;
  }
  if (buf_[pos_ + len - 1] == '\r') --len;
  frame.assign(buf_, pos_, len);
  buf_.clear();
  pos_ = 0;
  return !frame.empty() || len > 0;
}

}  // namespace wss::net
