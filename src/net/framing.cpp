#include "net/framing.hpp"

#include <algorithm>
#include <cstring>

#include "simd/scan.hpp"

namespace wss::net {

void FrameDecoder::ensure(std::size_t need) {
  const std::size_t cap = ring_.size();
  if (need <= cap) return;
  std::size_t ncap = cap != 0 ? cap : 4096;
  while (ncap < need) ncap <<= 1;
  std::vector<char> nring(ncap);
  if (size_ > 0) {
    // Linearize the live bytes at the front of the new ring.
    const std::size_t first = std::min(size_, cap - head_);
    std::memcpy(nring.data(), ring_.data() + head_, first);
    std::memcpy(nring.data() + first, ring_.data(), size_ - first);
  }
  ring_ = std::move(nring);
  head_ = 0;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (bytes.empty()) return;
  ensure(size_ + bytes.size());
  const std::size_t mask = ring_.size() - 1;
  const std::size_t tail = (head_ + size_) & mask;
  const std::size_t first = std::min(bytes.size(), ring_.size() - tail);
  std::memcpy(ring_.data() + tail, bytes.data(), first);
  std::memcpy(ring_.data(), bytes.data() + first, bytes.size() - first);
  size_ += bytes.size();
}

void FrameDecoder::consume(std::size_t n) {
  head_ = (head_ + n) & (ring_.size() - 1);
  size_ -= n;
}

void FrameDecoder::clear_bytes() {
  head_ = 0;
  size_ = 0;
  scanned_ = 0;
}

std::size_t FrameDecoder::find_newline() {
  // Resume where the last search stopped: bytes [0, scanned_) hold no
  // '\n', so a line delivered in thousands of 1-byte segments is still
  // scanned O(length) total, not O(length^2).
  const std::size_t cap = ring_.size();
  std::size_t off = scanned_;
  while (off < size_) {
    const std::size_t idx = (head_ + off) & (cap - 1);
    const std::size_t chunk = std::min(size_ - off, cap - idx);
    const char* base = ring_.data() + idx;
    const char* hit = simd::find_byte(base, base + chunk, '\n');
    if (hit != base + chunk) return off + static_cast<std::size_t>(hit - base);
    off += chunk;
  }
  scanned_ = size_;
  return kNpos;
}

void FrameDecoder::copy_out(std::string& frame, std::size_t offset,
                            std::size_t len) const {
  if (len == 0) {
    frame.clear();
    return;
  }
  const std::size_t cap = ring_.size();
  const std::size_t idx = (head_ + offset) & (cap - 1);
  const std::size_t first = std::min(len, cap - idx);
  frame.assign(ring_.data() + idx, first);
  frame.append(ring_.data(), len - first);
}

bool FrameDecoder::next(std::string& frame) {
  if (error_) return false;
  if (mode_ == Framing::kNewline) {
    for (;;) {
      const std::size_t nl = find_newline();
      if (nl == kNpos) {
        // No terminator buffered. If the partial already exceeds the
        // cap, switch to discard mode and drop what we hold -- the
        // frame is oversized no matter what follows.
        if (!discarding_ && size_ > max_frame_) {
          discarding_ = true;
          ++oversized_;
        }
        if (discarding_) clear_bytes();
        return false;
      }
      if (discarding_) {
        // The terminator of the oversized line: resume at the next one.
        consume(nl + 1);
        scanned_ = 0;
        discarding_ = false;
        continue;
      }
      std::size_t len = nl;
      if (len > max_frame_) {
        ++oversized_;
        consume(nl + 1);
        scanned_ = 0;
        continue;
      }
      if (len > 0 && byte_at(len - 1) == '\r') --len;
      copy_out(frame, 0, len);
      consume(nl + 1);
      scanned_ = 0;
      return true;
    }
  }

  // kLenPrefix. byte_at assembles the header wrap-aware: the 4 bytes
  // may straddle the ring's wrap point when the previous frame ended
  // near the top.
  if (size_ < 4) return false;
  const std::uint32_t len = (static_cast<std::uint32_t>(byte_at(0)) << 24) |
                            (static_cast<std::uint32_t>(byte_at(1)) << 16) |
                            (static_cast<std::uint32_t>(byte_at(2)) << 8) |
                            static_cast<std::uint32_t>(byte_at(3));
  if (len > max_frame_) {
    // The announced frame cannot be honored and skipping it wholesale
    // would still mean buffering `len` bytes we refuse to hold; the
    // stream position is unrecoverable.
    ++oversized_;
    error_ = true;
    clear_bytes();
    return false;
  }
  if (size_ - 4 < len) return false;
  copy_out(frame, 4, len);
  consume(4 + len);
  return true;
}

std::string FrameDecoder::take_rest() {
  std::string rest;
  copy_out(rest, 0, size_);
  clear_bytes();
  discarding_ = false;
  return rest;
}

bool FrameDecoder::finish(std::string& frame) {
  if (mode_ != Framing::kNewline || error_) return false;
  if (discarding_) {
    discarding_ = false;
    clear_bytes();
    return false;
  }
  if (size_ == 0) return false;
  std::size_t len = size_;
  if (len > max_frame_) {
    ++oversized_;
    clear_bytes();
    return false;
  }
  if (byte_at(len - 1) == '\r') --len;
  copy_out(frame, 0, len);
  clear_bytes();
  // A tail of exactly "\r" strips to nothing: cleared, not delivered.
  return len > 0;
}

}  // namespace wss::net
