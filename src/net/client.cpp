#include "net/client.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::net {

namespace {

void append_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SinkClient::SinkClient(const SinkOptions& opts)
    : endpoint_(opts.endpoint),
      framing_(opts.framing),
      loss_(opts.udp),
      rng_(opts.seed),
      lossless_udp_(opts.lossless_udp),
      stamp_latency_(opts.stamp_latency &&
                     opts.endpoint.transport == Transport::kTcp &&
                     !opts.tenant.empty()),
      batch_bytes_(opts.endpoint.transport == Transport::kTcp
                       ? opts.send_batch_bytes
                       : 0) {
  to_ = resolve_ipv4(endpoint_.host, endpoint_.port);
  if (endpoint_.transport == Transport::kTcp) {
    fd_ = connect_tcp(to_);
    if (!opts.tenant.empty()) {
      // The handshake is always a newline-terminated line, even when
      // the data framing is len-prefix: the server switches decoders
      // after routing (see net/server.cpp).
      std::string hs = "tenant=" + opts.tenant;
      if (!opts.system_short.empty()) hs += " system=" + opts.system_short;
      if (opts.start_year != 0) {
        hs += util::format(" year=%d", opts.start_year);
      }
      if (framing_ == Framing::kLenPrefix) hs += " framing=len";
      if (stamp_latency_) hs += " stamp=us";
      hs += '\n';
      write_all(fd_.get(), hs.data(), hs.size());
    }
  } else {
    fd_ = udp_socket();
  }
}

SinkClient::~SinkClient() { close(); }

void SinkClient::send(util::TimeUs t, const std::string& line) {
  ++stats_.offered;
  if (endpoint_.transport == Transport::kTcp) {
    if (batch_bytes_ == 0) scratch_.clear();
    char stamp[32];
    std::size_t stamp_len = 0;
    // Sampled 1-in-16: the consumer samples stamped items 1-in-16
    // again, and stamping every line (a clock read + an itoa + ~16
    // wire bytes each) costs more than every other per-line step of
    // the client combined.
    if (stamp_latency_ && (sent_++ & 15) == 0) {
      stamp_len = static_cast<std::size_t>(std::snprintf(
          stamp, sizeof stamp, "@%lld ",
          static_cast<long long>(wall_now_us())));
    }
    if (framing_ == Framing::kLenPrefix) {
      append_be32(scratch_,
                  static_cast<std::uint32_t>(stamp_len + line.size()));
      scratch_.append(stamp, stamp_len);
      scratch_ += line;
    } else {
      scratch_.append(stamp, stamp_len);
      scratch_ += line;
      scratch_ += '\n';
    }
    if (batch_bytes_ == 0) {
      write_all(fd_.get(), scratch_.data(), scratch_.size());
    } else if (scratch_.size() >= batch_bytes_) {
      flush();
    }
    ++stats_.delivered;
    return;
  }

  // UDP: the contention model decides first (a modeled drop is never
  // sent), then the kernel gets a veto (ENOBUFS etc.).
  if (!lossless_udp_ && loss_.offer_drops(t, rng_)) {
    ++stats_.dropped;
    return;
  }
  if (send_dgram(fd_.get(), to_, line.data(), line.size())) {
    ++stats_.delivered;
  } else {
    ++stats_.dropped;
  }
}

void SinkClient::flush() {
  if (batch_bytes_ == 0 || scratch_.empty() || !fd_.valid()) return;
  write_all(fd_.get(), scratch_.data(), scratch_.size());
  scratch_.clear();
}

void SinkClient::close() {
  flush();
  fd_.reset();
}

}  // namespace wss::net
