#include "net/client.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace wss::net {

namespace {

void append_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

}  // namespace

SinkClient::SinkClient(const SinkOptions& opts)
    : endpoint_(opts.endpoint),
      framing_(opts.framing),
      loss_(opts.udp),
      rng_(opts.seed),
      lossless_udp_(opts.lossless_udp) {
  to_ = resolve_ipv4(endpoint_.host, endpoint_.port);
  if (endpoint_.transport == Transport::kTcp) {
    fd_ = connect_tcp(to_);
    if (!opts.tenant.empty()) {
      // The handshake is always a newline-terminated line, even when
      // the data framing is len-prefix: the server switches decoders
      // after routing (see net/server.cpp).
      std::string hs = "tenant=" + opts.tenant;
      if (!opts.system_short.empty()) hs += " system=" + opts.system_short;
      if (opts.start_year != 0) {
        hs += util::format(" year=%d", opts.start_year);
      }
      if (framing_ == Framing::kLenPrefix) hs += " framing=len";
      hs += '\n';
      write_all(fd_.get(), hs.data(), hs.size());
    }
  } else {
    fd_ = udp_socket();
  }
}

SinkClient::~SinkClient() { close(); }

void SinkClient::send(util::TimeUs t, const std::string& line) {
  ++stats_.offered;
  if (endpoint_.transport == Transport::kTcp) {
    scratch_.clear();
    if (framing_ == Framing::kLenPrefix) {
      append_be32(scratch_, static_cast<std::uint32_t>(line.size()));
      scratch_ += line;
    } else {
      scratch_ = line;
      scratch_ += '\n';
    }
    write_all(fd_.get(), scratch_.data(), scratch_.size());
    ++stats_.delivered;
    return;
  }

  // UDP: the contention model decides first (a modeled drop is never
  // sent), then the kernel gets a veto (ENOBUFS etc.).
  if (!lossless_udp_ && loss_.offer_drops(t, rng_)) {
    ++stats_.dropped;
    return;
  }
  if (send_dgram(fd_.get(), to_, line.data(), line.size())) {
    ++stats_.delivered;
  } else {
    ++stats_.dropped;
  }
}

void SinkClient::close() { fd_.reset(); }

}  // namespace wss::net
