// Incremental TCP frame decoding for the ingest server.
//
// A TCP byte stream carries log lines in one of two framings:
//
//   * kNewline (default, syslog-style): frames are '\n'-terminated; a
//     single trailing '\r' is stripped (liberal in what we accept). At
//     EOF an unterminated non-empty tail is delivered as a final frame
//     -- the same contract std::getline gives `wss stream --in`.
//   * kLenPrefix: each frame is a 4-byte big-endian length followed by
//     that many payload bytes. Binary-safe (payloads may contain '\n').
//
// The decoder is push-based and allocation-frugal: feed() appends a
// received segment, and next()/next_view() yield complete frames until
// they return false -- so partial frames (a segment ending mid-line)
// and coalesced frames (many lines in one segment) both fall out of
// the same loop.
//
// Storage is a compacting linear buffer sized to a power of two. This
// is the zero-copy recv path: the event loop reads straight into the
// buffer's writable tail (write_window()/commit()), and next_view()
// slices each complete frame out as a std::string_view -- no copy
// between the socket and the frame. Only a frame straddling a read
// boundary pays a memmove when the carry is compacted to the front to
// make tail room (the same carry discipline as simd::ChunkSplitter's
// arena, without the second allocation). The newline search runs the
// vectorized simd::find_byte over the live bytes and remembers how far
// it has scanned, so a line arriving in many small segments is scanned
// once, not re-scanned per segment.
//
// View lifetime: a view returned by next_view()/finish_view() points
// into the buffer and stays valid until the next write_window(),
// feed(), or take_rest() call -- consume frames (or copy them) before
// reading more bytes.
//
// Oversized frames are NEVER silently truncated or dropped: a newline
// frame longer than max_frame enters discard mode until its
// terminator, a length prefix larger than max_frame is a protocol
// error (the connection is unrecoverable -- the stream position is
// lost), and both are counted so every lost frame is visible in
// /metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wss::net {

enum class Framing : std::uint8_t {
  kNewline = 0,
  kLenPrefix = 1,
};

class FrameDecoder {
 public:
  explicit FrameDecoder(Framing mode = Framing::kNewline,
                        std::size_t max_frame = 1 << 20)
      : mode_(mode), max_frame_(max_frame) {}

  /// Appends a received segment (copies it in). The zero-copy
  /// alternative is write_window() + commit().
  void feed(std::string_view bytes);

  /// Ensures at least `min_bytes` of contiguous writable space after
  /// the live bytes -- compacting the carry to the front or growing
  /// the buffer as needed -- and returns the write pointer for a
  /// recv() to land on directly. Invalidates outstanding views.
  char* write_window(std::size_t min_bytes);

  /// Marks `n` bytes at the last write_window() pointer as received.
  void commit(std::size_t n) { size_ += n; }

  /// Slices the next complete frame out of the buffer without copying.
  /// Returns false when no complete frame remains buffered (and after
  /// a protocol error -- check error()). The view is valid until the
  /// next write_window()/feed()/take_rest().
  bool next_view(std::string_view& frame);

  /// Extracts the next complete frame into `frame` (overwritten).
  /// Copying twin of next_view(), same contract.
  bool next(std::string& frame);

  /// End-of-stream flush (kNewline only): yields an unterminated
  /// non-empty tail without copying. Returns false when there is
  /// nothing to flush or the tail is oversized (counted, not
  /// delivered). Same view lifetime as next_view().
  bool finish_view(std::string_view& frame);

  /// Copying twin of finish_view().
  bool finish(std::string& frame);

  /// Frames skipped because they exceeded max_frame.
  std::uint64_t oversized() const { return oversized_; }

  /// Set once a kLenPrefix frame announces an impossible length; the
  /// byte stream can no longer be re-synchronized.
  bool error() const { return error_; }

  /// Bytes currently buffered (tests; also a memory bound check).
  std::size_t buffered() const { return size_; }

  /// Removes and returns all undecoded bytes, leaving the decoder
  /// empty. Used when a handshake switches a connection's framing: the
  /// remainder is re-fed to the replacement decoder.
  std::string take_rest();

  std::size_t max_frame() const { return max_frame_; }
  Framing mode() const { return mode_; }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  const char* head() const { return buf_.data() + head_; }

  void consume(std::size_t n) {
    head_ += n;
    size_ -= n;
  }
  void clear_bytes() {
    head_ = 0;
    size_ = 0;
    scanned_ = 0;
  }
  std::size_t find_newline();

  Framing mode_;
  std::size_t max_frame_;
  std::vector<char> buf_;     ///< power-of-two capacity (or empty)
  std::size_t head_ = 0;      ///< offset of the first live byte
  std::size_t size_ = 0;      ///< live bytes at [head_, head_ + size_)
  std::size_t scanned_ = 0;   ///< newline mode: prefix known '\n'-free
  bool discarding_ = false;   ///< newline mode: inside an oversized line
  std::uint64_t oversized_ = 0;
  bool error_ = false;
};

}  // namespace wss::net
