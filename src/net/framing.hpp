// Incremental TCP frame decoding for the ingest server.
//
// A TCP byte stream carries log lines in one of two framings:
//
//   * kNewline (default, syslog-style): frames are '\n'-terminated; a
//     single trailing '\r' is stripped (liberal in what we accept). At
//     EOF an unterminated non-empty tail is delivered as a final frame
//     -- the same contract std::getline gives `wss stream --in`.
//   * kLenPrefix: each frame is a 4-byte big-endian length followed by
//     that many payload bytes. Binary-safe (payloads may contain '\n').
//
// The decoder is push-based and allocation-frugal: feed() appends a
// received segment, and next() yields complete frames until it returns
// false -- so partial frames (a segment ending mid-line) and coalesced
// frames (many lines in one segment) both fall out of the same loop.
//
// Storage is a growable power-of-two ring: feed() never shifts bytes,
// the newline search runs the vectorized simd::find_byte over the (at
// most two) contiguous segments and remembers how far it has scanned,
// so a line arriving in many small segments is scanned once, not
// re-scanned per segment. A length-prefix header whose 4 bytes
// straddle the ring's wrap point is assembled byte-by-byte and decodes
// identically to a contiguous header (regression-tested in
// tests/test_net_framing.cpp).
//
// Oversized frames are NEVER silently truncated or dropped: a newline
// frame longer than max_frame enters discard mode until its
// terminator, a length prefix larger than max_frame is a protocol
// error (the connection is unrecoverable -- the stream position is
// lost), and both are counted so every lost frame is visible in
// /metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wss::net {

enum class Framing : std::uint8_t {
  kNewline = 0,
  kLenPrefix = 1,
};

class FrameDecoder {
 public:
  explicit FrameDecoder(Framing mode = Framing::kNewline,
                        std::size_t max_frame = 1 << 20)
      : mode_(mode), max_frame_(max_frame) {}

  /// Appends a received segment to the decode ring.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame into `frame` (overwritten).
  /// Returns false when no complete frame remains buffered. After a
  /// protocol error (kLenPrefix length > max_frame) it always returns
  /// false -- check error() and drop the connection.
  bool next(std::string& frame);

  /// End-of-stream flush (kNewline only): moves an unterminated
  /// non-empty tail into `frame`. Returns false when there is nothing
  /// to flush or the tail is oversized (counted, not delivered).
  bool finish(std::string& frame);

  /// Frames skipped because they exceeded max_frame.
  std::uint64_t oversized() const { return oversized_; }

  /// Set once a kLenPrefix frame announces an impossible length; the
  /// byte stream can no longer be re-synchronized.
  bool error() const { return error_; }

  /// Bytes currently buffered (tests; also a memory bound check).
  std::size_t buffered() const { return size_; }

  /// Removes and returns all undecoded bytes, leaving the decoder
  /// empty. Used when a handshake switches a connection's framing: the
  /// remainder is re-fed to the replacement decoder.
  std::string take_rest();

  std::size_t max_frame() const { return max_frame_; }
  Framing mode() const { return mode_; }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Live byte at logical offset `i` (wrap-aware; the length-prefix
  /// header reader).
  unsigned char byte_at(std::size_t i) const {
    return static_cast<unsigned char>(
        ring_[(head_ + i) & (ring_.size() - 1)]);
  }

  void ensure(std::size_t need);
  void consume(std::size_t n);
  void clear_bytes();
  std::size_t find_newline();
  void copy_out(std::string& frame, std::size_t offset, std::size_t len) const;

  Framing mode_;
  std::size_t max_frame_;
  std::vector<char> ring_;    ///< power-of-two capacity (or empty)
  std::size_t head_ = 0;      ///< ring index of the first live byte
  std::size_t size_ = 0;      ///< live bytes
  std::size_t scanned_ = 0;   ///< newline mode: prefix known '\n'-free
  bool discarding_ = false;   ///< newline mode: inside an oversized line
  std::uint64_t oversized_ = 0;
  bool error_ = false;
};

}  // namespace wss::net
